// Package aisle is the public API of the AISLE reference implementation —
// a complete, simulation-backed realization of the Autonomous
// Interconnected Science Lab Ecosystem described in "A Grassroots Network
// and Community Roadmap for Interconnected Autonomous Science Laboratories
// for Accelerated Discovery" (ICPP 2025).
//
// The facade re-exports the stable surface of the internal packages:
//
//   - federation assembly (New, Config, Network, Site),
//   - instruments and their digital twins (NewFluidicReactor, twins...),
//   - closed-loop campaigns (RunCampaign, CampaignConfig),
//   - the experiment suite that regenerates the paper's milestone claims.
//
// A minimal autonomous campaign:
//
//	n := aisle.New(aisle.Config{
//	    Seed:            1,
//	    Sites:           []aisle.SiteID{"ornl", "anl"},
//	    Link:            aisle.DefaultLink(),
//	    SharedKnowledge: true,
//	})
//	s := n.Site("ornl")
//	s.AddInstrument(aisle.NewFluidicReactor(n.Eng, n.Rnd, "flow-1", "ornl", aisle.Perovskite{}))
//	n.RunCampaign(aisle.CampaignConfig{
//	    Name: "demo", Site: "ornl", Model: aisle.Perovskite{},
//	    Budget: 30, Mode: aisle.OrchAgentVerified,
//	    SynthKind: aisle.KindFlowReactor,
//	}, func(rep *aisle.CampaignReport) { fmt.Println(rep.BestValue) })
//	n.Eng.Run()
package aisle

import (
	"github.com/aisle-sim/aisle/internal/chaos"
	"github.com/aisle-sim/aisle/internal/core"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/obs"
	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sched"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/trace"
	"github.com/aisle-sim/aisle/internal/twin"
)

// Federation assembly.
type (
	// Config assembles a federation; see New.
	Config = core.Config
	// Network is the assembled AISLE federation.
	Network = core.Network
	// Site is one institution's full stack.
	Site = core.Site
	// SiteID names an institution.
	SiteID = netsim.SiteID
	// Link parameterizes a WAN connection between sites.
	Link = netsim.Link
)

// Campaigns.
type (
	// CampaignConfig describes one closed-loop discovery campaign.
	CampaignConfig = core.CampaignConfig
	// CampaignReport is a campaign outcome.
	CampaignReport = core.CampaignReport
	// Orchestration selects manual / agent / verified-agent control.
	Orchestration = core.Orchestration
)

// Orchestration modes.
const (
	OrchManual        = core.OrchManual
	OrchAgent         = core.OrchAgent
	OrchAgentVerified = core.OrchAgentVerified
)

// Federation scheduler. Campaigns opt in to batched dispatch with
// CampaignConfig.Parallelism > 1; FairWeight and Priority control the
// campaign's fair share of the fleet.
type (
	// Scheduler is the federation-wide experiment scheduler (Network.Sched).
	Scheduler = sched.Scheduler
	// SchedulerOptions tunes the scheduler via Config.Sched.
	SchedulerOptions = sched.Options
	// SchedClass is a tenant priority class.
	SchedClass = sched.Class
	// SchedTenant describes one fair-share tenant.
	SchedTenant = sched.TenantConfig
	// SchedJob is one experiment submission (Network.Sched.Submit); set
	// MaxRetries for the self-healing retry budget.
	SchedJob = sched.Job
)

// Scheduler priority classes.
const (
	SchedBatch  = sched.ClassBatch
	SchedNormal = sched.ClassNormal
	SchedUrgent = sched.ClassUrgent
)

// Observability: causal tracing. Enable with Config.Trace (Enabled: true);
// the assembled Network.Tracer then holds every sampled span of the run in
// virtual time, exportable to chrome://tracing / Perfetto with
// WriteChromeTraceFile and reducible to per-campaign layer breakdowns with
// CriticalPaths. The zero TraceOptions keeps tracing off at zero cost.
type (
	// TraceOptions tunes tracing via Config.Trace.
	TraceOptions = trace.Options
	// Tracer records spans into per-site ring buffers (Network.Tracer).
	Tracer = trace.Tracer
	// TraceSpan is one recorded operation.
	TraceSpan = trace.Span
	// TraceContext is a position in a trace, threaded through jobs and
	// commands.
	TraceContext = trace.Context
	// PathReport is a per-campaign critical-path breakdown.
	PathReport = trace.PathReport
)

// Observability: the federation health engine. Enable with Config.Health
// (Enabled: true); the assembled Network.Health then evaluates streaming
// SLOs with multi-window burn-rate alerting, journals scheduler decisions
// and fault injections into a bounded flight recorder that snapshots on
// alerts and invariant violations, and links degraded jobs back to the
// injected fault that caused them. The zero HealthOptions keeps the
// engine off at zero cost (Network.Health stays nil, and every method on
// a nil engine is a no-op).
type (
	// HealthOptions tunes the health engine via Config.Health.
	HealthOptions = obs.Options
	// HealthEngine is the assembled health engine (Network.Health).
	HealthEngine = obs.Engine
	// HealthSLO declares one service-level objective.
	HealthSLO = obs.SLO
	// HealthMetric is the SLI specification of an SLO.
	HealthMetric = obs.Metric
	// HealthBurnWindow is one multi-window burn-rate alerting rule.
	HealthBurnWindow = obs.BurnWindow
	// HealthSnapshot is one frozen flight-recorder state.
	HealthSnapshot = obs.Snapshot
	// HealthIncident is one per-fault incident report.
	HealthIncident = obs.Incident
	// HealthAttribution is root-cause coverage over degraded jobs.
	HealthAttribution = obs.AttributionStats
	// HealthFaultWindow is one applied fault window as the linker sees it.
	HealthFaultWindow = obs.FaultWindow
)

// Observability: the continuous spine profiler. Enable with Config.Prof
// (Enabled: true); the assembled Network.Prof then attributes virtual time,
// wall time, and allocations to the federation's hot call-sites (sim event
// loop, netsim delivery, bus dispatch, scheduler routing and stealing,
// telemetry recording, knowledge merging, campaign decisions) through
// instrumented regions, and keeps deterministic per-site ring aggregates
// with trace-ID exemplars. Snapshot() is byte-stable across identical
// seeded runs; WriteFolded emits pprof-style folded stacks. The zero
// ProfOptions keeps every region at a single pointer test.
type (
	// ProfOptions tunes the profiler via Config.Prof.
	ProfOptions = prof.Options
	// Profiler is the assembled spine profiler (Network.Prof).
	Profiler = prof.Profiler
	// ProfSite identifies one instrumented call-site.
	ProfSite = prof.Site
	// ProfSiteCount is one site's aggregate counters.
	ProfSiteCount = prof.SiteCount
	// Profile is one deterministic profiler snapshot.
	Profile = prof.Profile
)

// DefaultSLOs is the stock federation health policy: completion rate,
// queue wait, knowledge sync lag, and a per-site queue-depth bound.
func DefaultSLOs(sites []string) []HealthSLO { return obs.DefaultSLOs(sites) }

// DefaultBurnWindows is the Google-SRE two-pair alerting policy (fast
// 5m/1h at 14.4x, slow 6h/3d at 1x).
func DefaultBurnWindows() []HealthBurnWindow { return obs.DefaultWindows() }

// CriticalPaths reduces a span set to one critical-path report per trace,
// attributing each campaign's end-to-end virtual latency to the federation
// layer that spent it.
func CriticalPaths(spans []TraceSpan) []PathReport { return trace.CriticalPaths(spans) }

// TraceID derives a deterministic trace ID from a stable label, for
// pre-computing which campaigns a sampling rate keeps.
func TraceID(label string) uint64 { return trace.ID(label) }

// Instruments.
type (
	// Instrument is a simulated laboratory instrument.
	Instrument = instrument.Instrument
	// InstrumentCommand requests one action execution.
	InstrumentCommand = instrument.Command
	// InstrumentResult is an action outcome.
	InstrumentResult = instrument.Result
)

// Instrument service kinds (DNS-SD style types).
const (
	KindSynthesis    = instrument.KindSynthesis
	KindFlowReactor  = instrument.KindFlowReactor
	KindXRD          = instrument.KindXRD
	KindTEM          = instrument.KindTEM
	KindSpectrometer = instrument.KindSpectrometer
	KindFurnace      = instrument.KindFurnace
	KindHPC          = instrument.KindHPC
)

// Digital-twin ground-truth models.
type (
	// Model is a physics ground-truth process model.
	Model = twin.Model
	// Perovskite models flow-reactor CsPb(Br/I)3 nanocrystal synthesis.
	Perovskite = twin.Perovskite
	// QuantumDot models the ~1e13-condition Smart Dope synthesis space.
	QuantumDot = twin.QuantumDot
	// Alloy models ternary alloy annealing.
	Alloy = twin.Alloy
	// Reaction models homogeneous catalysis yield.
	Reaction = twin.Reaction
	// Electrolyte models liquid battery-electrolyte formulation.
	Electrolyte = twin.Electrolyte
)

// Chaos harness: seeded fault schedules, a fault injector, and the
// invariant checker that together make up the robustness test surface.
// Generate a schedule with ChaosSchedule, bind an injector to an assembled
// federation with ChaosBind + NewChaosInjector, and watch invariants with
// NewChaosChecker. Pair with SchedulerOptions.Recover and Job.MaxRetries
// for the self-healing policy the injections are designed to exercise.
type (
	// ChaosConfig parameterizes seeded fault-schedule generation.
	ChaosConfig = chaos.Config
	// ChaosEvent is one scheduled fault window (pure data).
	ChaosEvent = chaos.Event
	// ChaosKind classifies a fault window.
	ChaosKind = chaos.Kind
	// ChaosTarget is the set of federation handles the injector drives.
	ChaosTarget = chaos.Target
	// ChaosInjector applies a schedule to a target on the sim clock.
	ChaosInjector = chaos.Injector
	// ChaosChecker accumulates invariant violations during a chaos run.
	ChaosChecker = chaos.Checker
)

// Fault kinds.
const (
	ChaosSiteOutage = chaos.KindSiteOutage
	ChaosPartition  = chaos.KindPartition
	ChaosDegrade    = chaos.KindDegrade
	ChaosBadCreds   = chaos.KindBadCreds
	ChaosByzantine  = chaos.KindByzantine
)

// ChaosSchedule expands a seed into a reproducible fault schedule over the
// given sites.
func ChaosSchedule(cfg ChaosConfig, sites []SiteID) []ChaosEvent {
	return chaos.Schedule(cfg, sites)
}

// ChaosBind derives an injection target from an assembled federation.
func ChaosBind(n *Network) ChaosTarget { return chaos.Bind(n) }

// NewChaosInjector builds an injector over a target.
func NewChaosInjector(tgt ChaosTarget) *ChaosInjector { return chaos.NewInjector(tgt) }

// NewChaosChecker builds an empty invariant checker.
func NewChaosChecker() *ChaosChecker { return chaos.NewChecker() }

// Virtual time (nanoseconds); see the sim package for arithmetic helpers.
type Time = sim.Time

// Common virtual durations.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
	Day         = sim.Day
)

// New assembles a federation from the config: sites with brokers,
// registries, identity providers, data nodes, and knowledge bases, joined
// by a full-mesh WAN, with discovery gossip running.
func New(cfg Config) *Network { return core.New(cfg) }

// DefaultLink is a realistic lab-to-lab WAN link (15 ms, 1 Gbit/s, 0.1%
// loss).
func DefaultLink() Link { return core.DefaultLink() }

// NewFluidicReactor builds a droplet-microfluidic self-driving-lab reactor
// (~15 s per experiment) measuring the given twin model.
func NewFluidicReactor(eng *sim.Engine, r *rng.Stream, id, site string, m Model) *Instrument {
	return instrument.NewFluidicReactor(eng, r, id, site, m)
}

// NewBatchReactor builds a classical batch synthesis robot (~30 min per
// sample).
func NewBatchReactor(eng *sim.Engine, r *rng.Stream, id, site string, m Model) *Instrument {
	return instrument.NewBatchReactor(eng, r, id, site, m)
}

// NewSpectrometer builds a fast optical characterization instrument.
func NewSpectrometer(eng *sim.Engine, r *rng.Stream, id, site string) *Instrument {
	return instrument.NewSpectrometer(eng, r, id, site)
}

// NewXRD builds an X-ray diffractometer.
func NewXRD(eng *sim.Engine, r *rng.Stream, id, site string) *Instrument {
	return instrument.NewXRD(eng, r, id, site)
}

// NewHPC builds a compute cluster scheduled like an instrument.
func NewHPC(eng *sim.Engine, r *rng.Stream, id, site string, nodes float64) *Instrument {
	return instrument.NewHPC(eng, r, id, site, nodes)
}
