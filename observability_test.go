// Observability acceptance tests: a fixed-seed federation run must produce
// a byte-identical Chrome trace (golden below, refresh with -update), the
// spans must causally link submit -> dispatch -> delivery -> run -> insight,
// and the critical-path extractor must attribute at least 95% of each
// campaign's virtual makespan to an instrumented layer.
package aisle

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runTracedCampaign drives one fully-sampled scheduler-batched campaign
// across a 2-site shared-knowledge federation and returns the network with
// its tracer and metrics populated.
func runTracedCampaign(t testing.TB) (*Network, *CampaignReport) {
	t.Helper()
	n := New(Config{
		Seed:            7,
		Sites:           []SiteID{"ornl", "anl"},
		Link:            DefaultLink(),
		SharedKnowledge: true,
		Trace:           TraceOptions{Enabled: true},
	})
	t.Cleanup(n.Stop)
	n.Site("ornl").AddInstrument(NewFluidicReactor(n.Eng, n.Rnd, "flow-1", "ornl", Perovskite{}))
	n.Site("anl").AddInstrument(NewFluidicReactor(n.Eng, n.Rnd, "flow-2", "anl", Perovskite{}))
	if err := n.RunFor(3 * Minute); err != nil {
		t.Fatal(err)
	}
	var rep *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name:         "golden",
		Site:         "ornl",
		Model:        Perovskite{},
		Budget:       8,
		Mode:         OrchAgentVerified,
		SynthKind:    KindFlowReactor,
		Parallelism:  2,
		UseKnowledge: true,
	}, func(r *CampaignReport) { rep = r })
	for rep == nil {
		if err := n.RunFor(Hour); err != nil {
			t.Fatal(err)
		}
	}
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	return n, rep
}

// TestTraceGoldenDeterministic replays the fixed-seed campaign twice and
// requires byte-identical Chrome trace JSON, then pins it against the
// checked-in golden so any change to span emission is a conscious one.
func TestTraceGoldenDeterministic(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		n, _ := runTracedCampaign(t)
		if err := n.Tracer.WriteChromeTrace(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("two fixed-seed runs produced different traces")
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, bufs[0].Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -run TraceGolden -update)", err)
	}
	if !bytes.Equal(bufs[0].Bytes(), want) {
		t.Fatalf("trace diverged from %s (refresh with -update if intended); got %d bytes, want %d",
			golden, bufs[0].Len(), len(want))
	}
}

// TestTraceCausalChain walks the span tree and requires the full causal
// story of an experiment: campaign -> experiment -> {queue, dispatch} ->
// {WAN delivery, instrument run}, with knowledge sync recorded against the
// producing experiment.
func TestTraceCausalChain(t *testing.T) {
	n, rep := runTracedCampaign(t)
	spans := n.Tracer.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	if n.Tracer.Dropped() != 0 {
		t.Fatalf("ring overflow dropped %d spans; raise SiteCapacity", n.Tracer.Dropped())
	}

	byID := make(map[uint64]*TraceSpan, len(spans))
	byKind := make(map[string][]*TraceSpan)
	for i := range spans {
		s := &spans[i]
		byID[s.SpanID] = s
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}

	roots := byKind["campaign"]
	if len(roots) != 1 || roots[0].ParentID != 0 {
		t.Fatalf("want exactly one root campaign span, got %d", len(roots))
	}
	root := roots[0]

	exps := byKind["core.experiment"]
	if len(exps) != rep.Executed {
		t.Fatalf("want %d experiment spans (one per executed experiment), got %d",
			rep.Executed, len(exps))
	}
	for _, e := range exps {
		if e.ParentID != root.SpanID {
			t.Fatalf("experiment span %d not parented on the campaign root", e.SpanID)
		}
	}

	// Each causal hop must appear, parented on the previous one.
	requireChild := func(kind string, parentKinds ...string) {
		t.Helper()
		if len(byKind[kind]) == 0 {
			t.Fatalf("no %s spans recorded", kind)
		}
		ok := 0
		for _, s := range byKind[kind] {
			p := byID[s.ParentID]
			if p == nil {
				continue
			}
			for _, pk := range parentKinds {
				if p.Kind == pk {
					ok++
					break
				}
			}
		}
		if ok == 0 {
			t.Fatalf("no %s span is parented on any of %v", kind, parentKinds)
		}
	}
	requireChild("sched.queue", "core.experiment")
	requireChild("sched.dispatch", "core.experiment")
	requireChild("net.deliver", "sched.dispatch")
	requireChild("instrument.run", "sched.dispatch")
	requireChild("knowledge.sync", "core.experiment")
	requireChild("core.decide", "core.experiment")

	// Virtual-time sanity: children start no earlier than their parents.
	for i := range spans {
		s := &spans[i]
		if p := byID[s.ParentID]; p != nil && s.Start < p.Start {
			t.Fatalf("%s span %d starts before its parent %s", s.Kind, s.SpanID, p.Kind)
		}
	}

	// The scheduler's labeled metrics rode along: per-tenant wait histograms
	// keyed by canonical site/tenant labels.
	snap := n.Metrics.Snapshot()
	found := false
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "sched.wait_s{") && strings.Contains(name, "tenant=golden") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no sched.wait_s{...tenant=golden...} histogram in snapshot: %v",
			keys(snap.Histograms))
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestCriticalPathCoverage requires the extractor to attribute at least 95%
// of the campaign's end-to-end virtual time to instrumented layers.
func TestCriticalPathCoverage(t *testing.T) {
	n, _ := runTracedCampaign(t)
	reports := CriticalPaths(n.Tracer.Spans())
	if len(reports) != 1 {
		t.Fatalf("want 1 critical-path report, got %d", len(reports))
	}
	pr := reports[0]
	if pr.Coverage < 0.95 {
		t.Fatalf("critical path covers only %.1f%% of campaign time (want >= 95%%):\n%s",
			100*pr.Coverage, pr.Render())
	}
	if pr.Total <= 0 {
		t.Fatal("non-positive campaign total time")
	}
	t.Logf("coverage %.2f%%, dominant layer %s\n%s", 100*pr.Coverage, pr.Dominant, pr.Render())
}
