// Materials-campaign: the cross-institutional workflow from the paper's
// introduction — synthesize at one lab, characterize at a user facility,
// simulate on an HPC system — expressed as an AISLE fault-tolerant
// workflow DAG spanning three sites, with provenance recorded for every
// artifact.
package main

import (
	"fmt"
	"log"

	"github.com/aisle-sim/aisle"
	"github.com/aisle-sim/aisle/internal/fabric"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/workflow"
)

func main() {
	n := aisle.New(aisle.Config{
		Seed:  7,
		Sites: []aisle.SiteID{"synth-lab", "user-facility", "hpc-center"},
		Link:  aisle.DefaultLink(),
	})
	defer n.Stop()

	// Instruments live where their institutions do.
	n.Site("synth-lab").AddInstrument(
		aisle.NewBatchReactor(n.Eng, n.Rnd, "robot-1", "synth-lab", aisle.Alloy{}))
	n.Site("user-facility").AddInstrument(
		aisle.NewXRD(n.Eng, n.Rnd, "xrd-1", "user-facility"))
	n.Site("hpc-center").AddInstrument(
		aisle.NewHPC(n.Eng, n.Rnd, "cluster-1", "hpc-center", 128))

	if err := n.RunFor(3 * aisle.Minute); err != nil {
		log.Fatal(err)
	}

	// The composition under study.
	composition := param.Point{"frac_a": 0.55, "frac_b": 0.30, "anneal_C": 480, "anneal_min": 120}
	home := n.Site("synth-lab")

	spec := workflow.NewSpec("alloy-pipeline")
	spec.MustAdd(workflow.Task{
		ID: "synthesize", Retries: 2, Backoff: 10 * aisle.Minute,
		Run: func(ctx workflow.Ctx, done func(any, error)) {
			rec, ok := home.FindInstrument(aisle.KindSynthesis, nil, "")
			if !ok {
				done(nil, fmt.Errorf("no synthesis robot"))
				return
			}
			home.RunInstrument(rec, aisle.InstrumentCommand{
				Action: "synthesize", Params: composition, SampleID: "alloy-001",
			}, 12*aisle.Hour, func(res aisle.InstrumentResult, err error) {
				if err != nil {
					done(nil, err)
					return
				}
				done(res.Values["hardness"], nil)
			})
		},
	})
	spec.MustAdd(workflow.Task{
		ID: "characterize", Needs: []string{"synthesize"}, Retries: 2, Backoff: 10 * aisle.Minute,
		Run: func(ctx workflow.Ctx, done func(any, error)) {
			rec, ok := home.FindInstrument(aisle.KindXRD, nil, "resolution")
			if !ok {
				done(nil, fmt.Errorf("no diffractometer visible in the federation"))
				return
			}
			home.RunInstrument(rec, aisle.InstrumentCommand{
				Action: "scan",
				Params: param.Point{"scan_resolution": 0.5, "exposure_s": 120},
			}, 12*aisle.Hour, func(res aisle.InstrumentResult, err error) {
				done(res.Values, err)
			})
		},
	})
	spec.MustAdd(workflow.Task{
		ID: "simulate", Needs: []string{"synthesize"}, Retries: 1,
		Run: func(ctx workflow.Ctx, done func(any, error)) {
			rec, ok := home.FindInstrument(aisle.KindHPC, nil, "nodes")
			if !ok {
				done(nil, fmt.Errorf("no HPC allocation"))
				return
			}
			home.RunInstrument(rec, aisle.InstrumentCommand{
				Action: "simulate", Params: param.Point{"nodes": 64, "sim_fidelity": 2},
			}, 24*aisle.Hour, func(res aisle.InstrumentResult, err error) {
				done(res.Values, err)
			})
		},
	})
	spec.MustAdd(workflow.Task{
		ID: "publish", Needs: []string{"characterize", "simulate"},
		Run: func(ctx workflow.Ctx, done func(any, error)) {
			// Publish the dataset into the federated mesh with provenance.
			node := n.Mesh.Node("synth-lab")
			ref := node.Put([]byte("alloy-001 results bundle"))
			ds := node.Publish(fabric.Dataset{
				ID:       "alloy-001",
				Title:    "Ternary alloy hardness study alloy-001",
				Domain:   "materials",
				Keywords: []string{"alloy", "hardness", "annealing"},
				License:  "CC-BY-4.0",
				Objects:  []fabric.Ref{ref},
			})
			ent := n.Mesh.Prov.AddEntity("dataset:alloy-001", nil)
			act := n.Mesh.Prov.AddActivity("pipeline:alloy-001", 0, n.Eng.Now())
			n.Mesh.Prov.WasGeneratedBy(ent, act)
			done(ds.ID, nil)
		},
	})

	var rep *workflow.Report
	n.Workflows.Run(spec, nil, func(r *workflow.Report) { rep = r })
	for rep == nil {
		if err := n.RunFor(6 * aisle.Hour); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("pipeline:    %s\n", rep.Name)
	fmt.Printf("tasks:       %d done, %d failed, %d retries\n", rep.Completed, rep.Failed, rep.Retries)
	fmt.Printf("makespan:    %v\n", rep.Makespan())
	fmt.Printf("hardness:    %.2f GPa\n", rep.Results["synthesize"])
	if hits := n.Mesh.Search("alloy hardness"); len(hits) > 0 {
		fmt.Printf("discovery:   %q findable federation-wide (score %.0f)\n",
			hits[0].Dataset.Title, hits[0].Score)
	}
	fair := n.Mesh.ScoreFAIR(mustDataset(n, "synth-lab", "alloy-001"))
	fmt.Printf("FAIR:        %s\n", fair)
	_ = instrument.KindXRD // document the service-kind vocabulary in use
}

func mustDataset(n *aisle.Network, site aisle.SiteID, id string) *fabric.Dataset {
	d, err := n.Mesh.Node(site).Dataset(id)
	if err != nil {
		log.Fatal(err)
	}
	return d
}
