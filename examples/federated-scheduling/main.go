// Federated-scheduling: two institutions share one instrument fleet
// through the federation scheduler. The reactor-rich site hosts the
// hardware; the partner site submits campaigns anyway — cross-site
// routing ships its experiments to wherever capacity is, work stealing
// drains backlogs into idle reactors, and fair-share weights split the
// fleet 2:1 between the tenants while both keep several experiments in
// flight (batched dispatch).
package main

import (
	"fmt"
	"log"

	"github.com/aisle-sim/aisle"
)

func main() {
	n := aisle.New(aisle.Config{
		Seed:  11,
		Sites: []aisle.SiteID{"reactor-farm", "partner-lab"},
		Link:  aisle.DefaultLink(),
	})
	defer n.Stop()

	// All the hardware lives at one site; the partner brings only ideas.
	farm := n.Site("reactor-farm")
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("flow-%d", i)
		farm.AddInstrument(aisle.NewFluidicReactor(n.Eng, n.Rnd, id, "reactor-farm", aisle.Perovskite{}))
	}
	if err := n.RunFor(3 * aisle.Minute); err != nil {
		log.Fatal(err)
	}

	// Two campaigns, one per institution, sharing the fleet 2:1.
	run := func(name string, site aisle.SiteID, weight float64, done *[]*aisle.CampaignReport) {
		n.RunCampaign(aisle.CampaignConfig{
			Name: name, Site: site, Model: aisle.Perovskite{},
			Budget: 24, Mode: aisle.OrchAgentVerified,
			SynthKind:   aisle.KindFlowReactor,
			Parallelism: 4,
			FairWeight:  weight,
		}, func(r *aisle.CampaignReport) { *done = append(*done, r) })
	}
	var reports []*aisle.CampaignReport
	run("farm-campaign", "reactor-farm", 2, &reports)
	run("partner-campaign", "partner-lab", 1, &reports)

	for len(reports) < 2 {
		if err := n.RunFor(aisle.Hour); err != nil {
			log.Fatal(err)
		}
	}

	for _, r := range reports {
		fmt.Printf("%-17s executed=%d best=%.3f makespan=%v\n",
			r.Name, r.Executed, r.BestValue, r.Makespan())
	}
	fmt.Printf("fleet dispatches:  %d (%d cross-site, %d stolen)\n",
		n.Metrics.Counter("sched.dispatched").Value(),
		n.Metrics.Counter("sched.remote_dispatches").Value(),
		n.Metrics.Counter("sched.steals").Value())
	fmt.Printf("mean queue wait:   %.1fs\n", n.Metrics.Histogram("sched.wait_s").Mean())
}
