// Zero-trust-ops: dimension 4 in action — agents at one site drive an
// instrument at another through the zero-trust bus. Legitimate calls carry
// continuously-renewed tokens; a rogue principal is denied and the decision
// lands in the audit log. A mid-run link failure demonstrates automatic
// failover to a replica instrument.
package main

import (
	"fmt"
	"log"

	"github.com/aisle-sim/aisle"
	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/security"
)

func main() {
	n := aisle.New(aisle.Config{
		Seed:      3,
		Sites:     []aisle.SiteID{"ornl", "anl", "slac"},
		Link:      aisle.DefaultLink(),
		ZeroTrust: true,
	})
	defer n.Stop()

	// Identical spectrometers at two sites: primary plus failover replica.
	n.Site("anl").AddInstrument(aisle.NewSpectrometer(n.Eng, n.Rnd, "spec-primary", "anl"))
	n.Site("slac").AddInstrument(aisle.NewSpectrometer(n.Eng, n.Rnd, "spec-replica", "slac"))
	if err := n.RunFor(3 * aisle.Minute); err != nil {
		log.Fatal(err)
	}

	ornl := n.Site("ornl")
	params := param.Point{"scan_resolution": 1, "exposure_s": 30}

	// 1. Authorized call with the site's continuously-renewed credential.
	call := func(label string, token *security.Token) {
		done := false
		n.Fabric.Call(bus.CallOpts{
			From:    bus.Address{Site: "ornl", Name: "operator"},
			To:      bus.Address{Site: "anl", Name: "instr/spec-primary"},
			Method:  "run",
			Payload: aisle.InstrumentCommand{Action: "spectrum", Params: params},
			Token:   token,
			Timeout: 5 * aisle.Minute,
			Retries: 2,
			Alternates: []bus.Address{
				{Site: "slac", Name: "instr/spec-replica"},
			},
		}, func(result any, err error) {
			done = true
			if err != nil {
				fmt.Printf("%-22s DENIED: %v\n", label, err)
				return
			}
			res := result.(aisle.InstrumentResult)
			fmt.Printf("%-22s ok: served by %s, peak %.0f nm\n",
				label, res.InstrumentID, res.Values["peak_nm"])
		})
		for !done {
			if err := n.RunFor(aisle.Minute); err != nil {
				log.Fatal(err)
			}
		}
	}

	call("authorized agent:", ornl.ServiceToken())

	// 2. A rogue principal with a forged role is rejected by ABAC.
	rogue := ornl.IdP.Issue(security.Principal{
		ID: "intern-7", Site: "ornl",
		Attributes: map[string]string{"role": "visitor"},
	}, "anl")
	call("rogue principal:", rogue)

	// 3. Primary site link dies; the same authorized call fails over.
	n.Net.SetLinkUp("ornl", "anl", false)
	call("after link failure:", ornl.ServiceToken())

	// 4. Every decision is in the federation audit log.
	audit := n.Fed.Audit()
	fmt.Printf("\naudit log: %d authorization decisions recorded\n", len(audit))
	for _, e := range audit[max(0, len(audit)-3):] {
		fmt.Printf("  t=%-12v site=%-5s subject=%-18s allowed=%-5v %s\n",
			e.At, e.Site, e.Subject, e.Allowed, e.Resource)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
