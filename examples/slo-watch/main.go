// Slo-watch: the federation health engine end to end — a worked incident.
// A three-site federation runs a steady experiment stream whose synthesis
// capability lives at a single site; when that site suffers an injected
// 45-minute outage, queued jobs have nowhere to reroute and start expiring
// against their deadlines. The health engine samples streaming SLOs on the
// sim clock; the expiry wave pushes the error-budget burn rate past both
// alerting windows, the alert fires, and the flight recorder freezes a
// snapshot of the moments around it. After the run, the incident
// root-cause linker reports exactly which jobs the outage degraded — every
// rescue and expiry attributed back to the injected fault.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/aisle-sim/aisle"
)

func main() {
	sites := []aisle.SiteID{"ornl", "anl", "slac"}
	n := aisle.New(aisle.Config{
		Seed:  11,
		Sites: sites,
		Link:  aisle.DefaultLink(),
		// Self-healing on: in-flight jobs at the dead site are rescued and
		// requeued instead of vanishing.
		Sched: aisle.SchedulerOptions{Recover: true},
		// Health on: the engine installs the default SLOs (completion rate,
		// queue wait, knowledge sync lag, per-site queue depth) and starts
		// sampling every 15 virtual seconds.
		Health: aisle.HealthOptions{Enabled: true},
	})
	defer n.Stop()

	// Flow synthesis exists only at ornl — anl and slac run
	// characterization gear, so a dead ornl leaves flow jobs stranded.
	model := aisle.Perovskite{}
	n.Site("ornl").AddInstrument(aisle.NewFluidicReactor(n.Eng, n.Rnd, "flow-0", "ornl", model))
	n.Site("ornl").AddInstrument(aisle.NewFluidicReactor(n.Eng, n.Rnd, "flow-1", "ornl", model))
	n.Site("anl").AddInstrument(aisle.NewSpectrometer(n.Eng, n.Rnd, "spec-0", "anl"))
	n.Site("slac").AddInstrument(aisle.NewXRD(n.Eng, n.Rnd, "xrd-0", "slac"))
	if err := n.RunFor(3 * aisle.Minute); err != nil {
		log.Fatal(err)
	}

	// The incident: ornl goes dark for 45 minutes, twenty minutes in.
	inj := aisle.NewChaosInjector(aisle.ChaosBind(n))
	inj.Run([]aisle.ChaosEvent{{
		Kind:     aisle.ChaosSiteOutage,
		Site:     "ornl",
		At:       20 * aisle.Minute,
		Duration: 45 * aisle.Minute,
	}})

	// A steady stream: 120 flow jobs over 90 minutes with 30-minute
	// deadlines. Jobs submitted early in the outage cannot out-wait it.
	const jobs = 120
	done := 0
	jobRnd := n.Rnd.Fork("jobs")
	for i := 0; i < jobs; i++ {
		pt := model.Space().Sample(jobRnd)
		id := fmt.Sprintf("job-%03d", i)
		origin := sites[i%len(sites)]
		n.Eng.Schedule(90*aisle.Minute*aisle.Time(i)/jobs, func() {
			n.Sched.Submit(aisle.SchedJob{
				Tenant:     "watch",
				Origin:     origin,
				Kind:       aisle.KindFlowReactor,
				Cmd:        aisle.InstrumentCommand{Action: "synthesize", Params: pt, SampleID: id},
				Timeout:    30 * aisle.Minute,
				MaxRetries: 3,
			}, func(aisle.InstrumentResult, error) { done++ })
		})
	}

	// The watch loop: advance half an hour at a time and render the SLO
	// burn-rate table, exactly what aisle-sim -watch prints.
	for t := 0; t < 4 || done < jobs; t++ {
		if err := n.RunFor(30 * aisle.Minute); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%v  (%d/%d jobs done)\n%s\n", n.Eng.Now(), done, jobs,
			n.Health.Table().Render())
	}

	for _, a := range n.Health.Alerts() {
		state := "resolved @ " + a.ResolvedAt.String()
		if a.ResolvedAt == 0 {
			state = "still firing"
		}
		fmt.Printf("alert %q fired at %v (%s): %s\n", a.SLO, a.At, state, a.Detail)
	}
	fmt.Printf("flight recorder froze %d snapshot(s) around the alerts\n\n", len(n.Health.Snapshots()))

	// The doctor's verdict: which fault degraded which jobs.
	att := n.Health.Attribution()
	fmt.Printf("attribution: %d tracked, %d degraded, %d attributed, %d background (coverage %.0f%%)\n\n",
		att.TrackedJobs, att.DegradedJobs, att.AttributedJobs, att.BackgroundJobs, att.Coverage*100)
	for _, inc := range n.Health.Incidents() {
		fmt.Println("incident:", inc.Summary)
	}
	if err := n.Health.WriteIncidentsJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
