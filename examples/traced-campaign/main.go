// Traced-campaign: follow one discovery campaign from submit to insight.
// The federation runs with causal tracing fully sampled; every hop an
// experiment takes — scheduler enqueue, routing, WAN delivery, instrument
// execution, knowledge sync back across the federation — lands as a span
// in virtual time. The program writes a chrome://tracing / Perfetto
// loadable trace, prints the critical-path breakdown showing which layer
// the campaign's makespan was spent in, and dumps the labeled telemetry
// snapshot (per-site, per-tenant scheduler metrics).
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/aisle-sim/aisle"
)

func main() {
	n := aisle.New(aisle.Config{
		Seed:            7,
		Sites:           []aisle.SiteID{"ornl", "anl"},
		Link:            aisle.DefaultLink(),
		SharedKnowledge: true,
		// Tracing on, every trace sampled. Production fleets would set
		// SampleRate to keep a deterministic subset instead.
		Trace: aisle.TraceOptions{Enabled: true},
	})
	defer n.Stop()

	n.Site("ornl").AddInstrument(aisle.NewFluidicReactor(n.Eng, n.Rnd, "flow-1", "ornl", aisle.Perovskite{}))
	n.Site("anl").AddInstrument(aisle.NewFluidicReactor(n.Eng, n.Rnd, "flow-2", "anl", aisle.Perovskite{}))
	if err := n.RunFor(3 * aisle.Minute); err != nil {
		log.Fatal(err)
	}

	var rep *aisle.CampaignReport
	n.RunCampaign(aisle.CampaignConfig{
		Name: "traced", Site: "ornl", Model: aisle.Perovskite{},
		Budget: 12, Mode: aisle.OrchAgentVerified,
		SynthKind:    aisle.KindFlowReactor,
		Parallelism:  2,
		UseKnowledge: true,
	}, func(r *aisle.CampaignReport) { rep = r })
	for rep == nil {
		if err := n.RunFor(aisle.Hour); err != nil {
			log.Fatal(err)
		}
	}
	if rep.Err != nil {
		log.Fatal(rep.Err)
	}

	fmt.Printf("campaign %q: executed=%d best=%.3f makespan=%v\n\n",
		rep.Name, rep.Executed, rep.BestValue, rep.Makespan())

	// Where did the time go? Per-layer self-time along the campaign's span
	// tree — instrument runs, WAN hops, queue waits, decisions.
	for _, pr := range aisle.CriticalPaths(n.Tracer.Spans()) {
		fmt.Println(pr.Render())
	}

	const out = "traced-campaign.trace.json"
	if err := n.Tracer.WriteChromeTraceFile(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d spans to %s (load in chrome://tracing or ui.perfetto.dev)\n",
		n.Tracer.Len(), out)

	fmt.Println("\nlabeled telemetry snapshot:")
	if err := n.Metrics.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
