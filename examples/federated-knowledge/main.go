// Federated-knowledge: the M9 scenario — three facilities chase the same
// synthesis target; with the knowledge federation on, insights propagate in
// real time and later campaigns start warm, cutting the experiments needed.
package main

import (
	"fmt"
	"log"

	"github.com/aisle-sim/aisle"
)

func run(shared bool) (total int, perSite []int) {
	n := aisle.New(aisle.Config{
		Seed:            11,
		Sites:           []aisle.SiteID{"ornl", "anl", "slac"},
		Link:            aisle.DefaultLink(),
		SharedKnowledge: shared,
	})
	defer n.Stop()
	for _, id := range n.Sites() {
		s := n.Site(id)
		s.AddInstrument(aisle.NewFluidicReactor(n.Eng, n.Rnd, "flow-"+string(id), string(id), aisle.Perovskite{}))
	}
	if err := n.RunFor(3 * aisle.Minute); err != nil {
		log.Fatal(err)
	}

	for i, site := range n.Sites() {
		var rep *aisle.CampaignReport
		n.RunCampaign(aisle.CampaignConfig{
			Name:         fmt.Sprintf("campaign-%d", i),
			Site:         site,
			Model:        aisle.Perovskite{},
			Budget:       40,
			Target:       0.50,
			Mode:         aisle.OrchAgentVerified,
			SynthKind:    aisle.KindFlowReactor,
			UseKnowledge: true,
			SeedLabel:    fmt.Sprintf("s%d", i),
		}, func(r *aisle.CampaignReport) { rep = r })
		for rep == nil {
			if err := n.RunFor(6 * aisle.Hour); err != nil {
				log.Fatal(err)
			}
		}
		total += rep.Executed
		perSite = append(perSite, rep.Executed)
		// Let the last observations propagate before the next site starts.
		if err := n.RunFor(30 * aisle.Minute); err != nil {
			log.Fatal(err)
		}
	}
	return total, perSite
}

func main() {
	isoTotal, isoPer := run(false)
	fedTotal, fedPer := run(true)

	fmt.Println("target: PLQY >= 0.50 at each of 3 facilities")
	fmt.Printf("isolated:  %v experiments per site, %d total\n", isoPer, isoTotal)
	fmt.Printf("federated: %v experiments per site, %d total\n", fedPer, fedTotal)
	fmt.Printf("reduction: %.0f%% (paper M9 target: >30%%)\n",
		100*(1-float64(fedTotal)/float64(isoTotal)))
}
