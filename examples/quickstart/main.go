// Quickstart: assemble a two-site AISLE federation, add a fluidic reactor,
// and run a 30-experiment autonomous perovskite campaign with a verified
// LLM orchestrator.
package main

import (
	"fmt"
	"log"

	"github.com/aisle-sim/aisle"
)

func main() {
	// 1. Assemble the federation: two institutions, realistic WAN,
	//    zero-trust messaging, shared knowledge.
	n := aisle.New(aisle.Config{
		Seed:            1,
		Sites:           []aisle.SiteID{"ornl", "anl"},
		Link:            aisle.DefaultLink(),
		ZeroTrust:       true,
		SharedKnowledge: true,
	})
	defer n.Stop()

	// 2. Install instruments. Each advertises a self-describing record in
	//    the federated service directory.
	ornl := n.Site("ornl")
	ornl.AddInstrument(aisle.NewFluidicReactor(n.Eng, n.Rnd, "flow-1", "ornl", aisle.Perovskite{}))
	anl := n.Site("anl")
	anl.AddInstrument(aisle.NewSpectrometer(n.Eng, n.Rnd, "spec-1", "anl"))

	// 3. Let service discovery converge.
	if err := n.RunFor(3 * aisle.Minute); err != nil {
		log.Fatal(err)
	}

	// 4. Run the closed loop: propose (Bayesian optimization) -> verify
	//    (digital twin) -> execute (instrument) -> ingest -> learn.
	var report *aisle.CampaignReport
	n.RunCampaign(aisle.CampaignConfig{
		Name:             "quickstart",
		Site:             "ornl",
		Model:            aisle.Perovskite{},
		Budget:           30,
		Mode:             aisle.OrchAgentVerified,
		SynthKind:        aisle.KindFlowReactor,
		CharacterizeKind: aisle.KindSpectrometer,
		UseKnowledge:     true,
	}, func(r *aisle.CampaignReport) { report = r })

	for report == nil {
		if err := n.RunFor(6 * aisle.Hour); err != nil {
			log.Fatal(err)
		}
	}
	if report.Err != nil {
		log.Fatal(report.Err)
	}

	fmt.Printf("campaign:        %s\n", report.Name)
	fmt.Printf("experiments:     %d executed, %d failures\n", report.Executed, report.Failures)
	fmt.Printf("best PLQY:       %.3f at %v\n", report.BestValue, report.BestPoint)
	fmt.Printf("makespan:        %v (decisions %v, instruments %v)\n",
		report.Makespan(), report.DecisionTime, report.InstrumentTime)
	fmt.Printf("correctness:     %.1f%% (%d verification repairs)\n",
		report.Correctness()*100, report.Repaired)
	fmt.Printf("trace approvals: %d/%d\n", report.Approvals, report.Traces)
}
