// Package workflow implements the cross-facility workflow engine of
// milestones M2 and M3: DAG-structured campaigns whose tasks execute
// asynchronously on simulated infrastructure, with per-task retries and
// backoff, checkpointing for resume-after-crash, and failure accounting —
// the fault-tolerant coordination substrate the paper's orchestration
// dimension requires.
package workflow

import (
	"errors"
	"fmt"
	"sort"

	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

// Errors from workflow construction and execution.
var (
	ErrCycle       = errors.New("workflow: dependency cycle")
	ErrUnknownDep  = errors.New("workflow: unknown dependency")
	ErrDuplicateID = errors.New("workflow: duplicate task id")
	ErrTaskFailed  = errors.New("workflow: task failed")
)

// Status is a task's lifecycle state.
type Status int

// Task states.
const (
	StatusPending Status = iota
	StatusReady
	StatusRunning
	StatusDone
	StatusFailed
	StatusSkipped
)

// String renders the status.
func (s Status) String() string {
	return [...]string{"pending", "ready", "running", "done", "failed", "skipped"}[s]
}

// Ctx is passed to running tasks.
type Ctx struct {
	// Attempt is 1-based.
	Attempt int
	// Results holds the outputs of completed dependencies.
	Results map[string]any
	// Now is the virtual start instant of this attempt.
	Now sim.Time
}

// RunFunc executes a task attempt. It must call done exactly once,
// with the task's output or an error. Executions are asynchronous: done may
// be called from a later simulation event.
type RunFunc func(ctx Ctx, done func(result any, err error))

// Task declares one node of the DAG.
type Task struct {
	ID    string
	Needs []string
	Run   RunFunc
	// Retries is the number of additional attempts after a failure.
	Retries int
	// Backoff delays each retry; attempt n waits n*Backoff. Default 0.
	Backoff sim.Time
	// Optional tasks don't fail the workflow; dependents still run with the
	// result absent.
	Optional bool
}

// Spec is a workflow definition.
type Spec struct {
	Name  string
	tasks map[string]*Task
	order []string
}

// NewSpec returns an empty workflow definition.
func NewSpec(name string) *Spec {
	return &Spec{Name: name, tasks: make(map[string]*Task)}
}

// Add appends a task. It returns an error for duplicates or (at Validate
// time) unknown dependencies.
func (s *Spec) Add(t Task) error {
	if _, ok := s.tasks[t.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateID, t.ID)
	}
	c := t
	c.Needs = append([]string(nil), t.Needs...)
	s.tasks[t.ID] = &c
	s.order = append(s.order, t.ID)
	return nil
}

// MustAdd is Add that panics, for statically-known graphs.
func (s *Spec) MustAdd(t Task) {
	if err := s.Add(t); err != nil {
		panic(err)
	}
}

// Tasks lists task IDs in insertion order.
func (s *Spec) Tasks() []string { return append([]string(nil), s.order...) }

// Validate checks references and acyclicity.
func (s *Spec) Validate() error {
	for _, t := range s.tasks {
		for _, d := range t.Needs {
			if _, ok := s.tasks[d]; !ok {
				return fmt.Errorf("%w: %s needs %s", ErrUnknownDep, t.ID, d)
			}
		}
	}
	// Kahn's algorithm.
	indeg := make(map[string]int, len(s.tasks))
	for id := range s.tasks {
		indeg[id] = 0
	}
	for _, t := range s.tasks {
		indeg[t.ID] = len(t.Needs)
	}
	var queue []string
	for _, id := range s.order {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, t := range s.tasks {
			for _, d := range t.Needs {
				if d == id {
					indeg[t.ID]--
					if indeg[t.ID] == 0 {
						queue = append(queue, t.ID)
					}
				}
			}
		}
	}
	if seen != len(s.tasks) {
		return ErrCycle
	}
	return nil
}

// Checkpoint records completed task results for resume.
type Checkpoint struct {
	Done map[string]any
}

// NewCheckpoint returns an empty checkpoint.
func NewCheckpoint() *Checkpoint { return &Checkpoint{Done: make(map[string]any)} }

// Report summarizes one workflow run.
type Report struct {
	Name      string
	Completed int
	Failed    int
	Skipped   int
	Attempts  int
	Retries   int
	Started   sim.Time
	Finished  sim.Time
	Statuses  map[string]Status
	Results   map[string]any
	Err       error
}

// Makespan is the total virtual duration.
func (r *Report) Makespan() sim.Time { return r.Finished - r.Started }

// Engine executes workflows on a simulation engine.
type Engine struct {
	eng     *sim.Engine
	metrics *telemetry.Registry
}

// NewEngine wraps a simulation engine.
func NewEngine(eng *sim.Engine) *Engine {
	return &Engine{eng: eng, metrics: telemetry.NewRegistry()}
}

// Metrics exposes workflow telemetry.
func (e *Engine) Metrics() *telemetry.Registry { return e.metrics }

// Run executes the spec; cb receives the final report. A non-nil checkpoint
// seeds completed tasks (resume) and is updated as tasks finish.
func (e *Engine) Run(spec *Spec, checkpoint *Checkpoint, cb func(*Report)) {
	if err := spec.Validate(); err != nil {
		cb(&Report{Name: spec.Name, Err: err})
		return
	}
	if checkpoint == nil {
		checkpoint = NewCheckpoint()
	}
	r := &run{
		engine:     e,
		spec:       spec,
		checkpoint: checkpoint,
		report: &Report{
			Name:     spec.Name,
			Started:  e.eng.Now(),
			Statuses: make(map[string]Status),
			Results:  make(map[string]any),
		},
		cb: cb,
	}
	for _, id := range spec.order {
		r.report.Statuses[id] = StatusPending
	}
	for id, res := range checkpoint.Done {
		if _, ok := spec.tasks[id]; ok {
			r.report.Statuses[id] = StatusDone
			r.report.Results[id] = res
		}
	}
	e.metrics.Counter("workflow.runs").Inc()
	r.pump()
}

type run struct {
	engine      *Engine
	spec        *Spec
	checkpoint  *Checkpoint
	report      *Report
	cb          func(*Report)
	outstanding int
	finished    bool
}

// ready reports whether a task's dependencies are satisfied (done or
// skipped-optional).
func (r *run) ready(t *Task) bool {
	for _, d := range t.Needs {
		st := r.report.Statuses[d]
		if st != StatusDone && st != StatusSkipped {
			return false
		}
	}
	return true
}

// pump launches every ready pending task, repeating the scan until a fixed
// point; finishes the run when nothing is outstanding.
func (r *run) pump() {
	if r.finished {
		return
	}
	for {
		progress := false
		for _, id := range r.spec.order {
			t := r.spec.tasks[id]
			if r.report.Statuses[id] != StatusPending || !r.ready(t) {
				continue
			}
			// A failed (non-optional) dependency poisons dependents: they
			// are skipped. Checked here because ready() treats only
			// done/skipped.
			if r.poisoned(t) {
				r.report.Statuses[id] = StatusSkipped
				r.report.Skipped++
				progress = true
				continue
			}
			r.report.Statuses[id] = StatusRunning
			r.outstanding++
			progress = true
			r.attempt(t, 1)
		}
		if r.finished {
			return
		}
		if !progress {
			break
		}
	}
	if r.outstanding == 0 {
		r.finish()
	}
}

// poisoned reports whether any transitive dependency failed.
func (r *run) poisoned(t *Task) bool {
	for _, d := range t.Needs {
		if r.report.Statuses[d] == StatusFailed {
			return true
		}
		if r.report.Statuses[d] == StatusSkipped {
			// Skipped because of an upstream failure; optional-skip also
			// lands here, which is conservative but safe for dependents
			// that require the optional output to exist.
			dep := r.spec.tasks[d]
			if !dep.Optional {
				return true
			}
		}
	}
	return false
}

func (r *run) attempt(t *Task, n int) {
	r.report.Attempts++
	if n > 1 {
		r.report.Retries++
		r.engine.metrics.Counter("workflow.retries").Inc()
	}
	ctx := Ctx{Attempt: n, Results: r.depResults(t), Now: r.engine.eng.Now()}
	called := false
	t.Run(ctx, func(result any, err error) {
		if called {
			panic("workflow: task done called twice")
		}
		called = true
		if err == nil {
			r.report.Statuses[t.ID] = StatusDone
			r.report.Results[t.ID] = result
			r.checkpoint.Done[t.ID] = result
			r.report.Completed++
			r.outstanding--
			r.engine.metrics.Counter("workflow.tasks_done").Inc()
			r.pump()
			return
		}
		if n <= t.Retries {
			delay := t.Backoff * sim.Time(n)
			r.engine.eng.Schedule(delay, func() { r.attempt(t, n+1) })
			return
		}
		// Terminal failure.
		if t.Optional {
			r.report.Statuses[t.ID] = StatusSkipped
			r.report.Skipped++
		} else {
			r.report.Statuses[t.ID] = StatusFailed
			r.report.Failed++
			r.engine.metrics.Counter("workflow.tasks_failed").Inc()
		}
		r.outstanding--
		r.pump()
	})
}

func (r *run) depResults(t *Task) map[string]any {
	out := make(map[string]any, len(t.Needs))
	for _, d := range t.Needs {
		if v, ok := r.report.Results[d]; ok {
			out[d] = v
		}
	}
	return out
}

func (r *run) finish() {
	if r.finished {
		return
	}
	// Anything still pending is unreachable (poisoned chains already
	// skipped); mark skipped for the report.
	for _, id := range r.spec.order {
		if r.report.Statuses[id] == StatusPending {
			r.report.Statuses[id] = StatusSkipped
			r.report.Skipped++
		}
	}
	r.finished = true
	r.report.Finished = r.engine.eng.Now()
	if r.report.Failed > 0 {
		r.report.Err = fmt.Errorf("%w: %d of %d", ErrTaskFailed, r.report.Failed, len(r.spec.tasks))
	}
	r.cb(r.report)
}

// FailedTasks lists failed task IDs, sorted.
func (r *Report) FailedTasks() []string {
	var out []string
	for id, st := range r.Statuses {
		if st == StatusFailed {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
