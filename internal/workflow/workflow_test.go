package workflow

import (
	"errors"
	"testing"

	"github.com/aisle-sim/aisle/internal/sim"
)

// instant returns a RunFunc that succeeds immediately with result.
func instant(result any) RunFunc {
	return func(ctx Ctx, done func(any, error)) { done(result, nil) }
}

// timed returns a RunFunc that succeeds after d on the engine.
func timed(eng *sim.Engine, d sim.Time, result any) RunFunc {
	return func(ctx Ctx, done func(any, error)) {
		eng.Schedule(d, func() { done(result, nil) })
	}
}

func TestLinearChain(t *testing.T) {
	eng := sim.NewEngine()
	we := NewEngine(eng)
	spec := NewSpec("chain")
	spec.MustAdd(Task{ID: "a", Run: timed(eng, sim.Minute, "A")})
	spec.MustAdd(Task{ID: "b", Needs: []string{"a"}, Run: timed(eng, sim.Minute, "B")})
	spec.MustAdd(Task{ID: "c", Needs: []string{"b"}, Run: timed(eng, sim.Minute, "C")})

	var rep *Report
	we.Run(spec, nil, func(r *Report) { rep = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Err != nil {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Completed != 3 {
		t.Fatalf("completed = %d", rep.Completed)
	}
	if rep.Makespan() != 3*sim.Minute {
		t.Fatalf("makespan = %v, want 3m (serial)", rep.Makespan())
	}
}

func TestParallelFanOut(t *testing.T) {
	eng := sim.NewEngine()
	we := NewEngine(eng)
	spec := NewSpec("fan")
	spec.MustAdd(Task{ID: "root", Run: instant(1)})
	for _, id := range []string{"w1", "w2", "w3", "w4"} {
		spec.MustAdd(Task{ID: id, Needs: []string{"root"}, Run: timed(eng, sim.Hour, id)})
	}
	spec.MustAdd(Task{ID: "join", Needs: []string{"w1", "w2", "w3", "w4"}, Run: instant("done")})

	var rep *Report
	we.Run(spec, nil, func(r *Report) { rep = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 6 {
		t.Fatalf("completed = %d", rep.Completed)
	}
	// Parallel branches overlap: makespan ~1h, not 4h.
	if rep.Makespan() != sim.Hour {
		t.Fatalf("makespan = %v, want 1h (parallel)", rep.Makespan())
	}
}

func TestDependencyResultsVisible(t *testing.T) {
	eng := sim.NewEngine()
	we := NewEngine(eng)
	spec := NewSpec("results")
	spec.MustAdd(Task{ID: "measure", Run: instant(42.0)})
	var seen any
	spec.MustAdd(Task{ID: "analyze", Needs: []string{"measure"}, Run: func(ctx Ctx, done func(any, error)) {
		seen = ctx.Results["measure"]
		done(nil, nil)
	}})
	we.Run(spec, nil, func(*Report) {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 42.0 {
		t.Fatalf("dependency result = %v", seen)
	}
}

func TestRetrySucceedsEventually(t *testing.T) {
	eng := sim.NewEngine()
	we := NewEngine(eng)
	spec := NewSpec("retry")
	attempts := 0
	spec.MustAdd(Task{ID: "flaky", Retries: 3, Backoff: sim.Minute,
		Run: func(ctx Ctx, done func(any, error)) {
			attempts++
			if ctx.Attempt < 3 {
				done(nil, errors.New("transient"))
				return
			}
			done("ok", nil)
		}})
	var rep *Report
	we.Run(spec, nil, func(r *Report) { rep = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil {
		t.Fatalf("workflow failed: %v", rep.Err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d", attempts)
	}
	if rep.Retries != 2 {
		t.Fatalf("retries = %d", rep.Retries)
	}
	// Backoff: attempt2 waits 1m, attempt3 waits 2m.
	if rep.Makespan() != 3*sim.Minute {
		t.Fatalf("makespan = %v, want 3m of backoff", rep.Makespan())
	}
}

func TestFailurePoisonsDependents(t *testing.T) {
	eng := sim.NewEngine()
	we := NewEngine(eng)
	spec := NewSpec("poison")
	spec.MustAdd(Task{ID: "bad", Run: func(ctx Ctx, done func(any, error)) {
		done(nil, errors.New("broken"))
	}})
	spec.MustAdd(Task{ID: "child", Needs: []string{"bad"}, Run: instant(1)})
	spec.MustAdd(Task{ID: "grandchild", Needs: []string{"child"}, Run: instant(1)})
	spec.MustAdd(Task{ID: "independent", Run: instant(1)})

	var rep *Report
	we.Run(spec, nil, func(r *Report) { rep = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rep.Err, ErrTaskFailed) {
		t.Fatalf("err = %v", rep.Err)
	}
	if rep.Statuses["bad"] != StatusFailed {
		t.Fatal("bad not failed")
	}
	if rep.Statuses["child"] != StatusSkipped || rep.Statuses["grandchild"] != StatusSkipped {
		t.Fatalf("dependents not skipped: %v", rep.Statuses)
	}
	if rep.Statuses["independent"] != StatusDone {
		t.Fatal("independent task should still run")
	}
	if got := rep.FailedTasks(); len(got) != 1 || got[0] != "bad" {
		t.Fatalf("FailedTasks = %v", got)
	}
}

func TestOptionalFailureTolerated(t *testing.T) {
	eng := sim.NewEngine()
	we := NewEngine(eng)
	spec := NewSpec("optional")
	spec.MustAdd(Task{ID: "nice-to-have", Optional: true,
		Run: func(ctx Ctx, done func(any, error)) { done(nil, errors.New("no")) }})
	spec.MustAdd(Task{ID: "main", Run: instant(1)})
	spec.MustAdd(Task{ID: "dependent", Needs: []string{"nice-to-have"}, Run: instant(2)})

	var rep *Report
	we.Run(spec, nil, func(r *Report) { rep = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil {
		t.Fatalf("optional failure should not fail the workflow: %v", rep.Err)
	}
	if rep.Statuses["dependent"] != StatusDone {
		t.Fatalf("dependent of optional-skip should run: %v", rep.Statuses["dependent"])
	}
}

func TestCheckpointResume(t *testing.T) {
	eng := sim.NewEngine()
	we := NewEngine(eng)
	mkSpec := func(failB bool) *Spec {
		spec := NewSpec("resumable")
		spec.MustAdd(Task{ID: "a", Run: instant("A")})
		spec.MustAdd(Task{ID: "b", Needs: []string{"a"}, Run: func(ctx Ctx, done func(any, error)) {
			if failB {
				done(nil, errors.New("crash"))
				return
			}
			done("B", nil)
		}})
		spec.MustAdd(Task{ID: "c", Needs: []string{"b"}, Run: instant("C")})
		return spec
	}
	cp := NewCheckpoint()
	var rep1 *Report
	we.Run(mkSpec(true), cp, func(r *Report) { rep1 = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rep1.Err == nil {
		t.Fatal("first run should fail")
	}
	if _, ok := cp.Done["a"]; !ok {
		t.Fatal("checkpoint missing completed task a")
	}

	// Resume: a must not re-run.
	aRuns := 0
	spec2 := NewSpec("resumable")
	spec2.MustAdd(Task{ID: "a", Run: func(ctx Ctx, done func(any, error)) {
		aRuns++
		done("A", nil)
	}})
	spec2.MustAdd(Task{ID: "b", Needs: []string{"a"}, Run: instant("B")})
	spec2.MustAdd(Task{ID: "c", Needs: []string{"b"}, Run: instant("C")})
	var rep2 *Report
	we.Run(spec2, cp, func(r *Report) { rep2 = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rep2.Err != nil {
		t.Fatalf("resume failed: %v", rep2.Err)
	}
	if aRuns != 0 {
		t.Fatal("checkpointed task re-ran")
	}
	if rep2.Statuses["c"] != StatusDone {
		t.Fatal("resume did not complete the chain")
	}
}

func TestValidateCycle(t *testing.T) {
	spec := NewSpec("cycle")
	spec.MustAdd(Task{ID: "a", Needs: []string{"b"}, Run: instant(1)})
	spec.MustAdd(Task{ID: "b", Needs: []string{"a"}, Run: instant(1)})
	if err := spec.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	eng := sim.NewEngine()
	var rep *Report
	NewEngine(eng).Run(spec, nil, func(r *Report) { rep = r })
	if !errors.Is(rep.Err, ErrCycle) {
		t.Fatal("Run should surface validation error")
	}
}

func TestValidateUnknownDep(t *testing.T) {
	spec := NewSpec("dangling")
	spec.MustAdd(Task{ID: "a", Needs: []string{"ghost"}, Run: instant(1)})
	if err := spec.Validate(); !errors.Is(err, ErrUnknownDep) {
		t.Fatalf("err = %v, want ErrUnknownDep", err)
	}
}

func TestDuplicateID(t *testing.T) {
	spec := NewSpec("dup")
	spec.MustAdd(Task{ID: "a", Run: instant(1)})
	if err := spec.Add(Task{ID: "a", Run: instant(1)}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
}

func TestDiamondDependency(t *testing.T) {
	eng := sim.NewEngine()
	we := NewEngine(eng)
	spec := NewSpec("diamond")
	spec.MustAdd(Task{ID: "src", Run: timed(eng, sim.Minute, 0)})
	spec.MustAdd(Task{ID: "left", Needs: []string{"src"}, Run: timed(eng, 2*sim.Minute, 1)})
	spec.MustAdd(Task{ID: "right", Needs: []string{"src"}, Run: timed(eng, 3*sim.Minute, 2)})
	joinRan := 0
	spec.MustAdd(Task{ID: "join", Needs: []string{"left", "right"},
		Run: func(ctx Ctx, done func(any, error)) {
			joinRan++
			if len(ctx.Results) != 2 {
				t.Errorf("join saw %d results", len(ctx.Results))
			}
			done(nil, nil)
		}})
	var rep *Report
	we.Run(spec, nil, func(r *Report) { rep = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if joinRan != 1 {
		t.Fatalf("join ran %d times", joinRan)
	}
	if rep.Makespan() != 4*sim.Minute {
		t.Fatalf("makespan = %v, want 4m (1m + max(2m,3m))", rep.Makespan())
	}
}
