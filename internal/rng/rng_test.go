package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical seeds diverged")
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d/100 times", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork("network")
	c2 := parent.Fork("instrument")
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked streams correlated")
	}
	// Forking again with the same label from an identical parent state must
	// reproduce the same child.
	p2 := New(7)
	d1 := p2.Fork("network")
	e1 := New(7).Fork("network")
	if d1.Uint64() != e1.Uint64() {
		t.Fatal("fork not deterministic")
	}
}

func TestForkN(t *testing.T) {
	p := New(3)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		v := p.ForkN(i).Uint64()
		if seen[v] {
			t.Fatalf("ForkN(%d) collided", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(12)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(14)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exponential(3)
		if v < 0 {
			t.Fatal("exponential draw negative")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~3", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(15)
	for _, lambda := range []float64{0.5, 4, 30, 100} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("poisson of non-positive mean should be 0")
	}
}

func TestTriangularBounds(t *testing.T) {
	s := New(16)
	for i := 0; i < 10000; i++ {
		v := s.Triangular(2, 5, 11)
		if v < 2 || v > 11 {
			t.Fatalf("triangular draw %v out of [2,11]", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(17)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[s.Intn(10)]++
	}
	for d, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(10) digit %d count %d far from uniform", d, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(18)
	f := func(n uint8) bool {
		size := int(n%64) + 1
		p := s.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPickWeighted(t *testing.T) {
	s := New(19)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight option picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	s := New(20)
	const n, d = 16, 3
	pts := s.LatinHypercube(n, d)
	if len(pts) != n {
		t.Fatalf("got %d points", len(pts))
	}
	for j := 0; j < d; j++ {
		binSeen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := pts[i][j]
			if v < 0 || v >= 1 {
				t.Fatalf("point %v outside unit cube", v)
			}
			bin := int(v * n)
			if binSeen[bin] {
				t.Fatalf("dimension %d bin %d occupied twice (not a latin hypercube)", j, bin)
			}
			binSeen[bin] = true
		}
	}
}

func TestRange(t *testing.T) {
	s := New(21)
	for i := 0; i < 1000; i++ {
		v := s.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range draw %v outside [-2,5)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(22)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %v", p)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(23)
	for i := 0; i < 1000; i++ {
		if s.LogNormal(0, 1) <= 0 {
			t.Fatal("lognormal draw non-positive")
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(24)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	wantSum := 0
	for _, v := range orig {
		wantSum += v
	}
	if sum != wantSum {
		t.Fatal("shuffle lost elements")
	}
}
