// Package rng supplies the deterministic random streams used throughout the
// AISLE simulator. Every stochastic component — network jitter, instrument
// noise, LLM defect injection, optimizer candidate sampling — draws from a
// Stream forked from a single experiment seed, so entire multi-facility
// campaigns replay bit-identically.
//
// The generator is SplitMix64, which passes BigCrush, is allocation-free,
// and — crucially for reproducibility — supports cheap deterministic
// sub-stream forking: Fork(label) derives an independent stream from the
// parent seed and a label hash, so adding a new consumer never perturbs the
// draws seen by existing ones.
package rng

import (
	"math"
)

// Stream is a deterministic pseudo-random stream. The zero value is a valid
// stream seeded with zero; prefer New or Fork for independent streams.
type Stream struct {
	state uint64
}

// New returns a stream seeded from seed.
func New(seed uint64) *Stream {
	s := &Stream{state: seed}
	// Warm up so nearby seeds diverge immediately.
	s.Uint64()
	return s
}

// fnv1a hashes a label for sub-stream derivation.
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Fork derives an independent stream keyed by label. Forking the same label
// from streams with equal state yields equal children, and distinct labels
// yield (with overwhelming probability) uncorrelated children.
func (s *Stream) Fork(label string) *Stream {
	return New(s.state ^ fnv1a(label) ^ 0x9e3779b97f4a7c15)
}

// ForkN derives the i-th numbered sub-stream, used for replica fan-out.
func (s *Stream) ForkN(i int) *Stream {
	return New(s.state ^ (uint64(i)+1)*0xbf58476d1ce4e5b9)
}

// Uint64 advances the stream (SplitMix64).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0,1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0,n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform draw in [0,n) for 64-bit ranges.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// Range returns a uniform draw in [lo,hi).
func (s *Stream) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a draw from N(mean, stddev²) via Box-Muller (single value;
// the pair's second half is discarded to keep the stream stateless).
func (s *Stream) Normal(mean, stddev float64) float64 {
	// Avoid log(0).
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(N(mu, sigma²)); mu/sigma are log-space parameters.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exponential returns a draw with the given mean (i.e. rate 1/mean).
func (s *Stream) Exponential(mean float64) float64 {
	return -mean * math.Log(1-s.Float64())
}

// Poisson returns a Poisson draw with the given mean using Knuth's method
// for small means and a normal approximation above 64.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Triangular returns a draw from a triangular distribution on [lo,hi] with
// the given mode, a convenient shape for task-duration modelling.
func (s *Stream) Triangular(lo, mode, hi float64) float64 {
	u := s.Float64()
	c := (mode - lo) / (hi - lo)
	if u < c {
		return lo + math.Sqrt(u*(hi-lo)*(mode-lo))
	}
	return hi - math.Sqrt((1-u)*(hi-lo)*(hi-mode))
}

// Perm returns a deterministic Fisher-Yates permutation of [0,n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates order.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen index weighted by weights. Weights must be
// non-negative and not all zero.
func (s *Stream) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("rng: Pick with non-positive total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// LatinHypercube returns n samples in the d-dimensional unit cube arranged
// as a Latin hypercube: each dimension's marginal is stratified into n equal
// bins with exactly one sample per bin. Used to seed Bayesian optimisation.
func (s *Stream) LatinHypercube(n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
	}
	for j := 0; j < d; j++ {
		perm := s.Perm(n)
		for i := 0; i < n; i++ {
			out[i][j] = (float64(perm[i]) + s.Float64()) / float64(n)
		}
	}
	return out
}
