package chaos

import (
	"fmt"
	"sync"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/knowledge"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/security"
)

// Checker watches the invariants a chaos run must not break. It is fed
// continuously (job submission/terminal hooks, a network delivery hook, a
// bus tap) and audited at the end (Check). Violations accumulate as
// human-readable strings; an empty list after Check means the run held.
//
// The four invariants, mapped to their hooks:
//
//   - Exactly one terminal callback per submitted job: Submitted/Terminal,
//     audited by Check.
//   - No message delivered across a down link: WatchNet.
//   - No unauthenticated insight admitted to merge: BusTap re-verifies
//     knowledge-topic credentials behind the security middleware.
//   - Quarantined insights never seed an optimizer: CheckKnowledge re-vets
//     every merged observation a base would feed to Observations.
//
// The mutex exists for harnesses inspecting a checker across goroutines
// (and the -race CI lane); inside a simulation all hooks run on the single
// sim goroutine.
type Checker struct {
	mu         sync.Mutex
	terminals  map[string]int
	order      []string
	violations []string

	// OnViolation, when non-nil, fires synchronously for each violation as
	// it is recorded — the health engine uses it to trip a flight-recorder
	// snapshot at the instant an invariant breaks. The callback runs with
	// the checker's lock held and must not call back into the checker.
	OnViolation func(msg string)
}

// violateLocked appends a violation and fires the hook; callers hold c.mu.
func (c *Checker) violateLocked(msg string) {
	c.violations = append(c.violations, msg)
	if c.OnViolation != nil {
		c.OnViolation(msg)
	}
}

// NewChecker builds an empty checker.
func NewChecker() *Checker {
	return &Checker{terminals: make(map[string]int)}
}

// Submitted registers a job that must reach exactly one terminal outcome.
func (c *Checker) Submitted(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.terminals[id]; dup {
		c.violateLocked(fmt.Sprintf("job %s submitted twice", id))
		return
	}
	c.terminals[id] = 0
	c.order = append(c.order, id)
}

// Terminal records one terminal callback (completion or terminal error) for
// a submitted job. A second terminal for the same job is a violation.
func (c *Checker) Terminal(id string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.terminals[id]
	if !ok {
		c.violateLocked(fmt.Sprintf("terminal for unknown job %s", id))
		return
	}
	if n >= 1 {
		c.violateLocked(fmt.Sprintf("job %s reached %d terminal callbacks", id, n+1))
	}
	c.terminals[id] = n + 1
}

// WatchNet installs the delivery-instant hook asserting that no cross-site
// message lands while the link between its endpoints is down. Pair with
// netsim's DropInFlight so messages caught mid-flight by a cut are dropped
// rather than delivered.
func (c *Checker) WatchNet(n *netsim.Network) {
	n.DeliverHook = func(msg netsim.Message) {
		if msg.From == msg.To {
			return
		}
		if l := n.LinkBetween(msg.From, msg.To); l == nil || !l.Up() {
			c.mu.Lock()
			c.violateLocked(fmt.Sprintf(
				"message %s->%s (%s) delivered across a down link", msg.From, msg.To, msg.Service))
			c.mu.Unlock()
		}
	}
}

// BusTap returns a bus middleware that independently re-verifies the
// credential on every knowledge publish. Install it AFTER the zero-trust
// middleware: envelopes the security layer rejects never reach the tap, so
// anything arriving here with a bad token means a forged credential slipped
// through admission — the invariant violation. The tap never rejects; it
// only observes.
func (c *Checker) BusTap(fed *security.Federation) bus.Middleware {
	return func(env *bus.Envelope) error {
		if env.Topic != "knowledge" || (env.Kind != bus.KindEvent && env.Kind != bus.KindQueueMsg) {
			return nil
		}
		tok, _ := env.Token.(*security.Token)
		if err := fed.Verify(env.To.Site, tok); err != nil {
			c.mu.Lock()
			c.violateLocked(fmt.Sprintf(
				"unauthenticated knowledge publish admitted at %s from %s: %v",
				env.To.Site, env.From.Site, err))
			c.mu.Unlock()
		}
		return nil
	}
}

// CheckKnowledge audits the end state of the knowledge federation at the
// given (honest) sites: every merged observation in a bounded domain must
// still pass that domain's sanity bound — i.e. nothing that should have
// been quarantined is positioned to seed an optimizer. A byzantine site's
// own base is excluded by the caller: it holds its own poison by
// construction.
func (c *Checker) CheckKnowledge(fed *knowledge.Federation, sites []netsim.SiteID) {
	for domain, bound := range fed.Bounds {
		for _, site := range sites {
			b := fed.Base(site)
			if b == nil {
				continue
			}
			points, values := b.Observations(domain)
			for i, v := range values {
				bad := bound.Max > bound.Min && (v < bound.Min || v > bound.Max)
				if !bad && bound.Space != nil {
					bad = bound.Space.Validate(points[i]) != nil
				}
				if bad {
					c.mu.Lock()
					c.violateLocked(fmt.Sprintf(
						"site %s holds out-of-bounds %s observation (value %g) visible to optimizers",
						site, domain, v))
					c.mu.Unlock()
				}
			}
		}
	}
}

// Check finalizes the terminal-callback audit: every submitted job must
// have reached exactly one terminal by now. It returns all violations.
func (c *Checker) Check() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		// Extra terminals were flagged as they happened; the audit adds the
		// jobs that never reached one.
		if c.terminals[id] == 0 {
			c.violateLocked(fmt.Sprintf(
				"job %s reached 0 terminal callbacks (want 1)", id))
		}
	}
	return append([]string(nil), c.violations...)
}

// Violations returns the violations recorded so far without the final
// terminal audit.
func (c *Checker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.violations...)
}
