package chaos

import (
	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/core"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/obs"
	"github.com/aisle-sim/aisle/internal/security"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
)

// Target is the set of federation handles the injector drives. Optional
// hooks (SetBadCreds, Poison) gate the fault kinds that need them: an event
// whose hook is absent is counted as skipped rather than failing the run.
type Target struct {
	Eng *sim.Engine
	Net *netsim.Network
	// Fleets maps each site to its instrument fleet, for outage/degrade.
	Fleets map[netsim.SiteID]*instrument.Fleet
	// Sites is the full federation membership, for partition peer sets.
	Sites []netsim.SiteID
	// Metrics receives chaos.injections{kind} counters.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one chaos.inject span per window.
	Tracer *trace.Tracer
	// SetBadCreds flips a site into (or out of) presenting forged
	// credentials. Required for KindBadCreds events.
	SetBadCreds func(site netsim.SiteID, bad bool)
	// Poison publishes one out-of-bounds insight from the site. Required
	// for KindByzantine events.
	Poison func(site netsim.SiteID)
	// Observe, when non-nil, is told about every applied fault window —
	// the health engine's root-cause linker keys incident attribution off
	// this stream. Skipped (hook-less) events are not reported.
	Observe func(ev Event, start, end sim.Time)
}

// Bind derives a Target from a core federation, wiring the bad-creds hook
// into the fabric's TokenSource: while a site is marked bad, every token the
// infrastructure supplies for its outbound traffic (knowledge publishes,
// discovery gossip) carries a garbage signature, so zero-trust verification
// rejects it downstream. Scheduler dispatch credentials come from per-site
// bindings fixed at construction and are not intercepted — bad-creds chaos
// targets the data plane, not the control plane.
func Bind(n *core.Network) Target {
	fleets := make(map[netsim.SiteID]*instrument.Fleet)
	for _, id := range n.Sites() {
		fleets[id] = n.Site(id).Fleet
	}
	tgt := Target{
		Eng:     n.Eng,
		Net:     n.Net,
		Fleets:  fleets,
		Sites:   n.Sites(),
		Metrics: n.Metrics,
		Tracer:  n.Tracer,
	}
	if h := n.Health; h != nil {
		tgt.Observe = func(ev Event, start, end sim.Time) {
			h.ObserveFault(obs.FaultWindow{
				Kind:  string(ev.Kind),
				Site:  string(ev.Site),
				Start: start,
				End:   end,
			})
		}
	}
	if orig := n.Fabric.TokenSource; orig != nil {
		bad := make(map[netsim.SiteID]bool)
		n.Fabric.TokenSource = func(from bus.Address) any {
			tok := orig(from)
			if bad[from.Site] {
				if t, ok := tok.(*security.Token); ok {
					forged := *t
					forged.Sig = []byte("chaos-forged")
					return &forged
				}
			}
			return tok
		}
		tgt.SetBadCreds = func(site netsim.SiteID, b bool) { bad[site] = b }
	}
	return tgt
}

// Injector applies a fault schedule to a target.
type Injector struct {
	tgt Target
	ctx trace.Context
	// cut counts active link-cut windows per site, so a window healing does
	// not raise links into a site still inside another window.
	cut map[netsim.SiteID]int

	injected int
	skipped  int
	lastHeal sim.Time
}

// NewInjector builds an injector. Injections trace under a deterministic
// chaos root so fault windows and the recovery spans they cause share a
// timeline in the Chrome exporter.
func NewInjector(tgt Target) *Injector {
	return &Injector{
		tgt: tgt,
		ctx: tgt.Tracer.Root(trace.ID("chaos")),
		cut: make(map[netsim.SiteID]int),
	}
}

// Run schedules every event in the schedule relative to now. Safe to call
// once per injector; events apply and restore themselves off the sim clock.
func (inj *Injector) Run(events []Event) {
	for _, ev := range events {
		ev := ev
		inj.tgt.Eng.Schedule(ev.At, func() { inj.inject(ev) })
	}
}

// Injected and Skipped report applied vs hook-less event counts.
func (inj *Injector) Injected() int { return inj.injected }

// Skipped reports events dropped because their required hook was absent.
func (inj *Injector) Skipped() int { return inj.skipped }

// LastHeal reports the latest restoration instant of any applied window —
// the benchmark's reference point for post-chaos recovery time.
func (inj *Injector) LastHeal() sim.Time { return inj.lastHeal }

// inject applies one fault window and schedules its restoration.
func (inj *Injector) inject(ev Event) {
	restore := inj.apply(ev)
	if restore == nil {
		inj.skipped++
		return
	}
	inj.injected++
	now := inj.tgt.Eng.Now()
	if end := now + ev.Duration; end > inj.lastHeal {
		inj.lastHeal = end
	}
	if inj.tgt.Metrics != nil {
		inj.tgt.Metrics.Counter(telemetry.Key("chaos.injections", "kind", string(ev.Kind))).Inc()
	}
	if inj.tgt.Observe != nil {
		inj.tgt.Observe(ev, now, now+ev.Duration)
	}
	sp, cc := inj.ctx.Start(now, string(ev.Site), trace.KindChaos, string(ev.Kind))
	inj.tgt.Eng.Schedule(ev.Duration, func() {
		restore()
		cc.Finish(&sp, inj.tgt.Eng.Now())
	})
}

// apply performs the state change for one event and returns the restoration
// closure, or nil when the event's required hook is absent.
func (inj *Injector) apply(ev Event) func() {
	switch ev.Kind {
	case KindSiteOutage:
		inj.eachInstrument(ev.Site, func(in *instrument.Instrument) {
			in.ForceDown(ev.Duration)
		})
		inj.cutLinks(ev.Site, false)
		return func() { inj.cutLinks(ev.Site, true) }
	case KindPartition:
		inj.cutLinks(ev.Site, false)
		return func() { inj.cutLinks(ev.Site, true) }
	case KindDegrade:
		var restores []func()
		inj.eachInstrument(ev.Site, func(in *instrument.Instrument) {
			pf := in.SetFailureProb(ev.FailureProb)
			pd := in.SetDriftPerAction(ev.Drift)
			restores = append(restores, func() {
				in.SetFailureProb(pf)
				in.SetDriftPerAction(pd)
			})
		})
		return func() {
			for _, r := range restores {
				r()
			}
		}
	case KindBadCreds:
		if inj.tgt.SetBadCreds == nil {
			return nil
		}
		inj.tgt.SetBadCreds(ev.Site, true)
		return func() { inj.tgt.SetBadCreds(ev.Site, false) }
	case KindByzantine:
		if inj.tgt.Poison == nil {
			return nil
		}
		// A burst of poisoned publishes spread across the window.
		const bursts = 5
		for i := 0; i < bursts; i++ {
			site := ev.Site
			inj.tgt.Eng.Schedule(ev.Duration*sim.Time(i)/bursts, func() {
				inj.tgt.Poison(site)
			})
		}
		return func() {}
	}
	return nil
}

// eachInstrument visits the site's instruments in deterministic ID order.
func (inj *Injector) eachInstrument(site netsim.SiteID, f func(*instrument.Instrument)) {
	fleet := inj.tgt.Fleets[site]
	if fleet == nil {
		return
	}
	for _, id := range fleet.IDs() {
		if in, ok := fleet.Get(id); ok {
			f(in)
		}
	}
}

// cutLinks takes down (up=false) or restores (up=true) the site's WAN
// links. Cuts are reference-counted per site: a link only comes back when
// neither endpoint remains inside a cut window.
func (inj *Injector) cutLinks(site netsim.SiteID, up bool) {
	if !up {
		inj.cut[site]++
		for _, peer := range inj.tgt.Sites {
			if peer != site {
				inj.tgt.Net.SetLinkUp(site, peer, false)
			}
		}
		return
	}
	inj.cut[site]--
	if inj.cut[site] > 0 {
		return
	}
	for _, peer := range inj.tgt.Sites {
		if peer != site && inj.cut[peer] == 0 {
			inj.tgt.Net.SetLinkUp(site, peer, true)
		}
	}
}
