// Package chaos is AISLE's fault-injection harness: a seeded, deterministic
// schedule generator plus an injector that drives the federation's existing
// fault primitives (instrument outages and degradation, WAN partitions,
// credential forgery, byzantine knowledge publishing) off the sim clock.
//
// The design splits *what goes wrong* from *how it is applied*:
//
//   - Schedule(Config, sites) expands one seed into a reproducible list of
//     fault windows — pure data, inspectable and diffable before any
//     simulation runs.
//
//   - Injector applies a schedule to a Target (the handles chaos needs from
//     a federation), emitting one trace span and one labelled counter per
//     injection so every fault window lines up with the recovery actions it
//     triggered on the same Chrome-trace timeline.
//
// Alongside injection, Checker (invariants.go) watches the invariants the
// federation must keep *while* faults fire: every submitted job reaches
// exactly one terminal outcome, no message is delivered across a down link,
// no unauthenticated insight is merged, and quarantined insights never seed
// an optimizer.
package chaos

import (
	"sort"

	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
)

// Kind classifies one fault-injection window.
type Kind string

// Fault kinds the injector knows how to apply.
const (
	// KindSiteOutage takes a whole site dark: every instrument forced down
	// and every WAN link to the site cut for the window.
	KindSiteOutage Kind = "site-outage"
	// KindPartition cuts the site's WAN links (knowledge sync, routing, and
	// dispatch to/from it all stall) while its instruments keep running.
	KindPartition Kind = "partition"
	// KindDegrade ramps a site's instrument failure probability and
	// calibration drift for the window — the mid-campaign decay mode.
	KindDegrade Kind = "degrade"
	// KindBadCreds makes a site present forged credentials for the window,
	// exercising the zero-trust rejection path.
	KindBadCreds Kind = "bad-creds"
	// KindByzantine has a site publish out-of-bounds insights during the
	// window, exercising the knowledge quarantine.
	KindByzantine Kind = "byzantine"
)

// AllKinds lists every fault kind, in injection-stable order.
func AllKinds() []Kind {
	return []Kind{KindSiteOutage, KindPartition, KindDegrade, KindBadCreds, KindByzantine}
}

// Event is one scheduled fault window. Events are pure data: generating a
// schedule touches no simulation state.
type Event struct {
	Kind Kind
	// At is the window start, an offset from the instant the injector runs.
	At sim.Time
	// Duration is the window length; restoration fires at At+Duration.
	Duration sim.Time
	// Site is the fault domain.
	Site netsim.SiteID
	// FailureProb/Drift carry KindDegrade's ramp targets.
	FailureProb float64
	Drift       float64
}

// Config parameterizes schedule generation.
type Config struct {
	// Seed makes the schedule reproducible: equal Config + site list means
	// an identical schedule on every host.
	Seed uint64
	// Horizon is the window in which fault starts are drawn.
	Horizon sim.Time
	// Intensity is the target mean fraction of sites inside a fault window
	// at any instant: 0.15 keeps ~15% of the federation faulted. 0 yields
	// an empty schedule.
	Intensity float64
	// Kinds restricts which faults are drawn; nil means AllKinds.
	Kinds []Kind
	// MinDuration/MaxDuration bound window lengths. Defaults 5m/30m.
	MinDuration sim.Time
	MaxDuration sim.Time
}

func (c *Config) defaults() {
	if c.MinDuration <= 0 {
		c.MinDuration = 5 * sim.Minute
	}
	if c.MaxDuration < c.MinDuration {
		c.MaxDuration = 6 * c.MinDuration
	}
	if len(c.Kinds) == 0 {
		c.Kinds = AllKinds()
	}
}

// Schedule expands a seed into a fault schedule over the given sites:
// windows arrive as a Poisson process whose rate is chosen so the expected
// number of concurrently-faulted sites is Intensity × len(sites), with
// kind, site, and duration drawn uniformly. The result is sorted by start
// time and fully determined by (cfg, sites).
func Schedule(cfg Config, sites []netsim.SiteID) []Event {
	cfg.defaults()
	if cfg.Intensity <= 0 || cfg.Horizon <= 0 || len(sites) == 0 {
		return nil
	}
	r := rng.New(cfg.Seed).Fork("chaos-schedule")
	meanDur := float64(cfg.MinDuration+cfg.MaxDuration) / 2
	// Little's law: concurrency = arrival rate × mean duration.
	meanGap := meanDur / (cfg.Intensity * float64(len(sites)))
	var out []Event
	t := sim.Time(r.Exponential(meanGap))
	for t < cfg.Horizon {
		ev := Event{
			Kind:     cfg.Kinds[r.Intn(len(cfg.Kinds))],
			At:       t,
			Duration: sim.Time(r.Range(float64(cfg.MinDuration), float64(cfg.MaxDuration))),
			Site:     sites[r.Intn(len(sites))],
		}
		if ev.Kind == KindDegrade {
			ev.FailureProb = r.Range(0.2, 0.6)
			ev.Drift = r.Range(0.01, 0.05)
		}
		out = append(out, ev)
		t += sim.Time(r.Exponential(meanGap))
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
