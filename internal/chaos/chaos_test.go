package chaos

import (
	"errors"
	"reflect"
	"testing"

	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/twin"
)

func scheduleSites(n int) []netsim.SiteID {
	out := make([]netsim.SiteID, n)
	for i := range out {
		out[i] = netsim.SiteID(string(rune('a' + i)))
	}
	return out
}

func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 99, Horizon: 12 * sim.Hour, Intensity: 0.3}
	sites := scheduleSites(5)
	a := Schedule(cfg, sites)
	b := Schedule(cfg, sites)
	if len(a) == 0 {
		t.Fatal("expected a non-empty schedule at 30% intensity over 12h")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := Schedule(Config{Seed: 100, Horizon: 12 * sim.Hour, Intensity: 0.3}, sites)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleRespectsConfig(t *testing.T) {
	cfg := Config{Seed: 7, Horizon: 24 * sim.Hour, Intensity: 0.2,
		Kinds: []Kind{KindPartition}}
	sites := scheduleSites(4)
	evs := Schedule(cfg, sites)
	if len(evs) == 0 {
		t.Fatal("expected events")
	}
	last := sim.Time(-1)
	for _, ev := range evs {
		if ev.Kind != KindPartition {
			t.Fatalf("kind %s outside restricted set", ev.Kind)
		}
		if ev.At < last {
			t.Fatal("schedule not sorted by start time")
		}
		last = ev.At
		if ev.At >= cfg.Horizon {
			t.Fatalf("event at %v past horizon %v", ev.At, cfg.Horizon)
		}
		if ev.Duration < 5*sim.Minute || ev.Duration > 30*sim.Minute {
			t.Fatalf("duration %v outside default bounds", ev.Duration)
		}
	}
	if got := Schedule(Config{Seed: 7, Horizon: 24 * sim.Hour}, sites); got != nil {
		t.Fatal("zero intensity should produce an empty schedule")
	}
}

// injectorTestbed is a two-site network with one instrument each.
func injectorTestbed(t *testing.T) (*sim.Engine, *netsim.Network, Target) {
	t.Helper()
	eng := sim.NewEngine()
	rnd := rng.New(3)
	net := netsim.New(eng, rnd.Fork("net"))
	sites := []netsim.SiteID{"a", "b"}
	for _, id := range sites {
		net.AddSite(id).Firewall.AllowAll()
	}
	net.FullMesh(sites, netsim.Link{Latency: 10 * sim.Millisecond, Bandwidth: 125e6})
	fleets := make(map[netsim.SiteID]*instrument.Fleet)
	for _, id := range sites {
		f := instrument.NewFleet()
		f.Add(instrument.NewFluidicReactor(eng, rnd, "flow-"+string(id), string(id), twin.Perovskite{}))
		fleets[id] = f
	}
	return eng, net, Target{
		Eng: eng, Net: net, Fleets: fleets, Sites: sites,
		Metrics: telemetry.NewRegistry(),
	}
}

func TestInjectorSiteOutageAndRestore(t *testing.T) {
	eng, net, tgt := injectorTestbed(t)
	inj := NewInjector(tgt)
	inj.Run([]Event{{Kind: KindSiteOutage, At: sim.Minute, Duration: 10 * sim.Minute, Site: "a"}})

	if err := eng.RunUntil(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	in, _ := tgt.Fleets["a"].Get("flow-a")
	if got := in.State(); got != instrument.StateDown {
		t.Fatalf("instrument state during outage = %v, want down", got)
	}
	if net.Reachable("a", "b", "bus") {
		t.Fatal("site a should be unreachable during its outage")
	}
	if err := eng.RunUntil(15 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if got := in.State(); got != instrument.StateIdle {
		t.Fatalf("instrument state after heal = %v, want idle", got)
	}
	if !net.Reachable("a", "b", "bus") {
		t.Fatal("links should be healed after the window")
	}
	if inj.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", inj.Injected())
	}
	if got := tgt.Metrics.Counter(telemetry.Key("chaos.injections", "kind", string(KindSiteOutage))).Value(); got != 1 {
		t.Fatalf("chaos.injections counter = %d, want 1", got)
	}
	if heal := inj.LastHeal(); heal != 11*sim.Minute {
		t.Fatalf("LastHeal = %v, want 11m", heal)
	}
}

func TestInjectorOverlappingCutsRefcount(t *testing.T) {
	eng, net, tgt := injectorTestbed(t)
	inj := NewInjector(tgt)
	inj.Run([]Event{
		{Kind: KindPartition, At: 0, Duration: 10 * sim.Minute, Site: "a"},
		{Kind: KindPartition, At: 5 * sim.Minute, Duration: 10 * sim.Minute, Site: "a"},
	})
	// First window heals at 10m but the second still holds the site dark.
	if err := eng.RunUntil(12 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if net.Reachable("a", "b", "bus") {
		t.Fatal("overlapping window should keep links down at 12m")
	}
	if err := eng.RunUntil(16 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !net.Reachable("a", "b", "bus") {
		t.Fatal("links should heal once the last window ends")
	}
}

func TestInjectorDegradeRestoresSettings(t *testing.T) {
	eng, _, tgt := injectorTestbed(t)
	in, _ := tgt.Fleets["b"].Get("flow-b")
	pf, pd := in.FailureProb(), in.DriftPerAction()
	inj := NewInjector(tgt)
	inj.Run([]Event{{Kind: KindDegrade, At: 0, Duration: 5 * sim.Minute,
		Site: "b", FailureProb: 0.4, Drift: 0.03}})
	if err := eng.RunUntil(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if in.FailureProb() != 0.4 || in.DriftPerAction() != 0.03 {
		t.Fatalf("degrade not applied: failure=%g drift=%g", in.FailureProb(), in.DriftPerAction())
	}
	if err := eng.RunUntil(6 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if in.FailureProb() != pf || in.DriftPerAction() != pd {
		t.Fatalf("degrade not restored: failure=%g drift=%g", in.FailureProb(), in.DriftPerAction())
	}
}

func TestInjectorSkipsHooklessKinds(t *testing.T) {
	eng, _, tgt := injectorTestbed(t)
	inj := NewInjector(tgt)
	inj.Run([]Event{
		{Kind: KindBadCreds, At: 0, Duration: sim.Minute, Site: "a"},
		{Kind: KindByzantine, At: 0, Duration: sim.Minute, Site: "a"},
	})
	if err := eng.RunUntil(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if inj.Injected() != 0 || inj.Skipped() != 2 {
		t.Fatalf("injected=%d skipped=%d, want 0/2 without hooks", inj.Injected(), inj.Skipped())
	}
}

func TestCheckerTerminalAudit(t *testing.T) {
	c := NewChecker()
	c.Submitted("a")
	c.Submitted("b")
	c.Submitted("c")
	c.Terminal("a", nil)
	c.Terminal("b", errors.New("boom"))
	c.Terminal("b", nil) // double terminal
	// c never terminates.
	v := c.Check()
	if len(v) != 2 {
		t.Fatalf("violations = %v, want double-terminal for b and missing terminal for c", v)
	}
}

func TestCheckerWatchNet(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(1).Fork("net"))
	for _, id := range []netsim.SiteID{"a", "b"} {
		net.AddSite(id).Firewall.AllowAll()
	}
	net.FullMesh([]netsim.SiteID{"a", "b"}, netsim.Link{Latency: 50 * sim.Millisecond, Bandwidth: 125e6})
	c := NewChecker()
	c.WatchNet(net)

	// Healthy delivery: no violation.
	if err := net.Send(netsim.Message{From: "a", To: "b", Service: "bus", Size: 100}, func(netsim.Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(c.Violations()) != 0 {
		t.Fatalf("unexpected violations: %v", c.Violations())
	}

	// Cut the link while a message is in flight: without DropInFlight the
	// delivery commits anyway and the checker must flag it.
	if err := net.Send(netsim.Message{From: "a", To: "b", Service: "bus", Size: 100}, func(netsim.Message) {}); err != nil {
		t.Fatal(err)
	}
	net.SetLinkUp("a", "b", false)
	if err := eng.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(c.Violations()) != 1 {
		t.Fatalf("violations = %v, want exactly the down-link delivery", c.Violations())
	}

	// With DropInFlight the same race drops the message instead.
	net.SetLinkUp("a", "b", true)
	net.DropInFlight = true
	delivered := false
	if err := net.Send(netsim.Message{From: "a", To: "b", Service: "bus", Size: 100}, func(netsim.Message) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	net.SetLinkUp("a", "b", false)
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("DropInFlight should have dropped the in-flight message")
	}
	if len(c.Violations()) != 1 {
		t.Fatalf("drop path should add no violations, got %v", c.Violations())
	}
}
