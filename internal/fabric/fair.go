package fabric

import (
	"fmt"
	"sort"
	"strings"
)

// FAIRScore grades a dataset against the four FAIR principles, each 0..1.
type FAIRScore struct {
	Findable      float64
	Accessible    float64
	Interoperable float64
	Reusable      float64
}

// Overall averages the four principles.
func (s FAIRScore) Overall() float64 {
	return (s.Findable + s.Accessible + s.Interoperable + s.Reusable) / 4
}

// String renders "F=0.75 A=1.00 I=0.50 R=0.25 (0.62)".
func (s FAIRScore) String() string {
	return fmt.Sprintf("F=%.2f A=%.2f I=%.2f R=%.2f (%.2f)",
		s.Findable, s.Accessible, s.Interoperable, s.Reusable, s.Overall())
}

// ScoreFAIR assesses one dataset in the context of the mesh (schema registry
// and provenance graph participate in the I and R principles).
//
// The rubric mirrors the published FAIR indicators at the granularity a
// machine can check:
//
//	Findable:      persistent ID, title, >=3 keywords, indexed domain
//	Accessible:    access URL, license string, objects retrievable
//	Interoperable: registered schema, units on numeric fields
//	Reusable:      provenance link resolves, rich metadata (>=4 keys), license
func (m *Mesh) ScoreFAIR(d *Dataset) FAIRScore {
	var s FAIRScore

	// Findable.
	f := 0.0
	if d.ID != "" {
		f += 0.25
	}
	if d.Title != "" {
		f += 0.25
	}
	if len(d.Keywords) >= 3 {
		f += 0.25
	}
	if d.Domain != "" {
		f += 0.25
	}
	s.Findable = f

	// Accessible.
	a := 0.0
	if d.AccessURL != "" {
		a += 0.4
	}
	if d.License != "" {
		a += 0.2
	}
	if len(d.Objects) > 0 {
		present := 0
		for _, ref := range d.Objects {
			if node := m.Node(ref.Site); node != nil && node.Has(ref.ID) {
				present++
			}
		}
		a += 0.4 * float64(present) / float64(len(d.Objects))
	}
	s.Accessible = a

	// Interoperable.
	i := 0.0
	if d.SchemaID != "" {
		if sch, ok := m.schemaByID(d.SchemaID); ok {
			i += 0.5
			numeric, withUnit := 0, 0
			for _, fld := range sch.Fields {
				if fld.Type == TypeNumber {
					numeric++
					if fld.Unit != "" {
						withUnit++
					}
				}
			}
			if numeric == 0 {
				i += 0.5
			} else {
				i += 0.5 * float64(withUnit) / float64(numeric)
			}
		}
	}
	s.Interoperable = i

	// Reusable.
	r := 0.0
	if d.License != "" {
		r += 0.3
	}
	if d.ProvRef != "" && m.Prov.HasEntity(EntityID(d.ProvRef)) {
		r += 0.4
	}
	if len(d.Metadata) >= 4 {
		r += 0.3
	} else {
		r += 0.3 * float64(len(d.Metadata)) / 4
	}
	s.Reusable = r

	return s
}

// schemaByID parses "name@vN" registry keys.
func (m *Mesh) schemaByID(id string) (*Schema, bool) {
	at := strings.LastIndex(id, "@v")
	if at < 0 {
		return m.Schemas.Latest(id)
	}
	name := id[:at]
	var version int
	if _, err := fmt.Sscanf(id[at:], "@v%d", &version); err != nil {
		return nil, false
	}
	return m.Schemas.Get(name, version)
}

// Curator is the autonomous FAIR-governance agent of milestone M6: it walks
// a node's catalog, repairs the deficiencies it can repair mechanically, and
// reports the score movement.
type Curator struct {
	Mesh *Mesh
	// DefaultLicense is applied to unlicensed datasets.
	DefaultLicense string
}

// CurationReport summarises one curation pass.
type CurationReport struct {
	Datasets     int
	Repairs      int
	MeanBefore   float64
	MeanAfter    float64
	PerPrinciple map[string]float64 // mean deltas
}

// Curate runs one pass over a node's datasets.
func (c *Curator) Curate(n *Node) CurationReport {
	rep := CurationReport{PerPrinciple: map[string]float64{}}
	lic := c.DefaultLicense
	if lic == "" {
		lic = "CC-BY-4.0"
	}
	ids := n.Datasets()
	for _, id := range ids {
		d := n.datasets[id]
		before := c.Mesh.ScoreFAIR(d)
		rep.MeanBefore += before.Overall()

		// Keyword enrichment from title and domain tokens.
		if len(d.Keywords) < 3 {
			have := map[string]bool{}
			for _, k := range d.Keywords {
				have[strings.ToLower(k)] = true
			}
			for _, t := range tokens(d.Title + " " + d.Domain) {
				if len(d.Keywords) >= 5 {
					break
				}
				if len(t) > 2 && !have[t] {
					d.Keywords = append(d.Keywords, t)
					have[t] = true
					rep.Repairs++
				}
			}
		}
		if d.License == "" {
			d.License = lic
			rep.Repairs++
		}
		if d.AccessURL == "" {
			d.AccessURL = fmt.Sprintf("aisle://%s/datasets/%s", d.Origin, d.ID)
			rep.Repairs++
		}
		if len(d.Metadata) < 4 {
			if d.Metadata == nil {
				d.Metadata = map[string]string{}
			}
			fill := map[string]string{
				"curated_by": "fair-agent",
				"origin":     string(d.Origin),
				"domain":     d.Domain,
				"size_bytes": fmt.Sprintf("%d", d.TotalSize()),
			}
			for k, v := range fill {
				if _, ok := d.Metadata[k]; !ok && len(d.Metadata) < 6 {
					d.Metadata[k] = v
					rep.Repairs++
				}
			}
		}
		// Implicit schema inference: datasets published without a schema
		// get the domain's generic schema (registered on first use) — the
		// paper's "AI agents can leverage implicit data schemas" repair.
		if d.SchemaID == "" {
			name := "generic-" + d.Domain
			if name == "generic-" {
				name = "generic-untyped"
			}
			sch, ok := c.Mesh.Schemas.Latest(name)
			if !ok {
				sch, _ = c.Mesh.Schemas.Register(Schema{Name: name, Fields: []Field{
					{Name: "value", Type: TypeNumber, Unit: "arb", Required: true},
					{Name: "sample_id", Type: TypeString, Required: true},
					{Name: "timestamp", Type: TypeNumber, Unit: "s"},
				}})
			}
			if sch != nil {
				d.SchemaID = sch.ID()
				rep.Repairs++
			}
		}
		// Provenance stub: if missing, record a minimal generation activity
		// so lineage is at least anchored.
		if d.ProvRef == "" {
			ent := c.Mesh.Prov.AddEntity("dataset:"+d.ID, map[string]string{"title": d.Title})
			act := c.Mesh.Prov.AddActivity("curation:"+d.ID, n.mesh.eng.Now(), n.mesh.eng.Now())
			c.Mesh.Prov.WasGeneratedBy(ent, act)
			d.ProvRef = string(ent)
			rep.Repairs++
		}

		after := c.Mesh.ScoreFAIR(d)
		rep.MeanAfter += after.Overall()
		rep.PerPrinciple["findable"] += after.Findable - before.Findable
		rep.PerPrinciple["accessible"] += after.Accessible - before.Accessible
		rep.PerPrinciple["interoperable"] += after.Interoperable - before.Interoperable
		rep.PerPrinciple["reusable"] += after.Reusable - before.Reusable
		// Re-index with enriched keywords.
		c.Mesh.index.add(d)
	}
	rep.Datasets = len(ids)
	if rep.Datasets > 0 {
		rep.MeanBefore /= float64(rep.Datasets)
		rep.MeanAfter /= float64(rep.Datasets)
		keys := make([]string, 0, len(rep.PerPrinciple))
		for k := range rep.PerPrinciple {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rep.PerPrinciple[k] /= float64(rep.Datasets)
		}
	}
	return rep
}
