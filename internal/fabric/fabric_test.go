package fabric

import (
	"errors"
	"testing"

	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
)

func testMesh(t *testing.T) (*sim.Engine, *netsim.Network, *Mesh) {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(3))
	for _, s := range []netsim.SiteID{"ornl", "anl"} {
		net.AddSite(s).Firewall.AllowAll()
	}
	net.Connect("ornl", "anl", netsim.Link{Latency: 10 * sim.Millisecond, Bandwidth: 10e6})
	m := NewMesh(net)
	m.AddNode("ornl")
	m.AddNode("anl")
	return eng, net, m
}

func TestPutGetContentAddressed(t *testing.T) {
	_, _, m := testMesh(t)
	n := m.Node("ornl")
	data := []byte("diffraction pattern")
	ref := n.Put(data)
	ref2 := n.Put(data)
	if ref.ID != ref2.ID {
		t.Fatal("identical content produced different IDs")
	}
	got, err := n.GetLocal(ref.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("round-trip mismatch")
	}
	if _, err := n.GetLocal("missing"); !errors.Is(err, ErrNoObject) {
		t.Fatalf("err = %v, want ErrNoObject", err)
	}
}

func TestFetchLocalAndRemote(t *testing.T) {
	eng, _, m := testMesh(t)
	ref := m.Node("ornl").Put(make([]byte, 1e6)) // 1MB

	var localAt, remoteAt sim.Time
	m.Fetch("ornl", ref, func(d []byte, err error) {
		if err != nil {
			t.Errorf("local fetch: %v", err)
		}
		localAt = eng.Now()
	})
	m.Fetch("anl", ref, func(d []byte, err error) {
		if err != nil {
			t.Errorf("remote fetch: %v", err)
		}
		if len(d) != 1e6 {
			t.Errorf("remote fetch size %d", len(d))
		}
		remoteAt = eng.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if localAt >= remoteAt {
		t.Fatalf("remote fetch (%v) should be slower than local (%v)", remoteAt, localAt)
	}
	// 1MB at 10MB/s = 100ms serialization + 2x10ms propagation.
	if remoteAt < 100*sim.Millisecond {
		t.Fatalf("remote fetch at %v ignored bandwidth", remoteAt)
	}
}

func TestFetchUnreachable(t *testing.T) {
	eng, net, m := testMesh(t)
	ref := m.Node("ornl").Put([]byte("x"))
	net.SetLinkUp("ornl", "anl", false)
	var gotErr error
	m.Fetch("anl", ref, func(_ []byte, err error) { gotErr = err })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", gotErr)
	}
}

func TestReplicate(t *testing.T) {
	eng, _, m := testMesh(t)
	ref := m.Node("ornl").Put([]byte("payload"))
	var newRef Ref
	m.Replicate(ref, "anl", func(r Ref, err error) {
		if err != nil {
			t.Errorf("replicate: %v", err)
		}
		newRef = r
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if newRef.Site != "anl" || !m.Node("anl").Has(newRef.ID) {
		t.Fatal("replica not stored at anl")
	}
	if newRef.ID != ref.ID {
		t.Fatal("content address changed during replication")
	}
}

func TestPublishAndSearch(t *testing.T) {
	_, _, m := testMesh(t)
	n := m.Node("ornl")
	n.Publish(Dataset{ID: "ds-1", Title: "Perovskite PLQY sweep", Domain: "materials",
		Keywords: []string{"perovskite", "nanocrystal"}})
	n.Publish(Dataset{ID: "ds-2", Title: "Alloy hardness study", Domain: "materials",
		Keywords: []string{"alloy", "bmg"}})
	m.Node("anl").Publish(Dataset{ID: "ds-3", Title: "Perovskite stability", Domain: "materials"})

	hits := m.Search("perovskite")
	if len(hits) != 2 {
		t.Fatalf("search hits = %d, want 2 (federated)", len(hits))
	}
	hits = m.Search("materials perovskite nanocrystal")
	if hits[0].Dataset.ID != "ds-1" {
		t.Fatalf("best hit = %s, want ds-1", hits[0].Dataset.ID)
	}
	if len(m.Search("nonexistent")) != 0 {
		t.Fatal("phantom hits")
	}
}

func TestDatasetLookup(t *testing.T) {
	_, _, m := testMesh(t)
	n := m.Node("ornl")
	n.Publish(Dataset{ID: "d1", Title: "T"})
	if _, err := n.Dataset("d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dataset("ghost"); !errors.Is(err, ErrNoDataset) {
		t.Fatalf("err = %v, want ErrNoDataset", err)
	}
	ids := n.Datasets()
	if len(ids) != 1 || ids[0] != "d1" {
		t.Fatalf("Datasets = %v", ids)
	}
}

func TestSchemaEvolutionCompatible(t *testing.T) {
	r := NewSchemaRegistry()
	v1, err := r.Register(Schema{Name: "xrd", Fields: []Field{
		{Name: "angle", Type: TypeNumber, Unit: "deg", Required: true},
		{Name: "intensity", Type: TypeNumber, Unit: "counts", Required: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version != 1 {
		t.Fatalf("first version = %d", v1.Version)
	}
	// Adding an optional field is compatible.
	v2, err := r.Register(Schema{Name: "xrd", Fields: []Field{
		{Name: "angle", Type: TypeNumber, Unit: "deg", Required: true},
		{Name: "intensity", Type: TypeNumber, Unit: "counts", Required: true},
		{Name: "temperature", Type: TypeNumber, Unit: "C"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version != 2 {
		t.Fatalf("second version = %d", v2.Version)
	}
	latest, _ := r.Latest("xrd")
	if latest.Version != 2 {
		t.Fatal("Latest not updated")
	}
	if _, ok := r.Get("xrd", 1); !ok {
		t.Fatal("old version lost")
	}
}

func TestSchemaEvolutionIncompatible(t *testing.T) {
	r := NewSchemaRegistry()
	if _, err := r.Register(Schema{Name: "s", Fields: []Field{
		{Name: "x", Type: TypeNumber, Required: true},
	}}); err != nil {
		t.Fatal(err)
	}
	// Removing a required field fails.
	if _, err := r.Register(Schema{Name: "s", Fields: []Field{
		{Name: "y", Type: TypeNumber},
	}}); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("removal: err = %v, want ErrIncompatible", err)
	}
	// Retyping fails.
	if _, err := r.Register(Schema{Name: "s", Fields: []Field{
		{Name: "x", Type: TypeString, Required: true},
	}}); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("retype: err = %v, want ErrIncompatible", err)
	}
	// New required field fails.
	if _, err := r.Register(Schema{Name: "s", Fields: []Field{
		{Name: "x", Type: TypeNumber, Required: true},
		{Name: "z", Type: TypeNumber, Required: true},
	}}); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("new required: err = %v, want ErrIncompatible", err)
	}
}

func TestSchemaNegotiate(t *testing.T) {
	a := &Schema{Name: "a", Fields: []Field{
		{Name: "temp", Type: TypeNumber, Required: true},
		{Name: "plqy", Type: TypeNumber},
		{Name: "note", Type: TypeString},
	}}
	b := &Schema{Name: "b", Fields: []Field{
		{Name: "temp", Type: TypeNumber},
		{Name: "plqy", Type: TypeString}, // type conflict: dropped
		{Name: "extra", Type: TypeBool},
	}}
	common, ok := Negotiate(a, b)
	if !ok {
		t.Fatal("negotiation failed")
	}
	if len(common.Fields) != 1 || common.Fields[0].Name != "temp" {
		t.Fatalf("common fields = %v", common.Fields)
	}
	if common.Fields[0].Required {
		t.Fatal("requiredness should be AND of both sides")
	}
	empty := &Schema{Name: "c", Fields: []Field{{Name: "zzz", Type: TypeBool}}}
	if _, ok := Negotiate(a, empty); ok {
		t.Fatal("disjoint schemas should not negotiate")
	}
}

func TestSchemaValidateRecord(t *testing.T) {
	s := &Schema{Name: "s", Fields: []Field{
		{Name: "x", Type: TypeNumber, Required: true},
		{Name: "label", Type: TypeString},
		{Name: "flag", Type: TypeBool},
	}}
	if err := s.Validate(Record{"x": 1.5, "label": "ok", "flag": true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(Record{"x": 2}); err != nil {
		t.Fatalf("int should satisfy number: %v", err)
	}
	if err := s.Validate(Record{"label": "no-x"}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("missing required: %v", err)
	}
	if err := s.Validate(Record{"x": "str"}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("wrong type: %v", err)
	}
	if err := s.Validate(Record{"x": 1, "unknown": 9}); err != nil {
		t.Fatalf("open-world fields should pass: %v", err)
	}
}

func TestFAIRScoring(t *testing.T) {
	_, _, m := testMesh(t)
	n := m.Node("ornl")
	sch, _ := m.Schemas.Register(Schema{Name: "plqy", Fields: []Field{
		{Name: "plqy", Type: TypeNumber, Unit: "ratio", Required: true},
	}})
	ref := n.Put([]byte("data"))
	ent := m.Prov.AddEntity("e1", nil)
	act := m.Prov.AddActivity("a1", 0, 0)
	m.Prov.WasGeneratedBy(ent, act)

	full := n.Publish(Dataset{
		ID: "good", Title: "Good dataset", Domain: "materials",
		Keywords: []string{"a", "b", "c"}, SchemaID: sch.ID(),
		License: "MIT", AccessURL: "aisle://x", ProvRef: "e1",
		Objects:  []Ref{ref},
		Metadata: map[string]string{"k1": "v", "k2": "v", "k3": "v", "k4": "v"},
	})
	bare := n.Publish(Dataset{ID: "bare"})

	fullScore := m.ScoreFAIR(full)
	bareScore := m.ScoreFAIR(bare)
	if fullScore.Overall() < 0.95 {
		t.Fatalf("complete dataset scores %v", fullScore)
	}
	if bareScore.Overall() > 0.4 {
		t.Fatalf("bare dataset scores %v, should be poor", bareScore)
	}
}

func TestCuratorRaisesFAIR(t *testing.T) {
	_, _, m := testMesh(t)
	n := m.Node("ornl")
	for i := 0; i < 10; i++ {
		n.Publish(Dataset{
			ID:    fmtID("raw", i),
			Title: "Uncurated perovskite synthesis run", Domain: "materials",
		})
	}
	c := &Curator{Mesh: m}
	rep := c.Curate(n)
	if rep.Datasets != 10 {
		t.Fatalf("curated %d datasets", rep.Datasets)
	}
	if rep.MeanAfter <= rep.MeanBefore {
		t.Fatalf("curation did not improve FAIR: %v -> %v", rep.MeanBefore, rep.MeanAfter)
	}
	if rep.MeanAfter < 0.6 {
		t.Fatalf("post-curation mean %v too low", rep.MeanAfter)
	}
	if rep.Repairs == 0 {
		t.Fatal("no repairs recorded")
	}
	// Curated keywords should make datasets findable.
	if len(m.Search("perovskite")) == 0 {
		t.Fatal("curated datasets not searchable")
	}
}

func fmtID(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i))
}
