package fabric

import (
	"math"

	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

// StreamEvent is one reading on a high-velocity instrument stream.
type StreamEvent struct {
	At     sim.Time
	Source string
	Value  float64
	// Truth marks injected anomalies in experiments; production code
	// ignores it. It lets E10 score the assessor's precision/recall.
	Truth bool
}

// Assessment is the quality verdict for one event.
type Assessment struct {
	Event     StreamEvent
	Anomalous bool
	Reason    string
}

// StreamProcessor is the near-real-time quality-assessment pipeline of
// milestone M7. Per source it keeps a rolling window and applies three
// detectors:
//
//   - range check against configured physical bounds,
//   - spike detection (robust z-score against the rolling window),
//   - stuck-sensor detection (window variance collapse).
//
// Events flagged anomalous are routed to the anomaly handler (triage);
// normal events flow to the sink, optionally reduced (every Nth event kept)
// to model intelligent data reduction.
type StreamProcessor struct {
	// Window is the per-source rolling window length. Default 64.
	Window int
	// ZThreshold flags |z| above this as spikes. Default 5.
	ZThreshold float64
	// Lo/Hi are physical bounds; NaN disables the range check.
	Lo, Hi float64
	// StuckWindow: if this many consecutive identical values arrive, the
	// sensor is stuck. Default 8.
	StuckWindow int
	// ReduceKeep1InN keeps 1 of N normal events (0/1 = keep all).
	ReduceKeep1InN int

	OnAnomaly func(Assessment)
	OnNormal  func(Assessment)

	metrics *telemetry.Registry
	windows map[string]*window
	normals int
}

type window struct {
	vals  []float64
	idx   int
	full  bool
	same  int
	last  float64
	first bool
}

// NewStreamProcessor returns a processor with default thresholds and
// unbounded range.
func NewStreamProcessor() *StreamProcessor {
	return &StreamProcessor{
		Window:      64,
		ZThreshold:  5,
		Lo:          math.Inf(-1),
		Hi:          math.Inf(1),
		StuckWindow: 8,
		metrics:     telemetry.NewRegistry(),
		windows:     make(map[string]*window),
	}
}

// Metrics exposes processor telemetry.
func (p *StreamProcessor) Metrics() *telemetry.Registry { return p.metrics }

// Ingest processes one event synchronously.
func (p *StreamProcessor) Ingest(ev StreamEvent) Assessment {
	p.metrics.Counter("stream.ingested").Inc()
	w := p.windows[ev.Source]
	if w == nil {
		w = &window{vals: make([]float64, 0, p.Window), first: true}
		p.windows[ev.Source] = w
	}

	a := Assessment{Event: ev}

	switch {
	case ev.Value < p.Lo || ev.Value > p.Hi:
		a.Anomalous = true
		a.Reason = "range"
	case p.isStuck(w, ev.Value):
		a.Anomalous = true
		a.Reason = "stuck"
	default:
		if z, ok := p.zscore(w, ev.Value); ok && math.Abs(z) > p.ZThreshold {
			a.Anomalous = true
			a.Reason = "spike"
		}
	}

	// Update the window only with values that look physically plausible —
	// otherwise one spike poisons the statistics.
	if !a.Anomalous || a.Reason == "stuck" {
		p.push(w, ev.Value)
	}

	if a.Anomalous {
		p.metrics.Counter("stream.anomalies").Inc()
		if p.OnAnomaly != nil {
			p.OnAnomaly(a)
		}
		return a
	}
	p.metrics.Counter("stream.normal").Inc()
	p.normals++
	if p.OnNormal != nil {
		keep := p.ReduceKeep1InN <= 1 || p.normals%p.ReduceKeep1InN == 0
		if keep {
			p.OnNormal(a)
		} else {
			p.metrics.Counter("stream.reduced").Inc()
		}
	}
	return a
}

func (p *StreamProcessor) push(w *window, v float64) {
	if len(w.vals) < p.Window {
		w.vals = append(w.vals, v)
	} else {
		w.vals[w.idx] = v
		w.idx = (w.idx + 1) % p.Window
		w.full = true
	}
	if !w.first && v == w.last {
		w.same++
	} else {
		w.same = 0
	}
	w.last = v
	w.first = false
}

func (p *StreamProcessor) isStuck(w *window, v float64) bool {
	return !w.first && v == w.last && w.same+1 >= p.StuckWindow
}

// zscore computes the robust z of v against the window (median/MAD-lite:
// mean and stddev over the window, which the spike exclusion keeps clean).
// It reports false until the window has at least 8 samples.
func (p *StreamProcessor) zscore(w *window, v float64) (float64, bool) {
	n := len(w.vals)
	if n < 8 {
		return 0, false
	}
	var sum float64
	for _, x := range w.vals {
		sum += x
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range w.vals {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n))
	if sd < 1e-12 {
		sd = 1e-12
	}
	return (v - mean) / sd, true
}

// StreamStats summarises detector performance against injected truth.
type StreamStats struct {
	Events         int
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	TrueNegatives  int
}

// Precision reports TP/(TP+FP), 1 when no positives were raised.
func (s StreamStats) Precision() float64 {
	d := s.TruePositives + s.FalsePositives
	if d == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(d)
}

// Recall reports TP/(TP+FN), 1 when nothing was injected.
func (s StreamStats) Recall() float64 {
	d := s.TruePositives + s.FalseNegatives
	if d == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(d)
}

// Score tallies an assessment against its ground truth.
func (s *StreamStats) Score(a Assessment) {
	s.Events++
	switch {
	case a.Event.Truth && a.Anomalous:
		s.TruePositives++
	case a.Event.Truth && !a.Anomalous:
		s.FalseNegatives++
	case !a.Event.Truth && a.Anomalous:
		s.FalsePositives++
	default:
		s.TrueNegatives++
	}
}
