// Package fabric implements AISLE's agent-driven data management layer
// (dimension 2, milestones M5-M7): a federated data mesh in which every
// laboratory runs a data node with a content-addressed object store,
// dataset records with registered schemas, a global discovery index,
// pass-by-reference proxy objects (the ProxyStore pattern), replication,
// FAIR scoring with autonomous curation, PROV-O provenance, and a
// near-real-time stream processor with automated quality assessment.
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

// Errors surfaced by mesh operations.
var (
	ErrNoObject    = errors.New("fabric: object not found")
	ErrNoDataset   = errors.New("fabric: dataset not found")
	ErrNoNode      = errors.New("fabric: no data node at site")
	ErrUnreachable = errors.New("fabric: site unreachable")
)

// ObjectID is the content address (SHA-256) of a stored object.
type ObjectID string

// Ref is a pass-by-reference handle to an object held at a site. Moving a
// Ref between agents costs ~100 bytes; resolving it moves the data.
type Ref struct {
	ID   ObjectID
	Site netsim.SiteID
	Size int
}

// Dataset is a catalog record describing a collection of objects.
type Dataset struct {
	ID        string
	Title     string
	Domain    string // "materials", "chemistry", "biology", ...
	Keywords  []string
	SchemaID  string
	License   string
	AccessURL string
	ProvRef   string // provenance entity ID
	Origin    netsim.SiteID
	CreatedAt sim.Time
	Objects   []Ref
	Metadata  map[string]string
}

// TotalSize sums the object sizes.
func (d *Dataset) TotalSize() int {
	var n int
	for _, o := range d.Objects {
		n += o.Size
	}
	return n
}

func (d *Dataset) clone() *Dataset {
	c := *d
	c.Keywords = append([]string(nil), d.Keywords...)
	c.Objects = append([]Ref(nil), d.Objects...)
	c.Metadata = make(map[string]string, len(d.Metadata))
	for k, v := range d.Metadata {
		c.Metadata[k] = v
	}
	return &c
}

// Node is one site's data plane: object store plus dataset catalog.
type Node struct {
	site     netsim.SiteID
	mesh     *Mesh
	objects  map[ObjectID][]byte
	datasets map[string]*Dataset
}

// Site reports the node's site.
func (n *Node) Site() netsim.SiteID { return n.site }

// Put stores bytes content-addressed and returns a Ref.
func (n *Node) Put(data []byte) Ref {
	sum := sha256.Sum256(data)
	id := ObjectID(hex.EncodeToString(sum[:8]))
	if _, ok := n.objects[id]; !ok {
		n.objects[id] = append([]byte(nil), data...)
		n.mesh.metrics.Counter("fabric.objects").Inc()
		n.mesh.metrics.Counter("fabric.bytes_stored").Add(int64(len(data)))
	}
	return Ref{ID: id, Site: n.site, Size: len(data)}
}

// GetLocal returns an object held at this node.
func (n *Node) GetLocal(id ObjectID) ([]byte, error) {
	d, ok := n.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s at %s", ErrNoObject, id, n.site)
	}
	return d, nil
}

// Has reports whether the node holds the object.
func (n *Node) Has(id ObjectID) bool {
	_, ok := n.objects[id]
	return ok
}

// Publish registers a dataset in the local catalog and the global index.
func (n *Node) Publish(d Dataset) *Dataset {
	d.Origin = n.site
	d.CreatedAt = n.mesh.eng.Now()
	c := d.clone()
	n.datasets[d.ID] = c
	n.mesh.index.add(c)
	n.mesh.metrics.Counter("fabric.datasets").Inc()
	return c
}

// Dataset fetches a catalog record by ID.
func (n *Node) Dataset(id string) (*Dataset, error) {
	d, ok := n.datasets[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s at %s", ErrNoDataset, id, n.site)
	}
	return d, nil
}

// Datasets lists local dataset IDs, sorted.
func (n *Node) Datasets() []string {
	out := make([]string, 0, len(n.datasets))
	for id := range n.datasets {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Mesh is the federation of data nodes plus the global discovery index.
type Mesh struct {
	net     *netsim.Network
	eng     *sim.Engine
	metrics *telemetry.Registry
	nodes   map[netsim.SiteID]*Node
	index   *index

	// Schemas is the federated schema registry.
	Schemas *SchemaRegistry
	// Prov is the federation-wide provenance graph.
	Prov *ProvGraph
}

// NewMesh builds an empty mesh over the network.
func NewMesh(net *netsim.Network) *Mesh {
	return &Mesh{
		net:     net,
		eng:     net.Engine(),
		metrics: telemetry.NewRegistry(),
		nodes:   make(map[netsim.SiteID]*Node),
		index:   newIndex(),
		Schemas: NewSchemaRegistry(),
		Prov:    NewProvGraph(),
	}
}

// Metrics exposes mesh telemetry.
func (m *Mesh) Metrics() *telemetry.Registry { return m.metrics }

// AddNode creates the data node for a site.
func (m *Mesh) AddNode(site netsim.SiteID) *Node {
	n := &Node{
		site:     site,
		mesh:     m,
		objects:  make(map[ObjectID][]byte),
		datasets: make(map[string]*Dataset),
	}
	m.nodes[site] = n
	return n
}

// Node returns the data node at a site, or nil.
func (m *Mesh) Node(site netsim.SiteID) *Node { return m.nodes[site] }

// Fetch resolves a Ref from anywhere in the federation to the requesting
// site. The request travels as a small message; the response carries the
// object's bytes, so WAN bandwidth and latency apply. cb receives the data
// or an error.
func (m *Mesh) Fetch(at netsim.SiteID, ref Ref, cb func([]byte, error)) {
	src, ok := m.nodes[ref.Site]
	if !ok {
		cb(nil, fmt.Errorf("%w: %s", ErrNoNode, ref.Site))
		return
	}
	if ref.Site == at {
		data, err := src.GetLocal(ref.ID)
		m.eng.Schedule(0, func() { cb(data, err) })
		return
	}
	m.metrics.Counter("fabric.fetches").Inc()
	// Request hop.
	err := m.net.Send(netsim.Message{From: at, To: ref.Site, Service: "fabric", Size: 100},
		func(netsim.Message) {
			data, gerr := src.GetLocal(ref.ID)
			if gerr != nil {
				// Error response is small.
				_ = m.net.Send(netsim.Message{From: ref.Site, To: at, Service: "fabric", Size: 100},
					func(netsim.Message) { cb(nil, gerr) })
				return
			}
			// Data hop at full size.
			m.metrics.Counter("fabric.bytes_moved").Add(int64(len(data)))
			serr := m.net.Send(netsim.Message{From: ref.Site, To: at, Service: "fabric", Size: len(data)},
				func(netsim.Message) { cb(append([]byte(nil), data...), nil) })
			if serr != nil {
				cb(nil, fmt.Errorf("%w: %v", ErrUnreachable, serr))
			}
		})
	if err != nil {
		cb(nil, fmt.Errorf("%w: %v", ErrUnreachable, err))
	}
}

// Replicate copies an object to another site's store, returning the new Ref
// through cb. Used for resilience and data locality.
func (m *Mesh) Replicate(ref Ref, to netsim.SiteID, cb func(Ref, error)) {
	dst, ok := m.nodes[to]
	if !ok {
		cb(Ref{}, fmt.Errorf("%w: %s", ErrNoNode, to))
		return
	}
	m.Fetch(to, ref, func(data []byte, err error) {
		if err != nil {
			cb(Ref{}, err)
			return
		}
		m.metrics.Counter("fabric.replications").Inc()
		cb(dst.Put(data), nil)
	})
}

// SearchResult is one discovery hit.
type SearchResult struct {
	Dataset *Dataset
	Score   float64
}

// Search queries the global discovery index. Matching is keyword- and
// domain-based with TF-style scoring; results are sorted by score then ID.
func (m *Mesh) Search(query string) []SearchResult {
	m.metrics.Counter("fabric.searches").Inc()
	return m.index.search(query)
}

// index is the global discovery index: inverted keyword map.
type index struct {
	byToken map[string][]*Dataset
}

func newIndex() *index { return &index{byToken: make(map[string][]*Dataset)} }

func tokens(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	})
	return fields
}

func (ix *index) add(d *Dataset) {
	seen := map[string]bool{}
	addTok := func(t string) {
		if t == "" || seen[t] {
			return
		}
		seen[t] = true
		ix.byToken[t] = append(ix.byToken[t], d)
	}
	for _, t := range tokens(d.Title) {
		addTok(t)
	}
	for _, k := range d.Keywords {
		for _, t := range tokens(k) {
			addTok(t)
		}
	}
	addTok(strings.ToLower(d.Domain))
	addTok(strings.ToLower(d.ID))
}

func (ix *index) search(query string) []SearchResult {
	scores := map[*Dataset]float64{}
	for _, t := range tokens(query) {
		for _, d := range ix.byToken[t] {
			scores[d]++
		}
	}
	out := make([]SearchResult, 0, len(scores))
	for d, s := range scores {
		out = append(out, SearchResult{Dataset: d, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Dataset.ID < out[j].Dataset.ID
	})
	return out
}
