package fabric

import (
	"fmt"
	"sort"

	"github.com/aisle-sim/aisle/internal/sim"
)

// The provenance graph follows the PROV-O core: Entities (data), Activities
// (processes bounded in time), and Agents (who/what is responsible), with
// the standard relations wasGeneratedBy, used, wasAssociatedWith,
// wasDerivedFrom, and actedOnBehalfOf. Autonomous decisions (M7) are
// recorded as activities associated with their deciding agent, making every
// AI decision traceable across facilities.

// EntityID names a provenance entity.
type EntityID string

// ActivityID names a provenance activity.
type ActivityID string

// AgentID names a provenance agent.
type AgentID string

// Entity is a data artifact.
type Entity struct {
	ID    EntityID
	Attrs map[string]string
}

// Activity is a time-bounded process.
type Activity struct {
	ID      ActivityID
	Started sim.Time
	Ended   sim.Time
	Attrs   map[string]string
}

// Agent is a responsible party (human, software agent, instrument).
type Agent struct {
	ID    AgentID
	Attrs map[string]string
}

// ProvGraph is an append-only provenance store.
type ProvGraph struct {
	entities   map[EntityID]*Entity
	activities map[ActivityID]*Activity
	agents     map[AgentID]*Agent

	generatedBy  map[EntityID]ActivityID   // entity -> activity
	used         map[ActivityID][]EntityID // activity -> inputs
	associated   map[ActivityID][]AgentID
	derivedFrom  map[EntityID][]EntityID
	actedFor     map[AgentID]AgentID
	generatedSeq []EntityID // insertion order, for deterministic walks
}

// NewProvGraph returns an empty graph.
func NewProvGraph() *ProvGraph {
	return &ProvGraph{
		entities:    make(map[EntityID]*Entity),
		activities:  make(map[ActivityID]*Activity),
		agents:      make(map[AgentID]*Agent),
		generatedBy: make(map[EntityID]ActivityID),
		used:        make(map[ActivityID][]EntityID),
		associated:  make(map[ActivityID][]AgentID),
		derivedFrom: make(map[EntityID][]EntityID),
		actedFor:    make(map[AgentID]AgentID),
	}
}

// AddEntity records an entity (idempotent by ID).
func (g *ProvGraph) AddEntity(id string, attrs map[string]string) EntityID {
	eid := EntityID(id)
	if _, ok := g.entities[eid]; !ok {
		g.entities[eid] = &Entity{ID: eid, Attrs: attrs}
		g.generatedSeq = append(g.generatedSeq, eid)
	}
	return eid
}

// AddActivity records an activity.
func (g *ProvGraph) AddActivity(id string, started, ended sim.Time) ActivityID {
	aid := ActivityID(id)
	if _, ok := g.activities[aid]; !ok {
		g.activities[aid] = &Activity{ID: aid, Started: started, Ended: ended}
	}
	return aid
}

// AddAgent records an agent.
func (g *ProvGraph) AddAgent(id string, attrs map[string]string) AgentID {
	gid := AgentID(id)
	if _, ok := g.agents[gid]; !ok {
		g.agents[gid] = &Agent{ID: gid, Attrs: attrs}
	}
	return gid
}

// HasEntity reports whether the entity exists.
func (g *ProvGraph) HasEntity(id EntityID) bool {
	_, ok := g.entities[id]
	return ok
}

// Entities reports the number of entities.
func (g *ProvGraph) Entities() int { return len(g.entities) }

// WasGeneratedBy links an entity to the activity that produced it.
func (g *ProvGraph) WasGeneratedBy(e EntityID, a ActivityID) {
	g.generatedBy[e] = a
}

// Used links an activity to an input entity.
func (g *ProvGraph) Used(a ActivityID, e EntityID) {
	g.used[a] = append(g.used[a], e)
}

// WasAssociatedWith links an activity to a responsible agent.
func (g *ProvGraph) WasAssociatedWith(a ActivityID, ag AgentID) {
	g.associated[a] = append(g.associated[a], ag)
}

// WasDerivedFrom links a derived entity to its source.
func (g *ProvGraph) WasDerivedFrom(derived, source EntityID) {
	g.derivedFrom[derived] = append(g.derivedFrom[derived], source)
}

// ActedOnBehalfOf records delegation between agents.
func (g *ProvGraph) ActedOnBehalfOf(delegate, responsible AgentID) {
	g.actedFor[delegate] = responsible
}

// Lineage returns every upstream entity reachable from e through
// wasDerivedFrom and generatedBy/used chains, sorted.
func (g *ProvGraph) Lineage(e EntityID) []EntityID {
	seen := map[EntityID]bool{}
	var walk func(EntityID)
	walk = func(cur EntityID) {
		for _, src := range g.derivedFrom[cur] {
			if !seen[src] {
				seen[src] = true
				walk(src)
			}
		}
		if act, ok := g.generatedBy[cur]; ok {
			for _, in := range g.used[act] {
				if !seen[in] {
					seen[in] = true
					walk(in)
				}
			}
		}
	}
	walk(e)
	out := make([]EntityID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Responsible resolves the chain of responsibility for an entity: the
// agents associated with its generating activity, with delegation expanded.
func (g *ProvGraph) Responsible(e EntityID) []AgentID {
	act, ok := g.generatedBy[e]
	if !ok {
		return nil
	}
	seen := map[AgentID]bool{}
	var out []AgentID
	for _, ag := range g.associated[act] {
		cur := ag
		for {
			if !seen[cur] {
				seen[cur] = true
				out = append(out, cur)
			}
			next, ok := g.actedFor[cur]
			if !ok || seen[next] {
				break
			}
			cur = next
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural integrity: every referenced node exists and
// the derivation graph is acyclic.
func (g *ProvGraph) Validate() error {
	for e, a := range g.generatedBy {
		if _, ok := g.entities[e]; !ok {
			return fmt.Errorf("fabric: generatedBy references unknown entity %s", e)
		}
		if _, ok := g.activities[a]; !ok {
			return fmt.Errorf("fabric: generatedBy references unknown activity %s", a)
		}
	}
	for a, es := range g.used {
		if _, ok := g.activities[a]; !ok {
			return fmt.Errorf("fabric: used references unknown activity %s", a)
		}
		for _, e := range es {
			if _, ok := g.entities[e]; !ok {
				return fmt.Errorf("fabric: used references unknown entity %s", e)
			}
		}
	}
	// Cycle check over wasDerivedFrom.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[EntityID]int{}
	var visit func(EntityID) error
	visit = func(e EntityID) error {
		color[e] = gray
		for _, src := range g.derivedFrom[e] {
			switch color[src] {
			case gray:
				return fmt.Errorf("fabric: provenance cycle through %s", src)
			case white:
				if err := visit(src); err != nil {
					return err
				}
			}
		}
		color[e] = black
		return nil
	}
	for _, e := range g.generatedSeq {
		if color[e] == white {
			if err := visit(e); err != nil {
				return err
			}
		}
	}
	return nil
}
