package fabric

import (
	"errors"
	"fmt"
)

// FieldType enumerates schema field types.
type FieldType string

// Field types.
const (
	TypeNumber FieldType = "number"
	TypeString FieldType = "string"
	TypeBool   FieldType = "bool"
)

// Field is one column of a dataset schema.
type Field struct {
	Name     string
	Type     FieldType
	Unit     string
	Required bool
}

// Schema describes a dataset's record structure. Versions of the same Name
// form an evolution chain governed by compatibility rules.
type Schema struct {
	Name    string
	Version int
	Fields  []Field
}

// ID renders the registry key "name@vN".
func (s *Schema) ID() string { return fmt.Sprintf("%s@v%d", s.Name, s.Version) }

// Field looks up a field by name.
func (s *Schema) Field(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Errors from schema registration and validation.
var (
	ErrIncompatible  = errors.New("fabric: incompatible schema evolution")
	ErrUnknownSchema = errors.New("fabric: unknown schema")
	ErrBadRecord     = errors.New("fabric: record does not match schema")
)

// SchemaRegistry stores schema versions and enforces compatible evolution:
// a new version may add optional fields and relax requiredness, but may not
// remove or retype fields that existing consumers rely on. This is the
// "dynamic schema evolution without manual intervention" mechanism of the
// paper's data-management dimension: agents submit schema candidates, the
// registry accepts or rejects mechanically.
type SchemaRegistry struct {
	versions map[string][]*Schema // name -> ordered versions
}

// NewSchemaRegistry returns an empty registry.
func NewSchemaRegistry() *SchemaRegistry {
	return &SchemaRegistry{versions: make(map[string][]*Schema)}
}

// Latest returns the newest version of the named schema.
func (r *SchemaRegistry) Latest(name string) (*Schema, bool) {
	vs := r.versions[name]
	if len(vs) == 0 {
		return nil, false
	}
	return vs[len(vs)-1], true
}

// Get fetches a specific version.
func (r *SchemaRegistry) Get(name string, version int) (*Schema, bool) {
	for _, s := range r.versions[name] {
		if s.Version == version {
			return s, true
		}
	}
	return nil, false
}

// Register adds a schema. The first version of a name always succeeds;
// subsequent versions must be backward compatible with the latest.
func (r *SchemaRegistry) Register(s Schema) (*Schema, error) {
	prev, ok := r.Latest(s.Name)
	if ok {
		if err := compatible(prev, &s); err != nil {
			return nil, err
		}
		s.Version = prev.Version + 1
	} else {
		s.Version = 1
	}
	c := s
	c.Fields = append([]Field(nil), s.Fields...)
	r.versions[s.Name] = append(r.versions[s.Name], &c)
	return &c, nil
}

// compatible checks backward compatibility of next against prev.
func compatible(prev, next *Schema) error {
	for _, pf := range prev.Fields {
		nf, ok := next.Field(pf.Name)
		if !ok {
			if pf.Required {
				return fmt.Errorf("%w: required field %q removed", ErrIncompatible, pf.Name)
			}
			continue
		}
		if nf.Type != pf.Type {
			return fmt.Errorf("%w: field %q retyped %s -> %s", ErrIncompatible, pf.Name, pf.Type, nf.Type)
		}
		if nf.Unit != pf.Unit && pf.Unit != "" {
			return fmt.Errorf("%w: field %q unit changed %q -> %q", ErrIncompatible, pf.Name, pf.Unit, nf.Unit)
		}
	}
	// New fields must be optional: existing producers don't emit them.
	for _, nf := range next.Fields {
		if _, ok := prev.Field(nf.Name); !ok && nf.Required {
			return fmt.Errorf("%w: new field %q must be optional", ErrIncompatible, nf.Name)
		}
	}
	return nil
}

// Negotiate computes the widest schema two parties can both handle: the
// intersection of fields with matching types. Agents use this to exchange
// data across institutions without manual mapping. It reports false when
// the intersection is empty.
func Negotiate(a, b *Schema) (Schema, bool) {
	var out Schema
	out.Name = a.Name + "+" + b.Name
	for _, fa := range a.Fields {
		fb, ok := b.Field(fa.Name)
		if !ok || fa.Type != fb.Type {
			continue
		}
		f := fa
		f.Required = fa.Required && fb.Required
		out.Fields = append(out.Fields, f)
	}
	return out, len(out.Fields) > 0
}

// Record is a loosely-typed data row validated against a schema.
type Record map[string]any

// Validate checks rec against the schema: required fields present, types
// correct, unknown fields tolerated (open-world).
func (s *Schema) Validate(rec Record) error {
	for _, f := range s.Fields {
		v, ok := rec[f.Name]
		if !ok {
			if f.Required {
				return fmt.Errorf("%w: missing required field %q", ErrBadRecord, f.Name)
			}
			continue
		}
		switch f.Type {
		case TypeNumber:
			switch v.(type) {
			case float64, int:
			default:
				return fmt.Errorf("%w: field %q want number, got %T", ErrBadRecord, f.Name, v)
			}
		case TypeString:
			if _, ok := v.(string); !ok {
				return fmt.Errorf("%w: field %q want string, got %T", ErrBadRecord, f.Name, v)
			}
		case TypeBool:
			if _, ok := v.(bool); !ok {
				return fmt.Errorf("%w: field %q want bool, got %T", ErrBadRecord, f.Name, v)
			}
		}
	}
	return nil
}
