package fabric

import (
	"testing"

	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
)

func TestProvLineage(t *testing.T) {
	g := NewProvGraph()
	raw := g.AddEntity("raw", nil)
	processed := g.AddEntity("processed", nil)
	report := g.AddEntity("report", nil)
	calib := g.AddEntity("calibration", nil)

	a1 := g.AddActivity("processing", 0, sim.Second)
	g.Used(a1, raw)
	g.Used(a1, calib)
	g.WasGeneratedBy(processed, a1)
	g.WasDerivedFrom(report, processed)

	lineage := g.Lineage(report)
	want := map[EntityID]bool{"raw": true, "processed": true, "calibration": true}
	if len(lineage) != 3 {
		t.Fatalf("lineage = %v", lineage)
	}
	for _, e := range lineage {
		if !want[e] {
			t.Fatalf("unexpected lineage member %s", e)
		}
	}
	if len(g.Lineage(raw)) != 0 {
		t.Fatal("source entity should have empty lineage")
	}
}

func TestProvResponsibilityChain(t *testing.T) {
	g := NewProvGraph()
	e := g.AddEntity("result", nil)
	a := g.AddActivity("experiment", 0, 0)
	g.WasGeneratedBy(e, a)
	agent := g.AddAgent("llm-orchestrator", nil)
	human := g.AddAgent("dr-smith", nil)
	g.WasAssociatedWith(a, agent)
	g.ActedOnBehalfOf(agent, human)

	resp := g.Responsible(e)
	if len(resp) != 2 {
		t.Fatalf("responsible = %v, want agent + delegator", resp)
	}
	if len(g.Responsible("ghost")) != 0 {
		t.Fatal("unknown entity should have no responsibility chain")
	}
}

func TestProvValidate(t *testing.T) {
	g := NewProvGraph()
	e1 := g.AddEntity("a", nil)
	e2 := g.AddEntity("b", nil)
	g.WasDerivedFrom(e2, e1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Introduce a cycle.
	g.WasDerivedFrom(e1, e2)
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestProvValidateDangling(t *testing.T) {
	g := NewProvGraph()
	g.WasGeneratedBy("ghost-entity", "ghost-activity")
	if err := g.Validate(); err == nil {
		t.Fatal("dangling reference not detected")
	}
}

func TestProvIdempotentAdds(t *testing.T) {
	g := NewProvGraph()
	g.AddEntity("e", map[string]string{"v": "1"})
	g.AddEntity("e", map[string]string{"v": "2"})
	if g.Entities() != 1 {
		t.Fatalf("entities = %d, want 1", g.Entities())
	}
}

func TestStreamRangeDetection(t *testing.T) {
	p := NewStreamProcessor()
	p.Lo, p.Hi = 0, 100
	a := p.Ingest(StreamEvent{Source: "s", Value: 150})
	if !a.Anomalous || a.Reason != "range" {
		t.Fatalf("assessment = %+v", a)
	}
	if a := p.Ingest(StreamEvent{Source: "s", Value: 50}); a.Anomalous {
		t.Fatal("in-range value flagged")
	}
}

func TestStreamSpikeDetection(t *testing.T) {
	p := NewStreamProcessor()
	r := rng.New(1)
	// Establish a baseline around 10 +- 0.5.
	for i := 0; i < 50; i++ {
		if a := p.Ingest(StreamEvent{Source: "s", Value: r.Normal(10, 0.5)}); a.Anomalous {
			t.Fatalf("baseline value flagged: %+v", a)
		}
	}
	a := p.Ingest(StreamEvent{Source: "s", Value: 30}) // 40 sigma
	if !a.Anomalous || a.Reason != "spike" {
		t.Fatalf("spike missed: %+v", a)
	}
	// The spike must not poison the window: next normal value passes.
	if a := p.Ingest(StreamEvent{Source: "s", Value: 10.2}); a.Anomalous {
		t.Fatalf("post-spike normal value flagged: %+v", a)
	}
}

func TestStreamStuckSensor(t *testing.T) {
	p := NewStreamProcessor()
	p.StuckWindow = 5
	r := rng.New(2)
	for i := 0; i < 20; i++ {
		p.Ingest(StreamEvent{Source: "s", Value: r.Normal(5, 0.3)})
	}
	var last Assessment
	for i := 0; i < 6; i++ {
		last = p.Ingest(StreamEvent{Source: "s", Value: 5.0})
	}
	if !last.Anomalous || last.Reason != "stuck" {
		t.Fatalf("stuck sensor missed: %+v", last)
	}
}

func TestStreamPerSourceWindows(t *testing.T) {
	p := NewStreamProcessor()
	r := rng.New(3)
	// Source A near 10, source B near 1000: values normal for B must not be
	// judged against A's window.
	for i := 0; i < 40; i++ {
		p.Ingest(StreamEvent{Source: "a", Value: r.Normal(10, 0.5)})
		p.Ingest(StreamEvent{Source: "b", Value: r.Normal(1000, 20)})
	}
	if a := p.Ingest(StreamEvent{Source: "b", Value: 1010}); a.Anomalous {
		t.Fatalf("cross-source contamination: %+v", a)
	}
}

func TestStreamReduction(t *testing.T) {
	p := NewStreamProcessor()
	p.ReduceKeep1InN = 10
	kept := 0
	p.OnNormal = func(Assessment) { kept++ }
	r := rng.New(4)
	for i := 0; i < 1000; i++ {
		p.Ingest(StreamEvent{Source: "s", Value: r.Normal(10, 0.5)})
	}
	if kept < 90 || kept > 110 {
		t.Fatalf("kept %d of 1000, want ~100", kept)
	}
}

func TestStreamPrecisionRecallOnInjectedAnomalies(t *testing.T) {
	p := NewStreamProcessor()
	p.Lo, p.Hi = -50, 200
	r := rng.New(5)
	var stats StreamStats
	for i := 0; i < 20000; i++ {
		ev := StreamEvent{Source: "s", Value: r.Normal(20, 1)}
		if r.Bool(0.01) {
			ev.Truth = true
			if r.Bool(0.5) {
				ev.Value = 20 + r.Range(15, 60) // spike
			} else {
				ev.Value = 300 // out of range
			}
		}
		stats.Score(p.Ingest(ev))
	}
	if stats.Recall() < 0.9 {
		t.Fatalf("recall = %v, want > 0.9", stats.Recall())
	}
	if stats.Precision() < 0.9 {
		t.Fatalf("precision = %v, want > 0.9", stats.Precision())
	}
}

func TestStreamStatsEdgeCases(t *testing.T) {
	var s StreamStats
	if s.Precision() != 1 || s.Recall() != 1 {
		t.Fatal("empty stats should report perfect scores")
	}
	s.Score(Assessment{Event: StreamEvent{Truth: true}, Anomalous: false})
	if s.Recall() != 0 {
		t.Fatal("missed anomaly should zero recall")
	}
}
