package instrument

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/twin"
)

// This file is the instrument library: constructors for the equipment the
// paper's workflows span — synthesis robots, flow reactors, diffractometers,
// electron microscopes, spectrometers, furnaces, and HPC allocations — each
// with realistic duty cycles. Two vendors ("SimCo" and "Acme Scientific")
// are emulated with different duty-cycle personalities to exercise the
// vendor-agnostic abstraction.

// Service-type constants (DNS-SD style types used in discovery records).
const (
	KindSynthesis    = "_synth._aisle"
	KindFlowReactor  = "_flow._aisle"
	KindXRD          = "_xrd._aisle"
	KindTEM          = "_tem._aisle"
	KindSpectrometer = "_spec._aisle"
	KindFurnace      = "_furnace._aisle"
	KindHPC          = "_hpc._aisle"
)

// NewBatchReactor builds a classic batch synthesis robot: one sample per
// ~30-minute run, the baseline in the fluidic-SDL comparison (E4).
func NewBatchReactor(eng *sim.Engine, r *rng.Stream, id, site string, model twin.Model) *Instrument {
	return New(eng, r, Config{
		Descriptor: Descriptor{
			ID: id, Kind: KindSynthesis, Vendor: "Acme Scientific",
			ModelName: "BatchMate 3000", Site: site,
			Actions: []ActionSpec{{
				Name:     "synthesize",
				Space:    model.Space(),
				Duration: 30 * sim.Minute,
				Outputs:  outputsOf(model),
			}},
			Capabilities: map[string]float64{"throughput_per_hr": 2, "volume_mL": 50},
			Text:         map[string]string{"class": "batch", "model": model.Name()},
		},
		Twin:           twin.NewTwin(model, twin.Noise{Rel: 0.03}),
		DurationJitter: 0.15,
		FailureProb:    0.01,
		RepairTime:     4 * sim.Hour,
		DriftPerAction: 0.004,
	})
}

// NewFluidicReactor builds a droplet-microfluidic self-driving-lab reactor:
// ~15 seconds per micro-droplet experiment with tiny reagent consumption —
// the source of the paper's ">100x data acquisition efficiency" claim.
func NewFluidicReactor(eng *sim.Engine, r *rng.Stream, id, site string, model twin.Model) *Instrument {
	return New(eng, r, Config{
		Descriptor: Descriptor{
			ID: id, Kind: KindFlowReactor, Vendor: "SimCo",
			ModelName: "DropletFlow X", Site: site,
			Actions: []ActionSpec{{
				Name:     "synthesize",
				Space:    model.Space(),
				Duration: 15 * sim.Second,
				Outputs:  outputsOf(model),
			}},
			Capabilities: map[string]float64{"throughput_per_hr": 240, "volume_mL": 0.02},
			Text:         map[string]string{"class": "fluidic", "model": model.Name()},
		},
		Twin:           twin.NewTwin(model, twin.Noise{Rel: 0.04}),
		DurationJitter: 0.08,
		FailureProb:    0.002,
		RepairTime:     30 * sim.Minute,
		DriftPerAction: 0.0005,
	})
}

// characterizationSpace is the shared input space for analysis instruments:
// they re-measure a synthesized sample, so their parameter is which sample
// property scan to run.
func characterizationSpace() param.Space {
	return param.Space{
		{Name: "scan_resolution", Lo: 0.1, Hi: 10},
		{Name: "exposure_s", Lo: 1, Hi: 600, Unit: "s"},
	}
}

// NewXRD builds an X-ray diffractometer for structure characterization.
func NewXRD(eng *sim.Engine, r *rng.Stream, id, site string) *Instrument {
	return New(eng, r, Config{
		Descriptor: Descriptor{
			ID: id, Kind: KindXRD, Vendor: "SimCo", ModelName: "DiffractPro",
			Site: site,
			Actions: []ActionSpec{{
				Name: "scan", Space: characterizationSpace(),
				Duration: 20 * sim.Minute,
				Outputs:  []string{"crystallinity", "phase_purity"},
			}},
			Capabilities: map[string]float64{"resolution": 0.05, "throughput_per_hr": 3},
		},
		Synthesize: func(cmd Command, r *rng.Stream) map[string]float64 {
			return map[string]float64{
				"crystallinity": r.Range(0.55, 0.95),
				"phase_purity":  r.Range(0.6, 0.99),
			}
		},
		DurationJitter: 0.1,
		FailureProb:    0.005,
		RepairTime:     8 * sim.Hour,
		DriftPerAction: 0.002,
	})
}

// NewTEM builds a transmission electron microscope.
func NewTEM(eng *sim.Engine, r *rng.Stream, id, site string) *Instrument {
	return New(eng, r, Config{
		Descriptor: Descriptor{
			ID: id, Kind: KindTEM, Vendor: "Acme Scientific", ModelName: "NanoView",
			Site: site,
			Actions: []ActionSpec{{
				Name: "image", Space: characterizationSpace(),
				Duration: 45 * sim.Minute,
				Outputs:  []string{"size_nm", "morphology_score"},
			}},
			Capabilities: map[string]float64{"resolution": 0.001, "throughput_per_hr": 1},
		},
		Synthesize: func(cmd Command, r *rng.Stream) map[string]float64 {
			return map[string]float64{
				"size_nm":          r.Range(4, 18),
				"morphology_score": r.Range(0.3, 1.0),
			}
		},
		DurationJitter: 0.2,
		FailureProb:    0.01,
		RepairTime:     24 * sim.Hour,
		DriftPerAction: 0.006,
	})
}

// NewSpectrometer builds a UV-Vis/PL spectrometer (fast characterization).
func NewSpectrometer(eng *sim.Engine, r *rng.Stream, id, site string) *Instrument {
	return New(eng, r, Config{
		Descriptor: Descriptor{
			ID: id, Kind: KindSpectrometer, Vendor: "SimCo", ModelName: "SpectraQuick",
			Site: site,
			Actions: []ActionSpec{{
				Name: "spectrum", Space: characterizationSpace(),
				Duration: 2 * sim.Minute,
				Outputs:  []string{"peak_nm", "fwhm_nm"},
			}},
			Capabilities: map[string]float64{"resolution": 0.5, "throughput_per_hr": 25},
		},
		Synthesize: func(cmd Command, r *rng.Stream) map[string]float64 {
			return map[string]float64{
				"peak_nm": r.Range(490, 680),
				"fwhm_nm": r.Range(18, 42),
			}
		},
		DurationJitter: 0.05,
		FailureProb:    0.001,
		RepairTime:     time2h(),
		DriftPerAction: 0.001,
	})
}

// NewFurnace builds an annealing furnace with a tight thermal interlock.
func NewFurnace(eng *sim.Engine, r *rng.Stream, id, site string, maxSafeC float64) *Instrument {
	space := param.Space{
		{Name: "anneal_C", Lo: 100, Hi: 1200, Unit: "C"},
		{Name: "anneal_min", Lo: 1, Hi: 2880, Unit: "min"},
	}
	return New(eng, r, Config{
		Descriptor: Descriptor{
			ID: id, Kind: KindFurnace, Vendor: "Acme Scientific", ModelName: "HeatWave",
			Site: site,
			Actions: []ActionSpec{{
				Name: "anneal", Space: space,
				Duration: 2 * sim.Hour,
				Outputs:  []string{"ramp_ok"},
			}},
			Capabilities: map[string]float64{"temp_max": maxSafeC},
		},
		Synthesize: func(cmd Command, r *rng.Stream) map[string]float64 {
			return map[string]float64{"ramp_ok": 1}
		},
		DurationJitter: 0.1,
		FailureProb:    0.008,
		RepairTime:     12 * sim.Hour,
		DriftPerAction: 0.003,
		Interlock: func(cmd Command) error {
			if cmd.Params["anneal_C"] > maxSafeC {
				return fmt.Errorf("setpoint %.0fC above safe limit %.0fC", cmd.Params["anneal_C"], maxSafeC)
			}
			return nil
		},
	})
}

// NewHPC builds a compute "instrument": simulation campaigns are scheduled
// on it like any other resource, reflecting the paper's instruments-plus-
// computing integration.
func NewHPC(eng *sim.Engine, r *rng.Stream, id, site string, nodes float64) *Instrument {
	space := param.Space{
		{Name: "nodes", Lo: 1, Hi: nodes, Step: 1},
		{Name: "sim_fidelity", Lo: 1, Hi: 3, Step: 1},
	}
	return New(eng, r, Config{
		Descriptor: Descriptor{
			ID: id, Kind: KindHPC, Vendor: "SimCo", ModelName: "ClusterSim",
			Site: site,
			Actions: []ActionSpec{{
				Name: "simulate", Space: space,
				Duration: 1 * sim.Hour,
				Outputs:  []string{"predicted_objective", "uncertainty"},
			}},
			Capabilities: map[string]float64{"nodes": nodes},
		},
		Synthesize: func(cmd Command, r *rng.Stream) map[string]float64 {
			return map[string]float64{
				"predicted_objective": r.Range(0, 1),
				"uncertainty":         r.Range(0.02, 0.2) / cmd.Params["sim_fidelity"],
			}
		},
		DurationJitter: 0.3,
		FailureProb:    0.004,
		RepairTime:     1 * sim.Hour,
		DriftPerAction: 0, // computers don't drift
	})
}

func outputsOf(m twin.Model) []string {
	out := m.Eval(m.Space().Sample(rng.New(1)))
	names := make([]string, 0, len(out))
	for k := range out {
		names = append(names, k)
	}
	return names
}

func time2h() sim.Time { return 2 * sim.Hour }
