package instrument

import (
	"errors"
	"testing"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/twin"
)

func goodPerovskite() param.Point {
	return param.Point{"temperature": 150, "halide_ratio": 0.5, "residence_s": 60, "ligand_mM": 15}
}

func TestSubmitHappyPath(t *testing.T) {
	eng := sim.NewEngine()
	r := rng.New(1)
	in := NewFluidicReactor(eng, r, "flow-1", "ornl", twin.Perovskite{})

	var res Result
	in.Submit(Command{Action: "synthesize", Params: goodPerovskite(), SampleID: "s1"}, func(r Result) { res = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("result error: %v", res.Err)
	}
	if res.Values["plqy"] <= 0 {
		t.Fatalf("no measurement: %v", res.Values)
	}
	if res.Duration() < 10*sim.Second || res.Duration() > 30*sim.Second {
		t.Fatalf("fluidic synthesis took %v, want ~15s", res.Duration())
	}
	if in.Completed() != 1 {
		t.Fatal("completion not counted")
	}
}

func TestUnknownActionRejected(t *testing.T) {
	eng := sim.NewEngine()
	in := NewFluidicReactor(eng, rng.New(1), "flow-1", "ornl", twin.Perovskite{})
	var res Result
	in.Submit(Command{Action: "explode", Params: goodPerovskite()}, func(r Result) { res = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, ErrUnknownAction) {
		t.Fatalf("err = %v, want ErrUnknownAction", res.Err)
	}
}

func TestInterlockRejectsOutOfRange(t *testing.T) {
	eng := sim.NewEngine()
	in := NewFluidicReactor(eng, rng.New(1), "flow-1", "ornl", twin.Perovskite{})
	bad := goodPerovskite()
	bad["temperature"] = 400 // above space max 220
	var res Result
	in.Submit(Command{Action: "synthesize", Params: bad}, func(r Result) { res = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, ErrInterlock) {
		t.Fatalf("err = %v, want ErrInterlock", res.Err)
	}
}

func TestCustomInterlockAndOverride(t *testing.T) {
	eng := sim.NewEngine()
	in := NewFurnace(eng, rng.New(1), "furnace-1", "ornl", 800)
	in.AuthorizeOverride("dr-jones")

	hot := param.Point{"anneal_C": 900, "anneal_min": 60} // within space, above interlock
	var denied, allowed, forged Result
	in.Submit(Command{Action: "anneal", Params: hot}, func(r Result) { denied = r })
	in.Submit(Command{Action: "anneal", Params: hot, Override: "dr-jones"}, func(r Result) { allowed = r })
	in.Submit(Command{Action: "anneal", Params: hot, Override: "impostor"}, func(r Result) { forged = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(denied.Err, ErrInterlock) {
		t.Fatalf("unauthorized hot run: %v", denied.Err)
	}
	if allowed.Err != nil {
		t.Fatalf("authorized override rejected: %v", allowed.Err)
	}
	if !errors.Is(forged.Err, ErrInterlock) {
		t.Fatalf("forged override accepted: %v", forged.Err)
	}
}

func TestQueueFIFOAndSerialization(t *testing.T) {
	eng := sim.NewEngine()
	in := NewFluidicReactor(eng, rng.New(2), "flow-1", "ornl", twin.Perovskite{})
	var order []string
	for _, id := range []string{"a", "b", "c"} {
		id := id
		in.Submit(Command{Action: "synthesize", Params: goodPerovskite(), SampleID: id},
			func(Result) { order = append(order, id) })
	}
	if in.QueueDepth() != 2 {
		t.Fatalf("queue depth = %d, want 2 while first job runs", in.QueueDepth())
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[2] != "c" {
		t.Fatalf("execution order = %v", order)
	}
}

func TestQueueLimit(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, rng.New(1), Config{
		Descriptor: Descriptor{
			ID: "x", Actions: []ActionSpec{{Name: "a", Space: param.Space{}, Duration: sim.Minute}},
		},
		QueueLimit: 1,
	})
	var errs []error
	for i := 0; i < 3; i++ {
		in.Submit(Command{Action: "a", Params: param.Point{}}, func(r Result) { errs = append(errs, r.Err) })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	full := 0
	for _, e := range errs {
		if errors.Is(e, ErrBusyQueue) {
			full++
		}
	}
	if full != 1 {
		t.Fatalf("%d queue-full rejections, want 1 (1 running + 1 queued + 1 rejected)", full)
	}
}

func TestFailureAndRepair(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, rng.New(3), Config{
		Descriptor: Descriptor{
			ID: "fragile", Actions: []ActionSpec{{Name: "a", Space: param.Space{}, Duration: sim.Minute}},
		},
		FailureProb: 1.0, // always fails
		RepairTime:  sim.Hour,
	})
	var res Result
	in.Submit(Command{Action: "a", Params: param.Point{}}, func(r Result) { res = r })
	if err := eng.RunUntil(30 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, ErrFailed) {
		t.Fatalf("err = %v, want ErrFailed", res.Err)
	}
	if in.State() != StateDown {
		t.Fatalf("state = %v, want down", in.State())
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if in.State() != StateIdle {
		t.Fatalf("state = %v after repair, want idle", in.State())
	}
}

func TestCalibrationDriftTriggersRecalibration(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, rng.New(4), Config{
		Descriptor: Descriptor{
			ID: "drifty", Actions: []ActionSpec{{Name: "a", Space: param.Space{}, Duration: sim.Second}},
		},
		Twin:           twin.NewTwin(twin.Perovskite{}, twin.Noise{}),
		DriftPerAction: 0.02,
		DriftThreshold: 0.05,
	})
	done := 0
	var enqueue func()
	enqueue = func() {
		if done >= 200 {
			return
		}
		in.Submit(Command{Action: "a", Params: param.Point{}}, func(Result) {
			done++
			enqueue()
		})
	}
	enqueue()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Calibrations() == 0 {
		t.Fatal("no recalibration despite strong drift")
	}
	if abs(in.Bias()) > 0.05+3*0.02 {
		t.Fatalf("bias %v should stay near threshold after recalibrations", in.Bias())
	}
}

func TestForceFailureRetainsQueue(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, rng.New(5), Config{
		Descriptor: Descriptor{
			ID: "x", Actions: []ActionSpec{{Name: "a", Space: param.Space{}, Duration: sim.Minute}},
		},
		RepairTime: sim.Hour,
	})
	in.ForceFailure()
	got := false
	in.Submit(Command{Action: "a", Params: param.Point{}}, func(r Result) { got = r.Err == nil })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("queued job did not run after repair")
	}
}

func TestFleet(t *testing.T) {
	eng := sim.NewEngine()
	r := rng.New(6)
	f := NewFleet()
	f.Add(NewXRD(eng, r, "xrd-1", "ornl"))
	f.Add(NewFluidicReactor(eng, r, "flow-1", "ornl", twin.Perovskite{}))
	f.Add(NewBatchReactor(eng, r, "batch-1", "ornl", twin.Perovskite{}))

	if _, ok := f.Get("xrd-1"); !ok {
		t.Fatal("Get failed")
	}
	ids := f.IDs()
	if len(ids) != 3 || ids[0] != "batch-1" {
		t.Fatalf("IDs = %v", ids)
	}
	if got := f.ByKind(KindFlowReactor); len(got) != 1 || got[0].Descriptor().ID != "flow-1" {
		t.Fatalf("ByKind = %v", got)
	}
}

func TestBatchVsFluidicThroughput(t *testing.T) {
	// The structural seed of E4: fluidic completes far more experiments in
	// a fixed window.
	eng := sim.NewEngine()
	r := rng.New(7)
	batch := NewBatchReactor(eng, r, "batch-1", "ornl", twin.Perovskite{})
	flow := NewFluidicReactor(eng, r, "flow-1", "ornl", twin.Perovskite{})

	runFor := func(in *Instrument) {
		var next func()
		next = func() {
			in.Submit(Command{Action: "synthesize", Params: goodPerovskite()}, func(Result) {
				if eng.Now() < 8*sim.Hour {
					next()
				}
			})
		}
		next()
	}
	runFor(batch)
	runFor(flow)
	if err := eng.RunUntil(8 * sim.Hour); err != nil {
		t.Fatal(err)
	}
	if batch.Completed() == 0 {
		t.Fatal("batch reactor idle")
	}
	ratio := float64(flow.Completed()) / float64(batch.Completed())
	if ratio < 50 {
		t.Fatalf("fluidic/batch throughput ratio = %v, want >> 50", ratio)
	}
}

func TestMeasurementBiasAppliedBeforeCalibration(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, rng.New(8), Config{
		Descriptor: Descriptor{
			ID: "b", Actions: []ActionSpec{{
				Name: "synthesize", Space: twin.Perovskite{}.Space(), Duration: sim.Second,
			}},
		},
		Twin:           twin.NewTwin(twin.Perovskite{}, twin.Noise{}), // no noise
		DriftPerAction: 0,
		DriftThreshold: 1, // never recalibrate
	})
	in.bias = 0.10 // inject known bias
	truth := twin.Perovskite{}.Eval(goodPerovskite())["plqy"]
	var res Result
	in.Submit(Command{Action: "synthesize", Params: goodPerovskite()}, func(r Result) { res = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := truth * 1.10
	if abs(res.Values["plqy"]-want) > 1e-9 {
		t.Fatalf("biased measurement = %v, want %v", res.Values["plqy"], want)
	}
	if res.Quality >= 1 {
		t.Fatal("quality should be degraded under bias")
	}
}

func TestDescriptorAction(t *testing.T) {
	d := Descriptor{Actions: []ActionSpec{{Name: "scan"}}}
	if _, ok := d.Action("scan"); !ok {
		t.Fatal("Action lookup failed")
	}
	if _, ok := d.Action("ghost"); ok {
		t.Fatal("ghost action found")
	}
}

func TestStateString(t *testing.T) {
	if StateIdle.String() != "idle" || StateDown.String() != "down" {
		t.Fatal("state names wrong")
	}
}

func TestForceDownWindowAndResume(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, rng.New(8), Config{
		Descriptor: Descriptor{
			ID: "x", Actions: []ActionSpec{{Name: "a", Space: param.Space{}, Duration: sim.Minute}},
		},
	})
	got := false
	in.ForceDown(2 * sim.Hour)
	if in.State() != StateDown {
		t.Fatalf("state = %v after ForceDown, want down", in.State())
	}
	// Work queued during the outage waits it out rather than being lost.
	in.Submit(Command{Action: "a", Params: param.Point{}}, func(r Result) { got = r.Err == nil })
	if err := eng.RunUntil(sim.Hour); err != nil {
		t.Fatal(err)
	}
	if in.State() != StateDown {
		t.Fatalf("state = %v mid-window, want down", in.State())
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if in.State() != StateIdle {
		t.Fatalf("state = %v after window, want idle", in.State())
	}
	if !got {
		t.Fatal("queued command did not run once the outage lifted")
	}
}

func TestForceDownExtendsActiveRepair(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, rng.New(9), Config{
		Descriptor: Descriptor{
			ID: "x", Actions: []ActionSpec{{Name: "a", Space: param.Space{}, Duration: sim.Minute}},
		},
		RepairTime: 30 * sim.Minute,
	})
	in.ForceFailure() // natural repair due at 30m
	in.ForceDown(2 * sim.Hour)
	if err := eng.RunUntil(sim.Hour); err != nil {
		t.Fatal(err)
	}
	if in.State() != StateDown {
		t.Fatalf("state = %v at 1h, want down (forced window outlasts repair)", in.State())
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if in.State() != StateIdle {
		t.Fatalf("state = %v at end, want idle", in.State())
	}
}

func TestFaultSettersRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, rng.New(10), Config{
		Descriptor: Descriptor{
			ID: "x", Actions: []ActionSpec{{Name: "a", Space: param.Space{}, Duration: sim.Minute}},
		},
		FailureProb:    0.01,
		DriftPerAction: 0.002,
	})
	if in.FailureProb() != 0.01 || in.DriftPerAction() != 0.002 {
		t.Fatalf("getters: prob=%v drift=%v", in.FailureProb(), in.DriftPerAction())
	}
	in.SetFailureProb(0.5)
	in.SetDriftPerAction(0.04)
	if in.FailureProb() != 0.5 || in.DriftPerAction() != 0.04 {
		t.Fatalf("setters did not stick: prob=%v drift=%v", in.FailureProb(), in.DriftPerAction())
	}
}
