// Package instrument implements AISLE's instrument-and-cyberinfrastructure
// integration layer (dimension 1, milestones M1 and M4): a vendor-agnostic
// hardware abstraction layer over simulated scientific instruments.
//
// Each simulated instrument has the lifecycle properties that make
// cross-facility orchestration hard in practice — nontrivial action
// durations, a FIFO job queue, warm-up, calibration drift that biases
// measurements until a recalibration, stochastic breakdowns with repair
// windows, and safety interlocks that reject out-of-specification commands
// unless a human override is presented (the paper's human-in-the-loop
// safeguard).
//
// Physics comes from a digital twin (internal/twin): an instrument is the
// twin plus operational reality.
package instrument

import (
	"errors"
	"fmt"
	"sort"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
	"github.com/aisle-sim/aisle/internal/twin"
)

// Errors surfaced to submitters.
var (
	ErrUnknownAction = errors.New("instrument: unknown action")
	ErrInterlock     = errors.New("instrument: interlock rejected command")
	ErrDown          = errors.New("instrument: instrument down")
	ErrBusyQueue     = errors.New("instrument: queue full")
	ErrFailed        = errors.New("instrument: action failed mid-run")
)

// State is the instrument lifecycle state.
type State int

// Lifecycle states.
const (
	StateIdle State = iota
	StateBusy
	StateDown
	StateCalibrating
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateBusy:
		return "busy"
	case StateDown:
		return "down"
	case StateCalibrating:
		return "calibrating"
	}
	return "unknown"
}

// ActionSpec describes one action the instrument supports: its parameter
// space and nominal duration.
type ActionSpec struct {
	Name     string
	Space    param.Space
	Duration sim.Time // nominal; actual durations draw jitter around this
	// Outputs names the measurement keys the action produces.
	Outputs []string
}

// Descriptor is the self-describing record an instrument advertises
// (M4: "self-describing instruments with semantic descriptors").
type Descriptor struct {
	ID           string
	Kind         string // "_xrd._aisle", "_synth._aisle", ...
	Vendor       string
	ModelName    string
	Site         string
	Actions      []ActionSpec
	Capabilities map[string]float64
	Text         map[string]string
}

// Action looks up an action spec by name.
func (d *Descriptor) Action(name string) (ActionSpec, bool) {
	for _, a := range d.Actions {
		if a.Name == name {
			return a, true
		}
	}
	return ActionSpec{}, false
}

// Command requests one action execution.
type Command struct {
	Action   string
	Params   param.Point
	SampleID string
	// Override carries a human-in-the-loop authorization that bypasses the
	// interlock for out-of-envelope parameters (still bounded by hard
	// physical limits).
	Override string
	// Trace is the causal context the command executes under; the hosting
	// site's endpoint records the device queue + action as a span.
	Trace trace.Context
}

// Result is the outcome of a command.
type Result struct {
	InstrumentID string
	SampleID     string
	Action       string
	Params       param.Point
	Values       map[string]float64
	Quality      float64 // 0..1, degraded by calibration drift
	Started      sim.Time
	Finished     sim.Time
	Err          error
}

// Duration reports wall-clock (virtual) execution time.
func (r *Result) Duration() sim.Time { return r.Finished - r.Started }

// Config assembles a simulated instrument.
type Config struct {
	Descriptor Descriptor
	Twin       *twin.Twin
	// DurationJitter is the lognormal sigma applied to action durations.
	DurationJitter float64
	// FailureProb is the per-action probability of mid-run failure.
	FailureProb float64
	// RepairTime is how long the instrument stays down after a failure.
	RepairTime sim.Time
	// DriftPerAction is the calibration bias random-walk step (relative).
	DriftPerAction float64
	// DriftThreshold triggers auto-recalibration when |bias| exceeds it.
	DriftThreshold float64
	// CalibrationTime is the duration of a recalibration cycle.
	CalibrationTime sim.Time
	// QueueLimit bounds pending jobs; 0 means unlimited.
	QueueLimit int
	// Interlock optionally narrows the safe envelope below the action
	// space; nil uses the action space bounds.
	Interlock func(Command) error
	// Synthesize generates measurement values for instruments without a
	// ground-truth twin (characterization equipment whose readings are
	// sample-independent in this model).
	Synthesize func(Command, *rng.Stream) map[string]float64
}

// Instrument is a simulated instrument bound to a simulation engine.
type Instrument struct {
	cfg     Config
	eng     *sim.Engine
	rnd     *rng.Stream
	metrics *telemetry.Registry

	state State
	bias  float64 // calibration drift, relative
	queue []job
	// overrides holds operator IDs allowed to bypass the interlock.
	overrides map[string]bool
	// forcedDownUntil pins the instrument in StateDown through an injected
	// outage window: internal state transitions (action completion, natural
	// repair, recalibration) that would normally resume service defer to it.
	forcedDownUntil sim.Time

	completed int
	failures  int
	calCount  int
}

type job struct {
	cmd Command
	cb  func(Result)
}

// New creates an instrument on the engine with its own random sub-stream.
func New(eng *sim.Engine, parent *rng.Stream, cfg Config) *Instrument {
	if cfg.DurationJitter == 0 {
		cfg.DurationJitter = 0.1
	}
	if cfg.RepairTime == 0 {
		cfg.RepairTime = 2 * sim.Hour
	}
	if cfg.CalibrationTime == 0 {
		cfg.CalibrationTime = 30 * sim.Minute
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = 0.05
	}
	return &Instrument{
		cfg:       cfg,
		eng:       eng,
		rnd:       parent.Fork("instrument/" + cfg.Descriptor.ID),
		metrics:   telemetry.NewRegistry(),
		state:     StateIdle,
		overrides: make(map[string]bool),
	}
}

// Descriptor returns the instrument's self-description.
func (in *Instrument) Descriptor() Descriptor { return in.cfg.Descriptor }

// State reports the current lifecycle state.
func (in *Instrument) State() State { return in.state }

// Metrics exposes instrument telemetry.
func (in *Instrument) Metrics() *telemetry.Registry { return in.metrics }

// Bias reports the current calibration bias (for tests and ablations).
func (in *Instrument) Bias() float64 { return in.bias }

// QueueDepth reports pending jobs (excluding the running one).
func (in *Instrument) QueueDepth() int { return len(in.queue) }

// Completed reports successfully executed actions.
func (in *Instrument) Completed() int { return in.completed }

// Failures reports mid-run failures.
func (in *Instrument) Failures() int { return in.failures }

// Calibrations reports how many recalibration cycles have run.
func (in *Instrument) Calibrations() int { return in.calCount }

// AuthorizeOverride registers an operator allowed to bypass interlocks.
func (in *Instrument) AuthorizeOverride(operator string) {
	in.overrides[operator] = true
}

// Submit enqueues a command; cb receives the Result when the action
// finishes (successfully or not). Validation failures surface immediately
// through cb with Err set, so callers have one result path.
func (in *Instrument) Submit(cmd Command, cb func(Result)) {
	now := in.eng.Now()
	fail := func(err error) {
		in.metrics.Counter("instrument.rejected").Inc()
		cb(Result{
			InstrumentID: in.cfg.Descriptor.ID, SampleID: cmd.SampleID,
			Action: cmd.Action, Params: cmd.Params,
			Started: now, Finished: now, Err: err,
		})
	}

	spec, ok := in.cfg.Descriptor.Action(cmd.Action)
	if !ok {
		fail(fmt.Errorf("%w: %q on %s", ErrUnknownAction, cmd.Action, in.cfg.Descriptor.ID))
		return
	}
	if err := in.checkInterlock(spec, cmd); err != nil {
		fail(err)
		return
	}
	if in.cfg.QueueLimit > 0 && len(in.queue) >= in.cfg.QueueLimit {
		fail(fmt.Errorf("%w: %d pending", ErrBusyQueue, len(in.queue)))
		return
	}
	in.queue = append(in.queue, job{cmd: cmd, cb: cb})
	in.metrics.Counter("instrument.submitted").Inc()
	in.pump()
}

// checkInterlock enforces the safety envelope. Out-of-space parameters are
// always rejected (hard physical limits). A custom interlock may narrow the
// envelope further; an authorized Override bypasses only the custom check.
func (in *Instrument) checkInterlock(spec ActionSpec, cmd Command) error {
	if err := spec.Space.Validate(cmd.Params); err != nil {
		return fmt.Errorf("%w: %v", ErrInterlock, err)
	}
	if in.cfg.Interlock != nil {
		if err := in.cfg.Interlock(cmd); err != nil {
			if cmd.Override != "" && in.overrides[cmd.Override] {
				in.metrics.Counter("instrument.overrides").Inc()
				return nil
			}
			return fmt.Errorf("%w: %v", ErrInterlock, err)
		}
	}
	return nil
}

// pump starts the next job if the instrument is idle.
func (in *Instrument) pump() {
	if in.state != StateIdle || len(in.queue) == 0 {
		return
	}
	j := in.queue[0]
	in.queue = in.queue[1:]
	in.run(j)
}

func (in *Instrument) run(j job) {
	spec, _ := in.cfg.Descriptor.Action(j.cmd.Action)
	in.state = StateBusy
	started := in.eng.Now()

	dur := sim.Time(float64(spec.Duration) * in.rnd.LogNormal(0, in.cfg.DurationJitter))
	if dur <= 0 {
		dur = spec.Duration
	}

	failed := in.cfg.FailureProb > 0 && in.rnd.Bool(in.cfg.FailureProb)
	if failed {
		// Failure occurs partway through the action.
		at := sim.Time(float64(dur) * in.rnd.Range(0.1, 0.9))
		in.eng.Schedule(at, func() {
			in.failures++
			in.metrics.Counter("instrument.failures").Inc()
			in.state = StateDown
			j.cb(Result{
				InstrumentID: in.cfg.Descriptor.ID, SampleID: j.cmd.SampleID,
				Action: j.cmd.Action, Params: j.cmd.Params,
				Started: started, Finished: in.eng.Now(),
				Err: fmt.Errorf("%w: %s", ErrFailed, j.cmd.Action),
			})
			in.eng.Schedule(in.cfg.RepairTime, func() {
				in.metrics.Counter("instrument.repairs").Inc()
				in.resume()
			})
		})
		return
	}

	in.eng.Schedule(dur, func() {
		values := in.measure(j.cmd)
		in.completed++
		in.metrics.Counter("instrument.completed").Inc()
		in.metrics.Histogram("instrument.action_s").Observe((in.eng.Now() - started).Seconds())

		quality := 1 - minf(abs(in.bias)/(in.cfg.DriftThreshold*4+1e-12), 0.5)
		j.cb(Result{
			InstrumentID: in.cfg.Descriptor.ID, SampleID: j.cmd.SampleID,
			Action: j.cmd.Action, Params: j.cmd.Params,
			Values: values, Quality: quality,
			Started: started, Finished: in.eng.Now(),
		})

		// Calibration random walk after each action.
		in.bias += in.rnd.Normal(0, in.cfg.DriftPerAction)
		if abs(in.bias) > in.cfg.DriftThreshold {
			in.recalibrate()
			return
		}
		in.resume()
	})
}

// measure evaluates the twin and applies noise plus calibration bias.
func (in *Instrument) measure(cmd Command) map[string]float64 {
	var out map[string]float64
	switch {
	case in.cfg.Twin != nil:
		out = in.cfg.Twin.Measure(cmd.Params, in.rnd)
	case in.cfg.Synthesize != nil:
		out = in.cfg.Synthesize(cmd, in.rnd)
	default:
		return map[string]float64{}
	}
	if in.bias != 0 {
		for k, v := range out {
			out[k] = v * (1 + in.bias)
		}
	}
	return out
}

// recalibrate models the automated-calibration protocol of M4: the
// instrument takes itself offline, resets bias, and resumes.
func (in *Instrument) recalibrate() {
	in.state = StateCalibrating
	in.metrics.Counter("instrument.calibrations").Inc()
	in.eng.Schedule(in.cfg.CalibrationTime, func() {
		in.bias = 0
		in.calCount++
		in.resume()
	})
}

// resume returns the instrument to service after an action, repair, or
// recalibration — unless a forced outage window is still open, in which case
// the instrument stays down until the window's restore event runs.
func (in *Instrument) resume() {
	if in.eng.Now() < in.forcedDownUntil {
		in.state = StateDown
		return
	}
	in.state = StateIdle
	in.pump()
}

// ForceFailure drives the instrument down immediately (fault injection for
// workflow experiments). Queued jobs are retained and resume after repair.
func (in *Instrument) ForceFailure() {
	if in.state == StateDown {
		return
	}
	in.state = StateDown
	in.eng.Schedule(in.cfg.RepairTime, func() {
		in.resume()
	})
}

// ForceDown takes the instrument out of service for exactly d (chaos site
// outages). Unlike ForceFailure, the window is pinned: an action completing
// or a natural repair firing mid-window cannot resume service early. Queued
// jobs are retained and pump when the window closes. Overlapping windows
// extend to the latest end.
func (in *Instrument) ForceDown(d sim.Time) {
	until := in.eng.Now() + d
	if until <= in.forcedDownUntil {
		return
	}
	in.forcedDownUntil = until
	in.state = StateDown
	in.eng.Schedule(d, func() {
		if in.eng.Now() < in.forcedDownUntil {
			return // a later window superseded this one
		}
		if in.state == StateDown {
			in.state = StateIdle
			in.pump()
		}
	})
}

// SetFailureProb retunes the per-action failure probability mid-run (chaos
// degradation ramps). Returns the previous value so injectors can restore it.
func (in *Instrument) SetFailureProb(p float64) float64 {
	prev := in.cfg.FailureProb
	in.cfg.FailureProb = p
	return prev
}

// SetDriftPerAction retunes the calibration random-walk step mid-run.
// Returns the previous value.
func (in *Instrument) SetDriftPerAction(d float64) float64 {
	prev := in.cfg.DriftPerAction
	in.cfg.DriftPerAction = d
	return prev
}

// FailureProb reports the current per-action failure probability.
func (in *Instrument) FailureProb() float64 { return in.cfg.FailureProb }

// DriftPerAction reports the current calibration random-walk step.
func (in *Instrument) DriftPerAction() float64 { return in.cfg.DriftPerAction }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Fleet is a registry of instruments at one site.
type Fleet struct {
	byID map[string]*Instrument
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet { return &Fleet{byID: make(map[string]*Instrument)} }

// Add registers an instrument.
func (f *Fleet) Add(in *Instrument) { f.byID[in.cfg.Descriptor.ID] = in }

// Size reports the number of registered instruments.
func (f *Fleet) Size() int { return len(f.byID) }

// Get fetches by ID.
func (f *Fleet) Get(id string) (*Instrument, bool) {
	in, ok := f.byID[id]
	return in, ok
}

// IDs lists instrument IDs, sorted.
func (f *Fleet) IDs() []string {
	out := make([]string, 0, len(f.byID))
	for id := range f.byID {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ByKind returns instruments of the given kind, sorted by ID.
func (f *Fleet) ByKind(kind string) []*Instrument {
	var out []*Instrument
	for _, id := range f.IDs() {
		in := f.byID[id]
		if in.cfg.Descriptor.Kind == kind {
			out = append(out, in)
		}
	}
	return out
}
