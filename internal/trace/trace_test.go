package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/aisle-sim/aisle/internal/sim"
)

func TestDisabledPathIsZeroAlloc(t *testing.T) {
	var tr *Tracer // nil: tracing off
	allocs := testing.AllocsPerRun(1000, func() {
		ctx := tr.Root(ID("campaign-x"))
		sp, cc := ctx.Start(0, "ornl", KindSchedQueue, "job")
		sp.SetAttr("wait_s", 1.5)
		sp.SetStr("instance", "ornl/flow-0")
		cc.Finish(&sp, 10*sim.Second)
		cc.Point(5*sim.Second, "ornl", KindSchedRoute, "route")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocated %v allocs/op, want 0", allocs)
	}
}

func TestUnsampledTraceIsZeroAlloc(t *testing.T) {
	tr := New(Options{Enabled: true, SampleRate: 1e-12})
	id := ID("never-sampled")
	if ctx := tr.Root(id); ctx.Enabled() {
		t.Skip("label happens to fall under the sampling threshold")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ctx := tr.Root(id)
		sp, cc := ctx.Start(0, "ornl", KindExperiment, "e")
		cc.Finish(&sp, sim.Second)
	})
	if allocs != 0 {
		t.Fatalf("unsampled path allocated %v allocs/op, want 0", allocs)
	}
}

func TestSamplingIsDeterministicPerTraceID(t *testing.T) {
	a := New(Options{Enabled: true, SampleRate: 0.5})
	b := New(Options{Enabled: true, SampleRate: 0.5})
	sampled := 0
	for i := 0; i < 2000; i++ {
		id := ID("trace-" + string(rune('a'+i%26)) + "-" + itoa(i))
		ca, cb := a.Root(id), b.Root(id)
		if ca.Enabled() != cb.Enabled() {
			t.Fatalf("sampling decision diverged for id %x", id)
		}
		if ca.Enabled() {
			sampled++
		}
	}
	if sampled < 800 || sampled > 1200 {
		t.Fatalf("rate-0.5 sampling kept %d/2000 traces", sampled)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(Options{Enabled: true, SiteCapacity: 4})
	ctx := tr.Root(ID("ring"))
	for i := 0; i < 10; i++ {
		sp, cc := ctx.Start(sim.Time(i), "s", KindExperiment, "e"+itoa(i))
		cc.Finish(&sp, sim.Time(i+1))
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring held %d spans, want 4", len(spans))
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	// Oldest-first order with the oldest survivors.
	for i, sp := range spans {
		if want := "e" + itoa(6+i); sp.Name != want {
			t.Fatalf("span %d = %s, want %s", i, sp.Name, want)
		}
	}
}

// buildTree records a small causal tree:
//
//	root [0,100s] > queue [0,30s], dispatch [30s,90s] > run [40s,80s]
func buildTree(tr *Tracer) {
	ctx := tr.Root(ID("tree"))
	root, rctx := ctx.Start(0, "ornl", KindCampaign, "camp")
	q, qctx := rctx.Start(0, "ornl", KindSchedQueue, "q")
	qctx.Finish(&q, 30*sim.Second)
	d, dctx := rctx.Start(30*sim.Second, "anl", KindSchedRun, "d")
	r, rrctx := dctx.Start(40*sim.Second, "anl", KindInstrument, "r")
	rrctx.Finish(&r, 80*sim.Second)
	dctx.Finish(&d, 90*sim.Second)
	rctx.Finish(&root, 100*sim.Second)
}

func TestCriticalPathSelfTimes(t *testing.T) {
	tr := New(Options{Enabled: true})
	buildTree(tr)
	reps := CriticalPaths(tr.Spans())
	if len(reps) != 1 {
		t.Fatalf("got %d reports, want 1", len(reps))
	}
	rep := reps[0]
	if rep.Total != 100*sim.Second {
		t.Fatalf("total = %v", rep.Total)
	}
	// Root self: [90s,100s] uncovered -> 10s untraced.
	if rep.Untraced != 10*sim.Second {
		t.Fatalf("untraced = %v, want 10s", rep.Untraced)
	}
	want := map[string]sim.Time{
		KindSchedQueue: 30 * sim.Second, // fully self
		KindSchedRun:   20 * sim.Second, // 60s minus nested 40s run
		KindInstrument: 40 * sim.Second,
	}
	for _, ks := range rep.ByKind {
		if want[ks.Kind] != ks.Self {
			t.Fatalf("kind %s self = %v, want %v", ks.Kind, ks.Self, want[ks.Kind])
		}
		delete(want, ks.Kind)
	}
	if len(want) != 0 {
		t.Fatalf("missing kinds in report: %v", want)
	}
	if rep.Dominant != KindInstrument {
		t.Fatalf("dominant = %s", rep.Dominant)
	}
	if rep.Coverage < 0.899 || rep.Coverage > 0.901 {
		t.Fatalf("coverage = %v, want 0.90", rep.Coverage)
	}
	if out := rep.Render(); !strings.Contains(out, KindInstrument) {
		t.Fatalf("render missing dominant kind:\n%s", out)
	}
}

func TestChromeExportDeterministic(t *testing.T) {
	render := func() string {
		tr := New(Options{Enabled: true})
		buildTree(tr)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("export is not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, frag := range []string{`"ph": "X"`, `"traceEvents"`, "process_name", "site ornl", `"cat": "instrument.run"`} {
		if !strings.Contains(a, frag) {
			t.Fatalf("export missing %q:\n%s", frag, a)
		}
	}
}

func TestSpanAttrOverflowDropped(t *testing.T) {
	tr := New(Options{Enabled: true})
	ctx := tr.Root(ID("attrs"))
	sp, cc := ctx.Start(0, "s", KindExperiment, "e")
	for i := 0; i < maxAttrs+3; i++ {
		sp.SetAttr("k"+itoa(i), float64(i))
	}
	cc.Finish(&sp, sim.Second)
	got := tr.Spans()[0]
	if len(got.Attrs()) != maxAttrs {
		t.Fatalf("attrs = %d, want %d", len(got.Attrs()), maxAttrs)
	}
}
