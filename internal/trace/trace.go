// Package trace is AISLE's sim-time-native causal tracing layer: the
// diagnostic substrate that lets an operator reconstruct why an experiment
// ran where it did and where fleet throughput is lost. A campaign's path
// through the federation — scheduler enqueue, cross-site routing, WAN
// delivery, instrument execution, knowledge sync — is recorded as a tree of
// spans stamped with virtual (simulation) time, so a trace of a fixed-seed
// run is itself deterministic: byte-identical across hosts and replays.
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Tracing is off by default; every
//     instrumentation site goes through a Context value whose nil-tracer
//     fast path performs no allocation and no work beyond a pointer test.
//     A guard test asserts 0 allocs/op on the disabled path.
//
//   - Deterministic. Span IDs are allocated from a sequential counter
//     (the sim kernel is single-threaded and totally ordered), and
//     head-sampling decides per trace ID with a hash — never a random
//     stream — so a fixed-seed run produces the same trace at any
//     sampling rate, and sampling one trace never perturbs another.
//
//   - Bounded. Spans land in fixed-capacity per-site ring buffers;
//     sustained overload overwrites the oldest spans and counts drops
//     rather than growing without bound.
//
// Analysis lives alongside: a Chrome trace_event exporter (export.go)
// loadable in chrome://tracing or Perfetto, and a per-campaign
// critical-path extractor (critical.go) that reports which layer dominates
// end-to-end latency.
package trace

import (
	"math"
	"sort"
	"sync"

	"github.com/aisle-sim/aisle/internal/sim"
)

// Span kinds used by the instrumented AISLE layers. Kind is an open
// namespace — any string works — but the critical-path extractor and the
// export coloring key off these.
const (
	KindCampaign   = "campaign"        // core: whole closed-loop campaign
	KindExperiment = "core.experiment" // core: one campaign iteration
	KindDecide     = "core.decide"     // core: orchestration decision
	KindReuse      = "core.reuse"      // core: knowledge-hit catalog lookup
	KindSchedQueue = "sched.queue"     // sched: enqueue -> dispatch wait
	KindSchedRoute = "sched.route"     // sched: routing decision (point span)
	KindSchedRun   = "sched.dispatch"  // sched: dispatch -> completion
	KindSchedSteal = "sched.steal"     // sched: WAN transit of a stolen job
	KindNetDeliver = "net.deliver"     // netsim: one message hop
	KindInstrument = "instrument.run"  // core/instrument: device queue+action
	KindInsight    = "knowledge.sync"  // knowledge: insight publish -> merge

	// Robustness-path kinds: chaos fault windows and the recovery actions
	// they trigger, so an injected outage and the requeues it caused line up
	// on the same Chrome-trace timeline.
	KindChaos        = "chaos.inject"         // chaos: one injected fault window
	KindSchedRetry   = "sched.retry"          // sched: backoff wait before a retry dispatch
	KindSchedRequeue = "sched.requeue"        // sched: in-flight job rescued back to queue
	KindQuarantine   = "knowledge.quarantine" // knowledge: insight rejected by vetting
)

// maxAttrs bounds per-span attributes so spans stay flat values that copy
// into ring slots without touching the heap.
const maxAttrs = 4

// Attr is one span attribute: a key with a numeric or string value.
type Attr struct {
	Key string
	Val float64
	Str string
}

// Span is one completed operation. Spans are plain values: started on the
// caller's stack, finished by copying into the tracer's ring buffer.
type Span struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 for a trace root
	Site     string
	Kind     string
	Name     string
	Start    sim.Time
	End      sim.Time

	attrs  [maxAttrs]Attr
	nattrs uint8
}

// Duration is the span's virtual extent.
func (s *Span) Duration() sim.Time { return s.End - s.Start }

// SetAttr attaches a numeric attribute; beyond maxAttrs it is dropped.
func (s *Span) SetAttr(key string, v float64) {
	if s.SpanID == 0 || int(s.nattrs) >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Val: v}
	s.nattrs++
}

// SetStr attaches a string attribute; beyond maxAttrs it is dropped.
func (s *Span) SetStr(key, v string) {
	if s.SpanID == 0 || int(s.nattrs) >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Str: v}
	s.nattrs++
}

// Attrs returns the attached attributes (aliasing the span's storage).
func (s *Span) Attrs() []Attr { return s.attrs[:s.nattrs] }

// Options tunes a Tracer.
type Options struct {
	// Enabled turns tracing on. The zero Options disables tracing, which
	// is the production default: core.New then wires nil tracers and every
	// instrumentation site reduces to a pointer test.
	Enabled bool
	// SampleRate is the head-sampling probability in [0,1]; 0 means 1.0
	// (sample everything). The decision is a deterministic hash of the
	// trace ID, so fixed-seed runs sample identically at any rate and
	// changing the rate only removes whole traces, never reorders them.
	SampleRate float64
	// SiteCapacity is the per-site ring-buffer capacity in spans.
	// Default 8192. Overflow overwrites the oldest spans and is counted.
	SiteCapacity int
}

func (o *Options) defaults() {
	if o.SampleRate == 0 {
		o.SampleRate = 1
	}
	if o.SiteCapacity <= 0 {
		o.SiteCapacity = 8192
	}
}

// Tracer records spans into fixed-capacity per-site ring buffers. A nil
// *Tracer is a valid, always-off tracer; all methods short-circuit.
//
// The mutex exists for the benefit of harnesses that inspect a tracer from
// another goroutine (and the -race lane); within a simulation all recording
// happens on the single sim goroutine, so it is uncontended.
type Tracer struct {
	opts      Options
	threshold uint64 // sample when mix(traceID) <= threshold

	mu      sync.Mutex
	sites   map[string]*siteBuf
	order   []string // sorted site names, maintained on insert
	nextID  uint64
	dropped uint64
}

type siteBuf struct {
	spans   []Span // len == capacity once full
	head    int    // next write index once spans is at capacity
	total   uint64 // spans ever recorded at this site
	dropped uint64 // spans overwritten by ring wrap at this site
}

// New builds a tracer, or returns nil when opts.Enabled is false — callers
// hold and pass nil tracers freely.
func New(opts Options) *Tracer {
	if !opts.Enabled {
		return nil
	}
	opts.defaults()
	t := &Tracer{opts: opts, sites: make(map[string]*siteBuf)}
	switch {
	case opts.SampleRate >= 1:
		t.threshold = math.MaxUint64
	case opts.SampleRate <= 0:
		t.threshold = 0
	default:
		t.threshold = uint64(opts.SampleRate * float64(math.MaxUint64))
	}
	return t
}

// mix is SplitMix64's finalizer: the deterministic hash behind both trace-ID
// derivation and head-sampling.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ID derives a deterministic trace ID from a stable label (e.g. a campaign
// name plus seed label). Equal labels yield equal IDs on every host.
func ID(label string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	if h == 0 {
		h = offset
	}
	return mix(h)
}

// Root opens a trace: it applies the head-sampling decision for traceID and
// returns the root Context. On a nil tracer, an unsampled ID, or traceID 0
// the returned Context is the zero value and every operation under it is a
// no-op.
func (t *Tracer) Root(traceID uint64) Context {
	if t == nil || traceID == 0 || mix(traceID) > t.threshold {
		return Context{}
	}
	return Context{tr: t, traceID: traceID}
}

// record copies the finished span into its site's ring.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	b := t.sites[s.Site]
	if b == nil {
		b = &siteBuf{spans: make([]Span, 0, t.opts.SiteCapacity)}
		t.sites[s.Site] = b
		i := sort.SearchStrings(t.order, s.Site)
		t.order = append(t.order, "")
		copy(t.order[i+1:], t.order[i:])
		t.order[i] = s.Site
	}
	if len(b.spans) < cap(b.spans) {
		b.spans = append(b.spans, *s)
	} else {
		t.dropped++
		b.dropped++
		b.spans[b.head] = *s
		b.head++
		if b.head == len(b.spans) {
			b.head = 0
		}
	}
	b.total++
	t.mu.Unlock()
}

func (t *Tracer) nextSpanID() uint64 {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return id
}

// Dropped reports spans overwritten by ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// DroppedBySite reports, per site, spans overwritten by ring wrap — the
// signal that a site's causal chains may be incomplete. Sites with no drops
// are omitted; the map is freshly allocated.
func (t *Tracer) DroppedBySite() map[string]uint64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out map[string]uint64
	for _, site := range t.order {
		if b := t.sites[site]; b.dropped > 0 {
			if out == nil {
				out = make(map[string]uint64)
			}
			out[site] = b.dropped
		}
	}
	return out
}

// Len reports spans currently held across all rings.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, b := range t.sites {
		n += len(b.spans)
	}
	return n
}

// Sites lists site names with recorded spans, sorted.
func (t *Tracer) Sites() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// Spans returns every held span in deterministic order: sites sorted by
// name, spans within a site oldest-first. The result is a copy.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for _, site := range t.order {
		b := t.sites[site]
		if len(b.spans) < cap(b.spans) {
			out = append(out, b.spans...)
			continue
		}
		out = append(out, b.spans[b.head:]...)
		out = append(out, b.spans[:b.head]...)
	}
	return out
}

// Context is a position in a trace: the tracer plus the current span, under
// which child spans open. The zero Context is the disabled fast path — all
// methods are allocation-free no-ops — which is how untraced federations
// and unsampled traces cost nothing.
//
// Context is a small value: store it in structs and pass it through
// callback chains by value, never by pointer.
type Context struct {
	tr      *Tracer
	traceID uint64
	spanID  uint64
}

// Enabled reports whether spans opened under this context are recorded.
func (c Context) Enabled() bool { return c.tr != nil }

// TraceID reports the trace this context belongs to (0 when disabled).
func (c Context) TraceID() uint64 { return c.traceID }

// Start opens a child span beginning at virtual instant at. It returns the
// span value (kept on the caller's stack or in caller-owned state until
// finished) and the child Context under which caused operations nest.
// On a disabled Context both returns are zero values.
func (c Context) Start(at sim.Time, site, kind, name string) (Span, Context) {
	if c.tr == nil {
		return Span{}, Context{}
	}
	id := c.tr.nextSpanID()
	return Span{
		TraceID:  c.traceID,
		SpanID:   id,
		ParentID: c.spanID,
		Site:     site,
		Kind:     kind,
		Name:     name,
		Start:    at,
	}, Context{tr: c.tr, traceID: c.traceID, spanID: id}
}

// Finish stamps the span's end and records it. Call it on the Context
// returned by the Start that opened the span. Finishing a zero span (from a
// disabled Start) is a no-op.
func (c Context) Finish(s *Span, at sim.Time) {
	if c.tr == nil || s.SpanID == 0 {
		return
	}
	s.End = at
	c.tr.record(s)
}

// Point records an instantaneous span (Start == End) under this context —
// a marker for decisions that consume no virtual time, like a routing pass.
// For a point span with attributes, use Start, SetAttr, Finish inline.
func (c Context) Point(at sim.Time, site, kind, name string) {
	if c.tr == nil {
		return
	}
	sp, cc := c.Start(at, site, kind, name)
	cc.Finish(&sp, at)
}
