package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Chrome trace_event export: the held spans serialized in the Trace Event
// Format understood by chrome://tracing and Perfetto. Mapping:
//
//   - each federation site becomes a process (pid), named via metadata
//     events, so the per-site lanes mirror the physical federation;
//   - each trace (campaign) becomes a thread (tid) inside the sites it
//     touched, so one campaign's causal path lines up across sites;
//   - each span becomes a complete ("ph":"X") event with microsecond
//     virtual timestamps and its span/parent IDs and attributes in args.
//
// Output is deterministic: sites sort by name, traces by first appearance
// in the deterministic span order, and encoding uses fixed field order —
// a fixed-seed run exports byte-identical JSON (the golden-file test).

// chromeEvent is one trace_event entry. Field order is the wire order.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds of virtual time
	Dur   *float64       `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes every held span to w in Chrome trace_event
// JSON. Virtual nanoseconds map to trace microseconds (the format's native
// unit), preserving relative timing exactly.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()

	// Deterministic compact IDs: sites sorted, traces by first appearance.
	siteIdx := make(map[string]int)
	for _, s := range t.Sites() {
		siteIdx[s] = len(siteIdx) + 1
	}
	traceIdx := make(map[uint64]uint64)
	for i := range spans {
		if _, ok := traceIdx[spans[i].TraceID]; !ok {
			traceIdx[spans[i].TraceID] = uint64(len(traceIdx) + 1)
		}
	}

	ct := chromeTrace{DisplayUnit: "ms"}
	sites := t.Sites()
	for _, site := range sites {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: siteIdx[site],
			Args: map[string]any{"name": "site " + site},
		})
	}
	for i := range spans {
		sp := &spans[i]
		dur := float64(sp.Duration()) / 1e3
		args := map[string]any{
			"trace_id": fmt.Sprintf("%016x", sp.TraceID),
			"span_id":  sp.SpanID,
		}
		if sp.ParentID != 0 {
			args["parent_id"] = sp.ParentID
		}
		for _, a := range sp.Attrs() {
			if a.Str != "" {
				args[a.Key] = a.Str
			} else {
				args[a.Key] = a.Val
			}
		}
		name := sp.Name
		if name == "" {
			name = sp.Kind
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name:  name,
			Cat:   sp.Kind,
			Phase: "X",
			TS:    float64(sp.Start) / 1e3,
			Dur:   &dur,
			PID:   siteIdx[sp.Site],
			TID:   traceIdx[sp.TraceID],
		})
		ct.TraceEvents[len(ct.TraceEvents)-1].Args = args
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// WriteChromeTraceFile is WriteChromeTrace to a path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
