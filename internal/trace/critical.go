package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aisle-sim/aisle/internal/sim"
)

// Critical-path analysis: given the span forest of a run, attribute each
// trace's end-to-end virtual latency to the layer that actually spent it.
//
// The model is self time. A span's self time is its duration minus the
// union of its direct children's intervals (clipped to the span), so time a
// scheduler queue span spends waiting counts as scheduling, while the
// instrument action nested inside a dispatch span counts as instrument
// time, not double-counted as dispatch. Summing self time by span kind
// yields the layer breakdown; the root's own self time is the untraced
// residue, and 1 - residue/total is the trace's coverage — the fraction of
// campaign wall-clock the tracing layer can account for.

// KindShare is one layer's share of a trace's latency.
type KindShare struct {
	Kind string
	Self sim.Time
	// Spans is how many spans of this kind contributed.
	Spans int
}

// PathReport is the critical-path breakdown of one trace.
type PathReport struct {
	TraceID uint64
	Root    Span
	// Total is the root span's virtual duration.
	Total sim.Time
	// ByKind lists each layer's self time, largest first.
	ByKind []KindShare
	// Untraced is the root's self time: wall-clock no child span covers.
	Untraced sim.Time
	// Coverage is 1 - Untraced/Total, in [0,1].
	Coverage float64
	// Dominant is the kind with the largest self time (excluding the root).
	Dominant string
}

// CriticalPaths groups spans by trace and extracts one PathReport per trace
// that has a root span (ParentID == 0). Reports are ordered by root start
// time, then trace ID, so output is deterministic.
func CriticalPaths(spans []Span) []PathReport {
	children := make(map[uint64][]int, len(spans)) // parent span ID -> span indices
	roots := make([]int, 0, 8)
	for i := range spans {
		if spans[i].ParentID == 0 {
			roots = append(roots, i)
		} else {
			children[spans[i].ParentID] = append(children[spans[i].ParentID], i)
		}
	}

	var reports []PathReport
	for _, ri := range roots {
		reports = append(reports, extract(spans, children, ri))
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Root.Start != reports[j].Root.Start {
			return reports[i].Root.Start < reports[j].Root.Start
		}
		return reports[i].TraceID < reports[j].TraceID
	})
	return reports
}

type interval struct{ lo, hi sim.Time }

// coverage returns the total length of the union of ivs clipped to
// [lo, hi]. ivs is sorted in place.
func coverage(ivs []interval, lo, hi sim.Time) sim.Time {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var covered sim.Time
	cur := interval{lo: lo, hi: lo}
	started := false
	for _, iv := range ivs {
		if iv.lo < lo {
			iv.lo = lo
		}
		if iv.hi > hi {
			iv.hi = hi
		}
		if iv.hi <= iv.lo {
			continue
		}
		if !started || iv.lo > cur.hi {
			if started {
				covered += cur.hi - cur.lo
			}
			cur, started = iv, true
			continue
		}
		if iv.hi > cur.hi {
			cur.hi = iv.hi
		}
	}
	if started {
		covered += cur.hi - cur.lo
	}
	return covered
}

// extract walks one trace's tree accumulating self time by kind.
func extract(spans []Span, children map[uint64][]int, ri int) PathReport {
	root := spans[ri]
	rep := PathReport{TraceID: root.TraceID, Root: root, Total: root.Duration()}
	byKind := make(map[string]*KindShare)

	var ivs []interval
	var walk func(i int) sim.Time
	walk = func(i int) sim.Time {
		sp := &spans[i]
		kids := children[sp.SpanID]
		ivs = ivs[:0]
		for _, k := range kids {
			ivs = append(ivs, interval{spans[k].Start, spans[k].End})
		}
		self := sp.Duration() - coverage(ivs, sp.Start, sp.End)
		if self < 0 {
			self = 0
		}
		// Recurse after the union: walk reuses ivs.
		for _, k := range kids {
			kSelf := walk(k)
			ks := byKind[spans[k].Kind]
			if ks == nil {
				ks = &KindShare{Kind: spans[k].Kind}
				byKind[spans[k].Kind] = ks
			}
			ks.Self += kSelf
			ks.Spans++
		}
		return self
	}
	rep.Untraced = walk(ri)

	for _, ks := range byKind {
		rep.ByKind = append(rep.ByKind, *ks)
	}
	sort.Slice(rep.ByKind, func(i, j int) bool {
		if rep.ByKind[i].Self != rep.ByKind[j].Self {
			return rep.ByKind[i].Self > rep.ByKind[j].Self
		}
		return rep.ByKind[i].Kind < rep.ByKind[j].Kind
	})
	if len(rep.ByKind) > 0 {
		rep.Dominant = rep.ByKind[0].Kind
	}
	if rep.Total > 0 {
		rep.Coverage = 1 - float64(rep.Untraced)/float64(rep.Total)
	}
	return rep
}

// Render draws the report as an aligned text table for terminals.
func (r *PathReport) Render() string {
	var b strings.Builder
	name := r.Root.Name
	if name == "" {
		name = fmt.Sprintf("trace %016x", r.TraceID)
	}
	fmt.Fprintf(&b, "critical path: %s  total %v  coverage %.1f%%  dominant %s\n",
		name, r.Total, 100*r.Coverage, r.Dominant)
	for _, ks := range r.ByKind {
		pct := 0.0
		if r.Total > 0 {
			pct = 100 * float64(ks.Self) / float64(r.Total)
		}
		fmt.Fprintf(&b, "  %-16s %12v  %5.1f%%  (%d spans)\n", ks.Kind, ks.Self, pct, ks.Spans)
	}
	if r.Untraced > 0 {
		pct := 0.0
		if r.Total > 0 {
			pct = 100 * float64(r.Untraced) / float64(r.Total)
		}
		fmt.Fprintf(&b, "  %-16s %12v  %5.1f%%\n", "(untraced)", r.Untraced, pct)
	}
	return b.String()
}
