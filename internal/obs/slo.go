package obs

import (
	"fmt"
	"strconv"

	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

// Metric is the SLI specification of an SLO: exactly one of the three
// forms should be populated.
//
//   - Ratio: Good/Bad list counter names; the SLI is good/(good+bad).
//   - Latency: Hist names a histogram and Threshold (in the histogram's
//     unit) splits it; the SLI is the fraction of observations at or below
//     Threshold.
//   - Bound: Gauge names a gauge and Bound caps it; the SLI is the
//     fraction of sample ticks on which the gauge was at or below Bound.
//
// Names are resolved lazily against every watched registry, so declaring
// an SLO over a metric its subsystem has not emitted yet is fine — the
// series contributes zero until it appears.
type Metric struct {
	Good []string `json:"good,omitempty"`
	Bad  []string `json:"bad,omitempty"`

	Hist      string  `json:"hist,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`

	Gauge string  `json:"gauge,omitempty"`
	Bound float64 `json:"bound,omitempty"`
}

// BurnWindow is one multi-window burn-rate alerting rule: alert when the
// error budget burns at >= Burn times the sustainable rate over BOTH the
// short and the long window. The short window makes alerts reset quickly
// once the problem stops; the long window keeps blips from paging.
type BurnWindow struct {
	Short sim.Time `json:"short_ns"`
	Long  sim.Time `json:"long_ns"`
	Burn  float64  `json:"burn"`
}

// DefaultWindows is the Google-SRE two-pair policy: a fast pair (5m/1h at
// 14.4x — 2% of a 30-day budget in an hour) and a slow pair (6h/3d at 1x).
func DefaultWindows() []BurnWindow {
	return []BurnWindow{
		{Short: 5 * sim.Minute, Long: sim.Hour, Burn: 14.4},
		{Short: 6 * sim.Hour, Long: 3 * sim.Day, Burn: 1},
	}
}

// SLO declares one service-level objective over a metric stream.
type SLO struct {
	Name      string  `json:"name"`
	Metric    Metric  `json:"metric"`
	Objective float64 `json:"objective"` // target good fraction in (0,1)
	// Windows defaults to DefaultWindows when empty.
	Windows []BurnWindow `json:"windows,omitempty"`
}

// DefaultSLOs is the assembler's stock federation health policy: job
// completion rate, queue-wait latency, knowledge sync lag, and one queue
// depth bound per site.
func DefaultSLOs(sites []string) []SLO {
	slos := []SLO{
		{
			Name: "job-completion",
			Metric: Metric{
				Good: []string{"sched.completed"},
				Bad:  []string{"sched.failures", "sched.expired", "sched.canceled"},
			},
			Objective: 0.99,
		},
		{
			Name:      "sched-wait",
			Metric:    Metric{Hist: "sched.wait_s", Threshold: 1800},
			Objective: 0.95,
		},
		{
			Name:      "knowledge-sync",
			Metric:    Metric{Hist: "knowledge.sync_lag_s", Threshold: 30},
			Objective: 0.99,
		},
	}
	for _, s := range sites {
		slos = append(slos, SLO{
			Name: "queue-depth@" + s,
			Metric: Metric{
				Gauge: telemetry.Key("sched.queue_depth", "site", s),
				Bound: 50,
			},
			Objective: 0.95,
		})
	}
	return slos
}

// cumSample is one tick's cumulative (good, total) event counts.
type cumSample struct {
	good, total float64
}

// sloState is the streaming evaluation state of one SLO: a ring of
// cumulative samples sized to the longest alerting window, so any window's
// delta is two ring reads.
type sloState struct {
	slo    SLO
	period sim.Time

	// Resolved metric handles, filled lazily from the watched registries.
	good, bad []*telemetry.Counter
	hist      *telemetry.Histogram
	gauge     *telemetry.Gauge
	resolved  bool

	// Gauge SLIs accumulate tick verdicts here (the gauge itself is
	// instantaneous, not cumulative).
	gaugeGood, gaugeTotal float64

	ring  []cumSample
	head  int // next write position
	count int // filled entries, <= len(ring)

	active  []bool // per window pair
	burns   []float64
	lastBad float64
}

func newSLOState(s SLO, period sim.Time) *sloState {
	if len(s.Windows) == 0 {
		s.Windows = DefaultWindows()
	}
	if s.Objective <= 0 {
		s.Objective = 0.99
	}
	if s.Objective >= 1 {
		s.Objective = 0.999
	}
	longest := sim.Time(0)
	for _, w := range s.Windows {
		if w.Long > longest {
			longest = w.Long
		}
		if w.Short > longest {
			longest = w.Short
		}
	}
	n := int(longest/period) + 2
	return &sloState{
		slo:    s,
		period: period,
		ring:   make([]cumSample, n),
		active: make([]bool, len(s.Windows)),
		burns:  make([]float64, 2*len(s.Windows)),
	}
}

// resolve binds metric names to live handles. Unresolved names are retried
// every tick (two map reads each) until the subsystem creates them; once
// everything referenced exists the resolution is cached.
func (st *sloState) resolve(regs []watchedReg) {
	if st.resolved {
		return
	}
	m := &st.slo.Metric
	missing := false
	if len(m.Good) > 0 || len(m.Bad) > 0 {
		if st.good == nil {
			st.good = make([]*telemetry.Counter, len(m.Good))
		}
		if st.bad == nil {
			st.bad = make([]*telemetry.Counter, len(m.Bad))
		}
		for i, name := range m.Good {
			if st.good[i] == nil {
				st.good[i] = findCounterIn(regs, name)
				if st.good[i] == nil {
					missing = true
				}
			}
		}
		for i, name := range m.Bad {
			if st.bad[i] == nil {
				st.bad[i] = findCounterIn(regs, name)
				if st.bad[i] == nil {
					missing = true
				}
			}
		}
	}
	if m.Hist != "" && st.hist == nil {
		st.hist = findHistogramIn(regs, m.Hist)
		if st.hist == nil {
			missing = true
		}
	}
	if m.Gauge != "" && st.gauge == nil {
		st.gauge = findGaugeIn(regs, m.Gauge)
		if st.gauge == nil {
			missing = true
		}
	}
	st.resolved = !missing
}

func findCounterIn(regs []watchedReg, name string) *telemetry.Counter {
	for _, wr := range regs {
		if c := wr.reg.FindCounter(name); c != nil {
			return c
		}
	}
	return nil
}

func findGaugeIn(regs []watchedReg, name string) *telemetry.Gauge {
	for _, wr := range regs {
		if g := wr.reg.FindGauge(name); g != nil {
			return g
		}
	}
	return nil
}

func findHistogramIn(regs []watchedReg, name string) *telemetry.Histogram {
	for _, wr := range regs {
		if h := wr.reg.FindHistogram(name); h != nil {
			return h
		}
	}
	return nil
}

// sample reads the cumulative (good, total) counts now and pushes them
// onto the ring. It returns the tick's bad-event delta, which the engine
// journals when non-zero.
func (st *sloState) sample(now sim.Time, regs []watchedReg) float64 {
	st.resolve(regs)
	var cur cumSample
	m := &st.slo.Metric
	switch {
	case m.Hist != "":
		if st.hist != nil {
			cur.total = float64(st.hist.Count())
			cur.good = float64(st.hist.CountAtOrBelow(m.Threshold))
		}
	case m.Gauge != "":
		st.gaugeTotal++
		if st.gauge == nil || st.gauge.Value() <= m.Bound {
			st.gaugeGood++
		}
		cur.good, cur.total = st.gaugeGood, st.gaugeTotal
	default:
		for _, c := range st.good {
			if c != nil {
				cur.good += float64(c.Value())
			}
		}
		cur.total = cur.good
		for _, c := range st.bad {
			if c != nil {
				cur.total += float64(c.Value())
			}
		}
	}

	prevBad := 0.0
	if st.count > 0 {
		p := st.at(1)
		prevBad = p.total - p.good
	}
	st.ring[st.head] = cur
	st.head++
	if st.head == len(st.ring) {
		st.head = 0
	}
	if st.count < len(st.ring) {
		st.count++
	}
	st.lastBad = (cur.total - cur.good) - prevBad
	if st.lastBad < 0 {
		st.lastBad = 0
	}
	return st.lastBad
}

// at returns the sample back ticks before the latest (back=0 is latest),
// clamped to the oldest sample held.
func (st *sloState) at(back int) cumSample {
	if back >= st.count {
		back = st.count - 1
	}
	i := st.head - 1 - back
	for i < 0 {
		i += len(st.ring)
	}
	return st.ring[i]
}

// burnOver computes the burn rate over window w: the bad fraction of
// events inside the window divided by the budgeted bad fraction
// (1 - objective). A window shorter than one sample period evaluates over
// the latest tick; a window longer than the history held evaluates over
// everything held (the clock-starts-at-zero case).
func (st *sloState) burnOver(w sim.Time) float64 {
	if st.count < 2 {
		return 0
	}
	back := int(w / st.period)
	if back < 1 {
		back = 1
	}
	newest, oldest := st.at(0), st.at(back)
	dTotal := newest.total - oldest.total
	if dTotal <= 0 {
		return 0
	}
	badFrac := (dTotal - (newest.good - oldest.good)) / dTotal
	return badFrac / (1 - st.slo.Objective)
}

// evaluate updates the per-pair alert state and reports whether the SLO as
// a whole transitioned into (fired) or out of (resolved) alerting.
func (st *sloState) evaluate() (fired, resolved bool, detail string) {
	wasActive := st.anyActive()
	for i, w := range st.slo.Windows {
		short := st.burnOver(w.Short)
		long := st.burnOver(w.Long)
		st.burns[2*i] = short
		st.burns[2*i+1] = long
		nowActive := short >= w.Burn && long >= w.Burn
		if nowActive && !st.active[i] && detail == "" {
			detail = fmt.Sprintf("burn %.1fx/%.1fx over %s/%s exceeds %.1fx",
				short, long, fmtDur(w.Short), fmtDur(w.Long), w.Burn)
		}
		st.active[i] = nowActive
	}
	isActive := st.anyActive()
	return isActive && !wasActive, wasActive && !isActive, detail
}

func (st *sloState) anyActive() bool {
	for _, a := range st.active {
		if a {
			return true
		}
	}
	return false
}

// WindowStatus is the live burn state of one alerting window pair.
type WindowStatus struct {
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	Threshold float64 `json:"threshold"`
	Active    bool    `json:"active"`
}

// SLOStatus is the point-in-time state of one SLO.
type SLOStatus struct {
	Name      string         `json:"name"`
	Objective float64        `json:"objective"`
	Good      float64        `json:"good"`
	Total     float64        `json:"total"`
	Windows   []WindowStatus `json:"windows"`
	Alerting  bool           `json:"alerting"`
}

func (st *sloState) status() SLOStatus {
	s := SLOStatus{
		Name:      st.slo.Name,
		Objective: st.slo.Objective,
		Alerting:  st.anyActive(),
	}
	if st.count > 0 {
		cur := st.at(0)
		s.Good, s.Total = cur.good, cur.total
	}
	for i, w := range st.slo.Windows {
		s.Windows = append(s.Windows, WindowStatus{
			ShortBurn: st.burns[2*i],
			LongBurn:  st.burns[2*i+1],
			Threshold: w.Burn,
			Active:    st.active[i],
		})
	}
	return s
}

func fmtDur(d sim.Time) string {
	switch {
	case d >= sim.Day && d%sim.Day == 0:
		return fmt.Sprintf("%dd", d/sim.Day)
	case d >= sim.Hour && d%sim.Hour == 0:
		return fmt.Sprintf("%dh", d/sim.Hour)
	case d >= sim.Minute && d%sim.Minute == 0:
		return fmt.Sprintf("%dm", d/sim.Minute)
	}
	return fmt.Sprintf("%ds", d/sim.Second)
}

func formatBurn(w WindowStatus) string {
	return fmt.Sprintf("%.2fx/%.2fx", w.ShortBurn, w.LongBurn)
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
