package obs

import (
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/trace"
)

// Entry is one flight-recorder journal record: a scheduler decision, an
// applied fault window, an SLO burn event, a fired/resolved alert, or an
// invariant violation. Entries are flat values copied into a preallocated
// ring, so journaling the hot path allocates nothing.
type Entry struct {
	Seq     uint64   `json:"seq"`
	At      sim.Time `json:"at_ns"`
	Type    string   `json:"type"`  // "sched" | "fault" | "slo" | "alert" | "violation"
	Event   string   `json:"event,omitempty"` // decision/fault kind or SLO name
	Job     string   `json:"job,omitempty"`
	Tenant  string   `json:"tenant,omitempty"`
	Site    string   `json:"site,omitempty"`
	Host    string   `json:"host,omitempty"`
	Inst    string   `json:"inst,omitempty"`
	Reason  string   `json:"reason,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	End     sim.Time `json:"end_ns,omitempty"` // fault windows
	Value   float64  `json:"value,omitempty"`  // SLO bad-event delta
}

// SpanRecord is one recent span captured into a snapshot.
type SpanRecord struct {
	TraceID uint64   `json:"trace_id"`
	SpanID  uint64   `json:"span_id"`
	Parent  uint64   `json:"parent_id,omitempty"`
	Site    string   `json:"site"`
	Kind    string   `json:"kind"`
	Name    string   `json:"name"`
	Start   sim.Time `json:"start_ns"`
	End     sim.Time `json:"end_ns"`
}

// Snapshot is one frozen flight-recorder state: the journal tail at the
// trigger instant, the tracer's most recent spans per site, per-site
// trace-drop counts (non-zero drops flag causal chains that may be
// incomplete), and every SLO's status. Snapshots serialize to byte-stable
// JSON: all ordering is by sequence or sorted key, and every timestamp is
// virtual.
type Snapshot struct {
	Seq          int               `json:"seq"`
	At           sim.Time          `json:"at_ns"`
	Trigger      string            `json:"trigger"`
	Detail       string            `json:"detail,omitempty"`
	Journal      []Entry           `json:"journal"`
	Spans        []SpanRecord      `json:"spans,omitempty"`
	TraceDropped map[string]uint64 `json:"trace_dropped,omitempty"`
	SLOs         []SLOStatus       `json:"slos,omitempty"`
}

// recorder is the bounded journal ring plus retained snapshots.
type recorder struct {
	ring    []Entry
	head    int
	count   int
	seq     uint64
	snaps   []Snapshot
	maxSnap int
	skipped int // triggers past the snapshot cap
}

func newRecorder(capacity, maxSnapshots int) *recorder {
	return &recorder{ring: make([]Entry, capacity), maxSnap: maxSnapshots}
}

func (r *recorder) add(e Entry) {
	r.seq++
	e.Seq = r.seq
	r.ring[r.head] = e
	r.head++
	if r.head == len(r.ring) {
		r.head = 0
	}
	if r.count < len(r.ring) {
		r.count++
	}
}

// tail copies the journal oldest-first.
func (r *recorder) tail() []Entry {
	out := make([]Entry, 0, r.count)
	start := r.head - r.count
	for start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// snapshot freezes the recorder state. Two triggers at the same virtual
// instant with the same label coalesce into one snapshot (violation
// storms — one per job — would otherwise exhaust the cap in one event).
func (r *recorder) snapshot(now sim.Time, trigger, detail string,
	tr *trace.Tracer, spanTail int, slos []SLOStatus) {

	if n := len(r.snaps); n > 0 && r.snaps[n-1].At == now && r.snaps[n-1].Trigger == trigger {
		return
	}
	if len(r.snaps) >= r.maxSnap {
		r.skipped++
		return
	}
	s := Snapshot{
		Seq:     len(r.snaps) + 1,
		At:      now,
		Trigger: trigger,
		Detail:  detail,
		Journal: r.tail(),
		SLOs:    slos,
	}
	if tr != nil {
		s.Spans = recentSpans(tr, spanTail)
		s.TraceDropped = tr.DroppedBySite()
	}
	r.snaps = append(r.snaps, s)
}

// recentSpans keeps the newest perSite spans of each site, preserving the
// tracer's deterministic order (sites sorted, oldest-first within a site).
func recentSpans(tr *trace.Tracer, perSite int) []SpanRecord {
	var out []SpanRecord
	spans := tr.Spans()
	// Spans() groups by site in sorted order; walk groups and keep tails.
	for i := 0; i < len(spans); {
		j := i
		for j < len(spans) && spans[j].Site == spans[i].Site {
			j++
		}
		k := i
		if j-i > perSite {
			k = j - perSite
		}
		for ; k < j; k++ {
			sp := &spans[k]
			out = append(out, SpanRecord{
				TraceID: sp.TraceID,
				SpanID:  sp.SpanID,
				Parent:  sp.ParentID,
				Site:    sp.Site,
				Kind:    sp.Kind,
				Name:    sp.Name,
				Start:   sp.Start,
				End:     sp.End,
			})
		}
		i = j
	}
	return out
}
