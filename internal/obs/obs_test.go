package obs

import (
	"bytes"
	"strings"
	"testing"

	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/sched"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
)

// newTestEngine assembles an enabled engine over one registry with a single
// ratio SLO and a tight alerting policy, returning the pieces tests drive
// by hand (no ticker; tests call Sample at the instants they choose).
func newTestEngine(t *testing.T, slo SLO) (*Engine, *sim.Engine, *telemetry.Registry) {
	t.Helper()
	eng := sim.NewEngine()
	e := New(eng, Options{Enabled: true, SamplePeriod: 15 * sim.Second, SLOs: []SLO{slo}})
	if e == nil {
		t.Fatal("New returned nil for an enabled config")
	}
	reg := telemetry.NewRegistry()
	e.Watch("test", reg)
	return e, eng, reg
}

func ratioSLO() SLO {
	return SLO{
		Name:      "jobs",
		Metric:    Metric{Good: []string{"good"}, Bad: []string{"bad"}},
		Objective: 0.9,
		Windows:   []BurnWindow{{Short: 30 * sim.Second, Long: 60 * sim.Second, Burn: 2}},
	}
}

func TestDisabledEngineIsNil(t *testing.T) {
	if e := New(sim.NewEngine(), Options{}); e != nil {
		t.Fatalf("New with Enabled=false returned %v, want nil", e)
	}
}

func TestBurnRateFiresAndResolves(t *testing.T) {
	e, eng, reg := newTestEngine(t, ratioSLO())
	good, bad := reg.Counter("good"), reg.Counter("bad")

	// Healthy traffic: 10 good events per tick for 8 ticks.
	for i := 0; i < 8; i++ {
		good.Add(10)
		eng.Schedule(15*sim.Second, e.Sample)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.Alerts()) != 0 {
		t.Fatalf("healthy stream raised alerts: %+v", e.Alerts())
	}

	// Outage: everything fails for 5 ticks. Bad fraction 1.0 against a 10%
	// budget is a 10x burn, over both the 2-tick and 4-tick windows.
	for i := 0; i < 5; i++ {
		bad.Add(10)
		eng.Schedule(15*sim.Second, e.Sample)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	alerts := e.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("outage raised %d alerts, want 1: %+v", len(alerts), alerts)
	}
	if alerts[0].SLO != "jobs" || alerts[0].ResolvedAt != 0 {
		t.Fatalf("unexpected alert: %+v", alerts[0])
	}
	if !strings.Contains(alerts[0].Detail, "exceeds 2.0x") {
		t.Fatalf("alert detail %q does not name the burn threshold", alerts[0].Detail)
	}

	// Recovery: good traffic long enough to flush both windows.
	for i := 0; i < 8; i++ {
		good.Add(10)
		eng.Schedule(15*sim.Second, e.Sample)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	alerts = e.Alerts()
	if len(alerts) != 1 || alerts[0].ResolvedAt == 0 {
		t.Fatalf("alert did not resolve after recovery: %+v", alerts)
	}

	// The alert transition must have frozen exactly one snapshot.
	snaps := e.Snapshots()
	if len(snaps) != 1 || !strings.HasPrefix(snaps[0].Trigger, "alert:jobs") {
		t.Fatalf("snapshots = %+v, want one alert:jobs snapshot", snaps)
	}
}

func TestBurnWindowShorterThanOneSample(t *testing.T) {
	// A 1s window under a 15s sample period must evaluate over the latest
	// tick instead of rounding down to an empty interval.
	slo := ratioSLO()
	slo.Windows = []BurnWindow{{Short: sim.Second, Long: 2 * sim.Second, Burn: 2}}
	e, eng, reg := newTestEngine(t, slo)
	good, bad := reg.Counter("good"), reg.Counter("bad")

	good.Add(10)
	eng.Schedule(15*sim.Second, e.Sample)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	bad.Add(10)
	eng.Schedule(15*sim.Second, e.Sample)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Statuses()[0]
	if !st.Alerting {
		t.Fatalf("sub-period window did not alert on a pure-bad tick: %+v", st)
	}
	if got := st.Windows[0].ShortBurn; got < 9.999 || got > 10.001 {
		t.Fatalf("short burn = %v, want 10 (bad fraction 1.0 over a 0.1 budget)", got)
	}
}

func TestBurnClampsToHistoryAtClockStart(t *testing.T) {
	// Windows longer than the history held must evaluate over everything
	// held rather than reading stale ring slots: with the clock starting at
	// zero, the very second sample can already alert.
	slo := ratioSLO()
	slo.Windows = []BurnWindow{{Short: sim.Hour, Long: 3 * sim.Hour, Burn: 2}}
	e, eng, reg := newTestEngine(t, slo)
	bad := reg.Counter("bad")

	if e.Sample(); e.Statuses()[0].Alerting {
		t.Fatal("single-sample history alerted (burn needs two samples)")
	}
	bad.Add(10)
	eng.Schedule(15*sim.Second, e.Sample)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st := e.Statuses()[0]; !st.Alerting {
		t.Fatalf("hour-long window did not clamp to the 2-sample history: %+v", st)
	}
}

func TestGaugeSLOCountsTickVerdicts(t *testing.T) {
	slo := SLO{
		Name:      "depth",
		Metric:    Metric{Gauge: "queue_depth", Bound: 5},
		Objective: 0.5,
		Windows:   []BurnWindow{{Short: 30 * sim.Second, Long: 60 * sim.Second, Burn: 1.5}},
	}
	e, eng, reg := newTestEngine(t, slo)
	g := reg.Gauge("queue_depth")

	g.Set(2) // within bound: healthy ticks
	for i := 0; i < 4; i++ {
		eng.Schedule(15*sim.Second, e.Sample)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	g.Set(50) // runaway queue: every tick is bad
	for i := 0; i < 4; i++ {
		eng.Schedule(15*sim.Second, e.Sample)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Statuses()[0]; !st.Alerting {
		t.Fatalf("bounded-gauge SLO did not alert on a sustained breach: %+v", st)
	}
}

func TestLazyMetricResolution(t *testing.T) {
	// The SLO references a histogram that does not exist yet; ticks before
	// it appears contribute nothing, and the series picks up afterwards.
	slo := SLO{
		Name:      "lag",
		Metric:    Metric{Hist: "lag_s", Threshold: 1},
		Objective: 0.9,
		Windows:   []BurnWindow{{Short: 30 * sim.Second, Long: 60 * sim.Second, Burn: 2}},
	}
	e, eng, reg := newTestEngine(t, slo)
	eng.Schedule(15*sim.Second, e.Sample)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram("lag_s") // created after the first tick
	for i := 0; i < 4; i++ {
		h.Observe(100) // far past the threshold: all bad
		eng.Schedule(15*sim.Second, e.Sample)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Statuses()[0]; !st.Alerting {
		t.Fatalf("late-created histogram never resolved: %+v", st)
	}
}

func TestJournalRingBounded(t *testing.T) {
	eng := sim.NewEngine()
	e := New(eng, Options{Enabled: true, JournalCapacity: 8})
	for i := 0; i < 20; i++ {
		e.ObserveDecision(sched.Decision{Kind: sched.DecisionSubmit, Job: "job", At: sim.Time(i)})
	}
	j := e.Journal()
	if len(j) != 8 {
		t.Fatalf("journal holds %d entries, want capacity 8", len(j))
	}
	if j[0].Seq != 13 || j[7].Seq != 20 {
		t.Fatalf("journal kept seqs %d..%d, want the newest 13..20", j[0].Seq, j[7].Seq)
	}
	for i := 1; i < len(j); i++ {
		if j[i].Seq != j[i-1].Seq+1 {
			t.Fatalf("journal out of order at %d: %+v", i, j)
		}
	}
}

func TestSnapshotCoalescingAndCap(t *testing.T) {
	eng := sim.NewEngine()
	e := New(eng, Options{Enabled: true, MaxSnapshots: 3})
	// A violation storm at one instant coalesces into one snapshot.
	for i := 0; i < 5; i++ {
		e.ObserveViolation("dup terminal")
	}
	if got := len(e.Snapshots()); got != 1 {
		t.Fatalf("same-instant violation storm froze %d snapshots, want 1", got)
	}
	// Distinct instants take distinct snapshots up to the cap.
	for i := 1; i <= 5; i++ {
		eng.Schedule(sim.Second, func() { e.Snapshot("manual") })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	snaps := e.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("retained %d snapshots, want MaxSnapshots=3", len(snaps))
	}
	if e.rec.skipped != 3 {
		t.Fatalf("skipped = %d, want 3 (two capped manuals + none coalesced)", e.rec.skipped)
	}
}

func TestLinkerAttributesOverlappingFault(t *testing.T) {
	eng := sim.NewEngine()
	e := New(eng, Options{Enabled: true})
	e.ObserveFault(FaultWindow{Kind: "site-outage", Site: "ornl",
		Start: 10 * sim.Second, End: 60 * sim.Second})
	d := sched.Decision{Kind: sched.DecisionSubmit, Job: "j1", Tenant: "t",
		Origin: "anl", At: 20 * sim.Second}
	e.ObserveDecision(d)
	d.Kind, d.Host, d.Inst, d.At = sched.DecisionDispatch, "ornl", "ornl/flow-0", 21*sim.Second
	e.ObserveDecision(d)
	d.Kind, d.Reason, d.At, d.Attempt = sched.DecisionRetry, "instrument down", 30*sim.Second, 1
	e.ObserveDecision(d)
	d.Kind, d.Host, d.At = sched.DecisionDispatch, "anl", 31*sim.Second
	e.ObserveDecision(d)
	d.Kind, d.Reason, d.At = sched.DecisionComplete, "", 40*sim.Second
	e.ObserveDecision(d)

	att := e.Attribution()
	if att.DegradedJobs != 1 || att.AttributedJobs != 1 || att.Coverage != 1 {
		t.Fatalf("attribution = %+v, want the one degraded job attributed", att)
	}
	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %+v, want 1", incs)
	}
	inc := incs[0]
	if inc.Fault.Site != "ornl" || inc.Retries != 1 || inc.Completed != 1 ||
		len(inc.Jobs) != 1 || inc.Jobs[0].Job != "j1" || inc.Jobs[0].Outcome != "completed" {
		t.Fatalf("incident = %+v", inc)
	}
	if !strings.Contains(inc.Summary, "ornl site-outage") {
		t.Fatalf("summary %q does not name the fault", inc.Summary)
	}
}

func TestLinkerClassifiesBackgroundNoise(t *testing.T) {
	// A retry with no fault window active anywhere is intrinsic instrument
	// noise: not attributed, and excluded from the coverage denominator.
	eng := sim.NewEngine()
	e := New(eng, Options{Enabled: true})
	e.ObserveFault(FaultWindow{Kind: "degrade", Site: "ornl",
		Start: sim.Hour, End: 2 * sim.Hour})
	d := sched.Decision{Kind: sched.DecisionSubmit, Job: "j1", Origin: "anl", At: sim.Second}
	e.ObserveDecision(d)
	d.Kind, d.Host, d.At = sched.DecisionDispatch, "anl", 2*sim.Second
	e.ObserveDecision(d)
	d.Kind, d.Reason, d.At = sched.DecisionRetry, "action failed mid-run", 10*sim.Second
	e.ObserveDecision(d)

	att := e.Attribution()
	if att.DegradedJobs != 1 || att.BackgroundJobs != 1 || att.AttributedJobs != 0 {
		t.Fatalf("attribution = %+v, want one background job", att)
	}
	if att.Coverage != 1 {
		t.Fatalf("coverage = %v, want 1 (background excluded from the denominator)", att.Coverage)
	}
	if len(e.Incidents()) != 0 {
		t.Fatalf("background noise produced incidents: %+v", e.Incidents())
	}
}

func TestLinkerTerminalFallbackToLifetime(t *testing.T) {
	// A job stranded by an outage can expire long after the window healed;
	// the terminal event falls back to the job's lifetime for attribution.
	eng := sim.NewEngine()
	e := New(eng, Options{Enabled: true})
	e.ObserveFault(FaultWindow{Kind: "site-outage", Site: "ornl",
		Start: 10 * sim.Second, End: 30 * sim.Second})
	d := sched.Decision{Kind: sched.DecisionSubmit, Job: "j1", Origin: "ornl", At: 15 * sim.Second}
	e.ObserveDecision(d)
	// Requeued well after the heal, then expired: the attempt window alone
	// misses the fault, the lifetime window catches it.
	d.Kind, d.At = sched.DecisionDispatch, 2*sim.Hour
	d.Host = "ornl"
	e.ObserveDecision(d)
	d.Kind, d.Reason, d.At = sched.DecisionExpire, "timeout", 3*sim.Hour
	e.ObserveDecision(d)

	att := e.Attribution()
	if att.AttributedJobs != 1 {
		t.Fatalf("attribution = %+v, want the expiry attributed via lifetime fallback", att)
	}
	incs := e.Incidents()
	if len(incs) != 1 || incs[0].Expired != 1 {
		t.Fatalf("incidents = %+v, want one with the expiry counted", incs)
	}
}

func TestLinkerAttributesQueueStarvationAcrossSites(t *testing.T) {
	// A job that never dispatched starved in queue: the capability it
	// waited on may live at another site entirely, so the site filter is
	// waived and the overlapping outage — wherever it is — gets the blame.
	eng := sim.NewEngine()
	e := New(eng, Options{Enabled: true})
	e.ObserveFault(FaultWindow{Kind: "site-outage", Site: "ornl",
		Start: 10 * sim.Second, End: sim.Hour})
	d := sched.Decision{Kind: sched.DecisionSubmit, Job: "j1", Origin: "anl", At: 20 * sim.Second}
	e.ObserveDecision(d)
	d.Kind, d.Reason, d.At = sched.DecisionExpire, "timeout", 30*sim.Minute
	e.ObserveDecision(d)

	att := e.Attribution()
	if att.AttributedJobs != 1 {
		t.Fatalf("attribution = %+v, want the queue starvation attributed cross-site", att)
	}
	incs := e.Incidents()
	if len(incs) != 1 || incs[0].Fault.Site != "ornl" || incs[0].Expired != 1 {
		t.Fatalf("incidents = %+v", incs)
	}
}

func TestSnapshotJSONByteStable(t *testing.T) {
	build := func() *Engine {
		eng := sim.NewEngine()
		e := New(eng, Options{Enabled: true})
		e.ObserveFault(FaultWindow{Kind: "partition", Site: "anl",
			Start: sim.Second, End: sim.Minute})
		for i := 0; i < 3; i++ {
			e.ObserveDecision(sched.Decision{Kind: sched.DecisionSubmit,
				Job: "job-000" + string(rune('0'+i)), Origin: "anl", At: sim.Time(i) * sim.Second})
		}
		e.ObserveViolation("x delivered on a down link")
		e.Snapshot("manual")
		return e
	}
	var a, b bytes.Buffer
	if err := build().WriteSnapshotsJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteIncidentsJSON(&b); err != nil {
		t.Fatal(err)
	}
	var a2, b2 bytes.Buffer
	if err := build().WriteSnapshotsJSON(&a2); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteIncidentsJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), a2.Bytes()) {
		t.Fatal("snapshot JSON differs across identical engines")
	}
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Fatal("incident JSON differs across identical engines")
	}
	if a.Len() == 0 || a.String() == "[]\n" {
		t.Fatalf("snapshot JSON unexpectedly empty: %q", a.String())
	}
}

func TestNilEnginePathIsZeroAlloc(t *testing.T) {
	var e *Engine // nil: health off
	d := sched.Decision{Kind: sched.DecisionDispatch, Job: "j", At: sim.Second}
	w := FaultWindow{Kind: "degrade", Site: "ornl"}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Sample()
		e.ObserveDecision(d)
		e.ObserveFault(w)
		e.ObserveViolation("v")
		e.Snapshot("t")
		e.Start()
		e.Stop()
		if e.Alerts() != nil || e.Snapshots() != nil || e.Incidents() != nil {
			t.Fatal("nil engine returned data")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled health path allocated %v allocs/op, want 0", allocs)
	}
}

func TestDefaultSLOsCoverTheFederationSignals(t *testing.T) {
	slos := DefaultSLOs([]string{"ornl", "anl"})
	names := make(map[string]bool, len(slos))
	for _, s := range slos {
		names[s.Name] = true
	}
	for _, want := range []string{"job-completion", "sched-wait", "knowledge-sync",
		"queue-depth@ornl", "queue-depth@anl"} {
		if !names[want] {
			t.Fatalf("DefaultSLOs missing %q: %v", want, names)
		}
	}
	if len(DefaultWindows()) != 2 {
		t.Fatalf("DefaultWindows = %+v, want the fast+slow pair", DefaultWindows())
	}
}

// TestTraceDropGaugesSurfaceInSnapshot closes the gap where the tracer's
// per-site span-drop counters lived only on the Tracer: after ExportTo,
// every Sample publishes them as trace.dropped{site=...} gauges, so they
// ride Registry.Snapshot like any other labeled metric.
func TestTraceDropGaugesSurfaceInSnapshot(t *testing.T) {
	e, eng, reg := newTestEngine(t, ratioSLO())
	tr := trace.New(trace.Options{Enabled: true, SiteCapacity: 2})
	e.WatchTracer(tr)
	e.ExportTo(reg)

	// Overflow the ornl ring: 5 spans into a capacity-2 ring drops 3.
	ctx := tr.Root(1)
	for i := 0; i < 5; i++ {
		s, c := ctx.Start(eng.Now(), "ornl", "job", "run")
		c.Finish(&s, eng.Now()+sim.Second)
	}
	if got := tr.DroppedBySite()["ornl"]; got != 3 {
		t.Fatalf("precondition: DroppedBySite()[ornl] = %d, want 3", got)
	}

	key := telemetry.Key("trace.dropped", "site", "ornl")
	if g := reg.FindGauge(key); g != nil {
		t.Fatal("drop gauge exported before any Sample")
	}
	e.Sample()
	g := reg.FindGauge(key)
	if g == nil {
		t.Fatalf("Sample did not export %s", key)
	}
	if got := g.Value(); got != 3 {
		t.Fatalf("%s = %v, want 3", key, got)
	}
	// The gauge must appear in the snapshot, not just on direct lookup.
	if v, ok := reg.Snapshot().Gauges[key]; !ok || v != 3 {
		t.Fatalf("Registry.Snapshot gauge %s = %v (present %v), want 3", key, v, ok)
	}
	// Drops keep flowing: two more spans, two more drops, next Sample
	// moves the gauge.
	for i := 0; i < 2; i++ {
		s, c := ctx.Start(eng.Now(), "ornl", "job", "run")
		c.Finish(&s, eng.Now()+sim.Second)
	}
	e.Sample()
	if got := reg.FindGauge(key).Value(); got != 5 {
		t.Fatalf("after more drops %s = %v, want 5", key, got)
	}
}

// TestProfileCarriesProfilerSites: SpineProfile extends into per-call-site
// region counters when a profiler is watched, and omits them otherwise.
func TestProfileCarriesProfilerSites(t *testing.T) {
	e, _, _ := newTestEngine(t, ratioSLO())
	if got := e.Profile().Sites; got != nil {
		t.Fatalf("unwatched engine reported profiler sites: %v", got)
	}
	p := prof.New(prof.Options{Enabled: true})
	r := p.Enter(prof.SiteSimEvent)
	r.End()
	p.Sample(prof.SiteNetDeliver, sim.Second.Std(), 7)
	e.WatchProfiler(p)
	sites := e.Profile().Sites
	var simEvents, deliverSamples uint64
	for _, s := range sites {
		switch s.Site {
		case "sim.event":
			simEvents = s.Count
		case "net.deliver":
			deliverSamples = s.Samples
		}
	}
	if simEvents != 1 || deliverSamples != 1 {
		t.Fatalf("profiler counters not surfaced: %+v", sites)
	}
}
