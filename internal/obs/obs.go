// Package obs is AISLE's federation health engine: the layer that turns
// the raw signals the other observability subsystems produce — labeled
// metrics (telemetry), causal spans (trace), scheduler decisions (sched),
// and injected fault windows (chaos) — into operator answers: is the
// federation healthy, what broke, and which fault each degraded job traces
// back to.
//
// Three cooperating pieces, all native to virtual (simulation) time:
//
//   - Streaming SLO evaluation (slo.go): rolling sim-time windows over
//     metric streams with multi-window burn-rate alerting in the
//     Google-SRE style — an alert fires only when both a fast window
//     (minutes) and a slow window (hours) burn error budget faster than
//     the declared rate, so blips don't page and slow leaks don't hide.
//
//   - Flight recorder (recorder.go): a bounded, preallocated ring journal
//     of recent scheduler decisions, fault injections, SLO burn events,
//     and invariant violations. When an alert fires or an invariant trips
//     it freezes a Snapshot — journal tail, recent spans, trace-drop
//     counts, SLO statuses — serializable to byte-stable JSON.
//
//   - Incident root-cause linker (linker.go): joins the decision stream
//     with the fault-injection log to attribute every retried, rescued,
//     failed, or expired job to the fault window that plausibly caused it,
//     and aggregates per-fault Incident reports.
//
// Design constraints match the rest of the observability stack: a nil
// *Engine is valid and free (every method short-circuits on a pointer
// test); an enabled engine only reads simulation state — it never mutates
// it and never draws randomness — so the virtual trajectory of a run is
// bit-identical with health monitoring on or off; and everything it
// retains is bounded (sample rings, journal ring, tracked-job cap).
package obs

import (
	"encoding/json"
	"io"
	"sync"

	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/sched"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
)

// Options tunes the health engine. The zero value disables it.
type Options struct {
	// Enabled turns the engine on. Off (the default) keeps Config.Health
	// free: core wires a nil *Engine and no hook fires.
	Enabled bool
	// SamplePeriod is the sim-time metric sampling interval. Default 15s.
	SamplePeriod sim.Time
	// SLOs to evaluate. Empty lets the assembler install defaults
	// (DefaultSLOs) covering completion rate, queue wait, knowledge sync
	// lag, and per-site queue depth.
	SLOs []SLO
	// JournalCapacity bounds the flight-recorder ring in entries.
	// Default 4096.
	JournalCapacity int
	// SnapshotSpans is how many recent spans per site a snapshot captures
	// from the tracer. Default 32.
	SnapshotSpans int
	// MaxSnapshots bounds retained snapshots; once full, further triggers
	// are counted but drop no new artifacts. Default 16.
	MaxSnapshots int
	// MaxTrackedJobs bounds the root-cause linker's per-job records.
	// Default 16384; beyond it, new jobs are counted as untracked.
	MaxTrackedJobs int
}

func (o *Options) defaults() {
	if o.SamplePeriod <= 0 {
		o.SamplePeriod = 15 * sim.Second
	}
	if o.JournalCapacity <= 0 {
		o.JournalCapacity = 4096
	}
	if o.SnapshotSpans <= 0 {
		o.SnapshotSpans = 32
	}
	if o.MaxSnapshots <= 0 {
		o.MaxSnapshots = 16
	}
	if o.MaxTrackedJobs <= 0 {
		o.MaxTrackedJobs = 16384
	}
}

// Engine is the assembled health engine. A nil *Engine is valid and
// always-off; the mutex exists for harnesses inspecting the engine from
// another goroutine (and the -race lane) — within a simulation every hook
// runs on the single sim goroutine.
type Engine struct {
	eng  *sim.Engine
	opts Options

	mu       sync.Mutex
	regs     []watchedReg
	tracer   *trace.Tracer
	prof     *prof.Profiler
	derived  *telemetry.Registry
	// dropG caches trace.dropped{site=...} gauges per site so the sampling
	// tick never rebuilds a labeled key; reset when derived changes.
	dropG    map[string]*telemetry.Gauge
	slos     []*sloState
	rec      *recorder
	link     *linker
	alerts   []Alert
	stopTick func()
}

type watchedReg struct {
	name string
	reg  *telemetry.Registry
}

// Alert is one fired burn-rate alert, resolved or still active.
type Alert struct {
	SLO        string   `json:"slo"`
	At         sim.Time `json:"at_ns"`
	ResolvedAt sim.Time `json:"resolved_at_ns"` // 0 while active
	Detail     string   `json:"detail"`
}

// New builds a health engine on the sim clock, or returns nil when
// opts.Enabled is false — callers hold and pass nil engines freely.
func New(eng *sim.Engine, opts Options) *Engine {
	if !opts.Enabled {
		return nil
	}
	opts.defaults()
	e := &Engine{
		eng:  eng,
		opts: opts,
		rec:  newRecorder(opts.JournalCapacity, opts.MaxSnapshots),
		link: newLinker(opts.MaxTrackedJobs),
	}
	for i := range opts.SLOs {
		e.slos = append(e.slos, newSLOState(opts.SLOs[i], opts.SamplePeriod))
	}
	return e
}

// AddSLO registers one more SLO before Start. Used by the assembler to
// install defaults when Options.SLOs was empty.
func (e *Engine) AddSLO(s SLO) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.slos = append(e.slos, newSLOState(s, e.opts.SamplePeriod))
	e.mu.Unlock()
}

// Watch registers a metric registry under a subsystem name. SLO metric
// references resolve against every watched registry (first match wins, in
// registration order); the spine profile reads per-subsystem event
// counters from them.
func (e *Engine) Watch(name string, reg *telemetry.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.mu.Lock()
	e.regs = append(e.regs, watchedReg{name: name, reg: reg})
	e.mu.Unlock()
}

// WatchTracer hands the engine the federation tracer, so snapshots can
// capture recent spans and per-site drop counts. A nil tracer is fine.
func (e *Engine) WatchTracer(t *trace.Tracer) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.tracer = t
	e.mu.Unlock()
}

// WatchProfiler hands the engine the spine profiler, so Profile() carries
// live per-call-site region counters alongside the subsystem event counts.
// A nil profiler is fine.
func (e *Engine) WatchProfiler(p *prof.Profiler) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.prof = p
	e.mu.Unlock()
}

// ExportTo names the registry that receives the engine's derived gauges —
// today the per-site trace-drop counts (trace.dropped{site=...}), which the
// tracer records internally but which never reached a Registry.Snapshot
// before. The assembler points this at the core registry so the gauges ride
// every snapshot and SLO evaluation.
func (e *Engine) ExportTo(reg *telemetry.Registry) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.derived = reg
	e.dropG = nil
	e.mu.Unlock()
}

// exportTraceDropsLocked publishes the tracer's per-site span-drop counts
// as labeled gauges on the export registry. Cheap when nothing dropped:
// DroppedBySite returns nil until the first drop.
func (e *Engine) exportTraceDropsLocked() {
	if e.derived == nil || e.tracer == nil {
		return
	}
	for site, n := range e.tracer.DroppedBySite() {
		g, ok := e.dropG[site]
		if !ok {
			if e.dropG == nil {
				e.dropG = make(map[string]*telemetry.Gauge)
			}
			g = e.derived.Gauge(telemetry.Key("trace.dropped", "site", site))
			e.dropG[site] = g
		}
		g.Set(float64(n))
	}
}

// Start launches the sampling ticker. Idempotent.
func (e *Engine) Start() {
	if e == nil || e.stopTick != nil {
		return
	}
	e.stopTick = e.eng.Ticker(e.opts.SamplePeriod, func(int) { e.Sample() })
}

// Stop cancels the sampling ticker so the event queue can drain.
func (e *Engine) Stop() {
	if e == nil || e.stopTick == nil {
		return
	}
	e.stopTick()
	e.stopTick = nil
}

// Sample takes one SLO evaluation tick: sample every declared SLO, update
// burn-rate alert state, and snapshot the flight recorder on any alert
// transition to firing. Start drives it off the sim clock; tests and the
// watch loop may call it directly.
func (e *Engine) Sample() {
	if e == nil {
		return
	}
	e.mu.Lock()
	now := e.eng.Now()
	e.exportTraceDropsLocked()
	for _, st := range e.slos {
		badDelta := st.sample(now, e.regs)
		if badDelta > 0 {
			e.rec.add(Entry{At: now, Type: "slo", Event: st.slo.Name,
				Reason: "bad-events", Value: badDelta})
		}
		fired, resolved, detail := st.evaluate()
		if fired {
			e.alerts = append(e.alerts, Alert{SLO: st.slo.Name, At: now, Detail: detail})
			e.rec.add(Entry{At: now, Type: "alert", Event: st.slo.Name, Reason: detail})
			e.snapshotLocked(now, "alert:"+st.slo.Name, detail)
		}
		if resolved {
			for i := len(e.alerts) - 1; i >= 0; i-- {
				if e.alerts[i].SLO == st.slo.Name && e.alerts[i].ResolvedAt == 0 {
					e.alerts[i].ResolvedAt = now
					break
				}
			}
			e.rec.add(Entry{At: now, Type: "alert", Event: st.slo.Name, Reason: "resolved"})
		}
	}
	e.mu.Unlock()
}

// ObserveDecision is the scheduler Observer hook: journal the decision and
// feed the root-cause linker. Wire it with Scheduler.Observer =
// engine.ObserveDecision.
func (e *Engine) ObserveDecision(d sched.Decision) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.rec.add(Entry{
		At:      d.At,
		Type:    "sched",
		Event:   d.Kind.String(),
		Job:     d.Job,
		Tenant:  d.Tenant,
		Site:    string(d.Origin),
		Host:    string(d.Host),
		Inst:    d.Inst,
		Reason:  d.Reason,
		Attempt: d.Attempt,
	})
	e.link.observe(d)
	e.mu.Unlock()
}

// FaultWindow is one applied fault, as the linker sees it. It mirrors
// chaos.Event without importing chaos (which imports core, which imports
// this package).
type FaultWindow struct {
	Kind  string   `json:"kind"`
	Site  string   `json:"site"`
	Start sim.Time `json:"start_ns"`
	End   sim.Time `json:"end_ns"`
}

// ObserveFault records an applied fault window for incident attribution.
// chaos.Bind wires the injector's Observe hook here.
func (e *Engine) ObserveFault(w FaultWindow) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.rec.add(Entry{At: w.Start, Type: "fault", Event: w.Kind, Site: w.Site,
		End: w.End})
	e.link.addFault(w)
	e.mu.Unlock()
}

// ObserveViolation journals an invariant violation and trips a snapshot.
// chaos.Checker's OnViolation hook points here.
func (e *Engine) ObserveViolation(msg string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	now := e.eng.Now()
	e.rec.add(Entry{At: now, Type: "violation", Reason: msg})
	e.snapshotLocked(now, "violation", msg)
	e.mu.Unlock()
}

// Snapshot freezes the flight recorder now, under an explicit trigger
// label — the operator's "dump what just happened" button.
func (e *Engine) Snapshot(trigger string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.snapshotLocked(e.eng.Now(), trigger, "")
	e.mu.Unlock()
}

func (e *Engine) snapshotLocked(now sim.Time, trigger, detail string) {
	e.rec.snapshot(now, trigger, detail, e.tracer, e.opts.SnapshotSpans, e.statusesLocked())
}

// Journal returns the flight recorder's current ring contents, oldest
// first — the raw event stream a snapshot would freeze right now.
func (e *Engine) Journal() []Entry {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rec.tail()
}

// Snapshots returns the retained flight-recorder snapshots, oldest first.
func (e *Engine) Snapshots() []Snapshot {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Snapshot(nil), e.rec.snaps...)
}

// WriteSnapshotsJSON writes every retained snapshot as one indented,
// deterministic JSON document.
func (e *Engine) WriteSnapshotsJSON(w io.Writer) error {
	snaps := e.Snapshots()
	if snaps == nil {
		snaps = []Snapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}

// Alerts returns every burn-rate alert fired so far, oldest first.
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Alert(nil), e.alerts...)
}

// Incidents aggregates per-fault incident reports from the linker.
func (e *Engine) Incidents() []Incident {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.link.incidents()
}

// WriteIncidentsJSON writes the incident reports as one indented,
// deterministic JSON document.
func (e *Engine) WriteIncidentsJSON(w io.Writer) error {
	inc := e.Incidents()
	if inc == nil {
		inc = []Incident{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(inc)
}

// Attribution reports root-cause coverage: how many jobs degraded, and how
// many of those trace to a specific injected fault.
func (e *Engine) Attribution() AttributionStats {
	if e == nil {
		return AttributionStats{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.link.stats()
}

// Statuses reports the current state of every SLO, declaration order.
func (e *Engine) Statuses() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statusesLocked()
}

func (e *Engine) statusesLocked() []SLOStatus {
	out := make([]SLOStatus, 0, len(e.slos))
	for _, st := range e.slos {
		out = append(out, st.status())
	}
	return out
}

// Table renders the SLO statuses as an operator health table — the body
// behind aisle-sim -watch.
func (e *Engine) Table() *telemetry.Table {
	t := &telemetry.Table{
		Name:    "health",
		Caption: "streaming SLO status (burn = error-budget spend rate; alert when fast AND slow windows exceed their thresholds)",
		Columns: []string{"slo", "objective", "good", "total", "fast burn", "slow burn", "state"},
	}
	for _, s := range e.Statuses() {
		state := "ok"
		if s.Alerting {
			state = "ALERT"
		}
		fast, slow := "-", "-"
		if len(s.Windows) > 0 {
			fast = formatBurn(s.Windows[0])
		}
		if len(s.Windows) > 1 {
			slow = formatBurn(s.Windows[1])
		}
		t.AddRow(s.Name, trimFloat(s.Objective), trimFloat(s.Good),
			trimFloat(s.Total), fast, slow, state)
	}
	return t
}

// SpineProfile is the per-subsystem event-count profile of the simulation
// spine, feeding the "allocation-free sharded spine" roadmap item: which
// layer generates the event and message volume a run pays for.
type SpineProfile struct {
	SimEvents       uint64 `json:"sim_events"`
	NetSent         int64  `json:"net_sent"`
	NetDelivered    int64  `json:"net_delivered"`
	NetBytes        int64  `json:"net_bytes"`
	BusDelivered    int64  `json:"bus_delivered"`
	BusRPCCalls     int64  `json:"bus_rpc_calls"`
	BusPublished    int64  `json:"bus_published"`
	SchedDispatched int64  `json:"sched_dispatched"`
	KnowledgeMerged int64  `json:"knowledge_merged"`
	SpansHeld       int    `json:"spans_held"`
	SpansDropped    uint64 `json:"spans_dropped"`
	// Sites carries the continuous profiler's per-call-site counters when a
	// profiler is watched (WatchProfiler); absent otherwise.
	Sites []prof.SiteCount `json:"sites,omitempty"`
}

// Profile reads the spine profile from the watched registries. Counter
// names missing from every registry read as zero.
func (e *Engine) Profile() SpineProfile {
	if e == nil {
		return SpineProfile{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	p := SpineProfile{
		SimEvents:       e.eng.Processed(),
		NetSent:         e.findCounter("net.sent"),
		NetDelivered:    e.findCounter("net.delivered"),
		NetBytes:        e.findCounter("net.bytes_sent"),
		BusDelivered:    e.findCounter("bus.delivered"),
		BusRPCCalls:     e.findCounter("bus.rpc.calls"),
		BusPublished:    e.findCounter("bus.pub.published"),
		SchedDispatched: e.findCounter("sched.dispatched"),
		KnowledgeMerged: e.findCounter("knowledge.merged"),
	}
	if e.tracer != nil {
		p.SpansHeld = e.tracer.Len()
		p.SpansDropped = e.tracer.Dropped()
	}
	p.Sites = e.prof.Counts()
	return p
}

func (e *Engine) findCounter(name string) int64 {
	for _, wr := range e.regs {
		if c := wr.reg.FindCounter(name); c != nil {
			return c.Value()
		}
	}
	return 0
}
