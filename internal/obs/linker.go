package obs

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/sched"
	"github.com/aisle-sim/aisle/internal/sim"
)

// degEvent is one degradation a job suffered: a retry, rescue, failure, or
// expiry, attributed to a fault window index (-1 when no injected fault
// explains it). overlapped records whether ANY fault window — at any site —
// overlapped the attempt: when false the degradation happened in a
// chaos-quiet interval, so it is background noise (the instruments'
// intrinsic failure probability) rather than a missed attribution.
type degEvent struct {
	kind       string
	at         sim.Time
	reason     string
	fault      int
	overlapped bool
	attempt    int
}

// jobRec is the linker's bounded per-job record.
type jobRec struct {
	id           string
	tenant       string
	origin, host string
	inst         string
	submitted    sim.Time
	attemptStart sim.Time // latest enqueue or dispatch instant
	terminal     string   // "" until a terminal decision lands
	terminalAt   sim.Time
	events       []degEvent
}

// linker joins the scheduler decision stream with the fault-injection log:
// every degradation is matched to the fault window that plausibly caused
// it (a window overlapping the job's current attempt at the job's host or
// origin site), and per-fault Incident reports aggregate the result.
type linker struct {
	faults    []FaultWindow
	jobs      map[string]*jobRec
	order     []string
	maxJobs   int
	untracked int // decisions for jobs past the cap (or without an ID)
}

func newLinker(maxJobs int) *linker {
	return &linker{jobs: make(map[string]*jobRec), maxJobs: maxJobs}
}

func (l *linker) addFault(w FaultWindow) {
	l.faults = append(l.faults, w)
}

func (l *linker) observe(d sched.Decision) {
	if d.Job == "" {
		l.untracked++
		return
	}
	rec := l.jobs[d.Job]
	if rec == nil {
		if d.Kind != sched.DecisionSubmit || len(l.jobs) >= l.maxJobs {
			l.untracked++
			return
		}
		rec = &jobRec{id: d.Job, tenant: d.Tenant, origin: string(d.Origin),
			submitted: d.At, attemptStart: d.At}
		l.jobs[d.Job] = rec
		l.order = append(l.order, d.Job)
	}
	switch d.Kind {
	case sched.DecisionSubmit:
		rec.attemptStart = d.At
	case sched.DecisionDispatch:
		rec.host = string(d.Host)
		rec.inst = d.Inst
		rec.attemptStart = d.At
	case sched.DecisionSteal:
		rec.origin = string(d.Origin)
	case sched.DecisionRetry, sched.DecisionRescue:
		rec.events = append(rec.events, degEvent{
			kind:       d.Kind.String(),
			at:         d.At,
			reason:     d.Reason,
			fault:      l.attribute(rec, rec.attemptStart, d.At),
			overlapped: l.anyOverlap(rec.attemptStart, d.At),
			attempt:    d.Attempt,
		})
		// The requeue opens a fresh attempt window.
		rec.attemptStart = d.At
	case sched.DecisionComplete:
		rec.terminal, rec.terminalAt = "completed", d.At
	case sched.DecisionFail, sched.DecisionExpire:
		rec.terminal, rec.terminalAt = "failed", d.At
		if d.Kind == sched.DecisionExpire {
			rec.terminal = "expired"
		}
		fault := l.attribute(rec, rec.attemptStart, d.At)
		if fault < 0 {
			// A job can die in queue long after the window that stranded it
			// healed (backlog, retry backoff): fall back to its lifetime.
			fault = l.attribute(rec, rec.submitted, d.At)
		}
		rec.events = append(rec.events, degEvent{
			kind: rec.terminal, at: d.At, reason: d.Reason, fault: fault,
			overlapped: l.anyOverlap(rec.submitted, d.At), attempt: d.Attempt,
		})
	case sched.DecisionCancel:
		rec.terminal, rec.terminalAt = "canceled", d.At
	}
}

// attribute finds the injected fault window that best explains a
// degradation observed at instant "at" for an attempt that began at
// "from": the latest-starting window overlapping [from, at] at the job's
// host or origin site. A job that never dispatched (no host) starved in
// queue — the capacity it waited on could live anywhere, so the site
// filter is waived and any overlapping window qualifies. Returns the
// window index, or -1.
func (l *linker) attribute(rec *jobRec, from, at sim.Time) int {
	best := -1
	var bestStart sim.Time
	for i := range l.faults {
		w := &l.faults[i]
		if w.Start > at || w.End < from {
			continue
		}
		if rec.host != "" && w.Site != rec.host && w.Site != rec.origin {
			continue
		}
		if best < 0 || w.Start >= bestStart {
			best, bestStart = i, w.Start
		}
	}
	return best
}

// anyOverlap reports whether any injected fault window — regardless of
// site — overlaps [from, at]. When none does, a degradation in that
// interval is background noise that no injected fault can explain.
func (l *linker) anyOverlap(from, at sim.Time) bool {
	for i := range l.faults {
		if l.faults[i].Start <= at && l.faults[i].End >= from {
			return true
		}
	}
	return false
}

// AttributionStats reports root-cause coverage over degraded jobs.
type AttributionStats struct {
	// TrackedJobs is every job the linker followed.
	TrackedJobs int `json:"tracked_jobs"`
	// DegradedJobs retried, were rescued, failed, or expired at least once
	// (BackgroundJobs included).
	DegradedJobs int `json:"degraded_jobs"`
	// AttributedJobs are degraded jobs with at least one event traced to a
	// specific injected fault.
	AttributedJobs int `json:"attributed_jobs"`
	// BackgroundJobs degraded only in chaos-quiet intervals: no fault
	// window at any site overlapped any of their degradations, so the
	// instruments' intrinsic failure probability — not an injected fault —
	// is the cause.
	BackgroundJobs int `json:"background_jobs"`
	// Coverage is AttributedJobs over the degraded jobs an injected fault
	// could plausibly explain, AttributedJobs/(DegradedJobs-BackgroundJobs)
	// (1 when that denominator is zero).
	Coverage float64 `json:"coverage"`
	// Untracked counts decisions dropped by the job cap or missing IDs.
	Untracked int `json:"untracked"`
}

func (l *linker) stats() AttributionStats {
	s := AttributionStats{TrackedJobs: len(l.order), Untracked: l.untracked, Coverage: 1}
	for _, id := range l.order {
		rec := l.jobs[id]
		if len(rec.events) == 0 {
			continue
		}
		s.DegradedJobs++
		attributed, overlapped := false, false
		for _, ev := range rec.events {
			attributed = attributed || ev.fault >= 0
			overlapped = overlapped || ev.overlapped
		}
		switch {
		case attributed:
			s.AttributedJobs++
		case !overlapped:
			s.BackgroundJobs++
		}
	}
	if in := s.DegradedJobs - s.BackgroundJobs; in > 0 {
		s.Coverage = float64(s.AttributedJobs) / float64(in)
	}
	return s
}

// IncidentJob is one affected job inside an incident report.
type IncidentJob struct {
	Job     string `json:"job"`
	Tenant  string `json:"tenant"`
	Retries int    `json:"retries,omitempty"`
	Rescues int    `json:"rescues,omitempty"`
	Outcome string `json:"outcome"` // completed/failed/expired/canceled/in-flight
}

// Incident is one injected fault window plus every job degradation
// attributed to it.
type Incident struct {
	Fault     FaultWindow   `json:"fault"`
	Jobs      []IncidentJob `json:"jobs"`
	Retries   int           `json:"retries"`
	Rescues   int           `json:"rescues"`
	Completed int           `json:"completed"`
	Failed    int           `json:"failed"`
	Expired   int           `json:"expired"`
	Summary   string        `json:"summary"`
}

// incidents aggregates one report per fault window that degraded at least
// one job, in injection order. Jobs appear in submission order.
func (l *linker) incidents() []Incident {
	byFault := make(map[int][]IncidentJob)
	counts := make(map[int]*Incident)
	for _, id := range l.order {
		rec := l.jobs[id]
		perFault := make(map[int]*IncidentJob)
		for _, ev := range rec.events {
			if ev.fault < 0 {
				continue
			}
			ij := perFault[ev.fault]
			if ij == nil {
				outcome := rec.terminal
				if outcome == "" {
					outcome = "in-flight"
				}
				ij = &IncidentJob{Job: rec.id, Tenant: rec.tenant, Outcome: outcome}
				perFault[ev.fault] = ij
			}
			switch ev.kind {
			case "retry":
				ij.Retries++
			case "rescue":
				ij.Rescues++
			}
		}
		for fi, ij := range perFault {
			c := counts[fi]
			if c == nil {
				c = &Incident{Fault: l.faults[fi]}
				counts[fi] = c
			}
			byFault[fi] = append(byFault[fi], *ij)
			c.Retries += ij.Retries
			c.Rescues += ij.Rescues
			switch ij.Outcome {
			case "completed":
				c.Completed++
			case "failed":
				c.Failed++
			case "expired":
				c.Expired++
			}
		}
	}
	var out []Incident
	for fi := range l.faults {
		c := counts[fi]
		if c == nil {
			continue
		}
		c.Jobs = byFault[fi]
		w := c.Fault
		c.Summary = fmt.Sprintf(
			"%s %s at t=%ds for %ds: %d jobs degraded (%d retries, %d rescues); %d completed, %d failed, %d expired",
			w.Site, w.Kind, int(w.Start/sim.Second), int((w.End-w.Start)/sim.Second),
			len(c.Jobs), c.Retries, c.Rescues, c.Completed, c.Failed, c.Expired)
		out = append(out, *c)
	}
	return out
}
