// Package netsim models the multi-institutional wide-area network that
// AISLE agents communicate over: sites (institutions) joined by links with
// propagation latency, serialization bandwidth, jitter, and loss; per-site
// firewall policy; and fault injection (link failures, partitions).
//
// The model is intentionally at message granularity, not packet granularity:
// the paper's claims (M10-M12) concern protocol behaviour — retries, failover,
// discovery convergence — under WAN conditions, which message-level latency
// and loss reproduce. Each link serializes transfers FIFO, so sustained load
// produces realistic queueing delay.
package netsim

import (
	"errors"
	"fmt"
	"sort"

	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
)

// SiteID names an institution in the federation.
type SiteID string

// Errors reported by Send.
var (
	ErrUnknownSite = errors.New("netsim: unknown site")
	ErrNoRoute     = errors.New("netsim: no route between sites")
	ErrLinkDown    = errors.New("netsim: link down")
	ErrFirewall    = errors.New("netsim: blocked by firewall")
)

// Link describes the connection between two sites. Links are symmetric:
// the same parameters apply in both directions, but each direction has its
// own serialization queue.
type Link struct {
	Latency   sim.Time // one-way propagation delay
	Jitter    sim.Time // stddev of normal jitter added to latency
	Bandwidth float64  // bytes per second; <=0 means infinite
	Loss      float64  // independent message loss probability [0,1)

	up bool
	// busyUntil tracks FIFO serialization per direction, keyed 0/1 by
	// direction (a->b / b->a).
	busyUntil [2]sim.Time
}

// Up reports whether the link is currently passing traffic.
func (l *Link) Up() bool { return l.up }

// Rule is a firewall ingress rule: traffic from From for the named service
// is admitted. Empty From or Service acts as a wildcard.
type Rule struct {
	From    SiteID
	Service string
}

// Firewall is a default-deny ingress policy for one site.
type Firewall struct {
	allowAll bool
	rules    []Rule
}

// AllowAll opens the firewall entirely (used for trusted testbeds).
func (f *Firewall) AllowAll() { f.allowAll = true }

// Allow appends an ingress rule.
func (f *Firewall) Allow(r Rule) { f.rules = append(f.rules, r) }

// Admits reports whether a message from the given site for the given
// service passes the policy.
func (f *Firewall) Admits(from SiteID, service string) bool {
	if f == nil || f.allowAll {
		return true
	}
	for _, r := range f.rules {
		if (r.From == "" || r.From == from) && (r.Service == "" || r.Service == service) {
			return true
		}
	}
	return false
}

// Site is one institution on the network.
type Site struct {
	ID       SiteID
	Firewall *Firewall
	// LANLatency is the intra-site delivery delay (loopback messages).
	LANLatency sim.Time

	// shard is the engine event shard deliveries to this site land on
	// (0 unless the network was created with sharding enabled).
	shard int
}

// Shard reports the engine event shard owning this site's deliveries.
func (s *Site) Shard() int { return s.shard }

type linkKey struct{ a, b SiteID }

func keyFor(a, b SiteID) (linkKey, int) {
	if a <= b {
		return linkKey{a, b}, 0
	}
	return linkKey{b, a}, 1
}

// Network is the federation-wide WAN model. Create with New, add sites and
// links, then Send messages. All timing runs on the supplied sim.Engine.
type Network struct {
	eng     *sim.Engine
	rnd     *rng.Stream
	sites   map[SiteID]*Site
	links   map[linkKey]*Link
	metrics *telemetry.Registry
	prof    *prof.Profiler

	// Hot-path state: counters and the delay histogram resolve once at
	// construction instead of per send; arriveFn is the single prebound
	// delivery trampoline; free heads the pooled transit list, so a send
	// in steady state allocates nothing.
	sentC      *telemetry.Counter
	bytesC     *telemetry.Counter
	deliveredC *telemetry.Counter
	firewalled *telemetry.Counter
	linkDownC  *telemetry.Counter
	lostC      *telemetry.Counter
	inflightC  *telemetry.Counter
	delayH     *telemetry.Histogram
	arriveFn   func(any)
	free       *transit

	sharded  bool
	minLat   sim.Time
	haveLink bool

	// DropInFlight re-checks the link at the arrival instant: a message
	// accepted while the link was up is dropped if the link went down while
	// it was in flight. Off by default — the base model commits delivery at
	// send time — and enabled by chaos runs, where partitions must cut
	// traffic already on the wire.
	DropInFlight bool
	// DeliverHook, when set, observes every message at the instant it is
	// delivered (after the DropInFlight check). Chaos invariant checkers use
	// it to independently assert that no message crosses a down link.
	DeliverHook func(Message)
}

// New returns an empty network bound to the engine and random stream.
func New(eng *sim.Engine, rnd *rng.Stream) *Network {
	n := &Network{
		eng:     eng,
		rnd:     rnd.Fork("netsim"),
		sites:   make(map[SiteID]*Site),
		links:   make(map[linkKey]*Link),
		metrics: telemetry.NewRegistry(),
	}
	n.sentC = n.metrics.Counter("net.sent")
	n.bytesC = n.metrics.Counter("net.bytes_sent")
	n.deliveredC = n.metrics.Counter("net.delivered")
	n.firewalled = n.metrics.Counter("net.firewalled")
	n.linkDownC = n.metrics.Counter("net.link_down_drops")
	n.lostC = n.metrics.Counter("net.lost")
	n.inflightC = n.metrics.Counter("net.inflight_drops")
	n.delayH = n.metrics.Histogram("net.delay_s")
	n.arriveFn = n.arriveTransit
	return n
}

// EnableSharding places each subsequently added site on its own engine
// event shard, so deliveries to a site queue on that site's timer wheel
// and the PDES merge boundaries follow the physical topology. Call before
// AddSite; sites added earlier stay on shard 0.
func (n *Network) EnableSharding() { n.sharded = true }

// Sharded reports whether per-site event sharding is on.
func (n *Network) Sharded() bool { return n.sharded }

// transit is the pooled in-flight carrier for one message. It is released
// back to the network's freelist when delivery completes, making the
// send→deliver cycle allocation-free in steady state.
type transit struct {
	msg     Message
	deliver func(Message)
	next    *transit
}

func (n *Network) acquireTransit() *transit {
	t := n.free
	if t == nil {
		return &transit{}
	}
	n.free = t.next
	t.next = nil
	return t
}

func (n *Network) releaseTransit(t *transit) {
	t.msg = Message{}
	t.deliver = nil
	t.next = n.free
	n.free = t
}

// Engine exposes the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Metrics exposes the network's telemetry registry.
func (n *Network) Metrics() *telemetry.Registry { return n.metrics }

// SetProfiler attaches the spine profiler (nil disables, the default).
// Send admission runs under net.send; arrivals run under net.deliver, and
// every admitted hop records its modeled delay as a net.deliver sample
// carrying the message's trace ID as exemplar.
func (n *Network) SetProfiler(p *prof.Profiler) { n.prof = p }

// AddSite registers a site. Adding a duplicate ID panics: topology is
// program-defined, so a duplicate is a programming error.
func (n *Network) AddSite(id SiteID) *Site {
	if _, ok := n.sites[id]; ok {
		panic(fmt.Sprintf("netsim: duplicate site %q", id))
	}
	s := &Site{ID: id, Firewall: &Firewall{}, LANLatency: 200 * sim.Microsecond}
	if n.sharded {
		s.shard = n.eng.AddShard()
	}
	n.sites[id] = s
	return s
}

// Site returns the named site, or nil.
func (n *Network) Site(id SiteID) *Site { return n.sites[id] }

// Sites returns all site IDs in sorted order.
func (n *Network) Sites() []SiteID {
	ids := make([]SiteID, 0, len(n.sites))
	for id := range n.sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Connect joins two sites with a link. Reconnecting replaces the link.
func (n *Network) Connect(a, b SiteID, l Link) *Link {
	if _, ok := n.sites[a]; !ok {
		panic(fmt.Sprintf("netsim: connect unknown site %q", a))
	}
	if _, ok := n.sites[b]; !ok {
		panic(fmt.Sprintf("netsim: connect unknown site %q", b))
	}
	if a == b {
		panic("netsim: self-link")
	}
	l.up = true
	k, _ := keyFor(a, b)
	lp := &l
	n.links[k] = lp
	// The minimum cross-site propagation delay is the conservative PDES
	// lookahead: no event scheduled by one site's shard can land on
	// another shard sooner than this.
	if !n.haveLink || l.Latency < n.minLat {
		n.minLat = l.Latency
		n.haveLink = true
		n.eng.SetLookahead(n.minLat)
	}
	return lp
}

// Lookahead reports the minimum cross-site link latency — the conservative
// PDES safe window for the shard merge.
func (n *Network) Lookahead() sim.Time { return n.minLat }

// LinkBetween returns the link joining a and b, or nil.
func (n *Network) LinkBetween(a, b SiteID) *Link {
	k, _ := keyFor(a, b)
	return n.links[k]
}

// SetLinkUp injects a link failure (up=false) or repair (up=true).
func (n *Network) SetLinkUp(a, b SiteID, up bool) {
	if l := n.LinkBetween(a, b); l != nil {
		l.up = up
	}
}

// Partition takes down every link between the two groups, simulating a
// network partition. Heal restores them.
func (n *Network) Partition(groupA, groupB []SiteID) {
	n.setGroupLinks(groupA, groupB, false)
}

// Heal restores links between the two groups.
func (n *Network) Heal(groupA, groupB []SiteID) {
	n.setGroupLinks(groupA, groupB, true)
}

func (n *Network) setGroupLinks(groupA, groupB []SiteID, up bool) {
	for _, a := range groupA {
		for _, b := range groupB {
			n.SetLinkUp(a, b, up)
		}
	}
}

// Message is one network-level datagram. Payload is opaque to the network.
type Message struct {
	From    SiteID
	To      SiteID
	Service string // firewall service label (e.g. "bus", "discovery")
	Size    int    // bytes, used for serialization delay
	Payload any
	// Trace, when enabled, records each hop as a net.deliver span.
	Trace trace.Context
}

// Send schedules delivery of msg; deliver runs at the arrival instant.
// It returns an error synchronously when the message cannot be admitted
// (unknown site, no route, link down, firewall). Loss is silent: the message
// is accepted and then dropped, exactly as a WAN behaves — callers recover
// with timeouts and retries.
func (n *Network) Send(msg Message, deliver func(Message)) error {
	r := n.prof.Enter(prof.SiteNetSend)
	defer r.End()
	src, ok := n.sites[msg.From]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSite, msg.From)
	}
	_ = src
	dst, ok := n.sites[msg.To]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSite, msg.To)
	}

	n.sentC.Inc()
	n.bytesC.Add(int64(msg.Size))

	// Loopback: LAN latency only, no firewall (intra-site traffic).
	if msg.From == msg.To {
		n.recordHop(&msg, dst.LANLatency)
		n.scheduleArrival(dst, dst.LANLatency, msg, deliver)
		n.deliveredC.Inc()
		return nil
	}

	if !dst.Firewall.Admits(msg.From, msg.Service) {
		n.firewalled.Inc()
		return fmt.Errorf("%w: %s -> %s service %q", ErrFirewall, msg.From, msg.To, msg.Service)
	}

	k, dir := keyFor(msg.From, msg.To)
	link := n.links[k]
	if link == nil {
		return fmt.Errorf("%w: %s <-> %s", ErrNoRoute, msg.From, msg.To)
	}
	if !link.up {
		n.linkDownC.Inc()
		return fmt.Errorf("%w: %s <-> %s", ErrLinkDown, msg.From, msg.To)
	}

	if link.Loss > 0 && n.rnd.Bool(link.Loss) {
		// Accepted then lost in flight.
		n.lostC.Inc()
		return nil
	}

	delay := n.transferDelay(link, dir, msg.Size)
	n.delayH.Observe(delay.Seconds())
	n.recordHop(&msg, delay)
	n.scheduleArrival(dst, delay, msg, deliver)
	n.deliveredC.Inc()
	return nil
}

// scheduleArrival books the arrival event on the destination site's shard,
// carrying the message in a pooled transit released at delivery.
func (n *Network) scheduleArrival(dst *Site, delay sim.Time, msg Message, deliver func(Message)) {
	t := n.acquireTransit()
	t.msg = msg
	t.deliver = deliver
	n.eng.ScheduleArgShard(dst.shard, delay, n.arriveFn, t)
}

// arriveTransit completes one delivery: under DropInFlight a cross-site
// message whose link dropped while it was on the wire is discarded, and
// the DeliverHook (if any) observes whatever actually lands. The transit
// returns to the pool when delivery (including everything the receiver
// does synchronously) finishes.
func (n *Network) arriveTransit(x any) {
	t := x.(*transit)
	msg, deliver := t.msg, t.deliver
	n.releaseTransit(t)
	r := n.prof.Enter(prof.SiteNetDeliver)
	defer r.End()
	if n.DropInFlight && msg.From != msg.To {
		if l := n.LinkBetween(msg.From, msg.To); l == nil || !l.up {
			n.inflightC.Inc()
			return
		}
	}
	if n.DeliverHook != nil {
		n.DeliverHook(msg)
	}
	deliver(msg)
}

// recordHop records one admitted hop as a net.deliver span under the
// message's trace context. The whole delay is known at send time (the model
// is deterministic given the jitter draw), so the span is recorded
// immediately; lost messages never reach here and leave no span.
func (n *Network) recordHop(msg *Message, delay sim.Time) {
	n.prof.Sample(prof.SiteNetDeliver, delay.Std(), msg.Trace.TraceID())
	if !msg.Trace.Enabled() {
		return
	}
	now := n.eng.Now()
	sp, cc := msg.Trace.Start(now, string(msg.To), trace.KindNetDeliver, msg.Service)
	sp.SetStr("from", string(msg.From))
	sp.SetAttr("bytes", float64(msg.Size))
	sp.SetAttr("latency_s", delay.Seconds())
	cc.Finish(&sp, now+delay)
}

// transferDelay computes FIFO serialization + propagation + jitter for one
// message, advancing the link's busy horizon.
func (n *Network) transferDelay(l *Link, dir int, size int) sim.Time {
	now := n.eng.Now()
	start := now
	if l.busyUntil[dir] > start {
		start = l.busyUntil[dir]
	}
	var tx sim.Time
	if l.Bandwidth > 0 && size > 0 {
		tx = sim.Time(float64(size) / l.Bandwidth * float64(sim.Second))
	}
	l.busyUntil[dir] = start + tx

	lat := l.Latency
	if l.Jitter > 0 {
		j := n.rnd.Normal(0, float64(l.Jitter))
		lat += sim.Time(j)
		if lat < 0 {
			lat = 0
		}
	}
	return (start - now) + tx + lat
}

// Reachable reports whether a message could currently travel a->b for the
// given service (route exists, link up, firewall admits). It does not
// account for loss.
func (n *Network) Reachable(a, b SiteID, service string) bool {
	if a == b {
		return true
	}
	dst, ok := n.sites[b]
	if !ok {
		return false
	}
	if !dst.Firewall.Admits(a, service) {
		return false
	}
	l := n.LinkBetween(a, b)
	return l != nil && l.up
}

// FullMesh connects every pair of the given sites with copies of the
// template link — the common testbed topology in experiments.
func (n *Network) FullMesh(sites []SiteID, template Link) {
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			n.Connect(sites[i], sites[j], template)
		}
	}
}
