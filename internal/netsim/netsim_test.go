package netsim

import (
	"errors"
	"testing"

	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
)

func testNet(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	n := New(eng, rng.New(1))
	return eng, n
}

func TestDeliveryLatency(t *testing.T) {
	eng, n := testNet(t)
	n.AddSite("ornl").Firewall.AllowAll()
	n.AddSite("anl").Firewall.AllowAll()
	n.Connect("ornl", "anl", Link{Latency: 20 * sim.Millisecond})

	var at sim.Time
	err := n.Send(Message{From: "ornl", To: "anl", Service: "bus", Size: 100},
		func(Message) { at = eng.Now() })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 20*sim.Millisecond {
		t.Fatalf("delivered at %v, want 20ms", at)
	}
}

func TestLoopbackUsesLANLatency(t *testing.T) {
	eng, n := testNet(t)
	s := n.AddSite("ornl")
	s.LANLatency = sim.Millisecond
	var at sim.Time
	if err := n.Send(Message{From: "ornl", To: "ornl"}, func(Message) { at = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at != sim.Millisecond {
		t.Fatalf("loopback at %v, want 1ms", at)
	}
}

func TestUnknownSite(t *testing.T) {
	_, n := testNet(t)
	n.AddSite("a")
	err := n.Send(Message{From: "a", To: "ghost"}, func(Message) {})
	if !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("err = %v, want ErrUnknownSite", err)
	}
	err = n.Send(Message{From: "ghost", To: "a"}, func(Message) {})
	if !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("err = %v, want ErrUnknownSite", err)
	}
}

func TestNoRoute(t *testing.T) {
	_, n := testNet(t)
	n.AddSite("a").Firewall.AllowAll()
	n.AddSite("b").Firewall.AllowAll()
	err := n.Send(Message{From: "a", To: "b"}, func(Message) {})
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestLinkDown(t *testing.T) {
	eng, n := testNet(t)
	n.AddSite("a").Firewall.AllowAll()
	n.AddSite("b").Firewall.AllowAll()
	n.Connect("a", "b", Link{Latency: sim.Millisecond})
	n.SetLinkUp("a", "b", false)
	err := n.Send(Message{From: "a", To: "b"}, func(Message) {})
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	n.SetLinkUp("a", "b", true)
	delivered := false
	if err := n.Send(Message{From: "a", To: "b"}, func(Message) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("message not delivered after repair")
	}
}

func TestFirewallDefaultDeny(t *testing.T) {
	_, n := testNet(t)
	n.AddSite("a")
	n.AddSite("b") // default deny
	n.Connect("a", "b", Link{Latency: sim.Millisecond})
	err := n.Send(Message{From: "a", To: "b", Service: "bus"}, func(Message) {})
	if !errors.Is(err, ErrFirewall) {
		t.Fatalf("err = %v, want ErrFirewall", err)
	}
}

func TestFirewallRules(t *testing.T) {
	eng, n := testNet(t)
	n.AddSite("a")
	b := n.AddSite("b")
	n.AddSite("c")
	n.Connect("a", "b", Link{Latency: sim.Millisecond})
	n.Connect("c", "b", Link{Latency: sim.Millisecond})
	b.Firewall.Allow(Rule{From: "a", Service: "bus"})

	if err := n.Send(Message{From: "a", To: "b", Service: "bus"}, func(Message) {}); err != nil {
		t.Fatalf("allowed traffic rejected: %v", err)
	}
	if err := n.Send(Message{From: "a", To: "b", Service: "ssh"}, func(Message) {}); !errors.Is(err, ErrFirewall) {
		t.Fatalf("wrong service admitted: %v", err)
	}
	if err := n.Send(Message{From: "c", To: "b", Service: "bus"}, func(Message) {}); !errors.Is(err, ErrFirewall) {
		t.Fatalf("wrong source admitted: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFirewallWildcards(t *testing.T) {
	f := &Firewall{}
	f.Allow(Rule{Service: "discovery"}) // any source
	if !f.Admits("x", "discovery") {
		t.Fatal("wildcard source rejected")
	}
	if f.Admits("x", "bus") {
		t.Fatal("non-matching service admitted")
	}
	f2 := &Firewall{}
	f2.Allow(Rule{From: "a"}) // any service
	if !f2.Admits("a", "anything") {
		t.Fatal("wildcard service rejected")
	}
}

func TestLossDropsSilently(t *testing.T) {
	eng, n := testNet(t)
	n.AddSite("a").Firewall.AllowAll()
	n.AddSite("b").Firewall.AllowAll()
	n.Connect("a", "b", Link{Latency: sim.Millisecond, Loss: 1.0})
	delivered := 0
	for i := 0; i < 50; i++ {
		if err := n.Send(Message{From: "a", To: "b"}, func(Message) { delivered++ }); err != nil {
			t.Fatalf("loss must be silent, got %v", err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d messages on 100%%-loss link", delivered)
	}
	if got := n.Metrics().Counter("net.lost").Value(); got != 50 {
		t.Fatalf("lost counter = %d, want 50", got)
	}
}

func TestLossRate(t *testing.T) {
	eng, n := testNet(t)
	n.AddSite("a").Firewall.AllowAll()
	n.AddSite("b").Firewall.AllowAll()
	n.Connect("a", "b", Link{Latency: sim.Millisecond, Loss: 0.3})
	delivered := 0
	const total = 10000
	for i := 0; i < total; i++ {
		_ = n.Send(Message{From: "a", To: "b"}, func(Message) { delivered++ })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rate := 1 - float64(delivered)/total
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("observed loss %v, want ~0.3", rate)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	eng, n := testNet(t)
	n.AddSite("a").Firewall.AllowAll()
	n.AddSite("b").Firewall.AllowAll()
	// 1 MB/s, zero propagation: a 1MB message takes 1 virtual second.
	n.Connect("a", "b", Link{Bandwidth: 1e6})
	var first, second sim.Time
	_ = n.Send(Message{From: "a", To: "b", Size: 1e6}, func(Message) { first = eng.Now() })
	_ = n.Send(Message{From: "a", To: "b", Size: 1e6}, func(Message) { second = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if first != sim.Second {
		t.Fatalf("first delivery at %v, want 1s", first)
	}
	// FIFO: second message waits for the first to serialize.
	if second != 2*sim.Second {
		t.Fatalf("second delivery at %v, want 2s (queueing)", second)
	}
}

func TestDirectionalQueuesIndependent(t *testing.T) {
	eng, n := testNet(t)
	n.AddSite("a").Firewall.AllowAll()
	n.AddSite("b").Firewall.AllowAll()
	n.Connect("a", "b", Link{Bandwidth: 1e6})
	var ab, ba sim.Time
	_ = n.Send(Message{From: "a", To: "b", Size: 1e6}, func(Message) { ab = eng.Now() })
	_ = n.Send(Message{From: "b", To: "a", Size: 1e6}, func(Message) { ba = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ab != sim.Second || ba != sim.Second {
		t.Fatalf("directions not independent: ab=%v ba=%v", ab, ba)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	eng, n := testNet(t)
	for _, id := range []SiteID{"a", "b", "c", "d"} {
		n.AddSite(id).Firewall.AllowAll()
	}
	n.FullMesh([]SiteID{"a", "b", "c", "d"}, Link{Latency: sim.Millisecond})
	n.Partition([]SiteID{"a", "b"}, []SiteID{"c", "d"})

	if n.Reachable("a", "c", "bus") {
		t.Fatal("a->c reachable across partition")
	}
	if !n.Reachable("a", "b", "bus") {
		t.Fatal("a->b should remain reachable within group")
	}
	n.Heal([]SiteID{"a", "b"}, []SiteID{"c", "d"})
	if !n.Reachable("a", "c", "bus") {
		t.Fatal("a->c unreachable after heal")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestJitterVariesLatency(t *testing.T) {
	eng, n := testNet(t)
	n.AddSite("a").Firewall.AllowAll()
	n.AddSite("b").Firewall.AllowAll()
	n.Connect("a", "b", Link{Latency: 20 * sim.Millisecond, Jitter: 2 * sim.Millisecond})
	seen := map[sim.Time]bool{}
	for i := 0; i < 20; i++ {
		send := func() {
			_ = n.Send(Message{From: "a", To: "b"}, func(Message) {
				seen[eng.Now()] = true
			})
		}
		eng.Schedule(sim.Time(i)*sim.Second, send)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) < 15 {
		t.Fatalf("jitter produced only %d distinct delivery offsets", len(seen))
	}
}

func TestSitesSorted(t *testing.T) {
	_, n := testNet(t)
	n.AddSite("zeta")
	n.AddSite("alpha")
	n.AddSite("mid")
	ids := n.Sites()
	if ids[0] != "alpha" || ids[1] != "mid" || ids[2] != "zeta" {
		t.Fatalf("Sites() = %v, want sorted", ids)
	}
}

func TestDuplicateSitePanics(t *testing.T) {
	_, n := testNet(t)
	n.AddSite("a")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddSite did not panic")
		}
	}()
	n.AddSite("a")
}

func TestSelfLinkPanics(t *testing.T) {
	_, n := testNet(t)
	n.AddSite("a")
	defer func() {
		if recover() == nil {
			t.Fatal("self-link did not panic")
		}
	}()
	n.Connect("a", "a", Link{})
}

func TestReachableLoopback(t *testing.T) {
	_, n := testNet(t)
	n.AddSite("a")
	if !n.Reachable("a", "a", "anything") {
		t.Fatal("loopback should always be reachable")
	}
}
