// Package semantics supplies the interoperability vocabulary layer the
// paper's dimension 4 calls for: a unit system with automatic conversion,
// a lightweight domain ontology, and per-site vocabulary translation so
// agents at different institutions can exchange measurements without
// manual harmonization.
package semantics

import (
	"errors"
	"fmt"
	"strings"
)

// Errors from conversion and translation.
var (
	ErrUnknownUnit  = errors.New("semantics: unknown unit")
	ErrIncompatible = errors.New("semantics: incompatible dimensions")
	ErrUnknownTerm  = errors.New("semantics: unknown term")
)

// Dimension is a physical dimension class.
type Dimension string

// Built-in dimensions.
const (
	DimLength      Dimension = "length"
	DimTime        Dimension = "time"
	DimTemperature Dimension = "temperature"
	DimVolume      Dimension = "volume"
	DimFlow        Dimension = "flow"
	DimAmount      Dimension = "amount"
	DimRatio       Dimension = "ratio"
	DimEnergy      Dimension = "energy"
)

// unitDef converts value -> base as value*factor + offset.
type unitDef struct {
	dim    Dimension
	factor float64
	offset float64
}

// Units is a unit registry with conversion. The zero value is empty;
// NewUnits returns one loaded with the laboratory unit set.
type Units struct {
	defs map[string]unitDef
}

// NewUnits returns a registry with the standard laboratory units.
func NewUnits() *Units {
	u := &Units{defs: make(map[string]unitDef)}
	// Length (base m).
	u.Define("m", DimLength, 1, 0)
	u.Define("mm", DimLength, 1e-3, 0)
	u.Define("um", DimLength, 1e-6, 0)
	u.Define("nm", DimLength, 1e-9, 0)
	u.Define("angstrom", DimLength, 1e-10, 0)
	// Time (base s).
	u.Define("s", DimTime, 1, 0)
	u.Define("ms", DimTime, 1e-3, 0)
	u.Define("min", DimTime, 60, 0)
	u.Define("h", DimTime, 3600, 0)
	// Temperature (base K).
	u.Define("K", DimTemperature, 1, 0)
	u.Define("C", DimTemperature, 1, 273.15)
	u.Define("F", DimTemperature, 5.0/9.0, 255.372222222)
	// Volume (base L).
	u.Define("L", DimVolume, 1, 0)
	u.Define("mL", DimVolume, 1e-3, 0)
	u.Define("uL", DimVolume, 1e-6, 0)
	// Flow (base L/s).
	u.Define("L/s", DimFlow, 1, 0)
	u.Define("mL/min", DimFlow, 1e-3/60, 0)
	u.Define("uL/s", DimFlow, 1e-6, 0)
	// Amount concentration (base M).
	u.Define("M", DimAmount, 1, 0)
	u.Define("mM", DimAmount, 1e-3, 0)
	u.Define("uM", DimAmount, 1e-6, 0)
	// Dimensionless.
	u.Define("ratio", DimRatio, 1, 0)
	u.Define("%", DimRatio, 0.01, 0)
	// Energy (base J).
	u.Define("J", DimEnergy, 1, 0)
	u.Define("eV", DimEnergy, 1.602176634e-19, 0)
	return u
}

// Define registers a unit: base = value*factor + offset.
func (u *Units) Define(name string, dim Dimension, factor, offset float64) {
	u.defs[name] = unitDef{dim: dim, factor: factor, offset: offset}
}

// Dimension reports a unit's dimension.
func (u *Units) Dimension(unit string) (Dimension, error) {
	d, ok := u.defs[unit]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownUnit, unit)
	}
	return d.dim, nil
}

// Convert transforms value from one unit to another of the same dimension.
func (u *Units) Convert(value float64, from, to string) (float64, error) {
	fd, ok := u.defs[from]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownUnit, from)
	}
	td, ok := u.defs[to]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownUnit, to)
	}
	if fd.dim != td.dim {
		return 0, fmt.Errorf("%w: %s (%s) -> %s (%s)", ErrIncompatible, from, fd.dim, to, td.dim)
	}
	base := value*fd.factor + fd.offset
	return (base - td.offset) / td.factor, nil
}

// Concept is a node in the ontology.
type Concept string

// Ontology is a lightweight is-a hierarchy of scientific concepts.
type Ontology struct {
	parent map[Concept]Concept
}

// NewOntology returns an ontology preloaded with the AISLE domain spine.
func NewOntology() *Ontology {
	o := &Ontology{parent: make(map[Concept]Concept)}
	pairs := [][2]Concept{
		{"measurement", "thing"}, {"material", "thing"}, {"process", "thing"},
		{"optical-measurement", "measurement"}, {"structural-measurement", "measurement"},
		{"photoluminescence", "optical-measurement"}, {"absorbance", "optical-measurement"},
		{"diffraction", "structural-measurement"}, {"microscopy", "structural-measurement"},
		{"nanocrystal", "material"}, {"perovskite", "nanocrystal"}, {"quantum-dot", "nanocrystal"},
		{"alloy", "material"}, {"polymer", "material"},
		{"synthesis", "process"}, {"annealing", "process"}, {"characterization", "process"},
	}
	for _, p := range pairs {
		o.AddIsA(p[0], p[1])
	}
	return o
}

// AddIsA declares child is-a parent.
func (o *Ontology) AddIsA(child, parent Concept) { o.parent[child] = parent }

// IsA reports whether c is (transitively) a kind of ancestor.
func (o *Ontology) IsA(c, ancestor Concept) bool {
	for {
		if c == ancestor {
			return true
		}
		p, ok := o.parent[c]
		if !ok {
			return false
		}
		c = p
	}
}

// CommonAncestor returns the nearest shared ancestor of two concepts, or
// false when they share none.
func (o *Ontology) CommonAncestor(a, b Concept) (Concept, bool) {
	ancestors := map[Concept]bool{a: true}
	for c := a; ; {
		p, ok := o.parent[c]
		if !ok {
			break
		}
		ancestors[p] = true
		c = p
	}
	for c := b; ; {
		if ancestors[c] {
			return c, true
		}
		p, ok := o.parent[c]
		if !ok {
			return "", false
		}
		c = p
	}
}

// Vocabulary maps institution-local terms to shared concepts, enabling
// cross-site translation that preserves meaning.
type Vocabulary struct {
	toConcept map[string]map[string]Concept // site -> local term -> concept
	fromSite  map[string]map[Concept]string // site -> concept -> preferred local term
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{
		toConcept: make(map[string]map[string]Concept),
		fromSite:  make(map[string]map[Concept]string),
	}
}

// Learn records that site uses term for concept. The first term learned for
// a concept becomes the site's preferred rendering.
func (v *Vocabulary) Learn(site, term string, c Concept) {
	t := strings.ToLower(term)
	if v.toConcept[site] == nil {
		v.toConcept[site] = make(map[string]Concept)
		v.fromSite[site] = make(map[Concept]string)
	}
	v.toConcept[site][t] = c
	if _, ok := v.fromSite[site][c]; !ok {
		v.fromSite[site][c] = term
	}
}

// Concept resolves a site-local term.
func (v *Vocabulary) Concept(site, term string) (Concept, error) {
	c, ok := v.toConcept[site][strings.ToLower(term)]
	if !ok {
		return "", fmt.Errorf("%w: %q at %s", ErrUnknownTerm, term, site)
	}
	return c, nil
}

// Translate converts a term from one site's vocabulary to another's.
func (v *Vocabulary) Translate(term, fromSite, toSite string) (string, error) {
	c, err := v.Concept(fromSite, term)
	if err != nil {
		return "", err
	}
	t, ok := v.fromSite[toSite][c]
	if !ok {
		return "", fmt.Errorf("%w: no rendering of %q at %s", ErrUnknownTerm, c, toSite)
	}
	return t, nil
}
