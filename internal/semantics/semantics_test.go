package semantics

import (
	"errors"
	"math"
	"testing"
)

func TestUnitConversions(t *testing.T) {
	u := NewUnits()
	cases := []struct {
		v        float64
		from, to string
		want     float64
	}{
		{1000, "nm", "um", 1},
		{1, "m", "angstrom", 1e10},
		{60, "s", "min", 1},
		{2, "h", "min", 120},
		{25, "C", "K", 298.15},
		{373.15, "K", "C", 100},
		{212, "F", "C", 100},
		{1, "mL/min", "uL/s", 1000.0 / 60},
		{5, "mM", "uM", 5000},
		{50, "%", "ratio", 0.5},
	}
	for _, c := range cases {
		got, err := u.Convert(c.v, c.from, c.to)
		if err != nil {
			t.Fatalf("%v %s->%s: %v", c.v, c.from, c.to, err)
		}
		if math.Abs(got-c.want) > 1e-6*math.Abs(c.want)+1e-9 {
			t.Errorf("Convert(%v, %s, %s) = %v, want %v", c.v, c.from, c.to, got, c.want)
		}
	}
}

func TestConvertRoundTrip(t *testing.T) {
	u := NewUnits()
	v := 123.456
	k, err := u.Convert(v, "C", "K")
	if err != nil {
		t.Fatal(err)
	}
	back, err := u.Convert(k, "K", "C")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back-v) > 1e-9 {
		t.Fatalf("round trip %v -> %v", v, back)
	}
}

func TestConvertErrors(t *testing.T) {
	u := NewUnits()
	if _, err := u.Convert(1, "parsec", "m"); !errors.Is(err, ErrUnknownUnit) {
		t.Fatalf("err = %v, want ErrUnknownUnit", err)
	}
	if _, err := u.Convert(1, "m", "s"); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("err = %v, want ErrIncompatible", err)
	}
}

func TestDimensionLookup(t *testing.T) {
	u := NewUnits()
	d, err := u.Dimension("mL/min")
	if err != nil || d != DimFlow {
		t.Fatalf("Dimension = %v, %v", d, err)
	}
}

func TestOntologyIsA(t *testing.T) {
	o := NewOntology()
	if !o.IsA("perovskite", "material") {
		t.Fatal("perovskite should be a material")
	}
	if !o.IsA("photoluminescence", "measurement") {
		t.Fatal("photoluminescence should be a measurement")
	}
	if o.IsA("perovskite", "measurement") {
		t.Fatal("perovskite is not a measurement")
	}
	if !o.IsA("alloy", "alloy") {
		t.Fatal("identity IsA failed")
	}
}

func TestCommonAncestor(t *testing.T) {
	o := NewOntology()
	c, ok := o.CommonAncestor("perovskite", "quantum-dot")
	if !ok || c != "nanocrystal" {
		t.Fatalf("CommonAncestor = %v, %v", c, ok)
	}
	c, ok = o.CommonAncestor("perovskite", "diffraction")
	if !ok || c != "thing" {
		t.Fatalf("distant ancestor = %v, %v", c, ok)
	}
	if _, ok := o.CommonAncestor("perovskite", "unrelated-orphan"); ok {
		t.Fatal("orphan concept should share no ancestor")
	}
}

func TestVocabularyTranslation(t *testing.T) {
	v := NewVocabulary()
	v.Learn("ornl", "PL quantum yield", "plqy")
	v.Learn("anl", "PLQY", "plqy")
	v.Learn("anl", "emission efficiency", "plqy")

	got, err := v.Translate("pl quantum yield", "ornl", "anl")
	if err != nil {
		t.Fatal(err)
	}
	if got != "PLQY" {
		t.Fatalf("Translate = %q, want preferred term PLQY", got)
	}

	if _, err := v.Translate("unknown", "ornl", "anl"); !errors.Is(err, ErrUnknownTerm) {
		t.Fatalf("err = %v, want ErrUnknownTerm", err)
	}
	v2 := NewVocabulary()
	v2.Learn("a", "x", "c1")
	if _, err := v2.Translate("x", "a", "b"); !errors.Is(err, ErrUnknownTerm) {
		t.Fatalf("missing target rendering: err = %v", err)
	}
}

func TestVocabularyCaseInsensitive(t *testing.T) {
	v := NewVocabulary()
	v.Learn("ornl", "Temperature", "temp")
	c, err := v.Concept("ornl", "TEMPERATURE")
	if err != nil || c != "temp" {
		t.Fatalf("Concept = %v, %v", c, err)
	}
}
