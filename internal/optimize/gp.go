// Package optimize implements the decision-making methods the paper's
// orchestration layer coordinates (dimension 3): Gaussian-process surrogate
// models, Bayesian optimisation with expected-improvement and UCB
// acquisitions, nested discrete-continuous search (the Smart Dope strategy),
// random and grid baselines, and cross-facility transfer seeding — the
// mechanism behind milestone M9's "reduce required experiments by >30%".
//
// All optimizers follow the ask/tell protocol so campaign engines control
// execution: Ask proposes the next experiment, Tell reports its measured
// objective.
//
// The GP is built for the per-decision hot path of batched campaigns: the
// Cholesky factor lives in flat packed-triangular storage (chol.go) and
// grows by O(n^2) rank-1 appends on Tell instead of O(n^3) refits, fantasy
// observations append and retract against the shared factor, and candidate
// scoring runs through PredictBatch, which is allocation-free in steady
// state with caller-owned scratch buffers.
package optimize

import (
	"errors"
	"math"
)

// Kernel is a positive-definite covariance function on unit-cube vectors.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
}

// RBF is the squared-exponential kernel with shared length scale.
type RBF struct {
	LengthScale float64
	Variance    float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return k.fromD2(d2)
}

// fromD2 is the kernel value at squared distance d2 — the single copy of
// the formula shared by Eval and the devirtualized row/block loops, so
// training and prediction covariances can never drift apart.
func (k RBF) fromD2(d2 float64) float64 {
	return k.Variance * math.Exp(-d2/(2*k.LengthScale*k.LengthScale))
}

// Matern52 is the Matérn 5/2 kernel, the default for physical response
// surfaces (twice-differentiable but less smooth than RBF).
type Matern52 struct {
	LengthScale float64
	Variance    float64
}

// Eval implements Kernel.
func (k Matern52) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return k.fromD2(d2)
}

// fromD2 is the kernel value at squared distance d2 — the single copy of
// the formula shared by Eval and the devirtualized row/block loops, so
// training and prediction covariances can never drift apart.
func (k Matern52) fromD2(d2 float64) float64 {
	r := math.Sqrt(d2) / k.LengthScale
	s5 := math.Sqrt(5) * r
	return k.Variance * (1 + s5 + 5*r*r/3) * math.Exp(-s5)
}

// ErrNotPD is returned when the covariance matrix cannot be factorized even
// with jitter, typically from duplicate points with zero noise.
var ErrNotPD = errors.New("optimize: covariance matrix not positive definite")

// GP is a Gaussian-process regressor over unit-cube inputs. Targets are
// standardized internally; predictions are returned on the original scale.
//
// Observations arrive either in bulk (Fit, FitNoise) or one at a time
// (Append, O(n^2) via a Cholesky rank-1 append); trailing observations can
// be withdrawn with Truncate, which is how constant-liar fantasy batches
// retract. Fit complexity is O(n^3), Append O(n^2), Predict O(n^2) per
// point. GP methods are not safe for concurrent use; concurrent scoring
// goes through PredictBatch with one PredictScratch per goroutine.
type GP struct {
	Kernel Kernel
	// Noise is the observation noise variance (on standardized targets)
	// used when no per-observation noise is given.
	Noise float64

	d      int       // input dimensionality
	n      int       // observations
	xs     []float64 // flat row-major inputs, n*d
	ys     []float64
	noises []float64 // per-observation noise variance
	mean   float64
	std    float64

	fac      cholFactor // factor of K + diag(noises)
	alpha    []float64  // (L L^T)^{-1} z, standardized targets z
	w        []float64  // forward half L^{-1} z (alpha's intermediate)
	jittered bool       // factor was built with diagonal jitter

	kbuf   []float64 // packed covariance scratch for full factorizations
	krow   []float64 // covariance row scratch for appends
	frozen int       // trailing rows appended under frozen standardization
	ps     PredictScratch
}

// NewGP returns a GP with the given kernel and noise variance.
func NewGP(k Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = 1e-6
	}
	return &GP{Kernel: k, Noise: noise}
}

// N reports the number of observations.
func (g *GP) N() int { return g.n }

// Fit replaces the training set and factorizes the covariance in O(n^3).
func (g *GP) Fit(xs [][]float64, ys []float64) error {
	return g.FitNoise(xs, ys, nil)
}

// FitNoise is Fit with a per-observation noise variance vector, the
// mechanism behind transfer-learning down-weighting: foreign observations
// carry inflated noise instead of distorted targets. A nil noise vector
// applies the uniform g.Noise.
func (g *GP) FitNoise(xs [][]float64, ys []float64, noise []float64) error {
	if len(xs) != len(ys) {
		panic("optimize: xs/ys length mismatch")
	}
	if noise != nil && len(noise) != len(xs) {
		panic("optimize: xs/noise length mismatch")
	}
	n := len(xs)
	g.n = n
	g.frozen = 0
	if n == 0 {
		g.clear()
		return nil
	}
	g.d = len(xs[0])
	g.xs = growTo(g.xs, n*g.d)
	g.ys = growTo(g.ys, n)
	g.noises = growTo(g.noises, n)
	for i := range xs {
		copy(g.xs[i*g.d:(i+1)*g.d], xs[i])
		g.ys[i] = ys[i]
		if noise != nil {
			g.noises[i] = noise[i]
		} else {
			g.noises[i] = g.Noise
		}
	}
	if err := g.refactor(); err != nil {
		g.clear()
		return err
	}
	g.resolve()
	return nil
}

// clear empties the model entirely — observations, factor, and solves —
// so a GP that survives a factorization error is a consistent empty GP
// (prior predictions) rather than one holding stale rows.
func (g *GP) clear() {
	g.n = 0
	g.frozen = 0
	g.fac.reset()
	g.xs, g.ys, g.noises = g.xs[:0], g.ys[:0], g.noises[:0]
	g.alpha, g.w = nil, nil
}

// Append extends the training set by one observation in O(n^2) via a
// Cholesky rank-1 append. When the extended matrix loses positive
// definiteness (or an earlier factorization needed jitter), it falls back
// to a from-scratch refactorization with escalating jitter — the same path
// Fit takes — so incremental growth always matches a bulk Fit bit for bit.
func (g *GP) Append(x []float64, y, noise float64) error {
	if g.n == 0 {
		g.d = len(x)
	}
	g.pushObs(x, y, noise)
	if g.jittered || !g.tryAppendRow(g.n-1) {
		if err := g.refactor(); err != nil {
			g.clear()
			return err
		}
	}
	g.resolve()
	return nil
}

// appendFrozen extends the factor by one observation without
// restandardizing targets: mean, std, and alpha stay those of the
// observations present at the last resolve, and only the forward half w is
// extended. This is the fantasy-overlay fast path — batch asks score
// incremental posterior updates against frozen standardization, then
// Truncate retracts the rows. It reports false when the appended row broke
// positive definiteness; the caller must then Resync and rescore.
// Predict/PredictBatch must not be called while frozen rows are pending.
func (g *GP) appendFrozen(x []float64, y, noise float64) bool {
	g.pushObs(x, y, noise)
	if g.jittered || !g.tryAppendRow(g.n-1) {
		if err := g.refactor(); err != nil {
			g.clear()
			return false
		}
		g.resolve()
		return false
	}
	g.frozen++
	g.w = append(g.w, g.fac.extendForward(g.w, (y-g.mean)/g.std))
	return true
}

// pushObs records an observation's raw data without touching the factor.
func (g *GP) pushObs(x []float64, y, noise float64) {
	g.xs = append(g.xs, x...)
	g.ys = append(g.ys, y)
	g.noises = append(g.noises, noise)
	g.n++
}

// tryAppendRow extends the factor with observation i's covariance row,
// reporting whether the extended matrix stayed positive definite.
func (g *GP) tryAppendRow(i int) bool {
	x := g.xs[i*g.d : (i+1)*g.d]
	g.krow = growTo(g.krow, i)
	g.kernelRow(x, g.krow[:i], i)
	return g.fac.appendRow(g.krow[:i], g.Kernel.Eval(x, x)+g.noises[i])
}

// Truncate retracts the training set to its first n observations in
// O(n^2): the factor's trailing rows are dropped (O(1) in packed storage)
// and the target solve is recomputed. A factor that was built with jitter
// is refactorized from scratch instead, so the retracted state matches
// what a bulk Fit of the first n observations would produce; like Fit and
// Append, an unfactorizable window clears the model and surfaces
// ErrNotPD.
func (g *GP) Truncate(n int) error {
	if n >= g.n {
		return nil
	}
	g.n = n
	g.xs = g.xs[:n*g.d]
	g.ys = g.ys[:n]
	g.noises = g.noises[:n]
	g.frozen = 0
	if n == 0 {
		g.fac.reset()
		g.alpha, g.w = nil, nil
		return nil
	}
	if g.jittered {
		if err := g.refactor(); err != nil {
			g.clear()
			return err
		}
	} else {
		g.fac.truncate(n)
	}
	g.resolve()
	return nil
}

// refactor rebuilds the packed covariance from stored observations and
// factorizes with escalating jitter, mirroring the classic bulk-fit path.
func (g *GP) refactor() error {
	n := g.n
	g.kbuf = growTo(g.kbuf, rowOff(n))
	for i := 0; i < n; i++ {
		xi := g.xs[i*g.d : (i+1)*g.d]
		row := g.kbuf[rowOff(i):]
		g.kernelRow(xi, row[:i], i)
		row[i] = g.Kernel.Eval(xi, xi) + g.noises[i]
	}
	jitter := 0.0
	for try := 0; try < 6; try++ {
		if g.fac.factorize(g.kbuf, n, jitter) {
			g.jittered = jitter > 0
			return nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
	}
	return ErrNotPD
}

// resolve recomputes target standardization and the solves against the
// current factor: z the standardized targets, w = L^{-1} z, and
// alpha = L^{-T} w. O(n^2), no allocations in steady state.
func (g *GP) resolve() {
	n := g.n
	g.frozen = 0
	var sum float64
	for _, y := range g.ys {
		sum += y
	}
	g.mean = sum / float64(n)
	var ss float64
	for _, y := range g.ys {
		d := y - g.mean
		ss += d * d
	}
	g.std = math.Sqrt(ss / float64(n))
	if g.std < 1e-12 {
		g.std = 1
	}
	g.w = growTo(g.w, n)
	g.alpha = growTo(g.alpha, n)
	for i, y := range g.ys {
		g.w[i] = (y - g.mean) / g.std
	}
	g.fac.forwardInto(g.w, g.w)
	copy(g.alpha, g.w)
	g.fac.backInto(g.alpha, g.alpha)
}

// kernelRow fills dst[j] = k(x, x_j) for j < m. The common kernels are
// devirtualized so the hot scoring loops run without interface calls; the
// formulas are exactly the Eval implementations.
func (g *GP) kernelRow(x, dst []float64, m int) {
	switch k := g.Kernel.(type) {
	case Matern52:
		for j := 0; j < m; j++ {
			xj := g.xs[j*g.d : j*g.d+g.d]
			var d2 float64
			for t := range x {
				d := x[t] - xj[t]
				d2 += d * d
			}
			dst[j] = k.fromD2(d2)
		}
	case RBF:
		for j := 0; j < m; j++ {
			xj := g.xs[j*g.d : j*g.d+g.d]
			var d2 float64
			for t := range x {
				d := x[t] - xj[t]
				d2 += d * d
			}
			dst[j] = k.fromD2(d2)
		}
	default:
		for j := 0; j < m; j++ {
			dst[j] = g.Kernel.Eval(x, g.xs[j*g.d:j*g.d+g.d])
		}
	}
}

// PredictScratch holds the reusable buffers PredictBatch needs; one
// instance per scoring goroutine makes batch prediction allocation-free in
// steady state.
type PredictScratch struct {
	k []float64 // kernel rows for one block: predictBlock*n
	v []float64 // interleaved forward solves: n*predictBlock
}

// predictBlock is the candidate block width: the triangular solve streams
// the factor once per block instead of once per candidate, and the 8-wide
// inner loop keeps the accumulators in registers.
const predictBlock = 8

func (s *PredictScratch) ensure(n int) {
	s.k = growTo(s.k, predictBlock*n)
	s.v = growTo(s.v, n*predictBlock)
}

// growTo returns buf resized to n, reallocating only on growth.
func growTo(buf []float64, n int) []float64 {
	if cap(buf) < n {
		grown := make([]float64, n, n+n/2+8)
		copy(grown, buf)
		return grown
	}
	return buf[:n]
}

// Predict returns the posterior mean and variance at x. Not safe for
// concurrent use (it shares the GP's internal scratch); concurrent callers
// use PredictBatch with per-goroutine scratch.
func (g *GP) Predict(x []float64) (mean, variance float64) {
	if g.n == 0 {
		return 0, 1
	}
	var mu, va [1]float64
	xv := [1][]float64{x}
	g.PredictBatch(xv[:], mu[:], va[:], &g.ps)
	return mu[0], va[0]
}

// PredictBatch fills mu and variance for every candidate in xs, on the
// original target scale. It allocates nothing once scratch has grown to
// the training-set size: candidates are scored in blocks of eight so the
// factor streams through cache once per block rather than once per
// candidate. Each candidate's arithmetic is identical to a standalone
// Predict, so results do not depend on batching or on how callers shard
// xs across goroutines.
func (g *GP) PredictBatch(xs [][]float64, mu, va []float64, scratch *PredictScratch) {
	if g.n == 0 {
		for i := range xs {
			mu[i], va[i] = 0, 1
		}
		return
	}
	scratch.ensure(g.n)
	var vv, kxx [predictBlock]float64
	for base := 0; base < len(xs); base += predictBlock {
		c := len(xs) - base
		if c > predictBlock {
			c = predictBlock
		}
		blk := xs[base : base+c]
		g.scoreBlock(blk, scratch.k, scratch.v, mu[base:base+c], vv[:c], kxx[:c])
		for i := 0; i < c; i++ {
			variance := kxx[i] - vv[i]
			if variance < 1e-12 {
				variance = 1e-12
			}
			mu[base+i] = g.mean + g.std*mu[base+i]
			va[base+i] = variance * g.std * g.std
		}
	}
}

// scoreBlock computes, for a block of at most predictBlock candidates, the
// standardized posterior mean (into mu), the squared norm of the forward
// solve v = L^{-1} k* (into vv), and the prior variance k(x,x) (into kxx).
// The interleaved solves remain in v (layout v[row*predictBlock+cand]) for
// callers that cache them for incremental fantasy updates.
//
// Kernel rows are stored lane-interleaved (kbuf[j*predictBlock+t]) and
// every loop runs all predictBlock lanes with fixed bounds — unused lanes
// compute on zeros — so the eight forward-solve recurrences proceed as
// independent dependency chains over contiguous loads. Each lane's
// arithmetic is exactly the single-candidate recurrence.
func (g *GP) scoreBlock(blk [][]float64, kbuf, v []float64, mu, vv, kxx []float64) {
	n := g.n
	c := len(blk)
	g.kernelBlock(blk, kbuf)
	for t, x := range blk {
		kxx[t] = g.Kernel.Eval(x, x)
	}
	var m [predictBlock]float64
	for j := 0; j < n; j++ {
		av := g.alpha[j]
		kb := kbuf[j*predictBlock : j*predictBlock+predictBlock]
		for t := 0; t < predictBlock; t++ {
			m[t] += kb[t] * av
		}
	}
	l := g.fac.l
	var sq [predictBlock]float64
	for i := 0; i < n; i++ {
		row := l[rowOff(i) : rowOff(i)+i+1]
		kb := kbuf[i*predictBlock : i*predictBlock+predictBlock]
		// Eight accumulators in registers: the eight candidates' solve
		// recurrences are independent chains, so the loop runs at multiply
		// throughput instead of one candidate's dependency latency.
		a0, a1, a2, a3 := kb[0], kb[1], kb[2], kb[3]
		a4, a5, a6, a7 := kb[4], kb[5], kb[6], kb[7]
		for k := 0; k < i; k++ {
			lv := row[k]
			vb := v[k*predictBlock : k*predictBlock+predictBlock]
			a0 -= lv * vb[0]
			a1 -= lv * vb[1]
			a2 -= lv * vb[2]
			a3 -= lv * vb[3]
			a4 -= lv * vb[4]
			a5 -= lv * vb[5]
			a6 -= lv * vb[6]
			a7 -= lv * vb[7]
		}
		d := row[i]
		vb := v[i*predictBlock : i*predictBlock+predictBlock]
		a0, a1, a2, a3 = a0/d, a1/d, a2/d, a3/d
		a4, a5, a6, a7 = a4/d, a5/d, a6/d, a7/d
		vb[0], vb[1], vb[2], vb[3] = a0, a1, a2, a3
		vb[4], vb[5], vb[6], vb[7] = a4, a5, a6, a7
		sq[0] += a0 * a0
		sq[1] += a1 * a1
		sq[2] += a2 * a2
		sq[3] += a3 * a3
		sq[4] += a4 * a4
		sq[5] += a5 * a5
		sq[6] += a6 * a6
		sq[7] += a7 * a7
	}
	for t := 0; t < c; t++ {
		mu[t] = m[t]
		vv[t] = sq[t]
	}
}

// kernelBlock fills kbuf[j*predictBlock+t] = k(blk[t], x_j), zeroing lanes
// past len(blk). The common kernels are devirtualized; formulas match Eval
// exactly.
func (g *GP) kernelBlock(blk [][]float64, kbuf []float64) {
	n, c, d := g.n, len(blk), g.d
	switch k := g.Kernel.(type) {
	case Matern52:
		for j := 0; j < n; j++ {
			xj := g.xs[j*d : j*d+d]
			kb := kbuf[j*predictBlock : j*predictBlock+predictBlock]
			for t := 0; t < c; t++ {
				x := blk[t]
				var d2 float64
				for q := range x {
					dd := x[q] - xj[q]
					d2 += dd * dd
				}
				kb[t] = k.fromD2(d2)
			}
			for t := c; t < predictBlock; t++ {
				kb[t] = 0
			}
		}
	case RBF:
		for j := 0; j < n; j++ {
			xj := g.xs[j*d : j*d+d]
			kb := kbuf[j*predictBlock : j*predictBlock+predictBlock]
			for t := 0; t < c; t++ {
				x := blk[t]
				var d2 float64
				for q := range x {
					dd := x[q] - xj[q]
					d2 += dd * dd
				}
				kb[t] = k.fromD2(d2)
			}
			for t := c; t < predictBlock; t++ {
				kb[t] = 0
			}
		}
	default:
		for j := 0; j < n; j++ {
			kb := kbuf[j*predictBlock : j*predictBlock+predictBlock]
			for t := 0; t < c; t++ {
				kb[t] = g.Kernel.Eval(blk[t], g.xs[j*d:j*d+d])
			}
			for t := c; t < predictBlock; t++ {
				kb[t] = 0
			}
		}
	}
}

// normPDF/normCDF for expected improvement.
func normPDF(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }
func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// ExpectedImprovement scores a candidate under the GP posterior against the
// current best observation (maximization).
func ExpectedImprovement(mean, variance, best, xi float64) float64 {
	sd := math.Sqrt(variance)
	if sd < 1e-12 {
		return 0
	}
	z := (mean - best - xi) / sd
	return (mean-best-xi)*normCDF(z) + sd*normPDF(z)
}

// UCB scores a candidate with an upper confidence bound.
func UCB(mean, variance, beta float64) float64 {
	return mean + beta*math.Sqrt(variance)
}

// defaultKernel builds the default surrogate kernel for a dimensionality.
func defaultKernel(dims int) Kernel {
	// Length scale shrinks slowly with dimension so high-d spaces keep
	// useful correlation.
	return Matern52{LengthScale: 0.35 * math.Pow(float64(dims), 0.25), Variance: 1}
}
