// Package optimize implements the decision-making methods the paper's
// orchestration layer coordinates (dimension 3): Gaussian-process surrogate
// models, Bayesian optimisation with expected-improvement and UCB
// acquisitions, nested discrete-continuous search (the Smart Dope strategy),
// random and grid baselines, and cross-facility transfer seeding — the
// mechanism behind milestone M9's "reduce required experiments by >30%".
//
// All optimizers follow the ask/tell protocol so campaign engines control
// execution: Ask proposes the next experiment, Tell reports its measured
// objective.
package optimize

import (
	"errors"
	"math"
)

// Kernel is a positive-definite covariance function on unit-cube vectors.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
}

// RBF is the squared-exponential kernel with shared length scale.
type RBF struct {
	LengthScale float64
	Variance    float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return k.Variance * math.Exp(-d2/(2*k.LengthScale*k.LengthScale))
}

// Matern52 is the Matérn 5/2 kernel, the default for physical response
// surfaces (twice-differentiable but less smooth than RBF).
type Matern52 struct {
	LengthScale float64
	Variance    float64
}

// Eval implements Kernel.
func (k Matern52) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	r := math.Sqrt(d2) / k.LengthScale
	s5 := math.Sqrt(5) * r
	return k.Variance * (1 + s5 + 5*r*r/3) * math.Exp(-s5)
}

// ErrNotPD is returned when the covariance matrix cannot be factorized even
// with jitter, typically from duplicate points with zero noise.
var ErrNotPD = errors.New("optimize: covariance matrix not positive definite")

// GP is a Gaussian-process regressor over unit-cube inputs. Targets are
// standardized internally; predictions are returned on the original scale.
type GP struct {
	Kernel Kernel
	// Noise is the observation noise variance (on standardized targets).
	Noise float64

	xs   [][]float64
	ys   []float64
	mean float64
	std  float64

	chol  [][]float64 // lower-triangular factor of K + noise*I
	alpha []float64   // chol solve of standardized targets
}

// NewGP returns a GP with the given kernel and noise variance.
func NewGP(k Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = 1e-6
	}
	return &GP{Kernel: k, Noise: noise}
}

// N reports the number of observations.
func (g *GP) N() int { return len(g.xs) }

// Fit replaces the training set and factorizes the covariance.
func (g *GP) Fit(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) {
		panic("optimize: xs/ys length mismatch")
	}
	g.xs = xs
	g.ys = ys
	n := len(xs)
	if n == 0 {
		g.chol, g.alpha = nil, nil
		return nil
	}

	// Standardize targets.
	var sum float64
	for _, y := range ys {
		sum += y
	}
	g.mean = sum / float64(n)
	var ss float64
	for _, y := range ys {
		d := y - g.mean
		ss += d * d
	}
	g.std = math.Sqrt(ss / float64(n))
	if g.std < 1e-12 {
		g.std = 1
	}

	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := g.Kernel.Eval(xs[i], xs[j])
			k[i][j] = v
			k[j][i] = v
		}
		k[i][i] += g.Noise
	}

	chol, err := cholesky(k)
	if err != nil {
		return err
	}
	g.chol = chol

	z := make([]float64, n)
	for i, y := range ys {
		z[i] = (y - g.mean) / g.std
	}
	g.alpha = cholSolve(chol, z)
	return nil
}

// Predict returns the posterior mean and variance at x.
func (g *GP) Predict(x []float64) (mean, variance float64) {
	if len(g.xs) == 0 {
		return 0, 1
	}
	n := len(g.xs)
	kstar := make([]float64, n)
	for i := range g.xs {
		kstar[i] = g.Kernel.Eval(x, g.xs[i])
	}
	var mu float64
	for i := range kstar {
		mu += kstar[i] * g.alpha[i]
	}
	// v = L^{-1} k*; var = k(x,x) - v.v
	v := forwardSolve(g.chol, kstar)
	var vv float64
	for _, t := range v {
		vv += t * t
	}
	kxx := g.Kernel.Eval(x, x)
	variance = kxx - vv
	if variance < 1e-12 {
		variance = 1e-12
	}
	// De-standardize.
	return g.mean + g.std*mu, variance * g.std * g.std
}

// cholesky computes the lower-triangular factor with escalating jitter.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	jitter := 0.0
	for try := 0; try < 6; try++ {
		l := make([][]float64, n)
		for i := range l {
			l[i] = make([]float64, i+1)
		}
		ok := true
	outer:
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				s := a[i][j]
				if i == j {
					s += jitter
				}
				for k := 0; k < j; k++ {
					s -= l[i][k] * l[j][k]
				}
				if i == j {
					if s <= 0 {
						ok = false
						break outer
					}
					l[i][i] = math.Sqrt(s)
				} else {
					l[i][j] = s / l[j][j]
				}
			}
		}
		if ok {
			return l, nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
	}
	return nil, ErrNotPD
}

// forwardSolve solves L y = b for lower-triangular L.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(l)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i][k] * y[k]
		}
		y[i] = s / l[i][i]
	}
	return y
}

// backSolve solves L^T x = y.
func backSolve(l [][]float64, y []float64) []float64 {
	n := len(l)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k][i] * x[k]
		}
		x[i] = s / l[i][i]
	}
	return x
}

// cholSolve solves (L L^T) x = b.
func cholSolve(l [][]float64, b []float64) []float64 {
	return backSolve(l, forwardSolve(l, b))
}

// normPDF/normCDF for expected improvement.
func normPDF(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }
func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// ExpectedImprovement scores a candidate under the GP posterior against the
// current best observation (maximization).
func ExpectedImprovement(mean, variance, best, xi float64) float64 {
	sd := math.Sqrt(variance)
	if sd < 1e-12 {
		return 0
	}
	z := (mean - best - xi) / sd
	return (mean-best-xi)*normCDF(z) + sd*normPDF(z)
}

// UCB scores a candidate with an upper confidence bound.
func UCB(mean, variance, beta float64) float64 {
	return mean + beta*math.Sqrt(variance)
}

// unitCopy makes a defensive copy of a unit vector.
func unitCopy(u []float64) []float64 {
	c := make([]float64, len(u))
	copy(c, u)
	return c
}

// defaultKernel builds the default surrogate kernel for a dimensionality.
func defaultKernel(dims int) Kernel {
	// Length scale shrinks slowly with dimension so high-d spaces keep
	// useful correlation.
	return Matern52{LengthScale: 0.35 * math.Pow(float64(dims), 0.25), Variance: 1}
}
