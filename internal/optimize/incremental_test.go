package optimize

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
)

// Property: growing a GP by rank-1 appends matches a from-scratch Fit to
// 1e-9 in posterior mean and variance across random append sequences —
// including sequences with duplicated points, which force the jitter-
// escalation fallback inside Append.
func TestPropertyIncrementalMatchesBatchFit(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 1 + r.Intn(40)
		d := 1 + r.Intn(3)
		noise := 1e-6
		if r.Bool(0.5) {
			noise = 1e-4
		}
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			if i > 0 && r.Bool(0.2) {
				// Duplicate an earlier point: near-singular covariance,
				// exercising the jitter path.
				xs[i] = append([]float64(nil), xs[r.Intn(i)]...)
			} else {
				xs[i] = make([]float64, d)
				for j := range xs[i] {
					xs[i][j] = r.Float64()
				}
			}
			ys[i] = r.Normal(0, 2)
		}

		inc := NewGP(Matern52{LengthScale: 0.4, Variance: 1}, noise)
		for i := range xs {
			if err := inc.Append(xs[i], ys[i], noise); err != nil {
				return true // degenerate beyond jitter: batch fit fails too
			}
		}
		batch := NewGP(Matern52{LengthScale: 0.4, Variance: 1}, noise)
		if err := batch.Fit(xs, ys); err != nil {
			return false // incremental succeeded, batch must too
		}
		for probe := 0; probe < 20; probe++ {
			x := make([]float64, d)
			for j := range x {
				x[j] = r.Float64()
			}
			m1, v1 := inc.Predict(x)
			m2, v2 := batch.Predict(x)
			if math.Abs(m1-m2) > 1e-9 || math.Abs(v1-v2) > 1e-9 {
				t.Logf("divergence at n=%d d=%d: mean %v vs %v, var %v vs %v",
					n, d, m1, m2, v1, v2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: truncating appended observations restores the exact posterior
// of the shorter training set — the invariant AskBatch's fantasy overlay
// relies on to retract constant-liar rows.
func TestPropertyTruncateRestoresPosterior(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(20)
		extra := 1 + r.Intn(8)
		d := 2
		mk := func() *GP { return NewGP(Matern52{LengthScale: 0.4, Variance: 1}, 1e-4) }
		draw := func() ([]float64, float64) {
			x := make([]float64, d)
			for j := range x {
				x[j] = r.Float64()
			}
			return x, r.Normal(0, 1)
		}
		g := mk()
		ref := mk()
		for i := 0; i < n; i++ {
			x, y := draw()
			if g.Append(x, y, 1e-4) != nil || ref.Append(x, y, 1e-4) != nil {
				return true
			}
		}
		for i := 0; i < extra; i++ {
			x, y := draw()
			if g.Append(x, y, 1e-4) != nil {
				return true
			}
		}
		if err := g.Truncate(n); err != nil {
			return false
		}
		for probe := 0; probe < 10; probe++ {
			x := make([]float64, d)
			for j := range x {
				x[j] = r.Float64()
			}
			m1, v1 := g.Predict(x)
			m2, v2 := ref.Predict(x)
			if m1 != m2 || v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Parallel candidate scoring must return exactly the serial answer for a
// fixed seed: workers are pure functions merged by candidate index, so the
// worker count cannot influence which point wins.
func TestParallelScoringMatchesSerial(t *testing.T) {
	run := func(workers int) []string {
		b := NewBayes(sphereSpace(), rng.New(77), BayesOpts{ScoreWorkers: workers})
		var keys []string
		for i := 0; i < 25; i++ {
			p := b.Ask()
			keys = append(keys, p.Key())
			b.Tell(p, sphere(p))
		}
		// Batch asks take the fantasy-overlay scoring path.
		for _, p := range b.AskBatch(5, nil) {
			keys = append(keys, p.Key())
		}
		return keys
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d returned %d points, serial %d", workers, len(got), len(serial))
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d diverged at ask %d: %s vs serial %s",
					workers, i, got[i], serial[i])
			}
		}
	}
}

// AskBatch(1, inflight) must propose exactly what a serial Ask would after
// fantasizing the in-flight points — the path campaign refills take.
func TestAskBatchSingleMatchesSerialPath(t *testing.T) {
	mk := func() *Bayes {
		b := NewBayes(sphereSpace(), rng.New(31), BayesOpts{InitSamples: 4})
		for i := 0; i < 9; i++ {
			p := b.Ask()
			b.Tell(p, sphere(p))
		}
		return b
	}
	a := mk()
	bb := mk()
	fly := []param.Point{{"x": 0.5, "y": 0.5}, {"x": 0.1, "y": 0.9}}
	p1 := a.AskBatch(1, fly)[0]
	p2 := bb.AskBatch(1, fly)[0]
	if p1.Key() != p2.Key() {
		t.Fatalf("replayed AskBatch(1) diverged: %s vs %s", p1.Key(), p2.Key())
	}
	if a.N() != 9 {
		t.Fatalf("fantasies leaked: N = %d", a.N())
	}
}

// Transfer-seeded observations are down-weighted through per-observation
// noise: a seeded value must pull the posterior mean less than the same
// value told locally, and more for lower weights.
func TestSeedNoiseDownWeighting(t *testing.T) {
	probe := param.Point{"x": 0.3, "y": 0.3}
	post := func(weight float64) float64 {
		b := NewBayes(sphereSpace(), rng.New(41), BayesOpts{InitSamples: 2})
		// Local anchor far from the probe keeps the GP standardization
		// non-degenerate.
		b.Tell(param.Point{"x": 0.9, "y": 0.9}, 0)
		if weight >= 1 {
			b.Tell(probe, 5)
		} else {
			b.Seed([]param.Point{probe}, []float64{5}, weight)
		}
		b.refit()
		mu, _ := b.gp.Predict(b.space.ToUnit(probe))
		return mu
	}
	local := post(1)
	warm := post(0.7)
	weak := post(0.2)
	if !(local > warm && warm > weak) {
		t.Fatalf("down-weighting not monotone: local %v, w=0.7 %v, w=0.2 %v", local, warm, weak)
	}
	if weak <= 0 {
		t.Fatalf("weakly weighted evidence should still pull the mean up: %v", weak)
	}
}

// Grid lattice sizes that overflow levels^dims must saturate, not wrap.
func TestGridOverflowSaturates(t *testing.T) {
	space := make(param.Space, 64)
	for i := range space {
		space[i] = param.Dim{Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), Lo: 0, Hi: 1}
	}
	g := NewGrid(space, 10) // 10^64 lattice points
	if g.total != math.MaxInt {
		t.Fatalf("total = %d, want MaxInt saturation", g.total)
	}
	for i := 0; i < 10; i++ {
		p := g.Ask()
		if err := space.Validate(p); err != nil {
			t.Fatalf("overflowed grid proposed invalid point: %v", err)
		}
	}
}

// negKernel is intentionally not positive definite, defeating every
// jitter escalation.
type negKernel struct{}

func (negKernel) Eval(a, b []float64) float64 { return -1 }

// A GP that survives a factorization failure must behave as a consistent
// empty model: no stale rows, and subsequent appends start fresh.
func TestGPErrorPathLeavesCleanModel(t *testing.T) {
	g := NewGP(negKernel{}, 1e-6)
	if err := g.Append([]float64{0.5}, 1, 1e-6); err == nil {
		t.Fatal("negative-definite kernel should fail to factorize")
	}
	if g.N() != 0 {
		t.Fatalf("failed GP holds %d observations, want 0", g.N())
	}
	if mu, v := g.Predict([]float64{0.5}); mu != 0 || v != 1 {
		t.Fatalf("failed GP predicts (%v, %v), want the (0, 1) prior", mu, v)
	}
	// Swapping in a valid kernel, the same GP must accept appends with no
	// residue from the failed rows.
	g.Kernel = Matern52{LengthScale: 0.4, Variance: 1}
	if err := g.Append([]float64{0.25}, 2, 1e-6); err != nil {
		t.Fatalf("append after failure: %v", err)
	}
	if g.N() != 1 {
		t.Fatalf("N = %d after recovery append, want 1", g.N())
	}
	if mu, _ := g.Predict([]float64{0.25}); math.Abs(mu-2) > 0.01 {
		t.Fatalf("recovered GP mean at training point = %v, want ~2", mu)
	}
}

// flakyKernel behaves like a Matérn until bad flips, then turns negative
// definite — forcing a factorization failure in the middle of a batch.
type flakyKernel struct{ bad *bool }

func (k flakyKernel) Eval(a, b []float64) float64 {
	if *k.bad {
		return -1
	}
	return Matern52{LengthScale: 0.4, Variance: 1}.Eval(a, b)
}

// Losing the model mid-batch (a fantasy row that cannot factorize even
// with jitter) must degrade gracefully: the batch still returns k distinct
// finite points from the last good scores, nothing leaks, and the
// optimizer keeps working afterwards.
func TestAskBatchSurvivesMidBatchModelLoss(t *testing.T) {
	bad := false
	b := NewBayes(sphereSpace(), rng.New(51), BayesOpts{
		InitSamples: 4, Kernel: flakyKernel{bad: &bad},
	})
	for i := 0; i < 10; i++ {
		p := b.Ask()
		b.Tell(p, sphere(p))
	}
	b.Ask() // sync the GP while the kernel is still healthy
	bad = true
	out := b.AskBatch(4, nil)
	if len(out) != 4 {
		t.Fatalf("AskBatch returned %d points, want 4", len(out))
	}
	seen := map[string]bool{}
	for _, p := range out {
		if err := sphereSpace().Validate(p); err != nil {
			t.Fatalf("degraded batch proposed invalid point: %v", err)
		}
		if seen[p.Key()] {
			t.Fatalf("degraded batch proposed duplicate point %v", p)
		}
		seen[p.Key()] = true
	}
	if b.N() != 10 {
		t.Fatalf("fantasies leaked through model loss: N = %d", b.N())
	}
	// The optimizer recovers (pure-exploration fallback) on later asks.
	p := b.Ask()
	if err := sphereSpace().Validate(p); err != nil {
		t.Fatalf("post-loss Ask proposed invalid point: %v", err)
	}
	b.Tell(p, sphere(p))
}
