package optimize

import (
	"testing"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
)

// benchSpace is a 4-d continuous space, typical of the digital-twin
// response surfaces the campaigns optimize over.
func benchSpace() param.Space {
	return param.Space{
		{Name: "a", Lo: 0, Hi: 1},
		{Name: "b", Lo: 0, Hi: 1},
		{Name: "c", Lo: 0, Hi: 1},
		{Name: "d", Lo: 0, Hi: 1},
	}
}

// benchData draws n training points in the unit cube.
func benchData(n, d int) ([][]float64, []float64) {
	r := rng.New(7)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, d)
		for j := range xs[i] {
			xs[i][j] = r.Float64()
		}
		ys[i] = r.Normal(0, 1)
	}
	return xs, ys
}

// BenchmarkGPFit measures a from-scratch factorization at n=256, the
// MaxFit window size — the cost AskBatch used to pay k times per batch.
func BenchmarkGPFit(b *testing.B) {
	xs, ys := benchData(256, 4)
	g := NewGP(defaultKernel(4), 1e-4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPPredictBatch measures scoring 576 candidates (the default
// Candidates+LocalCandidates pool) against a 256-observation posterior.
func BenchmarkGPPredictBatch(b *testing.B) {
	xs, ys := benchData(256, 4)
	g := NewGP(defaultKernel(4), 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	cands, _ := benchData(576, 4)
	mu := make([]float64, len(cands))
	va := make([]float64, len(cands))
	var scratch PredictScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PredictBatch(cands, mu, va, &scratch)
	}
}

// BenchmarkAskBatch measures a parallel refill at n=256 observations:
// 4 in-flight fantasies plus an 8-point constant-liar batch, the hot
// per-decision path of a saturated Parallelism>=8 campaign.
func BenchmarkAskBatch(b *testing.B) {
	space := benchSpace()
	bo := NewBayes(space, rng.New(11), BayesOpts{})
	r := rng.New(13)
	for i := 0; i < 256; i++ {
		p := space.Sample(r)
		bo.Tell(p, r.Normal(0, 1))
	}
	inflight := []param.Point{space.Sample(r), space.Sample(r), space.Sample(r), space.Sample(r)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := bo.AskBatch(8, inflight); len(got) != 8 {
			b.Fatalf("AskBatch returned %d points", len(got))
		}
	}
}

// BenchmarkAsk measures a single serial decision at n=256.
func BenchmarkAsk(b *testing.B) {
	space := benchSpace()
	bo := NewBayes(space, rng.New(11), BayesOpts{})
	r := rng.New(13)
	for i := 0; i < 256; i++ {
		p := space.Sample(r)
		bo.Tell(p, r.Normal(0, 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bo.stale = true // each iteration pays one incremental sync
		_ = bo.Ask()
	}
}
