package optimize

import (
	"math"
	"runtime"
	"sync"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
)

// Optimizer is the ask/tell protocol campaigns drive: Ask proposes the next
// parameter point; Tell reports its measured objective (maximization).
type Optimizer interface {
	Ask() param.Point
	Tell(p param.Point, value float64)
	Best() (param.Point, float64)
	N() int
}

// Observation is one completed experiment.
type Observation struct {
	Point param.Point
	Value float64
	// Weight < 1 marks transferred observations from other facilities,
	// modelled as noisier evidence.
	Weight float64
}

// Acquisition selects the BO acquisition function.
type Acquisition int

// Acquisition choices.
const (
	AcqEI Acquisition = iota
	AcqUCB
)

// BayesOpts configures a Bayesian optimizer.
type BayesOpts struct {
	// InitSamples is the Latin-hypercube warm-up before the GP engages.
	// Default max(5, dims+2).
	InitSamples int
	// Candidates is the random candidate pool per Ask. Default 512.
	Candidates int
	// LocalCandidates perturb the incumbent. Default 64.
	LocalCandidates int
	// Acq selects the acquisition function. Default EI.
	Acq Acquisition
	// UCBBeta is the exploration weight for AcqUCB. Default 2.
	UCBBeta float64
	// XI is the EI exploration margin. Default 0.01.
	XI float64
	// Kernel overrides the default Matérn-5/2.
	Kernel Kernel
	// Noise is the GP observation-noise variance. Default 1e-4.
	Noise float64
	// MaxFit bounds the GP training-set size; older observations beyond the
	// bound are dropped (keeps the factor bounded in long campaigns).
	// Default 256.
	MaxFit int
	// ScoreWorkers caps the goroutines that score the candidate pool.
	// Default (0) uses GOMAXPROCS. Scoring is a pure function of the
	// shared posterior — workers consume no randomness and results merge
	// by candidate index — so any worker count returns the identical
	// point for a fixed seed.
	ScoreWorkers int
}

func (o *BayesOpts) defaults(dims int) {
	if o.InitSamples == 0 {
		o.InitSamples = dims + 2
		if o.InitSamples < 5 {
			o.InitSamples = 5
		}
	}
	if o.Candidates == 0 {
		o.Candidates = 512
	}
	if o.LocalCandidates == 0 {
		o.LocalCandidates = 64
	}
	if o.UCBBeta == 0 {
		o.UCBBeta = 2
	}
	if o.XI == 0 {
		o.XI = 0.01
	}
	if o.Kernel == nil {
		o.Kernel = defaultKernel(dims)
	}
	if o.Noise == 0 {
		o.Noise = 1e-4
	}
	if o.MaxFit == 0 {
		o.MaxFit = 256
	}
}

// candPool holds the reusable candidate-generation and scoring buffers, so
// a steady-state Ask allocates only the returned point.
type candPool struct {
	pts    []param.Point // reused candidate maps
	units  []float64     // flat unit-cube coordinates, total*dims
	uview  [][]float64   // per-candidate views into units
	mu     []float64
	va     []float64
	scores []float64

	// Fantasy-overlay scoring state (AskBatch k>1): standardized means,
	// solve norms, prior variances, and the per-candidate forward solves
	// that make each constant-liar update O(n) per candidate.
	mustd  []float64
	vvs    []float64
	kxx    []float64
	picked []bool
	vcache []float64

	scratch []PredictScratch // one per scoring worker

	ubuf     []float64 // single-point ToUnit scratch
	fitUnits []float64 // full-refit buffers
	fitXs    [][]float64
	fitYs    []float64
	fitNoise []float64
}

func (c *candPool) ensure(total, dims, workers int) {
	for len(c.pts) < total {
		c.pts = append(c.pts, make(param.Point, dims))
	}
	c.units = growTo(c.units, total*dims)
	if cap(c.uview) < total {
		c.uview = make([][]float64, total)
	}
	c.uview = c.uview[:total]
	for i := 0; i < total; i++ {
		c.uview[i] = c.units[i*dims : (i+1)*dims]
	}
	c.mu = growTo(c.mu, total)
	c.va = growTo(c.va, total)
	c.scores = growTo(c.scores, total)
	for len(c.scratch) < workers {
		c.scratch = append(c.scratch, PredictScratch{})
	}
}

// Bayes is a Gaussian-process Bayesian optimizer with native support for
// discrete-continuous spaces: candidates are snapped to parameter lattices
// before scoring, the nested strategy the paper describes for real
// experimental hardware.
//
// The surrogate is maintained incrementally: Tell marks the model stale and
// the next decision extends the shared Cholesky factor by one O(n^2) row
// append instead of refitting in O(n^3). AskBatch fantasizes constant-liar
// rows against the same factor and retracts them by truncation.
type Bayes struct {
	space param.Space
	rnd   *rng.Stream
	opts  BayesOpts

	obs      []Observation
	initPlan []param.Point
	gp       *GP
	gpLo     int // index into obs of the first GP row
	gpHi     int // index into obs one past the last valid GP row
	stale    bool

	bestP param.Point
	bestV float64

	cand candPool
}

// NewBayes builds a Bayesian optimizer over the space.
func NewBayes(space param.Space, rnd *rng.Stream, opts BayesOpts) *Bayes {
	opts.defaults(len(space))
	b := &Bayes{
		space: space,
		rnd:   rnd.Fork("bayes"),
		opts:  opts,
		gp:    NewGP(opts.Kernel, opts.Noise),
		bestV: math.Inf(-1),
	}
	b.initPlan = space.SampleLHS(b.rnd, opts.InitSamples)
	return b
}

// N implements Optimizer.
func (b *Bayes) N() int { return len(b.obs) }

// Best implements Optimizer.
func (b *Bayes) Best() (param.Point, float64) { return b.bestP, b.bestV }

// Seed imports observations from another facility (transfer learning).
// weight in (0,1] down-weights foreign evidence by inflating its GP noise.
// Transferred values inform the surrogate only; campaigns track their own
// locally-confirmed best, so bestP/bestV update only on local Tell.
func (b *Bayes) Seed(points []param.Point, values []float64, weight float64) {
	if weight <= 0 || weight > 1 {
		weight = 0.5
	}
	for i := range points {
		b.obs = append(b.obs, Observation{Point: points[i].Clone(), Value: values[i], Weight: weight})
	}
	b.stale = true
	// Seeding replaces part of the LHS warm-up: each seeded point removes
	// one pending init sample.
	drop := len(points)
	if drop > len(b.initPlan) {
		drop = len(b.initPlan)
	}
	b.initPlan = b.initPlan[drop:]
}

// Tell implements Optimizer.
func (b *Bayes) Tell(p param.Point, value float64) {
	b.obs = append(b.obs, Observation{Point: p.Clone(), Value: value, Weight: 1})
	if value > b.bestV {
		b.bestV = value
		b.bestP = p.Clone()
	}
	b.stale = true
}

// AskBatch proposes k points for parallel evaluation using the
// constant-liar strategy: each proposed point is given a fantasy
// observation at the worst value seen so far (CL-min), which collapses
// posterior variance around it and pushes subsequent asks toward
// unexplored regions. Points already in flight elsewhere (asked earlier
// but not yet told) are fantasized the same way first, so refill batches
// do not re-propose experiments that are still executing.
//
// Fantasies are an overlay on the shared Cholesky factor: each one appends
// a row in O(n^2) (k > 1 batches then update cached candidate scores in
// O(n) per candidate per fantasy), and retraction is a factor truncation —
// the surrogate's real evidence is never refit. During the LHS warm-up the
// plan already spreads points, and the fantasies are harmless.
func (b *Bayes) AskBatch(k int, inflight []param.Point) []param.Point {
	if k <= 1 && len(inflight) == 0 {
		return []param.Point{b.Ask()}
	}
	if k < 1 {
		k = 1
	}
	lie := math.Inf(1)
	for _, o := range b.obs {
		if o.Value < lie {
			lie = o.Value
		}
	}
	if math.IsInf(lie, 1) {
		lie = 0
	}
	saved := len(b.obs)
	savedP, savedV := b.bestP, b.bestV
	for _, p := range inflight {
		b.fantasize(p, lie)
	}
	out := make([]param.Point, 0, k)
	// The LHS warm-up plan serves batch asks exactly as it serves serial
	// ones.
	for len(out) < k && len(b.initPlan) > 0 {
		p := b.initPlan[0]
		b.initPlan = b.initPlan[1:]
		out = append(out, p)
		b.fantasize(p, lie)
	}
	if len(out) < k && len(b.obs) == 0 {
		// No evidence at all: open uniformly, like a serial Ask would.
		p := b.space.Sample(b.rnd)
		out = append(out, p)
		b.fantasize(p, lie)
	}
	if rem := k - len(out); rem > 0 {
		out = append(out, b.askFantasies(rem, lie)...)
	}
	b.obs = b.obs[:saved]
	if b.gpHi > saved {
		b.gpHi = saved // fantasy rows beyond here retract at the next refit
	}
	b.bestP, b.bestV = savedP, savedV
	b.stale = true
	return out
}

// fantasize appends a constant-liar observation (retracted by AskBatch).
func (b *Bayes) fantasize(p param.Point, lie float64) {
	b.obs = append(b.obs, Observation{Point: p.Clone(), Value: lie, Weight: 1})
	b.stale = true
}

// Ask implements Optimizer.
func (b *Bayes) Ask() param.Point {
	if len(b.initPlan) > 0 {
		p := b.initPlan[0]
		b.initPlan = b.initPlan[1:]
		return p
	}
	if len(b.obs) == 0 {
		return b.space.Sample(b.rnd)
	}
	b.refit()
	return b.askScored(b.incumbent())
}

// incumbent is the EI reference value: the locally-confirmed best, or the
// best transferred value when nothing local has been told yet.
func (b *Bayes) incumbent() float64 {
	best := b.bestV
	if math.IsInf(best, -1) {
		for _, o := range b.obs {
			if o.Value > best {
				best = o.Value
			}
		}
	}
	return best
}

// askScored draws one candidate pool, scores it against the current
// posterior, and returns the argmax (first index wins ties). With no
// scorable candidate it falls back to a uniform sample.
func (b *Bayes) askScored(best float64) param.Point {
	m := b.drawCandidates()
	b.scoreCandidates(m, best)
	idx := -1
	bestScore := math.Inf(-1)
	for i := 0; i < m; i++ {
		if b.cand.scores[i] > bestScore {
			bestScore = b.cand.scores[i]
			idx = i
		}
	}
	if idx < 0 {
		return b.space.Sample(b.rnd)
	}
	return b.cand.pts[idx].Clone()
}

// workers resolves the scoring worker count.
func (b *Bayes) workers() int {
	w := b.opts.ScoreWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// drawCandidates fills the pool with Candidates uniform samples plus
// LocalCandidates perturbations of the incumbent, reusing the pool's maps
// and unit buffers. Draws come from the optimizer's own stream, in the
// same order as serial asks, so a fixed seed proposes identical points
// regardless of scoring parallelism.
func (b *Bayes) drawCandidates() int {
	dims := len(b.space)
	m := b.opts.Candidates
	total := m
	if b.bestP != nil {
		total += b.opts.LocalCandidates
	}
	b.cand.ensure(total, dims, b.workers())
	for i := 0; i < m; i++ {
		b.space.SampleInto(b.rnd, b.cand.pts[i])
	}
	for i := m; i < total; i++ {
		b.perturbInto(b.cand.pts[i], b.bestP)
	}
	for i := 0; i < total; i++ {
		b.space.ToUnitInto(b.cand.pts[i], b.cand.uview[i])
	}
	return total
}

// perturbInto samples near src with per-dimension Gaussian steps (10% of
// range), snapped onto lattices.
func (b *Bayes) perturbInto(dst param.Point, src param.Point) {
	for _, d := range b.space {
		sigma := (d.Hi - d.Lo) * 0.1
		dst[d.Name] = d.Snap(src[d.Name] + b.rnd.Normal(0, sigma))
	}
}

// shard fans f over [0,m) across the scoring workers with deterministic
// contiguous ranges. Each worker owns its index range and its own scratch,
// so results are written by index and never contend.
func (b *Bayes) shard(m int, f func(lo, hi, worker int)) {
	workers := b.workers()
	if max := (m + predictBlock - 1) / predictBlock; workers > max {
		workers = max
	}
	if workers <= 1 {
		f(0, m, 0)
		return
	}
	// Chunks are multiples of the predict block so only the last worker
	// scores a partial block.
	chunk := (m + workers - 1) / workers
	chunk = (chunk + predictBlock - 1) / predictBlock * predictBlock
	var wg sync.WaitGroup
	for w := 0; w*chunk < m; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi, w int) {
			defer wg.Done()
			f(lo, hi, w)
		}(lo, hi, w)
	}
	wg.Wait()
}

// scoreCandidates computes acquisition scores for the first m pool
// candidates against the GP posterior, fanning the allocation-free batch
// predictor across the scoring workers.
func (b *Bayes) scoreCandidates(m int, best float64) {
	c := &b.cand
	b.shard(m, func(lo, hi, w int) {
		b.gp.PredictBatch(c.uview[lo:hi], c.mu[lo:hi], c.va[lo:hi], &c.scratch[w])
		for i := lo; i < hi; i++ {
			c.scores[i] = b.acquire(c.mu[i], c.va[i], best)
		}
	})
}

// acquire applies the configured acquisition function.
func (b *Bayes) acquire(mu, variance, best float64) float64 {
	if b.opts.Acq == AcqUCB {
		return UCB(mu, variance, b.opts.UCBBeta)
	}
	return ExpectedImprovement(mu, variance, best, b.opts.XI)
}

// askFantasies proposes rem points against the current evidence plus any
// already-fantasized rows. A single ask takes the same scoring path as
// serial Ask; larger batches score one shared candidate pool and run the
// constant-liar loop with O(n)-per-candidate incremental posterior updates
// against the fantasy overlay.
func (b *Bayes) askFantasies(rem int, lie float64) []param.Point {
	b.refit()
	best := b.incumbent()
	out := make([]param.Point, 0, rem)
	if rem == 1 || b.gp.N() == 0 {
		// Degenerate surrogate keeps the serial per-ask behavior: each ask
		// draws a fresh pool against the (prior) posterior.
		for len(out) < rem {
			p := b.askScored(best)
			out = append(out, p)
			if len(out) < rem {
				b.fantasize(p, lie)
				b.refit()
			}
		}
		return out
	}

	m := b.drawCandidates()
	c := &b.cand
	baseN := b.gp.N()
	stride := baseN + rem // room for the fantasy rows each solve may grow by
	c.mustd = growTo(c.mustd, m)
	c.vvs = growTo(c.vvs, m)
	c.kxx = growTo(c.kxx, m)
	c.vcache = growTo(c.vcache, m*stride)
	if cap(c.picked) < m {
		c.picked = make([]bool, m)
	}
	c.picked = c.picked[:m]
	for i := range c.picked {
		c.picked[i] = false
	}
	b.scorePoolBase(m, stride)
	// Standardization frozen at scoring time: if the model is lost
	// mid-batch (degraded), remaining picks keep selecting from the last
	// good scores without touching the GP.
	gmean, gstd := b.gp.mean, b.gp.std
	degraded := false
	for step := 0; step < rem; step++ {
		idx := -1
		bestScore := math.Inf(-1)
		for i := 0; i < m; i++ {
			if c.picked[i] {
				continue
			}
			mu := gmean + gstd*c.mustd[i]
			variance := c.kxx[i] - c.vvs[i]
			if variance < 1e-12 {
				variance = 1e-12
			}
			variance = variance * gstd * gstd
			if s := b.acquire(mu, variance, best); s > bestScore {
				bestScore = s
				idx = i
			}
		}
		if idx < 0 {
			out = append(out, b.space.Sample(b.rnd))
			continue
		}
		c.picked[idx] = true
		out = append(out, c.pts[idx].Clone())
		if step+1 == rem || degraded {
			continue
		}
		// Fantasize the pick against the shared factor and fold the new
		// row into every cached candidate solve in O(n).
		u := c.uview[idx]
		b.fantasize(c.pts[idx], lie)
		if !b.gp.appendFrozen(u, lie, b.gp.Noise) {
			// Positive definiteness broke. The GP either resynced itself
			// with jitter (rebuild the pool's solve cache and continue) or
			// emptied; then later picks reuse the last good scores and must
			// not fantasize against the cleared, unresolved model.
			if b.gp.N() == 0 {
				b.gpFail(len(b.obs))
				degraded = true
				continue
			}
			b.gpHi = len(b.obs)
			b.scorePoolBase(m, stride)
			gmean, gstd = b.gp.mean, b.gp.std
			continue
		}
		b.gpHi = len(b.obs)
		nn := b.gp.N()
		wNew := b.gp.w[nn-1]
		b.shard(m, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				if c.picked[i] {
					continue
				}
				vrow := c.vcache[i*stride : i*stride+nn-1]
				kv := b.gp.Kernel.Eval(u, c.uview[i])
				vnew := b.gp.fac.extendForward(vrow, kv)
				c.vcache[i*stride+nn-1] = vnew
				c.mustd[i] += vnew * wNew
				c.vvs[i] += vnew * vnew
			}
		})
	}
	return out
}

// scorePoolBase scores the pool against the current posterior keeping the
// per-candidate forward solves, standardized means, solve norms, and prior
// variances for incremental fantasy updates.
func (b *Bayes) scorePoolBase(m, stride int) {
	c := &b.cand
	n := b.gp.N()
	b.shard(m, func(lo, hi, w int) {
		sc := &c.scratch[w]
		sc.ensure(n)
		var vv, kxx [predictBlock]float64
		for base := lo; base < hi; base += predictBlock {
			cnt := hi - base
			if cnt > predictBlock {
				cnt = predictBlock
			}
			b.gp.scoreBlock(c.uview[base:base+cnt], sc.k, sc.v, c.mustd[base:base+cnt], vv[:cnt], kxx[:cnt])
			for t := 0; t < cnt; t++ {
				c.vvs[base+t] = vv[t]
				c.kxx[base+t] = kxx[t]
				vrow := c.vcache[(base+t)*stride:]
				for r := 0; r < n; r++ {
					vrow[r] = sc.v[r*predictBlock+t]
				}
			}
		}
	})
}

// refit brings the GP in sync with the observation window: new
// observations extend the factor by O(n^2) row appends, retracted
// fantasies truncate it, and only a slid MaxFit window (or a positive-
// definiteness failure, which falls back to pure exploration by clearing
// the model) pays a full O(n^3) refit. Per-observation noise realizes
// transfer down-weighting: foreign observations carry inflated noise
// rather than distorted targets.
func (b *Bayes) refit() {
	if !b.stale {
		return
	}
	b.stale = false
	hi := len(b.obs)
	lo := 0
	if hi > b.opts.MaxFit {
		lo = hi - b.opts.MaxFit
	}
	if lo != b.gpLo || b.gpHi < lo {
		if err := b.fullFit(lo, hi); err != nil {
			b.gpFail(lo)
			return
		}
		b.gpLo, b.gpHi = lo, hi
		return
	}
	if b.gpHi > hi {
		b.gpHi = hi
	}
	if b.gp.N() > b.gpHi-lo {
		if err := b.gp.Truncate(b.gpHi - lo); err != nil {
			b.gpFail(lo)
			return
		}
	}
	b.cand.ubuf = growTo(b.cand.ubuf, len(b.space))
	for i := b.gpHi; i < hi; i++ {
		o := b.obs[i]
		b.space.ToUnitInto(o.Point, b.cand.ubuf)
		if err := b.gp.Append(b.cand.ubuf, o.Value, b.obsNoise(o)); err != nil {
			b.gpFail(lo)
			return
		}
	}
	b.gpHi = hi
	if b.gp.frozen > 0 {
		b.gp.resolve()
	}
}

// obsNoise is the per-observation GP noise: transferred observations
// (Weight < 1) carry extra variance (1-w)/w on the standardized scale, so
// weight 1 is exact local evidence and weight -> 0 carries no information.
func (b *Bayes) obsNoise(o Observation) float64 {
	base := b.gp.Noise
	if o.Weight >= 1 || o.Weight <= 0 {
		return base
	}
	return base + (1-o.Weight)/o.Weight
}

// fullFit refits the GP from scratch on the observation window [lo, hi).
func (b *Bayes) fullFit(lo, hi int) error {
	n := hi - lo
	dims := len(b.space)
	c := &b.cand
	c.fitUnits = growTo(c.fitUnits, n*dims)
	c.fitYs = growTo(c.fitYs, n)
	c.fitNoise = growTo(c.fitNoise, n)
	if cap(c.fitXs) < n {
		c.fitXs = make([][]float64, n)
	}
	c.fitXs = c.fitXs[:n]
	for i := 0; i < n; i++ {
		o := b.obs[lo+i]
		c.fitXs[i] = c.fitUnits[i*dims : (i+1)*dims]
		b.space.ToUnitInto(o.Point, c.fitXs[i])
		c.fitYs[i] = o.Value
		c.fitNoise[i] = b.obsNoise(o)
	}
	return b.gp.FitNoise(c.fitXs, c.fitYs, c.fitNoise)
}

// gpFail falls back to pure exploration after an unfactorizable window
// (degenerate duplicates): the model is cleared and refits retry with
// inflated noise.
func (b *Bayes) gpFail(lo int) {
	b.gp = NewGP(b.opts.Kernel, b.opts.Noise*10)
	b.gpLo, b.gpHi = lo, lo
}

// Random is the uniform-sampling baseline.
type Random struct {
	space param.Space
	rnd   *rng.Stream
	n     int
	bestP param.Point
	bestV float64
}

// NewRandom builds the random-search baseline.
func NewRandom(space param.Space, rnd *rng.Stream) *Random {
	return &Random{space: space, rnd: rnd.Fork("random"), bestV: math.Inf(-1)}
}

// Ask implements Optimizer.
func (r *Random) Ask() param.Point { return r.space.Sample(r.rnd) }

// Tell implements Optimizer.
func (r *Random) Tell(p param.Point, v float64) {
	r.n++
	if v > r.bestV {
		r.bestV = v
		r.bestP = p.Clone()
	}
}

// Best implements Optimizer.
func (r *Random) Best() (param.Point, float64) { return r.bestP, r.bestV }

// N implements Optimizer.
func (r *Random) N() int { return r.n }

// Grid sweeps a fixed lattice: Levels points per dimension, row-major. The
// classical high-throughput strategy the paper contrasts with AI-driven
// search.
type Grid struct {
	space  param.Space
	levels int
	total  int // lattice size, saturated at MaxInt for huge spaces
	idx    int
	n      int
	bestP  param.Point
	bestV  float64
}

// NewGrid builds a grid search with the given per-dimension level count.
// The lattice size is computed once, saturating at MaxInt when
// levels^dims overflows (the paper's 10^13-condition spaces), where the
// phase-shifted restart simply never engages.
func NewGrid(space param.Space, levels int) *Grid {
	if levels < 2 {
		levels = 2
	}
	total := 1
	for range space {
		if total > math.MaxInt/levels {
			total = math.MaxInt
			break
		}
		total *= levels
	}
	return &Grid{space: space, levels: levels, total: total, bestV: math.Inf(-1)}
}

// Ask implements Optimizer. When the lattice is exhausted it restarts with
// a phase shift, so Ask never runs dry.
func (g *Grid) Ask() param.Point {
	i := g.idx % g.total
	pass := g.idx / g.total
	g.idx++
	p := make(param.Point, len(g.space))
	for _, d := range g.space {
		level := i % g.levels
		i /= g.levels
		frac := (float64(level) + 0.5*float64(pass%2)) / float64(g.levels-1)
		if frac > 1 {
			frac = 1
		}
		p[d.Name] = d.Snap(d.Lo + frac*(d.Hi-d.Lo))
	}
	return p
}

// Tell implements Optimizer.
func (g *Grid) Tell(p param.Point, v float64) {
	g.n++
	if v > g.bestV {
		g.bestV = v
		g.bestP = p.Clone()
	}
}

// Best implements Optimizer.
func (g *Grid) Best() (param.Point, float64) { return g.bestP, g.bestV }

// N implements Optimizer.
func (g *Grid) N() int { return g.n }
