package optimize

import (
	"math"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
)

// Optimizer is the ask/tell protocol campaigns drive: Ask proposes the next
// parameter point; Tell reports its measured objective (maximization).
type Optimizer interface {
	Ask() param.Point
	Tell(p param.Point, value float64)
	Best() (param.Point, float64)
	N() int
}

// Observation is one completed experiment.
type Observation struct {
	Point param.Point
	Value float64
	// Weight < 1 marks transferred observations from other facilities,
	// modelled as noisier evidence.
	Weight float64
}

// Acquisition selects the BO acquisition function.
type Acquisition int

// Acquisition choices.
const (
	AcqEI Acquisition = iota
	AcqUCB
)

// BayesOpts configures a Bayesian optimizer.
type BayesOpts struct {
	// InitSamples is the Latin-hypercube warm-up before the GP engages.
	// Default max(5, dims+2).
	InitSamples int
	// Candidates is the random candidate pool per Ask. Default 512.
	Candidates int
	// LocalCandidates perturb the incumbent. Default 64.
	LocalCandidates int
	// Acq selects the acquisition function. Default EI.
	Acq Acquisition
	// UCBBeta is the exploration weight for AcqUCB. Default 2.
	UCBBeta float64
	// XI is the EI exploration margin. Default 0.01.
	XI float64
	// Kernel overrides the default Matérn-5/2.
	Kernel Kernel
	// Noise is the GP observation-noise variance. Default 1e-4.
	Noise float64
	// MaxFit bounds the GP training-set size; older observations beyond the
	// bound are dropped (keeps O(n^3) fits tractable in long campaigns).
	// Default 256.
	MaxFit int
}

func (o *BayesOpts) defaults(dims int) {
	if o.InitSamples == 0 {
		o.InitSamples = dims + 2
		if o.InitSamples < 5 {
			o.InitSamples = 5
		}
	}
	if o.Candidates == 0 {
		o.Candidates = 512
	}
	if o.LocalCandidates == 0 {
		o.LocalCandidates = 64
	}
	if o.UCBBeta == 0 {
		o.UCBBeta = 2
	}
	if o.XI == 0 {
		o.XI = 0.01
	}
	if o.Kernel == nil {
		o.Kernel = defaultKernel(dims)
	}
	if o.Noise == 0 {
		o.Noise = 1e-4
	}
	if o.MaxFit == 0 {
		o.MaxFit = 256
	}
}

// Bayes is a Gaussian-process Bayesian optimizer with native support for
// discrete-continuous spaces: candidates are snapped to parameter lattices
// before scoring, the nested strategy the paper describes for real
// experimental hardware.
type Bayes struct {
	space param.Space
	rnd   *rng.Stream
	opts  BayesOpts

	obs      []Observation
	initPlan []param.Point
	gp       *GP
	stale    bool

	bestP param.Point
	bestV float64
}

// NewBayes builds a Bayesian optimizer over the space.
func NewBayes(space param.Space, rnd *rng.Stream, opts BayesOpts) *Bayes {
	opts.defaults(len(space))
	b := &Bayes{
		space: space,
		rnd:   rnd.Fork("bayes"),
		opts:  opts,
		gp:    NewGP(opts.Kernel, opts.Noise),
		bestV: math.Inf(-1),
	}
	b.initPlan = space.SampleLHS(b.rnd, opts.InitSamples)
	return b
}

// N implements Optimizer.
func (b *Bayes) N() int { return len(b.obs) }

// Best implements Optimizer.
func (b *Bayes) Best() (param.Point, float64) { return b.bestP, b.bestV }

// Seed imports observations from another facility (transfer learning).
// weight in (0,1] down-weights foreign evidence by inflating its noise.
func (b *Bayes) Seed(points []param.Point, values []float64, weight float64) {
	if weight <= 0 || weight > 1 {
		weight = 0.5
	}
	for i := range points {
		b.obs = append(b.obs, Observation{Point: points[i].Clone(), Value: values[i], Weight: weight})
		if values[i] > b.bestV {
			// Transferred best still counts as knowledge, but campaigns
			// track their own locally-confirmed best; we update bestP only
			// on local Tell. Stored here for the surrogate only.
			_ = i
		}
	}
	b.stale = true
	// Seeding replaces part of the LHS warm-up: each seeded point removes
	// one pending init sample.
	drop := len(points)
	if drop > len(b.initPlan) {
		drop = len(b.initPlan)
	}
	b.initPlan = b.initPlan[drop:]
}

// Tell implements Optimizer.
func (b *Bayes) Tell(p param.Point, value float64) {
	b.obs = append(b.obs, Observation{Point: p.Clone(), Value: value, Weight: 1})
	if value > b.bestV {
		b.bestV = value
		b.bestP = p.Clone()
	}
	b.stale = true
}

// AskBatch proposes k points for parallel evaluation using the
// constant-liar strategy: after each Ask, the pending point is given a
// fantasy observation at the worst value seen so far (CL-min), which
// collapses posterior variance around it and pushes subsequent asks toward
// unexplored regions. Points already in flight elsewhere (asked earlier
// but not yet told) are fantasized the same way first, so refill batches
// do not re-propose experiments that are still executing. The fantasies
// are retracted before returning, so the surrogate's real evidence is
// untouched. During the LHS warm-up the plan already spreads points, and
// the fantasies are harmless.
func (b *Bayes) AskBatch(k int, inflight []param.Point) []param.Point {
	if k <= 1 && len(inflight) == 0 {
		return []param.Point{b.Ask()}
	}
	if k < 1 {
		k = 1
	}
	lie := math.Inf(1)
	for _, o := range b.obs {
		if o.Value < lie {
			lie = o.Value
		}
	}
	if math.IsInf(lie, 1) {
		lie = 0
	}
	saved := len(b.obs)
	savedP, savedV := b.bestP, b.bestV
	for _, p := range inflight {
		b.obs = append(b.obs, Observation{Point: p.Clone(), Value: lie, Weight: 1})
	}
	b.stale = len(inflight) > 0 || b.stale
	out := make([]param.Point, 0, k)
	for i := 0; i < k; i++ {
		p := b.Ask()
		out = append(out, p)
		b.obs = append(b.obs, Observation{Point: p.Clone(), Value: lie, Weight: 1})
		b.stale = true
	}
	b.obs = b.obs[:saved]
	b.bestP, b.bestV = savedP, savedV
	b.stale = true
	return out
}

// Ask implements Optimizer.
func (b *Bayes) Ask() param.Point {
	if len(b.initPlan) > 0 {
		p := b.initPlan[0]
		b.initPlan = b.initPlan[1:]
		return p
	}
	if len(b.obs) == 0 {
		return b.space.Sample(b.rnd)
	}
	b.refit()

	best := b.bestV
	if math.IsInf(best, -1) {
		// Only transferred observations so far: use their max.
		for _, o := range b.obs {
			if o.Value > best {
				best = o.Value
			}
		}
	}

	var bestCand param.Point
	bestScore := math.Inf(-1)
	consider := func(p param.Point) {
		u := b.space.ToUnit(p)
		mu, v := b.gp.Predict(u)
		var score float64
		if b.opts.Acq == AcqUCB {
			score = UCB(mu, v, b.opts.UCBBeta)
		} else {
			score = ExpectedImprovement(mu, v, best, b.opts.XI)
		}
		if score > bestScore {
			bestScore = score
			bestCand = p
		}
	}

	for i := 0; i < b.opts.Candidates; i++ {
		consider(b.space.Sample(b.rnd))
	}
	// Local refinement around the incumbent.
	if b.bestP != nil {
		for i := 0; i < b.opts.LocalCandidates; i++ {
			consider(b.perturb(b.bestP))
		}
	}
	if bestCand == nil {
		return b.space.Sample(b.rnd)
	}
	return bestCand
}

// perturb samples near p with per-dimension Gaussian steps (10% of range),
// snapped onto lattices.
func (b *Bayes) perturb(p param.Point) param.Point {
	out := make(param.Point, len(b.space))
	for _, d := range b.space {
		sigma := (d.Hi - d.Lo) * 0.1
		out[d.Name] = d.Snap(p[d.Name] + b.rnd.Normal(0, sigma))
	}
	return out
}

// refit rebuilds the GP if observations changed, with per-observation noise
// realized by duplicating the noise through weights (foreign observations
// get inflated noise by scaling their target toward the mean — a standard
// cheap approximation that avoids heteroscedastic solvers).
func (b *Bayes) refit() {
	if !b.stale {
		return
	}
	b.stale = false

	obs := b.obs
	if len(obs) > b.opts.MaxFit {
		obs = obs[len(obs)-b.opts.MaxFit:]
	}
	xs := make([][]float64, len(obs))
	ys := make([]float64, len(obs))
	for i, o := range obs {
		xs[i] = b.space.ToUnit(o.Point)
		ys[i] = o.Value
	}
	// Weighted observations: shrink foreign targets toward the local mean
	// proportionally to (1-weight).
	var localSum float64
	var localN int
	for _, o := range obs {
		if o.Weight >= 1 {
			localSum += o.Value
			localN++
		}
	}
	if localN > 0 {
		mean := localSum / float64(localN)
		for i, o := range obs {
			if o.Weight < 1 {
				ys[i] = mean + (o.Value-mean)*o.Weight/(1.0)
			}
		}
	}
	// Fit errors (degenerate duplicates) fall back to pure exploration by
	// clearing the model.
	if err := b.gp.Fit(xs, ys); err != nil {
		b.gp = NewGP(b.opts.Kernel, b.opts.Noise*10)
	}
}

// Random is the uniform-sampling baseline.
type Random struct {
	space param.Space
	rnd   *rng.Stream
	n     int
	bestP param.Point
	bestV float64
}

// NewRandom builds the random-search baseline.
func NewRandom(space param.Space, rnd *rng.Stream) *Random {
	return &Random{space: space, rnd: rnd.Fork("random"), bestV: math.Inf(-1)}
}

// Ask implements Optimizer.
func (r *Random) Ask() param.Point { return r.space.Sample(r.rnd) }

// Tell implements Optimizer.
func (r *Random) Tell(p param.Point, v float64) {
	r.n++
	if v > r.bestV {
		r.bestV = v
		r.bestP = p.Clone()
	}
}

// Best implements Optimizer.
func (r *Random) Best() (param.Point, float64) { return r.bestP, r.bestV }

// N implements Optimizer.
func (r *Random) N() int { return r.n }

// Grid sweeps a fixed lattice: Levels points per dimension, row-major. The
// classical high-throughput strategy the paper contrasts with AI-driven
// search.
type Grid struct {
	space  param.Space
	levels int
	idx    int
	n      int
	bestP  param.Point
	bestV  float64
}

// NewGrid builds a grid search with the given per-dimension level count.
func NewGrid(space param.Space, levels int) *Grid {
	if levels < 2 {
		levels = 2
	}
	return &Grid{space: space, levels: levels, bestV: math.Inf(-1)}
}

// Ask implements Optimizer. When the lattice is exhausted it restarts with
// a phase shift, so Ask never runs dry.
func (g *Grid) Ask() param.Point {
	dims := len(g.space)
	total := 1
	for i := 0; i < dims; i++ {
		total *= g.levels
	}
	i := g.idx % total
	pass := g.idx / total
	g.idx++
	p := make(param.Point, dims)
	for _, d := range g.space {
		level := i % g.levels
		i /= g.levels
		frac := (float64(level) + 0.5*float64(pass%2)) / float64(g.levels-1)
		if frac > 1 {
			frac = 1
		}
		p[d.Name] = d.Snap(d.Lo + frac*(d.Hi-d.Lo))
	}
	return p
}

// Tell implements Optimizer.
func (g *Grid) Tell(p param.Point, v float64) {
	g.n++
	if v > g.bestV {
		g.bestV = v
		g.bestP = p.Clone()
	}
}

// Best implements Optimizer.
func (g *Grid) Best() (param.Point, float64) { return g.bestP, g.bestV }

// N implements Optimizer.
func (g *Grid) N() int { return g.n }
