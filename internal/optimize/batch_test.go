package optimize

import (
	"fmt"
	"testing"

	"github.com/aisle-sim/aisle/internal/rng"
)

func TestAskBatchNonDestructiveAndDiverse(t *testing.T) {
	b := NewBayes(sphereSpace(), rng.New(21), BayesOpts{InitSamples: 4})
	// Warm up past the LHS plan so batching engages the GP.
	for i := 0; i < 8; i++ {
		p := b.Ask()
		b.Tell(p, sphere(p))
	}
	nObs := b.N()
	_, bestV := b.Best()

	batch := b.AskBatch(6, nil)
	if len(batch) != 6 {
		t.Fatalf("AskBatch(6) returned %d points", len(batch))
	}
	if b.N() != nObs {
		t.Fatalf("fantasy observations leaked: N went %d -> %d", nObs, b.N())
	}
	if _, v := b.Best(); v != bestV {
		t.Fatalf("AskBatch moved the incumbent: %v -> %v", bestV, v)
	}
	seen := map[string]bool{}
	for _, p := range batch {
		key := fmt.Sprintf("%.6f/%.6f", p["x"], p["y"])
		if seen[key] {
			t.Fatalf("constant liar produced a duplicate point %v in %v", p, batch)
		}
		seen[key] = true
	}
	// The optimizer keeps working after a batch round-trip.
	for _, p := range batch {
		b.Tell(p, sphere(p))
	}
	if b.N() != nObs+6 {
		t.Fatalf("N after telling the batch = %d, want %d", b.N(), nObs+6)
	}
}

func TestAskBatchDegenerateSizes(t *testing.T) {
	b := NewBayes(sphereSpace(), rng.New(22), BayesOpts{})
	if got := b.AskBatch(1, nil); len(got) != 1 {
		t.Fatalf("AskBatch(1) returned %d points", len(got))
	}
	if got := b.AskBatch(0, nil); len(got) != 1 {
		t.Fatalf("AskBatch(0) returned %d points, want the single-ask fallback", len(got))
	}
}

func TestAskBatchAvoidsInflightPoints(t *testing.T) {
	b := NewBayes(sphereSpace(), rng.New(23), BayesOpts{InitSamples: 4})
	for i := 0; i < 10; i++ {
		p := b.Ask()
		b.Tell(p, sphere(p))
	}
	// With the incumbent region fantasized as in flight, a refill ask must
	// not return the same point the fleet is already measuring.
	inflight := b.AskBatch(3, nil)
	refill := b.AskBatch(3, inflight)
	if b.N() != 10 {
		t.Fatalf("fantasies leaked: N = %d, want the 10 real observations", b.N())
	}
	for _, r := range refill {
		for _, f := range inflight {
			if r["x"] == f["x"] && r["y"] == f["y"] {
				t.Fatalf("refill re-proposed in-flight point %v (inflight %v, refill %v)",
					r, inflight, refill)
			}
		}
	}
}
