package optimize

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/aisle-sim/aisle/internal/rng"
)

// Property: any matrix of the form B*B^T + I is SPD, must factorize, and
// the factorization must solve linear systems to tight residuals.
func TestPropertyCholeskySolvesSPD(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(6)
		b := make([][]float64, n)
		for i := range b {
			b[i] = make([]float64, n)
			for j := range b[i] {
				b[i][j] = r.Normal(0, 1)
			}
		}
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				var s float64
				for k := 0; k < n; k++ {
					s += b[i][k] * b[j][k]
				}
				a[i][j] = s
				if i == j {
					a[i][j] += 1
				}
			}
		}
		l, ok := factorDense(a)
		if !ok {
			return false
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = r.Normal(0, 1)
		}
		x := cholSolveDense(l, rhs)
		for i := range a {
			var s float64
			for j := range a[i] {
				s += a[i][j] * x[j]
			}
			if math.Abs(s-rhs[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: GP posterior variance is non-negative everywhere and the
// posterior mean at any point stays within a modest extrapolation band of
// the target range (standardized GPs revert to the mean away from data).
func TestPropertyGPPosteriorSane(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 3 + r.Intn(10)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = []float64{r.Float64(), r.Float64()}
			ys[i] = r.Normal(0, 3)
			lo = math.Min(lo, ys[i])
			hi = math.Max(hi, ys[i])
		}
		// Moderate noise keeps the solve well-conditioned; near-duplicate
		// inputs with conflicting targets otherwise produce legitimate
		// (but unbounded) interpolation overshoot.
		g := NewGP(Matern52{LengthScale: 0.4, Variance: 1}, 1e-2)
		if err := g.Fit(xs, ys); err != nil {
			return false
		}
		span := hi - lo + 1e-9
		for probe := 0; probe < 20; probe++ {
			mu, v := g.Predict([]float64{r.Float64(), r.Float64()})
			if v < 0 || math.IsNaN(mu) || math.IsNaN(v) {
				return false
			}
			if mu < lo-5*span || mu > hi+5*span {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bayes.Ask always returns a point inside the space, regardless
// of what values Tell has seen (including extreme ones).
func TestPropertyBayesAskInSpace(t *testing.T) {
	f := func(seed uint32, raw []int8) bool {
		b := NewBayes(sphereSpace(), rng.New(uint64(seed)), BayesOpts{InitSamples: 3})
		for i, v := range raw {
			if i > 20 {
				break
			}
			p := b.Ask()
			if err := sphereSpace().Validate(p); err != nil {
				return false
			}
			b.Tell(p, float64(v)*1e6) // extreme targets
		}
		p := b.Ask()
		return sphereSpace().Validate(p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
