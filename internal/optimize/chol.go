package optimize

import "math"

// cholFactor is a lower-triangular Cholesky factor in packed row-major
// storage: row i occupies l[i*(i+1)/2 : i*(i+1)/2+i+1]. The packed layout
// makes the two operations the incremental GP engine lives on cheap:
// appending a row is an append to the flat slice (O(n) memory movement,
// amortized zero allocation), and retracting trailing rows — how constant-
// liar fantasy observations are withdrawn — is a slice truncation, O(1).
type cholFactor struct {
	n int
	l []float64
}

// rowOff is the offset of row i in packed storage.
func rowOff(i int) int { return i * (i + 1) / 2 }

// reset empties the factor, keeping capacity.
func (f *cholFactor) reset() {
	f.n = 0
	f.l = f.l[:0]
}

// truncate retracts the factor to its leading n rows. Because appending
// rows never touches earlier rows, the leading submatrix factor is exactly
// the factor that would have been computed for the first n points alone.
func (f *cholFactor) truncate(n int) {
	if n < f.n {
		f.n = n
		f.l = f.l[:rowOff(n)]
	}
}

// at returns L[i][j] (j <= i), for tests and diagnostics.
func (f *cholFactor) at(i, j int) float64 { return f.l[rowOff(i)+j] }

// factorize computes the factor of the symmetric matrix whose packed lower
// triangle (diagonal included) is in a, adding jitter to the diagonal. It
// reports whether the matrix (plus jitter) was positive definite. The
// elimination order and arithmetic match the textbook row-by-row algorithm,
// so an append performed later reproduces bit-identical entries.
func (f *cholFactor) factorize(a []float64, n int, jitter float64) bool {
	f.n = n
	need := rowOff(n)
	if cap(f.l) < need {
		f.l = make([]float64, need)
	}
	f.l = f.l[:need]
	l := f.l
	for i := 0; i < n; i++ {
		ri := rowOff(i)
		for j := 0; j <= i; j++ {
			s := a[ri+j]
			if i == j {
				s += jitter
			}
			rj := rowOff(j)
			for k := 0; k < j; k++ {
				s -= l[ri+k] * l[rj+k]
			}
			if i == j {
				if s <= 0 {
					return false
				}
				l[ri+i] = math.Sqrt(s)
			} else {
				l[ri+j] = s / l[rj+j]
			}
		}
	}
	return true
}

// appendRow extends an n-row factor to n+1 rows in O(n^2): row holds the
// covariances k(x_new, x_i) for the existing i < n and diag holds
// k(x_new, x_new) plus noise. It reports false — leaving the factor
// untouched — when the extended matrix is not positive definite, in which
// case the caller refactorizes from scratch with jitter escalation.
//
// The arithmetic is exactly the last row of factorize: the off-diagonal
// entries are the forward solve L c = row and the diagonal is
// sqrt(diag - c.c), so incremental growth is bit-identical to a from-
// scratch factorization of the extended matrix.
func (f *cholFactor) appendRow(row []float64, diag float64) bool {
	n := f.n
	off := rowOff(n)
	if cap(f.l) < off+n+1 {
		grown := make([]float64, off, 2*(off+n+1))
		copy(grown, f.l)
		f.l = grown
	}
	l := f.l[:off+n+1]
	for j := 0; j < n; j++ {
		s := row[j]
		rj := rowOff(j)
		for k := 0; k < j; k++ {
			s -= l[off+k] * l[rj+k]
		}
		l[off+j] = s / l[rj+j]
	}
	s := diag
	for k := 0; k < n; k++ {
		s -= l[off+k] * l[off+k]
	}
	if s <= 0 {
		return false
	}
	l[off+n] = math.Sqrt(s)
	f.l = l
	f.n = n + 1
	return true
}

// forwardInto solves L y = b into dst (dst may alias b).
func (f *cholFactor) forwardInto(dst, b []float64) {
	l := f.l
	for i := 0; i < f.n; i++ {
		ri := rowOff(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[ri+k] * dst[k]
		}
		dst[i] = s / l[ri+i]
	}
}

// backInto solves L^T x = y into dst (dst may alias y).
func (f *cholFactor) backInto(dst, y []float64) {
	l := f.l
	for i := f.n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < f.n; k++ {
			s -= l[rowOff(k)+i] * dst[k]
		}
		dst[i] = s / l[rowOff(i)+i]
	}
}

// extendForward computes the next forward-solve entry for a freshly
// appended row n-1: given the solve prefix w[0:n-1] for the first n-1
// rows, it returns w[n-1] for right-hand side entry b.
func (f *cholFactor) extendForward(w []float64, b float64) float64 {
	i := f.n - 1
	ri := rowOff(i)
	l := f.l
	s := b
	for k := 0; k < i; k++ {
		s -= l[ri+k] * w[k]
	}
	return s / l[ri+i]
}
