package optimize

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/twin"
)

// packLower packs the lower triangle (diagonal included) of a dense
// symmetric matrix into the flat layout cholFactor consumes.
func packLower(a [][]float64) []float64 {
	var out []float64
	for i := range a {
		out = append(out, a[i][:i+1]...)
	}
	return out
}

// factorDense factorizes a dense SPD matrix without jitter, for tests.
func factorDense(a [][]float64) (*cholFactor, bool) {
	var f cholFactor
	ok := f.factorize(packLower(a), len(a), 0)
	return &f, ok
}

// cholSolveDense solves (L L^T) x = b, for tests.
func cholSolveDense(f *cholFactor, b []float64) []float64 {
	x := make([]float64, len(b))
	f.forwardInto(x, b)
	f.backInto(x, x)
	return x
}

func TestCholeskyKnownFactor(t *testing.T) {
	a := [][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	}
	l, ok := factorDense(a)
	if !ok {
		t.Fatal("SPD matrix failed to factorize")
	}
	want := [][]float64{
		{2},
		{6, 1},
		{-8, 5, 3},
	}
	for i := range want {
		for j := range want[i] {
			if math.Abs(l.at(i, j)-want[i][j]) > 1e-9 {
				t.Fatalf("L[%d][%d] = %v, want %v", i, j, l.at(i, j), want[i][j])
			}
		}
	}
}

func TestCholeskySolveIdentity(t *testing.T) {
	// Solve (LL^T) x = b and check A x = b.
	a := [][]float64{
		{6, 2, 1},
		{2, 5, 2},
		{1, 2, 4},
	}
	b := []float64{1, -2, 3}
	l, ok := factorDense(a)
	if !ok {
		t.Fatal("SPD matrix failed to factorize")
	}
	x := cholSolveDense(l, b)
	for i := range a {
		var s float64
		for j := range a[i] {
			s += a[i][j] * x[j]
		}
		if math.Abs(s-b[i]) > 1e-9 {
			t.Fatalf("residual row %d: %v vs %v", i, s, b[i])
		}
	}
}

func TestCholeskyAppendRowMatchesFull(t *testing.T) {
	// Growing a factor row by row must equal factorizing the full matrix.
	a := [][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	}
	full, ok := factorDense(a)
	if !ok {
		t.Fatal("full factorization failed")
	}
	var inc cholFactor
	for i := range a {
		if !inc.appendRow(a[i][:i], a[i][i]) {
			t.Fatalf("appendRow %d failed", i)
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j <= i; j++ {
			if inc.at(i, j) != full.at(i, j) {
				t.Fatalf("incremental L[%d][%d] = %v, full = %v", i, j, inc.at(i, j), full.at(i, j))
			}
		}
	}
	// Retracting the last row recovers the leading 2x2 factor exactly.
	inc.truncate(2)
	for i := 0; i < 2; i++ {
		for j := 0; j <= i; j++ {
			if inc.at(i, j) != full.at(i, j) {
				t.Fatalf("truncated L[%d][%d] = %v, want %v", i, j, inc.at(i, j), full.at(i, j))
			}
		}
	}
}

func TestKernelProperties(t *testing.T) {
	kernels := []Kernel{
		RBF{LengthScale: 0.5, Variance: 2},
		Matern52{LengthScale: 0.5, Variance: 2},
	}
	f := func(a, b [3]uint8) bool {
		x := []float64{float64(a[0]) / 255, float64(a[1]) / 255, float64(a[2]) / 255}
		y := []float64{float64(b[0]) / 255, float64(b[1]) / 255, float64(b[2]) / 255}
		for _, k := range kernels {
			kxy := k.Eval(x, y)
			kyx := k.Eval(y, x)
			kxx := k.Eval(x, x)
			// symmetry, boundedness by variance, self-covariance = variance
			if math.Abs(kxy-kyx) > 1e-12 {
				return false
			}
			if kxy > kxx+1e-12 {
				return false
			}
			if math.Abs(kxx-2) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGPInterpolatesTrainingData(t *testing.T) {
	g := NewGP(RBF{LengthScale: 0.3, Variance: 1}, 1e-8)
	xs := [][]float64{{0.1}, {0.4}, {0.7}, {0.95}}
	ys := []float64{1, 3, 2, 5}
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, v := g.Predict(x)
		if math.Abs(mu-ys[i]) > 0.01 {
			t.Fatalf("GP at training point %v: mean %v, want ~%v", x, mu, ys[i])
		}
		if v > 0.01 {
			t.Fatalf("GP at training point: variance %v, want ~0", v)
		}
	}
}

func TestGPUncertaintyGrowsAwayFromData(t *testing.T) {
	g := NewGP(RBF{LengthScale: 0.1, Variance: 1}, 1e-6)
	if err := g.Fit([][]float64{{0.5}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Predict([]float64{0.5})
	_, vFar := g.Predict([]float64{0.0})
	if vFar <= vNear {
		t.Fatalf("variance should grow away from data: near %v far %v", vNear, vFar)
	}
}

func TestGPEmptyPredictsPrior(t *testing.T) {
	g := NewGP(RBF{LengthScale: 0.3, Variance: 1}, 1e-6)
	mu, v := g.Predict([]float64{0.3})
	if mu != 0 || v != 1 {
		t.Fatalf("empty GP prior = (%v, %v), want (0, 1)", mu, v)
	}
}

func TestGPDuplicatePointsSurvive(t *testing.T) {
	g := NewGP(RBF{LengthScale: 0.3, Variance: 1}, 1e-6)
	xs := [][]float64{{0.5}, {0.5}, {0.5}}
	ys := []float64{1, 1.1, 0.9}
	if err := g.Fit(xs, ys); err != nil {
		t.Fatalf("duplicate points broke the fit: %v", err)
	}
	mu, _ := g.Predict([]float64{0.5})
	if math.Abs(mu-1.0) > 0.1 {
		t.Fatalf("duplicate-point mean = %v, want ~1.0", mu)
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	// Zero variance -> zero EI.
	if ExpectedImprovement(10, 0, 5, 0.01) != 0 {
		t.Fatal("EI with zero variance should be 0")
	}
	// Higher mean -> higher EI.
	lo := ExpectedImprovement(1, 1, 2, 0.01)
	hi := ExpectedImprovement(3, 1, 2, 0.01)
	if hi <= lo {
		t.Fatal("EI should increase with mean")
	}
	// EI is non-negative.
	if ExpectedImprovement(-10, 0.5, 5, 0.01) < 0 {
		t.Fatal("EI must be non-negative")
	}
}

func TestUCBTradeoff(t *testing.T) {
	if UCB(1, 4, 2) != 5 {
		t.Fatalf("UCB(1,4,2) = %v, want 5", UCB(1, 4, 2))
	}
}

// sphere is a simple concave test objective with optimum at 0.7.
func sphere(p param.Point) float64 {
	d := p["x"] - 0.7
	e := p["y"] - 0.3
	return 1 - d*d - e*e
}

func sphereSpace() param.Space {
	return param.Space{{Name: "x", Lo: 0, Hi: 1}, {Name: "y", Lo: 0, Hi: 1}}
}

func TestBayesBeatsRandomOnSphere(t *testing.T) {
	run := func(opt Optimizer, budget int) float64 {
		for i := 0; i < budget; i++ {
			p := opt.Ask()
			opt.Tell(p, sphere(p))
		}
		_, v := opt.Best()
		return v
	}
	const budget = 30
	var bayesWins int
	const replicas = 10
	for rep := 0; rep < replicas; rep++ {
		seed := rng.New(uint64(100 + rep))
		b := run(NewBayes(sphereSpace(), seed.Fork("b"), BayesOpts{}), budget)
		r := run(NewRandom(sphereSpace(), seed.Fork("r")), budget)
		if b >= r {
			bayesWins++
		}
	}
	if bayesWins < 7 {
		t.Fatalf("Bayes won only %d/%d replicas against random on an easy surface", bayesWins, replicas)
	}
}

func TestBayesFindsPerovskiteRidge(t *testing.T) {
	m := twin.Perovskite{}
	b := NewBayes(m.Space(), rng.New(11), BayesOpts{})
	for i := 0; i < 60; i++ {
		p := b.Ask()
		b.Tell(p, m.Eval(p)["plqy"])
	}
	_, v := b.Best()
	if v < 0.55 {
		t.Fatalf("BO best after 60 evals = %v, want > 0.55", v)
	}
}

func TestBayesRespectsLattice(t *testing.T) {
	space := param.Space{
		{Name: "k", Lo: 0, Hi: 10, Step: 1},
		{Name: "x", Lo: 0, Hi: 1},
	}
	b := NewBayes(space, rng.New(12), BayesOpts{InitSamples: 4})
	for i := 0; i < 25; i++ {
		p := b.Ask()
		if p["k"] != math.Trunc(p["k"]) {
			t.Fatalf("Ask proposed off-lattice point %v", p)
		}
		b.Tell(p, -math.Abs(p["k"]-7)-math.Abs(p["x"]-0.5))
	}
	bp, _ := b.Best()
	if bp["k"] != math.Trunc(bp["k"]) {
		t.Fatal("best point off lattice")
	}
}

func TestBayesSeedAcceleratesConvergence(t *testing.T) {
	m := twin.Perovskite{}
	// Donor campaign gathers knowledge.
	donor := NewBayes(m.Space(), rng.New(21), BayesOpts{})
	var pts []param.Point
	var vals []float64
	for i := 0; i < 40; i++ {
		p := donor.Ask()
		v := m.Eval(p)["plqy"]
		donor.Tell(p, v)
		pts = append(pts, p)
		vals = append(vals, v)
	}

	const budget = 15
	wins := 0
	const reps = 8
	for rep := 0; rep < reps; rep++ {
		seedStream := rng.New(uint64(300 + rep))
		cold := NewBayes(m.Space(), seedStream.Fork("cold"), BayesOpts{})
		warm := NewBayes(m.Space(), seedStream.Fork("warm"), BayesOpts{})
		warm.Seed(pts, vals, 0.7)
		run := func(b *Bayes) float64 {
			for i := 0; i < budget; i++ {
				p := b.Ask()
				b.Tell(p, m.Eval(p)["plqy"])
			}
			_, v := b.Best()
			return v
		}
		if run(warm) >= run(cold) {
			wins++
		}
	}
	if wins < 5 {
		t.Fatalf("seeded optimizer won only %d/%d replicas", wins, reps)
	}
}

func TestGridCoversSpace(t *testing.T) {
	g := NewGrid(sphereSpace(), 3)
	seen := map[string]bool{}
	for i := 0; i < 9; i++ {
		p := g.Ask()
		seen[p.Key()] = true
		g.Tell(p, sphere(p))
	}
	if len(seen) != 9 {
		t.Fatalf("grid produced %d distinct points, want 9", len(seen))
	}
	// Exhausted grid keeps producing (phase-shifted pass).
	p := g.Ask()
	if p == nil {
		t.Fatal("grid ran dry")
	}
}

func TestRandomTracksBest(t *testing.T) {
	r := NewRandom(sphereSpace(), rng.New(13))
	var maxSeen float64 = math.Inf(-1)
	for i := 0; i < 50; i++ {
		p := r.Ask()
		v := sphere(p)
		if v > maxSeen {
			maxSeen = v
		}
		r.Tell(p, v)
	}
	_, best := r.Best()
	if best != maxSeen {
		t.Fatalf("Best = %v, want %v", best, maxSeen)
	}
	if r.N() != 50 {
		t.Fatalf("N = %d", r.N())
	}
}

func TestBayesDeterministicGivenSeed(t *testing.T) {
	run := func() []string {
		b := NewBayes(sphereSpace(), rng.New(99), BayesOpts{})
		var keys []string
		for i := 0; i < 15; i++ {
			p := b.Ask()
			keys = append(keys, p.Key())
			b.Tell(p, sphere(p))
		}
		return keys
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("asks diverged at %d: %s vs %s", i, a[i], bb[i])
		}
	}
}

func TestUCBAcquisitionMode(t *testing.T) {
	b := NewBayes(sphereSpace(), rng.New(14), BayesOpts{Acq: AcqUCB})
	for i := 0; i < 25; i++ {
		p := b.Ask()
		b.Tell(p, sphere(p))
	}
	_, v := b.Best()
	if v < 0.8 {
		t.Fatalf("UCB best = %v, want > 0.8", v)
	}
}

func TestMaxFitWindow(t *testing.T) {
	b := NewBayes(sphereSpace(), rng.New(15), BayesOpts{MaxFit: 20})
	for i := 0; i < 60; i++ {
		p := b.Ask()
		b.Tell(p, sphere(p))
	}
	b.refit()
	if b.gp.N() > 20 {
		t.Fatalf("GP fitted on %d points, want <= 20", b.gp.N())
	}
}
