package experiments

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/core"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/twin"
	"github.com/aisle-sim/aisle/internal/workflow"
)

func init() {
	register("E13", "M2/M3: fault-tolerant cross-facility workflows under instrument and link failures", runE13)
	register("E13a", "ablation: workflow completion vs retry budget", runE13a)
}

// buildFaultyFederation assembles a 3-site federation whose reactors fail
// often and whose links flap, the hostile environment M3's fault-tolerant
// coordination must survive.
func buildFaultyFederation(seed uint64, failureProb float64, linkFlaps bool) *core.Network {
	sites := siteNames(3)
	n := core.New(core.Config{
		Seed:  seed,
		Sites: sites,
		Link:  core.DefaultLink(),
	})
	model := twin.Perovskite{}
	for _, id := range sites {
		s := n.Site(id)
		in := instrument.New(n.Eng, n.Rnd, instrument.Config{
			Descriptor: instrument.Descriptor{
				ID: "reactor-" + string(id), Kind: instrument.KindFlowReactor,
				Vendor: "SimCo", ModelName: "DropletFlow X", Site: string(id),
				Actions: []instrument.ActionSpec{{
					Name: "synthesize", Space: model.Space(), Duration: 15 * sim.Second,
				}},
				Capabilities: map[string]float64{"throughput_per_hr": 240},
			},
			Twin:           twin.NewTwin(model, twin.Noise{Rel: 0.04}),
			FailureProb:    failureProb,
			RepairTime:     20 * sim.Minute,
			DurationJitter: 0.08,
		})
		s.AddInstrument(in)
		s.AddInstrument(instrument.NewSpectrometer(n.Eng, n.Rnd, "spec-"+string(id), string(id)))
	}
	if linkFlaps {
		// Links fail for 2 minutes every 20 minutes, staggered per pair.
		flapper := n.Rnd.Fork("flaps")
		var flap func()
		flap = func() {
			a := sites[flapper.Intn(len(sites))]
			b := sites[flapper.Intn(len(sites))]
			if a != b {
				n.Net.SetLinkUp(a, b, false)
				n.Eng.Schedule(2*sim.Minute, func() { n.Net.SetLinkUp(a, b, true) })
			}
			n.Eng.Schedule(20*sim.Minute, flap)
		}
		n.Eng.Schedule(10*sim.Minute, flap)
	}
	_ = n.RunFor(3 * sim.Minute)
	return n
}

// e13Spec builds the cross-facility DAG: per sample, synthesize at the
// home site then characterize wherever a spectrometer is available; a
// final aggregation joins everything.
func e13Spec(n *core.Network, samples int, retries int, point param.Point) *workflow.Spec {
	spec := workflow.NewSpec("materials-pipeline")
	sites := n.Sites()
	for i := 0; i < samples; i++ {
		i := i
		home := n.Site(sites[i%len(sites)])
		synthID := fmt.Sprintf("synth-%02d", i)
		spec.MustAdd(workflow.Task{
			ID: synthID, Retries: retries, Backoff: retryBackoff,
			Run: func(ctx workflow.Ctx, done func(any, error)) {
				rec, ok := home.FindInstrument(instrument.KindFlowReactor, nil, "")
				if !ok {
					done(nil, core.ErrNoInstrument)
					return
				}
				home.RunInstrument(rec, instrument.Command{
					Action: "synthesize", Params: point, SampleID: synthID,
				}, 4*sim.Hour, func(res instrument.Result, err error) {
					if err != nil {
						done(nil, err)
						return
					}
					done(res.Values["plqy"], nil)
				})
			},
		})
		spec.MustAdd(workflow.Task{
			ID: fmt.Sprintf("char-%02d", i), Needs: []string{synthID},
			Retries: retries, Backoff: retryBackoff,
			Run: func(ctx workflow.Ctx, done func(any, error)) {
				rec, ok := home.FindInstrument(instrument.KindSpectrometer, nil, "throughput_per_hr")
				if !ok {
					done(nil, core.ErrNoInstrument)
					return
				}
				home.RunInstrument(rec, instrument.Command{
					Action: "spectrum",
					Params: param.Point{"scan_resolution": 1, "exposure_s": 30},
				}, 4*sim.Hour, func(res instrument.Result, err error) {
					done(res.Values, err)
				})
			},
		})
	}
	needs := make([]string, samples)
	for i := range needs {
		needs[i] = fmt.Sprintf("char-%02d", i)
	}
	spec.MustAdd(workflow.Task{
		ID: "aggregate", Needs: needs,
		Run: func(ctx workflow.Ctx, done func(any, error)) { done(len(ctx.Results), nil) },
	})
	return spec
}

// retryBackoff is the base backoff between workflow retries.
const retryBackoff = 5 * sim.Minute

func e13Round(seed uint64, retries int, failureProb float64, flaps bool, samples int) (completed, failed float64, makespanH float64, retriesUsed float64) {
	n := buildFaultyFederation(seed, failureProb, flaps)
	defer n.Stop()
	point := param.Point{"temperature": 150, "halide_ratio": 0.5, "residence_s": 60, "ligand_mM": 15}
	spec := e13Spec(n, samples, retries, point)

	var rep *workflow.Report
	n.Workflows.Run(spec, nil, func(r *workflow.Report) { rep = r })
	deadline := n.Eng.Now() + 30*sim.Day
	for rep == nil && n.Eng.Now() < deadline {
		_ = n.RunFor(sim.Hour)
	}
	if rep == nil {
		return 0, float64(samples*2 + 1), 0, 0
	}
	return float64(rep.Completed), float64(rep.Failed), rep.Makespan().Seconds() / 3600, float64(rep.Retries)
}

// runE13 reproduces M2/M3: end-to-end cross-facility workflows completing
// despite instrument failures and link flaps, contingent on fault-tolerant
// coordination (retries + rediscovery).
func runE13(o Options) []*telemetry.Table {
	reps := o.replicas()
	samples := o.scale(12, 6)
	failureProb := 0.15

	type result struct{ completed, failed, makespanH, retries float64 }
	run := func(retries int) []result {
		return parMap(reps, func(rep int) result {
			c, f, m, rt := e13Round(o.Seed+uint64(rep)*97, retries, failureProb, true, samples)
			return result{c, f, m, rt}
		})
	}
	naive := run(0)
	tolerant := run(4)

	total := float64(samples*2 + 1)
	t := &telemetry.Table{
		Name: "E13",
		Caption: fmt.Sprintf("%d-task cross-facility pipeline, 15%% instrument failure rate, flapping links (mean of %d replicas)",
			samples*2+1, reps),
		Columns: []string{"coordination", "tasks completed", "tasks failed", "completion rate", "retries used", "makespan (h)"},
	}
	t.AddRow("naive (no retries)",
		meanOf(naive, func(r result) float64 { return r.completed }),
		meanOf(naive, func(r result) float64 { return r.failed }),
		fmt.Sprintf("%.1f%%", 100*meanOf(naive, func(r result) float64 { return r.completed })/total),
		meanOf(naive, func(r result) float64 { return r.retries }),
		meanOf(naive, func(r result) float64 { return r.makespanH }))
	t.AddRow("fault-tolerant (4 retries + backoff)",
		meanOf(tolerant, func(r result) float64 { return r.completed }),
		meanOf(tolerant, func(r result) float64 { return r.failed }),
		fmt.Sprintf("%.1f%%", 100*meanOf(tolerant, func(r result) float64 { return r.completed })/total),
		meanOf(tolerant, func(r result) float64 { return r.retries }),
		meanOf(tolerant, func(r result) float64 { return r.makespanH }))
	t.AddNote("paper claim (M2/M3): adaptive fault-tolerant coordination sustains cross-facility workflows")
	return []*telemetry.Table{t}
}

// runE13a sweeps the retry budget — the ablation behind the coordination
// design choice.
func runE13a(o Options) []*telemetry.Table {
	reps := o.replicas()
	samples := o.scale(10, 5)
	total := float64(samples*2 + 1)

	t := &telemetry.Table{
		Name:    "E13a",
		Caption: "completion rate vs retry budget (15% instrument failure rate)",
		Columns: []string{"retries", "completion rate", "makespan (h)"},
	}
	for _, retries := range []int{0, 1, 2, 4, 8} {
		rows := parMap(reps, func(rep int) [2]float64 {
			c, _, m, _ := e13Round(o.Seed+uint64(rep)*389+uint64(retries), retries, 0.15, false, samples)
			return [2]float64{c, m}
		})
		t.AddRow(retries,
			fmt.Sprintf("%.1f%%", 100*meanOf(rows, func(r [2]float64) float64 { return r[0] })/total),
			meanOf(rows, func(r [2]float64) float64 { return r[1] }))
	}
	return []*telemetry.Table{t}
}
