package experiments

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/security"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

func init() {
	register("E6", "M11: zero-trust communication — sub-second latency, failover, continuous authn", runE6)
	register("E7", "M10 / ref [20]: sync RPC vs async queue vs pub/sub under loss", runE7)
}

// commsNet builds a two-site WAN plus a third site hosting the failover
// replica.
func commsNet(seed uint64, loss float64) (*sim.Engine, *netsim.Network, *bus.Fabric) {
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(seed))
	for _, s := range []netsim.SiteID{"ornl", "anl", "slac"} {
		net.AddSite(s).Firewall.AllowAll()
	}
	net.FullMesh([]netsim.SiteID{"ornl", "anl", "slac"},
		netsim.Link{Latency: 15 * sim.Millisecond, Jitter: sim.Millisecond, Bandwidth: 125e6, Loss: loss})
	return eng, net, bus.NewFabric(net)
}

// runE6 reproduces M11: zero-trust agent coordination with sub-second
// latency, automatic failover, and continuous authentication.
func runE6(o Options) []*telemetry.Table {
	calls := o.scale(2000, 300)

	runScenario := func(zeroTrust, kill bool) (p50, p99 float64, okRate float64, renewals int, authFail int64) {
		eng, net, fab := commsNet(o.Seed, 0.001)
		fed := security.NewFederation(eng)
		idp := security.NewIdentityProvider(eng, "ornl", []byte("k"))
		idp.TokenTTL = 30 * sim.Second
		fed.RegisterIdP(idp)
		fed.TrustAll([]netsim.SiteID{"ornl", "anl", "slac"})
		pdp := &security.PDP{}
		pdp.AddPolicy(security.Policy{Name: "agents", Resource: "*", Action: "call",
			Conditions: []security.Condition{{Attr: "role", Op: security.OpEquals, Value: "agent"}}})
		guard := &security.Guard{Fed: fed, PDP: pdp}
		if zeroTrust {
			fab.Use(security.BusMiddleware(guard))
		}
		tm := security.NewTokenManager(idp,
			security.Principal{ID: "agent-1", Attributes: map[string]string{"role": "agent"}}, "")
		defer tm.Stop()

		handler := func(*bus.Envelope) (any, error) { return "ok", nil }
		fab.Broker("anl").RegisterFunc("svc", 2*sim.Millisecond, handler)
		fab.Broker("slac").RegisterFunc("svc", 2*sim.Millisecond, handler)

		if kill {
			// Primary endpoint dies a quarter of the way through the run;
			// calls must fail over to slac.
			killAt := sim.Time(calls) * 60 * sim.Millisecond / 4
			eng.Schedule(killAt, func() { net.SetLinkUp("ornl", "anl", false) })
		}

		var lat []float64
		okCount := 0
		issued := 0
		var tick func()
		tick = func() {
			if issued >= calls {
				return
			}
			issued++
			start := eng.Now()
			fab.Call(bus.CallOpts{
				From:       bus.Address{Site: "ornl", Name: "agent-1"},
				To:         bus.Address{Site: "anl", Name: "svc"},
				Alternates: []bus.Address{{Site: "slac", Name: "svc"}},
				Method:     "svc",
				Token:      tm.Token(),
				Timeout:    250 * sim.Millisecond,
				Retries:    4,
			}, func(_ any, err error) {
				if err == nil {
					okCount++
					lat = append(lat, (eng.Now() - start).Seconds())
				}
			})
			eng.Schedule(60*sim.Millisecond, tick)
		}
		eng.Schedule(0, tick)
		_ = eng.RunUntil(sim.Time(calls)*70*sim.Millisecond + sim.Minute)

		st := telemetry.Summarize(lat)
		return st.Median, st.P99, float64(okCount) / float64(calls), tm.Renewals(),
			fed.Metrics().Counter("security.authn_failures").Value()
	}

	t := &telemetry.Table{
		Name:    "E6",
		Caption: fmt.Sprintf("%d cross-site RPCs at 16.7 calls/s", calls),
		Columns: []string{"scenario", "p50 (ms)", "p99 (ms)", "success", "token renewals", "authn failures"},
	}
	for _, sc := range []struct {
		name            string
		zeroTrust, kill bool
	}{
		{"plaintext baseline", false, false},
		{"zero trust", true, false},
		{"zero trust + primary failure", true, true},
	} {
		p50, p99, ok, renewals, fails := runScenario(sc.zeroTrust, sc.kill)
		t.AddRow(sc.name,
			fmt.Sprintf("%.1f", p50*1000),
			fmt.Sprintf("%.1f", p99*1000),
			fmt.Sprintf("%.1f%%", ok*100),
			renewals, fails)
	}
	t.AddNote("paper claim (M11): sub-second latency with automatic failover and continuous authentication")
	return []*telemetry.Table{t}
}

// runE7 reproduces the M10 protocol landscape (cf. the paper's ref [20],
// the OPC UA vs ROS/DDS/MQTT evaluation): the same request stream carried
// by synchronous RPC, an asynchronous work queue, and at-least-once
// pub/sub, across message sizes and loss rates.
func runE7(o Options) []*telemetry.Table {
	msgs := o.scale(500, 100)

	type res struct {
		p50, p99  float64
		delivered float64
	}

	runRPC := func(seed uint64, size int, loss float64) res {
		eng, _, fab := commsNet(seed, loss)
		fab.Broker("anl").RegisterFunc("svc", 0, func(*bus.Envelope) (any, error) { return 1, nil })
		var lat []float64
		done := 0
		for i := 0; i < msgs; i++ {
			i := i
			eng.Schedule(sim.Time(i)*20*sim.Millisecond, func() {
				start := eng.Now()
				fab.Call(bus.CallOpts{
					From: bus.Address{Site: "ornl", Name: "c"}, To: bus.Address{Site: "anl", Name: "svc"},
					Method: "svc", Size: size, Timeout: 200 * sim.Millisecond, Retries: 6,
				}, func(_ any, err error) {
					if err == nil {
						done++
						lat = append(lat, (eng.Now() - start).Seconds())
					}
				})
			})
		}
		_ = eng.Run()
		st := telemetry.Summarize(lat)
		return res{p50: st.Median, p99: st.P99, delivered: float64(done) / float64(msgs)}
	}

	runQueue := func(seed uint64, size int, loss float64) res {
		eng, _, fab := commsNet(seed, loss)
		q := fab.DeclareQueue(bus.Address{Site: "anl"}, "work")
		q.AckTimeout = 150 * sim.Millisecond
		q.MaxAttempts = 8
		var lat []float64
		sent := make(map[int]sim.Time)
		done := 0
		q.Consume(bus.Address{Site: "anl", Name: "worker"}, func(env *bus.Envelope) error {
			id := env.Payload.(int)
			if t0, ok := sent[id]; ok {
				done++
				lat = append(lat, (eng.Now() - t0).Seconds())
				delete(sent, id)
			}
			return nil
		})
		for i := 0; i < msgs; i++ {
			i := i
			eng.Schedule(sim.Time(i)*20*sim.Millisecond, func() {
				sent[i] = eng.Now()
				_ = fab.Enqueue(bus.Address{Site: "ornl", Name: "p"}, bus.Address{Site: "anl"}, "work", i, size)
			})
		}
		_ = eng.Run()
		st := telemetry.Summarize(lat)
		return res{p50: st.Median, p99: st.P99, delivered: float64(done) / float64(msgs)}
	}

	runPubSub := func(seed uint64, size int, loss float64) res {
		eng, _, fab := commsNet(seed, loss)
		var lat []float64
		sent := make(map[int]sim.Time)
		seen := make(map[int]bool)
		done := 0
		fab.Subscribe(bus.Address{Site: "anl", Name: "sub"}, "data", bus.AtLeastOnce, func(env *bus.Envelope) {
			id := env.Payload.(int)
			if seen[id] {
				return // duplicate delivery
			}
			seen[id] = true
			done++
			lat = append(lat, (eng.Now() - sent[id]).Seconds())
		})
		for i := 0; i < msgs; i++ {
			i := i
			eng.Schedule(sim.Time(i)*20*sim.Millisecond, func() {
				sent[i] = eng.Now()
				fab.Publish(bus.PublishOpts{
					From: bus.Address{Site: "ornl", Name: "pub"}, Topic: "data", Payload: i,
					Size: size, QoS: bus.AtLeastOnce,
					AckTimeout: 150 * sim.Millisecond, MaxAttempts: 8,
				})
			})
		}
		_ = eng.Run()
		st := telemetry.Summarize(lat)
		return res{p50: st.Median, p99: st.P99, delivered: float64(done) / float64(msgs)}
	}

	t := &telemetry.Table{
		Name:    "E7",
		Caption: fmt.Sprintf("%d messages, 2-site WAN (15ms, 1Gbps)", msgs),
		Columns: []string{"protocol", "size", "loss", "p50 (ms)", "p99 (ms)", "delivered"},
	}
	for _, size := range []int{1024, 65536} {
		for _, loss := range []float64{0, 0.01, 0.05} {
			seed := o.Seed + uint64(size) + uint64(loss*1000)
			for _, pr := range []struct {
				name string
				fn   func(uint64, int, float64) res
			}{{"rpc (sync)", runRPC}, {"queue (async)", runQueue}, {"pub/sub (qos1)", runPubSub}} {
				r := pr.fn(seed, size, loss)
				t.AddRow(pr.name,
					fmt.Sprintf("%dB", size),
					fmt.Sprintf("%.0f%%", loss*100),
					fmt.Sprintf("%.1f", r.p50*1000),
					fmt.Sprintf("%.1f", r.p99*1000),
					fmt.Sprintf("%.1f%%", r.delivered*100))
			}
		}
	}
	t.AddNote("shape to match ref [20]: sync lowest latency at zero loss; queued/acknowledged protocols dominate under loss")
	return []*telemetry.Table{t}
}
