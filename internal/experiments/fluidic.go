package experiments

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/core"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/twin"
)

func init() {
	register("E4", "§3.1: fluidic SDL vs batch — >100x data-acquisition efficiency", runE4)
	register("E5", "§1: isolated manual lab vs interconnected autonomous network — time to discovery", runE5)
}

// runE4 reproduces the fluidic-SDL claim: ">100x data acquisition
// efficiency over traditional batch methods" at equal wall-clock budget,
// with reagent-consumption accounting.
func runE4(o Options) []*telemetry.Table {
	window := sim.Time(o.scale(8, 2)) * sim.Hour
	reps := o.replicas()

	type result struct {
		completed float64
		volumeML  float64
	}
	run := func(fluidic bool) []result {
		return parMap(reps, func(rep int) result {
			eng := sim.NewEngine()
			r := rng.New(o.Seed + uint64(rep)*101)
			model := twin.Perovskite{}
			var in *instrument.Instrument
			if fluidic {
				in = instrument.NewFluidicReactor(eng, r, "flow", "lab", model)
			} else {
				in = instrument.NewBatchReactor(eng, r, "batch", "lab", model)
			}
			space := model.Space()
			sampler := r.Fork("sampler")
			var next func()
			next = func() {
				in.Submit(instrument.Command{Action: "synthesize", Params: space.Sample(sampler)},
					func(res instrument.Result) {
						if eng.Now() < window {
							next()
						}
					})
			}
			next()
			_ = eng.RunUntil(window)
			vol := in.Descriptor().Capabilities["volume_mL"]
			return result{
				completed: float64(in.Completed()),
				volumeML:  vol * float64(in.Completed()),
			}
		})
	}

	batch := run(false)
	fluidic := run(true)
	bN := meanOf(batch, func(r result) float64 { return r.completed })
	fN := meanOf(fluidic, func(r result) float64 { return r.completed })
	bV := meanOf(batch, func(r result) float64 { return r.volumeML })
	fV := meanOf(fluidic, func(r result) float64 { return r.volumeML })

	t := &telemetry.Table{
		Name:    "E4",
		Caption: fmt.Sprintf("experiments completed in a %s window (mean of %d replicas)", window, reps),
		Columns: []string{"platform", "experiments", "data points/h", "reagent (mL)", "mL per data point"},
	}
	hours := window.Seconds() / 3600
	t.AddRow("batch reactor", bN, bN/hours, bV, bV/bN)
	t.AddRow("fluidic SDL", fN, fN/hours, fV, fV/fN)
	t.AddRow("fluidic/batch ratio", fmt.Sprintf("%.0fx", fN/bN), "", "", fmt.Sprintf("%.4gx less", (bV/bN)/(fV/fN)))
	t.AddNote("paper claim (§3.1, ref [24]): >100x data acquisition efficiency")
	return []*telemetry.Table{t}
}

// runE5 reproduces the introduction's framing: autonomous interconnected
// laboratories shorten the discovery cycle from "decades to months". The
// isolated condition is a single manual batch lab (working-hours decisions,
// no sharing); the interconnected condition is the full AISLE stack.
func runE5(o Options) []*telemetry.Table {
	reps := o.replicas()
	target := 0.55
	budget := o.scale(150, 40)

	type result struct {
		days     float64
		executed float64
		reached  float64
	}
	run := func(interconnected bool) []result {
		return parMap(reps, func(rep int) result {
			n := buildFederation(testbedOpts{
				seed:     o.Seed + uint64(rep)*211,
				sites:    pick(interconnected, 3, 1),
				shared:   interconnected,
				reactors: pick(interconnected, "fluidic", "batch"),
			})
			defer n.Stop()
			r := runCampaign(n, core.CampaignConfig{
				Name: fmt.Sprintf("e5-%v-%d", interconnected, rep),
				Site: n.Sites()[0], Model: twin.Perovskite{},
				Budget: budget, Target: target,
				Mode:         pick(interconnected, core.OrchAgentVerified, core.OrchManual),
				SynthKind:    pick(interconnected, instrument.KindFlowReactor, instrument.KindSynthesis),
				UseKnowledge: interconnected,
				SeedLabel:    fmt.Sprintf("r%d", rep),
			}, 500*sim.Day)
			if r == nil {
				return result{days: 500, executed: float64(budget)}
			}
			return result{
				days:     r.Makespan().Seconds() / 86400,
				executed: float64(r.Executed),
				reached:  boolTo01(r.BestValue >= target),
			}
		})
	}

	isolated := run(false)
	connected := run(true)
	isoDays := meanOf(isolated, func(r result) float64 { return r.days })
	conDays := meanOf(connected, func(r result) float64 { return r.days })

	t := &telemetry.Table{
		Name:    "E5",
		Caption: fmt.Sprintf("time to reach plqy >= %.2f (mean of %d replicas)", target, reps),
		Columns: []string{"configuration", "days to target", "experiments", "target reached"},
	}
	t.AddRow("isolated manual lab (batch, 1 site)", isoDays,
		meanOf(isolated, func(r result) float64 { return r.executed }),
		fmt.Sprintf("%.0f%%", 100*meanOf(isolated, func(r result) float64 { return r.reached })))
	t.AddRow("interconnected autonomous (fluidic, 3 sites)", conDays,
		meanOf(connected, func(r result) float64 { return r.executed }),
		fmt.Sprintf("%.0f%%", 100*meanOf(connected, func(r result) float64 { return r.reached })))
	t.AddRow("acceleration", fmt.Sprintf("%.0fx", isoDays/conDays), "", "")
	t.AddNote("paper framing (§1): discovery cycles shortened from decades to months (~1-2 orders of magnitude)")
	return []*telemetry.Table{t}
}

func pick[T any](cond bool, a, b T) T {
	if cond {
		return a
	}
	return b
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
