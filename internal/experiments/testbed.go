package experiments

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/core"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/twin"
)

// siteNames generates n federation site IDs.
func siteNames(n int) []netsim.SiteID {
	base := []netsim.SiteID{"ornl", "anl", "slac", "pnnl", "jlab", "lbnl", "nrel", "ameslab"}
	out := make([]netsim.SiteID, 0, n)
	for i := 0; i < n; i++ {
		if i < len(base) {
			out = append(out, base[i])
		} else {
			out = append(out, netsim.SiteID(fmt.Sprintf("site%02d", i)))
		}
	}
	return out
}

// testbedOpts configures the standard federation testbed.
type testbedOpts struct {
	seed      uint64
	sites     int
	zeroTrust bool
	shared    bool
	// reactors: "fluidic", "batch", or "both" at each site.
	reactors string
	model    twin.Model
}

// buildFederation assembles a federation with instruments at every site and
// runs discovery to convergence.
func buildFederation(o testbedOpts) *core.Network {
	if o.model == nil {
		o.model = twin.Perovskite{}
	}
	ids := siteNames(o.sites)
	n := core.New(core.Config{
		Seed:            o.seed,
		Sites:           ids,
		Link:            core.DefaultLink(),
		ZeroTrust:       o.zeroTrust,
		SharedKnowledge: o.shared,
	})
	for _, id := range ids {
		s := n.Site(id)
		switch o.reactors {
		case "batch":
			s.AddInstrument(instrument.NewBatchReactor(n.Eng, n.Rnd, "batch-"+string(id), string(id), o.model))
		case "both":
			s.AddInstrument(instrument.NewBatchReactor(n.Eng, n.Rnd, "batch-"+string(id), string(id), o.model))
			s.AddInstrument(instrument.NewFluidicReactor(n.Eng, n.Rnd, "flow-"+string(id), string(id), o.model))
		default:
			s.AddInstrument(instrument.NewFluidicReactor(n.Eng, n.Rnd, "flow-"+string(id), string(id), o.model))
		}
		s.AddInstrument(instrument.NewSpectrometer(n.Eng, n.Rnd, "spec-"+string(id), string(id)))
	}
	// Let discovery converge before campaigns start.
	_ = n.RunFor(3 * sim.Minute)
	return n
}

// runCampaign drives the engine until the campaign reports or the horizon
// elapses, returning the report (nil on horizon overrun).
func runCampaign(n *core.Network, cfg core.CampaignConfig, horizon sim.Time) *core.CampaignReport {
	var rep *core.CampaignReport
	n.RunCampaign(cfg, func(r *core.CampaignReport) { rep = r })
	deadline := n.Eng.Now() + horizon
	for rep == nil && n.Eng.Now() < deadline {
		if err := n.RunFor(6 * sim.Hour); err != nil {
			return nil
		}
	}
	return rep
}
