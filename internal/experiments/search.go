package experiments

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/optimize"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/twin"
)

// searchTable runs the E12 optimizer comparison on the quantum-dot space.
func searchTable(o Options, reps int) *telemetry.Table {
	model := twin.QuantumDot{}
	space := model.Space()
	budgets := []int{30, 60, 120}
	if o.Quick {
		budgets = []int{20, 40}
	}

	run := func(mk func(seed uint64) optimize.Optimizer, budget int) []float64 {
		return parMap(reps, func(rep int) float64 {
			opt := mk(o.Seed + uint64(rep)*29)
			for i := 0; i < budget; i++ {
				p := opt.Ask()
				opt.Tell(p, model.Eval(p)["plqy"])
			}
			_, best := opt.Best()
			return best
		})
	}

	t := &telemetry.Table{
		Name: "E12",
		Caption: fmt.Sprintf("best PLQY found in a %.2g-condition space (mean of %d replicas)",
			space.Cardinality(), reps),
		Columns: []string{"strategy", "budget", "best plqy (mean)", "best plqy (max)"},
	}
	for _, budget := range budgets {
		for _, s := range []struct {
			name string
			mk   func(seed uint64) optimize.Optimizer
		}{
			{"grid sweep", func(seed uint64) optimize.Optimizer { return optimize.NewGrid(space, 3) }},
			{"random search", func(seed uint64) optimize.Optimizer {
				return optimize.NewRandom(space, rng.New(seed))
			}},
			{"bayesian opt (nested discrete)", func(seed uint64) optimize.Optimizer {
				return optimize.NewBayes(space, rng.New(seed), optimize.BayesOpts{})
			}},
		} {
			vals := run(s.mk, budget)
			st := telemetry.Summarize(vals)
			t.AddRow(s.name, budget, st.Mean, st.Max)
		}
	}
	t.AddNote("paper claim (§3.3): Smart Dope navigates 10^13 possible synthesis conditions; BO must dominate undirected baselines")
	return t
}
