package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quickOpts is the CI-scale configuration used by all experiment tests.
var quickOpts = Options{Seed: 42, Quick: true, Replicas: 2}

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E10", "E11", "E12", "E13", "E13a", "E14", "E15",
		"E16", "E2", "E2a", "E3", "E3a", "E4", "E5", "E6", "E7", "E8", "E9", "E9a"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v", got)
		}
	}
	for _, id := range got {
		if Describe(id) == "" {
			t.Fatalf("%s has no description", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("E99", quickOpts); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

// runOne asserts basic table shape for an experiment.
func runOne(t *testing.T, id string) []*telemetryTable {
	t.Helper()
	tables, err := Run(id, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	out := make([]*telemetryTable, len(tables))
	for i, tb := range tables {
		if tb.Name == "" || len(tb.Columns) == 0 || len(tb.Rows) == 0 {
			t.Fatalf("%s table %d malformed: %+v", id, i, tb)
		}
		for _, row := range tb.Rows {
			if len(row) > len(tb.Columns) {
				t.Fatalf("%s row wider than header: %v", id, row)
			}
		}
		out[i] = tb
	}
	return out
}

// telemetryTable aliases the table type for test readability.
type telemetryTable = tableT

// percent parses "93.8%" cells.
func percent(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not a percentage", cell)
	}
	return v
}

func TestE1SpeedupShape(t *testing.T) {
	tb := runOne(t, "E1")[0]
	// manual row, agent rows: makespan column 1 must shrink.
	manual, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	agent, _ := strconv.ParseFloat(tb.Rows[2][1], 64)
	if agent >= manual {
		t.Fatalf("agent makespan %v not below manual %v", agent, manual)
	}
	if manual/agent < 3 {
		t.Fatalf("speedup %v below the paper's 3x claim", manual/agent)
	}
}

func TestE2CorrectnessShape(t *testing.T) {
	tb := runOne(t, "E2")[0]
	none := percent(t, tb.Rows[0][1])
	full := percent(t, tb.Rows[2][1])
	if full <= none {
		t.Fatalf("verification did not improve correctness: %v <= %v", full, none)
	}
	if full < 95 {
		t.Fatalf("verified correctness %v below the paper's 95%% claim", full)
	}
}

func TestE3ReductionShape(t *testing.T) {
	tb := runOne(t, "E3")[0]
	// Quick mode runs only 2 replicas, so the reduction estimate is noisy;
	// the CI shape check asserts direction and a loose floor. The full run
	// (EXPERIMENTS.md) shows ~46% against the paper's >30% target.
	red := percent(t, strings.TrimSuffix(tb.Rows[2][1], "%")+"%")
	if red < 10 {
		t.Fatalf("experiment reduction %v%% too small (paper: >30%% at full scale)", red)
	}
	iso, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	fed, _ := strconv.ParseFloat(tb.Rows[1][1], 64)
	if fed >= iso {
		t.Fatalf("federated (%v) must execute fewer experiments than isolated (%v)", fed, iso)
	}
	approval := percent(t, tb.Rows[1][4])
	if approval < 90 {
		t.Fatalf("trace approval %v%% below the paper's 90%% claim", approval)
	}
}

func TestE4EfficiencyShape(t *testing.T) {
	tb := runOne(t, "E4")[0]
	ratio := strings.TrimSuffix(tb.Rows[2][1], "x")
	v, err := strconv.ParseFloat(ratio, 64)
	if err != nil {
		t.Fatalf("ratio cell %q", tb.Rows[2][1])
	}
	if v < 100 {
		t.Fatalf("fluidic/batch ratio %v below the paper's 100x claim", v)
	}
}

func TestE5AccelerationShape(t *testing.T) {
	tb := runOne(t, "E5")[0]
	iso, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	con, _ := strconv.ParseFloat(tb.Rows[1][1], 64)
	if con >= iso {
		t.Fatalf("interconnected (%v days) not faster than isolated (%v days)", con, iso)
	}
	if iso/con < 10 {
		t.Fatalf("acceleration %vx too small for the decades-to-months framing", iso/con)
	}
}

func TestE6SubSecondShape(t *testing.T) {
	tb := runOne(t, "E6")[0]
	for _, row := range tb.Rows {
		p99, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("p99 cell %q", row[2])
		}
		if p99 >= 1000 {
			t.Fatalf("%s p99 %vms violates sub-second claim", row[0], p99)
		}
	}
}

func TestE12BOBeatsBaselines(t *testing.T) {
	tb := runOne(t, "E12")[0]
	// Rows come in triples (grid, random, bo) per budget; check the last
	// budget's triple.
	n := len(tb.Rows)
	grid, _ := strconv.ParseFloat(tb.Rows[n-3][2], 64)
	random, _ := strconv.ParseFloat(tb.Rows[n-2][2], 64)
	bo, _ := strconv.ParseFloat(tb.Rows[n-1][2], 64)
	if bo <= random || bo <= grid {
		t.Fatalf("BO (%v) must dominate random (%v) and grid (%v)", bo, random, grid)
	}
}

func TestE13FaultToleranceShape(t *testing.T) {
	tb := runOne(t, "E13")[0]
	naive := percent(t, tb.Rows[0][3])
	tolerant := percent(t, tb.Rows[1][3])
	if tolerant <= naive {
		t.Fatalf("fault tolerance did not help: %v <= %v", tolerant, naive)
	}
	if tolerant < 90 {
		t.Fatalf("tolerant completion %v%% too low", tolerant)
	}
}

func TestE15SchedSaturationShape(t *testing.T) {
	tb := runOne(t, "E15")[0]
	// Rows are parallelism 1, 4, 8; column 1 is campaigns/hr.
	p1, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	p8, _ := strconv.ParseFloat(tb.Rows[len(tb.Rows)-1][1], 64)
	if p1 <= 0 || p8 <= 0 {
		t.Fatalf("non-positive throughput: p1=%v p8=%v", p1, p8)
	}
	if p8/p1 < 2 {
		t.Fatalf("batched dispatch speedup %.2fx below the 2x acceptance bar (p1=%v p8=%v)",
			p8/p1, p1, p8)
	}
}

func TestRemainingExperimentsProduceTables(t *testing.T) {
	for _, id := range []string{"E2a", "E3a", "E7", "E8", "E9", "E9a", "E10", "E11", "E13a", "E14"} {
		runOne(t, id)
	}
}

func TestParMapOrderAndCompleteness(t *testing.T) {
	out := parMap(100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("parMap[%d] = %d", i, v)
		}
	}
}

func TestMeanOfAndCollect(t *testing.T) {
	xs := []float64{1, 2, 3}
	if m := meanOf(xs, func(v float64) float64 { return v }); m != 2 {
		t.Fatalf("meanOf = %v", m)
	}
	c := collect(xs, func(v float64) float64 { return v * 2 })
	if c[2] != 6 {
		t.Fatalf("collect = %v", c)
	}
	if meanOf(nil, func(v float64) float64 { return v }) != 0 {
		t.Fatal("empty meanOf should be 0")
	}
}
