package experiments

import (
	"fmt"
	"sort"

	"github.com/aisle-sim/aisle/internal/chaos"
	"github.com/aisle-sim/aisle/internal/core"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/knowledge"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/obs"
	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/sched"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
	"github.com/aisle-sim/aisle/internal/twin"
)

func init() {
	register("E16", "robustness: chaos matrix sweeping fault intensity x recovery policy under invariant checking", runE16)
}

// ChaosSpec parameterizes one chaos-matrix cell: a multi-domain job stream
// over a zero-trust federation with a seeded fault schedule running against
// it. Exported so the chaos benchmark and the property tests drive the same
// scenario the experiment reports on.
type ChaosSpec struct {
	Seed uint64
	// Sites is the federation width. Default 5.
	Sites int
	// Jobs is the number of experiments submitted, spread uniformly across
	// the horizon and sites. Default 400.
	Jobs int
	// Horizon is the submission window; chaos windows also draw from it.
	// Default 6h.
	Horizon sim.Time
	// Intensity is the chaos schedule intensity (mean fraction of sites
	// inside a fault window); 0 disables injection entirely.
	Intensity float64
	// Recovery enables the self-healing scheduler policy: per-job retry
	// budgets plus the in-flight rescue sweep.
	Recovery bool
	// Kinds restricts the fault kinds drawn; nil means all.
	Kinds []chaos.Kind
	// Trace enables tracing for the run.
	Trace trace.Options
	// Health enables the federation health engine for the run: SLO burn
	// alerts, flight-recorder snapshots on invariant trips, and per-fault
	// incident attribution.
	Health obs.Options
}

func (s *ChaosSpec) defaults() {
	if s.Sites <= 0 {
		s.Sites = 5
	}
	if s.Jobs <= 0 {
		s.Jobs = 400
	}
	if s.Horizon <= 0 {
		s.Horizon = 6 * sim.Hour
	}
}

// ChaosResult is one cell's outcome.
type ChaosResult struct {
	Submitted int
	Completed int
	Failed    int
	// CompletionRate is Completed/Submitted.
	CompletionRate float64
	// P99LatencyS is the 99th-percentile submit-to-completion latency of
	// completed jobs, in (virtual) seconds.
	P99LatencyS float64
	// RecoveryS is how long after the last fault window healed the
	// federation took to reach its final terminal callback (0 when the
	// backlog drained before the last heal).
	RecoveryS float64
	// Injections counts applied fault windows; Quarantined counts insights
	// rejected by knowledge vetting across honest sites.
	Injections  int
	Quarantined int
	// Violations are invariant-checker findings; empty means the run held.
	Violations []string
	// Tracer exposes the run's spans when Trace was enabled.
	Tracer *trace.Tracer
	// Health exposes the run's health engine when Health was enabled:
	// snapshots, alerts, incidents, and the spine profile.
	Health *obs.Engine
	// Attribution is the root-cause coverage over degraded jobs (zero
	// value when Health was off).
	Attribution obs.AttributionStats
	// Incidents are the per-fault reports the linker assembled.
	Incidents []obs.Incident
}

// chaosDomains describes the two science domains E16 schedules across.
var chaosDomains = []struct {
	name      string
	kind      string
	objective string
	min, max  float64
}{
	{"perovskite", instrument.KindFlowReactor, "plqy", 0, 1},
	{"electrolyte", instrument.KindSynthesis, "conductivity_mS", 0, 60},
}

// RunChaos executes one chaos-matrix cell: build a zero-trust shared-
// knowledge federation, wire the invariant checker, start the fault
// injector, stream jobs through the scheduler, drain, and audit.
func RunChaos(spec ChaosSpec) (ChaosResult, error) {
	spec.defaults()
	sites := siteNames(spec.Sites)
	n := core.New(core.Config{
		Seed:            spec.Seed,
		Sites:           sites,
		Link:            core.DefaultLink(),
		ZeroTrust:       true,
		SharedKnowledge: true,
		Sched: sched.Options{
			Recover: spec.Recovery,
		},
		Trace:  spec.Trace,
		Health: spec.Health,
	})
	defer n.Stop()

	// In-flight messages die with the link that carried them; paired with
	// the checker's delivery hook this enforces the down-link invariant.
	n.Net.DropInFlight = true

	perov := twin.Perovskite{}
	elec := twin.Electrolyte{}
	n.Knowledge.Bounds = map[string]knowledge.SanityBound{
		"perovskite":  {Space: perov.Space(), Min: 0, Max: 1},
		"electrolyte": {Space: elec.Space(), Min: 0, Max: 60},
	}

	for _, id := range sites {
		s := n.Site(id)
		for r := 0; r < 2; r++ {
			s.AddInstrument(instrument.NewFluidicReactor(n.Eng, n.Rnd,
				fmt.Sprintf("flow-%d-%s", r, id), string(id), perov))
		}
		// A formulation station per site carries the second domain: slower
		// per-shot than the fluidic reactors, same routing machinery.
		s.AddInstrument(instrument.New(n.Eng, n.Rnd, instrument.Config{
			Descriptor: instrument.Descriptor{
				ID: "formulate-" + string(id), Kind: instrument.KindSynthesis,
				Vendor: "SimCo", ModelName: "FormuMix 9", Site: string(id),
				Actions: []instrument.ActionSpec{{
					Name: "synthesize", Space: elec.Space(), Duration: 2 * sim.Minute,
					Outputs: []string{"conductivity_mS", "viscosity_cP"},
				}},
				Capabilities: map[string]float64{"throughput_per_hr": 30},
			},
			Twin:           twin.NewTwin(elec, twin.Noise{Rel: 0.03}),
			DurationJitter: 0.1,
			FailureProb:    0.004,
			RepairTime:     45 * sim.Minute,
		}))
	}

	checker := chaos.NewChecker()
	checker.OnViolation = n.Health.ObserveViolation
	checker.WatchNet(n.Net)
	// After core's zero-trust middleware: the tap only sees envelopes that
	// admission accepted, so a bad token reaching it is the violation.
	n.Fabric.Use(checker.BusTap(n.Fed))

	// The fault schedule and the byzantine payload stream are forked off
	// the federation seed without disturbing it.
	events := chaos.Schedule(chaos.Config{
		Seed:      spec.Seed + 1,
		Horizon:   spec.Horizon,
		Intensity: spec.Intensity,
		Kinds:     spec.Kinds,
	}, sites)
	byz := make(map[netsim.SiteID]bool)
	for _, ev := range events {
		if ev.Kind == chaos.KindByzantine {
			byz[ev.Site] = true
		}
	}
	tgt := chaos.Bind(n)
	poisonRnd := n.Rnd.Fork("chaos-poison")
	poisonSeq := 0
	tgt.Poison = func(site netsim.SiteID) {
		poisonSeq++
		// Fabricated result: a point outside the perovskite space carrying
		// an impossible objective value. Honest sites must quarantine it.
		n.Site(site).Knowledge.AddObservation("perovskite", param.Point{
			"temperature":  500 + float64(poisonSeq),
			"halide_ratio": 2,
			"residence_s":  1,
			"ligand_mM":    0,
		}, 5+poisonRnd.Float64())
	}
	inj := chaos.NewInjector(tgt)

	// Let discovery converge before traffic or faults start.
	_ = n.RunFor(3 * sim.Minute)
	inj.Run(events)

	jobRnd := n.Rnd.Fork("chaos-jobs")
	maxRetries := 0
	if spec.Recovery {
		maxRetries = 4
	}
	var (
		completed, failed int
		latencies         []float64
		lastTerminal      sim.Time
	)
	for i := 0; i < spec.Jobs; i++ {
		i := i
		dom := chaosDomains[0]
		if i%4 == 0 {
			dom = chaosDomains[1]
		}
		origin := sites[i%len(sites)]
		model := twin.Registry()[dom.name]
		pt := model.Space().Sample(jobRnd)
		id := fmt.Sprintf("job-%04d", i)
		var ctx trace.Context
		if spec.Trace.Enabled {
			ctx = n.Tracer.Root(trace.ID(id))
		}
		at := spec.Horizon * sim.Time(i) / sim.Time(spec.Jobs)
		n.Eng.Schedule(at, func() {
			submitted := n.Eng.Now()
			checker.Submitted(id)
			n.Sched.Submit(sched.Job{
				Tenant:     "chaos",
				Origin:     origin,
				Kind:       dom.kind,
				Cmd:        instrument.Command{Action: "synthesize", Params: pt, SampleID: id, Trace: ctx},
				Timeout:    2 * sim.Hour,
				MaxRetries: maxRetries,
				Trace:      ctx,
			}, func(res instrument.Result, err error) {
				checker.Terminal(id, err)
				lastTerminal = n.Eng.Now()
				if err != nil {
					failed++
					return
				}
				completed++
				latencies = append(latencies, (n.Eng.Now() - submitted).Seconds())
				// Completions feed the shared knowledge plane — the traffic
				// the byzantine/bad-creds faults attack.
				n.Site(origin).Knowledge.AddObservationT(ctx, dom.name, pt, res.Values[dom.objective])
			})
		})
	}

	if err := n.RunFor(spec.Horizon + 3*sim.Minute); err != nil {
		return ChaosResult{}, err
	}
	deadline := n.Eng.Now() + 48*sim.Hour
	for completed+failed < spec.Jobs && n.Eng.Now() < deadline {
		if err := n.RunFor(15 * sim.Minute); err != nil {
			return ChaosResult{}, err
		}
	}

	honest := make([]netsim.SiteID, 0, len(sites))
	for _, id := range sites {
		if !byz[id] {
			honest = append(honest, id)
		}
	}
	checker.CheckKnowledge(n.Knowledge, honest)
	violations := checker.Check()

	quarantined := 0
	for _, id := range honest {
		quarantined += len(n.Knowledge.Base(id).Quarantined())
	}
	res := ChaosResult{
		Submitted:      spec.Jobs,
		Completed:      completed,
		Failed:         failed,
		CompletionRate: float64(completed) / float64(spec.Jobs),
		Injections:     inj.Injected(),
		Quarantined:    quarantined,
		Violations:     violations,
		Tracer:         n.Tracer,
		Health:         n.Health,
		Attribution:    n.Health.Attribution(),
		Incidents:      n.Health.Incidents(),
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		idx := (len(latencies)*99 + 99) / 100
		if idx > len(latencies) {
			idx = len(latencies)
		}
		res.P99LatencyS = latencies[idx-1]
	}
	if heal := inj.LastHeal(); heal > 0 && lastTerminal > heal {
		res.RecoveryS = (lastTerminal - heal).Seconds()
	}
	return res, nil
}

// runE16 sweeps the chaos matrix: fault intensity x recovery policy, with
// the invariant checker live in every cell. The headline claim is the
// throughput-degradation curve — completion rate holding up under rising
// fault intensity when the self-healing policy is on, and collapsing
// without it.
func runE16(o Options) []*telemetry.Table {
	intensities := []float64{0, 0.05, 0.15, 0.30}
	if o.Quick {
		intensities = []float64{0, 0.15, 0.30}
	}
	jobs := o.scale(400, 120)
	horizon := sim.Time(o.scale(6, 3)) * sim.Hour

	type cell struct {
		intensity float64
		recovery  bool
	}
	var cells []cell
	for _, in := range intensities {
		for _, rec := range []bool{false, true} {
			cells = append(cells, cell{in, rec})
		}
	}
	results := parMap(len(cells), func(i int) ChaosResult {
		c := cells[i]
		r, err := RunChaos(ChaosSpec{
			Seed:      o.Seed + uint64(i)*101,
			Jobs:      jobs,
			Horizon:   horizon,
			Intensity: c.intensity,
			Recovery:  c.recovery,
		})
		if err != nil {
			return ChaosResult{Violations: []string{err.Error()}}
		}
		return r
	})

	t := &telemetry.Table{
		Name: "E16",
		Caption: fmt.Sprintf("chaos matrix: %d jobs over %v across 5 sites, seeded fault schedules, invariants checked continuously",
			jobs, horizon),
		Columns: []string{"fault intensity", "recovery", "completion rate", "p99 latency (min)", "recovery time (min)", "injections", "quarantined", "violations"},
	}
	for i, c := range cells {
		r := results[i]
		policy := "none"
		if c.recovery {
			policy = "retry+reroute"
		}
		t.AddRow(fmt.Sprintf("%.0f%%", c.intensity*100), policy,
			fmt.Sprintf("%.1f%%", r.CompletionRate*100),
			r.P99LatencyS/60, r.RecoveryS/60,
			r.Injections, r.Quarantined, len(r.Violations))
	}
	t.AddNote("invariants: exactly-one terminal callback per job; no delivery across down links; no unauthenticated insight admitted; quarantined insights never seed optimizers")
	t.AddNote("paper claim (M2/M3): fault-tolerant cross-facility coordination sustains campaigns through site outages, partitions, and adversarial peers")
	return []*telemetry.Table{t}
}
