package experiments

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/education"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

func init() {
	register("E14", "M13/M14: AI-integrated curricula — measurable learning outcomes and trust calibration", runE14)
}

// runE14 reproduces M13/M14: the education infrastructure must produce
// measurable learning outcomes, including human-AI collaboration competency
// and trust calibration, without eroding domain fundamentals.
func runE14(o Options) []*telemetry.Table {
	cohort := o.scale(2000, 400)
	s := education.NewSimulator(rng.New(o.Seed))

	trad := s.RunCohort(cohort, education.Traditional())
	ai := s.RunCohort(cohort, education.AIIntegrated())

	t := &telemetry.Table{
		Name:    "E14",
		Caption: fmt.Sprintf("cohort of %d simulated trainees per curriculum", cohort),
		Columns: []string{"outcome", "traditional", "ai-integrated", "delta"},
	}
	row := func(name string, a, b float64, pct bool) {
		if pct {
			t.AddRow(name, fmt.Sprintf("%.1f%%", a*100), fmt.Sprintf("%.1f%%", b*100),
				fmt.Sprintf("%+.1f pp", (b-a)*100))
			return
		}
		t.AddRow(name, a, b, fmt.Sprintf("%+.3f", b-a))
	}
	row("mean exam score", trad.MeanScore, ai.MeanScore, false)
	row("median exam score", trad.MedianScore, ai.MedianScore, false)
	row("human-AI collaboration score", trad.MeanCollab, ai.MeanCollab, false)
	row("domain fundamentals score", trad.MeanDomain, ai.MeanDomain, false)
	row("trust calibration error", trad.MeanTrustError, ai.MeanTrustError, false)
	row("pass rate", trad.PassRate, ai.PassRate, true)
	t.AddRow("contact hours", trad.ContactHours, ai.ContactHours, "")
	t.AddNote("paper claims (M13/M14): measurable learning outcomes; human-AI collaboration competencies assessed; fundamentals preserved")
	return []*telemetry.Table{t}
}
