package experiments

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/core"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/twin"
)

func init() {
	register("E3", "M9: 3-facility knowledge integration — experiment reduction and trace approval", runE3)
	register("E3a", "ablation: experiment reduction vs number of sharing facilities", runE3a)
}

// e3Result is the outcome of one federated discovery problem: three
// facilities pursue the same target in sequence (the later ones able to
// reuse what the earlier ones learned when sharing is on).
type e3Result struct {
	executed  int
	reused    int
	reached   int
	approvals int
	traces    int
}

func e3Round(seed uint64, shared bool, sites int, target float64, budgetPerSite int) e3Result {
	n := buildFederation(testbedOpts{
		seed: seed, sites: sites, shared: shared, reactors: "fluidic",
	})
	defer n.Stop()

	var out e3Result
	for i, site := range n.Sites() {
		rep := runCampaign(n, core.CampaignConfig{
			Name: fmt.Sprintf("e3-%v-%d", shared, i), Site: site,
			Model: twin.Perovskite{}, Budget: budgetPerSite, Target: target,
			Mode: core.OrchAgentVerified, SynthKind: instrument.KindFlowReactor,
			UseKnowledge: true, SeedLabel: fmt.Sprintf("s%d", i),
		}, 200*sim.Day)
		if rep == nil {
			continue
		}
		out.executed += rep.Executed
		out.reused += rep.Reused
		out.traces += rep.Traces
		out.approvals += rep.Approvals
		if rep.BestValue >= target {
			out.reached++
		}
		// Let knowledge finish propagating before the next site starts.
		_ = n.RunFor(time30m())
	}
	return out
}

func time30m() sim.Time { return 30 * sim.Minute }

// runE3 reproduces M9: a knowledge-integration system across 3 facilities
// reduces required experiments by >30% with >90% scientist approval of
// reasoning traces.
func runE3(o Options) []*telemetry.Table {
	reps := o.replicas()
	target := 0.50
	budget := o.scale(40, 25)

	isolated := parMap(reps, func(r int) e3Result {
		return e3Round(o.Seed+uint64(r)*337, false, 3, target, budget)
	})
	shared := parMap(reps, func(r int) e3Result {
		return e3Round(o.Seed+uint64(r)*337, true, 3, target, budget)
	})

	isoExec := meanOf(isolated, func(x e3Result) float64 { return float64(x.executed) })
	shExec := meanOf(shared, func(x e3Result) float64 { return float64(x.executed) })
	reduction := 1 - shExec/isoExec

	approval := meanOf(shared, func(x e3Result) float64 {
		if x.traces == 0 {
			return 1
		}
		return float64(x.approvals) / float64(x.traces)
	})

	t := &telemetry.Table{
		Name: "E3",
		Caption: fmt.Sprintf("same discovery target (plqy >= %.2f) at 3 facilities, mean of %d replicas",
			target, reps),
		Columns: []string{"condition", "experiments executed", "reused results", "sites reaching target", "trace approval"},
	}
	t.AddRow("isolated knowledge",
		isoExec,
		meanOf(isolated, func(x e3Result) float64 { return float64(x.reused) }),
		meanOf(isolated, func(x e3Result) float64 { return float64(x.reached) }),
		"-")
	t.AddRow("federated knowledge",
		shExec,
		meanOf(shared, func(x e3Result) float64 { return float64(x.reused) }),
		meanOf(shared, func(x e3Result) float64 { return float64(x.reached) }),
		fmt.Sprintf("%.1f%%", approval*100))
	t.AddRow("experiment reduction", fmt.Sprintf("%.1f%%", reduction*100), "", "", "")
	t.AddNote("paper claims (M9): >30%% fewer experiments, >90%% trace approval")
	return []*telemetry.Table{t}
}

// runE3a sweeps federation size: how reduction scales with the number of
// facilities contributing knowledge.
func runE3a(o Options) []*telemetry.Table {
	reps := o.replicas()
	target := 0.50
	budget := o.scale(40, 25)

	t := &telemetry.Table{
		Name:    "E3a",
		Caption: "experiment reduction vs federation size",
		Columns: []string{"facilities", "isolated total", "federated total", "reduction"},
	}
	for _, sites := range []int{2, 3, 4} {
		iso := parMap(reps, func(r int) e3Result {
			return e3Round(o.Seed+uint64(r)*7919+uint64(sites), false, sites, target, budget)
		})
		sh := parMap(reps, func(r int) e3Result {
			return e3Round(o.Seed+uint64(r)*7919+uint64(sites), true, sites, target, budget)
		})
		isoExec := meanOf(iso, func(x e3Result) float64 { return float64(x.executed) })
		shExec := meanOf(sh, func(x e3Result) float64 { return float64(x.executed) })
		t.AddRow(sites, isoExec, shExec, fmt.Sprintf("%.1f%%", 100*(1-shExec/isoExec)))
	}
	return []*telemetry.Table{t}
}
