package experiments

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/core"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/twin"
)

func init() {
	register("E15", "sched-saturation: federation scheduler — campaign throughput scaling with batched dispatch on a shared 4-site fleet", runE15)
}

// runE15 is the sched-saturation experiment: many concurrent campaigns
// share a 4-site fluidic-reactor fleet through the federation scheduler,
// and the batched-dispatch knob (CampaignConfig.Parallelism) is the axis.
// At Parallelism 1 each campaign walks the serial ask->run->tell loop and
// decision latency serializes with instrument time; at higher parallelism
// campaigns keep k experiments in flight, so fleet capacity — not the
// decision loop — sets throughput. The acceptance bar is >=2x campaign
// throughput at Parallelism 8 vs 1.
func runE15(o Options) []*telemetry.Table {
	const nSites = 4
	camps := o.scale(12, 6)
	budget := o.scale(16, 8)
	pars := []int{1, 4, 8}
	reps := o.replicas()

	type result struct {
		cph       float64 // completed campaigns per hour of makespan
		eph       float64 // executed experiments per hour
		hours     float64 // makespan: first submit to last campaign report
		waitS     float64 // mean scheduler queue wait
		steals    float64
		remoteFrc float64 // fraction of dispatches that crossed sites
	}
	run := func(par int) []result {
		return parMap(reps, func(rep int) result {
			ids := siteNames(nSites)
			n := core.New(core.Config{
				Seed:  o.Seed + uint64(rep)*307,
				Sites: ids,
				Link:  core.DefaultLink(),
			})
			defer n.Stop()
			for _, id := range ids {
				s := n.Site(id)
				for k := 0; k < 2; k++ {
					s.AddInstrument(instrument.NewFluidicReactor(
						n.Eng, n.Rnd, fmt.Sprintf("flow-%d-%s", k, id), string(id), twin.Perovskite{}))
				}
			}
			_ = n.RunFor(3 * sim.Minute)

			start := n.Eng.Now()
			finish := start
			done := 0
			var executed int
			for i := 0; i < camps; i++ {
				n.RunCampaign(core.CampaignConfig{
					Name:        fmt.Sprintf("sat-p%d-c%02d", par, i),
					Site:        ids[i%len(ids)],
					Model:       twin.Perovskite{},
					Budget:      budget,
					Mode:        core.OrchAgentVerified,
					SynthKind:   instrument.KindFlowReactor,
					Parallelism: par,
					SeedLabel:   fmt.Sprintf("r%d", rep),
				}, func(r *core.CampaignReport) {
					done++
					executed += r.Executed
					if r.Finished > finish {
						finish = r.Finished
					}
				})
			}
			deadline := n.Eng.Now() + 30*sim.Day
			for done < camps && n.Eng.Now() < deadline {
				_ = n.RunFor(10 * sim.Minute)
			}

			// Throughput counts only campaigns that reported: a replica
			// overrunning the deadline degrades the number instead of
			// silently inflating it.
			res := result{
				hours:  (finish - start).Seconds() / 3600,
				waitS:  n.Metrics.Histogram("sched.wait_s").Mean(),
				steals: float64(n.Metrics.Counter("sched.steals").Value()),
			}
			if res.hours > 0 {
				res.cph = float64(done) / res.hours
				res.eph = float64(executed) / res.hours
			}
			if d := n.Metrics.Counter("sched.dispatched").Value(); d > 0 {
				res.remoteFrc = float64(n.Metrics.Counter("sched.remote_dispatches").Value()) / float64(d)
			}
			return res
		})
	}

	t := &telemetry.Table{
		Name: "E15",
		Caption: fmt.Sprintf(
			"sched-saturation: %d concurrent campaigns x %d experiments on %d sites (2 reactors each; mean of %d replicas)",
			camps, budget, nSites, reps),
		Columns: []string{"parallelism", "campaigns/hr", "experiments/hr",
			"makespan (h)", "mean wait (s)", "cross-site", "steals"},
	}
	for _, par := range pars {
		rs := run(par)
		t.AddRow(par,
			meanOf(rs, func(r result) float64 { return r.cph }),
			meanOf(rs, func(r result) float64 { return r.eph }),
			meanOf(rs, func(r result) float64 { return r.hours }),
			meanOf(rs, func(r result) float64 { return r.waitS }),
			fmt.Sprintf("%.0f%%", 100*meanOf(rs, func(r result) float64 { return r.remoteFrc })),
			meanOf(rs, func(r result) float64 { return r.steals }))
	}
	t.AddNote("throughput scaling: batched dispatch keeps the fleet saturated; acceptance >=2x campaigns/hr at parallelism 8 vs 1")
	return []*telemetry.Table{t}
}
