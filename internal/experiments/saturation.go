package experiments

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/core"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/obs"
	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
	"github.com/aisle-sim/aisle/internal/twin"
)

// SaturationSpec describes one saturation-fleet run: many concurrent
// perovskite campaigns sharing a fluidic-reactor federation through the
// scheduler. It is the single driver behind the top-level
// BenchmarkSchedCampaignsP* suite and aisle-bench's -gpbench -macro
// recorder, so both always measure the same workload.
type SaturationSpec struct {
	Seed        uint64
	Sites       int // federation sites, 2 reactors each (default 4)
	Campaigns   int
	Budget      int
	Parallelism int
	// Trace enables causal tracing for the run; the zero value keeps the
	// workload on the untraced fast path.
	Trace trace.Options
	// Health enables the federation health engine for the run; the zero
	// value keeps every health hook on its zero-cost path.
	Health obs.Options
	// Prof enables the continuous spine profiler for the run; the zero
	// value keeps every instrumented region at one pointer test.
	Prof prof.Options
	// Shards runs the spine with per-site PDES event shards; the fixed-seed
	// trajectory is byte-identical either way.
	Shards bool
}

// SaturationResult reports a completed saturation run in virtual time.
type SaturationResult struct {
	Start    sim.Time // first campaign submitted
	Finish   sim.Time // last campaign reported
	Done     int
	Executed int
	// Tracer holds the run's spans when Spec.Trace enabled tracing (nil
	// otherwise); Metrics is the federation registry either way.
	Tracer  *trace.Tracer
	Metrics *telemetry.Registry
	// Health is the run's health engine when Spec.Health enabled it.
	Health *obs.Engine
	// Prof is the run's spine profiler when Spec.Prof enabled it.
	Prof *prof.Profiler
}

// RunSaturation drives the spec to completion and returns the virtual
// makespan. It errors if any campaign fails or the 60-virtual-day
// deadline passes with campaigns outstanding.
func RunSaturation(spec SaturationSpec) (SaturationResult, error) {
	if spec.Sites <= 0 {
		spec.Sites = 4
	}
	sites := siteNames(spec.Sites)
	n := core.New(core.Config{Seed: spec.Seed, Sites: sites, Link: core.DefaultLink(),
		Trace: spec.Trace, Health: spec.Health, Prof: spec.Prof, Shards: spec.Shards})
	defer n.Stop()
	for _, id := range sites {
		s := n.Site(id)
		for k := 0; k < 2; k++ {
			s.AddInstrument(instrument.NewFluidicReactor(
				n.Eng, n.Rnd, fmt.Sprintf("flow-%d-%s", k, id), string(id), twin.Perovskite{}))
		}
	}
	if err := n.RunFor(3 * sim.Minute); err != nil {
		return SaturationResult{}, err
	}
	res := SaturationResult{Start: n.Eng.Now(), Finish: n.Eng.Now(),
		Tracer: n.Tracer, Metrics: n.Metrics, Health: n.Health, Prof: n.Prof}
	var failure error
	for c := 0; c < spec.Campaigns; c++ {
		n.RunCampaign(core.CampaignConfig{
			Name:        fmt.Sprintf("bench-%03d", c),
			Site:        sites[c%len(sites)],
			Model:       twin.Perovskite{},
			Budget:      spec.Budget,
			Mode:        core.OrchAgentVerified,
			SynthKind:   instrument.KindFlowReactor,
			Parallelism: spec.Parallelism,
		}, func(r *core.CampaignReport) {
			res.Done++
			res.Executed += r.Executed
			if r.Err != nil && failure == nil {
				failure = fmt.Errorf("campaign %s: %w", r.Name, r.Err)
			}
			if r.Finished > res.Finish {
				res.Finish = r.Finished
			}
		})
	}
	deadline := n.Eng.Now() + 60*sim.Day
	for res.Done < spec.Campaigns && n.Eng.Now() < deadline {
		if err := n.RunFor(sim.Hour); err != nil {
			return res, err
		}
	}
	if failure != nil {
		return res, failure
	}
	if res.Done != spec.Campaigns {
		return res, fmt.Errorf("experiments: only %d/%d campaigns completed by the deadline",
			res.Done, spec.Campaigns)
	}
	return res, nil
}
