package experiments

import (
	"testing"

	"github.com/aisle-sim/aisle/internal/sim"
)

// TestChaosInvariantsAcrossSeeds is the seeded property test behind E16's
// acceptance bar: 5 seeds x 120 jobs = 600 submissions under randomized
// fault schedules at 30% intensity with the self-healing policy on. Every
// job must reach exactly one terminal callback and every continuous
// invariant must hold.
func TestChaosInvariantsAcrossSeeds(t *testing.T) {
	for s := 0; s < 5; s++ {
		seed := uint64(7000 + s*131)
		res, err := RunChaos(ChaosSpec{
			Seed:      seed,
			Jobs:      120,
			Horizon:   2 * sim.Hour,
			Intensity: 0.30,
			Recovery:  true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := res.Completed + res.Failed; got != res.Submitted {
			t.Errorf("seed %d: %d terminal outcomes for %d submissions", seed, got, res.Submitted)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d: invariant violation: %s", seed, v)
		}
		if res.Injections == 0 {
			t.Errorf("seed %d: chaos injected nothing at 30%% intensity", seed)
		}
	}
}

// TestChaosNoFaultDeterministic pins the zero-intensity path: two runs of
// the same seed with chaos disabled must agree exactly, confirming the
// chaos/recovery machinery draws nothing when idle.
func TestChaosNoFaultDeterministic(t *testing.T) {
	run := func() ChaosResult {
		r, err := RunChaos(ChaosSpec{Seed: 42, Jobs: 60, Horizon: sim.Hour})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Failed != b.Failed || a.P99LatencyS != b.P99LatencyS {
		t.Fatalf("fixed-seed no-fault runs diverged: %+v vs %+v", a, b)
	}
	if a.Injections != 0 {
		t.Fatalf("zero intensity injected %d faults", a.Injections)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("violations in a fault-free run: %v", a.Violations)
	}
}

// TestChaosRecoveryOutcompletesBaseline is the benchmark claim in test
// form: at 15% fault intensity the self-healing policy must complete at
// least 95% of jobs and strictly beat the no-recovery baseline.
func TestChaosRecoveryOutcompletesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("two full chaos cells")
	}
	spec := ChaosSpec{Seed: 2, Jobs: 300, Horizon: 3 * sim.Hour, Intensity: 0.15}
	base, err := RunChaos(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Recovery = true
	healed, err := RunChaos(spec)
	if err != nil {
		t.Fatal(err)
	}
	if healed.CompletionRate < 0.95 {
		t.Errorf("recovery completion rate %.1f%% < 95%%", healed.CompletionRate*100)
	}
	if healed.CompletionRate <= base.CompletionRate {
		t.Errorf("recovery (%.1f%%) did not beat baseline (%.1f%%)",
			healed.CompletionRate*100, base.CompletionRate*100)
	}
	for _, v := range healed.Violations {
		t.Errorf("invariant violation with recovery on: %s", v)
	}
	for _, v := range base.Violations {
		t.Errorf("invariant violation with recovery off: %s", v)
	}
}
