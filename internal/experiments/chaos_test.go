package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/aisle-sim/aisle/internal/obs"
	"github.com/aisle-sim/aisle/internal/sim"
)

// dumpHealthEvidence freezes the run's flight recorder and writes the
// snapshot journal plus the incident root-cause report under the directory
// named by AISLE_SNAPSHOT_DIR. CI sets the variable on the chaos lane and
// uploads the directory as an artifact when the lane fails, so a red run
// ships the evidence needed to diagnose it. No-op when the variable is
// unset (local runs) or the run's health engine was disabled.
func dumpHealthEvidence(t *testing.T, res ChaosResult, tag string) {
	t.Helper()
	dir := os.Getenv("AISLE_SNAPSHOT_DIR")
	if dir == "" || res.Health == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("flight recorder: mkdir %s: %v", dir, err)
		return
	}
	// Freeze whatever the ring holds right now: violations snapshot
	// automatically, but a terminal-count mismatch with no violation would
	// otherwise leave the journal unfrozen.
	res.Health.Snapshot("ci:" + tag)
	write := func(name string, fn func(io.Writer) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Logf("flight recorder: %v", err)
			return
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Logf("flight recorder: writing %s: %v", name, err)
		}
	}
	write("snapshots-"+tag+".json", res.Health.WriteSnapshotsJSON)
	write("incidents-"+tag+".json", res.Health.WriteIncidentsJSON)
	t.Logf("flight-recorder evidence for %s written under %s", tag, dir)
}

// TestChaosInvariantsAcrossSeeds is the seeded property test behind E16's
// acceptance bar: 5 seeds x 120 jobs = 600 submissions under randomized
// fault schedules at 30% intensity with the self-healing policy on. Every
// job must reach exactly one terminal callback and every continuous
// invariant must hold.
func TestChaosInvariantsAcrossSeeds(t *testing.T) {
	for s := 0; s < 5; s++ {
		seed := uint64(7000 + s*131)
		res, err := RunChaos(ChaosSpec{
			Seed:      seed,
			Jobs:      120,
			Horizon:   2 * sim.Hour,
			Intensity: 0.30,
			Recovery:  true,
			Health:    obs.Options{Enabled: true},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dumpHealthEvidence(t, res, fmt.Sprintf("invariants-seed-%d", seed))
		if got := res.Completed + res.Failed; got != res.Submitted {
			t.Errorf("seed %d: %d terminal outcomes for %d submissions", seed, got, res.Submitted)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d: invariant violation: %s", seed, v)
		}
		if res.Injections == 0 {
			t.Errorf("seed %d: chaos injected nothing at 30%% intensity", seed)
		}
	}
}

// TestChaosNoFaultDeterministic pins the zero-intensity path: two runs of
// the same seed with chaos disabled must agree exactly, confirming the
// chaos/recovery machinery draws nothing when idle.
func TestChaosNoFaultDeterministic(t *testing.T) {
	run := func() ChaosResult {
		r, err := RunChaos(ChaosSpec{Seed: 42, Jobs: 60, Horizon: sim.Hour})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Failed != b.Failed || a.P99LatencyS != b.P99LatencyS {
		t.Fatalf("fixed-seed no-fault runs diverged: %+v vs %+v", a, b)
	}
	if a.Injections != 0 {
		t.Fatalf("zero intensity injected %d faults", a.Injections)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("violations in a fault-free run: %v", a.Violations)
	}
}

// TestChaosRecoveryOutcompletesBaseline is the benchmark claim in test
// form: at 15% fault intensity the self-healing policy must complete at
// least 95% of jobs and strictly beat the no-recovery baseline.
func TestChaosRecoveryOutcompletesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("two full chaos cells")
	}
	spec := ChaosSpec{Seed: 2, Jobs: 300, Horizon: 3 * sim.Hour, Intensity: 0.15}
	base, err := RunChaos(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Recovery = true
	spec.Health = obs.Options{Enabled: true}
	healed, err := RunChaos(spec)
	if err != nil {
		t.Fatal(err)
	}
	dumpHealthEvidence(t, healed, "recovery-seed-2")
	if healed.CompletionRate < 0.95 {
		t.Errorf("recovery completion rate %.1f%% < 95%%", healed.CompletionRate*100)
	}
	if healed.CompletionRate <= base.CompletionRate {
		t.Errorf("recovery (%.1f%%) did not beat baseline (%.1f%%)",
			healed.CompletionRate*100, base.CompletionRate*100)
	}
	for _, v := range healed.Violations {
		t.Errorf("invariant violation with recovery on: %s", v)
	}
	for _, v := range base.Violations {
		t.Errorf("invariant violation with recovery off: %s", v)
	}
}
