package experiments

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/core"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/llm"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/twin"
)

func init() {
	register("E1", "M8: hierarchical LLM orchestration vs manual — campaign speedup", runE1)
	register("E2", "M8: experimental correctness with vs without verification tools", runE2)
	register("E2a", "ablation: correctness vs defect rate across verification depths", runE2a)
}

// runE1 reproduces M8's "3x speedup over manual orchestration": the same
// closed-loop materials campaign executed under the three orchestration
// modes on an identical two-site federation.
func runE1(o Options) []*telemetry.Table {
	budget := o.scale(24, 8)
	reps := o.replicas()

	type row struct {
		makespanH float64
		decisionH float64
		instrH    float64
		correct   float64
		best      float64
	}
	run := func(mode core.Orchestration) []row {
		return parMap(reps, func(rep int) row {
			// Batch reactors keep instrument time in the loop, so the
			// speedup reflects orchestration overhead rather than
			// instrument asymmetry (that axis is E4's).
			n := buildFederation(testbedOpts{
				seed: o.Seed + uint64(rep)*1000, sites: 2, reactors: "batch",
			})
			defer n.Stop()
			r := runCampaign(n, core.CampaignConfig{
				Name: fmt.Sprintf("e1-%s-%d", mode, rep), Site: "ornl",
				Model: twin.Perovskite{}, Budget: budget, Mode: mode,
				SynthKind:        instrument.KindSynthesis,
				CharacterizeKind: instrument.KindSpectrometer,
				SeedLabel:        fmt.Sprintf("r%d", rep),
			}, 365*sim.Day)
			if r == nil {
				return row{}
			}
			return row{
				makespanH: r.Makespan().Seconds() / 3600,
				decisionH: r.DecisionTime.Seconds() / 3600,
				instrH:    r.InstrumentTime.Seconds() / 3600,
				correct:   r.Correctness(),
				best:      r.BestValue,
			}
		})
	}

	manual := run(core.OrchManual)
	agent := run(core.OrchAgent)
	verified := run(core.OrchAgentVerified)

	manualMakespan := meanOf(manual, func(r row) float64 { return r.makespanH })

	t := &telemetry.Table{
		Name:    "E1",
		Caption: fmt.Sprintf("orchestration-mode comparison, %d-experiment perovskite campaign (mean of %d replicas)", budget, reps),
		Columns: []string{"mode", "makespan (h)", "decision (h)", "instrument (h)", "speedup vs manual", "correctness", "best plqy"},
	}
	for _, m := range []struct {
		name string
		rows []row
	}{{"manual", manual}, {"agent (no verify)", agent}, {"agent + verification", verified}} {
		mk := meanOf(m.rows, func(r row) float64 { return r.makespanH })
		t.AddRow(m.name,
			mk,
			meanOf(m.rows, func(r row) float64 { return r.decisionH }),
			meanOf(m.rows, func(r row) float64 { return r.instrH }),
			fmt.Sprintf("%.1fx", manualMakespan/mk),
			fmt.Sprintf("%.1f%%", 100*meanOf(m.rows, func(r row) float64 { return r.correct })),
			meanOf(m.rows, func(r row) float64 { return r.best }),
		)
	}
	t.AddNote("paper claim (M8): 3x speedup over manual orchestration")
	return []*telemetry.Table{t}
}

// runE2 reproduces M8's ">95% experimental correctness versus agent usage
// without verification tools" at the proposal level.
func runE2(o Options) []*telemetry.Table {
	nProps := o.scale(4000, 500)
	tw := twin.NewTwin(twin.Perovskite{}, twin.Noise{})
	space := twin.Perovskite{}.Space()
	intended := map[string]float64{"temperature": 150, "halide_ratio": 0.5, "residence_s": 60, "ligand_mM": 15}

	t := &telemetry.Table{
		Name:    "E2",
		Caption: fmt.Sprintf("command correctness over %d proposals, defect rate 25%%", nProps),
		Columns: []string{"verification", "correctness", "defects injected", "caught", "repairs", "mean decision (s)"},
	}
	for _, mode := range []struct {
		name string
		mk   func() *llm.Orchestrator
	}{
		{"none", func() *llm.Orchestrator {
			a := llm.NewOrchestrator(rng.New(o.Seed), nil)
			return a
		}},
		{"bounds only", func() *llm.Orchestrator {
			a := llm.NewOrchestrator(rng.New(o.Seed), tw)
			a.Mode = llm.VerifyBounds
			return a
		}},
		{"bounds + twin prediction", func() *llm.Orchestrator {
			return llm.NewOrchestrator(rng.New(o.Seed), tw)
		}},
	} {
		a := mode.mk()
		correct := 0
		var latency float64
		for i := 0; i < nProps; i++ {
			p := a.Propose(intended, space, "maximize plqy")
			if p.Correct() {
				correct++
			}
			latency += p.Latency.Seconds()
		}
		_, defects, repairs, caught := a.Stats()
		t.AddRow(mode.name,
			fmt.Sprintf("%.1f%%", 100*float64(correct)/float64(nProps)),
			defects, caught, repairs,
			latency/float64(nProps),
		)
	}
	t.AddNote("paper claim (M8): >95%% experimental correctness with verification")
	return []*telemetry.Table{t}
}

// runE2a sweeps defect rate against verification depth — the design-choice
// ablation behind the M8 verification milestone.
func runE2a(o Options) []*telemetry.Table {
	nProps := o.scale(2000, 300)
	tw := twin.NewTwin(twin.Perovskite{}, twin.Noise{})
	space := twin.Perovskite{}.Space()
	intended := map[string]float64{"temperature": 150, "halide_ratio": 0.5, "residence_s": 60, "ligand_mM": 15}

	t := &telemetry.Table{
		Name:    "E2a",
		Caption: "correctness vs agent defect rate, by verification depth",
		Columns: []string{"defect rate", "no verify", "bounds", "bounds+twin"},
	}
	for _, rate := range []float64{0.05, 0.15, 0.25, 0.40} {
		cells := []any{fmt.Sprintf("%.0f%%", rate*100)}
		for _, mode := range []llm.VerifyMode{llm.VerifyOff, llm.VerifyBounds, llm.VerifyFull} {
			a := llm.NewOrchestrator(rng.New(o.Seed+uint64(rate*100)), tw)
			a.Mode = mode
			a.DefectRate = rate
			correct := 0
			for i := 0; i < nProps; i++ {
				p := a.Propose(intended, space, "g")
				if p.Correct() {
					correct++
				}
			}
			cells = append(cells, fmt.Sprintf("%.1f%%", 100*float64(correct)/float64(nProps)))
		}
		t.AddRow(cells...)
	}
	return []*telemetry.Table{t}
}
