package experiments

import "github.com/aisle-sim/aisle/internal/telemetry"

// tableT aliases telemetry.Table for compact test code.
type tableT = telemetry.Table
