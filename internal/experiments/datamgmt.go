package experiments

import (
	"fmt"
	"time"

	"github.com/aisle-sim/aisle/internal/fabric"
	"github.com/aisle-sim/aisle/internal/metadata"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

func init() {
	register("E8", "M5: automated metadata annotation accuracy across domains", runE8)
	register("E9", "M6: federated data mesh — discovery recall and autonomous FAIR governance", runE9)
	register("E9a", "ablation: pass-by-reference proxies vs by-value data movement", runE9a)
	register("E10", "M7: high-velocity stream quality assessment — throughput, precision, recall", runE10)
}

// runE8 reproduces M5: AI-driven metadata annotation "achieving high
// accuracy without human intervention" in multiple domains.
func runE8(o Options) []*telemetry.Table {
	docs := o.scale(3000, 600)
	g := metadata.NewGenerator(rng.New(o.Seed))
	corpus := g.Corpus([]metadata.Domain{
		metadata.DomainMaterials, metadata.DomainChemistry, metadata.DomainBiology,
	}, docs)

	start := time.Now()
	rep := metadata.Evaluate(&metadata.Annotator{}, corpus)
	wall := time.Since(start).Seconds()

	t := &telemetry.Table{
		Name:    "E8",
		Caption: fmt.Sprintf("field-level extraction accuracy over %d generated documents", docs),
		Columns: []string{"domain", "fields", "accuracy"},
	}
	for _, d := range []metadata.Domain{metadata.DomainMaterials, metadata.DomainChemistry, metadata.DomainBiology} {
		ds := rep.ByDomain[d]
		t.AddRow(string(d), ds.Fields, fmt.Sprintf("%.1f%%", ds.Accuracy()*100))
	}
	t.AddRow("overall", rep.Fields, fmt.Sprintf("%.1f%%", rep.Accuracy()*100))
	t.AddNote("throughput: %.0f documents/s (wall)", float64(docs)/wall)
	t.AddNote("paper claim (M5): high accuracy without human intervention, multiple domains")
	return []*telemetry.Table{t}
}

// e9Mesh builds a 4-site mesh populated with datasets of varying curation
// quality.
func e9Mesh(seed uint64, perSite int) (*sim.Engine, *fabric.Mesh, []netsim.SiteID) {
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(seed))
	sites := []netsim.SiteID{"ornl", "anl", "slac", "pnnl"}
	for _, s := range sites {
		net.AddSite(s).Firewall.AllowAll()
	}
	net.FullMesh(sites, netsim.Link{Latency: 15 * sim.Millisecond, Bandwidth: 125e6})
	m := fabric.NewMesh(net)
	r := rng.New(seed).Fork("datasets")
	domains := []string{"materials", "chemistry", "biology", "physics"}
	topics := []string{"perovskite", "alloy", "catalysis", "polymer", "battery", "nanocrystal"}
	for _, s := range sites {
		node := m.AddNode(s)
		for i := 0; i < perSite; i++ {
			topic := topics[r.Intn(len(topics))]
			d := fabric.Dataset{
				ID:     fmt.Sprintf("%s-ds-%04d", s, i),
				Title:  fmt.Sprintf("%s study %d at %s", topic, i, s),
				Domain: domains[r.Intn(len(domains))],
			}
			// Only some datasets arrive well-curated.
			if r.Bool(0.3) {
				d.Keywords = []string{topic, "aisle", "autonomous"}
				d.License = "CC-BY-4.0"
				d.AccessURL = "aisle://" + string(s) + "/" + d.ID
				d.Metadata = map[string]string{"a": "1", "b": "2", "c": "3", "d": "4"}
			}
			node.Publish(d)
		}
	}
	return eng, m, sites
}

// runE9 reproduces M6: federated mesh with cross-institutional discovery
// and autonomous FAIR governance.
func runE9(o Options) []*telemetry.Table {
	perSite := o.scale(2500, 400)
	_, m, sites := e9Mesh(o.Seed, perSite)

	// Discovery recall: every "perovskite" dataset must be findable from a
	// single federated query.
	var want int
	for _, s := range sites {
		node := m.Node(s)
		for _, id := range node.Datasets() {
			d, _ := node.Dataset(id)
			if containsToken(d.Title, "perovskite") {
				want++
			}
		}
	}
	start := time.Now()
	hits := m.Search("perovskite")
	queryWall := time.Since(start).Seconds()
	recall := float64(len(hits)) / float64(want)

	// FAIR governance: score before, curate, score after.
	scoreAll := func() (mean float64, compliant float64) {
		n := 0
		for _, s := range sites {
			node := m.Node(s)
			for _, id := range node.Datasets() {
				d, _ := node.Dataset(id)
				sc := m.ScoreFAIR(d).Overall()
				mean += sc
				if sc >= 0.8 {
					compliant++
				}
				n++
			}
		}
		return mean / float64(n), compliant / float64(n)
	}
	beforeMean, beforeComp := scoreAll()
	repairs := 0
	for _, s := range sites {
		rep := (&fabric.Curator{Mesh: m}).Curate(m.Node(s))
		repairs += rep.Repairs
	}
	afterMean, afterComp := scoreAll()

	t := &telemetry.Table{
		Name:    "E9",
		Caption: fmt.Sprintf("4-site mesh, %d datasets", 4*perSite),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("federated query recall", fmt.Sprintf("%.1f%% (%d/%d)", recall*100, len(hits), want))
	t.AddRow("federated query wall time", fmt.Sprintf("%.2f ms", queryWall*1000))
	t.AddRow("mean FAIR before curation", beforeMean)
	t.AddRow("mean FAIR after curation", afterMean)
	t.AddRow("FAIR-compliant (>=0.8) before", fmt.Sprintf("%.1f%%", beforeComp*100))
	t.AddRow("FAIR-compliant (>=0.8) after", fmt.Sprintf("%.1f%%", afterComp*100))
	t.AddRow("autonomous repairs applied", repairs)
	t.AddNote("paper claim (M6): cross-institutional discovery with autonomous FAIR data governance")
	return []*telemetry.Table{t}
}

func containsToken(title, tok string) bool {
	return len(title) >= len(tok) && (title[:len(tok)] == tok || containsTokenRest(title, tok))
}

func containsTokenRest(title, tok string) bool {
	for i := 1; i+len(tok) <= len(title); i++ {
		if title[i:i+len(tok)] == tok {
			return true
		}
	}
	return false
}

// runE9a is the ProxyStore ablation: moving dataset references versus
// moving dataset bytes through a 3-hop agent pipeline.
func runE9a(o Options) []*telemetry.Table {
	sizeMB := o.scale(64, 8)
	size := sizeMB * 1e6

	run := func(byValue bool) (seconds float64, bytesMoved float64) {
		eng := sim.NewEngine()
		net := netsim.New(eng, rng.New(o.Seed))
		sites := []netsim.SiteID{"a", "b", "c"}
		for _, s := range sites {
			net.AddSite(s).Firewall.AllowAll()
		}
		net.FullMesh(sites, netsim.Link{Latency: 15 * sim.Millisecond, Bandwidth: 125e6})
		m := fabric.NewMesh(net)
		for _, s := range sites {
			m.AddNode(s)
		}
		data := make([]byte, size)
		ref := m.Node("a").Put(data)

		var done sim.Time
		if byValue {
			// a -> b -> c: the bytes travel both hops.
			m.Fetch("b", ref, func(d []byte, err error) {
				if err != nil {
					return
				}
				ref2 := m.Node("b").Put(d)
				m.Fetch("c", ref2, func([]byte, error) { done = eng.Now() })
			})
		} else {
			// The reference travels (100 bytes per hop); only the final
			// consumer resolves the data, once.
			_ = net.Send(netsim.Message{From: "a", To: "b", Service: "fabric", Size: 100},
				func(netsim.Message) {
					_ = net.Send(netsim.Message{From: "b", To: "c", Service: "fabric", Size: 100},
						func(netsim.Message) {
							m.Fetch("c", ref, func([]byte, error) { done = eng.Now() })
						})
				})
		}
		_ = eng.Run()
		moved := float64(m.Metrics().Counter("fabric.bytes_moved").Value())
		return done.Seconds(), moved
	}

	valSec, valBytes := run(true)
	refSec, refBytes := run(false)

	t := &telemetry.Table{
		Name:    "E9a",
		Caption: fmt.Sprintf("%dMB dataset through a 3-site agent pipeline", sizeMB),
		Columns: []string{"strategy", "end-to-end (s)", "bytes moved (MB)"},
	}
	t.AddRow("by value (copy at each hop)", valSec, valBytes/1e6)
	t.AddRow("by reference (proxy)", refSec, refBytes/1e6)
	t.AddRow("proxy advantage", fmt.Sprintf("%.2fx faster", valSec/refSec),
		fmt.Sprintf("%.2fx fewer bytes", valBytes/refBytes))
	return []*telemetry.Table{t}
}

// runE10 reproduces M7: near-real-time stream processing with automated
// quality assessment.
func runE10(o Options) []*telemetry.Table {
	events := o.scale(200000, 20000)
	p := fabric.NewStreamProcessor()
	p.Lo, p.Hi = -50, 500
	p.ReduceKeep1InN = 10
	kept := 0
	p.OnNormal = func(fabric.Assessment) { kept++ }

	r := rng.New(o.Seed).Fork("stream")
	var stats fabric.StreamStats
	start := time.Now()
	for i := 0; i < events; i++ {
		src := fmt.Sprintf("sensor-%d", i%8)
		ev := fabric.StreamEvent{Source: src, Value: r.Normal(100, 3)}
		if r.Bool(0.01) {
			ev.Truth = true
			switch r.Intn(3) {
			case 0:
				ev.Value = 700 // hard out-of-range
			case 1:
				ev.Value = 100 + r.Range(30, 90) // spike
			default:
				ev.Value = 100 - r.Range(30, 90) // negative spike
			}
		}
		stats.Score(p.Ingest(ev))
	}
	wall := time.Since(start).Seconds()

	t := &telemetry.Table{
		Name:    "E10",
		Caption: fmt.Sprintf("%d events across 8 sensors, 1%% injected anomalies", events),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("throughput (events/s wall)", float64(events)/wall)
	t.AddRow("anomaly precision", fmt.Sprintf("%.1f%%", stats.Precision()*100))
	t.AddRow("anomaly recall", fmt.Sprintf("%.1f%%", stats.Recall()*100))
	t.AddRow("normal events forwarded", kept)
	t.AddRow("data reduction", fmt.Sprintf("%.1fx", float64(stats.TrueNegatives)/float64(max1(kept))))
	t.AddNote("paper claim (M7): high-velocity streams with automated quality assessment and intelligent reduction")
	return []*telemetry.Table{t}
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
