package experiments

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/discovery"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

func init() {
	register("E11", "M12: self-discovering agent networks — convergence and capability negotiation", runE11)
	register("E12", "§3.3: navigating a 10^13-condition synthesis space (Smart Dope)", runE12)
}

// runE11 reproduces M12: DNS-SD-style self-discovery with dynamic
// reconfiguration — convergence time after a registration burst, after
// partition heal, and capability-negotiation success.
func runE11(o Options) []*telemetry.Table {
	reps := o.replicas()

	type result struct {
		burstS     float64
		healS      float64
		negotiated float64
	}
	run := func(nSites, nServices int) []result {
		return parMap(reps, func(rep int) result {
			eng := sim.NewEngine()
			net := netsim.New(eng, rng.New(o.Seed+uint64(rep)*17))
			sites := siteNames(nSites)
			for _, s := range sites {
				net.AddSite(s).Firewall.AllowAll()
			}
			// Ring topology: gossip must propagate hop by hop, so
			// convergence time scales with network diameter (the geographic
			// distribution M12 describes).
			link := netsim.Link{Latency: 15 * sim.Millisecond, Jitter: sim.Millisecond}
			for i := range sites {
				net.Connect(sites[i], sites[(i+1)%len(sites)], link)
			}
			fab := bus.NewFabric(net)
			d := discovery.NewDirectory(fab, sites)
			d.GossipInterval = 2 * sim.Second
			d.Start()
			defer d.Stop()

			// Registration burst spread across sites.
			for i := 0; i < nServices; i++ {
				site := sites[i%len(sites)]
				d.Registry(site).Register(discovery.Record{
					Instance: fmt.Sprintf("%s/svc-%02d", site, i),
					Type:     "_instr._aisle",
					Addr:     bus.Address{Site: site, Name: fmt.Sprintf("svc-%02d", i)},
					Capabilities: map[string]float64{
						"throughput": float64(1 + i%7),
						"resolution": float64(1+i%5) / 10,
					},
				})
			}
			burstStart := eng.Now()
			burst := convergeTime(eng, d, burstStart, 10*sim.Minute)

			// Partition one site away, register a service behind the
			// partition, heal, and measure re-convergence.
			island := []netsim.SiteID{sites[len(sites)-1]}
			rest := sites[:len(sites)-1]
			net.Partition(rest, island)
			d.Registry(island[0]).Register(discovery.Record{
				Instance: string(island[0]) + "/late",
				Type:     "_instr._aisle",
				Addr:     bus.Address{Site: island[0], Name: "late"},
			})
			_ = eng.RunUntil(eng.Now() + 30*sim.Second)
			net.Heal(rest, island)
			healStart := eng.Now()
			heal := convergeTime(eng, d, healStart, 10*sim.Minute)

			// Capability negotiation from every site.
			negOK := 0
			for _, s := range sites {
				if _, ok := d.Registry(s).Negotiate(discovery.Requirement{
					Type:    "_instr._aisle",
					MinCaps: map[string]float64{"throughput": 5},
					Prefer:  "resolution",
				}); ok {
					negOK++
				}
			}
			return result{
				burstS:     burst.Seconds(),
				healS:      heal.Seconds(),
				negotiated: float64(negOK) / float64(len(sites)),
			}
		})
	}

	t := &telemetry.Table{
		Name:    "E11",
		Caption: fmt.Sprintf("discovery convergence, 2s gossip (mean of %d replicas)", reps),
		Columns: []string{"topology", "burst convergence (s)", "heal convergence (s)", "negotiation success"},
	}
	for _, tc := range []struct {
		sites, services int
	}{{3, 12}, {6, 30}, {8, 48}} {
		rows := run(tc.sites, tc.services)
		t.AddRow(fmt.Sprintf("%d sites / %d services", tc.sites, tc.services),
			meanOf(rows, func(r result) float64 { return r.burstS }),
			meanOf(rows, func(r result) float64 { return r.healS }),
			fmt.Sprintf("%.0f%%", 100*meanOf(rows, func(r result) float64 { return r.negotiated })))
	}
	t.AddNote("paper claim (M12): dynamic reconfiguration and capability negotiation without central coordination")
	return []*telemetry.Table{t}
}

// convergeTime advances the engine until the directory converges, returning
// the elapsed virtual time (or the horizon on overrun).
func convergeTime(eng *sim.Engine, d *discovery.Directory, start sim.Time, horizon sim.Time) sim.Time {
	deadline := start + horizon
	for !d.Converged() && eng.Now() < deadline {
		_ = eng.RunUntil(eng.Now() + 500*sim.Millisecond)
	}
	return eng.Now() - start
}

// runE12 reproduces the Smart Dope claim: AI-guided search navigating ~10^13
// possible synthesis conditions, against random and grid baselines.
func runE12(o Options) []*telemetry.Table {
	reps := o.replicas()
	return []*telemetry.Table{searchTable(o, reps)}
}
