// Package experiments regenerates the paper's quantitative claims. The
// AISLE paper is a roadmap without an evaluation section, so the experiment
// suite treats every numbered milestone claim (see DESIGN.md §3) as a
// table to reproduce: E1/E2 for M8, E3 for M9, E4 for the fluidic-SDL
// efficiency claim, E5 for the decades-to-months framing, E6/E7 for
// M10-M11, E8-E10 for M5-M7, E11 for M12, E12 for the Smart Dope search
// space, E13 for M2/M3 fault tolerance, and E14 for M13/M14.
//
// Every experiment accepts Options and returns telemetry tables; replicas
// run in parallel across a bounded worker pool, each on its own simulation
// engine with a forked random stream, so results are deterministic for a
// given seed regardless of GOMAXPROCS.
package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"github.com/aisle-sim/aisle/internal/telemetry"
)

// Options configures a run of the suite.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Replicas per condition. Default 5 (2 in Quick mode).
	Replicas int
	// Quick shrinks workloads for CI and benchmarks.
	Quick bool
}

func (o Options) replicas() int {
	if o.Replicas > 0 {
		return o.Replicas
	}
	if o.Quick {
		return 2
	}
	return 5
}

// scale picks between full and quick workload sizes.
func (o Options) scale(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Runner is one experiment: it returns the tables that mirror the claim.
type Runner func(Options) []*telemetry.Table

// registry maps experiment IDs to runners, populated by init functions in
// the per-experiment files.
var registry = map[string]Runner{}

// descriptions holds one-line summaries for listings.
var descriptions = map[string]string{}

func register(id, description string, r Runner) {
	registry[id] = r
	descriptions[id] = description
}

// IDs lists registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns an experiment's one-line summary.
func Describe(id string) string { return descriptions[id] }

// Run executes one experiment by ID.
func Run(id string, o Options) ([]*telemetry.Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return r(o), nil
}

// RunAll executes every registered experiment in ID order.
func RunAll(o Options) []*telemetry.Table {
	var out []*telemetry.Table
	for _, id := range IDs() {
		tables, _ := Run(id, o)
		out = append(out, tables...)
	}
	return out
}

// parMap runs fn for i in [0,n) across a bounded worker pool and returns
// the results in index order. Each fn invocation must be self-contained
// (own engine, own RNG fork) — the pool provides wall-clock parallelism for
// replica fan-out without perturbing determinism.
func parMap[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	idx := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range idx {
				out[i] = fn(i)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	for w := 0; w < workers; w++ {
		<-done
	}
	return out
}

// meanOf averages a float extractor over replicas.
func meanOf[T any](xs []T, f func(T) float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += f(x)
	}
	return s / float64(len(xs))
}

// collect extracts a float per replica for Summarize.
func collect[T any](xs []T, f func(T) float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}
