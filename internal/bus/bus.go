// Package bus implements the interoperable agent-communication layer of
// AISLE (paper dimension 4, milestone M10): message-oriented middleware over
// the simulated WAN offering the three interaction patterns the paper calls
// for —
//
//   - synchronous request-reply RPC with timeouts, retries, and failover
//     (the role gRPC plays in the roadmap),
//   - asynchronous work queues with acknowledgements, redelivery, and
//     dead-lettering (the role of AMQP), and
//   - publish/subscribe fan-out with at-most-once or at-least-once QoS.
//
// Delivery middleware hooks let the zero-trust layer (internal/security)
// authenticate every message without the bus knowing about tokens.
package bus

import (
	"errors"
	"fmt"
	"sort"

	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
)

// Address identifies an endpoint: a named mailbox at a site.
type Address struct {
	Site netsim.SiteID
	Name string
}

// String renders site/name.
func (a Address) String() string { return string(a.Site) + "/" + a.Name }

// Kind discriminates envelope types on the wire.
type Kind int

// Envelope kinds.
const (
	KindRequest Kind = iota
	KindReply
	KindEvent
	KindQueueMsg
	KindAck
	KindNack
)

// Envelope is one bus-level message.
type Envelope struct {
	ID      uint64
	Kind    Kind
	From    Address
	To      Address
	Topic   string // event topic or queue name
	Method  string // RPC method
	CorrID  uint64 // request/response correlation, delivery tag for acks
	Payload any
	Token   any // opaque credential checked by middleware
	Size    int // payload size in bytes for the network model
	Attempt int // delivery attempt, 1-based
	// Trace is the causal context the envelope travels under; the network
	// layer records per-hop delivery spans against it.
	Trace trace.Context
}

// Errors surfaced to RPC callers and queue producers.
var (
	ErrTimeout       = errors.New("bus: request timed out")
	ErrNoEndpoint    = errors.New("bus: no such endpoint")
	ErrNoQueue       = errors.New("bus: no such queue")
	ErrRejected      = errors.New("bus: rejected by middleware")
	ErrNoConsumers   = errors.New("bus: queue has no consumers")
	ErrUnreachable   = errors.New("bus: destination unreachable")
	ErrHandlerFailed = errors.New("bus: handler failed")
)

// Middleware inspects an envelope at delivery; a non-nil error rejects it.
type Middleware func(*Envelope) error

// Handler processes a request and must eventually call respond exactly once.
type Handler func(env *Envelope, respond func(result any, err error))

// Fabric is the federation-wide bus: one broker per site, connected by the
// network. Create with NewFabric, then Register endpoints, Subscribe,
// DeclareQueue, and exchange messages.
type Fabric struct {
	net     *netsim.Network
	eng     *sim.Engine
	metrics *telemetry.Registry
	brokers map[netsim.SiteID]*Broker
	nextID  uint64
	mw      []Middleware
	prof    *prof.Profiler

	// pub/sub state shared across sites.
	topicSubs   map[string][]subscriberRef
	awaitingAck map[uint64]*sim.Event
	deadLetters []*Envelope

	// DefaultSize is the assumed payload size when an envelope has Size 0.
	DefaultSize int

	// TokenSource, when set, supplies a credential for outbound envelopes
	// that carry none — how infrastructure traffic (discovery gossip,
	// knowledge propagation) authenticates under zero trust without every
	// subsystem knowing about tokens.
	TokenSource func(from Address) any
}

// NewFabric builds a bus spanning the given network.
func NewFabric(net *netsim.Network) *Fabric {
	return &Fabric{
		net:         net,
		eng:         net.Engine(),
		metrics:     telemetry.NewRegistry(),
		brokers:     make(map[netsim.SiteID]*Broker),
		DefaultSize: 256,
	}
}

// Metrics exposes bus telemetry.
func (f *Fabric) Metrics() *telemetry.Registry { return f.metrics }

// SetProfiler attaches the spine profiler (nil disables, the default).
// Broker-side envelope dispatch runs under bus.dispatch, and each completed
// RPC records its virtual latency as a bus.dispatch sample carrying the
// call's trace ID as exemplar.
func (f *Fabric) SetProfiler(p *prof.Profiler) { f.prof = p }

// Engine exposes the simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Use appends delivery middleware applied to every inbound envelope at its
// destination broker, in registration order.
func (f *Fabric) Use(m Middleware) { f.mw = append(f.mw, m) }

// Broker returns (creating on demand) the broker at a site.
func (f *Fabric) Broker(site netsim.SiteID) *Broker {
	b, ok := f.brokers[site]
	if !ok {
		b = &Broker{
			fabric:    f,
			site:      site,
			endpoints: make(map[string]Handler),
			subs:      make(map[string][]subscription),
			queues:    make(map[string]*Queue),
		}
		f.brokers[site] = b
	}
	return b
}

func (f *Fabric) id() uint64 {
	f.nextID++
	return f.nextID
}

// send routes an envelope over the network to the destination broker.
// The onSendErr callback receives synchronous admission errors (link down,
// firewall); silent loss is not reported, as on a real WAN.
func (f *Fabric) send(env *Envelope, onSendErr func(error)) {
	size := env.Size
	if size == 0 {
		size = f.DefaultSize
	}
	if env.Token == nil && f.TokenSource != nil {
		env.Token = f.TokenSource(env.From)
	}
	msg := netsim.Message{
		From:    env.From.Site,
		To:      env.To.Site,
		Service: "bus",
		Size:    size,
		Payload: env,
		Trace:   env.Trace,
	}
	err := f.net.Send(msg, func(m netsim.Message) {
		f.Broker(env.To.Site).deliver(m.Payload.(*Envelope))
	})
	if err != nil && onSendErr != nil {
		onSendErr(err)
	}
}

// Broker is the per-site message broker.
type Broker struct {
	fabric      *Fabric
	site        netsim.SiteID
	endpoints   map[string]Handler
	subs        map[string][]subscription
	queues      map[string]*Queue
	pending     map[uint64]*pendingCall
	consumerFns map[consumerKey]func(*Envelope) error
	seenPublish map[uint64]bool
}

type subscription struct {
	addr Address
	qos  QoS
	fn   func(*Envelope)
}

// Site reports which site this broker serves.
func (b *Broker) Site() netsim.SiteID { return b.site }

// Register installs an asynchronous handler for the named endpoint.
func (b *Broker) Register(name string, h Handler) {
	b.endpoints[name] = h
}

// RegisterFunc installs a synchronous handler that computes its reply
// immediately. procTime > 0 models server processing latency.
func (b *Broker) RegisterFunc(name string, procTime sim.Time, fn func(*Envelope) (any, error)) {
	b.Register(name, func(env *Envelope, respond func(any, error)) {
		if procTime <= 0 {
			respond(fn(env))
			return
		}
		b.fabric.eng.Schedule(procTime, func() { respond(fn(env)) })
	})
}

// Deregister removes an endpoint (e.g. on simulated crash).
func (b *Broker) Deregister(name string) { delete(b.endpoints, name) }

// Endpoints lists registered endpoint names, sorted.
func (b *Broker) Endpoints() []string {
	names := make([]string, 0, len(b.endpoints))
	for n := range b.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// deliver dispatches an inbound envelope: middleware first, then per-kind.
func (b *Broker) deliver(env *Envelope) {
	r := b.fabric.prof.Enter(prof.SiteBusDispatch)
	defer r.End()
	m := b.fabric.metrics
	m.Counter("bus.delivered").Inc()
	for _, mw := range b.fabric.mw {
		if err := mw(env); err != nil {
			m.Counter("bus.rejected").Inc()
			if env.Kind == KindRequest {
				// Tell the caller rather than let it time out.
				b.reply(env, nil, fmt.Errorf("%w: %v", ErrRejected, err))
			}
			return
		}
	}
	switch env.Kind {
	case KindRequest:
		h, ok := b.endpoints[env.To.Name]
		if !ok {
			b.reply(env, nil, fmt.Errorf("%w: %s", ErrNoEndpoint, env.To))
			return
		}
		responded := false
		h(env, func(result any, err error) {
			if responded {
				panic("bus: handler responded twice")
			}
			responded = true
			b.reply(env, result, err)
		})
	case KindReply:
		if b.pending != nil {
			if pc, ok := b.pending[env.CorrID]; ok {
				delete(b.pending, env.CorrID)
				pc.complete(env.Payload, pc.errFromEnvelope(env))
			}
		}
	case KindEvent:
		for _, sub := range b.subs[env.Topic] {
			if sub.addr == env.To {
				sub.fn(env)
				if sub.qos == AtLeastOnce {
					b.sendAck(env)
				}
			}
		}
	case KindQueueMsg:
		// Queue messages are handled broker-locally in Queue.dispatch; a
		// remote consumer receives the message here.
		b.handleQueueDelivery(env)
	case KindAck, KindNack:
		b.handleAck(env)
	}
}

// replyErr wraps handler errors for wire transport.
type replyErr struct{ msg string }

func (b *Broker) reply(req *Envelope, result any, err error) {
	env := &Envelope{
		ID:     b.fabric.id(),
		Kind:   KindReply,
		From:   req.To,
		To:     req.From,
		Method: req.Method,
		CorrID: req.CorrID,
		Size:   b.fabric.DefaultSize,
		Trace:  req.Trace,
	}
	if err != nil {
		env.Payload = replyErr{msg: err.Error()}
	} else {
		env.Payload = result
	}
	b.fabric.send(env, nil)
}

type pendingCall struct {
	cb      func(any, error)
	timer   *sim.Event
	done    bool
	fabric  *Fabric
	started sim.Time
	retries int
	trace   uint64 // trace ID for the completion's profiler exemplar
}

func (pc *pendingCall) complete(result any, err error) {
	if pc.done {
		return
	}
	pc.done = true
	if pc.timer != nil {
		pc.fabric.eng.Cancel(pc.timer)
	}
	wait := pc.fabric.eng.Now() - pc.started
	pc.fabric.prof.Sample(prof.SiteBusDispatch, wait.Std(), pc.trace)
	lat := wait.Seconds()
	pc.fabric.metrics.Histogram("bus.rpc.latency_s").Observe(lat)
	if err != nil {
		pc.fabric.metrics.Counter("bus.rpc.failures").Inc()
	} else {
		pc.fabric.metrics.Counter("bus.rpc.ok").Inc()
	}
	pc.cb(result, err)
}

func (pc *pendingCall) errFromEnvelope(env *Envelope) error {
	if re, ok := env.Payload.(replyErr); ok {
		return fmt.Errorf("%w: %s", ErrHandlerFailed, re.msg)
	}
	return nil
}

// CallOpts configures an RPC.
type CallOpts struct {
	From       Address
	To         Address
	Method     string
	Payload    any
	Token      any
	Size       int
	Timeout    sim.Time  // per-attempt timeout; default 1s
	Retries    int       // additional attempts after the first
	Alternates []Address // failover targets tried round-robin after To fails
	// Trace propagates the caller's causal context with every attempt.
	Trace trace.Context
}

// Call issues an asynchronous RPC; cb runs exactly once with the reply or a
// terminal error. Retries and failover are transparent: each attempt gets a
// fresh timeout, alternating through To plus Alternates.
func (f *Fabric) Call(opts CallOpts, cb func(result any, err error)) {
	if opts.Timeout <= 0 {
		opts.Timeout = sim.Second
	}
	m := f.metrics
	m.Counter("bus.rpc.calls").Inc()

	targets := append([]Address{opts.To}, opts.Alternates...)
	caller := f.Broker(opts.From.Site)
	if caller.pending == nil {
		caller.pending = make(map[uint64]*pendingCall)
	}

	pc := &pendingCall{cb: cb, fabric: f, started: f.eng.Now(), trace: opts.Trace.TraceID()}

	var attempt func(n int)
	attempt = func(n int) {
		if pc.done {
			return
		}
		if n > opts.Retries {
			pc.complete(nil, fmt.Errorf("%w after %d attempts: %s %s",
				ErrTimeout, n, opts.Method, opts.To))
			return
		}
		if n > 0 {
			m.Counter("bus.rpc.retries").Inc()
			pc.retries++
		}
		target := targets[n%len(targets)]
		corr := f.id()
		caller.pending[corr] = pc
		env := &Envelope{
			ID:      f.id(),
			Kind:    KindRequest,
			From:    opts.From,
			To:      target,
			Method:  opts.Method,
			CorrID:  corr,
			Payload: opts.Payload,
			Token:   opts.Token,
			Size:    opts.Size,
			Attempt: n + 1,
			Trace:   opts.Trace,
		}
		sendFailed := false
		f.send(env, func(error) { sendFailed = true })
		if sendFailed {
			// Connection refused: move to the next attempt after a short
			// backoff rather than burning the whole timeout.
			delete(caller.pending, corr)
			f.eng.Schedule(opts.Timeout/4+sim.Millisecond, func() { attempt(n + 1) })
			return
		}
		pc.timer = f.eng.Schedule(opts.Timeout, func() {
			delete(caller.pending, corr)
			attempt(n + 1)
		})
	}
	attempt(0)
}

// QoS selects delivery guarantees for pub/sub.
type QoS int

// Delivery guarantee levels.
const (
	AtMostOnce QoS = iota
	AtLeastOnce
)
