// Package bus implements the interoperable agent-communication layer of
// AISLE (paper dimension 4, milestone M10): message-oriented middleware over
// the simulated WAN offering the three interaction patterns the paper calls
// for —
//
//   - synchronous request-reply RPC with timeouts, retries, and failover
//     (the role gRPC plays in the roadmap),
//   - asynchronous work queues with acknowledgements, redelivery, and
//     dead-lettering (the role of AMQP), and
//   - publish/subscribe fan-out with at-most-once or at-least-once QoS.
//
// Delivery middleware hooks let the zero-trust layer (internal/security)
// authenticate every message without the bus knowing about tokens.
package bus

import (
	"errors"
	"fmt"
	"sort"

	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
)

// Address identifies an endpoint: a named mailbox at a site.
type Address struct {
	Site netsim.SiteID
	Name string
}

// String renders site/name.
func (a Address) String() string { return string(a.Site) + "/" + a.Name }

// Kind discriminates envelope types on the wire.
type Kind int

// Envelope kinds.
const (
	KindRequest Kind = iota
	KindReply
	KindEvent
	KindQueueMsg
	KindAck
	KindNack
)

// Envelope is one bus-level message.
type Envelope struct {
	ID      uint64
	Kind    Kind
	From    Address
	To      Address
	Topic   string // event topic or queue name
	Method  string // RPC method
	CorrID  uint64 // request/response correlation, delivery tag for acks
	Payload any
	Token   any // opaque credential checked by middleware
	Size    int // payload size in bytes for the network model
	Attempt int // delivery attempt, 1-based
	// Trace is the causal context the envelope travels under; the network
	// layer records per-hop delivery spans against it.
	Trace trace.Context

	// Pool bookkeeping. Envelopes on the hot paths (requests, replies,
	// events, acks) come from the fabric's freelist and are recycled at
	// well-defined points: replies/events/acks when broker dispatch returns,
	// requests when the handler's respond builds the reply. Application
	// code may read a delivered envelope only within that window; payloads
	// are caller-owned and stay valid. Queue envelopes are never pooled —
	// queues retain them in backlogs, inflight tables, and DLQs.
	pooled   bool
	poolNext *Envelope
}

// Errors surfaced to RPC callers and queue producers.
var (
	ErrTimeout       = errors.New("bus: request timed out")
	ErrNoEndpoint    = errors.New("bus: no such endpoint")
	ErrNoQueue       = errors.New("bus: no such queue")
	ErrRejected      = errors.New("bus: rejected by middleware")
	ErrNoConsumers   = errors.New("bus: queue has no consumers")
	ErrUnreachable   = errors.New("bus: destination unreachable")
	ErrHandlerFailed = errors.New("bus: handler failed")
)

// Middleware inspects an envelope at delivery; a non-nil error rejects it.
type Middleware func(*Envelope) error

// Handler processes a request and must eventually call respond exactly once.
type Handler func(env *Envelope, respond func(result any, err error))

// Fabric is the federation-wide bus: one broker per site, connected by the
// network. Create with NewFabric, then Register endpoints, Subscribe,
// DeclareQueue, and exchange messages.
type Fabric struct {
	net     *netsim.Network
	eng     *sim.Engine
	metrics *telemetry.Registry
	brokers map[netsim.SiteID]*Broker
	nextID  uint64
	mw      []Middleware
	prof    *prof.Profiler

	// pub/sub state shared across sites.
	topicSubs    map[string][]subscriberRef
	awaitingAck  map[uint64]*pendingPub // at-least-once event deliveries by CorrID
	awaitingConf map[uint64]sim.Event   // queue publisher confirms by CorrID
	deadLetters  []*Envelope

	// Freelists for the pooled hot-path objects. Single-threaded like the
	// engine itself, so plain pointers suffice.
	envFree  *Envelope
	pcFree   *pendingCall
	respFree *responder
	pubFree  *pendingPub

	// deliverFn is the prebound network-delivery trampoline shared by every
	// send, so admission does not allocate a closure per message.
	deliverFn func(netsim.Message)

	// Cached hot-path metric handles, resolved once at construction.
	delivered, rejected             *telemetry.Counter
	rpcCalls, rpcRetries            *telemetry.Counter
	rpcOK, rpcFailures              *telemetry.Counter
	pubPublished, pubSent, pubAcked *telemetry.Counter
	pubRedelivered, pubDLQ          *telemetry.Counter
	rpcLatency                      *telemetry.Histogram

	// DefaultSize is the assumed payload size when an envelope has Size 0.
	DefaultSize int

	// TokenSource, when set, supplies a credential for outbound envelopes
	// that carry none — how infrastructure traffic (discovery gossip,
	// knowledge propagation) authenticates under zero trust without every
	// subsystem knowing about tokens.
	TokenSource func(from Address) any
}

// NewFabric builds a bus spanning the given network.
func NewFabric(net *netsim.Network) *Fabric {
	f := &Fabric{
		net:         net,
		eng:         net.Engine(),
		metrics:     telemetry.NewRegistry(),
		brokers:     make(map[netsim.SiteID]*Broker),
		DefaultSize: 256,
	}
	f.deliverFn = f.deliverMsg
	m := f.metrics
	f.delivered = m.Counter("bus.delivered")
	f.rejected = m.Counter("bus.rejected")
	f.rpcCalls = m.Counter("bus.rpc.calls")
	f.rpcRetries = m.Counter("bus.rpc.retries")
	f.rpcOK = m.Counter("bus.rpc.ok")
	f.rpcFailures = m.Counter("bus.rpc.failures")
	f.rpcLatency = m.Histogram("bus.rpc.latency_s")
	f.pubPublished = m.Counter("bus.pub.published")
	f.pubSent = m.Counter("bus.pub.sent")
	f.pubAcked = m.Counter("bus.pub.acked")
	f.pubRedelivered = m.Counter("bus.pub.redelivered")
	f.pubDLQ = m.Counter("bus.pub.dlq")
	return f
}

// acquireEnv pops a zeroed envelope off the freelist (or allocates one).
func (f *Fabric) acquireEnv() *Envelope {
	e := f.envFree
	if e == nil {
		e = &Envelope{}
	} else {
		f.envFree = e.poolNext
		e.poolNext = nil
	}
	e.pooled = true
	return e
}

// releaseEnv recycles a pooled envelope; foreign envelopes (queue messages,
// test fixtures) are left to the garbage collector.
func (f *Fabric) releaseEnv(e *Envelope) {
	if !e.pooled {
		return
	}
	*e = Envelope{poolNext: f.envFree}
	f.envFree = e
}

// Metrics exposes bus telemetry.
func (f *Fabric) Metrics() *telemetry.Registry { return f.metrics }

// SetProfiler attaches the spine profiler (nil disables, the default).
// Broker-side envelope dispatch runs under bus.dispatch, and each completed
// RPC records its virtual latency as a bus.dispatch sample carrying the
// call's trace ID as exemplar.
func (f *Fabric) SetProfiler(p *prof.Profiler) { f.prof = p }

// Engine exposes the simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Use appends delivery middleware applied to every inbound envelope at its
// destination broker, in registration order.
func (f *Fabric) Use(m Middleware) { f.mw = append(f.mw, m) }

// Broker returns (creating on demand) the broker at a site.
func (f *Fabric) Broker(site netsim.SiteID) *Broker {
	b, ok := f.brokers[site]
	if !ok {
		b = &Broker{
			fabric:    f,
			site:      site,
			endpoints: make(map[string]Handler),
			subs:      make(map[string][]subscription),
			queues:    make(map[string]*Queue),
		}
		f.brokers[site] = b
	}
	return b
}

func (f *Fabric) id() uint64 {
	f.nextID++
	return f.nextID
}

// send routes an envelope over the network to the destination broker. The
// returned error reports synchronous admission failures (link down,
// firewall); silent loss is not reported, as on a real WAN. On admission
// failure the envelope is dead and returns to the pool.
func (f *Fabric) send(env *Envelope) error {
	size := env.Size
	if size == 0 {
		size = f.DefaultSize
	}
	if env.Token == nil && f.TokenSource != nil {
		env.Token = f.TokenSource(env.From)
	}
	err := f.net.Send(netsim.Message{
		From:    env.From.Site,
		To:      env.To.Site,
		Service: "bus",
		Size:    size,
		Payload: env,
		Trace:   env.Trace,
	}, f.deliverFn)
	if err != nil {
		f.releaseEnv(env)
	}
	return err
}

// deliverMsg is the shared arrival trampoline: the envelope rides in the
// message payload and names its own destination broker.
func (f *Fabric) deliverMsg(m netsim.Message) {
	env := m.Payload.(*Envelope)
	f.Broker(env.To.Site).deliver(env)
}

// Broker is the per-site message broker.
type Broker struct {
	fabric      *Fabric
	site        netsim.SiteID
	endpoints   map[string]Handler
	subs        map[string][]subscription
	queues      map[string]*Queue
	pending     map[uint64]*pendingCall
	consumerFns map[consumerKey]func(*Envelope) error
	seenPublish map[uint64]bool
}

type subscription struct {
	addr Address
	qos  QoS
	fn   func(*Envelope)
}

// Site reports which site this broker serves.
func (b *Broker) Site() netsim.SiteID { return b.site }

// Register installs an asynchronous handler for the named endpoint.
func (b *Broker) Register(name string, h Handler) {
	b.endpoints[name] = h
}

// RegisterFunc installs a synchronous handler that computes its reply
// immediately. procTime > 0 models server processing latency.
func (b *Broker) RegisterFunc(name string, procTime sim.Time, fn func(*Envelope) (any, error)) {
	b.Register(name, func(env *Envelope, respond func(any, error)) {
		if procTime <= 0 {
			respond(fn(env))
			return
		}
		b.fabric.eng.Schedule(procTime, func() { respond(fn(env)) })
	})
}

// Deregister removes an endpoint (e.g. on simulated crash).
func (b *Broker) Deregister(name string) { delete(b.endpoints, name) }

// Endpoints lists registered endpoint names, sorted.
func (b *Broker) Endpoints() []string {
	names := make([]string, 0, len(b.endpoints))
	for n := range b.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// deliver dispatches an inbound envelope: middleware first, then per-kind.
// Pooled envelopes are recycled when dispatch returns, except requests —
// those stay live until the handler responds and reply consumes them.
func (b *Broker) deliver(env *Envelope) {
	r := b.fabric.prof.Enter(prof.SiteBusDispatch)
	defer r.End()
	f := b.fabric
	f.delivered.Inc()
	for _, mw := range f.mw {
		if err := mw(env); err != nil {
			f.rejected.Inc()
			if env.Kind == KindRequest {
				// Tell the caller rather than let it time out.
				b.reply(env, nil, fmt.Errorf("%w: %v", ErrRejected, err))
			} else if env.Kind != KindQueueMsg {
				f.releaseEnv(env)
			}
			return
		}
	}
	switch env.Kind {
	case KindRequest:
		h, ok := b.endpoints[env.To.Name]
		if !ok {
			b.reply(env, nil, fmt.Errorf("%w: %s", ErrNoEndpoint, env.To))
			return
		}
		rd := f.acquireResponder(b, env)
		h(env, rd.fn)
		return
	case KindQueueMsg:
		// Queue messages are handled broker-locally in Queue.dispatch; a
		// remote consumer receives the message here. Queues own their
		// envelopes (backlogs, redelivery, DLQ), so no release.
		b.handleQueueDelivery(env)
		return
	case KindReply:
		if b.pending != nil {
			if pc, ok := b.pending[env.CorrID]; ok {
				delete(b.pending, env.CorrID)
				pc.complete(env.Payload, pc.errFromEnvelope(env))
			}
		}
	case KindEvent:
		for _, sub := range b.subs[env.Topic] {
			if sub.addr == env.To {
				sub.fn(env)
				if sub.qos == AtLeastOnce {
					b.sendAck(env)
				}
			}
		}
	case KindAck, KindNack:
		b.handleAck(env)
	}
	f.releaseEnv(env)
}

// responder carries the respond-exactly-once guard for one in-flight
// request. Pooled; fn is the respond method bound once at allocation so
// handing it to a handler does not allocate.
type responder struct {
	b    *Broker
	env  *Envelope
	done bool
	fn   func(any, error)
	next *responder
}

func (f *Fabric) acquireResponder(b *Broker, env *Envelope) *responder {
	r := f.respFree
	if r == nil {
		r = &responder{}
		r.fn = r.respond
	} else {
		f.respFree = r.next
		r.next = nil
	}
	r.b, r.env, r.done = b, env, false
	return r
}

func (r *responder) respond(result any, err error) {
	if r.done {
		panic("bus: handler responded twice")
	}
	r.done = true
	b, env := r.b, r.env
	b.reply(env, result, err)
	f := b.fabric
	r.b, r.env = nil, nil
	r.next = f.respFree
	f.respFree = r
}

// replyErr wraps handler errors for wire transport.
type replyErr struct{ msg string }

// reply consumes a request: it sends the response and recycles the request
// envelope, which must not be touched afterwards.
func (b *Broker) reply(req *Envelope, result any, err error) {
	f := b.fabric
	env := f.acquireEnv()
	env.ID = f.id()
	env.Kind = KindReply
	env.From = req.To
	env.To = req.From
	env.Method = req.Method
	env.CorrID = req.CorrID
	env.Size = f.DefaultSize
	env.Trace = req.Trace
	if err != nil {
		env.Payload = replyErr{msg: err.Error()}
	} else {
		env.Payload = result
	}
	_ = f.send(env)
	f.releaseEnv(req)
}

// pendingCall tracks one in-flight RPC across its attempts. Pooled;
// timeoutFn/retryFn are method values bound once at allocation so arming a
// timer never allocates. At release time no event references the call:
// completion cancels the timeout, and a completed call never has a backoff
// retry pending (retries are only scheduled when no completion can race).
type pendingCall struct {
	cb      func(any, error)
	timer   sim.Event
	done    bool
	fabric  *Fabric
	started sim.Time
	retries int
	trace   uint64 // trace ID for the completion's profiler exemplar

	opts   CallOpts
	caller *Broker
	corr   uint64 // correlation ID of the current attempt
	n      int    // current attempt index

	timeoutFn func(any)
	retryFn   func(any)
	next      *pendingCall
}

func (f *Fabric) acquirePC() *pendingCall {
	pc := f.pcFree
	if pc == nil {
		pc = &pendingCall{}
		pc.timeoutFn = pc.onTimeout
		pc.retryFn = pc.onRetry
	} else {
		f.pcFree = pc.next
		pc.next = nil
	}
	return pc
}

func (f *Fabric) releasePC(pc *pendingCall) {
	tf, rf := pc.timeoutFn, pc.retryFn
	*pc = pendingCall{timeoutFn: tf, retryFn: rf, next: f.pcFree}
	f.pcFree = pc
}

func (pc *pendingCall) onTimeout(any) {
	delete(pc.caller.pending, pc.corr)
	pc.attempt(pc.n + 1)
}

func (pc *pendingCall) onRetry(any) { pc.attempt(pc.n + 1) }

func (pc *pendingCall) complete(result any, err error) {
	if pc.done {
		return
	}
	pc.done = true
	f := pc.fabric
	if pc.timer.Valid() {
		f.eng.Cancel(pc.timer)
	}
	wait := f.eng.Now() - pc.started
	f.prof.Sample(prof.SiteBusDispatch, wait.Std(), pc.trace)
	f.rpcLatency.Observe(wait.Seconds())
	if err != nil {
		f.rpcFailures.Inc()
	} else {
		f.rpcOK.Inc()
	}
	cb := pc.cb
	f.releasePC(pc)
	cb(result, err)
}

func (pc *pendingCall) errFromEnvelope(env *Envelope) error {
	if re, ok := env.Payload.(replyErr); ok {
		return fmt.Errorf("%w: %s", ErrHandlerFailed, re.msg)
	}
	return nil
}

// CallOpts configures an RPC.
type CallOpts struct {
	From       Address
	To         Address
	Method     string
	Payload    any
	Token      any
	Size       int
	Timeout    sim.Time  // per-attempt timeout; default 1s
	Retries    int       // additional attempts after the first
	Alternates []Address // failover targets tried round-robin after To fails
	// Trace propagates the caller's causal context with every attempt.
	Trace trace.Context
}

// Call issues an asynchronous RPC; cb runs exactly once with the reply or a
// terminal error. Retries and failover are transparent: each attempt gets a
// fresh timeout, alternating through To plus Alternates.
func (f *Fabric) Call(opts CallOpts, cb func(result any, err error)) {
	if opts.Timeout <= 0 {
		opts.Timeout = sim.Second
	}
	f.rpcCalls.Inc()

	caller := f.Broker(opts.From.Site)
	if caller.pending == nil {
		caller.pending = make(map[uint64]*pendingCall)
	}

	pc := f.acquirePC()
	pc.cb = cb
	pc.fabric = f
	pc.started = f.eng.Now()
	pc.trace = opts.Trace.TraceID()
	pc.opts = opts
	pc.caller = caller
	pc.attempt(0)
}

func (pc *pendingCall) attempt(n int) {
	if pc.done {
		return
	}
	pc.n = n
	f := pc.fabric
	if n > pc.opts.Retries {
		pc.complete(nil, fmt.Errorf("%w after %d attempts: %s %s",
			ErrTimeout, n, pc.opts.Method, pc.opts.To))
		return
	}
	if n > 0 {
		f.rpcRetries.Inc()
		pc.retries++
	}
	// Round-robin over To plus Alternates without materializing a slice.
	target := pc.opts.To
	if i := n % (1 + len(pc.opts.Alternates)); i > 0 {
		target = pc.opts.Alternates[i-1]
	}
	corr := f.id()
	pc.corr = corr
	pc.caller.pending[corr] = pc
	env := f.acquireEnv()
	env.ID = f.id()
	env.Kind = KindRequest
	env.From = pc.opts.From
	env.To = target
	env.Method = pc.opts.Method
	env.CorrID = corr
	env.Payload = pc.opts.Payload
	env.Token = pc.opts.Token
	env.Size = pc.opts.Size
	env.Attempt = n + 1
	env.Trace = pc.opts.Trace
	if f.send(env) != nil {
		// Connection refused: move to the next attempt after a short
		// backoff rather than burning the whole timeout.
		delete(pc.caller.pending, corr)
		f.eng.ScheduleArg(pc.opts.Timeout/4+sim.Millisecond, pc.retryFn, nil)
		return
	}
	pc.timer = f.eng.ScheduleArg(pc.opts.Timeout, pc.timeoutFn, nil)
}

// QoS selects delivery guarantees for pub/sub.
type QoS int

// Delivery guarantee levels.
const (
	AtMostOnce QoS = iota
	AtLeastOnce
)
