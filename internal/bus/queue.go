package bus

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/sim"
)

// Queue is an AMQP-style work queue hosted on one broker: producers enqueue,
// competing consumers each receive distinct messages, failed or
// unacknowledged deliveries are redelivered to another consumer, and
// messages that exhaust MaxAttempts are dead-lettered.
type Queue struct {
	name   string
	broker *Broker

	// AckTimeout is how long a delivery may remain unacknowledged before
	// redelivery. Default 5s.
	AckTimeout sim.Time
	// MaxAttempts bounds total delivery attempts per message. Default 4.
	MaxAttempts int

	consumers []consumerRef
	backlog   []*Envelope
	inflight  map[uint64]*queueDelivery
	rr        int // round-robin cursor
	dlq       []*Envelope
}

type consumerRef struct {
	addr Address
	fn   func(*Envelope) error
}

type queueDelivery struct {
	env      *Envelope
	consumer Address
	timer    sim.Event
	attempt  int
}

// DeclareQueue creates (or returns) the named queue hosted at site.
func (f *Fabric) DeclareQueue(site Address, name string) *Queue {
	b := f.Broker(site.Site)
	if q, ok := b.queues[name]; ok {
		return q
	}
	q := &Queue{
		name:        name,
		broker:      b,
		AckTimeout:  5 * sim.Second,
		MaxAttempts: 4,
		inflight:    make(map[uint64]*queueDelivery),
	}
	b.queues[name] = q
	return q
}

// Queue returns the named queue at a site, or nil.
func (f *Fabric) Queue(site Address, name string) *Queue {
	return f.Broker(site.Site).queues[name]
}

// Consume registers a competing consumer. fn returning a non-nil error
// nacks the delivery, triggering redelivery to another consumer. Consumers
// may live at any site; deliveries traverse the network.
func (q *Queue) Consume(addr Address, fn func(*Envelope) error) {
	q.consumers = append(q.consumers, consumerRef{addr: addr, fn: fn})
	// A new consumer may unblock a backlog.
	q.broker.fabric.eng.Schedule(0, q.pump)
}

// CancelConsumer removes all consumers registered at addr.
func (q *Queue) CancelConsumer(addr Address) {
	var keep []consumerRef
	for _, c := range q.consumers {
		if c.addr != addr {
			keep = append(keep, c)
		}
	}
	q.consumers = keep
}

// Enqueue publishes a message onto the queue from the producer address.
// The message travels to the queue's host broker under publisher-confirm
// semantics: the host acknowledges receipt, and unconfirmed publishes are
// retransmitted (the host deduplicates), so producer-side loss does not
// silently drop work.
func (f *Fabric) Enqueue(from Address, queueSite Address, queueName string, payload any, size int) error {
	b := f.Broker(queueSite.Site)
	if _, ok := b.queues[queueName]; !ok {
		return fmt.Errorf("%w: %s at %s", ErrNoQueue, queueName, queueSite.Site)
	}
	env := &Envelope{
		ID:      f.id(),
		Kind:    KindQueueMsg,
		From:    from,
		To:      Address{Site: queueSite.Site, Name: "queue:" + queueName},
		Topic:   queueName,
		Payload: payload,
		Size:    size,
		CorrID:  f.id(),
	}
	f.metrics.Counter("bus.queue.enqueued").Inc()
	// Producer -> host broker hop: fail fast on hard unreachability, retry
	// on silent loss.
	if sendErr := f.send(env); sendErr != nil {
		return fmt.Errorf("%w: %v", ErrUnreachable, sendErr)
	}
	f.armPublishConfirm(env, 1)
	return nil
}

// publishConfirmAttempts bounds enqueue retransmissions.
const publishConfirmAttempts = 8

// armPublishConfirm schedules a retransmission unless the host confirms.
// The same envelope is retransmitted verbatim (the host deduplicates by
// ID), which is why queue envelopes are never pooled.
func (f *Fabric) armPublishConfirm(env *Envelope, attempt int) {
	if f.awaitingConf == nil {
		f.awaitingConf = make(map[uint64]sim.Event)
	}
	timer := f.eng.Schedule(500*sim.Millisecond, func() {
		delete(f.awaitingConf, env.CorrID)
		if attempt >= publishConfirmAttempts {
			f.metrics.Counter("bus.queue.publish_failed").Inc()
			return
		}
		f.metrics.Counter("bus.queue.publish_retries").Inc()
		_ = f.send(env)
		f.armPublishConfirm(env, attempt+1)
	})
	f.awaitingConf[env.CorrID] = timer
}

// handleQueueDelivery runs on the broker receiving a KindQueueMsg envelope.
// If this broker hosts the queue, the message enters the backlog; otherwise
// the envelope is a dispatch to a consumer endpoint at this site.
func (b *Broker) handleQueueDelivery(env *Envelope) {
	if q, ok := b.queues[env.Topic]; ok && env.To.Name == "queue:"+env.Topic {
		// Publisher confirm: acknowledge receipt and deduplicate
		// retransmissions by envelope ID.
		conf := &Envelope{
			ID: b.fabric.id(), Kind: KindAck,
			From: env.To, To: env.From, CorrID: env.CorrID, Size: 64,
		}
		_ = b.fabric.send(conf)
		if b.seenPublish == nil {
			b.seenPublish = make(map[uint64]bool)
		}
		if b.seenPublish[env.ID] {
			return
		}
		b.seenPublish[env.ID] = true
		q.backlog = append(q.backlog, env)
		q.pump()
		return
	}
	// Consumer-side delivery: find the matching consumer callback that the
	// host registered under this address via remote dispatch below.
	if b.consumerFns == nil {
		return
	}
	key := consumerKey{queue: env.Topic, addr: env.To}
	fn, ok := b.consumerFns[key]
	if !ok {
		return
	}
	err := fn(env)
	ack := &Envelope{
		ID:     b.fabric.id(),
		From:   env.To,
		To:     env.From, // the host broker's queue endpoint
		Topic:  env.Topic,
		CorrID: env.CorrID,
		Size:   64,
	}
	if err != nil {
		ack.Kind = KindNack
		b.fabric.metrics.Counter("bus.queue.nacked").Inc()
	} else {
		ack.Kind = KindAck
	}
	_ = b.fabric.send(ack)
}

type consumerKey struct {
	queue string
	addr  Address
}

// pump dispatches backlog messages to available consumers round-robin.
func (q *Queue) pump() {
	f := q.broker.fabric
	for len(q.backlog) > 0 && len(q.consumers) > 0 {
		env := q.backlog[0]
		q.backlog = q.backlog[1:]
		q.dispatch(env, env.Attempt+1)
	}
	if len(q.backlog) > 0 && len(q.consumers) == 0 {
		f.metrics.Counter("bus.queue.stalled").Add(int64(len(q.backlog)))
	}
}

// dispatch sends env to the next consumer and arms the redelivery timer.
func (q *Queue) dispatch(env *Envelope, attempt int) {
	f := q.broker.fabric
	if attempt > q.MaxAttempts {
		q.dlq = append(q.dlq, env)
		f.metrics.Counter("bus.queue.dlq").Inc()
		return
	}
	if len(q.consumers) == 0 {
		env.Attempt = attempt - 1
		q.backlog = append(q.backlog, env)
		return
	}
	c := q.consumers[q.rr%len(q.consumers)]
	q.rr++

	tag := f.id()
	d := &Envelope{
		ID:      f.id(),
		Kind:    KindQueueMsg,
		From:    Address{Site: q.broker.site, Name: "queue:" + q.name},
		To:      c.addr,
		Topic:   q.name,
		Payload: env.Payload,
		CorrID:  tag,
		Size:    env.Size,
		Attempt: attempt,
	}
	// Ensure the consumer-side broker can find fn.
	cb := f.Broker(c.addr.Site)
	if cb.consumerFns == nil {
		cb.consumerFns = make(map[consumerKey]func(*Envelope) error)
	}
	cb.consumerFns[consumerKey{queue: q.name, addr: c.addr}] = c.fn

	qd := &queueDelivery{env: env, consumer: c.addr, attempt: attempt}
	q.inflight[tag] = qd
	f.metrics.Counter("bus.queue.dispatched").Inc()
	// Host cannot reach consumer: the redelivery timer below covers it.
	_ = f.send(d)
	qd.timer = f.eng.Schedule(q.AckTimeout, func() {
		delete(q.inflight, tag)
		f.metrics.Counter("bus.queue.redelivered").Inc()
		q.dispatch(env, attempt+1)
	})
}

// queueAck resolves an inflight delivery on the host broker.
func (b *Broker) queueAck(env *Envelope, ok bool) {
	q, exists := b.queues[env.Topic]
	if !exists {
		return
	}
	qd, found := q.inflight[env.CorrID]
	if !found {
		return
	}
	delete(q.inflight, env.CorrID)
	b.fabric.eng.Cancel(qd.timer)
	if ok {
		b.fabric.metrics.Counter("bus.queue.acked").Inc()
		return
	}
	b.fabric.metrics.Counter("bus.queue.redelivered").Inc()
	q.dispatch(qd.env, qd.attempt+1)
}

// DeadLetters returns the queue's dead-letter list.
func (q *Queue) DeadLetters() []*Envelope { return q.dlq }

// Depth reports backlog + inflight message count.
func (q *Queue) Depth() int { return len(q.backlog) + len(q.inflight) }
