package bus

import (
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/trace"
)

// Subscribe registers fn to receive events published on topic, delivered to
// addr's site. With AtLeastOnce QoS the subscriber's broker acknowledges
// each event and the publisher redelivers unacknowledged events.
func (f *Fabric) Subscribe(addr Address, topic string, qos QoS, fn func(*Envelope)) {
	b := f.Broker(addr.Site)
	b.subs[topic] = append(b.subs[topic], subscription{addr: addr, qos: qos, fn: fn})
	f.subscribers(topic) // touch global index
	f.topicSubs[topic] = append(f.topicSubs[topic], subscriberRef{addr: addr, qos: qos})
}

// Unsubscribe removes every subscription of addr on topic.
func (f *Fabric) Unsubscribe(addr Address, topic string) {
	b := f.Broker(addr.Site)
	var keep []subscription
	for _, s := range b.subs[topic] {
		if s.addr != addr {
			keep = append(keep, s)
		}
	}
	b.subs[topic] = keep
	var keepRefs []subscriberRef
	for _, r := range f.topicSubs[topic] {
		if r.addr != addr {
			keepRefs = append(keepRefs, r)
		}
	}
	f.topicSubs[topic] = keepRefs
}

type subscriberRef struct {
	addr Address
	qos  QoS
}

func (f *Fabric) subscribers(topic string) []subscriberRef {
	if f.topicSubs == nil {
		f.topicSubs = make(map[string][]subscriberRef)
	}
	return f.topicSubs[topic]
}

// PublishOpts configures one publication.
type PublishOpts struct {
	From        Address
	Topic       string
	Payload     any
	Token       any
	Size        int
	QoS         QoS
	AckTimeout  sim.Time // redelivery timer for AtLeastOnce; default 2s
	MaxAttempts int      // total delivery attempts before DLQ; default 4
	// Trace propagates the publisher's causal context with each delivery.
	Trace trace.Context
}

// Publish fans the event out to every subscriber of the topic. With
// AtLeastOnce it tracks per-subscriber acknowledgements, redelivers on
// timeout, and dead-letters after MaxAttempts.
func (f *Fabric) Publish(opts PublishOpts) {
	if opts.AckTimeout <= 0 {
		opts.AckTimeout = 2 * sim.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	f.metrics.Counter("bus.pub.published").Inc()
	for _, ref := range f.subscribers(opts.Topic) {
		f.deliverEvent(opts, ref, 1)
	}
}

func (f *Fabric) deliverEvent(opts PublishOpts, ref subscriberRef, attempt int) {
	env := &Envelope{
		ID:      f.id(),
		Kind:    KindEvent,
		From:    opts.From,
		To:      ref.addr,
		Topic:   opts.Topic,
		Payload: opts.Payload,
		Token:   opts.Token,
		Size:    opts.Size,
		Attempt: attempt,
		Trace:   opts.Trace,
	}
	if ref.qos == AtMostOnce {
		f.send(env, nil)
		f.metrics.Counter("bus.pub.sent").Inc()
		return
	}
	// AtLeastOnce: remember the delivery and arm the redelivery timer.
	if f.awaitingAck == nil {
		f.awaitingAck = make(map[uint64]*sim.Event)
	}
	f.metrics.Counter("bus.pub.sent").Inc()
	env.CorrID = env.ID
	f.send(env, nil)
	timer := f.eng.Schedule(opts.AckTimeout, func() {
		delete(f.awaitingAck, env.CorrID)
		if attempt >= opts.MaxAttempts {
			f.metrics.Counter("bus.pub.dlq").Inc()
			f.deadLetters = append(f.deadLetters, env)
			return
		}
		f.metrics.Counter("bus.pub.redelivered").Inc()
		f.deliverEvent(opts, ref, attempt+1)
	})
	f.awaitingAck[env.CorrID] = timer
}

// sendAck confirms an at-least-once event back to the publishing fabric.
// In this in-process model the ack travels the reverse network path so its
// latency and loss are realistic.
func (b *Broker) sendAck(env *Envelope) {
	ack := &Envelope{
		ID:     b.fabric.id(),
		Kind:   KindAck,
		From:   env.To,
		To:     env.From,
		CorrID: env.CorrID,
		Size:   64,
	}
	b.fabric.send(ack, nil)
}

func (b *Broker) handleAck(env *Envelope) {
	f := b.fabric
	switch env.Kind {
	case KindAck:
		if t, ok := f.awaitingAck[env.CorrID]; ok {
			f.eng.Cancel(t)
			delete(f.awaitingAck, env.CorrID)
			f.metrics.Counter("bus.pub.acked").Inc()
			return
		}
		// Queue consumer ack.
		b.queueAck(env, true)
	case KindNack:
		b.queueAck(env, false)
	}
}

// DeadLetters returns envelopes that exhausted redelivery, in arrival order.
func (f *Fabric) DeadLetters() []*Envelope { return f.deadLetters }
