package bus

import (
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/trace"
)

// Subscribe registers fn to receive events published on topic, delivered to
// addr's site. With AtLeastOnce QoS the subscriber's broker acknowledges
// each event and the publisher redelivers unacknowledged events.
func (f *Fabric) Subscribe(addr Address, topic string, qos QoS, fn func(*Envelope)) {
	b := f.Broker(addr.Site)
	b.subs[topic] = append(b.subs[topic], subscription{addr: addr, qos: qos, fn: fn})
	f.subscribers(topic) // touch global index
	f.topicSubs[topic] = append(f.topicSubs[topic], subscriberRef{addr: addr, qos: qos})
}

// Unsubscribe removes every subscription of addr on topic.
func (f *Fabric) Unsubscribe(addr Address, topic string) {
	b := f.Broker(addr.Site)
	var keep []subscription
	for _, s := range b.subs[topic] {
		if s.addr != addr {
			keep = append(keep, s)
		}
	}
	b.subs[topic] = keep
	var keepRefs []subscriberRef
	for _, r := range f.topicSubs[topic] {
		if r.addr != addr {
			keepRefs = append(keepRefs, r)
		}
	}
	f.topicSubs[topic] = keepRefs
}

type subscriberRef struct {
	addr Address
	qos  QoS
}

func (f *Fabric) subscribers(topic string) []subscriberRef {
	if f.topicSubs == nil {
		f.topicSubs = make(map[string][]subscriberRef)
	}
	return f.topicSubs[topic]
}

// PublishOpts configures one publication.
type PublishOpts struct {
	From        Address
	Topic       string
	Payload     any
	Token       any
	Size        int
	QoS         QoS
	AckTimeout  sim.Time // redelivery timer for AtLeastOnce; default 2s
	MaxAttempts int      // total delivery attempts before DLQ; default 4
	// Trace propagates the publisher's causal context with each delivery.
	Trace trace.Context
}

// Publish fans the event out to every subscriber of the topic. With
// AtLeastOnce it tracks per-subscriber acknowledgements, redelivers on
// timeout, and dead-letters after MaxAttempts.
func (f *Fabric) Publish(opts PublishOpts) {
	if opts.AckTimeout <= 0 {
		opts.AckTimeout = 2 * sim.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	f.pubPublished.Inc()
	for _, ref := range f.subscribers(opts.Topic) {
		f.deliverEvent(opts, ref, 1)
	}
}

// pendingPub tracks one unacknowledged at-least-once delivery. It holds
// everything needed to redeliver or dead-letter without retaining the sent
// envelope, which the subscriber's broker recycles on delivery. Pooled;
// fireFn is the redelivery-timer method bound once at allocation.
type pendingPub struct {
	f       *Fabric
	opts    PublishOpts
	ref     subscriberRef
	attempt int
	corr    uint64 // the attempt's envelope ID doubles as correlation ID
	timer   sim.Event
	fireFn  func(any)
	next    *pendingPub
}

func (f *Fabric) acquirePub() *pendingPub {
	p := f.pubFree
	if p == nil {
		p = &pendingPub{f: f}
		p.fireFn = p.fire
	} else {
		f.pubFree = p.next
		p.next = nil
	}
	return p
}

func (f *Fabric) releasePub(p *pendingPub) {
	ff := p.fireFn
	*p = pendingPub{f: f, fireFn: ff, next: f.pubFree}
	f.pubFree = p
}

// fire runs when the ack timeout lapses: redeliver, or dead-letter after
// MaxAttempts. The dead-letter envelope is reconstructed from the retained
// publish state — field-for-field identical to the one that went unacked.
func (p *pendingPub) fire(any) {
	f := p.f
	delete(f.awaitingAck, p.corr)
	if p.attempt >= p.opts.MaxAttempts {
		f.pubDLQ.Inc()
		f.deadLetters = append(f.deadLetters, &Envelope{
			ID:      p.corr,
			Kind:    KindEvent,
			From:    p.opts.From,
			To:      p.ref.addr,
			Topic:   p.opts.Topic,
			CorrID:  p.corr,
			Payload: p.opts.Payload,
			Token:   p.opts.Token,
			Size:    p.opts.Size,
			Attempt: p.attempt,
			Trace:   p.opts.Trace,
		})
		f.releasePub(p)
		return
	}
	f.pubRedelivered.Inc()
	opts, ref, attempt := p.opts, p.ref, p.attempt
	f.releasePub(p)
	f.deliverEvent(opts, ref, attempt+1)
}

func (f *Fabric) deliverEvent(opts PublishOpts, ref subscriberRef, attempt int) {
	env := f.acquireEnv()
	env.ID = f.id()
	env.Kind = KindEvent
	env.From = opts.From
	env.To = ref.addr
	env.Topic = opts.Topic
	env.Payload = opts.Payload
	env.Token = opts.Token
	env.Size = opts.Size
	env.Attempt = attempt
	env.Trace = opts.Trace
	if ref.qos == AtMostOnce {
		_ = f.send(env)
		f.pubSent.Inc()
		return
	}
	// AtLeastOnce: remember the delivery and arm the redelivery timer.
	if f.awaitingAck == nil {
		f.awaitingAck = make(map[uint64]*pendingPub)
	}
	f.pubSent.Inc()
	corr := env.ID
	env.CorrID = corr
	_ = f.send(env)
	p := f.acquirePub()
	p.opts, p.ref, p.attempt, p.corr = opts, ref, attempt, corr
	p.timer = f.eng.ScheduleArg(opts.AckTimeout, p.fireFn, nil)
	f.awaitingAck[corr] = p
}

// sendAck confirms an at-least-once event back to the publishing fabric.
// In this in-process model the ack travels the reverse network path so its
// latency and loss are realistic.
func (b *Broker) sendAck(env *Envelope) {
	f := b.fabric
	ack := f.acquireEnv()
	ack.ID = f.id()
	ack.Kind = KindAck
	ack.From = env.To
	ack.To = env.From
	ack.CorrID = env.CorrID
	ack.Size = 64
	_ = f.send(ack)
}

func (b *Broker) handleAck(env *Envelope) {
	f := b.fabric
	switch env.Kind {
	case KindAck:
		if p, ok := f.awaitingAck[env.CorrID]; ok {
			f.eng.Cancel(p.timer)
			delete(f.awaitingAck, env.CorrID)
			f.releasePub(p)
			f.pubAcked.Inc()
			return
		}
		if t, ok := f.awaitingConf[env.CorrID]; ok {
			// Queue publisher confirm. Counted as a pub ack, matching the
			// era when confirms and event acks shared one table.
			f.eng.Cancel(t)
			delete(f.awaitingConf, env.CorrID)
			f.pubAcked.Inc()
			return
		}
		// Queue consumer ack.
		b.queueAck(env, true)
	case KindNack:
		b.queueAck(env, false)
	}
}

// DeadLetters returns envelopes that exhausted redelivery, in arrival order.
func (f *Fabric) DeadLetters() []*Envelope { return f.deadLetters }
