package bus

import (
	"errors"
	"fmt"
	"testing"

	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
)

// testFabric builds a 3-site open-firewall testbed with 10ms links.
func testFabric(t *testing.T, link netsim.Link) (*sim.Engine, *netsim.Network, *Fabric) {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(7))
	for _, id := range []netsim.SiteID{"ornl", "anl", "slac"} {
		net.AddSite(id).Firewall.AllowAll()
	}
	net.FullMesh([]netsim.SiteID{"ornl", "anl", "slac"}, link)
	return eng, net, NewFabric(net)
}

func addr(site, name string) Address {
	return Address{Site: netsim.SiteID(site), Name: name}
}

func TestRPCRoundtrip(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: 10 * sim.Millisecond})
	f.Broker("anl").RegisterFunc("echo", 0, func(env *Envelope) (any, error) {
		return fmt.Sprintf("echo:%v", env.Payload), nil
	})
	var got any
	var gotErr error
	var at sim.Time
	f.Call(CallOpts{
		From: addr("ornl", "client"), To: addr("anl", "echo"),
		Method: "echo", Payload: "hi",
	}, func(result any, err error) { got, gotErr, at = result, err, eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got != "echo:hi" {
		t.Fatalf("got %v", got)
	}
	if at != 20*sim.Millisecond {
		t.Fatalf("roundtrip completed at %v, want 20ms", at)
	}
}

func TestRPCHandlerError(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	f.Broker("anl").RegisterFunc("fail", 0, func(*Envelope) (any, error) {
		return nil, errors.New("boom")
	})
	var gotErr error
	f.Call(CallOpts{From: addr("ornl", "c"), To: addr("anl", "fail"), Method: "fail"},
		func(_ any, err error) { gotErr = err })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrHandlerFailed) {
		t.Fatalf("err = %v, want ErrHandlerFailed", gotErr)
	}
}

func TestRPCNoEndpoint(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	var gotErr error
	f.Call(CallOpts{From: addr("ornl", "c"), To: addr("anl", "ghost"), Method: "x"},
		func(_ any, err error) { gotErr = err })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrHandlerFailed) {
		t.Fatalf("err = %v, want wrapped no-endpoint failure", gotErr)
	}
}

func TestRPCTimeoutOnDeadLink(t *testing.T) {
	eng, net, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	f.Broker("anl").RegisterFunc("m", 0, func(*Envelope) (any, error) { return 1, nil })
	net.SetLinkUp("ornl", "anl", false)
	var gotErr error
	f.Call(CallOpts{
		From: addr("ornl", "c"), To: addr("anl", "m"), Method: "m",
		Timeout: 100 * sim.Millisecond, Retries: 2,
	}, func(_ any, err error) { gotErr = err })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
}

func TestRPCRetriesRecoverFromLoss(t *testing.T) {
	// 40% loss each way => per-attempt success 0.36; 10 retries gives
	// ~99.3% call success.
	eng, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond, Loss: 0.4})
	f.Broker("anl").RegisterFunc("m", 0, func(*Envelope) (any, error) { return "ok", nil })
	success := 0
	const calls = 50
	for i := 0; i < calls; i++ {
		f.Call(CallOpts{
			From: addr("ornl", "c"), To: addr("anl", "m"), Method: "m",
			Timeout: 50 * sim.Millisecond, Retries: 10,
		}, func(result any, err error) {
			if err == nil && result == "ok" {
				success++
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if success < calls*9/10 {
		t.Fatalf("only %d/%d calls recovered via retries", success, calls)
	}
	if f.Metrics().Counter("bus.rpc.retries").Value() == 0 {
		t.Fatal("expected retries to be recorded")
	}
}

func TestRPCFailover(t *testing.T) {
	eng, net, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	f.Broker("anl").RegisterFunc("svc", 0, func(*Envelope) (any, error) { return "primary", nil })
	f.Broker("slac").RegisterFunc("svc", 0, func(*Envelope) (any, error) { return "backup", nil })
	net.SetLinkUp("ornl", "anl", false) // primary unreachable

	var got any
	f.Call(CallOpts{
		From: addr("ornl", "c"), To: addr("anl", "svc"), Method: "svc",
		Timeout: 100 * sim.Millisecond, Retries: 3,
		Alternates: []Address{addr("slac", "svc")},
	}, func(result any, err error) {
		if err != nil {
			t.Errorf("failover call failed: %v", err)
		}
		got = result
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "backup" {
		t.Fatalf("got %v, want backup", got)
	}
}

func TestRPCServerProcessingTime(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: 10 * sim.Millisecond})
	f.Broker("anl").RegisterFunc("slow", 30*sim.Millisecond, func(*Envelope) (any, error) { return 1, nil })
	var at sim.Time
	f.Call(CallOpts{From: addr("ornl", "c"), To: addr("anl", "slow"), Method: "slow", Timeout: sim.Second},
		func(any, error) { at = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 50*sim.Millisecond {
		t.Fatalf("completed at %v, want 50ms (10+30+10)", at)
	}
}

func TestMiddlewareRejection(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	f.Use(func(env *Envelope) error {
		if env.Token != "valid" && env.Kind == KindRequest {
			return errors.New("no token")
		}
		return nil
	})
	f.Broker("anl").RegisterFunc("m", 0, func(*Envelope) (any, error) { return 1, nil })

	var err1, err2 error
	f.Call(CallOpts{From: addr("ornl", "c"), To: addr("anl", "m"), Method: "m", Token: "valid"},
		func(_ any, err error) { err1 = err })
	f.Call(CallOpts{From: addr("ornl", "c"), To: addr("anl", "m"), Method: "m", Token: "bogus"},
		func(_ any, err error) { err2 = err })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err1 != nil {
		t.Fatalf("authorized call failed: %v", err1)
	}
	if err2 == nil {
		t.Fatal("unauthorized call succeeded")
	}
}

func TestPubSubAtMostOnce(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	var got []any
	f.Subscribe(addr("anl", "sub1"), "alerts", AtMostOnce, func(env *Envelope) {
		got = append(got, env.Payload)
	})
	f.Subscribe(addr("slac", "sub2"), "alerts", AtMostOnce, func(env *Envelope) {
		got = append(got, env.Payload)
	})
	f.Publish(PublishOpts{From: addr("ornl", "pub"), Topic: "alerts", Payload: "anomaly"})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered to %d subscribers, want 2", len(got))
	}
}

func TestPubSubAtLeastOnceRecoversLoss(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond, Loss: 0.5})
	delivered := 0
	f.Subscribe(addr("anl", "sub"), "data", AtLeastOnce, func(*Envelope) { delivered++ })
	const events = 40
	for i := 0; i < events; i++ {
		f.Publish(PublishOpts{
			From: addr("ornl", "pub"), Topic: "data", Payload: i,
			QoS: AtLeastOnce, AckTimeout: 50 * sim.Millisecond, MaxAttempts: 10,
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered < events {
		t.Fatalf("delivered %d < published %d despite at-least-once", delivered, events)
	}
	if f.Metrics().Counter("bus.pub.redelivered").Value() == 0 {
		t.Fatal("expected redeliveries on a 50%-loss link")
	}
}

func TestPubSubDeadLetter(t *testing.T) {
	eng, net, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	f.Subscribe(addr("anl", "sub"), "t", AtLeastOnce, func(*Envelope) {})
	net.SetLinkUp("ornl", "anl", false)
	f.Publish(PublishOpts{
		From: addr("ornl", "pub"), Topic: "t", Payload: "x",
		QoS: AtLeastOnce, AckTimeout: 10 * sim.Millisecond, MaxAttempts: 3,
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(f.DeadLetters()) != 1 {
		t.Fatalf("dead letters = %d, want 1", len(f.DeadLetters()))
	}
	if got := f.Metrics().Counter("bus.pub.dlq").Value(); got != 1 {
		t.Fatalf("dlq counter = %d", got)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	n := 0
	a := addr("anl", "sub")
	f.Subscribe(a, "t", AtMostOnce, func(*Envelope) { n++ })
	f.Publish(PublishOpts{From: addr("ornl", "p"), Topic: "t", Payload: 1})
	eng.Schedule(sim.Second, func() {
		f.Unsubscribe(a, "t")
		f.Publish(PublishOpts{From: addr("ornl", "p"), Topic: "t", Payload: 2})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("received %d events, want 1", n)
	}
}

func TestQueueCompetingConsumers(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	q := f.DeclareQueue(addr("ornl", ""), "jobs")
	var c1, c2 int
	q.Consume(addr("anl", "w1"), func(*Envelope) error { c1++; return nil })
	q.Consume(addr("slac", "w2"), func(*Envelope) error { c2++; return nil })
	for i := 0; i < 10; i++ {
		if err := f.Enqueue(addr("ornl", "producer"), addr("ornl", ""), "jobs", i, 100); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c1+c2 != 10 {
		t.Fatalf("consumed %d+%d, want 10 total", c1, c2)
	}
	if c1 == 0 || c2 == 0 {
		t.Fatalf("work not shared: c1=%d c2=%d", c1, c2)
	}
	if q.Depth() != 0 {
		t.Fatalf("queue depth %d after drain", q.Depth())
	}
}

func TestQueueNackRedelivers(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	q := f.DeclareQueue(addr("ornl", ""), "jobs")
	attempts := 0
	q.Consume(addr("anl", "w"), func(*Envelope) error {
		attempts++
		if attempts < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err := f.Enqueue(addr("ornl", "p"), addr("ornl", ""), "jobs", "task", 64); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if len(q.DeadLetters()) != 0 {
		t.Fatal("message dead-lettered despite eventual success")
	}
}

func TestQueueDeadLetterAfterMaxAttempts(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	q := f.DeclareQueue(addr("ornl", ""), "jobs")
	q.MaxAttempts = 3
	fails := 0
	q.Consume(addr("anl", "w"), func(*Envelope) error { fails++; return errors.New("always") })
	if err := f.Enqueue(addr("ornl", "p"), addr("ornl", ""), "jobs", "poison", 64); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fails != 3 {
		t.Fatalf("delivery attempts = %d, want 3", fails)
	}
	if len(q.DeadLetters()) != 1 {
		t.Fatalf("dead letters = %d, want 1", len(q.DeadLetters()))
	}
}

func TestQueueBacklogDrainsWhenConsumerJoins(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	f.DeclareQueue(addr("ornl", ""), "jobs")
	for i := 0; i < 5; i++ {
		if err := f.Enqueue(addr("ornl", "p"), addr("ornl", ""), "jobs", i, 64); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	eng.Schedule(sim.Second, func() {
		q := f.Queue(addr("ornl", ""), "jobs")
		q.Consume(addr("anl", "late"), func(*Envelope) error { got++; return nil })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("late consumer got %d, want 5", got)
	}
}

func TestEnqueueUnknownQueue(t *testing.T) {
	_, _, f := testFabric(t, netsim.Link{Latency: sim.Millisecond})
	err := f.Enqueue(addr("ornl", "p"), addr("ornl", ""), "ghost", 1, 1)
	if !errors.Is(err, ErrNoQueue) {
		t.Fatalf("err = %v, want ErrNoQueue", err)
	}
}

func TestEndpointsSorted(t *testing.T) {
	_, _, f := testFabric(t, netsim.Link{})
	b := f.Broker("ornl")
	b.RegisterFunc("zz", 0, func(*Envelope) (any, error) { return nil, nil })
	b.RegisterFunc("aa", 0, func(*Envelope) (any, error) { return nil, nil })
	eps := b.Endpoints()
	if len(eps) != 2 || eps[0] != "aa" {
		t.Fatalf("Endpoints() = %v", eps)
	}
	b.Deregister("aa")
	if len(b.Endpoints()) != 1 {
		t.Fatal("Deregister failed")
	}
}

func TestRPCLatencyMetricRecorded(t *testing.T) {
	eng, _, f := testFabric(t, netsim.Link{Latency: 5 * sim.Millisecond})
	f.Broker("anl").RegisterFunc("m", 0, func(*Envelope) (any, error) { return 1, nil })
	for i := 0; i < 10; i++ {
		f.Call(CallOpts{From: addr("ornl", "c"), To: addr("anl", "m"), Method: "m"}, func(any, error) {})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	h := f.Metrics().Histogram("bus.rpc.latency_s")
	if h.Count() != 10 {
		t.Fatalf("latency observations = %d", h.Count())
	}
	if h.Mean() < 0.009 || h.Mean() > 0.02 {
		t.Fatalf("mean rpc latency = %v s, want ~0.01", h.Mean())
	}
}
