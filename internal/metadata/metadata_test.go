package metadata

import (
	"strings"
	"testing"

	"github.com/aisle-sim/aisle/internal/rng"
)

var allDomains = []Domain{DomainMaterials, DomainChemistry, DomainBiology}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(rng.New(1)).Generate(DomainChemistry, 0)
	b := NewGenerator(rng.New(1)).Generate(DomainChemistry, 0)
	if a.Text != b.Text {
		t.Fatal("generator not deterministic")
	}
}

func TestGeneratorTruthEmbedded(t *testing.T) {
	g := NewGenerator(rng.New(2))
	for _, d := range allDomains {
		doc := g.Generate(d, 7)
		if doc.Truth.SampleID == "" || doc.Truth.Instrument == "" {
			t.Fatalf("%s: incomplete truth %+v", d, doc.Truth)
		}
		if !strings.Contains(doc.Text, doc.Truth.SampleID) {
			t.Fatalf("%s: text missing sample ID", d)
		}
		if len(doc.Truth.Params) == 0 {
			t.Fatalf("%s: truth has no params", d)
		}
	}
}

func TestAnnotatorExtractsCleanDocument(t *testing.T) {
	text := "=== XRD-01 diffraction log ===\n" +
		"sample: S-1042 loaded by j.chen\n" +
		"stage temperature set to 150.0 C\n" +
		"scan rate 2.50 deg/min, 2theta 10-80\n"
	a := &Annotator{}
	got := a.Annotate(DomainMaterials, text)
	if got.SampleID != "S-1042" {
		t.Fatalf("sample = %q", got.SampleID)
	}
	if got.Instrument != "XRD-01" {
		t.Fatalf("instrument = %q", got.Instrument)
	}
	if got.Operator != "j.chen" {
		t.Fatalf("operator = %q", got.Operator)
	}
	if got.Params["temperature"] != 150.0 {
		t.Fatalf("temperature = %v", got.Params["temperature"])
	}
	if got.Params["scan_rate"] != 2.5 {
		t.Fatalf("scan_rate = %v", got.Params["scan_rate"])
	}
}

func TestAnnotatorKelvinNormalization(t *testing.T) {
	text := "reactor held at 423.15 K, residence time 30 min\n"
	got := (&Annotator{}).Annotate(DomainChemistry, text)
	if v := got.Params["temperature"]; v < 149.9 || v > 150.1 {
		t.Fatalf("temperature = %v, want 150 C from 423.15 K", v)
	}
	if got.Params["residence_time"] != 30 {
		t.Fatalf("residence = %v", got.Params["residence_time"])
	}
}

func TestAnnotatorTimeUnits(t *testing.T) {
	a := &Annotator{}
	if v := a.Annotate(DomainChemistry, "residence time 2.00 h").Params["residence_time"]; v != 120 {
		t.Fatalf("hours: %v", v)
	}
	if v := a.Annotate(DomainChemistry, "residence time 90 s").Params["residence_time"]; v != 1.5 {
		t.Fatalf("seconds: %v", v)
	}
}

func TestAnnotatorIgnoresDistractors(t *testing.T) {
	text := "NOTE: please remember the group meeting moved to 3pm\n" +
		"specimen S-1001 | analyst m.okafor\n" +
		"incubated at 37.0°C for 120 min\n"
	got := (&Annotator{}).Annotate(DomainBiology, text)
	if got.SampleID != "S-1001" || got.Params["temperature"] != 37 {
		t.Fatalf("extraction disturbed by distractor: %+v", got)
	}
}

func TestEvaluateHighAccuracyAcrossDomains(t *testing.T) {
	g := NewGenerator(rng.New(7))
	corpus := g.Corpus(allDomains, 300)
	rep := Evaluate(&Annotator{}, corpus)
	if rep.Documents != 300 {
		t.Fatalf("documents = %d", rep.Documents)
	}
	if rep.Accuracy() < 0.9 {
		t.Fatalf("overall accuracy = %.3f, want >= 0.9 (M5 'high accuracy')", rep.Accuracy())
	}
	for _, d := range allDomains {
		ds := rep.ByDomain[d]
		if ds == nil || ds.Fields == 0 {
			t.Fatalf("domain %s not scored", d)
		}
		if ds.Accuracy() < 0.85 {
			t.Fatalf("domain %s accuracy = %.3f", d, ds.Accuracy())
		}
	}
}

func TestEvaluateCountsMissingAndWrong(t *testing.T) {
	doc := Document{
		Domain: DomainMaterials,
		Text:   "garbage text with no structure",
		Truth: Truth{SampleID: "S-1000", Instrument: "XRD-01", Operator: "j.chen",
			Params: map[string]float64{"temperature": 100}},
	}
	rep := Evaluate(&Annotator{}, []Document{doc})
	if rep.Correct != 0 {
		t.Fatalf("correct = %d on garbage input", rep.Correct)
	}
	if rep.Missing != rep.Fields {
		t.Fatalf("missing = %d, fields = %d", rep.Missing, rep.Fields)
	}
}

func TestFieldReportEmpty(t *testing.T) {
	if (FieldReport{}).Accuracy() != 1 {
		t.Fatal("empty report should score 1")
	}
}
