// Package metadata implements milestone M5: AI-driven metadata extraction
// that annotates experimental data "without human intervention" across
// multiple domains. A corpus generator renders ground-truth experiment
// metadata into the messy free-text forms real laboratories produce —
// instrument logs, electronic notebook entries, assay reports, each with
// vendor quirks, unit variants, typos, and distractor lines — and the
// Annotator recovers structured metadata from the text. Accuracy is scored
// field-by-field against the generator's ground truth.
package metadata

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"github.com/aisle-sim/aisle/internal/rng"
)

// Domain selects a corpus style.
type Domain string

// Supported domains.
const (
	DomainMaterials Domain = "materials"
	DomainChemistry Domain = "chemistry"
	DomainBiology   Domain = "biology"
)

// Truth is the ground-truth metadata behind one generated document.
type Truth struct {
	SampleID   string
	Instrument string
	Operator   string
	Params     map[string]float64 // canonical units
}

// Document is one generated free-text artifact plus its hidden truth.
type Document struct {
	Domain Domain
	Text   string
	Truth  Truth
}

// Extracted is the annotator's output.
type Extracted struct {
	SampleID   string
	Instrument string
	Operator   string
	Params     map[string]float64
}

// Generator renders synthetic documents.
type Generator struct {
	rnd *rng.Stream
}

// NewGenerator seeds a corpus generator.
func NewGenerator(r *rng.Stream) *Generator { return &Generator{rnd: r.Fork("metadata-gen")} }

var operators = []string{"j.chen", "a.gupta", "m.okafor", "s.lee", "r.novak", "d.frank"}

// tempRender renders a temperature in one of several unit spellings; the
// canonical value is Celsius.
func (g *Generator) tempRender(c float64) string {
	switch g.rnd.Intn(4) {
	case 0:
		return fmt.Sprintf("%.1f C", c)
	case 1:
		return fmt.Sprintf("%.1f°C", c)
	case 2:
		return fmt.Sprintf("%.1f degC", c)
	default:
		return fmt.Sprintf("%.2f K", c+273.15)
	}
}

func (g *Generator) timeRender(minutes float64) string {
	switch g.rnd.Intn(3) {
	case 0:
		return fmt.Sprintf("%.0f min", minutes)
	case 1:
		return fmt.Sprintf("%.2f h", minutes/60)
	default:
		return fmt.Sprintf("%.0f s", minutes*60)
	}
}

var distractors = []string{
	"NOTE: please remember the group meeting moved to 3pm",
	"chiller unit inspected last Tuesday, all nominal",
	"(previous run aborted due to power blip, disregard)",
	"TODO order more substrate holders",
	"humidity in bay 3 reading slightly high again",
}

// Generate produces one document of the given domain.
func (g *Generator) Generate(domain Domain, seq int) Document {
	sample := fmt.Sprintf("S-%04d", 1000+seq)
	op := operators[g.rnd.Intn(len(operators))]
	var text strings.Builder
	truth := Truth{SampleID: sample, Operator: op, Params: map[string]float64{}}

	addDistractor := func() {
		if g.rnd.Bool(0.5) {
			fmt.Fprintf(&text, "%s\n", distractors[g.rnd.Intn(len(distractors))])
		}
	}

	switch domain {
	case DomainMaterials:
		truth.Instrument = fmt.Sprintf("XRD-%02d", 1+g.rnd.Intn(3))
		temp := g.rnd.Range(80, 240)
		scan := g.rnd.Range(0.5, 8)
		truth.Params["temperature"] = temp
		truth.Params["scan_rate"] = scan
		fmt.Fprintf(&text, "=== %s diffraction log ===\n", truth.Instrument)
		addDistractor()
		fmt.Fprintf(&text, "sample: %s loaded by %s\n", sample, op)
		fmt.Fprintf(&text, "stage temperature set to %s\n", g.tempRender(temp))
		addDistractor()
		fmt.Fprintf(&text, "scan rate %.2f deg/min, 2theta 10-80\n", scan)
	case DomainChemistry:
		truth.Instrument = fmt.Sprintf("FLOW-%02d", 1+g.rnd.Intn(4))
		temp := g.rnd.Range(40, 180)
		res := g.rnd.Range(5, 200) // minutes canonical
		conc := g.rnd.Range(1, 45)
		truth.Params["temperature"] = temp
		truth.Params["residence_time"] = res
		truth.Params["concentration"] = conc
		fmt.Fprintf(&text, "[notebook] continuous synthesis on %s\n", truth.Instrument)
		fmt.Fprintf(&text, "prepared %s (operator %s)\n", sample, op)
		addDistractor()
		fmt.Fprintf(&text, "reactor held at %s, residence time %s\n",
			g.tempRender(temp), g.timeRender(res))
		fmt.Fprintf(&text, "precursor conc. %.2f mM in toluene\n", conc)
		addDistractor()
	case DomainBiology:
		truth.Instrument = fmt.Sprintf("PLATE-%02d", 1+g.rnd.Intn(2))
		temp := g.rnd.Range(25, 42)
		inc := g.rnd.Range(30, 2880)
		truth.Params["temperature"] = temp
		truth.Params["incubation"] = inc
		fmt.Fprintf(&text, "assay report — reader %s\n", truth.Instrument)
		addDistractor()
		fmt.Fprintf(&text, "specimen %s | analyst %s\n", sample, op)
		fmt.Fprintf(&text, "incubated at %s for %s\n", g.tempRender(temp), g.timeRender(inc))
	}
	return Document{Domain: domain, Text: text.String(), Truth: truth}
}

// Corpus generates n documents round-robin across the given domains.
func (g *Generator) Corpus(domains []Domain, n int) []Document {
	out := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Generate(domains[i%len(domains)], i))
	}
	return out
}

// Annotator extracts structured metadata from free text. It is the
// "AI-driven metadata system" of M5, realized as a deterministic
// information-extraction model: domain-tuned patterns with unit
// normalization. Its failure modes are realistic — unusual unit spellings
// and cluttered lines reduce recall.
type Annotator struct{}

var (
	reSample = regexp.MustCompile(`(?i)(?:sample|prepared|specimen)\s*:?\s*(S-\d{4})`)
	reInstr  = regexp.MustCompile(`\b((?:XRD|FLOW|PLATE)-\d{2})\b`)
	reOper   = regexp.MustCompile(`(?i)(?:by|operator|analyst)\s+([a-z]\.[a-z]+)`)
	reTemp   = regexp.MustCompile(`(?i)(?:temperature\s+set\s+to|held\s+at|incubated\s+at|temperature[:\s]+)\s*(-?\d+(?:\.\d+)?)\s*(°C|degC|C|K)\b`)
	reScan   = regexp.MustCompile(`(?i)scan\s+rate\s+(\d+(?:\.\d+)?)`)
	reRes    = regexp.MustCompile(`(?i)residence\s+time\s+(\d+(?:\.\d+)?)\s*(min|h|s)`)
	reConc   = regexp.MustCompile(`(?i)conc\.?\s+(\d+(?:\.\d+)?)\s*mM`)
	reInc    = regexp.MustCompile(`(?i)for\s+(\d+(?:\.\d+)?)\s*(min|h|s)`)
)

// Annotate extracts metadata from one document's text.
func (a *Annotator) Annotate(domain Domain, text string) Extracted {
	out := Extracted{Params: map[string]float64{}}
	if m := reSample.FindStringSubmatch(text); m != nil {
		out.SampleID = m[1]
	}
	if m := reInstr.FindStringSubmatch(text); m != nil {
		out.Instrument = m[1]
	}
	if m := reOper.FindStringSubmatch(text); m != nil {
		out.Operator = strings.ToLower(m[1])
	}
	if m := reTemp.FindStringSubmatch(text); m != nil {
		v, _ := strconv.ParseFloat(m[1], 64)
		if m[2] == "K" {
			v -= 273.15
		}
		out.Params["temperature"] = v
	}
	switch domain {
	case DomainMaterials:
		if m := reScan.FindStringSubmatch(text); m != nil {
			v, _ := strconv.ParseFloat(m[1], 64)
			out.Params["scan_rate"] = v
		}
	case DomainChemistry:
		if m := reRes.FindStringSubmatch(text); m != nil {
			out.Params["residence_time"] = toMinutes(m[1], m[2])
		}
		if m := reConc.FindStringSubmatch(text); m != nil {
			v, _ := strconv.ParseFloat(m[1], 64)
			out.Params["concentration"] = v
		}
	case DomainBiology:
		if m := reInc.FindStringSubmatch(text); m != nil {
			out.Params["incubation"] = toMinutes(m[1], m[2])
		}
	}
	return out
}

func toMinutes(num, unit string) float64 {
	v, _ := strconv.ParseFloat(num, 64)
	switch unit {
	case "h":
		return v * 60
	case "s":
		return v / 60
	default:
		return v
	}
}

// FieldReport scores extraction over a corpus.
type FieldReport struct {
	Documents int
	Fields    int
	Correct   int
	Missing   int
	Wrong     int
	ByDomain  map[Domain]*DomainScore
}

// DomainScore is the per-domain accuracy breakdown.
type DomainScore struct {
	Fields  int
	Correct int
}

// Accuracy reports correct/fields.
func (r FieldReport) Accuracy() float64 {
	if r.Fields == 0 {
		return 1
	}
	return float64(r.Correct) / float64(r.Fields)
}

// Accuracy reports per-domain correct/fields.
func (d *DomainScore) Accuracy() float64 {
	if d.Fields == 0 {
		return 1
	}
	return float64(d.Correct) / float64(d.Fields)
}

// Evaluate runs the annotator over a corpus and scores it against truth.
// Numeric fields count as correct within 1% relative tolerance (unit
// round-trips introduce rounding).
func Evaluate(a *Annotator, corpus []Document) FieldReport {
	rep := FieldReport{ByDomain: map[Domain]*DomainScore{}}
	for _, doc := range corpus {
		rep.Documents++
		ds := rep.ByDomain[doc.Domain]
		if ds == nil {
			ds = &DomainScore{}
			rep.ByDomain[doc.Domain] = ds
		}
		got := a.Annotate(doc.Domain, doc.Text)

		scoreStr := func(want, have string) {
			rep.Fields++
			ds.Fields++
			switch {
			case have == "":
				rep.Missing++
			case strings.EqualFold(want, have):
				rep.Correct++
				ds.Correct++
			default:
				rep.Wrong++
			}
		}
		scoreStr(doc.Truth.SampleID, got.SampleID)
		scoreStr(doc.Truth.Instrument, got.Instrument)
		scoreStr(doc.Truth.Operator, got.Operator)
		for k, want := range doc.Truth.Params {
			rep.Fields++
			ds.Fields++
			have, ok := got.Params[k]
			if !ok {
				rep.Missing++
				continue
			}
			rel := abs(have-want) / max(abs(want), 1e-9)
			if rel < 0.01 {
				rep.Correct++
				ds.Correct++
			} else {
				rep.Wrong++
			}
		}
	}
	return rep
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
