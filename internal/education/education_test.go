package education

import (
	"testing"

	"github.com/aisle-sim/aisle/internal/rng"
)

func TestSkillGrowthMonotoneWithDiminishingReturns(t *testing.T) {
	s := NewSimulator(rng.New(1))
	tr := s.NewTrainee()
	m := Module{Name: "m", Focus: map[string]float64{SkillDomain: 1}, Hours: 50}
	var last float64
	var gains []float64
	for i := 0; i < 10; i++ {
		s.RunModule(tr, m)
		cur := tr.Skills[SkillDomain]
		if cur < last {
			t.Fatal("skill decreased")
		}
		gains = append(gains, cur-last)
		last = cur
	}
	if gains[9] >= gains[0] {
		t.Fatalf("no diminishing returns: first gain %v, last %v", gains[0], gains[9])
	}
	if last > 1 {
		t.Fatal("skill exceeded mastery cap")
	}
}

func TestHandsOnBoostsLabSkill(t *testing.T) {
	s := NewSimulator(rng.New(2))
	a := s.NewTrainee()
	b := s.NewTrainee()
	a.aptitude, b.aptitude = 1, 1
	base := Module{Focus: map[string]float64{SkillLab: 1}, Hours: 60}
	handsOn := base
	handsOn.HandsOn = true
	s.RunModule(a, base)
	s.RunModule(b, handsOn)
	if b.Skills[SkillLab] <= a.Skills[SkillLab] {
		t.Fatalf("hands-on %v should beat lecture %v", b.Skills[SkillLab], a.Skills[SkillLab])
	}
}

func TestTrustCalibration(t *testing.T) {
	s := NewSimulator(rng.New(3))
	tr := s.NewTrainee()
	tr.Trust = 0.1 // deeply distrustful
	m := Module{Focus: map[string]float64{SkillAICollab: 1}, Hours: 60, AIIntegrated: true}
	before := s.TrustError(tr)
	for i := 0; i < 6; i++ {
		s.RunModule(tr, m)
	}
	after := s.TrustError(tr)
	if after >= before {
		t.Fatalf("trust error did not shrink: %v -> %v", before, after)
	}
	if after > 0.2 {
		t.Fatalf("trust poorly calibrated after 360 AI-integrated hours: %v", after)
	}
}

func TestTraditionalCurriculumLeavesTrustUncalibrated(t *testing.T) {
	s := NewSimulator(rng.New(4))
	tr := s.NewTrainee()
	initial := tr.Trust
	for _, m := range Traditional().Modules {
		s.RunModule(tr, m)
	}
	if tr.Trust != initial {
		t.Fatal("traditional curriculum should not touch trust")
	}
	if tr.Skills[SkillAICollab] != 0 {
		t.Fatal("traditional curriculum should not build ai-collab skill")
	}
}

func TestCohortAIIntegratedBeatsTraditionalOnCollab(t *testing.T) {
	s := NewSimulator(rng.New(5))
	trad := s.RunCohort(200, Traditional())
	ai := s.RunCohort(200, AIIntegrated())

	if ai.MeanCollab <= trad.MeanCollab {
		t.Fatalf("AI-integrated collab %v should beat traditional %v", ai.MeanCollab, trad.MeanCollab)
	}
	if ai.MeanTrustError >= trad.MeanTrustError {
		t.Fatalf("AI-integrated trust error %v should be below traditional %v",
			ai.MeanTrustError, trad.MeanTrustError)
	}
	// Domain knowledge should remain comparable (within 20%): integration
	// must not hollow out fundamentals.
	if ai.MeanDomain < trad.MeanDomain*0.8 {
		t.Fatalf("AI-integrated domain skill collapsed: %v vs %v", ai.MeanDomain, trad.MeanDomain)
	}
	if ai.MeanScore <= trad.MeanScore {
		t.Fatalf("overall outcome should favor AI-integrated: %v vs %v", ai.MeanScore, trad.MeanScore)
	}
}

func TestCohortReportFields(t *testing.T) {
	s := NewSimulator(rng.New(6))
	rep := s.RunCohort(50, AIIntegrated())
	if rep.N != 50 || rep.Curriculum != "ai-integrated" {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.ContactHours != 360 {
		t.Fatalf("contact hours = %v", rep.ContactHours)
	}
	if rep.PassRate < 0 || rep.PassRate > 1 {
		t.Fatalf("pass rate = %v", rep.PassRate)
	}
	if rep.MedianScore <= 0 {
		t.Fatal("median score missing")
	}
}

func TestAssessmentPenalizesOverAndUnderTrust(t *testing.T) {
	s := NewSimulator(rng.New(7))
	calibrated := s.NewTrainee()
	calibrated.Trust = s.SystemReliability
	over := s.NewTrainee()
	over.Trust = 1.0
	under := s.NewTrainee()
	under.Trust = 0.0
	for _, tr := range []*Trainee{calibrated, over, under} {
		tr.Skills[SkillAICollab] = 0.5
		tr.Skills[SkillJudgement] = 0.5
	}
	c := s.Assess(calibrated).CollabScore
	o := s.Assess(over).CollabScore
	u := s.Assess(under).CollabScore
	if c <= o || c <= u {
		t.Fatalf("calibrated trust should score best: c=%v o=%v u=%v", c, o, u)
	}
}

func TestEmptyCohort(t *testing.T) {
	s := NewSimulator(rng.New(8))
	rep := s.RunCohort(0, Traditional())
	if rep.N != 0 || rep.MeanScore != 0 {
		t.Fatalf("empty cohort: %+v", rep)
	}
}
