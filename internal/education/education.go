// Package education implements the paper's fifth dimension (milestones M13
// and M14): a virtual-laboratory training simulator that produces the
// "measurable learning outcomes" and "human-AI collaboration competency"
// assessments the roadmap calls for. Cohorts of simulated trainees progress
// through curricula; AI-integrated curricula build AI-collaboration skill
// and calibrate trust (the gap between a trainee's trust in autonomous
// systems and those systems' actual reliability), while traditional
// curricula build domain skill only. The assessment model scores both.
package education

import (
	"sort"

	"github.com/aisle-sim/aisle/internal/rng"
)

// Skill names used by the built-in curricula.
const (
	SkillDomain    = "domain"     // core scientific knowledge
	SkillLab       = "laboratory" // hands-on technique
	SkillCompute   = "computing"  // workflow/computational thinking
	SkillAICollab  = "ai-collab"  // working with autonomous agents
	SkillJudgement = "judgement"  // critical evaluation of automated results
)

// Trainee is one simulated learner.
type Trainee struct {
	Skills map[string]float64 // 0..1 mastery
	// Trust is the trainee's trust in autonomous systems, 0..1.
	Trust float64
	// aptitude scales learning rate, drawn per trainee.
	aptitude float64
}

// Module is one curriculum unit.
type Module struct {
	Name string
	// Focus distributes the module's effect across skills.
	Focus map[string]float64
	// Hours of instruction.
	Hours float64
	// HandsOn doubles laboratory-skill efficiency.
	HandsOn bool
	// AIIntegrated modules expose trainees to autonomous systems: they
	// grow ai-collab skill and calibrate trust toward SystemReliability.
	AIIntegrated bool
}

// Curriculum is an ordered module list.
type Curriculum struct {
	Name    string
	Modules []Module
}

// Traditional returns the baseline curriculum: domain-heavy, no autonomous
// systems exposure.
func Traditional() Curriculum {
	return Curriculum{
		Name: "traditional",
		Modules: []Module{
			{Name: "foundations", Focus: map[string]float64{SkillDomain: 1}, Hours: 120},
			{Name: "lab-methods", Focus: map[string]float64{SkillLab: 0.8, SkillDomain: 0.2}, Hours: 90, HandsOn: true},
			{Name: "data-analysis", Focus: map[string]float64{SkillCompute: 0.7, SkillJudgement: 0.3}, Hours: 60},
			{Name: "capstone", Focus: map[string]float64{SkillDomain: 0.4, SkillLab: 0.4, SkillJudgement: 0.2}, Hours: 80, HandsOn: true},
		},
	}
}

// AIIntegrated returns the M13-style curriculum: the same contact hours
// with autonomous-laboratory integration woven through.
func AIIntegrated() Curriculum {
	return Curriculum{
		Name: "ai-integrated",
		Modules: []Module{
			{Name: "foundations", Focus: map[string]float64{SkillDomain: 1}, Hours: 110},
			{Name: "autonomous-lab-methods", Focus: map[string]float64{SkillLab: 0.6, SkillAICollab: 0.4},
				Hours: 90, HandsOn: true, AIIntegrated: true},
			{Name: "workflow-thinking", Focus: map[string]float64{SkillCompute: 0.6, SkillAICollab: 0.4},
				Hours: 60, AIIntegrated: true},
			{Name: "trust-and-verification", Focus: map[string]float64{SkillJudgement: 0.7, SkillAICollab: 0.3},
				Hours: 40, AIIntegrated: true},
			{Name: "capstone-with-agents", Focus: map[string]float64{SkillDomain: 0.35, SkillLab: 0.35, SkillAICollab: 0.3},
				Hours: 60, HandsOn: true, AIIntegrated: true},
		},
	}
}

// Simulator runs cohorts through curricula.
type Simulator struct {
	rnd *rng.Stream

	// SystemReliability is the true reliability of the autonomous systems
	// trainees work with; trust calibrates toward it. Default 0.85.
	SystemReliability float64
	// LearnRate scales skill growth per hour. Default 0.008.
	LearnRate float64
}

// NewSimulator seeds a training simulator.
func NewSimulator(r *rng.Stream) *Simulator {
	return &Simulator{rnd: r.Fork("education"), SystemReliability: 0.85, LearnRate: 0.008}
}

// NewTrainee draws a trainee with random aptitude and naive trust.
func (s *Simulator) NewTrainee() *Trainee {
	return &Trainee{
		Skills:   map[string]float64{},
		Trust:    s.rnd.Range(0.1, 0.9), // uncalibrated prior
		aptitude: s.rnd.Normal(1, 0.15),
	}
}

// RunModule advances one trainee through one module.
func (s *Simulator) RunModule(tr *Trainee, m Module) {
	for skill, w := range m.Focus {
		eff := s.LearnRate * tr.aptitude * w * m.Hours
		if m.HandsOn && skill == SkillLab {
			eff *= 1.6
		}
		cur := tr.Skills[skill]
		// Diminishing returns toward mastery.
		tr.Skills[skill] = cur + eff*(1-cur)
		if tr.Skills[skill] > 1 {
			tr.Skills[skill] = 1
		}
	}
	if m.AIIntegrated {
		// Each AI-integrated contact hour moves trust toward the system's
		// true reliability (calibration), with individual noise.
		rate := 0.006 * m.Hours
		if rate > 0.9 {
			rate = 0.9
		}
		tr.Trust += rate*(s.SystemReliability-tr.Trust) + s.rnd.Normal(0, 0.01)
		if tr.Trust < 0 {
			tr.Trust = 0
		}
		if tr.Trust > 1 {
			tr.Trust = 1
		}
	}
}

// TrustError is the absolute miscalibration |trust - reliability|.
func (s *Simulator) TrustError(tr *Trainee) float64 {
	d := tr.Trust - s.SystemReliability
	if d < 0 {
		return -d
	}
	return d
}

// Assessment is the M14 competency exam: weighted skills plus a human-AI
// collaboration practicum that depends on ai-collab skill AND calibrated
// trust (over- and under-trust both cost points, mirroring medical
// simulation-training rubrics).
type Assessment struct {
	Score       float64
	CollabScore float64
	DomainScore float64
	TrustError  float64
	Passed      bool
}

// Assess examines one trainee.
func (s *Simulator) Assess(tr *Trainee) Assessment {
	domain := 0.5*tr.Skills[SkillDomain] + 0.3*tr.Skills[SkillLab] + 0.2*tr.Skills[SkillCompute]
	terr := s.TrustError(tr)
	collab := 0.6*tr.Skills[SkillAICollab] + 0.2*tr.Skills[SkillJudgement] + 0.2*(1-terr/0.85)
	if collab < 0 {
		collab = 0
	}
	score := 0.55*domain + 0.45*collab
	return Assessment{
		Score:       score,
		CollabScore: collab,
		DomainScore: domain,
		TrustError:  terr,
		Passed:      score >= 0.45,
	}
}

// CohortReport aggregates a cohort's outcomes.
type CohortReport struct {
	Curriculum     string
	N              int
	MeanScore      float64
	MeanCollab     float64
	MeanDomain     float64
	MeanTrustError float64
	PassRate       float64
	MedianScore    float64
	ContactHours   float64
}

// RunCohort trains n trainees through the curriculum and assesses them.
func (s *Simulator) RunCohort(n int, c Curriculum) CohortReport {
	rep := CohortReport{Curriculum: c.Name, N: n}
	var scores []float64
	for _, m := range c.Modules {
		rep.ContactHours += m.Hours
	}
	for i := 0; i < n; i++ {
		tr := s.NewTrainee()
		for _, m := range c.Modules {
			s.RunModule(tr, m)
		}
		a := s.Assess(tr)
		rep.MeanScore += a.Score
		rep.MeanCollab += a.CollabScore
		rep.MeanDomain += a.DomainScore
		rep.MeanTrustError += a.TrustError
		if a.Passed {
			rep.PassRate++
		}
		scores = append(scores, a.Score)
	}
	if n > 0 {
		rep.MeanScore /= float64(n)
		rep.MeanCollab /= float64(n)
		rep.MeanDomain /= float64(n)
		rep.MeanTrustError /= float64(n)
		rep.PassRate /= float64(n)
		sort.Float64s(scores)
		rep.MedianScore = scores[n/2]
	}
	return rep
}
