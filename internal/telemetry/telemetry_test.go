package telemetry

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("requests") != c {
		t.Fatal("registry did not return same counter")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	(&Counter{}).Add(-1)
}

func TestGauge(t *testing.T) {
	g := &Gauge{}
	g.Set(3.5)
	g.Add(-1.5)
	if g.Value() != 2.0 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000.0) // 0.001..1.0
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.4 || p50 > 0.7 {
		t.Fatalf("p50 = %v, want ~0.5 (bucketed)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.9 || p99 > 1.0 {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Quantile(0) != h.Min() {
		t.Fatal("q0 should be min")
	}
	if h.Quantile(1) != h.Max() {
		t.Fatal("q1 should be max")
	}
}

func TestHistogramQuantileConservative(t *testing.T) {
	// Quantile estimates must never under-report the order statistic they
	// bucket: estimate >= the ceil(q*n)-th smallest observation's bucket
	// floor, i.e. never below the true order statistic by more than one
	// bucket's rounding.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := &Histogram{}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			x := float64(v)/100 + 0.001
			h.Observe(x)
			vals[i] = x
		}
		sort.Float64s(vals)
		k := int(math.Ceil(0.5 * float64(len(vals))))
		orderStat := vals[k-1]
		est := h.Quantile(0.5)
		return est >= orderStat-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Name:    "E7",
		Caption: "protocol comparison",
		Columns: []string{"protocol", "p50 (ms)", "loss"},
	}
	tb.AddRow("rpc", 12.5, "0%")
	tb.AddRow("queue", 40.0, "0%")
	tb.AddNote("loss handled by %s", "retries")
	out := tb.Render()
	for _, want := range []string{"E7", "protocol comparison", "rpc", "queue", "12.5", "note: loss handled by retries"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// name + header + separator + 2 rows + 1 note
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Fatalf("std = %v, want ~2.138 (sample)", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Median-4.5) > 1e-9 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestSummarizeGeoMean(t *testing.T) {
	s := Summarize([]float64{1, 10, 100})
	if math.Abs(s.GeoMean-10) > 1e-9 {
		t.Fatalf("geomean = %v, want 10", s.GeoMean)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.142",
		12345.6: "12345.6",
		0.00123: "0.00123",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c")
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}

// Property: histogram mean equals arithmetic mean of observations.
func TestPropertyHistogramMean(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := &Histogram{}
		var sum float64
		for _, v := range raw {
			x := float64(v) + 1
			h.Observe(x)
			sum += x
		}
		want := sum / float64(len(raw))
		return math.Abs(h.Mean()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
