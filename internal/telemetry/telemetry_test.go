package telemetry

import (
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("requests") != c {
		t.Fatal("registry did not return same counter")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	(&Counter{}).Add(-1)
}

func TestGauge(t *testing.T) {
	g := &Gauge{}
	g.Set(3.5)
	g.Add(-1.5)
	if g.Value() != 2.0 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000.0) // 0.001..1.0
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.4 || p50 > 0.7 {
		t.Fatalf("p50 = %v, want ~0.5 (bucketed)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.9 || p99 > 1.0 {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Quantile(0) != h.Min() {
		t.Fatal("q0 should be min")
	}
	if h.Quantile(1) != h.Max() {
		t.Fatal("q1 should be max")
	}
}

func TestHistogramQuantileConservative(t *testing.T) {
	// Quantile estimates must never under-report the order statistic they
	// bucket: estimate >= the ceil(q*n)-th smallest observation's bucket
	// floor, i.e. never below the true order statistic by more than one
	// bucket's rounding.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := &Histogram{}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			x := float64(v)/100 + 0.001
			h.Observe(x)
			vals[i] = x
		}
		sort.Float64s(vals)
		k := int(math.Ceil(0.5 * float64(len(vals))))
		orderStat := vals[k-1]
		est := h.Quantile(0.5)
		return est >= orderStat-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Name:    "E7",
		Caption: "protocol comparison",
		Columns: []string{"protocol", "p50 (ms)", "loss"},
	}
	tb.AddRow("rpc", 12.5, "0%")
	tb.AddRow("queue", 40.0, "0%")
	tb.AddNote("loss handled by %s", "retries")
	out := tb.Render()
	for _, want := range []string{"E7", "protocol comparison", "rpc", "queue", "12.5", "note: loss handled by retries"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// name + header + separator + 2 rows + 1 note
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Fatalf("std = %v, want ~2.138 (sample)", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Median-4.5) > 1e-9 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestSummarizeGeoMean(t *testing.T) {
	s := Summarize([]float64{1, 10, 100})
	if math.Abs(s.GeoMean-10) > 1e-9 {
		t.Fatalf("geomean = %v, want 10", s.GeoMean)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.142",
		12345.6: "12345.6",
		0.00123: "0.00123",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c")
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestKeyCanonicalizesLabels(t *testing.T) {
	a := Key("sched.wait_s", "tenant", "alice", "site", "ornl")
	b := Key("sched.wait_s", "site", "ornl", "tenant", "alice")
	if a != b {
		t.Fatalf("label order changed the key: %q vs %q", a, b)
	}
	if want := "sched.wait_s{site=ornl,tenant=alice}"; a != want {
		t.Fatalf("key = %q, want %q", a, want)
	}
	if got := Key("plain"); got != "plain" {
		t.Fatalf("no-label key = %q", got)
	}
	if got := Key("odd", "dangling"); got != "odd" {
		t.Fatalf("odd kv key = %q", got)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter(Key("jobs.dispatched", "site", "ornl")).Add(7)
		r.Counter(Key("jobs.dispatched", "site", "anl")).Add(3)
		r.Gauge("queue.depth").Set(4)
		h := r.Histogram(Key("sched.wait_s", "tenant", "t0"))
		h.Observe(0.5)
		h.Observe(1.5)
		var b strings.Builder
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("snapshot JSON not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, frag := range []string{
		`"jobs.dispatched{site=anl}": 3`,
		`"jobs.dispatched{site=ornl}": 7`,
		`"queue.depth": 4`,
		`"sched.wait_s{tenant=t0}"`,
		`"count": 2`,
		`"mean": 1`,
	} {
		if !strings.Contains(a, frag) {
			t.Fatalf("snapshot missing %q:\n%s", frag, a)
		}
	}
}

func TestSnapshotEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("never.observed")
	snap := r.Snapshot()
	hs, ok := snap.Histograms["never.observed"]
	if !ok {
		t.Fatal("empty histogram missing from snapshot")
	}
	if hs.Count != 0 || hs.Mean != 0 || hs.P50 != 0 || hs.P90 != 0 || hs.P99 != 0 {
		t.Fatalf("empty histogram snapshot not all-zero: %+v", hs)
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"never.observed"`) {
		t.Fatalf("empty histogram absent from JSON:\n%s", b.String())
	}
}

func TestSnapshotQuantilesBracketObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	hs := r.Snapshot().Histograms["lat"]
	if hs.P50 < 0.4 || hs.P50 > 0.7 {
		t.Fatalf("p50 = %v", hs.P50)
	}
	if hs.P99 < 0.9 || hs.P99 > 1.0 {
		t.Fatalf("p99 = %v", hs.P99)
	}
	if hs.P50 > hs.P90 || hs.P90 > hs.P99 {
		t.Fatalf("quantiles not monotone: %+v", hs)
	}
}

// Exercised under the CI -race lane: concurrent writers and readers on every
// primitive plus registry lookups must be data-race free.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("c")
			ga := r.Gauge("g")
			h := r.Histogram("h")
			for i := 0; i < iters; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i%10) + 0.1)
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.Names()
					_ = h.Quantile(0.9)
				}
				// Distinct names force concurrent map growth too.
				r.Counter(Key("per", "g", string(rune('a'+g)))).Inc()
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("g").Value(); got != goroutines*iters {
		t.Fatalf("gauge = %v, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("h").Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
}

// Property: histogram mean equals arithmetic mean of observations.
func TestPropertyHistogramMean(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := &Histogram{}
		var sum float64
		for _, v := range raw {
			x := float64(v) + 1
			h.Observe(x)
			sum += x
		}
		want := sum / float64(len(raw))
		return math.Abs(h.Mean()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyEdgeCases(t *testing.T) {
	// Duplicate label names both survive into the canonical form (callers
	// own dedup); the relative order of equal keys is whatever the sort
	// yields, but it must be deterministic call to call.
	dup := Key("m", "site", "b", "site", "a")
	if dup != "m{site=b,site=a}" && dup != "m{site=a,site=b}" {
		t.Fatalf("duplicate-label key = %q", dup)
	}
	if again := Key("m", "site", "b", "site", "a"); again != dup {
		t.Fatalf("duplicate-label key not deterministic: %q vs %q", dup, again)
	}
	// Empty label values and names stay verbatim rather than collapsing —
	// distinct raw inputs must never alias to one series.
	if got := Key("m", "site", ""); got != "m{site=}" {
		t.Fatalf("empty-value key = %q", got)
	}
	if got := Key("m", "", "v"); got != "m{=v}" {
		t.Fatalf("empty-name key = %q", got)
	}
	// Reserved characters ({}=,) in values pass through unescaped; the
	// canonical ordering still keys on the label name.
	a := Key("m", "b", "x=y", "a", "p,q")
	if a != "m{a=p,q,b=x=y}" {
		t.Fatalf("reserved-char key = %q", a)
	}
	if Key("m", "a", "p,q", "b", "x=y") != a {
		t.Fatalf("reserved chars broke order-independence")
	}
	// A trailing odd key is dropped wholesale, not half-applied.
	if got := Key("m", "site", "ornl", "dangling"); got != "m{site=ornl}" {
		t.Fatalf("odd trailing kv key = %q", got)
	}
}

func TestSnapshotRoundTripsThroughJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter(Key("jobs", "site", "ornl")).Add(11)
	r.Gauge("depth").Set(2.5)
	h := r.Histogram("wait_s")
	for _, v := range []float64{0.1, 0.5, 1, 5, 30, 120} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var parsed Snapshot
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("snapshot JSON does not parse back: %v", err)
	}
	if got := parsed.Counters[Key("jobs", "site", "ornl")]; got != 11 {
		t.Fatalf("counter round-trip = %d, want 11", got)
	}
	if got := parsed.Gauges["depth"]; got != 2.5 {
		t.Fatalf("gauge round-trip = %v, want 2.5", got)
	}
	hs, ok := parsed.Histograms["wait_s"]
	if !ok {
		t.Fatalf("histogram missing from parsed snapshot: %s", b.String())
	}
	live := r.FindHistogram("wait_s")
	if hs.Count != live.Count() || hs.Sum != h.Sum() {
		t.Fatalf("histogram summary round-trip = %+v", hs)
	}
	// The exported buckets carry the full distribution: counts add up and
	// the parsed snapshot re-derives the same conservative quantiles.
	var total int64
	for i, bk := range hs.Buckets {
		if bk.Count <= 0 {
			t.Fatalf("bucket %d has non-positive count: %+v", i, bk)
		}
		if i > 0 && bk.UpperBound <= hs.Buckets[i-1].UpperBound {
			t.Fatalf("bucket bounds not ascending: %+v", hs.Buckets)
		}
		total += bk.Count
	}
	if total != hs.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, hs.Count)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got, want := hs.Quantile(q), h.Quantile(q); got != want {
			t.Fatalf("parsed q%.2f = %v, live = %v", q, got, want)
		}
	}
}

func TestFindDoesNotCreate(t *testing.T) {
	r := NewRegistry()
	if r.FindCounter("c") != nil || r.FindGauge("g") != nil || r.FindHistogram("h") != nil {
		t.Fatal("Find* returned a metric on an empty registry")
	}
	c := r.Counter("c")
	if r.FindCounter("c") != c {
		t.Fatal("FindCounter did not return the registered counter")
	}
	if len(r.Names()) != 1 {
		t.Fatalf("Find* created metrics: %v", r.Names())
	}
}
