// Package telemetry collects the measurements AISLE experiments report:
// counters, gauges, log-bucketed latency histograms, and labelled series.
// A Registry is attached to each simulation; experiment harnesses render
// registries into Tables, the row/column structures that regenerate the
// paper's milestone claims in EXPERIMENTS.md.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing count.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("telemetry: negative counter delta")
	}
	c.n += delta
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is a value that can move in both directions.
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram accumulates observations with exact mean tracking plus
// log-spaced buckets for quantile estimation. Buckets span [1e-9, ~1e12)
// with 10 buckets per decade, adequate for latencies in seconds or counts.
type Histogram struct {
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [220]int64 // 22 decades * 10
}

const (
	histMinExp        = -9.0 // 1e-9
	histBucketsPerDec = 10
)

func bucketFor(v float64) int {
	if v <= 0 {
		return 0
	}
	idx := int((math.Log10(v) - histMinExp) * histBucketsPerDec)
	if idx < 0 {
		idx = 0
	}
	if idx >= len((&Histogram{}).buckets) {
		idx = len((&Histogram{}).buckets) - 1
	}
	return idx
}

func bucketUpper(i int) float64 {
	return math.Pow(10, histMinExp+float64(i+1)/histBucketsPerDec)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketFor(v)]++
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum reports the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean reports the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest observation, or 0 with none.
func (h *Histogram) Min() float64 { return h.min }

// Max reports the largest observation, or 0 with none.
func (h *Histogram) Max() float64 { return h.max }

// Quantile estimates the q-quantile (0<=q<=1) from the log buckets. The
// estimate is the upper bound of the bucket containing the quantile, so it
// is conservative (never under-reports a latency).
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Registry is a namespace of named metrics. The zero value is ready to use.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Names returns the sorted names of all metrics of every kind.
func (r *Registry) Names() []string {
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table is a rendered experiment result: a named grid of rows that mirrors
// one milestone claim from the paper.
type Table struct {
	Name    string
	Caption string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote records a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// FormatFloat renders floats compactly: large values with thousands
// precision trimmed, small values with enough significant digits.
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render draws the table as aligned plain text suitable for terminals and
// EXPERIMENTS.md code blocks.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", t.Name)
	if t.Caption != "" {
		fmt.Fprintf(&b, " — %s", t.Caption)
	}
	b.WriteByte('\n')

	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Stats summarises a float slice; convenience for experiment reporting.
type Stats struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	P90, P95, P99  float64
	Sum            float64
	geometricValid bool
	GeoMean        float64
}

// Summarize computes Stats over xs. Empty input yields the zero Stats.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{N: len(xs), Min: xs[0], Max: xs[0], geometricValid: true}
	logSum := 0.0
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if x > 0 {
			logSum += math.Log(x)
		} else {
			s.geometricValid = false
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	if s.geometricValid {
		s.GeoMean = math.Exp(logSum / float64(s.N))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		if len(sorted) == 1 {
			return sorted[0]
		}
		pos := p * float64(len(sorted)-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= len(sorted) {
			return sorted[len(sorted)-1]
		}
		frac := pos - float64(lo)
		return sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	s.Median = q(0.5)
	s.P90 = q(0.90)
	s.P95 = q(0.95)
	s.P99 = q(0.99)
	return s
}
