// Package telemetry collects the measurements AISLE experiments report:
// counters, gauges, log-bucketed latency histograms, and labelled series.
// A Registry is attached to each simulation; experiment harnesses render
// registries into Tables, the row/column structures that regenerate the
// paper's milestone claims in EXPERIMENTS.md.
//
// All primitives are goroutine-safe: counters and gauges are lock-free
// atomics and histograms take a short mutex per observation, so parallel
// scorers, sharded simulation spines, and harnesses inspecting a live run
// from another goroutine can all record and read concurrently (the CI
// -race lane exercises this).
//
// Metrics can carry labels. A labelled series is addressed by its
// canonical key — name{k1=v1,k2=v2} with keys sorted — built once with Key
// and then used like any other metric name, so hot paths cache the
// *Counter/*Histogram pointer and pay nothing per record. Snapshot renders
// a registry (labels included) into a stable, JSON-encodable view.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/aisle-sim/aisle/internal/prof"
)

// Counter is a monotonically increasing count. Goroutine-safe.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("telemetry: negative counter delta")
	}
	c.n.Add(delta)
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a value that can move in both directions. Goroutine-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations with exact mean tracking plus
// log-spaced buckets for quantile estimation. Buckets span [1e-9, ~1e12)
// with 10 buckets per decade, adequate for latencies in seconds or counts.
// Goroutine-safe: one short mutex per observation.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [220]int64 // 22 decades * 10
	// recent is a preallocated ring of the latest raw observations: buckets
	// answer quantiles, the ring answers "what exactly happened just now"
	// for flight-recorder style readers. Fixed-size and written under mu, so
	// steady-state recording allocates nothing and stays race-free.
	recent [histRingLen]float64
	rpos   int // next ring write slot
	rlen   int // valid entries, saturating at histRingLen
	// prof wraps each observation in a telemetry.record region when the
	// owning registry has a spine profiler attached; nil costs one test.
	prof *prof.Profiler
}

const (
	histMinExp        = -9.0 // 1e-9
	histBucketsPerDec = 10
	histRingLen       = 256
)

func bucketFor(v float64) int {
	if v <= 0 {
		return 0
	}
	idx := int((math.Log10(v) - histMinExp) * histBucketsPerDec)
	if idx < 0 {
		idx = 0
	}
	if idx >= len((&Histogram{}).buckets) {
		idx = len((&Histogram{}).buckets) - 1
	}
	return idx
}

func bucketUpper(i int) float64 {
	return math.Pow(10, histMinExp+float64(i+1)/histBucketsPerDec)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	r := h.prof.Enter(prof.SiteTelemetryRecord)
	defer r.End()
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketFor(v)]++
	h.recent[h.rpos] = v
	h.rpos = (h.rpos + 1) % histRingLen
	if h.rlen < histRingLen {
		h.rlen++
	}
	h.mu.Unlock()
}

// Recent appends the ring's observations to dst in arrival order (oldest
// first) and returns the extended slice. At most the latest 256 values are
// retained; pass a reused buffer to read without allocating.
func (h *Histogram) Recent(dst []float64) []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	start := (h.rpos - h.rlen + histRingLen) % histRingLen
	for i := 0; i < h.rlen; i++ {
		dst = append(dst, h.recent[(start+i)%histRingLen])
	}
	return dst
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean reports the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest observation, or 0 with none.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest observation, or 0 with none.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// CountAtOrBelow reports how many observations certainly fell at or below
// v: the total count of buckets whose upper bound does not exceed v. The
// estimate is conservative — observations sharing v's own bucket are
// excluded, so an SLO counting "good" events with it never over-reports
// health by more than one bucket's width (~26% at 10 buckets/decade).
func (h *Histogram) CountAtOrBelow(v float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n int64
	for i, b := range h.buckets {
		if bucketUpper(i) > v {
			break
		}
		n += b
	}
	return n
}

// Quantile estimates the q-quantile (0<=q<=1) from the log buckets. The
// estimate is the upper bound of the bucket containing the quantile, so it
// is conservative (never under-reports a latency).
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Key builds the canonical name of a labelled series: name{k1=v1,k2=v2}
// with label keys sorted, so the same label set always addresses the same
// metric regardless of argument order. kv is alternating key, value pairs;
// an odd trailing key is ignored. With no labels Key returns name unchanged.
//
// Key allocates; hot paths should call it once and cache the returned
// *Counter/*Gauge/*Histogram pointer.
func Key(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	n := len(kv) / 2
	type pair struct{ k, v string }
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{kv[2*i], kv[2*i+1]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a namespace of named metrics. The zero value is ready to use.
// Lookups are goroutine-safe; hot paths should still cache the returned
// metric pointer rather than re-resolving names per event.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	prof     *prof.Profiler
}

// SetProfiler attaches the spine profiler to the registry: every histogram
// (existing and future) records its observations under the
// telemetry.record call-site. The profiler is single-goroutine by design,
// so this is only wired on registries owned by the single-threaded sim
// spine — exactly where the observations are hot.
func (r *Registry) SetProfiler(p *prof.Profiler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prof = p
	for _, h := range r.hists {
		h.prof = p
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok = r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok = r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok = r.hists[name]
	if !ok {
		h = &Histogram{prof: r.prof}
		r.hists[name] = h
	}
	return h
}

// FindCounter returns the named counter without creating it, or nil. The
// SLO engine polls with Find* so watching a metric a subsystem has not
// emitted yet never materializes a phantom series.
func (r *Registry) FindCounter(name string) *Counter {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[name]
}

// FindGauge returns the named gauge without creating it, or nil.
func (r *Registry) FindGauge(name string) *Gauge {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gauges[name]
}

// FindHistogram returns the named histogram without creating it, or nil.
func (r *Registry) FindHistogram(name string) *Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hists[name]
}

// Names returns the sorted names of all metrics of every kind.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramBucket is one occupied log bucket: the count of observations in
// (previous bound, UpperBound].
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramSnapshot is the point-in-time summary of one histogram. Buckets
// carries the occupied log buckets with their boundaries, so external tools
// (and the SLO engine) can reconstruct the distribution rather than being
// limited to the derived quantiles.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Mean    float64           `json:"mean"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile from the snapshot's buckets with the
// same conservative upper-bound rule as Histogram.Quantile, so a parsed
// snapshot reconstructs the distribution the live histogram reported.
func (hs *HistogramSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 {
		return 0
	}
	if q <= 0 {
		return hs.Min
	}
	if q >= 1 {
		return hs.Max
	}
	target := int64(math.Ceil(q * float64(hs.Count)))
	var cum int64
	for _, b := range hs.Buckets {
		cum += b.Count
		if cum >= target {
			u := b.UpperBound
			if u > hs.Max {
				u = hs.Max
			}
			if u < hs.Min {
				u = hs.Min
			}
			return u
		}
	}
	return hs.Max
}

// Snapshot is a consistent-per-metric view of a registry, including
// labelled series under their canonical keys. It JSON-encodes with sorted
// keys, so two identical registries serialize byte-identically.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	counterNames := make([]string, 0, len(r.counters))
	for n, c := range r.counters {
		counterNames = append(counterNames, n)
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	gaugeNames := make([]string, 0, len(r.gauges))
	for n, g := range r.gauges {
		gaugeNames = append(gaugeNames, n)
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	histNames := make([]string, 0, len(r.hists))
	for n, h := range r.hists {
		histNames = append(histNames, n)
		hists = append(hists, h)
	}
	r.mu.RUnlock()

	var snap Snapshot
	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for i, c := range counters {
			snap.Counters[counterNames[i]] = c.Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges))
		for i, g := range gauges {
			snap.Gauges[gaugeNames[i]] = g.Value()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for i, h := range hists {
			h.mu.Lock()
			hs := HistogramSnapshot{
				Count: h.count,
				Sum:   h.sum,
				Min:   h.min,
				Max:   h.max,
				P50:   h.quantileLocked(0.50),
				P90:   h.quantileLocked(0.90),
				P99:   h.quantileLocked(0.99),
			}
			if h.count > 0 {
				hs.Mean = h.sum / float64(h.count)
			}
			for j, b := range h.buckets {
				if b > 0 {
					hs.Buckets = append(hs.Buckets, HistogramBucket{
						UpperBound: bucketUpper(j), Count: b})
				}
			}
			h.mu.Unlock()
			snap.Histograms[histNames[i]] = hs
		}
	}
	return snap
}

// WriteJSON writes the registry's Snapshot to w as indented JSON. Output is
// deterministic: encoding/json sorts map keys.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Table is a rendered experiment result: a named grid of rows that mirrors
// one milestone claim from the paper.
type Table struct {
	Name    string
	Caption string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote records a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// FormatFloat renders floats compactly: large values with thousands
// precision trimmed, small values with enough significant digits.
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render draws the table as aligned plain text suitable for terminals and
// EXPERIMENTS.md code blocks.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", t.Name)
	if t.Caption != "" {
		fmt.Fprintf(&b, " — %s", t.Caption)
	}
	b.WriteByte('\n')

	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Stats summarises a float slice; convenience for experiment reporting.
type Stats struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	P90, P95, P99  float64
	Sum            float64
	geometricValid bool
	GeoMean        float64
}

// Summarize computes Stats over xs. Empty input yields the zero Stats.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{N: len(xs), Min: xs[0], Max: xs[0], geometricValid: true}
	logSum := 0.0
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if x > 0 {
			logSum += math.Log(x)
		} else {
			s.geometricValid = false
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	if s.geometricValid {
		s.GeoMean = math.Exp(logSum / float64(s.N))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		if len(sorted) == 1 {
			return sorted[0]
		}
		pos := p * float64(len(sorted)-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= len(sorted) {
			return sorted[len(sorted)-1]
		}
		frac := pos - float64(lo)
		return sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	s.Median = q(0.5)
	s.P90 = q(0.90)
	s.P95 = q(0.95)
	s.P99 = q(0.99)
	return s
}
