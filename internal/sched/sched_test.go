package sched

import (
	"errors"
	"testing"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/discovery"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/twin"
)

// testbed is a minimal federation (network + bus + discovery + fleets)
// without the core package, mirroring core.AddInstrument's wiring.
type testbed struct {
	eng    *sim.Engine
	rnd    *rng.Stream
	net    *netsim.Network
	fab    *bus.Fabric
	dir    *discovery.Directory
	s      *Scheduler
	fleets map[netsim.SiteID]*instrument.Fleet
}

func newTestbed(t *testing.T, sites []netsim.SiteID, opts Options) *testbed {
	t.Helper()
	eng := sim.NewEngine()
	rnd := rng.New(1)
	net := netsim.New(eng, rnd.Fork("net"))
	for _, id := range sites {
		net.AddSite(id).Firewall.AllowAll()
	}
	if len(sites) > 1 {
		// Lossless links keep the tests free of 48h RPC-timeout stalls.
		net.FullMesh(sites, netsim.Link{
			Latency: 15 * sim.Millisecond, Jitter: sim.Millisecond, Bandwidth: 125e6,
		})
	}
	fab := bus.NewFabric(net)
	dir := discovery.NewDirectory(fab, sites)
	tb := &testbed{
		eng: eng, rnd: rnd, net: net, fab: fab, dir: dir,
		s:      New(eng, net, fab, telemetry.NewRegistry(), rnd.Fork("sched"), opts),
		fleets: make(map[netsim.SiteID]*instrument.Fleet),
	}
	for _, id := range sites {
		fleet := instrument.NewFleet()
		tb.fleets[id] = fleet
		tb.s.AddSite(SiteBinding{
			ID: id, Registry: dir.Registry(id), Fleet: fleet,
			Token: func() any { return nil },
		})
	}
	dir.Start()
	tb.s.Start()
	t.Cleanup(func() { tb.s.Stop(); dir.Stop() })
	return tb
}

// addReactor installs a fluidic reactor at a site: fleet, bus endpoint,
// and discovery record.
func (tb *testbed) addReactor(site netsim.SiteID, id string) *instrument.Instrument {
	in := instrument.NewFluidicReactor(tb.eng, tb.rnd, id, string(site), twin.Perovskite{})
	d := in.Descriptor()
	tb.fleets[site].Add(in)
	endpoint := "instr/" + d.ID
	tb.fab.Broker(site).Register(endpoint, func(env *bus.Envelope, respond func(any, error)) {
		in.Submit(env.Payload.(instrument.Command), func(res instrument.Result) {
			respond(res, res.Err)
		})
	})
	tb.dir.Registry(site).Register(discovery.Record{
		Instance:     string(site) + "/" + d.ID,
		Type:         d.Kind,
		Addr:         bus.Address{Site: site, Name: endpoint},
		Capabilities: d.Capabilities,
	})
	return in
}

// converge runs gossip long enough for records to propagate.
func (tb *testbed) converge() { _ = tb.eng.RunUntil(tb.eng.Now() + 10*sim.Second) }

func (tb *testbed) runFor(d sim.Time) { _ = tb.eng.RunUntil(tb.eng.Now() + d) }

// validPoint is an in-envelope perovskite synthesis command.
func validCmd(sample string) instrument.Command {
	return instrument.Command{
		Action: "synthesize",
		Params: map[string]float64{
			"temperature": 150, "halide_ratio": 0.5, "residence_s": 60, "ligand_mM": 15,
		},
		SampleID: sample,
	}
}

func TestFairShareWeightedOrdering(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{MaxInFlightPerInstrument: 1})
	tb.addReactor("a", "flow-1")
	tb.converge()

	tb.s.Tenant("a", TenantConfig{ID: "alpha", Weight: 2})
	tb.s.Tenant("a", TenantConfig{ID: "beta", Weight: 1})

	var order []string
	submit := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			tb.s.Submit(Job{Tenant: tenant, Origin: "a", Kind: instrument.KindFlowReactor,
				Cmd: validCmd(tenant)}, func(res instrument.Result, err error) {
				if err != nil {
					t.Errorf("%s job failed: %v", tenant, err)
				}
				order = append(order, tenant)
			})
		}
	}
	// Beta submits first: weight, not arrival order, must set the ratio.
	submit("beta", 12)
	submit("alpha", 12)
	tb.runFor(time30m())

	if len(order) != 24 {
		t.Fatalf("completed %d of 24 jobs", len(order))
	}
	nAlpha := 0
	for _, id := range order[:12] {
		if id == "alpha" {
			nAlpha++
		}
	}
	// Weighted DRR at 2:1 should give alpha ~8 of the first 12 dispatches.
	if nAlpha < 7 || nAlpha > 9 {
		t.Fatalf("alpha got %d of first 12 dispatches, want ~8 (order %v)", nAlpha, order[:12])
	}
}

func time30m() sim.Time { return 30 * sim.Minute }

func TestPriorityClassesPreemptQueue(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{MaxInFlightPerInstrument: 1})
	tb.addReactor("a", "flow-1")
	tb.converge()

	tb.s.Tenant("a", TenantConfig{ID: "urgent", Class: ClassUrgent})

	var order []string
	submit := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			tb.s.Submit(Job{Tenant: tenant, Origin: "a", Kind: instrument.KindFlowReactor,
				Cmd: validCmd(tenant)}, func(res instrument.Result, err error) {
				order = append(order, tenant)
			})
		}
	}
	submit("normal", 10)
	tb.runFor(5 * sim.Second) // the first normal job is dispatched
	submit("urgent", 5)
	tb.runFor(time30m())

	if len(order) != 15 {
		t.Fatalf("completed %d of 15 jobs", len(order))
	}
	// Slot 0 was already committed to normal; slots 1..5 must be urgent.
	for i := 1; i <= 5; i++ {
		if order[i] != "urgent" {
			t.Fatalf("urgent work did not jump the queue: order %v", order)
		}
	}
}

func TestAgingPromotesStarvedBackfill(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{
		MaxInFlightPerInstrument: 1,
		AgingStep:                10 * sim.Second,
	})
	tb.addReactor("a", "flow-1")
	tb.converge()

	tb.s.Tenant("a", TenantConfig{ID: "bg", Class: ClassBatch})
	tb.s.Tenant("a", TenantConfig{ID: "hot", Class: ClassUrgent})

	var order []string
	add := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			tb.s.Submit(Job{Tenant: tenant, Origin: "a", Kind: instrument.KindFlowReactor,
				Cmd: validCmd(tenant)}, func(res instrument.Result, err error) {
				order = append(order, tenant)
			})
		}
	}
	add("bg", 1)
	add("hot", 20)
	tb.runFor(time30m())

	bgIdx := -1
	for i, id := range order {
		if id == "bg" {
			bgIdx = i
		}
	}
	if bgIdx == -1 {
		t.Fatalf("background job never ran: order %v", order)
	}
	// Without aging the batch-class job would run dead last (index 20);
	// with a 10s aging step it outranks urgent work after ~30s of waiting,
	// i.e. within the first few ~15s reactor slots.
	if bgIdx > 5 {
		t.Fatalf("background job starved until index %d: order %v", bgIdx, order)
	}
}

func TestCrossSiteRoutingPrefersIdleRemote(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a", "b"}, Options{MaxInFlightPerInstrument: 1})
	tb.addReactor("a", "flow-a")
	tb.addReactor("b", "flow-b")
	tb.converge()

	var ids []string
	for i := 0; i < 2; i++ {
		tb.s.Submit(Job{Tenant: "c", Origin: "a", Kind: instrument.KindFlowReactor,
			Cmd: validCmd("x")}, func(res instrument.Result, err error) {
			if err != nil {
				t.Errorf("job failed: %v", err)
			}
			ids = append(ids, res.InstrumentID)
		})
	}
	tb.runFor(10 * sim.Minute)

	if len(ids) != 2 {
		t.Fatalf("completed %d of 2 jobs", len(ids))
	}
	if ids[0] == ids[1] {
		t.Fatalf("both jobs ran on %s; the second should route to the idle remote reactor", ids[0])
	}
	if got := tb.s.metrics.Counter("sched.remote_dispatches").Value(); got != 1 {
		t.Fatalf("remote_dispatches = %d, want 1", got)
	}
}

func TestRoutingSkipsDownInstrument(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a", "b"}, Options{MaxInFlightPerInstrument: 2})
	local := tb.addReactor("a", "flow-a")
	tb.addReactor("b", "flow-b")
	tb.converge()

	local.ForceFailure()
	var got string
	tb.s.Submit(Job{Tenant: "c", Origin: "a", Kind: instrument.KindFlowReactor,
		Cmd: validCmd("x")}, func(res instrument.Result, err error) {
		if err != nil {
			t.Errorf("job failed: %v", err)
		}
		got = res.InstrumentID
	})
	tb.runFor(10 * sim.Minute)

	if got != "flow-b" {
		t.Fatalf("job ran on %q, want the healthy remote flow-b", got)
	}
}

func TestWorkStealingDrainsPeerBacklog(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a", "b"}, Options{MaxInFlightPerInstrument: 1})
	tb.addReactor("a", "flow-a")
	tb.addReactor("b", "flow-b")
	tb.converge()

	byInstr := map[string]int{}
	done := 0
	for i := 0; i < 12; i++ {
		tb.s.Submit(Job{Tenant: "c", Origin: "a", Kind: instrument.KindFlowReactor,
			Cmd: validCmd("x")}, func(res instrument.Result, err error) {
			if err != nil {
				t.Errorf("job failed: %v", err)
			}
			byInstr[res.InstrumentID]++
			done++
		})
	}
	tb.runFor(time30m())

	if done != 12 {
		t.Fatalf("completed %d of 12 jobs", done)
	}
	if byInstr["flow-b"] == 0 {
		t.Fatalf("remote reactor never used: %v", byInstr)
	}
	if steals := tb.s.metrics.Counter("sched.steals").Value(); steals == 0 {
		t.Fatal("site b never stole from a's backlog")
	}
}

func TestInFlightAccountingRespectsCaps(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{MaxInFlightPerInstrument: 2})
	tb.addReactor("a", "flow-1")
	tb.addReactor("a", "flow-2")
	tb.converge()

	if got := tb.s.Capacity(); got != 4 {
		t.Fatalf("capacity = %d, want 4", got)
	}
	maxFlying, done := 0, 0
	for i := 0; i < 10; i++ {
		tb.s.Submit(Job{Tenant: "c", Origin: "a", Kind: instrument.KindFlowReactor,
			Cmd: validCmd("x")}, func(res instrument.Result, err error) {
			done++
		})
		if f := tb.s.InFlight(); f > maxFlying {
			maxFlying = f
		}
	}
	// Sample in-flight load as the simulation progresses.
	for i := 0; i < 60; i++ {
		tb.runFor(5 * sim.Second)
		if f := tb.s.InFlight(); f > maxFlying {
			maxFlying = f
		}
	}
	if done != 10 {
		t.Fatalf("completed %d of 10 jobs", done)
	}
	if maxFlying > 4 {
		t.Fatalf("in-flight peaked at %d, cap is 4", maxFlying)
	}
	if maxFlying < 3 {
		t.Fatalf("in-flight peaked at %d; batching should keep the fleet loaded", maxFlying)
	}
	if c := tb.s.metrics.Histogram("sched.wait_s").Count(); c != 10 {
		t.Fatalf("wait histogram has %d observations, want 10", c)
	}
	if tb.s.QueueDepth() != 0 || tb.s.InFlight() != 0 {
		t.Fatalf("scheduler not drained: queued %d flying %d", tb.s.QueueDepth(), tb.s.InFlight())
	}
}

func TestBackfillAcrossClasses(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{MaxInFlightPerInstrument: 1})
	tb.addReactor("a", "flow-1")
	tb.converge()

	tb.s.Tenant("a", TenantConfig{ID: "urgent", Class: ClassUrgent})

	// The urgent tenant's jobs want a kind nobody advertises; the normal
	// tenant's reactor work must backfill the idle reactor immediately
	// instead of waiting behind the blocked higher class.
	for i := 0; i < 3; i++ {
		tb.s.Submit(Job{Tenant: "urgent", Origin: "a", Kind: "_xrd._aisle",
			Cmd: validCmd("x")}, func(instrument.Result, error) {})
	}
	done := 0
	for i := 0; i < 4; i++ {
		tb.s.Submit(Job{Tenant: "normal", Origin: "a", Kind: instrument.KindFlowReactor,
			Cmd: validCmd("x")}, func(res instrument.Result, err error) {
			if err != nil {
				t.Errorf("job failed: %v", err)
			}
			done++
		})
	}
	tb.runFor(10 * sim.Minute)

	if done != 4 {
		t.Fatalf("completed %d of 4 backfill jobs; blocked urgent class idled the reactor", done)
	}
	if tb.s.QueueDepth() != 3 {
		t.Fatalf("queue depth = %d, want the 3 unroutable urgent jobs", tb.s.QueueDepth())
	}
}

func TestQueuedJobExpiresWithTerminalError(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{})
	in := tb.addReactor("a", "flow-1")
	tb.converge()

	in.ForceFailure() // down for 30 minutes (fluidic repair time)
	var got error
	done := false
	tb.s.Submit(Job{Tenant: "c", Origin: "a", Kind: instrument.KindFlowReactor,
		Cmd: validCmd("x"), Timeout: 5 * sim.Minute},
		func(res instrument.Result, err error) { got, done = err, true })
	tb.runFor(10 * sim.Minute)

	if !done {
		t.Fatal("job never reached a terminal outcome")
	}
	if !errors.Is(got, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", got)
	}
	if tb.s.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after expiry", tb.s.QueueDepth())
	}
}

func TestReleaseTenantCancelsQueuedJobs(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{})
	tb.addReactor("a", "flow-1")
	tb.converge()

	var errs []error
	for i := 0; i < 3; i++ {
		// Unroutable kind: the jobs park in the tenant queue.
		tb.s.Submit(Job{Tenant: "dead", Origin: "a", Kind: "_xrd._aisle",
			Cmd: validCmd("x")}, func(_ instrument.Result, err error) {
			errs = append(errs, err)
		})
	}
	tb.runFor(sim.Minute)
	if tb.s.QueueDepth() != 3 {
		t.Fatalf("queue depth = %d before release", tb.s.QueueDepth())
	}

	tb.s.ReleaseTenant("dead")
	if tb.s.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after release", tb.s.QueueDepth())
	}
	if len(errs) != 3 {
		t.Fatalf("got %d terminal callbacks, want 3", len(errs))
	}
	for _, err := range errs {
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	}
}

func TestReleaseTenantCancelsStolenInTransit(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a", "b"}, Options{MaxInFlightPerInstrument: 1})
	tb.addReactor("a", "flow-a")
	tb.addReactor("b", "flow-b")
	tb.converge()

	outcomes := 0
	for i := 0; i < 12; i++ {
		tb.s.Submit(Job{Tenant: "t", Origin: "a", Kind: instrument.KindFlowReactor,
			Cmd: validCmd("x")}, func(instrument.Result, error) { outcomes++ })
	}
	// Step until a steal batch is on the wire (its 30ms arrival event is
	// scheduled but not yet fired), then release the tenant mid-transit.
	for i := 0; i < 100000 && tb.s.metrics.Counter("sched.steals").Value() == 0; i++ {
		tb.runFor(5 * sim.Millisecond)
	}
	if tb.s.metrics.Counter("sched.steals").Value() == 0 {
		t.Fatal("no steal occurred; scenario did not form")
	}
	tb.s.ReleaseTenant("t")
	tb.runFor(time30m())

	// Every job reaches exactly one terminal outcome: the in-flight ones
	// complete, the queued and in-transit ones are canceled.
	if outcomes != 12 {
		t.Fatalf("terminal outcomes = %d, want 12", outcomes)
	}
	for _, sid := range []netsim.SiteID{"a", "b"} {
		if _, ok := tb.s.sites[sid].tenants["t"]; ok {
			t.Fatalf("released tenant resurrected at %s", sid)
		}
	}
	if tb.s.QueueDepth() != 0 || len(tb.s.transit) != 0 {
		t.Fatalf("leftover state: queued %d, transit %d", tb.s.QueueDepth(), len(tb.s.transit))
	}
}

func TestSubmitErrors(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{})
	var err1, err2 error
	tb.s.Submit(Job{Tenant: "c", Origin: "ghost"}, func(_ instrument.Result, err error) { err1 = err })
	tb.s.Submit(Job{Origin: "a"}, func(_ instrument.Result, err error) { err2 = err })
	if err1 == nil || err2 == nil {
		t.Fatalf("bad submissions must error synchronously: %v, %v", err1, err2)
	}
}

func TestMinCapsFilterRouting(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{})
	tb.addReactor("a", "flow-1")
	tb.converge()

	done := false
	// Fluidic reactors advertise volume_mL 0.02; demanding 1 mL must leave
	// the job queued (unroutable), not dispatched somewhere wrong.
	tb.s.Submit(Job{Tenant: "c", Origin: "a", Kind: instrument.KindFlowReactor,
		MinCaps: map[string]float64{"volume_mL": 1},
		Cmd:     validCmd("x")}, func(res instrument.Result, err error) { done = true })
	tb.runFor(10 * sim.Minute)

	if done {
		t.Fatal("job with unsatisfiable capability floor was dispatched")
	}
	if tb.s.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d, want the unroutable job parked", tb.s.QueueDepth())
	}
}

// addBatchReactor installs a slow (30-minute action) synthesis robot, for
// tests that need work to stay in flight across recovery sweeps.
func (tb *testbed) addBatchReactor(site netsim.SiteID, id string) *instrument.Instrument {
	in := instrument.NewBatchReactor(tb.eng, tb.rnd, id, string(site), twin.Perovskite{})
	d := in.Descriptor()
	tb.fleets[site].Add(in)
	endpoint := "instr/" + d.ID
	tb.fab.Broker(site).Register(endpoint, func(env *bus.Envelope, respond func(any, error)) {
		in.Submit(env.Payload.(instrument.Command), func(res instrument.Result) {
			respond(res, res.Err)
		})
	})
	tb.dir.Registry(site).Register(discovery.Record{
		Instance:     string(site) + "/" + d.ID,
		Type:         d.Kind,
		Addr:         bus.Address{Site: site, Name: endpoint},
		Capabilities: d.Capabilities,
	})
	return in
}

func TestRetryRecoversFromInstrumentFailure(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{})
	in := tb.addReactor("a", "flow-1")
	tb.converge()

	// First attempt is guaranteed to fail; the instrument then repairs and
	// the retry must land without the caller seeing the failure.
	in.SetFailureProb(1)
	var calls int
	var lastErr error
	tb.s.Submit(Job{Tenant: "t", Origin: "a", Kind: instrument.KindFlowReactor,
		Cmd: validCmd("s-1"), MaxRetries: 2}, func(res instrument.Result, err error) {
		calls++
		lastErr = err
	})
	tb.runFor(time30m())
	in.SetFailureProb(0)
	tb.runFor(2 * sim.Hour)

	if calls != 1 {
		t.Fatalf("callback ran %d times, want exactly 1", calls)
	}
	if lastErr != nil {
		t.Fatalf("job should have succeeded on retry, got %v", lastErr)
	}
	if got := tb.s.metrics.Counter(telemetry.Key("sched.retries", "site", "a", "tenant", "t")).Value(); got < 1 {
		t.Fatalf("sched.retries{site=a,tenant=t} = %d, want >= 1", got)
	}
	if got := tb.s.metrics.Counter(telemetry.Key("sched.requeues", "reason", "failure")).Value(); got < 1 {
		t.Fatalf("sched.requeues{reason=failure} = %d, want >= 1", got)
	}
}

func TestRetryBudgetExhaustedSurfacesTerminalError(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{})
	in := tb.addReactor("a", "flow-1")
	tb.converge()

	in.SetFailureProb(1) // every attempt fails
	var calls int
	var lastErr error
	tb.s.Submit(Job{Tenant: "t", Origin: "a", Kind: instrument.KindFlowReactor,
		Cmd: validCmd("s-1"), MaxRetries: 1}, func(res instrument.Result, err error) {
		calls++
		lastErr = err
	})
	tb.runFor(3 * sim.Hour)

	if calls != 1 {
		t.Fatalf("callback ran %d times, want exactly 1", calls)
	}
	if lastErr == nil {
		t.Fatal("exhausted retry budget must surface the failure")
	}
}

func TestRecoverReroutesFromDownInstrument(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a", "b"}, Options{Recover: true})
	inA := tb.addBatchReactor("a", "batch-a")
	tb.addBatchReactor("b", "batch-b")
	tb.converge()

	var calls int
	var lastErr error
	tb.s.Submit(Job{Tenant: "t", Origin: "a", Kind: instrument.KindSynthesis,
		Cmd: validCmd("s-1")}, func(res instrument.Result, err error) {
		calls++
		lastErr = err
	})
	tb.runFor(2 * sim.Minute) // dispatched to a (local preferred), mid-action
	if tb.s.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1", tb.s.InFlight())
	}
	inA.ForceDown(6 * sim.Hour)
	tb.runFor(4 * sim.Hour)

	if calls != 1 {
		t.Fatalf("callback ran %d times, want exactly 1", calls)
	}
	if lastErr != nil {
		t.Fatalf("rescued job should complete at the peer site, got %v", lastErr)
	}
	if got := tb.s.metrics.Counter(telemetry.Key("sched.requeues", "reason", "site-down")).Value(); got != 1 {
		t.Fatalf("sched.requeues{reason=site-down} = %d, want 1", got)
	}
	// The doomed first dispatch still runs to completion on the device; its
	// late reply must be discarded by the epoch guard, not double-complete.
	if got := tb.s.metrics.Counter("sched.stale_replies").Value(); got != 1 {
		t.Fatalf("sched.stale_replies = %d, want 1", got)
	}
}

func TestRecoverReroutesFromPartitionedSite(t *testing.T) {
	tb := newTestbed(t, []netsim.SiteID{"a", "b"}, Options{Recover: true})
	tb.addBatchReactor("b", "batch-b") // only b can run the job
	tb.converge()

	var calls int
	var lastErr error
	tb.s.Submit(Job{Tenant: "t", Origin: "a", Kind: instrument.KindSynthesis,
		Cmd: validCmd("s-1")}, func(res instrument.Result, err error) {
		calls++
		lastErr = err
	})
	tb.runFor(2 * sim.Minute) // dispatched across the WAN to b
	if tb.s.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1", tb.s.InFlight())
	}
	tb.net.SetLinkUp("a", "b", false)
	tb.runFor(10 * sim.Minute) // sweep rescues; job unroutable while dark
	if got := tb.s.metrics.Counter(telemetry.Key("sched.requeues", "reason", "unreachable")).Value(); got != 1 {
		t.Fatalf("sched.requeues{reason=unreachable} = %d, want 1", got)
	}
	if calls != 0 {
		t.Fatalf("job terminated while its only site was unreachable (calls=%d err=%v)", calls, lastErr)
	}
	tb.net.SetLinkUp("a", "b", true)
	tb.runFor(2 * sim.Hour)

	if calls != 1 {
		t.Fatalf("callback ran %d times, want exactly 1", calls)
	}
	if lastErr != nil {
		t.Fatalf("job should complete after the partition heals, got %v", lastErr)
	}
}

func TestTryDispatchFailsFastOnExpiredJob(t *testing.T) {
	// A huge repump interval keeps the background sweep out of the picture:
	// the expiry must come from the dispatch path itself when capacity
	// finally frees for a job whose Timeout already elapsed in queue.
	tb := newTestbed(t, []netsim.SiteID{"a"}, Options{
		MaxInFlightPerInstrument: 1, RepumpInterval: 6 * sim.Hour, AgingStep: -1,
	})
	tb.addBatchReactor("a", "batch-a")
	tb.converge()

	var firstErr, secondErr error
	first, second := 0, 0
	tb.s.Submit(Job{Tenant: "t", Origin: "a", Kind: instrument.KindSynthesis,
		Cmd: validCmd("s-long")}, func(res instrument.Result, err error) {
		first++
		firstErr = err
	})
	tb.s.Submit(Job{Tenant: "t", Origin: "a", Kind: instrument.KindSynthesis,
		Cmd: validCmd("s-dead"), Timeout: 2 * sim.Minute}, func(res instrument.Result, err error) {
		second++
		secondErr = err
	})
	tb.runFor(time30m() + 10*sim.Minute) // first completes (~30m), freeing capacity

	if first != 1 || firstErr != nil {
		t.Fatalf("first job: calls=%d err=%v", first, firstErr)
	}
	if second != 1 {
		t.Fatalf("second job callback ran %d times, want 1", second)
	}
	if !errors.Is(secondErr, ErrExpired) {
		t.Fatalf("second job error = %v, want ErrExpired", secondErr)
	}
	// It must have failed fast, never shipped to the instrument.
	if got := tb.s.metrics.Counter("sched.dispatched").Value(); got != 1 {
		t.Fatalf("sched.dispatched = %d, want 1 (expired job must not dispatch)", got)
	}
}
