// Package sched is the federation-wide experiment scheduler: the layer
// between campaigns and instruments that makes heavy multi-tenant traffic
// possible. The paper's vision is a pooled instrument fleet spanning
// institutions; without a scheduler, each campaign negotiates an instrument
// on its own and a busy reactor at one site queues work while an identical
// idle reactor at a peer site sits dark.
//
// The scheduler provides three things:
//
//   - Fair-share multi-tenancy: every campaign (tenant) gets a weighted
//     deficit-round-robin queue at its submission site, with priority
//     classes and aging so background work backfills idle capacity without
//     ever starving (a job's effective class rises the longer it waits).
//
//   - Cross-site routing: each dispatch scores every compatible instrument
//     visible in the federation directory by scheduler-tracked in-flight
//     load, observed instrument state (down instruments are skipped,
//     calibrating ones penalized), and WAN round-trip latency from netsim,
//     then ships the command to the cheapest one over the bus fabric.
//
//   - Work stealing: when a site frees instrument capacity and its own
//     queue is dry, it steals half the deepest peer backlog (paying one
//     WAN round trip), so no fleet capacity idles while any site queues.
//
// The scheduler is intentionally ignorant of campaigns: it moves opaque
// instrument commands. Batched dispatch (a campaign keeping k experiments
// in flight) is built on top in internal/core using Submit's asynchronous
// completion callbacks.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/discovery"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
)

// Errors surfaced to submitters.
var (
	ErrUnknownSite   = errors.New("sched: unknown origin site")
	ErrUnknownTenant = errors.New("sched: job names no tenant")
	// ErrExpired reports a job that outlived its Timeout while still
	// queued (every candidate instrument down, saturated, or unreachable
	// for the whole window).
	ErrExpired = errors.New("sched: job expired in queue")
	// ErrCanceled reports a queued job dropped because its tenant was
	// released before it dispatched.
	ErrCanceled = errors.New("sched: job canceled")
)

// Class is a tenant priority class. Higher classes dispatch first; aging
// promotes waiting jobs one class per AgingStep so lower classes backfill
// without starving.
type Class int

// Priority classes. The zero value is ClassNormal so campaigns that never
// touch the knob get ordinary service.
const (
	// ClassBatch is background work that yields to everything fresh.
	ClassBatch Class = iota - 1
	// ClassNormal is the default interactive-campaign class.
	ClassNormal
	// ClassUrgent preempts queued normal work (not running experiments).
	ClassUrgent
)

// String renders the class name.
func (c Class) String() string {
	switch c {
	case ClassBatch:
		return "batch"
	case ClassNormal:
		return "normal"
	case ClassUrgent:
		return "urgent"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// TenantConfig describes one fair-share tenant (typically a campaign).
type TenantConfig struct {
	ID string
	// Weight is the deficit-round-robin share. Default 1; clamped to
	// [0.05, 8] so every tenant makes progress in a bounded number of
	// scheduling passes.
	Weight float64
	// Class is the base priority class.
	Class Class
}

// Job is one experiment request: an instrument command plus the routing
// requirement (kind and capability floors) needed to place it.
type Job struct {
	Tenant  string
	Origin  netsim.SiteID
	Kind    string
	MinCaps map[string]float64
	Cmd     instrument.Command
	// Timeout bounds the instrument RPC (queueing + action). Default 48h.
	Timeout sim.Time
	// MaxRetries bounds automatic retry of failed dispatches: a job whose
	// RPC fails (instrument fault, link loss, timeout) is re-queued with
	// exponential backoff + jitter up to MaxRetries times before the
	// failure surfaces to the callback. 0 (the default) keeps the original
	// fail-on-first-error behaviour. Retries spend the same Timeout budget
	// as the first attempt, so a terminal outcome is still guaranteed.
	MaxRetries int
	// Trace is the causal context this job runs under (typically the
	// submitting experiment's). The zero value disables tracing for the job.
	Trace trace.Context
}

// Options tunes the scheduler. The zero value gets sane defaults.
type Options struct {
	// MaxInFlightPerInstrument caps jobs dispatched-but-incomplete per
	// instrument: enough to pipeline (the next command is queued on the
	// device when the current one finishes) without deep device queues
	// that defeat global routing. Default 2.
	MaxInFlightPerInstrument int
	// AgingStep is the queue wait that promotes a job one priority class
	// (starvation-free backfill). Default 30 minutes; <0 disables.
	AgingStep sim.Time
	// StealThreshold is the minimum peer backlog worth stealing from.
	// Default 2.
	StealThreshold int
	// RepumpInterval is the background sweep that re-drives queues whose
	// wake-up events were lost to failures. Default 1 minute.
	RepumpInterval sim.Time
	// DefaultEstimate is the assumed action duration for instruments that
	// do not advertise throughput_per_hr. Default 10 minutes.
	DefaultEstimate sim.Time
	// RetryBase is the first retry backoff; each further attempt doubles it
	// (plus up to 50% deterministic jitter off the scheduler's seeded
	// stream). Default 30 seconds.
	RetryBase sim.Time
	// RetryMax caps the exponential backoff. Default 16 minutes.
	RetryMax sim.Time
	// Recover enables the in-flight recovery sweep: each RepumpInterval,
	// jobs dispatched to an instrument that has gone down or a site that
	// has partitioned away from their origin are pulled back into the queue
	// and rerouted (the eventual reply from the dead dispatch, if any, is
	// discarded). Off by default — recovery means a rescued job can execute
	// more than once on the fleet, which callers must opt into.
	Recover bool
}

func (o *Options) defaults() {
	if o.MaxInFlightPerInstrument == 0 {
		o.MaxInFlightPerInstrument = 2
	}
	if o.AgingStep == 0 {
		o.AgingStep = 30 * sim.Minute
	}
	if o.StealThreshold == 0 {
		o.StealThreshold = 2
	}
	if o.RepumpInterval == 0 {
		o.RepumpInterval = sim.Minute
	}
	if o.DefaultEstimate == 0 {
		o.DefaultEstimate = 10 * sim.Minute
	}
	if o.RetryBase == 0 {
		o.RetryBase = 30 * sim.Second
	}
	if o.RetryMax == 0 {
		o.RetryMax = 16 * sim.Minute
	}
}

// DecisionKind classifies one scheduler decision event.
type DecisionKind uint8

// Decision kinds, in lifecycle order.
const (
	DecisionSubmit   DecisionKind = iota // job entered an origin queue
	DecisionDispatch                     // job shipped to an instrument
	DecisionComplete                     // terminal success
	DecisionFail                         // terminal failure
	DecisionRetry                        // failed dispatch consumed retry budget
	DecisionRescue                       // in-flight job pulled back by recovery
	DecisionExpire                       // job outlived Timeout in queue
	DecisionCancel                       // tenant released while job queued
	DecisionSteal                        // job landed at a thief site
)

// String renders the decision kind.
func (k DecisionKind) String() string {
	switch k {
	case DecisionSubmit:
		return "submit"
	case DecisionDispatch:
		return "dispatch"
	case DecisionComplete:
		return "complete"
	case DecisionFail:
		return "fail"
	case DecisionRetry:
		return "retry"
	case DecisionRescue:
		return "rescue"
	case DecisionExpire:
		return "expire"
	case DecisionCancel:
		return "cancel"
	case DecisionSteal:
		return "steal"
	}
	return fmt.Sprintf("decision(%d)", int(k))
}

// Decision is one scheduler decision event, emitted synchronously to the
// Observer at every job lifecycle transition. It is a flat value — the
// health engine's flight recorder copies it into a preallocated ring, so
// emission allocates nothing.
type Decision struct {
	Kind   DecisionKind
	At     sim.Time
	Job    string // Cmd.SampleID: the submitter's stable job identity
	Tenant string
	Origin netsim.SiteID
	Host   netsim.SiteID // dispatch host; "" before the first dispatch
	Inst   string        // dispatched instrument instance; "" before dispatch
	Reason string        // failure cause / rescue reason / steal source
	// Attempt counts prior failed dispatches plus rescues for this job.
	Attempt int
}

// SiteBinding is what the scheduler needs from one federation site: the
// local directory view for routing, the local fleet for state inspection,
// and a credential supplier for dispatch under zero trust.
type SiteBinding struct {
	ID       netsim.SiteID
	Registry *discovery.Registry
	Fleet    *instrument.Fleet
	Token    func() any
}

// queuedJob is a Job waiting at a site queue. It carries a snapshot of its
// tenant's config so stealing can recreate the tenant at the thief site
// with the same weight and class, and a canceled mark so a job caught
// mid-steal when its tenant is released does not resurrect the tenant.
type queuedJob struct {
	job      Job
	cfg      TenantConfig
	cb       func(instrument.Result, error)
	enqueued sim.Time
	canceled bool

	// attempt counts failed dispatches consumed from the MaxRetries budget;
	// reroutes counts recovery-sweep rescues (unbounded — the Timeout is
	// the bound). notBefore holds the job in queue through its backoff.
	attempt   int
	reroutes  int
	notBefore sim.Time
	// epoch invalidates the outstanding dispatch's completion callback when
	// the recovery sweep rescues the job: the callback captures the epoch at
	// dispatch and a stale reply (the RPC of a rescued job eventually timing
	// out or even succeeding) is dropped instead of double-completing.
	epoch uint64
	// inst/host identify the outstanding dispatch for the recovery sweep.
	inst string
	host netsim.SiteID

	// Trace spans live here — already-heap state — so the traced path adds
	// no allocations beyond the queuedJob itself. qspan covers enqueue ->
	// dispatch (or expiry/cancel); dspan covers dispatch -> completion.
	qspan, dspan trace.Span
	qctx, dctx   trace.Context
}

// tenantQ is one tenant's FIFO plus its fair-share virtual time: each
// dispatch advances vtime by 1/weight, so the scheduler serving the
// smallest vtime first realizes weighted round robin (a weight-2 tenant
// advances half as fast and gets twice the dispatches).
type tenantQ struct {
	cfg   TenantConfig
	jobs  []*queuedJob
	vtime float64
	// waitHist is the tenant's labelled queue-wait series,
	// sched.wait_s{site=...,tenant=...}, resolved once at registration so
	// the dispatch path pays no per-event name lookup.
	waitHist *telemetry.Histogram
	// retriesC is sched.retries{site=...,tenant=...}, cached for the same
	// reason: building a canonical Key allocates, and retry storms are hot.
	retriesC *telemetry.Counter
}

// siteSched is the per-site dispatcher: the fair-share queues for work
// submitted (or stolen to) this site.
type siteSched struct {
	bind    SiteBinding
	met     *telemetry.Registry
	tenants map[string]*tenantQ
	// depth is the site's labelled queue-depth gauge, cached like waitHist.
	depth *telemetry.Gauge
}

func (ss *siteSched) queueLen() int {
	n := 0
	for _, t := range ss.tenants {
		n += len(t.jobs)
	}
	return n
}

// maxWeight bounds tenant weights so no share dominates unboundedly.
const maxWeight = 8

// Scheduler is the federation-wide experiment scheduler. One instance
// spans all sites; per-site dispatchers keep submission locality while
// routing and stealing span the fleet.
type Scheduler struct {
	eng     *sim.Engine
	net     *netsim.Network
	fab     *bus.Fabric
	metrics *telemetry.Registry
	rnd     *rng.Stream
	opts    Options

	sites    map[netsim.SiteID]*siteSched
	order    []netsim.SiteID
	inflight map[string]int // dispatched-but-incomplete per instrument instance
	transit  []*queuedJob   // stolen jobs riding the WAN between site queues
	// flights tracks dispatched jobs in dispatch order for the recovery
	// sweep; only populated under Options.Recover.
	flights []*queuedJob

	queued int
	flying int

	pumpQueued bool
	stopTicker func()

	// requeueC caches the sched.requeues{reason=...} counters; the reason
	// vocabulary is tiny, so each canonical Key is built at most once.
	requeueC map[string]*telemetry.Counter

	// Observer, when non-nil, receives a Decision at every job lifecycle
	// transition (submit, dispatch, retry, rescue, terminal outcome). Set it
	// after New and before traffic flows; the nil default costs one pointer
	// test per transition. Observers must only record — mutating scheduler
	// state from the callback is not supported.
	Observer func(Decision)

	// Prof, when non-nil, wraps routing under sched.route and the stealing
	// scan under sched.steal, and samples each dispatch's queue wait as a
	// sched.route exemplar keyed by the job's trace ID. Set it after New,
	// like Observer; the nil default costs one pointer test per hot path.
	Prof *prof.Profiler
}

// observe emits a Decision to the Observer, deriving the job identity and
// routing fields from the queued job's current state.
func (s *Scheduler) observe(kind DecisionKind, qj *queuedJob, reason string) {
	if s.Observer == nil {
		return
	}
	s.Observer(Decision{
		Kind:    kind,
		At:      s.eng.Now(),
		Job:     qj.job.Cmd.SampleID,
		Tenant:  qj.job.Tenant,
		Origin:  qj.job.Origin,
		Host:    qj.host,
		Inst:    qj.inst,
		Reason:  reason,
		Attempt: qj.attempt + qj.reroutes,
	})
}

// New builds a scheduler on the engine, network, and bus fabric, reporting
// into the given telemetry registry. Gauges are registered eagerly so the
// metric surface is visible before traffic flows. The stream feeds retry
// backoff jitter only — a run with no failures draws nothing from it.
func New(eng *sim.Engine, net *netsim.Network, fab *bus.Fabric,
	metrics *telemetry.Registry, rnd *rng.Stream, opts Options) *Scheduler {

	opts.defaults()
	if rnd == nil {
		rnd = rng.New(0)
	}
	s := &Scheduler{
		eng:      eng,
		net:      net,
		fab:      fab,
		metrics:  metrics,
		rnd:      rnd,
		opts:     opts,
		sites:    make(map[netsim.SiteID]*siteSched),
		inflight: make(map[string]int),
	}
	metrics.Gauge("sched.queue_depth")
	metrics.Gauge("sched.inflight")
	metrics.Gauge("sched.utilization")
	metrics.Histogram("sched.wait_s")
	metrics.Counter("sched.steals")
	return s
}

// AddSite registers a federation site with the scheduler.
func (s *Scheduler) AddSite(b SiteBinding) {
	s.sites[b.ID] = &siteSched{
		bind:    b,
		met:     s.metrics,
		tenants: make(map[string]*tenantQ),
		depth:   s.metrics.Gauge(telemetry.Key("sched.queue_depth", "site", string(b.ID))),
	}
	s.order = append(s.order, b.ID)
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
}

// Start launches the background sweep that expires overdue queued jobs
// and re-drives queues whose wake-up events were lost. Idempotent; Submit
// starts it lazily, so a federation that never schedules pays for no
// ticker events.
func (s *Scheduler) Start() {
	if s.stopTicker != nil || s.opts.RepumpInterval <= 0 {
		return
	}
	s.stopTicker = s.eng.Ticker(s.opts.RepumpInterval, func(int) {
		if s.opts.Recover {
			s.recoverInFlight()
		}
		if s.queued == 0 {
			return
		}
		s.expireQueued()
		s.pumpAll()
	})
}

// Stop cancels the background sweep so the event queue can drain.
func (s *Scheduler) Stop() {
	if s.stopTicker != nil {
		s.stopTicker()
		s.stopTicker = nil
	}
}

// Tenant registers (or updates) a fair-share tenant at a site. Submitting
// under an unregistered tenant ID auto-registers it with defaults.
func (s *Scheduler) Tenant(site netsim.SiteID, cfg TenantConfig) {
	ss := s.sites[site]
	if ss == nil {
		return
	}
	ss.tenant(cfg)
}

func (ss *siteSched) tenant(cfg TenantConfig) *tenantQ {
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	if cfg.Weight < 0.05 {
		cfg.Weight = 0.05
	}
	if cfg.Weight > maxWeight {
		cfg.Weight = maxWeight
	}
	t, ok := ss.tenants[cfg.ID]
	if !ok {
		t = &tenantQ{cfg: cfg}
		if ss.met != nil {
			t.waitHist = ss.met.Histogram(telemetry.Key("sched.wait_s",
				"site", string(ss.bind.ID), "tenant", cfg.ID))
			t.retriesC = ss.met.Counter(telemetry.Key("sched.retries",
				"site", string(ss.bind.ID), "tenant", cfg.ID))
		}
		ss.tenants[cfg.ID] = t
	} else {
		t.cfg = cfg
	}
	return t
}

// QueueDepth reports jobs waiting across all site queues.
func (s *Scheduler) QueueDepth() int { return s.queued }

// InFlight reports jobs dispatched but not yet completed.
func (s *Scheduler) InFlight() int { return s.flying }

// Capacity reports the fleet-wide dispatch capacity: registered
// instruments times the per-instrument in-flight cap.
func (s *Scheduler) Capacity() int {
	n := 0
	for _, id := range s.order {
		n += s.sites[id].bind.Fleet.Size()
	}
	return n * s.opts.MaxInFlightPerInstrument
}

// Submit enqueues a job at its origin site's fair-share queue; cb runs
// exactly once with the instrument result or a terminal error. Dispatch is
// asynchronous: drive the engine to make progress.
func (s *Scheduler) Submit(j Job, cb func(instrument.Result, error)) {
	ss := s.sites[j.Origin]
	if ss == nil {
		cb(instrument.Result{}, fmt.Errorf("%w: %q", ErrUnknownSite, j.Origin))
		return
	}
	if j.Tenant == "" {
		cb(instrument.Result{}, ErrUnknownTenant)
		return
	}
	if j.Timeout <= 0 {
		j.Timeout = 48 * sim.Hour
	}
	s.Start()
	t, ok := ss.tenants[j.Tenant]
	if !ok {
		t = ss.tenant(TenantConfig{ID: j.Tenant})
	}
	ss.syncVtime(t)
	qj := &queuedJob{job: j, cfg: t.cfg, cb: cb, enqueued: s.eng.Now()}
	if j.Trace.Enabled() {
		qj.qspan, qj.qctx = j.Trace.Start(qj.enqueued, string(j.Origin), trace.KindSchedQueue, j.Kind)
	}
	t.jobs = append(t.jobs, qj)
	s.queued++
	s.metrics.Counter("sched.submitted").Inc()
	s.observe(DecisionSubmit, qj, "")
	s.gauges()
	s.schedulePump()
}

// schedulePump coalesces pump requests into one zero-delay event so
// submissions from completion callbacks never recurse into dispatch.
func (s *Scheduler) schedulePump() {
	if s.pumpQueued {
		return
	}
	s.pumpQueued = true
	s.eng.Schedule(0, func() {
		s.pumpQueued = false
		s.pumpAll()
	})
}

// pumpAll drives every site dispatcher in deterministic order.
func (s *Scheduler) pumpAll() {
	for _, id := range s.order {
		s.pumpSite(s.sites[id])
	}
	s.gauges()
}

// pumpSite dispatches as much of the site's queue as routing allows, then
// considers stealing if the queue ran dry while local capacity idles.
//
// Service order is priority then weighted fair share: active tenants are
// grouped by effective class (base class plus aging) and the classes are
// tried from highest to lowest; within a class, tenants go in virtual-time
// order (furthest behind their share first), and each dispatch advances
// the winner's vtime by 1/weight — the deficit-round-robin discipline
// realized as strides, which stays exact when probes fail. An unroutable
// head job drops its tenant for the rest of the pump without advancing
// vtime, and a lower class backfills capacity a blocked higher class
// cannot use — a blocked kind never idles the fleet, and the blocked
// tenant keeps its place in the fair order (plus aging) for next time.
//
// The order is built once per pump, not per dispatch: virtual time is
// frozen inside the pump (so effective classes cannot change) and
// dispatches only consume capacity (so a blocked head stays blocked);
// only the winner's position moves, by one sorted reinsertion.
func (s *Scheduler) pumpSite(ss *siteSched) {
	ids := make([]string, 0, len(ss.tenants))
	for id, t := range ss.tenants {
		if len(t.jobs) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	byClass := make(map[int][]*tenantQ)
	var classes []int
	for _, id := range ids {
		t := ss.tenants[id]
		c := s.effClass(t)
		if _, ok := byClass[c]; !ok {
			classes = append(classes, c)
		}
		byClass[c] = append(byClass[c], t)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(classes)))
	before := func(a, b *tenantQ) bool {
		if a.vtime != b.vtime {
			return a.vtime < b.vtime
		}
		return a.cfg.ID < b.cfg.ID
	}
	for _, cl := range classes {
		group := byClass[cl]
		sort.SliceStable(group, func(i, j int) bool { return before(group[i], group[j]) })
		for len(group) > 0 {
			t := group[0]
			group = group[1:]
			if !s.tryDispatch(ss, t) {
				continue // blocked for the rest of this pump
			}
			t.vtime += 1 / t.cfg.Weight
			if len(t.jobs) == 0 {
				continue
			}
			i := sort.Search(len(group), func(j int) bool { return before(t, group[j]) })
			group = append(group[:i], append([]*tenantQ{t}, group[i:]...)...)
		}
	}
	if ss.queueLen() == 0 {
		s.maybeSteal(ss)
	}
}

// effClass is a tenant's effective priority class: its base class promoted
// one step per AgingStep its head job has waited, capped one step above
// ClassUrgent so even background work eventually outranks fresh urgent
// traffic (the starvation-free guarantee).
func (s *Scheduler) effClass(t *tenantQ) int {
	c := int(t.cfg.Class)
	if s.opts.AgingStep > 0 && len(t.jobs) > 0 {
		c += int((s.eng.Now() - t.jobs[0].enqueued) / s.opts.AgingStep)
	}
	if c > int(ClassUrgent)+1 {
		c = int(ClassUrgent) + 1
	}
	return c
}

// syncVtime pulls a tenant re-entering service up to the active minimum so
// a long-idle (or brand-new) tenant cannot flood the fleet catching up on
// share it never queued for.
func (ss *siteSched) syncVtime(t *tenantQ) {
	if len(t.jobs) > 0 {
		return
	}
	floor, ok := 0.0, false
	for _, o := range ss.tenants {
		if o != t && len(o.jobs) > 0 && (!ok || o.vtime < floor) {
			floor, ok = o.vtime, true
		}
	}
	if ok && t.vtime < floor {
		t.vtime = floor
	}
}

// expireQueued fails jobs that outlived their Timeout while still queued,
// honoring Submit's promise of a terminal outcome even when every
// candidate instrument stays down or unreachable. Tenants are scanned in
// sorted order so expiry callbacks fire deterministically, and removal
// happens before any callback runs so callbacks may safely resubmit.
func (s *Scheduler) expireQueued() {
	now := s.eng.Now()
	var expired []*queuedJob
	for _, id := range s.order {
		ss := s.sites[id]
		ids := make([]string, 0, len(ss.tenants))
		for tid := range ss.tenants {
			ids = append(ids, tid)
		}
		sort.Strings(ids)
		for _, tid := range ids {
			t := ss.tenants[tid]
			keep := t.jobs[:0]
			for _, qj := range t.jobs {
				if now-qj.enqueued >= qj.job.Timeout {
					s.queued--
					expired = append(expired, qj)
					continue
				}
				keep = append(keep, qj)
			}
			t.jobs = keep
		}
	}
	for _, qj := range expired {
		s.metrics.Counter("sched.expired").Inc()
		qj.qspan.SetStr("outcome", "expired")
		qj.qctx.Finish(&qj.qspan, now)
		s.observe(DecisionExpire, qj, "timeout")
		qj.cb(instrument.Result{}, fmt.Errorf("%w: kind %s queued %v",
			ErrExpired, qj.job.Kind, now-qj.enqueued))
	}
	if len(expired) > 0 {
		s.gauges()
	}
}

// ReleaseTenant drops a finished tenant's fair-share queues at every site
// (stealing may have spread them). Jobs still queued are failed with
// ErrCanceled — after all removals, so callbacks may safely submit — and
// in-flight dispatches are unaffected. Without release, a long-lived
// federation would accumulate one queue per campaign ever run, and a
// failed campaign's orphans would squat in the fair-share order until
// their timeouts.
func (s *Scheduler) ReleaseTenant(id string) {
	var canceled []*queuedJob
	for _, sid := range s.order {
		ss := s.sites[sid]
		if t := ss.tenants[id]; t != nil {
			canceled = append(canceled, t.jobs...)
			s.queued -= len(t.jobs)
			delete(ss.tenants, id)
		}
	}
	// Jobs mid-steal live in neither queue; mark them so the arrival
	// closure drops them instead of resurrecting the tenant.
	for _, qj := range s.transit {
		if qj.job.Tenant == id && !qj.canceled {
			qj.canceled = true
			canceled = append(canceled, qj)
		}
	}
	for _, qj := range canceled {
		s.metrics.Counter("sched.canceled").Inc()
		qj.qspan.SetStr("outcome", "canceled")
		qj.qctx.Finish(&qj.qspan, s.eng.Now())
		s.observe(DecisionCancel, qj, "released")
		qj.cb(instrument.Result{}, fmt.Errorf("%w: tenant %s released", ErrCanceled, id))
	}
	if len(canceled) > 0 {
		s.gauges()
	}
}

// unTransit removes an arrived steal batch from the in-transit list.
func (s *Scheduler) unTransit(batch []*queuedJob) {
	arrived := make(map[*queuedJob]bool, len(batch))
	for _, qj := range batch {
		arrived[qj] = true
	}
	keep := s.transit[:0]
	for _, qj := range s.transit {
		if !arrived[qj] {
			keep = append(keep, qj)
		}
	}
	s.transit = keep
}

// tryDispatch routes and dispatches the tenant's head job, reporting
// whether it went out. A job already past its Timeout fails fast with
// ErrExpired instead of being shipped to an instrument with a dead RPC
// budget; a job still inside its retry backoff blocks its tenant for this
// pump.
func (s *Scheduler) tryDispatch(ss *siteSched, t *tenantQ) bool {
	qj := t.jobs[0]
	now := s.eng.Now()
	if qj.notBefore > now {
		return false
	}
	if now-qj.enqueued >= qj.job.Timeout {
		t.jobs = t.jobs[1:]
		s.queued--
		s.failExpired(qj, now)
		return true
	}
	rec, ok := s.route(ss, qj.job)
	if !ok {
		return false
	}
	t.jobs = t.jobs[1:]
	s.queued--
	s.dispatch(ss, t, qj, rec)
	return true
}

// failExpired delivers the terminal ErrExpired outcome for a job that
// outlived its Timeout in queue. The callback runs on a fresh event so
// resubmissions never recurse into the pump that found the expiry.
func (s *Scheduler) failExpired(qj *queuedJob, now sim.Time) {
	s.metrics.Counter("sched.expired").Inc()
	qj.qspan.SetStr("outcome", "expired")
	qj.qctx.Finish(&qj.qspan, now)
	s.observe(DecisionExpire, qj, "timeout")
	queued := now - qj.enqueued
	kind := qj.job.Kind
	s.eng.Schedule(0, func() {
		qj.cb(instrument.Result{}, fmt.Errorf("%w: kind %s queued %v",
			ErrExpired, kind, queued))
	})
}

// estimate is the expected action duration on the instrument behind rec,
// derived from its advertised throughput.
func (s *Scheduler) estimate(rec *discovery.Record) sim.Time {
	if tph := rec.Capabilities["throughput_per_hr"]; tph > 0 {
		return sim.Time(float64(sim.Hour) / tph)
	}
	return s.opts.DefaultEstimate
}

// rtt is the round-trip WAN latency between two sites (LAN loopback for
// the same site).
func (s *Scheduler) rtt(a, b netsim.SiteID) sim.Time {
	if a == b {
		if site := s.net.Site(a); site != nil {
			return 2 * site.LANLatency
		}
		return 0
	}
	if l := s.net.LinkBetween(a, b); l != nil {
		return 2 * l.Latency
	}
	return 0
}

// instrumentFor resolves the live instrument behind a directory record
// when its owning site is bound to this scheduler (nil for foreign sites —
// routing then relies on in-flight accounting alone).
func (s *Scheduler) instrumentFor(rec *discovery.Record) *instrument.Instrument {
	host := s.sites[rec.Addr.Site]
	if host == nil {
		return nil
	}
	id := rec.Instance
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[i+1:]
	}
	in, _ := host.bind.Fleet.Get(id)
	return in
}

// route scores every compatible instrument in the federation and returns
// the cheapest: expected wait from scheduler-tracked in-flight load, a
// penalty for instruments mid-calibration, and the WAN round trip from the
// origin. Down instruments and saturated instruments are skipped; ties
// break on instance name for determinism.
//
// This runs on every dispatch attempt of every pump, so it iterates the
// directory through the registry's allocation-free BrowseFunc index
// instead of cloning the record set; the returned record shares the
// registry's capability maps and is read-only by contract.
func (s *Scheduler) route(ss *siteSched, j Job) (discovery.Record, bool) {
	r := s.Prof.Enter(prof.SiteSchedRoute)
	defer r.End()
	var best *discovery.Record
	bestScore := sim.Time(0)
	ss.bind.Registry.BrowseFunc(j.Kind, func(rec *discovery.Record) bool {
		for cap, floor := range j.MinCaps {
			if rec.Capabilities[cap] < floor {
				return true
			}
		}
		if s.inflight[rec.Instance] >= s.opts.MaxInFlightPerInstrument {
			return true
		}
		if !s.net.Reachable(ss.bind.ID, rec.Addr.Site, "bus") {
			return true
		}
		est := s.estimate(rec)
		score := sim.Time(s.inflight[rec.Instance])*est + s.rtt(ss.bind.ID, rec.Addr.Site)
		if in := s.instrumentFor(rec); in != nil {
			switch in.State() {
			case instrument.StateDown:
				return true
			case instrument.StateCalibrating:
				score += 30 * sim.Minute
			}
		}
		if best == nil || score < bestScore || (score == bestScore && rec.Instance < best.Instance) {
			best, bestScore = rec, score
		}
		return true
	})
	if best == nil {
		return discovery.Record{}, false
	}
	return *best, true
}

// dispatch ships the job to the chosen instrument over the bus and wires
// the completion path: accounting, metrics, the submitter's callback, and
// a pump of the instrument's host site (which observed capacity free up)
// then the origin site.
func (s *Scheduler) dispatch(ss *siteSched, t *tenantQ, qj *queuedJob, rec discovery.Record) {
	inst := rec.Instance
	s.inflight[inst]++
	s.flying++
	qj.inst = inst
	qj.host = rec.Addr.Site
	epoch := qj.epoch
	if s.opts.Recover {
		s.flights = append(s.flights, qj)
	}
	wait := s.eng.Now() - qj.enqueued
	s.Prof.Sample(prof.SiteSchedRoute, wait.Std(), qj.job.Trace.TraceID())
	s.metrics.Histogram("sched.wait_s").Observe(wait.Seconds())
	if t.waitHist != nil {
		t.waitHist.Observe(wait.Seconds())
	}
	s.metrics.Counter("sched.dispatched").Inc()
	if rec.Addr.Site != ss.bind.ID {
		s.metrics.Counter("sched.remote_dispatches").Inc()
	}
	s.observe(DecisionDispatch, qj, "")
	s.gauges()

	origin := ss.bind.ID
	host := rec.Addr.Site
	if qj.job.Trace.Enabled() {
		now := s.eng.Now()
		// The queue span ends where the dispatch span begins; both are
		// siblings under the submitting experiment, so queue wait and
		// dispatch latency attribute to scheduling separately.
		qj.qspan.SetAttr("wait_s", wait.Seconds())
		qj.qspan.SetStr("instance", inst)
		qj.qctx.Finish(&qj.qspan, now)
		qj.job.Trace.Point(now, string(origin), trace.KindSchedRoute, inst)
		qj.dspan, qj.dctx = qj.job.Trace.Start(now, string(host), trace.KindSchedRun, inst)
		if host != origin {
			qj.dspan.SetStr("origin", string(origin))
		}
		qj.job.Cmd.Trace = qj.dctx
	}

	var token any
	if ss.bind.Token != nil {
		token = ss.bind.Token()
	}
	// Timeout covers queueing plus the action: time already spent waiting
	// in the scheduler queue comes out of the RPC budget.
	remaining := qj.job.Timeout - (s.eng.Now() - qj.enqueued)
	if remaining < sim.Second {
		remaining = sim.Second
	}
	s.fab.Call(bus.CallOpts{
		From:    bus.Address{Site: origin, Name: "sched"},
		To:      rec.Addr,
		Method:  "run",
		Payload: qj.job.Cmd,
		Token:   token,
		Size:    512,
		Timeout: remaining,
		Trace:   qj.dctx,
	}, func(result any, err error) {
		if qj.epoch != epoch {
			// The recovery sweep rescued this job while the RPC was
			// outstanding; the job's outcome now belongs to a later
			// dispatch. Accounting was settled at rescue time.
			s.metrics.Counter("sched.stale_replies").Inc()
			return
		}
		s.endFlight(qj)
		qj.dctx.Finish(&qj.dspan, s.eng.Now())
		if err != nil && qj.attempt < qj.job.MaxRetries {
			s.metrics.Counter("sched.failures").Inc()
			s.retry(qj, err)
		} else if err != nil {
			s.metrics.Counter("sched.failures").Inc()
			s.observe(DecisionFail, qj, err.Error())
			qj.cb(instrument.Result{}, err)
		} else if res, ok := result.(instrument.Result); ok {
			s.metrics.Counter("sched.completed").Inc()
			s.observe(DecisionComplete, qj, "")
			qj.cb(res, nil)
		} else {
			s.metrics.Counter("sched.failures").Inc()
			s.observe(DecisionFail, qj, "unexpected reply type")
			qj.cb(instrument.Result{}, fmt.Errorf("sched: unexpected reply type %T", result))
		}
		// The host freed capacity and gets first claim on it; the origin
		// follows (it may have backlog for other instruments).
		if hs := s.sites[host]; hs != nil {
			s.pumpSite(hs)
		}
		if host != origin {
			s.pumpSite(ss)
		}
		s.gauges()
	})
}

// endFlight settles in-flight accounting for a dispatch reaching its
// outcome (completion, failure, or rescue).
func (s *Scheduler) endFlight(qj *queuedJob) {
	s.inflight[qj.inst]--
	s.flying--
	if s.opts.Recover {
		for i, o := range s.flights {
			if o == qj {
				s.flights = append(s.flights[:i], s.flights[i+1:]...)
				break
			}
		}
	}
}

// retry consumes one unit of the job's MaxRetries budget and re-queues it
// with exponential backoff + jitter. The backoff draw comes from the
// scheduler's seeded stream, so retry timing is deterministic — and a run
// with no failures never touches the stream.
func (s *Scheduler) retry(qj *queuedJob, cause error) {
	qj.attempt++
	if ss := s.sites[qj.job.Origin]; ss != nil {
		if t := ss.tenants[qj.job.Tenant]; t != nil && t.retriesC != nil {
			t.retriesC.Inc()
		} else {
			s.metrics.Counter(telemetry.Key("sched.retries",
				"site", string(qj.job.Origin), "tenant", qj.job.Tenant)).Inc()
		}
	} else {
		s.metrics.Counter(telemetry.Key("sched.retries",
			"site", string(qj.job.Origin), "tenant", qj.job.Tenant)).Inc()
	}
	s.observe(DecisionRetry, qj, cause.Error())
	backoff := s.opts.RetryBase << uint(qj.attempt-1)
	if backoff > s.opts.RetryMax || backoff <= 0 {
		backoff = s.opts.RetryMax
	}
	backoff = sim.Time(float64(backoff) * (1 + 0.5*s.rnd.Float64()))
	s.requeue(qj, "failure", trace.KindSchedRetry, backoff)
}

// recoverInFlight rescues dispatched jobs whose host instrument is down or
// whose host site is no longer reachable from the job's origin: each is
// pulled back into its origin queue (the outstanding RPC's eventual reply
// is invalidated via the epoch) and rerouted on the next pump — which
// excludes down and unreachable hosts. Rescues do not consume the retry
// budget; the job's Timeout bounds how long rerouting can go on.
func (s *Scheduler) recoverInFlight() {
	if len(s.flights) == 0 {
		return
	}
	var rescued []*queuedJob
	keep := s.flights[:0]
	for _, qj := range s.flights {
		if s.flightLost(qj) {
			rescued = append(rescued, qj)
			continue
		}
		keep = append(keep, qj)
	}
	s.flights = keep
	for _, qj := range rescued {
		qj.epoch++
		s.inflight[qj.inst]--
		s.flying--
		qj.dspan.SetStr("outcome", "rescued")
		qj.dctx.Finish(&qj.dspan, s.eng.Now())
		qj.reroutes++
		reason := "site-down"
		if !s.net.Reachable(qj.job.Origin, qj.host, "bus") {
			reason = "unreachable"
		}
		s.observe(DecisionRescue, qj, reason)
		s.requeue(qj, reason, trace.KindSchedRequeue, 0)
	}
	if len(rescued) > 0 {
		s.pumpAll()
	}
}

// flightLost reports whether an outstanding dispatch can no longer
// complete usefully: its instrument is down, or its host site has
// partitioned away from the job's origin.
func (s *Scheduler) flightLost(qj *queuedJob) bool {
	if !s.net.Reachable(qj.job.Origin, qj.host, "bus") {
		return true
	}
	host := s.sites[qj.host]
	if host == nil {
		return false
	}
	id := qj.inst
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[i+1:]
	}
	in, _ := host.bind.Fleet.Get(id)
	return in != nil && in.State() == instrument.StateDown
}

// requeueCounter resolves sched.requeues{reason=...} through a small
// per-reason cache so steady-state requeues never rebuild the labeled key.
func (s *Scheduler) requeueCounter(reason string) *telemetry.Counter {
	if c, ok := s.requeueC[reason]; ok {
		return c
	}
	if s.requeueC == nil {
		s.requeueC = make(map[string]*telemetry.Counter)
	}
	c := s.metrics.Counter(telemetry.Key("sched.requeues", "reason", reason))
	s.requeueC[reason] = c
	return c
}

// requeue returns a job to its origin site's tenant queue after a failed
// dispatch or a rescue. If the tenant has been released meanwhile, the job
// terminates with ErrCanceled instead of resurrecting the tenant.
func (s *Scheduler) requeue(qj *queuedJob, reason, kind string, backoff sim.Time) {
	now := s.eng.Now()
	s.requeueCounter(reason).Inc()
	ss := s.sites[qj.job.Origin]
	var t *tenantQ
	if ss != nil {
		t = ss.tenants[qj.job.Tenant]
	}
	if t == nil {
		s.metrics.Counter("sched.canceled").Inc()
		s.observe(DecisionCancel, qj, "released")
		s.eng.Schedule(0, func() {
			qj.cb(instrument.Result{}, fmt.Errorf("%w: tenant %s released",
				ErrCanceled, qj.job.Tenant))
		})
		return
	}
	qj.notBefore = now + backoff
	if qj.job.Trace.Enabled() {
		// A fresh queue-wait span, finished by the next dispatch (or
		// expiry), with the recovery kind marking why the job is back.
		qj.qspan, qj.qctx = qj.job.Trace.Start(now, string(qj.job.Origin), kind, qj.job.Kind)
		qj.qspan.SetStr("reason", reason)
		qj.qspan.SetAttr("attempt", float64(qj.attempt+qj.reroutes))
	}
	t.jobs = append(t.jobs, qj)
	s.queued++
	if backoff > 0 {
		s.eng.Schedule(backoff, func() { s.schedulePump() })
	} else {
		s.schedulePump()
	}
}

// localSpare reports whether the site hosts an instrument that could
// accept another dispatch right now.
func (s *Scheduler) localSpare(ss *siteSched) bool {
	for _, id := range ss.bind.Fleet.IDs() {
		in, _ := ss.bind.Fleet.Get(id)
		if in == nil || in.State() == instrument.StateDown {
			continue
		}
		if s.inflight[string(ss.bind.ID)+"/"+id] < s.opts.MaxInFlightPerInstrument {
			return true
		}
	}
	return false
}

// maybeSteal runs when a site's queue is dry: if the site still has spare
// instrument capacity, it takes half the deepest peer backlog (newest jobs
// first, only kinds routable from here), paying one WAN round trip before
// the work lands in its own queues.
func (s *Scheduler) maybeSteal(ss *siteSched) {
	r := s.Prof.Enter(prof.SiteSchedSteal)
	defer r.End()
	if s.opts.StealThreshold <= 0 || !s.localSpare(ss) {
		return
	}
	var victim *siteSched
	deepest := s.opts.StealThreshold - 1
	for _, id := range s.order {
		o := s.sites[id]
		if o == ss {
			continue
		}
		if q := o.queueLen(); q > deepest {
			deepest, victim = q, o
		}
	}
	if victim == nil {
		return
	}
	want := (victim.queueLen() + 1) / 2
	stolen := s.stealFrom(victim, ss, want)
	if len(stolen) == 0 {
		return
	}
	s.metrics.Counter("sched.steals").Add(int64(len(stolen)))
	s.transit = append(s.transit, stolen...)
	delay := s.rtt(victim.bind.ID, ss.bind.ID)
	stealStart := s.eng.Now()
	victimID := victim.bind.ID
	s.eng.Schedule(delay, func() {
		s.unTransit(stolen)
		for _, qj := range stolen {
			if qj.canceled {
				continue // tenant released while the batch was in flight
			}
			if qj.job.Trace.Enabled() {
				sp, cc := qj.job.Trace.Start(stealStart, string(ss.bind.ID),
					trace.KindSchedSteal, qj.job.Kind)
				sp.SetStr("from", string(victimID))
				cc.Finish(&sp, s.eng.Now())
			}
			qj.job.Origin = ss.bind.ID
			s.observe(DecisionSteal, qj, string(victimID))
			t, ok := ss.tenants[qj.job.Tenant]
			if !ok {
				t = ss.tenant(qj.cfg)
			}
			ss.syncVtime(t)
			t.jobs = append(t.jobs, qj)
			s.queued++
		}
		s.pumpSite(ss)
		s.gauges()
	})
}

// stealFrom removes up to want jobs from the victim's queue tails,
// round-robin across its tenants, skipping kinds the thief cannot see.
func (s *Scheduler) stealFrom(victim, thief *siteSched, want int) []*queuedJob {
	var ids []string
	for id, t := range victim.tenants {
		if len(t.jobs) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	var out []*queuedJob
	for len(out) < want {
		took := false
		for _, id := range ids {
			t := victim.tenants[id]
			if len(t.jobs) == 0 || len(out) >= want {
				continue
			}
			qj := t.jobs[len(t.jobs)-1]
			if !thief.bind.Registry.HasType(qj.job.Kind) {
				continue
			}
			t.jobs = t.jobs[:len(t.jobs)-1]
			s.queued--
			out = append(out, qj)
			took = true
		}
		if !took {
			break
		}
	}
	return out
}

// gauges refreshes the point-in-time scheduler metrics, including each
// site's labelled queue depth (pointers cached at AddSite).
func (s *Scheduler) gauges() {
	s.metrics.Gauge("sched.queue_depth").Set(float64(s.queued))
	s.metrics.Gauge("sched.inflight").Set(float64(s.flying))
	if c := s.Capacity(); c > 0 {
		s.metrics.Gauge("sched.utilization").Set(float64(s.flying) / float64(c))
	}
	for _, id := range s.order {
		ss := s.sites[id]
		ss.depth.Set(float64(ss.queueLen()))
	}
}
