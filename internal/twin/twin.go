// Package twin provides the physics-aware digital twins the paper places at
// the heart of verification (M3, M8): ground-truth response-surface models
// of the synthesis and characterization processes AISLE experiments target,
// plus a physics constraint verifier that rejects infeasible commands before
// they reach an instrument.
//
// The models are synthetic but structured like their real counterparts:
// smooth multi-modal response surfaces with interacting parameters,
// heteroscedastic measurement noise, and hard feasibility boundaries. What
// the reproduction needs from them is not quantitative chemistry but the
// properties that drive the paper's claims — a global optimum that is hard
// to find by grid search, local optima that trap greedy methods, and
// constraint surfaces an unverified planner will occasionally violate.
package twin

import (
	"fmt"
	"math"
	"sort"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
)

// Model is a ground-truth process model.
type Model interface {
	// Name identifies the model ("perovskite", "quantum-dot", ...).
	Name() string
	// Space describes the model's input parameters.
	Space() param.Space
	// Eval returns the true (noise-free) outputs for a parameter point.
	Eval(p param.Point) map[string]float64
	// Objective names the output that campaigns maximize.
	Objective() string
}

// ---------------------------------------------------------------------------
// Perovskite nanocrystal synthesis (fluidic SDL domain, paper ref [24]).

// Perovskite models CsPb(Br/I)3 nanocrystal synthesis in a flow reactor.
// Inputs: temperature (°C), halide ratio Br/(Br+I), residence time (s), and
// ligand concentration (mM). Primary output "plqy" (photoluminescence
// quantum yield, 0..1) peaks in a narrow ridge; "emission_nm" tracks the
// halide ratio (the composition-tunable bandgap).
type Perovskite struct{}

// Name implements Model.
func (Perovskite) Name() string { return "perovskite" }

// Objective implements Model.
func (Perovskite) Objective() string { return "plqy" }

// Space implements Model.
func (Perovskite) Space() param.Space {
	return param.Space{
		{Name: "temperature", Lo: 60, Hi: 220, Unit: "C"},
		{Name: "halide_ratio", Lo: 0, Hi: 1},
		{Name: "residence_s", Lo: 5, Hi: 300, Unit: "s"},
		{Name: "ligand_mM", Lo: 1, Hi: 50, Unit: "mM"},
	}
}

// Eval implements Model.
func (Perovskite) Eval(p param.Point) map[string]float64 {
	t := p["temperature"]
	x := p["halide_ratio"]
	res := p["residence_s"]
	lig := p["ligand_mM"]

	// Optimal ridge: temperature optimum shifts with halide ratio.
	tOpt := 120 + 60*x
	tTerm := math.Exp(-math.Pow((t-tOpt)/28, 2))
	// Residence time: log-optimal around 60s, over-growth penalty beyond.
	rTerm := math.Exp(-math.Pow(math.Log(res/60)/0.9, 2))
	// Ligand: saturating benefit with a mild excess penalty.
	lTerm := (lig / (lig + 6)) * math.Exp(-lig/120)
	// Secondary local optimum at low temperature to trap greedy search.
	trap := 0.35 * math.Exp(-math.Pow((t-75)/12, 2)) * math.Exp(-math.Pow((x-0.2)/0.15, 2))

	plqy := 0.92*tTerm*rTerm*lTerm + trap*rTerm*lTerm
	if plqy > 1 {
		plqy = 1
	}

	// Emission: 520nm (pure Br) to 690nm (pure I), slight growth red-shift.
	emission := 690 - 170*x + 8*math.Log(res/60+1)

	// Polydispersity: worsens away from the ridge.
	pdi := 0.05 + 0.3*(1-tTerm*rTerm)

	return map[string]float64{"plqy": plqy, "emission_nm": emission, "polydispersity": pdi}
}

// ---------------------------------------------------------------------------
// Doped quantum dots ("Smart Dope", §3.3: ~10^13 conditions).

// QuantumDot models Mn/Yb co-doped perovskite quantum dot synthesis with a
// fully discrete lattice whose cardinality is ~1.1e13, matching the paper's
// Smart Dope claim. Objective "plqy".
type QuantumDot struct{}

// Name implements Model.
func (QuantumDot) Name() string { return "quantum-dot" }

// Objective implements Model.
func (QuantumDot) Objective() string { return "plqy" }

// Space implements Model. Cardinality: 201*181*61*121*41*61*56 ≈ 1.01e13.
func (QuantumDot) Space() param.Space {
	return param.Space{
		{Name: "dopant_pct", Lo: 0, Hi: 10, Step: 0.05, Unit: "%"},        // 201
		{Name: "temperature", Lo: 100, Hi: 280, Step: 1, Unit: "C"},       // 181
		{Name: "shell_nm", Lo: 0, Hi: 3, Step: 0.05, Unit: "nm"},          // 61
		{Name: "reaction_min", Lo: 1, Hi: 61, Step: 0.5, Unit: "min"},     // 121
		{Name: "precursor_ratio", Lo: 0.5, Hi: 2.5, Step: 0.05},           // 41
		{Name: "ligand_mM", Lo: 0, Hi: 30, Step: 0.5, Unit: "mM"},         // 61
		{Name: "injection_rate", Lo: 0.5, Hi: 6, Step: 0.1, Unit: "mL/m"}, // 56
	}
}

// Eval implements Model.
func (QuantumDot) Eval(p param.Point) map[string]float64 {
	d := p["dopant_pct"]
	t := p["temperature"]
	sh := p["shell_nm"]
	rm := p["reaction_min"]
	pr := p["precursor_ratio"]
	lig := p["ligand_mM"]
	inj := p["injection_rate"]

	dTerm := math.Exp(-math.Pow((d-2.5)/1.4, 2))
	tTerm := math.Exp(-math.Pow((t-(190+8*d))/30, 2))
	shTerm := 0.4 + 0.6*math.Exp(-math.Pow((sh-1.4)/0.7, 2))
	rmTerm := math.Exp(-math.Pow(math.Log(rm/18)/1.1, 2))
	prTerm := math.Exp(-math.Pow((pr-1.35)/0.5, 2))
	ligTerm := math.Exp(-math.Pow((lig-12)/14, 2))
	injTerm := math.Exp(-math.Pow((inj-2.2)/1.5, 2))

	// The raw 7-term product is a needle in a haystack; real PLQY surfaces
	// fall off from the optimum with long, learnable shoulders. The
	// sub-linear power keeps the optimum at ~0.97 while giving distant
	// regions gradient signal.
	product := dTerm * tTerm * shTerm * rmTerm * prTerm * ligTerm * injTerm
	plqy := 0.97 * math.Pow(product, 0.45)
	lifetime := 20 + 300*dTerm*shTerm
	return map[string]float64{"plqy": plqy, "lifetime_ns": lifetime}
}

// ---------------------------------------------------------------------------
// Bulk metallic glass / alloy hardness (ref [22] domain).

// Alloy models a ternary alloy annealing study: two independent composition
// fractions (the third is 1-a-b) plus anneal temperature and time. Objective
// "hardness" (GPa).
type Alloy struct{}

// Name implements Model.
func (Alloy) Name() string { return "alloy" }

// Objective implements Model.
func (Alloy) Objective() string { return "hardness" }

// Space implements Model.
func (Alloy) Space() param.Space {
	return param.Space{
		{Name: "frac_a", Lo: 0, Hi: 0.8},
		{Name: "frac_b", Lo: 0, Hi: 0.8},
		{Name: "anneal_C", Lo: 200, Hi: 700, Unit: "C"},
		{Name: "anneal_min", Lo: 10, Hi: 600, Unit: "min"},
	}
}

// Eval implements Model.
func (Alloy) Eval(p param.Point) map[string]float64 {
	a := p["frac_a"]
	b := p["frac_b"]
	c := 1 - a - b
	t := p["anneal_C"]
	dur := p["anneal_min"]
	if c < 0 {
		// Infeasible composition: the verifier should catch this; the model
		// returns degenerate output rather than panicking.
		return map[string]float64{"hardness": 0, "modulus": 0}
	}
	// Glass-forming sweet spot near a=0.55, b=0.3.
	comp := math.Exp(-(math.Pow((a-0.55)/0.18, 2) + math.Pow((b-0.30)/0.14, 2)))
	// Annealing: moderate temperature/time maximizes hardness; overshoot
	// crystallizes and softens.
	anneal := math.Exp(-math.Pow((t-480)/110, 2)) * math.Exp(-math.Pow(math.Log(dur/120)/1.2, 2))
	hardness := 2 + 12*comp*anneal
	modulus := 60 + 120*comp
	return map[string]float64{"hardness": hardness, "modulus": modulus}
}

// ---------------------------------------------------------------------------
// Generic catalytic reaction yield (organic synthesis domain).

// Reaction models a homogeneous catalysis yield surface over temperature,
// time, catalyst loading, and stoichiometry. Objective "yield" (0..1).
type Reaction struct{}

// Name implements Model.
func (Reaction) Name() string { return "reaction" }

// Objective implements Model.
func (Reaction) Objective() string { return "yield" }

// Space implements Model.
func (Reaction) Space() param.Space {
	return param.Space{
		{Name: "temperature", Lo: 25, Hi: 150, Unit: "C"},
		{Name: "time_min", Lo: 5, Hi: 720, Unit: "min"},
		{Name: "catalyst_pct", Lo: 0.1, Hi: 10, Unit: "%"},
		{Name: "stoich", Lo: 0.8, Hi: 3},
	}
}

// Eval implements Model.
func (Reaction) Eval(p param.Point) map[string]float64 {
	t := p["temperature"]
	dur := p["time_min"]
	cat := p["catalyst_pct"]
	st := p["stoich"]

	// Arrhenius-like rate, decomposition above ~120C.
	rate := math.Exp((t-25)/45) * (cat / (cat + 1.5))
	conv := 1 - math.Exp(-rate*dur/240)
	decomp := 1 / (1 + math.Exp(-(t-125)/6))
	sel := math.Exp(-math.Pow((st-1.6)/0.6, 2))*0.5 + 0.5
	yield := conv * (1 - 0.7*decomp) * sel
	return map[string]float64{"yield": yield, "conversion": conv, "selectivity": sel}
}

// ---------------------------------------------------------------------------
// Noise wrapper: turns a ground-truth model into a measurement process.

// Noise describes the measurement-noise model applied on top of a twin.
type Noise struct {
	// Rel is the relative (multiplicative) noise sigma on each output.
	Rel float64
	// Abs is the absolute (additive) noise sigma on each output.
	Abs float64
}

// Apply perturbs outputs in place using the stream. Keys are visited in
// sorted order so the draw sequence — and therefore every downstream
// result — is independent of Go's randomized map iteration.
func (n Noise) Apply(out map[string]float64, r *rng.Stream) {
	if n.Rel == 0 && n.Abs == 0 {
		return
	}
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out[k] = out[k]*(1+r.Normal(0, n.Rel)) + r.Normal(0, n.Abs)
	}
}

// ---------------------------------------------------------------------------
// Constraint verification (the M8 "verification tools").

// Violation describes one failed physics or safety check.
type Violation struct {
	Rule   string
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Rule is a named predicate over a parameter point.
type Rule struct {
	Name  string
	Check func(p param.Point) (ok bool, detail string)
}

// Verifier bundles a model's domain bounds with domain-specific physics
// rules. A command that passes Verify is physically plausible and safe.
type Verifier struct {
	space param.Space
	rules []Rule
}

// NewVerifier builds a verifier over the model's space with standard bounds
// checks plus the supplied rules.
func NewVerifier(m Model, rules ...Rule) *Verifier {
	return &Verifier{space: m.Space(), rules: rules}
}

// Verify returns all violations for p (empty means feasible).
func (v *Verifier) Verify(p param.Point) []Violation {
	var out []Violation
	for _, d := range v.space {
		val, ok := p[d.Name]
		if !ok {
			out = append(out, Violation{
				Rule:   "bounds/" + d.Name,
				Detail: "parameter missing",
			})
			continue
		}
		if val < d.Lo-1e-12 || val > d.Hi+1e-12 {
			out = append(out, Violation{
				Rule:   "bounds/" + d.Name,
				Detail: fmt.Sprintf("%g outside [%g, %g] %s", val, d.Lo, d.Hi, d.Unit),
			})
		}
	}
	for _, r := range v.rules {
		if ok, detail := r.Check(p); !ok {
			out = append(out, Violation{Rule: r.Name, Detail: detail})
		}
	}
	return out
}

// StandardRules returns the physics rules appropriate for a model.
func StandardRules(m Model) []Rule {
	switch m.Name() {
	case "alloy":
		return []Rule{{
			Name: "mass-balance",
			Check: func(p param.Point) (bool, string) {
				s := p["frac_a"] + p["frac_b"]
				if s > 1 {
					return false, fmt.Sprintf("composition fractions sum to %.3f > 1", s)
				}
				return true, ""
			},
		}}
	case "perovskite":
		return []Rule{{
			Name: "thermal-stability",
			Check: func(p param.Point) (bool, string) {
				// High iodide content destabilizes above ~200C.
				if p["halide_ratio"] < 0.3 && p["temperature"] > 200 {
					return false, "iodide-rich composition above 200C decomposes"
				}
				return true, ""
			},
		}}
	case "reaction":
		return []Rule{{
			Name: "solvent-boiling",
			Check: func(p param.Point) (bool, string) {
				if p["temperature"] > 140 {
					return false, "exceeds solvent boiling point at ambient pressure"
				}
				return true, ""
			},
		}}
	case "electrolyte":
		return []Rule{{
			Name: "salt-solubility",
			Check: func(p param.Point) (bool, string) {
				// Concentrated salt crashes out of solution in the cold.
				if p["salt_M"] > 2.0 && p["temperature_C"] < 0 {
					return false, "salt precipitates above 2M below 0C"
				}
				return true, ""
			},
		}}
	default:
		return nil
	}
}

// Twin couples a model with its verifier and noise for preflight use.
type Twin struct {
	Model    Model
	Verifier *Verifier
	Noise    Noise
}

// NewTwin assembles a digital twin with standard rules.
func NewTwin(m Model, noise Noise) *Twin {
	return &Twin{Model: m, Verifier: NewVerifier(m, StandardRules(m)...), Noise: noise}
}

// Preflight validates a command against physics constraints and, when
// feasible, returns the twin's predicted outputs — the in-silico dry run the
// paper's M3 milestone requires before touching hardware.
func (t *Twin) Preflight(p param.Point) (map[string]float64, []Violation) {
	if v := t.Verifier.Verify(p); len(v) > 0 {
		return nil, v
	}
	return t.Model.Eval(p), nil
}

// Measure produces a noisy observation of the ground truth, the behaviour
// instruments delegate to.
func (t *Twin) Measure(p param.Point, r *rng.Stream) map[string]float64 {
	out := t.Model.Eval(p)
	t.Noise.Apply(out, r)
	return out
}

// Registry returns all built-in models keyed by name.
func Registry() map[string]Model {
	return map[string]Model{
		"perovskite":  Perovskite{},
		"quantum-dot": QuantumDot{},
		"alloy":       Alloy{},
		"reaction":    Reaction{},
		"electrolyte": Electrolyte{},
	}
}

// ---------------------------------------------------------------------------
// Battery electrolyte formulation (second science domain for the chaos and
// multi-domain experiments).

// Electrolyte models liquid battery electrolyte formulation: salt molarity,
// cyclic/linear carbonate solvent blend, an additive, and operating
// temperature. Objective "conductivity_mS" follows a Casteel-Amis-like
// salt-concentration peak (ion count vs viscosity) modulated by solvent
// blend and an Arrhenius temperature term; "viscosity_cP" is the
// antagonistic secondary output.
type Electrolyte struct{}

// Name implements Model.
func (Electrolyte) Name() string { return "electrolyte" }

// Objective implements Model.
func (Electrolyte) Objective() string { return "conductivity_mS" }

// Space implements Model.
func (Electrolyte) Space() param.Space {
	return param.Space{
		{Name: "salt_M", Lo: 0.05, Hi: 2.5, Unit: "M"},
		{Name: "ec_frac", Lo: 0, Hi: 1},
		{Name: "additive_pct", Lo: 0, Hi: 5, Unit: "%"},
		{Name: "temperature_C", Lo: -20, Hi: 60, Unit: "C"},
	}
}

// Eval implements Model.
func (Electrolyte) Eval(p param.Point) map[string]float64 {
	salt := p["salt_M"]
	ec := p["ec_frac"]
	add := p["additive_pct"]
	tc := p["temperature_C"]

	// Casteel-Amis shape: conductivity rises with carrier count, then
	// viscosity chokes transport past ~1.1 M.
	saltTerm := math.Pow(salt/1.1, 1.3) * math.Exp(1.3*(1-salt/1.1))
	// Solvent blend: EC raises permittivity (dissociation) but thickens the
	// mix; optimum near 30% cyclic carbonate.
	blendTerm := 0.45 + 0.55*math.Exp(-math.Pow((ec-0.3)/0.22, 2))
	// Arrhenius-like transport activation around room temperature.
	tempTerm := math.Exp(2300 * (1/298.0 - 1/(tc+273.15)))
	// Additive: small film-forming boost, conductivity penalty in excess.
	addTerm := 1 + 0.06*(add/(add+0.8)) - 0.025*add

	cond := 11.5 * saltTerm * blendTerm * tempTerm * addTerm
	if cond < 0 {
		cond = 0
	}
	visc := (1.2 + 2.4*salt*salt + 2.2*ec) * math.Exp(1200*(1/(tc+273.15)-1/298.0))
	return map[string]float64{"conductivity_mS": cond, "viscosity_cP": visc}
}
