package twin

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
)

func TestAllModelsOutputsFinite(t *testing.T) {
	r := rng.New(42)
	for name, m := range Registry() {
		space := m.Space()
		for i := 0; i < 500; i++ {
			p := space.Sample(r)
			out := m.Eval(p)
			if len(out) == 0 {
				t.Fatalf("%s: empty output", name)
			}
			for k, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: output %s=%v for %v", name, k, v, p)
				}
			}
			if _, ok := out[m.Objective()]; !ok {
				t.Fatalf("%s: objective %q missing from outputs", name, m.Objective())
			}
		}
	}
}

func TestPerovskiteShape(t *testing.T) {
	m := Perovskite{}
	// The near-optimal ridge point beats a far-off point.
	good := param.Point{"temperature": 150, "halide_ratio": 0.5, "residence_s": 60, "ligand_mM": 15}
	bad := param.Point{"temperature": 60, "halide_ratio": 1.0, "residence_s": 300, "ligand_mM": 1}
	if m.Eval(good)["plqy"] <= m.Eval(bad)["plqy"] {
		t.Fatal("response surface inverted: ridge point not better")
	}
	// PLQY bounded to [0,1].
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		v := m.Eval(m.Space().Sample(r))["plqy"]
		if v < 0 || v > 1 {
			t.Fatalf("plqy %v out of [0,1]", v)
		}
	}
	// Emission red-shifts as iodide increases (ratio decreases).
	lo := m.Eval(param.Point{"temperature": 150, "halide_ratio": 0.1, "residence_s": 60, "ligand_mM": 15})["emission_nm"]
	hi := m.Eval(param.Point{"temperature": 150, "halide_ratio": 0.9, "residence_s": 60, "ligand_mM": 15})["emission_nm"]
	if lo <= hi {
		t.Fatalf("emission should red-shift with iodide: %v <= %v", lo, hi)
	}
}

func TestPerovskiteLocalTrapExists(t *testing.T) {
	m := Perovskite{}
	trap := param.Point{"temperature": 75, "halide_ratio": 0.2, "residence_s": 60, "ligand_mM": 15}
	nearTrap := param.Point{"temperature": 95, "halide_ratio": 0.2, "residence_s": 60, "ligand_mM": 15}
	if m.Eval(trap)["plqy"] <= m.Eval(nearTrap)["plqy"] {
		t.Fatal("no local optimum at the designed trap location")
	}
	global := param.Point{"temperature": 132, "halide_ratio": 0.2, "residence_s": 60, "ligand_mM": 15}
	if m.Eval(global)["plqy"] <= m.Eval(trap)["plqy"] {
		t.Fatal("trap should remain below the global ridge")
	}
}

func TestQuantumDotCardinalityMatchesPaper(t *testing.T) {
	card := QuantumDot{}.Space().Cardinality()
	if card < 1e12 || card > 1e14 {
		t.Fatalf("quantum dot space cardinality = %.3g, want ~1e13 (Smart Dope claim)", card)
	}
}

func TestQuantumDotOptimumRegion(t *testing.T) {
	m := QuantumDot{}
	good := param.Point{"dopant_pct": 2.5, "temperature": 210, "shell_nm": 1.4,
		"reaction_min": 18, "precursor_ratio": 1.35, "ligand_mM": 12, "injection_rate": 2.2}
	if v := m.Eval(good)["plqy"]; v < 0.8 {
		t.Fatalf("designed optimum region scores only %v", v)
	}
	r := rng.New(2)
	// Random points should rarely beat the designed optimum.
	better := 0
	goodV := m.Eval(good)["plqy"]
	for i := 0; i < 5000; i++ {
		if m.Eval(m.Space().Sample(r))["plqy"] > goodV {
			better++
		}
	}
	if better > 25 {
		t.Fatalf("%d/5000 random points beat the near-optimum; surface too easy", better)
	}
}

func TestAlloyMassBalanceDegenerate(t *testing.T) {
	m := Alloy{}
	out := m.Eval(param.Point{"frac_a": 0.7, "frac_b": 0.7, "anneal_C": 400, "anneal_min": 100})
	if out["hardness"] != 0 {
		t.Fatal("infeasible composition should yield degenerate hardness")
	}
}

func TestReactionDecompositionPenalty(t *testing.T) {
	m := Reaction{}
	mild := param.Point{"temperature": 100, "time_min": 300, "catalyst_pct": 5, "stoich": 1.6}
	hot := param.Point{"temperature": 150, "time_min": 300, "catalyst_pct": 5, "stoich": 1.6}
	if m.Eval(hot)["yield"] >= m.Eval(mild)["yield"] {
		t.Fatal("decomposition above 125C should reduce yield")
	}
}

func TestNoiseApplication(t *testing.T) {
	r := rng.New(7)
	n := Noise{Rel: 0.05}
	base := map[string]float64{"x": 100}
	var sum, sumsq float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		out := map[string]float64{"x": 100}
		n.Apply(out, r)
		sum += out["x"]
		sumsq += out["x"] * out["x"]
	}
	mean := sum / trials
	sd := math.Sqrt(sumsq/trials - mean*mean)
	if math.Abs(mean-100) > 0.2 {
		t.Fatalf("noisy mean = %v, want ~100", mean)
	}
	if math.Abs(sd-5) > 0.3 {
		t.Fatalf("noisy sd = %v, want ~5", sd)
	}
	_ = base
	zero := Noise{}
	out := map[string]float64{"x": 1}
	zero.Apply(out, r)
	if out["x"] != 1 {
		t.Fatal("zero noise should be identity")
	}
}

func TestVerifierBounds(t *testing.T) {
	v := NewVerifier(Perovskite{})
	ok := param.Point{"temperature": 150, "halide_ratio": 0.5, "residence_s": 60, "ligand_mM": 15}
	if viol := v.Verify(ok); len(viol) != 0 {
		t.Fatalf("feasible point flagged: %v", viol)
	}
	bad := param.Point{"temperature": 500, "halide_ratio": 0.5, "residence_s": 60, "ligand_mM": 15}
	if viol := v.Verify(bad); len(viol) != 1 {
		t.Fatalf("want 1 bounds violation, got %v", viol)
	}
	missing := param.Point{"temperature": 150}
	if viol := v.Verify(missing); len(viol) != 3 {
		t.Fatalf("want 3 missing-parameter violations, got %d", len(viol))
	}
}

func TestStandardRulesAlloyMassBalance(t *testing.T) {
	tw := NewTwin(Alloy{}, Noise{})
	_, viol := tw.Preflight(param.Point{"frac_a": 0.7, "frac_b": 0.6, "anneal_C": 400, "anneal_min": 60})
	if len(viol) == 0 {
		t.Fatal("mass-balance violation not caught")
	}
	out, viol := tw.Preflight(param.Point{"frac_a": 0.5, "frac_b": 0.3, "anneal_C": 480, "anneal_min": 120})
	if len(viol) != 0 {
		t.Fatalf("feasible alloy rejected: %v", viol)
	}
	if out["hardness"] <= 0 {
		t.Fatal("preflight should return predicted outputs")
	}
}

func TestStandardRulesPerovskiteThermal(t *testing.T) {
	tw := NewTwin(Perovskite{}, Noise{})
	_, viol := tw.Preflight(param.Point{"temperature": 210, "halide_ratio": 0.1, "residence_s": 60, "ligand_mM": 15})
	if len(viol) == 0 {
		t.Fatal("iodide-rich high-temperature decomposition not caught")
	}
}

func TestMeasureAddsNoise(t *testing.T) {
	tw := NewTwin(Perovskite{}, Noise{Rel: 0.05})
	p := param.Point{"temperature": 150, "halide_ratio": 0.5, "residence_s": 60, "ligand_mM": 15}
	truth := tw.Model.Eval(p)["plqy"]
	r := rng.New(3)
	different := 0
	for i := 0; i < 10; i++ {
		if tw.Measure(p, r)["plqy"] != truth {
			different++
		}
	}
	if different < 9 {
		t.Fatal("measurements suspiciously noise-free")
	}
}

// Property: every model is deterministic — same point, same output.
func TestPropertyModelsDeterministic(t *testing.T) {
	for name, m := range Registry() {
		m := m
		space := m.Space()
		f := func(seed uint32) bool {
			p := space.Sample(rng.New(uint64(seed)))
			a := m.Eval(p)
			b := m.Eval(p)
			for k := range a {
				if a[k] != b[k] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestElectrolyteShape(t *testing.T) {
	m := Electrolyte{}
	eval := func(salt, ec, add, temp float64) float64 {
		return m.Eval(param.Point{
			"salt_M": salt, "ec_frac": ec, "additive_pct": add, "temperature_C": temp,
		})["conductivity_mS"]
	}
	// Casteel-Amis: conductivity peaks near 1.1 M and falls off both ways.
	peak := eval(1.1, 0.3, 0.5, 25)
	if eval(0.2, 0.3, 0.5, 25) >= peak || eval(2.4, 0.3, 0.5, 25) >= peak {
		t.Fatal("salt concentration response is not peaked near 1.1 M")
	}
	// Arrhenius: warmer electrolyte conducts better.
	if eval(1.1, 0.3, 0.5, 50) <= eval(1.1, 0.3, 0.5, -10) {
		t.Fatal("conductivity should rise with temperature")
	}
	// Excess additive loads the solution.
	if eval(1.1, 0.3, 4.8, 25) >= eval(1.1, 0.3, 0.8, 25) {
		t.Fatal("heavy additive loading should cost conductivity")
	}
	if peak <= 0 {
		t.Fatalf("peak conductivity %v should be positive", peak)
	}
}

func TestStandardRulesElectrolyteSolubility(t *testing.T) {
	v := NewVerifier(Electrolyte{}, StandardRules(Electrolyte{})...)
	cold := param.Point{"salt_M": 2.3, "ec_frac": 0.3, "additive_pct": 1, "temperature_C": -10}
	if viol := v.Verify(cold); len(viol) == 0 {
		t.Fatal("super-saturated cold electrolyte should be infeasible")
	}
	ok := param.Point{"salt_M": 1.0, "ec_frac": 0.3, "additive_pct": 1, "temperature_C": 25}
	if viol := v.Verify(ok); len(viol) != 0 {
		t.Fatalf("nominal formulation rejected: %v", viol)
	}
}
