package core

import (
	"errors"
	"fmt"

	"github.com/aisle-sim/aisle/internal/fabric"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/llm"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/optimize"
	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sched"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/trace"
	"github.com/aisle-sim/aisle/internal/twin"
)

// Orchestration selects who turns optimizer candidates into instrument
// commands — the experiment axis of milestone M8.
type Orchestration int

// Orchestration modes.
const (
	// OrchManual is the human baseline: slow, working-hours bound.
	OrchManual Orchestration = iota
	// OrchAgent is an LLM agent without verification tools.
	OrchAgent
	// OrchAgentVerified is an LLM agent with digital-twin verification.
	OrchAgentVerified
)

// String renders the mode.
func (o Orchestration) String() string {
	return [...]string{"manual", "agent", "agent+verify"}[o]
}

// CampaignConfig describes one closed-loop discovery campaign.
type CampaignConfig struct {
	Name   string
	Site   netsim.SiteID
	Model  twin.Model
	Budget int // experiments to execute (excluding knowledge-base hits)
	// Target stops the campaign early once the best measured objective
	// reaches it (0 disables).
	Target float64
	// Mode selects the orchestrator.
	Mode Orchestration
	// SynthKind is the instrument kind performing experiments.
	SynthKind string
	// CharacterizeKind optionally adds a characterization step per
	// experiment ("" disables).
	CharacterizeKind string
	// UseKnowledge seeds the optimizer from the site's knowledge base,
	// skips points already measured anywhere in the federation, and
	// publishes results back.
	UseKnowledge bool
	// SeedLabel decorrelates replicas.
	SeedLabel string
	// MaxFailuresPerPoint bounds instrument-failure retries. Default 2.
	MaxFailuresPerPoint int
	// InstrumentTimeout bounds one instrument call. Default 48h.
	InstrumentTimeout sim.Time
	// Parallelism keeps up to this many experiments in flight through the
	// federation scheduler, turning the serial ask->run->tell loop into a
	// pipelined one. 0 or 1 selects the direct serial path.
	Parallelism int
	// FairWeight is the campaign's fair-share weight at the scheduler
	// (default 1). Only meaningful with Parallelism > 1.
	FairWeight float64
	// Priority is the campaign's scheduler class. The zero value is
	// normal priority. Only meaningful with Parallelism > 1.
	Priority sched.Class
}

// CampaignReport is the outcome of one campaign.
type CampaignReport struct {
	Name      string
	Mode      Orchestration
	Executed  int // experiments run on instruments
	Reused    int // knowledge-base hits that avoided an experiment
	Failures  int // instrument failures encountered
	BestValue float64
	BestPoint param.Point

	Started  sim.Time
	Finished sim.Time

	DecisionTime   sim.Time // total orchestration latency
	InstrumentTime sim.Time // total time waiting on instruments

	Correct   int // emitted command matched planner intent
	Incorrect int
	Repaired  int // verification repairs

	Traces    int
	Approvals int // scientist approvals of reasoning traces

	Err error
}

// Makespan is the campaign's total virtual duration.
func (r *CampaignReport) Makespan() sim.Time { return r.Finished - r.Started }

// Correctness is the fraction of executed experiments whose command matched
// intent (M8's "experimental correctness").
func (r *CampaignReport) Correctness() float64 {
	total := r.Correct + r.Incorrect
	if total == 0 {
		return 1
	}
	return float64(r.Correct) / float64(total)
}

// ApprovalRate is the scientist trace-approval fraction (M9).
func (r *CampaignReport) ApprovalRate() float64 {
	if r.Traces == 0 {
		return 1
	}
	return float64(r.Approvals) / float64(r.Traces)
}

// ErrNoInstrument is reported when discovery finds no instrument of the
// campaign's kind.
var ErrNoInstrument = errors.New("core: no instrument available")

// RunCampaign executes the closed loop asynchronously; cb receives the
// final report. Drive the engine (n.Eng.Run or RunUntil) to make progress.
func (n *Network) RunCampaign(cfg CampaignConfig, cb func(*CampaignReport)) {
	if cfg.MaxFailuresPerPoint == 0 {
		cfg.MaxFailuresPerPoint = 2
	}
	if cfg.InstrumentTimeout == 0 {
		cfg.InstrumentTimeout = 48 * sim.Hour
	}
	site := n.Site(cfg.Site)
	if site == nil {
		cb(&CampaignReport{Name: cfg.Name, Err: fmt.Errorf("core: unknown site %q", cfg.Site)})
		return
	}

	c := &campaign{
		n:    n,
		cfg:  cfg,
		site: site,
		rep: &CampaignReport{
			Name: cfg.Name, Mode: cfg.Mode, Started: n.Eng.Now(),
			BestValue: -1e300,
		},
		cb:  cb,
		rnd: n.Rnd.Fork("campaign/" + cfg.Name + "/" + cfg.SeedLabel),
	}
	c.opt = optimize.NewBayes(cfg.Model.Space(), c.rnd.Fork("opt"), optimize.BayesOpts{})
	c.approver = llm.NewApprovalModel(c.rnd.Fork("review"))

	// Causal tracing: the campaign is one trace, rooted here. The trace ID
	// derives from the same label that decorrelates replicas, so a
	// fixed-seed run traces identically and sampling is per-campaign.
	c.tctx = n.Tracer.Root(trace.ID(cfg.Name + "/" + cfg.SeedLabel))
	if c.tctx.Enabled() {
		c.root, c.tctx = c.tctx.Start(n.Eng.Now(), string(cfg.Site), trace.KindCampaign, cfg.Name)
	}

	tw := twin.NewTwin(cfg.Model, twin.Noise{})
	switch cfg.Mode {
	case OrchManual:
		c.human = llm.NewHuman(c.rnd.Fork("human"))
	case OrchAgent:
		c.agent = llm.NewOrchestrator(c.rnd.Fork("agent"), nil)
	case OrchAgentVerified:
		c.agent = llm.NewOrchestrator(c.rnd.Fork("agent"), tw)
	}

	// Transfer learning: prior observations inform the surrogate, but the
	// campaign's reported best still requires a locally confirmed (or
	// reused) measurement.
	if cfg.UseKnowledge {
		pts, vals := site.Knowledge.Observations(cfg.Model.Name())
		if len(pts) > 0 {
			c.opt.Seed(pts, vals, 0.7)
		}
	}

	// Provenance: the campaign is an agent acting for the site.
	n.Mesh.Prov.AddAgent("campaign:"+cfg.Name, map[string]string{"site": string(cfg.Site)})

	if cfg.Parallelism > 1 {
		// Batched dispatch rides the federation scheduler; the direct
		// serial path below stays untouched for Parallelism <= 1.
		n.Sched.Tenant(cfg.Site, sched.TenantConfig{
			ID: cfg.Name, Weight: cfg.FairWeight, Class: cfg.Priority,
		})
		c.fill()
		return
	}
	c.step()
}

type campaign struct {
	n        *Network
	cfg      CampaignConfig
	site     *Site
	rep      *CampaignReport
	cb       func(*CampaignReport)
	rnd      *rng.Stream
	opt      *optimize.Bayes
	agent    *llm.Orchestrator
	human    *llm.Human
	approver *llm.ApprovalModel

	reuseStreak int
	finished    bool

	// Tracing state. tctx is the context under the campaign root span (the
	// zero value when tracing is off or the trace was not sampled); root is
	// the campaign span itself, finished in finish().
	tctx trace.Context
	root trace.Span

	// Batched-dispatch state (Parallelism > 1).
	launched  int                    // experiments submitted and not permanently dropped
	flying    int                    // proposals being decided or executing
	seq       int                    // sample-ID sequence across concurrent flights
	flyingPts map[string]param.Point // intended points in flight, by sample ID
}

// expTrace is one experiment's span state, heap-allocated only when the
// campaign's trace is enabled; a nil *expTrace threads through the loop for
// free otherwise (closures capture one nil pointer, no span storage).
type expTrace struct {
	span trace.Span
	ctx  trace.Context
}

// ctxOr returns the experiment's trace context, or the disabled zero value.
func (et *expTrace) ctxOr() trace.Context {
	if et == nil {
		return trace.Context{}
	}
	return et.ctx
}

// beginExperiment opens one iteration's core.experiment span under the
// campaign root. Returns nil when tracing is off.
func (c *campaign) beginExperiment(sample string) *expTrace {
	if !c.tctx.Enabled() {
		return nil
	}
	et := &expTrace{}
	et.span, et.ctx = c.tctx.Start(c.n.Eng.Now(), string(c.cfg.Site), trace.KindExperiment, sample)
	return et
}

// endExperiment closes the iteration span.
func (c *campaign) endExperiment(et *expTrace) {
	if et != nil {
		et.ctx.Finish(&et.span, c.n.Eng.Now())
	}
}

// markReuse records the catalog-lookup wait of a knowledge hit as a
// core.reuse span directly under the campaign root.
func (c *campaign) markReuse(wait sim.Time) {
	if c.tctx.Enabled() {
		now := c.n.Eng.Now()
		sp, cc := c.tctx.Start(now, string(c.cfg.Site), trace.KindReuse, "knowledge-hit")
		cc.Finish(&sp, now+wait)
	}
}

// step runs one loop iteration: ask -> (maybe reuse) -> decide -> execute.
func (c *campaign) step() {
	if c.rep.Executed >= c.cfg.Budget {
		c.finish(nil)
		return
	}
	if c.cfg.Target > 0 && c.rep.BestValue >= c.cfg.Target {
		c.finish(nil)
		return
	}

	ar := c.n.Prof.Enter(prof.SiteCoreDecide)
	intended := c.opt.Ask()
	ar.End()

	// Knowledge reuse: skip experiments the federation already ran. A
	// reuse costs a catalog lookup, not an experiment.
	if c.tryReuse(intended) {
		c.markReuse(30 * sim.Second)
		c.n.Eng.Schedule(30*sim.Second, c.step)
		return
	}

	et := c.beginExperiment(fmt.Sprintf("%s-%04d", c.cfg.Name, c.rep.Executed))
	prop := c.decide(intended, et)
	c.n.Eng.Schedule(prop.Latency, func() { c.execute(prop, 0, et) })
}

// decide runs the orchestration decision for an intended point, with all
// report accounting (latency, repairs, traces, approvals). Shared by the
// serial and batched paths.
func (c *campaign) decide(intended param.Point, et *expTrace) llm.Proposal {
	r := c.n.Prof.Enter(prof.SiteCoreDecide)
	defer r.End()
	var prop llm.Proposal
	goal := fmt.Sprintf("maximize %s of %s", c.cfg.Model.Objective(), c.cfg.Model.Name())
	if c.human != nil {
		prop = c.human.Propose(intended, c.cfg.Model.Space(), c.n.Eng.Now(), goal)
	} else {
		prop = c.agent.Propose(intended, c.cfg.Model.Space(), goal)
	}
	if et != nil {
		// The decision's virtual extent is its modeled latency, elapsed by
		// the caller's Schedule — span it now while the proposal is at hand.
		now := c.n.Eng.Now()
		sp, cc := et.ctx.Start(now, string(c.cfg.Site), trace.KindDecide, c.cfg.Mode.String())
		if prop.Repaired {
			sp.SetAttr("repaired", 1)
		}
		cc.Finish(&sp, now+prop.Latency)
	}
	c.rep.DecisionTime += prop.Latency
	if prop.Repaired {
		c.rep.Repaired++
	}
	c.rep.Traces++
	if c.approver.Approves(prop.Trace) {
		c.rep.Approvals++
	}
	return prop
}

// execute runs the emitted command on a negotiated instrument.
func (c *campaign) execute(prop llm.Proposal, failures int, et *expTrace) {
	rec, ok := c.site.FindInstrument(c.cfg.SynthKind, nil, "throughput_per_hr")
	if !ok {
		c.finish(fmt.Errorf("%w: kind %s at %s", ErrNoInstrument, c.cfg.SynthKind, c.cfg.Site))
		return
	}
	cmd := instrument.Command{
		Action:   "synthesize",
		Params:   prop.Emitted,
		SampleID: fmt.Sprintf("%s-%04d", c.cfg.Name, c.rep.Executed),
		Trace:    et.ctxOr(),
	}
	started := c.n.Eng.Now()
	c.site.RunInstrument(rec, cmd, c.cfg.InstrumentTimeout, func(res instrument.Result, err error) {
		c.rep.InstrumentTime += c.n.Eng.Now() - started
		if err != nil {
			c.rep.Failures++
			if failures+1 <= c.cfg.MaxFailuresPerPoint {
				// Fault tolerance: retry the same command (possibly landing
				// on another instrument after renegotiation).
				c.execute(prop, failures+1, et)
				return
			}
			// Give up on this point; move on.
			c.endExperiment(et)
			c.n.Eng.Schedule(0, c.step)
			return
		}
		c.ingest(prop, res, et, func() {
			c.endExperiment(et)
			c.n.Eng.Schedule(0, c.step)
		})
	})
}

// ingest scores correctness, characterizes if configured, feeds the
// optimizer and knowledge base, records provenance, and finally invokes
// cont to resume the owning loop (serial step or batched refill).
func (c *campaign) ingest(prop llm.Proposal, res instrument.Result, et *expTrace, cont func()) {
	c.rep.Executed++
	if prop.Correct() {
		c.rep.Correct++
	} else {
		c.rep.Incorrect++
	}

	obj := c.cfg.Model.Objective()
	value := res.Values[obj]
	// The optimizer is told the planner's intent; when a defect slipped
	// through, the label is wrong — exactly the failure mode the paper's
	// verification milestone exists to prevent.
	c.opt.Tell(prop.Intended, value)
	if value > c.rep.BestValue {
		c.rep.BestValue = value
		c.rep.BestPoint = prop.Emitted.Clone()
	}

	if c.cfg.UseKnowledge {
		c.site.Knowledge.AddObservationT(et.ctxOr(), c.cfg.Model.Name(), prop.Emitted, value)
	}

	// Provenance + dataset record for this experiment.
	prov := c.n.Mesh.Prov
	entID := prov.AddEntity(fmt.Sprintf("result:%s", res.SampleID), map[string]string{
		"objective": fmt.Sprintf("%.4f", value),
	})
	actID := prov.AddActivity("experiment:"+res.SampleID, res.Started, res.Finished)
	prov.WasGeneratedBy(entID, actID)
	prov.WasAssociatedWith(actID, fabric.AgentID("campaign:"+c.cfg.Name))

	// Characterization hop (cross-facility when the instrument lives
	// elsewhere). Batched campaigns route it through the scheduler so
	// characterization shares the fleet fairly too.
	if c.cfg.CharacterizeKind != "" {
		rec, ok := c.site.FindInstrument(c.cfg.CharacterizeKind, nil, "throughput_per_hr")
		if ok {
			started := c.n.Eng.Now()
			cmd := instrument.Command{
				Action:   charActionFor(c.cfg.CharacterizeKind),
				Params:   param.Point{"scan_resolution": 1, "exposure_s": 60},
				SampleID: res.SampleID,
				Trace:    et.ctxOr(),
			}
			after := func() {
				if c.finished {
					return
				}
				c.rep.InstrumentTime += c.n.Eng.Now() - started
				cont()
			}
			if c.cfg.Parallelism > 1 {
				c.n.Sched.Submit(sched.Job{
					Tenant: c.cfg.Name, Origin: c.cfg.Site,
					Kind: c.cfg.CharacterizeKind, Cmd: cmd,
					Timeout: c.cfg.InstrumentTimeout,
					Trace:   et.ctxOr(),
				}, func(instrument.Result, error) { after() })
				return
			}
			c.site.RunInstrument(rec, cmd, c.cfg.InstrumentTimeout, func(instrument.Result, error) {
				after()
			})
			return
		}
	}
	cont()
}

func charActionFor(kind string) string {
	switch kind {
	case instrument.KindXRD:
		return "scan"
	case instrument.KindTEM:
		return "image"
	case instrument.KindSpectrometer:
		return "spectrum"
	default:
		return "scan"
	}
}

func (c *campaign) finish(err error) {
	if c.finished {
		return
	}
	c.finished = true
	c.rep.Finished = c.n.Eng.Now()
	c.rep.Err = err
	c.tctx.Finish(&c.root, c.rep.Finished)
	if c.cfg.Parallelism > 1 {
		c.n.Sched.ReleaseTenant(c.cfg.Name)
	}
	c.n.Metrics.Counter("core.campaigns").Inc()
	c.cb(c.rep)
}
