package core

// Batched dispatch: with CampaignConfig.Parallelism > 1 a campaign keeps k
// experiments in flight through the federation scheduler instead of
// walking the serial ask -> run -> tell loop. Proposals come from the
// Bayesian optimizer's constant-liar batch ask, decisions overlap with
// executing experiments, and every completion immediately refills the
// pipeline — so campaign throughput tracks fleet capacity, not the sum of
// decision and action latencies.
//
// The per-decision hot path underneath is the incremental GP engine in
// internal/optimize (O(n^2) factor appends, fantasy overlay, allocation-
// free batch scoring) plus the scheduler's clone-free directory routing
// (discovery.BrowseFunc); together they keep saturated multi-tenant
// refills off every cubic or allocating path.

import (
	"fmt"
	"sort"

	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/llm"
	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/sched"
	"github.com/aisle-sim/aisle/internal/sim"
)

// fill tops the pipeline up to Parallelism in-flight experiments and
// finishes the campaign once the budget (or target) is met and the last
// flight lands.
func (c *campaign) fill() {
	if c.finished {
		return
	}
	stop := c.cfg.Target > 0 && c.rep.BestValue >= c.cfg.Target
	for !stop && c.flying < c.cfg.Parallelism && c.launched < c.cfg.Budget {
		p, ok := c.nextPoint()
		if !ok {
			// A knowledge reuse costs a catalog lookup, not an
			// experiment — same 30s charge as the serial path; launching
			// resumes afterwards while in-flight work continues.
			c.markReuse(30 * sim.Second)
			c.n.Eng.Schedule(30*sim.Second, c.fill)
			return
		}
		c.launch(p)
		stop = c.cfg.Target > 0 && c.rep.BestValue >= c.cfg.Target
	}
	if c.flying == 0 && (stop || c.launched >= c.cfg.Budget) {
		c.finish(nil)
	}
}

// inflightPoints lists the intended points currently executing, in a
// deterministic order, so batch asks can fantasize over them.
func (c *campaign) inflightPoints() []param.Point {
	keys := make([]string, 0, len(c.flyingPts))
	for k := range c.flyingPts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]param.Point, len(keys))
	for i, k := range keys {
		out[i] = c.flyingPts[k]
	}
	return out
}

// nextPoint draws one intended point, fantasizing over the still-in-flight
// points (constant liar) so the proposal does not duplicate executing
// experiments. Asking per freed slot — rather than buffering a batch —
// means every proposal sees all evidence Telled so far, and it is cheap:
// the optimizer's fantasy overlay appends the in-flight rows to the shared
// Cholesky factor in O(n^2) each and retracts them by truncation, so a
// refill never refits the surrogate. A federation knowledge hit is
// consumed instead (ok=false): the known value feeds the optimizer without
// costing a flight slot, and the caller pays the catalog-lookup latency
// before drawing again.
func (c *campaign) nextPoint() (param.Point, bool) {
	var p param.Point
	r := c.n.Prof.Enter(prof.SiteCoreDecide)
	if fly := c.inflightPoints(); len(fly) > 0 {
		p = c.opt.AskBatch(1, fly)[0]
	} else {
		p = c.opt.Ask()
	}
	r.End()
	if c.tryReuse(p) {
		return nil, false
	}
	return p, true
}

// tryReuse consumes a federation knowledge hit for p, reporting whether it
// did. Misses reset the reuse streak that caps consecutive hits.
func (c *campaign) tryReuse(p param.Point) bool {
	if c.cfg.UseKnowledge && c.reuseStreak < 5 {
		if v, ok := c.site.Knowledge.HasObservation(c.cfg.Model.Name(), p); ok {
			c.rep.Reused++
			c.reuseStreak++
			c.opt.Tell(p, v)
			if v > c.rep.BestValue {
				c.rep.BestValue = v
				c.rep.BestPoint = p.Clone()
			}
			return true
		}
	}
	c.reuseStreak = 0
	return false
}

// launch claims a flight slot, runs the orchestration decision, and
// submits the emitted command to the scheduler once the decision latency
// elapses. Decisions for different slots overlap — the agent is not the
// bottleneck the serial loop makes it.
func (c *campaign) launch(intended param.Point) {
	c.flying++
	c.launched++
	sample := fmt.Sprintf("%s-%04d", c.cfg.Name, c.seq)
	c.seq++
	if c.flyingPts == nil {
		c.flyingPts = make(map[string]param.Point)
	}
	c.flyingPts[sample] = intended.Clone()
	et := c.beginExperiment(sample)
	prop := c.decide(intended, et)
	c.n.Eng.Schedule(prop.Latency, func() { c.submitSched(prop, sample, 0, et) })
}

// submitSched ships one proposal through the federation scheduler, with
// the same retry-on-failure policy as the serial path.
func (c *campaign) submitSched(prop llm.Proposal, sample string, failures int, et *expTrace) {
	if c.finished {
		return
	}
	// Mirror the serial path's failure mode: a kind absent from the
	// federation directory fails the campaign rather than parking jobs.
	if _, ok := c.site.FindInstrument(c.cfg.SynthKind, nil, "throughput_per_hr"); !ok {
		c.finish(fmt.Errorf("%w: kind %s at %s", ErrNoInstrument, c.cfg.SynthKind, c.cfg.Site))
		return
	}
	cmd := instrument.Command{
		Action:   "synthesize",
		Params:   prop.Emitted,
		SampleID: sample,
		Trace:    et.ctxOr(),
	}
	started := c.n.Eng.Now()
	c.n.Sched.Submit(sched.Job{
		Tenant:  c.cfg.Name,
		Origin:  c.cfg.Site,
		Kind:    c.cfg.SynthKind,
		Cmd:     cmd,
		Timeout: c.cfg.InstrumentTimeout,
		Trace:   et.ctxOr(),
	}, func(res instrument.Result, err error) {
		if c.finished {
			return
		}
		c.rep.InstrumentTime += c.n.Eng.Now() - started
		if err != nil {
			c.rep.Failures++
			if failures+1 <= c.cfg.MaxFailuresPerPoint {
				c.submitSched(prop, sample, failures+1, et)
				return
			}
			// Give up on this point: release its slot and its budget so
			// the pipeline replaces it, as the serial loop would.
			delete(c.flyingPts, sample)
			c.flying--
			c.launched--
			c.endExperiment(et)
			c.n.Eng.Schedule(0, c.fill)
			return
		}
		delete(c.flyingPts, sample)
		c.ingest(prop, res, et, func() {
			c.endExperiment(et)
			c.flying--
			c.fill()
		})
	})
}
