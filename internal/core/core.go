// Package core assembles the AISLE network — the paper's primary
// contribution. A Network is a federation of Sites, each running the full
// per-institution stack (message broker, discovery registry, identity
// provider, data node, knowledge base, instrument fleet), wired together by
// the simulated WAN with zero-trust security and a federated data mesh.
//
// On top of the assembly, the campaign engine (campaign.go) runs the
// closed-loop autonomous-discovery workflows the roadmap describes:
// propose -> verify -> reserve -> execute -> ingest -> learn, spanning
// institutional boundaries.
package core

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/agents"
	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/discovery"
	"github.com/aisle-sim/aisle/internal/fabric"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/knowledge"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/obs"
	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sched"
	"github.com/aisle-sim/aisle/internal/security"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
	"github.com/aisle-sim/aisle/internal/workflow"
)

// Config assembles a federation.
type Config struct {
	// Seed drives every stochastic component.
	Seed uint64
	// Sites to create.
	Sites []netsim.SiteID
	// Link is the WAN template connecting every site pair.
	Link netsim.Link
	// ZeroTrust enables the security middleware on the bus.
	ZeroTrust bool
	// SharedKnowledge wires the knowledge federation for propagation.
	SharedKnowledge bool
	// GossipInterval for service discovery. Zero uses the default.
	GossipInterval sim.Time
	// Sched tunes the federation-wide experiment scheduler. The zero
	// value gets the scheduler defaults.
	Sched sched.Options
	// Trace enables causal tracing. The zero value keeps tracing off: the
	// network's Tracer stays nil and every instrumentation site reduces to
	// a pointer test.
	Trace trace.Options
	// Health enables the federation health engine: streaming SLO
	// evaluation with burn-rate alerting, the flight recorder, and
	// incident root-cause linking. The zero value keeps it off: the
	// network's Health stays nil and the scheduler observer is never wired.
	Health obs.Options
	// Prof enables the continuous spine profiler: instrumented regions in
	// the sim loop, netsim, bus, scheduler, telemetry, knowledge, and the
	// campaign decision path. The zero value keeps it off: the network's
	// Prof stays nil and every region costs a pointer test.
	Prof prof.Options
	// Shards places each site's events on its own PDES shard with
	// conservative lookahead from the WAN link latency. Trajectories are
	// byte-identical with and without sharding — the executive merges
	// shards in exact (time, sequence) order — so this is purely a spine
	// layout choice.
	Shards bool
}

// DefaultLink is a realistic lab-to-lab WAN link: 15 ms propagation, 1 ms
// jitter, 1 Gbit/s, 0.1% loss.
func DefaultLink() netsim.Link {
	return netsim.Link{
		Latency:   15 * sim.Millisecond,
		Jitter:    sim.Millisecond,
		Bandwidth: 125e6,
		Loss:      0.001,
	}
}

// Site is one institution's full stack.
type Site struct {
	ID        netsim.SiteID
	Network   *Network
	Broker    *bus.Broker
	Registry  *discovery.Registry
	IdP       *security.IdentityProvider
	DataNode  *fabric.Node
	Knowledge *knowledge.Base
	Fleet     *instrument.Fleet

	// token managers for this site's service principals.
	orchestratorTM *security.TokenManager
}

// Network is the assembled AISLE federation.
type Network struct {
	Cfg       Config
	Eng       *sim.Engine
	Rnd       *rng.Stream
	Net       *netsim.Network
	Fabric    *bus.Fabric
	Directory *discovery.Directory
	Fed       *security.Federation
	Guard     *security.Guard
	Mesh      *fabric.Mesh
	Knowledge *knowledge.Federation
	Agents    *agents.Runtime
	Workflows *workflow.Engine
	Metrics   *telemetry.Registry
	Sched     *sched.Scheduler
	// Tracer records causal spans when Config.Trace enables it; nil (the
	// default) keeps every instrumentation site on its zero-cost path.
	Tracer *trace.Tracer
	// Health is the federation health engine when Config.Health enables
	// it; nil (the default) keeps every hook on its zero-cost path.
	Health *obs.Engine
	// Prof is the spine profiler when Config.Prof enables it; nil (the
	// default) keeps every instrumented region on its zero-cost path.
	Prof *prof.Profiler

	sites map[netsim.SiteID]*Site
}

// New assembles a federation from the config. The returned network is ready
// for instrument registration and campaigns; discovery gossip is started.
func New(cfg Config) *Network {
	if len(cfg.Sites) == 0 {
		panic("core: config needs at least one site")
	}
	eng := sim.NewEngine()
	rnd := rng.New(cfg.Seed)

	net := netsim.New(eng, rnd.Fork("net"))
	if cfg.Shards {
		// Must precede AddSite: each site claims its shard at creation.
		net.EnableSharding()
	}
	for _, s := range cfg.Sites {
		site := net.AddSite(s)
		// Inside the federation the firewalls admit the AISLE service
		// classes; zero trust below enforces per-message authentication.
		site.Firewall.Allow(netsim.Rule{Service: "bus"})
		site.Firewall.Allow(netsim.Rule{Service: "fabric"})
		site.Firewall.Allow(netsim.Rule{Service: "discovery"})
	}
	if len(cfg.Sites) > 1 {
		net.FullMesh(cfg.Sites, cfg.Link)
	}

	fab := bus.NewFabric(net)
	dir := discovery.NewDirectory(fab, cfg.Sites)
	// Federation-scale defaults: campaigns span virtual days, so gossip at
	// seconds granularity would dominate the event queue. Leases refresh on
	// every gossip exchange, so TTL rides the interval.
	dir.GossipInterval = 60 * sim.Second
	if cfg.GossipInterval > 0 {
		dir.GossipInterval = cfg.GossipInterval
	}
	dir.DefaultTTL = 10 * dir.GossipInterval
	mesh := fabric.NewMesh(net)
	fed := security.NewFederation(eng)
	pdp := &security.PDP{}
	guard := &security.Guard{Fed: fed, PDP: pdp}
	know := knowledge.NewFederation(fab, cfg.Sites, cfg.SharedKnowledge)

	n := &Network{
		Cfg:       cfg,
		Eng:       eng,
		Rnd:       rnd,
		Net:       net,
		Fabric:    fab,
		Directory: dir,
		Fed:       fed,
		Guard:     guard,
		Mesh:      mesh,
		Knowledge: know,
		Agents:    agents.NewRuntime(fab),
		Workflows: workflow.NewEngine(eng),
		Metrics:   telemetry.NewRegistry(),
		Tracer:    trace.New(cfg.Trace),
		Prof:      prof.New(cfg.Prof),
		sites:     make(map[netsim.SiteID]*Site),
	}

	// Spine profiler: thread the instrumented regions through every hot
	// subsystem. The profiler only reads the virtual clock and accumulates
	// into its own state, so the trajectory stays bit-identical.
	if n.Prof != nil {
		n.Prof.SetClock(func() int64 { return int64(eng.Now()) })
		eng.Prof = n.Prof
		net.SetProfiler(n.Prof)
		fab.SetProfiler(n.Prof)
		know.SetProfiler(n.Prof)
		n.Metrics.SetProfiler(n.Prof)
		net.Metrics().SetProfiler(n.Prof)
		fab.Metrics().SetProfiler(n.Prof)
		know.Metrics().SetProfiler(n.Prof)
	}

	for _, id := range cfg.Sites {
		idp := security.NewIdentityProvider(eng, id, []byte("key-"+string(id)))
		// Service tokens renew at half TTL; minutes-scale TTL keeps
		// continuous authentication without flooding the event queue.
		idp.TokenTTL = 10 * sim.Minute
		fed.RegisterIdP(idp)
		s := &Site{
			ID:        id,
			Network:   n,
			Broker:    fab.Broker(id),
			Registry:  dir.Registry(id),
			IdP:       idp,
			DataNode:  mesh.AddNode(id),
			Knowledge: know.Base(id),
			Fleet:     instrument.NewFleet(),
		}
		n.sites[id] = s
	}
	fed.TrustAll(cfg.Sites)

	// The federation scheduler routes experiments across every site's
	// fleet; bindings give it each site's directory view, local fleet
	// state, and service credential.
	n.Sched = sched.New(eng, net, fab, n.Metrics, rnd.Fork("sched"), cfg.Sched)
	n.Sched.Prof = n.Prof
	for _, id := range cfg.Sites {
		s := n.sites[id]
		n.Sched.AddSite(sched.SiteBinding{
			ID:       id,
			Registry: s.Registry,
			Fleet:    s.Fleet,
			Token: func() any {
				if tok := s.ServiceToken(); tok != nil {
					return tok
				}
				return nil
			},
		})
	}

	// Health engine: watch every subsystem registry, observe scheduler
	// decisions, and start the SLO sampling ticker. The engine only reads
	// state, so the virtual trajectory is identical with it on or off.
	if n.Health = obs.New(eng, cfg.Health); n.Health != nil {
		if len(cfg.Health.SLOs) == 0 {
			names := make([]string, len(cfg.Sites))
			for i, id := range cfg.Sites {
				names[i] = string(id)
			}
			for _, s := range obs.DefaultSLOs(names) {
				n.Health.AddSLO(s)
			}
		}
		n.Health.Watch("core", n.Metrics)
		n.Health.Watch("net", net.Metrics())
		n.Health.Watch("bus", fab.Metrics())
		n.Health.Watch("knowledge", know.Metrics())
		n.Health.WatchTracer(n.Tracer)
		n.Health.WatchProfiler(n.Prof)
		n.Health.ExportTo(n.Metrics)
		n.Sched.Observer = n.Health.ObserveDecision
		n.Health.Start()
	}

	if cfg.ZeroTrust {
		// Standing ABAC policy: orchestrator agents may call instruments
		// and services; data agents may publish.
		pdp.AddPolicy(security.Policy{
			Name: "orchestrators-call", Resource: "*", Action: "call",
			Conditions: []security.Condition{{Attr: "role", Op: security.OpIn, Value: "orchestrator,service"}},
		})
		pdp.AddPolicy(security.Policy{
			Name: "agents-publish", Resource: "*", Action: "publish",
			Conditions: []security.Condition{{Attr: "role", Op: security.OpIn, Value: "orchestrator,service,curator"}},
		})
		fab.Use(security.BusMiddleware(guard))
		// Every site gets a continuously-renewed service token used by its
		// infrastructure traffic (discovery gossip, knowledge propagation
		// ride the same middleware via the fabric's token source).
		for _, id := range cfg.Sites {
			s := n.sites[id]
			s.orchestratorTM = security.NewTokenManager(idpOf(n, id),
				security.Principal{ID: "orchestrator@" + string(id), Site: id,
					Attributes: map[string]string{"role": "orchestrator"}}, "")
		}
		fab.TokenSource = func(from bus.Address) any {
			if s := n.sites[from.Site]; s != nil && s.orchestratorTM != nil {
				return s.orchestratorTM.Token()
			}
			return nil
		}
	}

	dir.Start()
	return n
}

func idpOf(n *Network, id netsim.SiteID) *security.IdentityProvider {
	return n.sites[id].IdP
}

// Site returns a site's stack.
func (n *Network) Site(id netsim.SiteID) *Site { return n.sites[id] }

// Sites lists site IDs in config order.
func (n *Network) Sites() []netsim.SiteID { return append([]netsim.SiteID(nil), n.Cfg.Sites...) }

// ServiceToken returns a fresh token for cross-site calls from a site's
// orchestrator principal (nil when zero trust is off, which the bus treats
// as anonymous-allowed).
func (s *Site) ServiceToken() *security.Token {
	if s.orchestratorTM == nil {
		return nil
	}
	return s.orchestratorTM.Token()
}

// AddInstrument installs an instrument at the site: fleet registration, a
// bus endpoint ("instr/<id>") that executes commands, and a discovery
// record carrying the instrument's self-description.
func (s *Site) AddInstrument(in *instrument.Instrument) {
	d := in.Descriptor()
	s.Fleet.Add(in)

	endpoint := "instr/" + d.ID
	s.Broker.Register(endpoint, func(env *bus.Envelope, respond func(any, error)) {
		cmd, ok := env.Payload.(instrument.Command)
		if !ok {
			respond(nil, fmt.Errorf("core: bad payload for %s", endpoint))
			return
		}
		if cmd.Trace.Enabled() {
			// Traced path: the span covers the device queue plus the action.
			// Kept behind the branch so untraced commands share one closure
			// shape with no span state.
			eng := s.Network.Eng
			sp, cc := cmd.Trace.Start(eng.Now(), string(s.ID), trace.KindInstrument, d.ID)
			sp.SetStr("action", cmd.Action)
			in.Submit(cmd, func(res instrument.Result) {
				sp.SetAttr("quality", res.Quality)
				cc.Finish(&sp, eng.Now())
				respond(res, res.Err)
			})
			return
		}
		in.Submit(cmd, func(res instrument.Result) {
			respond(res, res.Err)
		})
	})

	caps := map[string]float64{}
	for k, v := range d.Capabilities {
		caps[k] = v
	}
	s.Registry.Register(discovery.Record{
		Instance:     string(s.ID) + "/" + d.ID,
		Type:         d.Kind,
		Addr:         bus.Address{Site: s.ID, Name: endpoint},
		Capabilities: caps,
		Text: map[string]string{
			"vendor": d.Vendor,
			"model":  d.ModelName,
		},
	})
	s.Network.Metrics.Counter("core.instruments").Inc()
}

// FindInstrument negotiates an instrument of the given kind visible from
// this site's registry, optionally requiring capability floors.
func (s *Site) FindInstrument(kind string, minCaps map[string]float64, prefer string) (discovery.Record, bool) {
	return s.Registry.Negotiate(discovery.Requirement{
		Type:    kind,
		MinCaps: minCaps,
		Prefer:  prefer,
	})
}

// RunInstrument invokes an instrument endpoint (possibly at another site)
// through the bus under the site's service credential. The timeout must
// cover queueing plus the action duration.
func (s *Site) RunInstrument(rec discovery.Record, cmd instrument.Command,
	timeout sim.Time, cb func(instrument.Result, error)) {

	s.Network.Fabric.Call(bus.CallOpts{
		From:    bus.Address{Site: s.ID, Name: "campaign"},
		To:      rec.Addr,
		Method:  "run",
		Payload: cmd,
		Token:   s.ServiceToken(),
		Size:    512,
		Timeout: timeout,
		Trace:   cmd.Trace,
	}, func(result any, err error) {
		if err != nil {
			cb(instrument.Result{}, err)
			return
		}
		res, ok := result.(instrument.Result)
		if !ok {
			cb(instrument.Result{}, fmt.Errorf("core: unexpected reply type %T", result))
			return
		}
		cb(res, nil)
	})
}

// Stop shuts background tickers down so the event queue can drain.
func (n *Network) Stop() {
	n.Directory.Stop()
	n.Sched.Stop()
	n.Health.Stop()
	for _, s := range n.sites {
		if s.orchestratorTM != nil {
			s.orchestratorTM.Stop()
		}
	}
}

// RunFor advances the simulation by d.
func (n *Network) RunFor(d sim.Time) error {
	return n.Eng.RunUntil(n.Eng.Now() + d)
}
