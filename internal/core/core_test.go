package core

import (
	"errors"
	"testing"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/discovery"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/twin"
)

var threeSites = []netsim.SiteID{"ornl", "anl", "slac"}

// waitDiscovery advances the simulation through a few gossip rounds so
// instrument records propagate federation-wide.
func waitDiscovery(t *testing.T, n *Network) {
	t.Helper()
	if err := n.RunFor(3 * sim.Minute); err != nil {
		t.Fatal(err)
	}
}

// runUntilReport advances the simulation in six-hour chunks until the
// campaign reports or the horizon passes, keeping background tickers from
// dominating the event budget.
func runUntilReport(t *testing.T, n *Network, rep **CampaignReport, horizon sim.Time) {
	t.Helper()
	deadline := n.Eng.Now() + horizon
	for *rep == nil && n.Eng.Now() < deadline {
		if err := n.RunFor(6 * sim.Hour); err != nil {
			t.Fatal(err)
		}
	}
}

// buildTestbed assembles a 3-site federation with a fluidic reactor and
// spectrometer at each site.
func buildTestbed(t *testing.T, seed uint64, zeroTrust, sharedKnowledge bool) *Network {
	t.Helper()
	n := New(Config{
		Seed:            seed,
		Sites:           threeSites,
		Link:            DefaultLink(),
		ZeroTrust:       zeroTrust,
		SharedKnowledge: sharedKnowledge,
	})
	for _, id := range threeSites {
		s := n.Site(id)
		s.AddInstrument(instrument.NewFluidicReactor(n.Eng, n.Rnd, "flow-"+string(id), string(id), twin.Perovskite{}))
		s.AddInstrument(instrument.NewSpectrometer(n.Eng, n.Rnd, "spec-"+string(id), string(id)))
	}
	return n
}

func TestNetworkAssembly(t *testing.T) {
	n := buildTestbed(t, 1, true, true)
	defer n.Stop()
	if len(n.Sites()) != 3 {
		t.Fatalf("sites = %v", n.Sites())
	}
	s := n.Site("ornl")
	if s.Broker == nil || s.Registry == nil || s.IdP == nil || s.DataNode == nil ||
		s.Knowledge == nil || s.Fleet == nil {
		t.Fatal("site stack incomplete")
	}
	if got := s.Fleet.IDs(); len(got) != 2 {
		t.Fatalf("fleet = %v", got)
	}
	if tok := s.ServiceToken(); tok == nil {
		t.Fatal("zero-trust site missing service token")
	}
}

func TestDiscoveryPropagatesInstruments(t *testing.T) {
	n := buildTestbed(t, 2, false, false)
	defer n.Stop()
	waitDiscovery(t, n)
	// slac's registry should see ornl's reactor after gossip.
	recs := n.Site("slac").Registry.Browse(instrument.KindFlowReactor)
	if len(recs) != 3 {
		t.Fatalf("slac sees %d flow reactors, want 3", len(recs))
	}
}

func TestRunInstrumentCrossSite(t *testing.T) {
	n := buildTestbed(t, 3, true, false)
	defer n.Stop()
	waitDiscovery(t, n)
	s := n.Site("ornl")
	rec, ok := s.Registry.Resolve("anl/flow-anl")
	if !ok {
		t.Fatal("remote instrument not discovered")
	}
	var got instrument.Result
	var gotErr error
	done := false
	s.RunInstrument(rec, instrument.Command{
		Action: "synthesize",
		Params: map[string]float64{"temperature": 150, "halide_ratio": 0.5, "residence_s": 60, "ligand_mM": 15},
	}, time48h(), func(res instrument.Result, err error) {
		got, gotErr, done = res, err, true
	})
	if err := n.RunFor(sim.Hour); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("cross-site instrument call never completed")
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got.Values["plqy"] <= 0 {
		t.Fatalf("no measurement: %+v", got.Values)
	}
}

func time48h() sim.Time { return 48 * sim.Hour }

func TestCampaignAgentVerifiedCompletes(t *testing.T) {
	n := buildTestbed(t, 4, true, true)
	defer n.Stop()
	waitDiscovery(t, n)
	var rep *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name: "c1", Site: "ornl", Model: twin.Perovskite{},
		Budget: 20, Mode: OrchAgentVerified,
		SynthKind: instrument.KindFlowReactor, UseKnowledge: true,
	}, func(r *CampaignReport) { rep = r })
	runUntilReport(t, n, &rep, 30*sim.Day)
	if rep == nil {
		t.Fatal("campaign never finished")
	}
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Executed != 20 {
		t.Fatalf("executed = %d", rep.Executed)
	}
	if rep.BestValue <= 0.1 {
		t.Fatalf("best = %v, optimizer made no progress", rep.BestValue)
	}
	if rep.Correctness() < 0.9 {
		t.Fatalf("verified correctness = %v", rep.Correctness())
	}
	if rep.Traces != 20 {
		t.Fatalf("traces = %d", rep.Traces)
	}
}

func TestCampaignManualSlowerThanAgent(t *testing.T) {
	runOne := func(mode Orchestration, seed uint64) *CampaignReport {
		n := buildTestbed(t, seed, false, false)
		defer n.Stop()
		waitDiscovery(t, n)
		var rep *CampaignReport
		n.RunCampaign(CampaignConfig{
			Name: "speed", Site: "ornl", Model: twin.Perovskite{},
			Budget: 12, Mode: mode, SynthKind: instrument.KindFlowReactor,
		}, func(r *CampaignReport) { rep = r })
		runUntilReport(t, n, &rep, 90*sim.Day)
		if rep == nil || rep.Err != nil {
			t.Fatalf("campaign failed: %+v", rep)
		}
		return rep
	}
	manual := runOne(OrchManual, 5)
	agent := runOne(OrchAgentVerified, 5)
	ratio := float64(manual.Makespan()) / float64(agent.Makespan())
	if ratio < 3 {
		t.Fatalf("manual/agent makespan ratio = %.2f, want >= 3 (M8)", ratio)
	}
}

func TestCampaignKnowledgeReuseAcrossSites(t *testing.T) {
	n := buildTestbed(t, 6, false, true)
	defer n.Stop()
	waitDiscovery(t, n)
	// First campaign at ornl gathers knowledge.
	var rep1 *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name: "donor", Site: "ornl", Model: twin.Perovskite{},
		Budget: 15, Mode: OrchAgentVerified,
		SynthKind: instrument.KindFlowReactor, UseKnowledge: true,
	}, func(r *CampaignReport) { rep1 = r })
	runUntilReport(t, n, &rep1, 30*sim.Day)
	if rep1 == nil || rep1.Err != nil {
		t.Fatalf("donor failed: %+v", rep1)
	}
	// anl's base should have received observations.
	pts, _ := n.Site("anl").Knowledge.Observations("perovskite")
	if len(pts) == 0 {
		t.Fatal("knowledge did not propagate to anl")
	}
	// Second campaign at anl starts warm.
	var rep2 *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name: "warm", Site: "anl", Model: twin.Perovskite{},
		Budget: 10, Mode: OrchAgentVerified,
		SynthKind: instrument.KindFlowReactor, UseKnowledge: true,
	}, func(r *CampaignReport) { rep2 = r })
	runUntilReport(t, n, &rep2, 60*sim.Day)
	if rep2 == nil || rep2.Err != nil {
		t.Fatalf("warm campaign failed: %+v", rep2)
	}
	if rep2.BestValue < rep1.BestValue*0.8 {
		t.Fatalf("warm campaign best %v should approach donor best %v", rep2.BestValue, rep1.BestValue)
	}
}

func TestCampaignTargetStopsEarly(t *testing.T) {
	n := buildTestbed(t, 7, false, false)
	defer n.Stop()
	waitDiscovery(t, n)
	var rep *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name: "target", Site: "ornl", Model: twin.Perovskite{},
		Budget: 200, Target: 0.3, Mode: OrchAgentVerified,
		SynthKind: instrument.KindFlowReactor,
	}, func(r *CampaignReport) { rep = r })
	runUntilReport(t, n, &rep, 120*sim.Day)
	if rep == nil {
		t.Fatal("campaign never finished")
	}
	if rep.BestValue < 0.3 {
		t.Fatalf("stopped below target: %v", rep.BestValue)
	}
	if rep.Executed >= 200 {
		t.Fatal("campaign did not stop early despite reaching target")
	}
}

func TestCampaignNoInstrumentErrorSerial(t *testing.T) {
	n := buildTestbed(t, 30, false, false)
	defer n.Stop()
	waitDiscovery(t, n)
	var rep *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name: "ghost-serial", Site: "ornl", Model: twin.Perovskite{},
		Budget: 5, Mode: OrchAgentVerified, SynthKind: "_ghost._aisle",
	}, func(r *CampaignReport) { rep = r })
	if err := n.RunFor(sim.Day); err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("campaign never reported")
	}
	if !errors.Is(rep.Err, ErrNoInstrument) {
		t.Fatalf("err = %v, want ErrNoInstrument", rep.Err)
	}
}

func TestCampaignNoInstrumentErrorParallel(t *testing.T) {
	n := buildTestbed(t, 31, false, false)
	defer n.Stop()
	waitDiscovery(t, n)
	var rep *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name: "ghost-par", Site: "ornl", Model: twin.Perovskite{},
		Budget: 5, Mode: OrchAgentVerified, SynthKind: "_ghost._aisle",
		Parallelism: 4,
	}, func(r *CampaignReport) { rep = r })
	if err := n.RunFor(sim.Day); err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("campaign never reported")
	}
	if !errors.Is(rep.Err, ErrNoInstrument) {
		t.Fatalf("err = %v, want ErrNoInstrument", rep.Err)
	}
}

func TestFindInstrumentFiltering(t *testing.T) {
	n := buildTestbed(t, 32, false, false)
	defer n.Stop()
	s := n.Site("ornl")
	// Two records of one kind with different capability levels exercise
	// both the floor filter and the preference maximization.
	for name, speed := range map[string]float64{"slow": 5, "fast": 50} {
		s.Registry.Register(discovery.Record{
			Instance:     "ornl/" + name,
			Type:         "_probe._aisle",
			Addr:         bus.Address{Site: "ornl", Name: "instr/" + name},
			Capabilities: map[string]float64{"speed": speed},
		})
	}

	if _, ok := s.FindInstrument("_probe._aisle", map[string]float64{"speed": 100}, ""); ok {
		t.Fatal("capability floor above every instrument must not match")
	}
	rec, ok := s.FindInstrument("_probe._aisle", map[string]float64{"speed": 10}, "")
	if !ok || rec.Instance != "ornl/fast" {
		t.Fatalf("floor 10 matched %v (%v), want ornl/fast", rec.Instance, ok)
	}
	rec, ok = s.FindInstrument("_probe._aisle", nil, "speed")
	if !ok || rec.Instance != "ornl/fast" {
		t.Fatalf("prefer=speed picked %v, want ornl/fast", rec.Instance)
	}
	if _, ok := s.FindInstrument("_nothere._aisle", nil, ""); ok {
		t.Fatal("unknown kind must not match")
	}
}

func TestCampaignParallelCompletesBudget(t *testing.T) {
	n := buildTestbed(t, 33, true, true)
	defer n.Stop()
	waitDiscovery(t, n)
	var rep *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name: "par", Site: "ornl", Model: twin.Perovskite{},
		Budget: 20, Mode: OrchAgentVerified,
		SynthKind: instrument.KindFlowReactor, UseKnowledge: true,
		Parallelism: 4,
	}, func(r *CampaignReport) { rep = r })
	runUntilReport(t, n, &rep, 30*sim.Day)
	if rep == nil {
		t.Fatal("parallel campaign never finished")
	}
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Executed != 20 {
		t.Fatalf("executed = %d, want exactly the budget", rep.Executed)
	}
	if rep.BestValue <= 0.1 {
		t.Fatalf("best = %v, optimizer made no progress", rep.BestValue)
	}
	if n.Sched.InFlight() != 0 || n.Sched.QueueDepth() != 0 {
		t.Fatalf("scheduler not drained: %d in flight, %d queued",
			n.Sched.InFlight(), n.Sched.QueueDepth())
	}
}

func TestCampaignParallelFasterThanSerial(t *testing.T) {
	runOne := func(par int) *CampaignReport {
		n := buildTestbed(t, 34, false, false)
		defer n.Stop()
		waitDiscovery(t, n)
		var rep *CampaignReport
		n.RunCampaign(CampaignConfig{
			Name: "pipeline", Site: "ornl", Model: twin.Perovskite{},
			Budget: 12, Mode: OrchAgentVerified,
			SynthKind: instrument.KindFlowReactor, Parallelism: par,
		}, func(r *CampaignReport) { rep = r })
		runUntilReport(t, n, &rep, 30*sim.Day)
		if rep == nil || rep.Err != nil {
			t.Fatalf("campaign (par=%d) failed: %+v", par, rep)
		}
		return rep
	}
	serial := runOne(1)
	batched := runOne(8)
	ratio := float64(serial.Makespan()) / float64(batched.Makespan())
	if ratio < 2 {
		t.Fatalf("parallel speedup = %.2fx (serial %v vs batched %v), want >= 2x",
			ratio, serial.Makespan(), batched.Makespan())
	}
}

func TestCampaignUnknownKind(t *testing.T) {
	n := buildTestbed(t, 8, false, false)
	defer n.Stop()
	var rep *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name: "bad", Site: "ornl", Model: twin.Perovskite{},
		Budget: 5, Mode: OrchAgentVerified, SynthKind: "_ghost._aisle",
	}, func(r *CampaignReport) { rep = r })
	if err := n.RunFor(sim.Day); err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Err == nil {
		t.Fatal("campaign with no instruments should fail")
	}
}

func TestCampaignWithCharacterization(t *testing.T) {
	n := buildTestbed(t, 9, false, false)
	defer n.Stop()
	waitDiscovery(t, n)
	var plain, withChar *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name: "plain", Site: "ornl", Model: twin.Perovskite{},
		Budget: 8, Mode: OrchAgentVerified, SynthKind: instrument.KindFlowReactor,
	}, func(r *CampaignReport) { plain = r })
	runUntilReport(t, n, &plain, 10*sim.Day)
	n.RunCampaign(CampaignConfig{
		Name: "char", Site: "ornl", Model: twin.Perovskite{},
		Budget: 8, Mode: OrchAgentVerified, SynthKind: instrument.KindFlowReactor,
		CharacterizeKind: instrument.KindSpectrometer,
	}, func(r *CampaignReport) { withChar = r })
	runUntilReport(t, n, &withChar, 20*sim.Day)
	if plain == nil || withChar == nil {
		t.Fatal("campaigns incomplete")
	}
	if withChar.InstrumentTime <= plain.InstrumentTime {
		t.Fatal("characterization should add instrument time")
	}
}

func TestProvenanceRecorded(t *testing.T) {
	n := buildTestbed(t, 10, false, false)
	defer n.Stop()
	waitDiscovery(t, n)
	var rep *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name: "prov", Site: "ornl", Model: twin.Perovskite{},
		Budget: 5, Mode: OrchAgentVerified, SynthKind: instrument.KindFlowReactor,
	}, func(r *CampaignReport) { rep = r })
	runUntilReport(t, n, &rep, 10*sim.Day)
	if rep == nil {
		t.Fatal("campaign incomplete")
	}
	if n.Mesh.Prov.Entities() < 5 {
		t.Fatalf("provenance entities = %d, want >= 5", n.Mesh.Prov.Entities())
	}
	if err := n.Mesh.Prov.Validate(); err != nil {
		t.Fatal(err)
	}
}
