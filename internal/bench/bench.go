// Package bench is the unified schema behind every checked-in BENCH_*.json
// artifact and the aisle-bench recorders that write them.
//
// Before this package each recorder (-gpbench, -tracebench, -chaosbench,
// -obsbench) invented its own ad-hoc JSON shape, so nothing could compare
// two artifacts, and "did this PR regress the macro?" was a manual diff.
// A Report is now a flat, self-describing list of metric groups:
//
//	Report{Schema: "aisle/bench/v2", Name: "profile",
//	    Groups: []Group{{Name: "enabled", Metrics: []Metric{
//	        {Name: "ns_per_op", Value: 1.7e8, Unit: "ns", Better: Lower, Noise: 0.25},
//	        {Name: "virtual_makespan_s", Value: 4381.11, Unit: "s", Better: Equal},
//	    }}}}
//
// Every metric carries its own comparison direction (Better) and noise
// bounds (Noise relative, AbsNoise absolute), so Diff can judge any pair
// of same-named reports without workload-specific knowledge: wall times
// tolerate scheduler jitter, virtual makespans must match bit-exactly,
// counters must not shrink. Write is byte-deterministic (fixed field
// order, sorted maps, two-space indent, trailing newline), which makes
// "Load then Write reproduces the checked-in file" a round-trip test and
// keeps git diffs of regenerated artifacts reviewable.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Schema is the artifact version every Report written by this package
// carries. v1 was the per-recorder ad-hoc era; v2 is the unified shape.
const Schema = "aisle/bench/v2"

// Comparison directions for Metric.Better.
const (
	// Lower means smaller is better (wall time, allocations).
	Lower = "lower"
	// Higher means larger is better (completion rate, coverage).
	Higher = "higher"
	// Equal means the value must reproduce exactly up to AbsNoise —
	// the direction for determinism gates like virtual makespans.
	Equal = "equal"
)

// Metric is one measured value with its own regression policy.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// Better is Lower, Higher, or Equal; empty marks the metric
	// informational and Diff never fails on it.
	Better string `json:"better,omitempty"`
	// Noise is the tolerated relative drift (0.25 = 25%) in the worse
	// direction before Diff declares a regression.
	Noise float64 `json:"noise,omitempty"`
	// AbsNoise is the tolerated absolute drift, applied on top of Noise.
	// An Equal metric with AbsNoise 0 must reproduce bit-exactly.
	AbsNoise float64 `json:"abs_noise,omitempty"`
}

// Group is a named set of metrics — a mode ("disabled", "enabled"), an
// engine generation ("baseline", "current"), or a chaos-matrix cell.
type Group struct {
	Name    string   `json:"name"`
	Note    string   `json:"note,omitempty"`
	Metrics []Metric `json:"metrics"`
}

// Report is one BENCH_*.json artifact.
type Report struct {
	Schema string `json:"schema"`
	// Name identifies the suite ("optimize", "trace", "chaos", "obs",
	// "profile"); Diff refuses to compare reports with different names.
	Name       string `json:"name"`
	Machine    string `json:"machine,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	// Workload pins the benchmark shape (campaign counts, budgets,
	// iteration counts) so a diff across different workloads is visible.
	Workload map[string]float64 `json:"workload,omitempty"`
	Groups   []Group            `json:"groups"`
}

// Group returns the named group, or nil.
func (r *Report) Group(name string) *Group {
	for i := range r.Groups {
		if r.Groups[i].Name == name {
			return &r.Groups[i]
		}
	}
	return nil
}

// Metric returns the named metric in this group, or nil.
func (g *Group) Metric(name string) *Metric {
	if g == nil {
		return nil
	}
	for i := range g.Metrics {
		if g.Metrics[i].Name == name {
			return &g.Metrics[i]
		}
	}
	return nil
}

// Add appends a metric and returns the group for chaining.
func (g *Group) Add(m Metric) *Group {
	g.Metrics = append(g.Metrics, m)
	return g
}

// AddGroup appends an empty group and returns it for population.
func (r *Report) AddGroup(name, note string) *Group {
	r.Groups = append(r.Groups, Group{Name: name, Note: note})
	return &r.Groups[len(r.Groups)-1]
}

// normalize sorts what has no semantic order so Write is deterministic
// regardless of insertion order: groups by name, metrics by name within
// each group. Workload maps are sorted by encoding/json itself.
func (r *Report) normalize() {
	sort.Slice(r.Groups, func(i, j int) bool { return r.Groups[i].Name < r.Groups[j].Name })
	for i := range r.Groups {
		ms := r.Groups[i].Metrics
		sort.Slice(ms, func(a, b int) bool { return ms[a].Name < ms[b].Name })
	}
}

// Write emits the canonical byte-deterministic encoding: normalized
// order, two-space indent, trailing newline.
func (r *Report) Write(w io.Writer) error {
	r.Schema = Schema
	r.normalize()
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// WriteFile writes the canonical encoding to path.
func (r *Report) WriteFile(path string) error {
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// Load reads and validates one artifact. Unknown fields are an error:
// an artifact that needs more structure should grow the schema, not
// smuggle shapes Diff cannot see.
func Load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(raw, path)
}

// Parse decodes one artifact from raw bytes; name is used in errors.
func Parse(raw []byte, name string) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", name, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", name, r.Schema, Schema)
	}
	if r.Name == "" {
		return nil, fmt.Errorf("bench: %s: missing suite name", name)
	}
	return &r, nil
}
