package bench

import (
	"fmt"
	"math"
	"strings"
)

// Delta statuses, worst first.
const (
	// StatusRegressed marks a metric outside its noise bound in the
	// worse direction — the one status that fails the diff.
	StatusRegressed = "regressed"
	// StatusRemoved marks a gated metric present in old but absent in
	// new; losing a gate silently is treated as a regression.
	StatusRemoved = "removed"
	// StatusImproved marks a metric outside its noise bound in the
	// better direction.
	StatusImproved = "improved"
	// StatusAdded marks a metric only the new report has.
	StatusAdded = "added"
	// StatusOK marks a metric within its noise bound.
	StatusOK = "ok"
)

// Delta is one metric's old-vs-new judgement.
type Delta struct {
	Group  string  `json:"group"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Pct is the relative change in percent (0 when Old == 0).
	Pct    float64 `json:"pct"`
	Status string  `json:"status"`
	// Bound restates the tolerance the judgement used, for the report.
	Bound string `json:"bound,omitempty"`
}

// DiffReport is the full judgement of new against old.
type DiffReport struct {
	Suite  string  `json:"suite"`
	Deltas []Delta `json:"deltas"`
	// Regressions counts deltas with StatusRegressed or StatusRemoved.
	Regressions int `json:"regressions"`
}

// Failed reports whether any gated metric regressed or disappeared.
func (d *DiffReport) Failed() bool { return d.Regressions > 0 }

// Diff judges new against old metric by metric, using each metric's own
// comparison direction and noise bounds as declared in the OLD report —
// the checked-in baseline owns the gate, so a PR cannot loosen a bound
// in the same artifact it regresses. Reports must be the same suite.
func Diff(old, new *Report) (*DiffReport, error) {
	if old.Name != new.Name {
		return nil, fmt.Errorf("bench: diffing different suites: %q vs %q", old.Name, new.Name)
	}
	d := &DiffReport{Suite: old.Name}
	for _, og := range old.Groups {
		ng := new.Group(og.Name)
		for _, om := range og.Metrics {
			nm := ng.Metric(om.Name)
			if nm == nil {
				st := StatusRemoved
				if om.Better == "" {
					st = StatusOK // informational metrics may come and go
				}
				d.add(Delta{Group: og.Name, Metric: om.Name, Old: om.Value,
					New: math.NaN(), Status: st})
				continue
			}
			d.add(judge(og.Name, om, nm.Value))
		}
	}
	for _, ng := range new.Groups {
		og := old.Group(ng.Name)
		for _, nm := range ng.Metrics {
			if og.Metric(nm.Name) == nil {
				d.add(Delta{Group: ng.Name, Metric: nm.Name, Old: math.NaN(),
					New: nm.Value, Status: StatusAdded})
			}
		}
	}
	return d, nil
}

func (d *DiffReport) add(delta Delta) {
	d.Deltas = append(d.Deltas, delta)
	if delta.Status == StatusRegressed || delta.Status == StatusRemoved {
		d.Regressions++
	}
}

// judge compares one new value against the old metric's declared policy.
func judge(group string, om Metric, nv float64) Delta {
	delta := Delta{Group: group, Metric: om.Name, Old: om.Value, New: nv}
	if om.Value != 0 {
		delta.Pct = 100 * (nv - om.Value) / math.Abs(om.Value)
	}
	if om.Better != "" {
		delta.Bound = fmt.Sprintf("%s ±%.0f%%+%g", om.Better, om.Noise*100, om.AbsNoise)
	}
	slack := om.Noise*math.Abs(om.Value) + om.AbsNoise
	switch om.Better {
	case Lower:
		switch {
		case nv > om.Value+slack:
			delta.Status = StatusRegressed
		case nv < om.Value-slack:
			delta.Status = StatusImproved
		default:
			delta.Status = StatusOK
		}
	case Higher:
		switch {
		case nv < om.Value-slack:
			delta.Status = StatusRegressed
		case nv > om.Value+slack:
			delta.Status = StatusImproved
		default:
			delta.Status = StatusOK
		}
	case Equal:
		if math.Abs(nv-om.Value) > om.AbsNoise {
			delta.Status = StatusRegressed
		} else {
			delta.Status = StatusOK
		}
	default:
		delta.Status = StatusOK
	}
	return delta
}

// Render formats the judgement as an aligned table with a verdict line,
// regressions first so CI logs lead with what failed.
func (d *DiffReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench diff: suite %s\n", d.Suite)
	order := []string{StatusRegressed, StatusRemoved, StatusImproved, StatusAdded, StatusOK}
	for _, want := range order {
		for _, dl := range d.Deltas {
			if dl.Status != want {
				continue
			}
			switch dl.Status {
			case StatusRemoved:
				fmt.Fprintf(&b, "  %-9s %s/%s (was %g)\n", dl.Status, dl.Group, dl.Metric, dl.Old)
			case StatusAdded:
				fmt.Fprintf(&b, "  %-9s %s/%s = %g\n", dl.Status, dl.Group, dl.Metric, dl.New)
			default:
				fmt.Fprintf(&b, "  %-9s %s/%s  %g -> %g (%+.2f%%)", dl.Status, dl.Group, dl.Metric,
					dl.Old, dl.New, dl.Pct)
				if dl.Bound != "" {
					fmt.Fprintf(&b, "  [%s]", dl.Bound)
				}
				b.WriteByte('\n')
			}
		}
	}
	if d.Failed() {
		fmt.Fprintf(&b, "FAIL: %d metric(s) regressed beyond their noise bounds\n", d.Regressions)
	} else {
		fmt.Fprintf(&b, "PASS: %d metric(s) within bounds\n", len(d.Deltas))
	}
	return b.String()
}
