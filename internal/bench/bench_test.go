package bench

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func sample() *Report {
	r := &Report{Name: "sample", GoMaxProcs: 1,
		Workload: map[string]float64{"campaigns": 200, "budget": 6}}
	r.AddGroup("enabled", "profiler on").
		Add(Metric{Name: "ns_per_op", Value: 2e8, Unit: "ns", Better: Lower, Noise: 0.25}).
		Add(Metric{Name: "virtual_makespan_s", Value: 4381.113353954, Unit: "s", Better: Equal}).
		Add(Metric{Name: "coverage", Value: 0.97, Better: Higher, AbsNoise: 0.01}).
		Add(Metric{Name: "spans", Value: 512})
	r.AddGroup("disabled", "").
		Add(Metric{Name: "ns_per_op", Value: 1.8e8, Unit: "ns", Better: Lower, Noise: 0.25})
	return r
}

func clone(t *testing.T, r *Report) *Report {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := Parse(buf.Bytes(), "clone")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWriteDeterministic: insertion order must not leak into the bytes.
func TestWriteDeterministic(t *testing.T) {
	a := sample()
	b := &Report{Name: "sample", GoMaxProcs: 1,
		Workload: map[string]float64{"budget": 6, "campaigns": 200}}
	// Reverse group and metric insertion order.
	b.AddGroup("disabled", "").
		Add(Metric{Name: "ns_per_op", Value: 1.8e8, Unit: "ns", Better: Lower, Noise: 0.25})
	b.AddGroup("enabled", "profiler on").
		Add(Metric{Name: "spans", Value: 512}).
		Add(Metric{Name: "coverage", Value: 0.97, Better: Higher, AbsNoise: 0.01}).
		Add(Metric{Name: "virtual_makespan_s", Value: 4381.113353954, Unit: "s", Better: Equal}).
		Add(Metric{Name: "ns_per_op", Value: 2e8, Unit: "ns", Better: Lower, Noise: 0.25})
	var ba, bb bytes.Buffer
	if err := a.Write(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("insertion order changed the encoding:\n%s\nvs\n%s", ba.String(), bb.String())
	}
}

// TestRoundTripCheckedInArtifacts: every BENCH_*.json in the repo root
// must load under the unified schema and re-encode byte-identically —
// the proof each artifact was written by this package's canonical Write.
func TestRoundTripCheckedInArtifacts(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no checked-in BENCH_*.json artifacts found")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Parse(raw, f)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := r.Write(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(raw, buf.Bytes()) {
				t.Fatalf("%s does not round-trip through the canonical encoder; regenerate it with aisle-bench", f)
			}
		})
	}
}

// TestDiffIdenticalPasses: a report diffed against itself is all-ok.
func TestDiffIdenticalPasses(t *testing.T) {
	old := sample()
	d, err := Diff(old, clone(t, old))
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed() {
		t.Fatalf("identical reports failed the diff:\n%s", d.Render())
	}
	for _, dl := range d.Deltas {
		if dl.Status != StatusOK {
			t.Fatalf("identical metric %s/%s judged %s", dl.Group, dl.Metric, dl.Status)
		}
	}
}

// TestDiffFlagsSyntheticRegression: drift beyond the declared noise
// bound fails, drift within it passes.
func TestDiffFlagsSyntheticRegression(t *testing.T) {
	old := sample()
	// +30% wall time against a 25% noise bound: regression.
	worse := clone(t, old)
	worse.Group("enabled").Metric("ns_per_op").Value = 2e8 * 1.30
	d, err := Diff(old, worse)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Failed() {
		t.Fatalf("30%% wall regression passed a 25%% bound:\n%s", d.Render())
	}
	// +20% stays inside the bound.
	within := clone(t, old)
	within.Group("enabled").Metric("ns_per_op").Value = 2e8 * 1.20
	if d, err = Diff(old, within); err != nil || d.Failed() {
		t.Fatalf("20%% drift failed a 25%% bound (err %v):\n%s", err, d.Render())
	}
	// -30% is an improvement, not a failure.
	better := clone(t, old)
	better.Group("enabled").Metric("ns_per_op").Value = 2e8 * 0.70
	d, err = Diff(old, better)
	if err != nil || d.Failed() {
		t.Fatalf("improvement failed the diff (err %v):\n%s", err, d.Render())
	}
	found := false
	for _, dl := range d.Deltas {
		if dl.Metric == "ns_per_op" && dl.Group == "enabled" {
			found = dl.Status == StatusImproved
		}
	}
	if !found {
		t.Fatalf("-30%% not judged improved:\n%s", d.Render())
	}
}

// TestDiffEqualMetricIsExact: Better=equal with AbsNoise 0 is a
// bit-exactness gate — any drift at all regresses.
func TestDiffEqualMetricIsExact(t *testing.T) {
	old := sample()
	drift := clone(t, old)
	drift.Group("enabled").Metric("virtual_makespan_s").Value += 1e-9
	d, err := Diff(old, drift)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Failed() {
		t.Fatalf("1ns virtual drift passed an exactness gate:\n%s", d.Render())
	}
}

// TestDiffRemovedGateFails: silently dropping a gated metric is a
// regression; dropping an informational one is not.
func TestDiffRemovedGateFails(t *testing.T) {
	old := sample()
	stripped := clone(t, old)
	g := stripped.Group("enabled")
	kept := g.Metrics[:0]
	for _, m := range g.Metrics {
		if m.Name != "coverage" && m.Name != "spans" {
			kept = append(kept, m)
		}
	}
	g.Metrics = kept
	d, err := Diff(old, stripped)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 1 {
		t.Fatalf("want exactly the gated removal flagged, got %d:\n%s", d.Regressions, d.Render())
	}
}

// TestDiffHigherBetter: the Higher direction regresses downward only.
func TestDiffHigherBetter(t *testing.T) {
	old := sample()
	worse := clone(t, old)
	worse.Group("enabled").Metric("coverage").Value = 0.90 // 0.97 - 0.01 abs bound
	if d, _ := Diff(old, worse); !d.Failed() {
		t.Fatalf("coverage drop passed:\n%s", d.Render())
	}
	better := clone(t, old)
	better.Group("enabled").Metric("coverage").Value = 1.0
	if d, _ := Diff(old, better); d.Failed() {
		t.Fatalf("coverage gain failed:\n%s", d.Render())
	}
}

// TestDiffRejectsMismatchedSuites: comparing different suites is an
// error, not a quiet empty diff.
func TestDiffRejectsMismatchedSuites(t *testing.T) {
	a := sample()
	b := clone(t, a)
	b.Name = "other"
	if _, err := Diff(a, b); err == nil {
		t.Fatal("mismatched suites diffed without error")
	}
}

// TestParseRejectsForeignShapes: unknown fields and wrong schemas fail
// loudly instead of decoding to half-empty reports.
func TestParseRejectsForeignShapes(t *testing.T) {
	if _, err := Parse([]byte(`{"schema":"aisle/bench-obs/v1","name":"obs","groups":[]}`), "x"); err == nil {
		t.Fatal("v1 schema accepted")
	}
	if _, err := Parse([]byte(`{"schema":"aisle/bench/v2","name":"x","groups":[],"extra":1}`), "x"); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"schema":"aisle/bench/v2","groups":[]}`), "x"); err == nil {
		t.Fatal("missing suite name accepted")
	}
}

// TestRenderVerdictLines: the rendered table ends in PASS/FAIL so CI
// logs are greppable.
func TestRenderVerdictLines(t *testing.T) {
	old := sample()
	d, err := Diff(old, clone(t, old))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Render(); !bytes.Contains([]byte(got), []byte("PASS:")) {
		t.Fatalf("no PASS verdict in:\n%s", got)
	}
	worse := clone(t, old)
	worse.Group("enabled").Metric("ns_per_op").Value = math.Inf(1)
	d, err = Diff(old, worse)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Render(); !bytes.Contains([]byte(got), []byte("FAIL:")) {
		t.Fatalf("no FAIL verdict in:\n%s", got)
	}
}
