package knowledge

import (
	"testing"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

var sites = []netsim.SiteID{"ornl", "anl", "slac"}

func testFed(t *testing.T, shared bool) (*sim.Engine, *netsim.Network, *Federation) {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(6))
	for _, s := range sites {
		net.AddSite(s).Firewall.AllowAll()
	}
	net.FullMesh(sites, netsim.Link{Latency: 20 * sim.Millisecond})
	fab := bus.NewFabric(net)
	return eng, net, NewFederation(fab, sites, shared)
}

func pt(t float64) param.Point { return param.Point{"temperature": t, "ratio": 0.5} }

func TestSharedPropagation(t *testing.T) {
	eng, _, fed := testFed(t, true)
	fed.Base("ornl").AddObservation("perovskite", pt(150), 0.8)
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if v, ok := fed.Base(s).HasObservation("perovskite", pt(150)); !ok || v != 0.8 {
			t.Fatalf("observation not visible at %s (ok=%v v=%v)", s, ok, v)
		}
	}
	if !fed.Converged() {
		t.Fatal("federation should be converged")
	}
}

func TestIsolatedStaysLocal(t *testing.T) {
	eng, _, fed := testFed(t, false)
	fed.Base("ornl").AddObservation("perovskite", pt(150), 0.8)
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := fed.Base("anl").HasObservation("perovskite", pt(150)); ok {
		t.Fatal("isolated mode leaked knowledge")
	}
	if _, ok := fed.Base("ornl").HasObservation("perovskite", pt(150)); !ok {
		t.Fatal("local observation missing")
	}
}

func TestObservationsSortedAndDomainScoped(t *testing.T) {
	eng, _, fed := testFed(t, true)
	b := fed.Base("ornl")
	b.AddObservation("perovskite", pt(150), 0.8)
	b.AddObservation("perovskite", pt(120), 0.5)
	b.AddObservation("alloy", param.Point{"frac_a": 0.5}, 9.0)
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	points, values := fed.Base("anl").Observations("perovskite")
	if len(points) != 2 || len(values) != 2 {
		t.Fatalf("got %d perovskite observations", len(points))
	}
	// Deterministic order (sorted by key).
	a1, _ := fed.Base("slac").Observations("perovskite")
	if a1[0].Key() != points[0].Key() {
		t.Fatal("observation order differs across sites")
	}
}

func TestVectorClockDominance(t *testing.T) {
	a := VectorClock{"x": 2, "y": 1}
	b := VectorClock{"x": 1, "y": 1}
	if !a.Dominates(b) {
		t.Fatal("a should dominate b")
	}
	if b.Dominates(a) {
		t.Fatal("b should not dominate a")
	}
	c := VectorClock{"x": 1, "y": 2}
	if a.Dominates(c) || c.Dominates(a) {
		t.Fatal("concurrent clocks should not dominate each other")
	}
	if a.Dominates(a.Copy()) {
		t.Fatal("equal clocks should not strictly dominate")
	}
}

func TestNewerVersionWins(t *testing.T) {
	eng, _, fed := testFed(t, true)
	b := fed.Base("ornl")
	b.AddObservation("perovskite", pt(150), 0.5)
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Re-measure the same point with a better instrument: same key, newer
	// clock.
	b.AddObservation("perovskite", pt(150), 0.82)
	if err := eng.RunUntil(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	v, ok := fed.Base("slac").HasObservation("perovskite", pt(150))
	if !ok || v != 0.82 {
		t.Fatalf("stale value at slac: %v", v)
	}
}

func TestConcurrentUpdatesResolveDeterministically(t *testing.T) {
	eng, _, fed := testFed(t, true)
	// Two sites measure the same point before seeing each other's result.
	fed.Base("ornl").AddObservation("perovskite", pt(150), 0.6)
	fed.Base("anl").AddObservation("perovskite", pt(150), 0.7)
	if err := eng.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	want, _ := fed.Base("ornl").HasObservation("perovskite", pt(150))
	if want != 0.7 {
		t.Fatalf("conflict resolution picked %v, want 0.7 (higher value)", want)
	}
	for _, s := range sites {
		v, _ := fed.Base(s).HasObservation("perovskite", pt(150))
		if v != want {
			t.Fatalf("sites disagree after conflict: %s has %v", s, v)
		}
	}
}

func TestPropagationSurvivesLoss(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(7))
	for _, s := range sites {
		net.AddSite(s).Firewall.AllowAll()
	}
	net.FullMesh(sites, netsim.Link{Latency: 20 * sim.Millisecond, Loss: 0.4})
	fab := bus.NewFabric(net)
	fed := NewFederation(fab, sites, true)
	fed.AckTimeout = 200 * sim.Millisecond
	fed.MaxAttempts = 12

	for i := 0; i < 10; i++ {
		fed.Base("ornl").AddObservation("perovskite", pt(100+float64(i)), float64(i)/10)
	}
	if err := eng.RunUntil(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if n := fed.Base(s).Size(); n != 10 {
			t.Fatalf("%s holds %d/10 insights despite at-least-once delivery", s, n)
		}
	}
}

func TestGetAndNotes(t *testing.T) {
	eng, _, fed := testFed(t, true)
	fed.Base("ornl").Add(Insight{
		Kind: KindNote, Domain: "perovskite",
		Note: "iodide-rich compositions unstable above 200C",
	})
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	ins, ok := fed.Base("anl").Get("perovskite/note/iodide-rich compositions unstable above 200C")
	if !ok {
		t.Fatal("note not propagated")
	}
	if ins.Source != "ornl" {
		t.Fatalf("source = %s", ins.Source)
	}
	if _, ok := fed.Base("anl").Get("nonexistent"); ok {
		t.Fatal("phantom insight")
	}
}

func TestQuarantineOutOfBoundsObservation(t *testing.T) {
	eng, _, fed := testFed(t, true)
	fed.Bounds = map[string]SanityBound{"perovskite": {Min: 0, Max: 1}}
	fed.Base("ornl").AddObservation("perovskite", pt(150), 5.0) // impossible PLQY
	fed.Base("ornl").AddObservation("perovskite", pt(120), 0.4) // fine
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Vetting is receiver-side: the origin keeps its own poison, the peers
	// quarantine it and never expose it to optimizers.
	for _, s := range []netsim.SiteID{"anl", "slac"} {
		if _, ok := fed.Base(s).HasObservation("perovskite", pt(150)); ok {
			t.Fatalf("%s merged an out-of-bounds observation", s)
		}
		if _, ok := fed.Base(s).HasObservation("perovskite", pt(120)); !ok {
			t.Fatalf("%s rejected a sane observation", s)
		}
		q := fed.Base(s).Quarantined()
		if len(q) != 1 || q[0].Value != 5.0 {
			t.Fatalf("%s quarantine = %+v, want the single bad insight", s, q)
		}
		_, values := fed.Base(s).Observations("perovskite")
		for _, v := range values {
			if v < 0 || v > 1 {
				t.Fatalf("%s Observations leaks quarantined value %v", s, v)
			}
		}
	}
	// Publish fans out to every subscriber including the origin's loopback,
	// so three bases vet the bad insight: anl, slac, and ornl itself.
	if got := fed.Metrics().Counter(telemetry.Key("knowledge.quarantined",
		"site", "ornl")).Value(); got != 3 {
		t.Fatalf("knowledge.quarantined{site=ornl} = %d, want 3 (one per subscriber)", got)
	}
}

func TestQuarantineOutOfSpacePoint(t *testing.T) {
	eng, _, fed := testFed(t, true)
	space := param.Space{
		{Name: "temperature", Lo: 60, Hi: 220},
		{Name: "ratio", Lo: 0, Hi: 1},
	}
	fed.Bounds = map[string]SanityBound{"perovskite": {Space: space}}
	fed.Base("ornl").AddObservation("perovskite", pt(500), 0.3) // off the envelope
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := fed.Base("anl").HasObservation("perovskite", pt(500)); ok {
		t.Fatal("out-of-space point was merged")
	}
	if q := fed.Base("anl").Quarantined(); len(q) != 1 {
		t.Fatalf("quarantine holds %d insights, want 1", len(q))
	}
}

func TestQuarantineUntrustedSource(t *testing.T) {
	eng, _, fed := testFed(t, true)
	fed.Trusted = func(at, source netsim.SiteID) bool { return source != "slac" }
	fed.Base("slac").AddObservation("perovskite", pt(150), 0.9)
	fed.Base("ornl").AddObservation("perovskite", pt(120), 0.8)
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := fed.Base("ornl").HasObservation("perovskite", pt(150)); ok {
		t.Fatal("insight from an untrusted principal was merged")
	}
	if _, ok := fed.Base("slac").HasObservation("perovskite", pt(120)); !ok {
		t.Fatal("trusted traffic should still flow to the distrusted site")
	}
	if q := fed.Base("anl").Quarantined(); len(q) != 1 || q[0].Source != "slac" {
		t.Fatalf("anl quarantine = %+v, want slac's insight", q)
	}
}

func TestQuarantineDoesNotAdvanceClock(t *testing.T) {
	eng, _, fed := testFed(t, true)
	fed.Bounds = map[string]SanityBound{"perovskite": {Min: 0, Max: 1}}
	fed.Base("ornl").AddObservation("perovskite", pt(150), 7.0)
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// A quarantined insight must be causally invisible: subsequent good
	// traffic converges exactly as if the poison never existed.
	fed.Base("ornl").AddObservation("perovskite", pt(130), 0.6)
	if err := eng.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if _, ok := fed.Base(s).HasObservation("perovskite", pt(130)); !ok {
			t.Fatalf("good observation missing at %s after a quarantine event", s)
		}
	}
	if fed.Base("anl").Size() != fed.Base("slac").Size() {
		t.Fatal("honest sites diverged")
	}
}
