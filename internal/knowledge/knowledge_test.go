package knowledge

import (
	"testing"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
)

var sites = []netsim.SiteID{"ornl", "anl", "slac"}

func testFed(t *testing.T, shared bool) (*sim.Engine, *netsim.Network, *Federation) {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(6))
	for _, s := range sites {
		net.AddSite(s).Firewall.AllowAll()
	}
	net.FullMesh(sites, netsim.Link{Latency: 20 * sim.Millisecond})
	fab := bus.NewFabric(net)
	return eng, net, NewFederation(fab, sites, shared)
}

func pt(t float64) param.Point { return param.Point{"temperature": t, "ratio": 0.5} }

func TestSharedPropagation(t *testing.T) {
	eng, _, fed := testFed(t, true)
	fed.Base("ornl").AddObservation("perovskite", pt(150), 0.8)
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if v, ok := fed.Base(s).HasObservation("perovskite", pt(150)); !ok || v != 0.8 {
			t.Fatalf("observation not visible at %s (ok=%v v=%v)", s, ok, v)
		}
	}
	if !fed.Converged() {
		t.Fatal("federation should be converged")
	}
}

func TestIsolatedStaysLocal(t *testing.T) {
	eng, _, fed := testFed(t, false)
	fed.Base("ornl").AddObservation("perovskite", pt(150), 0.8)
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := fed.Base("anl").HasObservation("perovskite", pt(150)); ok {
		t.Fatal("isolated mode leaked knowledge")
	}
	if _, ok := fed.Base("ornl").HasObservation("perovskite", pt(150)); !ok {
		t.Fatal("local observation missing")
	}
}

func TestObservationsSortedAndDomainScoped(t *testing.T) {
	eng, _, fed := testFed(t, true)
	b := fed.Base("ornl")
	b.AddObservation("perovskite", pt(150), 0.8)
	b.AddObservation("perovskite", pt(120), 0.5)
	b.AddObservation("alloy", param.Point{"frac_a": 0.5}, 9.0)
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	points, values := fed.Base("anl").Observations("perovskite")
	if len(points) != 2 || len(values) != 2 {
		t.Fatalf("got %d perovskite observations", len(points))
	}
	// Deterministic order (sorted by key).
	a1, _ := fed.Base("slac").Observations("perovskite")
	if a1[0].Key() != points[0].Key() {
		t.Fatal("observation order differs across sites")
	}
}

func TestVectorClockDominance(t *testing.T) {
	a := VectorClock{"x": 2, "y": 1}
	b := VectorClock{"x": 1, "y": 1}
	if !a.Dominates(b) {
		t.Fatal("a should dominate b")
	}
	if b.Dominates(a) {
		t.Fatal("b should not dominate a")
	}
	c := VectorClock{"x": 1, "y": 2}
	if a.Dominates(c) || c.Dominates(a) {
		t.Fatal("concurrent clocks should not dominate each other")
	}
	if a.Dominates(a.Copy()) {
		t.Fatal("equal clocks should not strictly dominate")
	}
}

func TestNewerVersionWins(t *testing.T) {
	eng, _, fed := testFed(t, true)
	b := fed.Base("ornl")
	b.AddObservation("perovskite", pt(150), 0.5)
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Re-measure the same point with a better instrument: same key, newer
	// clock.
	b.AddObservation("perovskite", pt(150), 0.82)
	if err := eng.RunUntil(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	v, ok := fed.Base("slac").HasObservation("perovskite", pt(150))
	if !ok || v != 0.82 {
		t.Fatalf("stale value at slac: %v", v)
	}
}

func TestConcurrentUpdatesResolveDeterministically(t *testing.T) {
	eng, _, fed := testFed(t, true)
	// Two sites measure the same point before seeing each other's result.
	fed.Base("ornl").AddObservation("perovskite", pt(150), 0.6)
	fed.Base("anl").AddObservation("perovskite", pt(150), 0.7)
	if err := eng.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	want, _ := fed.Base("ornl").HasObservation("perovskite", pt(150))
	if want != 0.7 {
		t.Fatalf("conflict resolution picked %v, want 0.7 (higher value)", want)
	}
	for _, s := range sites {
		v, _ := fed.Base(s).HasObservation("perovskite", pt(150))
		if v != want {
			t.Fatalf("sites disagree after conflict: %s has %v", s, v)
		}
	}
}

func TestPropagationSurvivesLoss(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(7))
	for _, s := range sites {
		net.AddSite(s).Firewall.AllowAll()
	}
	net.FullMesh(sites, netsim.Link{Latency: 20 * sim.Millisecond, Loss: 0.4})
	fab := bus.NewFabric(net)
	fed := NewFederation(fab, sites, true)
	fed.AckTimeout = 200 * sim.Millisecond
	fed.MaxAttempts = 12

	for i := 0; i < 10; i++ {
		fed.Base("ornl").AddObservation("perovskite", pt(100+float64(i)), float64(i)/10)
	}
	if err := eng.RunUntil(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if n := fed.Base(s).Size(); n != 10 {
			t.Fatalf("%s holds %d/10 insights despite at-least-once delivery", s, n)
		}
	}
}

func TestGetAndNotes(t *testing.T) {
	eng, _, fed := testFed(t, true)
	fed.Base("ornl").Add(Insight{
		Kind: KindNote, Domain: "perovskite",
		Note: "iodide-rich compositions unstable above 200C",
	})
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	ins, ok := fed.Base("anl").Get("perovskite/note/iodide-rich compositions unstable above 200C")
	if !ok {
		t.Fatal("note not propagated")
	}
	if ins.Source != "ornl" {
		t.Fatalf("source = %s", ins.Source)
	}
	if _, ok := fed.Base("anl").Get("nonexistent"); ok {
		t.Fatal("phantom insight")
	}
}
