// Package knowledge implements milestone M9's distributed, real-time
// knowledge integration: per-site knowledge bases holding experimental
// insights (observations, pruned regions, notes) that propagate across
// facilities through the bus with at-least-once delivery, merge under
// vector-clock causality, and seed optimizers at other sites so the
// federation avoids repeating experiments — the mechanism behind the
// "reduce required experiments by >30%" claim.
package knowledge

import (
	"fmt"
	"sort"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
	"github.com/aisle-sim/aisle/internal/trace"
)

// Kind classifies insights.
type Kind string

// Insight kinds.
const (
	KindObservation Kind = "observation" // completed experiment: point -> value
	KindRegion      Kind = "region"      // pruned/promising region note
	KindNote        Kind = "note"        // free-form grounded finding
)

// VectorClock tracks causal history per site.
type VectorClock map[netsim.SiteID]uint64

// Copy clones the clock.
func (v VectorClock) Copy() VectorClock {
	c := make(VectorClock, len(v))
	for k, t := range v {
		c[k] = t
	}
	return c
}

// Dominates reports whether v >= o componentwise with at least one strict.
func (v VectorClock) Dominates(o VectorClock) bool {
	strict := false
	for k, t := range o {
		if v[k] < t {
			return false
		}
		if v[k] > t {
			strict = true
		}
	}
	for k := range v {
		if _, ok := o[k]; !ok && v[k] > 0 {
			strict = true
		}
	}
	return strict
}

// Insight is one shareable finding.
type Insight struct {
	Key    string // canonical identity, e.g. "perovskite/obs/temp=150,..."
	Kind   Kind
	Domain string // model/campaign domain ("perovskite")
	Point  param.Point
	Value  float64
	Note   string
	Source netsim.SiteID
	Clock  VectorClock
	At     sim.Time
	// Trace is the causal context of the experiment that produced the
	// insight; each receiving site records its merge as a knowledge.sync
	// span against it.
	Trace trace.Context
}

// SanityBound is the per-domain vetting contract for incoming insights: a
// remote observation outside the domain's parameter space or value range is
// quarantined instead of merged, which is what contains a byzantine site
// publishing fabricated results. The zero bound accepts everything.
type SanityBound struct {
	// Space, when non-nil, validates observation points: an observation
	// whose point fails Space.Validate is quarantined.
	Space param.Space
	// Min/Max bound observation values when Max > Min.
	Min, Max float64
}

// Base is one site's knowledge store.
type Base struct {
	site     netsim.SiteID
	fed      *Federation
	insights map[string]*Insight
	clock    VectorClock
	// quarantined holds vetting rejects by key, kept out of insights so
	// Observations (the optimizer seed) and HasObservation never see them.
	quarantined map[string]*Insight
}

// Federation wires per-site bases together over the bus.
type Federation struct {
	fabric  *bus.Fabric
	eng     *sim.Engine
	metrics *telemetry.Registry
	syncLag *telemetry.Histogram // knowledge.sync_lag_s: publish -> merge
	bases   map[netsim.SiteID]*Base
	prof    *prof.Profiler

	// Shared: when false, Add stays site-local (the E3 isolated baseline).
	Shared bool
	// AckTimeout/MaxAttempts govern at-least-once propagation.
	AckTimeout  sim.Time
	MaxAttempts int

	// Bounds maps domain -> sanity bound; incoming insights for a bounded
	// domain that fail the bound are quarantined instead of merged. Domains
	// without an entry merge unvetted (the pre-chaos behaviour).
	Bounds map[string]SanityBound
	// Trusted, when set, vets the claimed source of every incoming insight
	// at the receiving site; a false verdict quarantines the insight with
	// reason "untrusted-source". Typically backed by security.Federation
	// trust state.
	Trusted func(at, source netsim.SiteID) bool
}

// NewFederation creates bases at the given sites, wired for sharing.
func NewFederation(fabric *bus.Fabric, sites []netsim.SiteID, shared bool) *Federation {
	f := &Federation{
		fabric:      fabric,
		eng:         fabric.Engine(),
		metrics:     telemetry.NewRegistry(),
		bases:       make(map[netsim.SiteID]*Base),
		Shared:      shared,
		AckTimeout:  2 * sim.Second,
		MaxAttempts: 5,
	}
	f.syncLag = f.metrics.Histogram("knowledge.sync_lag_s")
	for _, s := range sites {
		b := &Base{site: s, fed: f, insights: make(map[string]*Insight), clock: VectorClock{}}
		f.bases[s] = b
	}
	if shared {
		for _, s := range sites {
			b := f.bases[s]
			fabric.Subscribe(bus.Address{Site: s, Name: "knowledge"}, "knowledge",
				bus.AtLeastOnce, func(env *bus.Envelope) {
					if ins, ok := env.Payload.(*Insight); ok {
						if reason := f.vet(b.site, ins); reason != "" {
							b.quarantine(ins, reason)
							return
						}
						if ins.Trace.Enabled() {
							// One sync span per receiving site: publish
							// instant -> merge instant, covering the WAN
							// propagation of the insight.
							sp, cc := ins.Trace.Start(ins.At, string(b.site),
								trace.KindInsight, string(ins.Kind))
							sp.SetStr("from", string(ins.Source))
							cc.Finish(&sp, f.eng.Now())
						}
						// Publish -> merge lag, the SLO engine's sync-health
						// signal; retransmissions under loss stretch it.
						lag := f.eng.Now() - ins.At
						f.syncLag.Observe(lag.Seconds())
						r := f.prof.Enter(prof.SiteKnowledgeMerge)
						f.prof.Sample(prof.SiteKnowledgeMerge, lag.Std(), ins.Trace.TraceID())
						b.merge(ins)
						r.End()
					}
				})
		}
	}
	return f
}

// vet inspects an incoming insight before merge and returns the quarantine
// reason, or "" to admit it. Vetting is receiver-side: each site defends its
// own base, so a byzantine site poisons only itself.
func (f *Federation) vet(at netsim.SiteID, ins *Insight) string {
	if f.Trusted != nil && !f.Trusted(at, ins.Source) {
		return "untrusted-source"
	}
	sb, ok := f.Bounds[ins.Domain]
	if !ok || ins.Kind != KindObservation {
		return ""
	}
	if sb.Space != nil && sb.Space.Validate(ins.Point) != nil {
		return "out-of-space"
	}
	if sb.Max > sb.Min && (ins.Value < sb.Min || ins.Value > sb.Max) {
		return "out-of-bounds"
	}
	return ""
}

// quarantine records a rejected insight outside the merged store. The
// receiving clock does NOT advance: a quarantined insight is causally
// invisible, exactly as if the message were dropped on the wire.
func (b *Base) quarantine(ins *Insight, reason string) {
	if b.quarantined == nil {
		b.quarantined = make(map[string]*Insight)
	}
	c := *ins
	b.quarantined[ins.Key] = &c
	b.fed.metrics.Counter(telemetry.Key("knowledge.quarantined",
		"site", string(ins.Source))).Inc()
	if ins.Trace.Enabled() {
		sp, cc := ins.Trace.Start(ins.At, string(b.site), trace.KindQuarantine, string(ins.Kind))
		sp.SetStr("from", string(ins.Source))
		sp.SetStr("reason", reason)
		cc.Finish(&sp, b.fed.eng.Now())
	}
}

// Quarantined returns this base's vetting rejects, sorted by key.
func (b *Base) Quarantined() []Insight {
	keys := make([]string, 0, len(b.quarantined))
	for k := range b.quarantined {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Insight, 0, len(keys))
	for _, k := range keys {
		out = append(out, *b.quarantined[k])
	}
	return out
}

// Metrics exposes federation telemetry.
func (f *Federation) Metrics() *telemetry.Registry { return f.metrics }

// SetProfiler attaches the spine profiler (nil disables, the default).
// Each receiving site's vector-clock fold runs under knowledge.merge, with
// the publish->merge sync lag sampled against the insight's trace ID.
func (f *Federation) SetProfiler(p *prof.Profiler) { f.prof = p }

// Base returns the knowledge base at a site.
func (f *Federation) Base(site netsim.SiteID) *Base { return f.bases[site] }

// Add records an insight at this base and, when sharing is on, publishes it
// to every peer in real time.
func (b *Base) Add(ins Insight) {
	b.clock[b.site]++
	ins.Source = b.site
	ins.Clock = b.clock.Copy()
	ins.At = b.fed.eng.Now()
	if ins.Key == "" {
		ins.Key = deriveKey(&ins)
	}
	c := ins
	b.insights[ins.Key] = &c
	b.fed.metrics.Counter("knowledge.added").Inc()

	if b.fed.Shared {
		b.fed.fabric.Publish(bus.PublishOpts{
			From:        bus.Address{Site: b.site, Name: "knowledge"},
			Topic:       "knowledge",
			Payload:     &c,
			Size:        300,
			QoS:         bus.AtLeastOnce,
			AckTimeout:  b.fed.AckTimeout,
			MaxAttempts: b.fed.MaxAttempts,
			Trace:       ins.Trace,
		})
		b.fed.metrics.Counter("knowledge.published").Inc()
	}
}

// AddObservation is the common case: a completed experiment.
func (b *Base) AddObservation(domain string, p param.Point, value float64) {
	b.AddObservationT(trace.Context{}, domain, p, value)
}

// AddObservationT is AddObservation under a causal trace context, so the
// insight's federation-wide propagation records knowledge.sync spans.
func (b *Base) AddObservationT(ctx trace.Context, domain string, p param.Point, value float64) {
	b.Add(Insight{
		Kind:   KindObservation,
		Domain: domain,
		Point:  p.Clone(),
		Value:  value,
		Key:    fmt.Sprintf("%s/obs/%s", domain, p.Key()),
		Trace:  ctx,
	})
}

func deriveKey(ins *Insight) string {
	if ins.Point != nil {
		return fmt.Sprintf("%s/%s/%s", ins.Domain, ins.Kind, ins.Point.Key())
	}
	return fmt.Sprintf("%s/%s/%s", ins.Domain, ins.Kind, ins.Note)
}

// merge folds a remote insight in under vector-clock causality: a remote
// insight replaces a local one only if its clock dominates; concurrent
// updates resolve deterministically by (value, source) so all sites agree.
func (b *Base) merge(remote *Insight) {
	// Receiving knowledge is itself a causal event.
	for site, t := range remote.Clock {
		if b.clock[site] < t {
			b.clock[site] = t
		}
	}
	cur, ok := b.insights[remote.Key]
	if !ok {
		c := *remote
		b.insights[remote.Key] = &c
		b.fed.metrics.Counter("knowledge.merged").Inc()
		return
	}
	switch {
	case remote.Clock.Dominates(cur.Clock):
		c := *remote
		b.insights[remote.Key] = &c
		b.fed.metrics.Counter("knowledge.merged").Inc()
	case cur.Clock.Dominates(remote.Clock):
		// keep current
	default:
		// Concurrent: deterministic resolution, prefer higher value then
		// lexicographically smaller source.
		if remote.Value > cur.Value ||
			(remote.Value == cur.Value && remote.Source < cur.Source) {
			c := *remote
			b.insights[remote.Key] = &c
			b.fed.metrics.Counter("knowledge.conflicts").Inc()
		}
	}
}

// Size reports the number of insights held.
func (b *Base) Size() int { return len(b.insights) }

// Get fetches an insight by key.
func (b *Base) Get(key string) (Insight, bool) {
	ins, ok := b.insights[key]
	if !ok {
		return Insight{}, false
	}
	return *ins, true
}

// Observations returns all observations for a domain, sorted by key — the
// transfer-learning feed for optimizers at this site.
func (b *Base) Observations(domain string) (points []param.Point, values []float64) {
	keys := make([]string, 0, len(b.insights))
	for k, ins := range b.insights {
		if ins.Kind == KindObservation && ins.Domain == domain {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		ins := b.insights[k]
		points = append(points, ins.Point.Clone())
		values = append(values, ins.Value)
	}
	return points, values
}

// HasObservation reports whether this exact point was already run anywhere
// in the federation's shared view — the redundancy check campaigns use to
// skip duplicate experiments.
func (b *Base) HasObservation(domain string, p param.Point) (float64, bool) {
	key := fmt.Sprintf("%s/obs/%s", domain, p.Key())
	ins, ok := b.insights[key]
	if !ok || ins.Kind != KindObservation {
		return 0, false
	}
	return ins.Value, true
}

// Converged reports whether every base holds the same key set.
func (f *Federation) Converged() bool {
	var ref map[string]bool
	for _, b := range f.bases {
		view := make(map[string]bool, len(b.insights))
		for k := range b.insights {
			view[k] = true
		}
		if ref == nil {
			ref = view
			continue
		}
		if len(ref) != len(view) {
			return false
		}
		for k := range ref {
			if !view[k] {
				return false
			}
		}
	}
	return true
}
