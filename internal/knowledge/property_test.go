package knowledge

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
)

// Property: merge is order-independent — two bases that receive the same
// set of insights in different orders converge to identical stores.
func TestPropertyMergeOrderIndependent(t *testing.T) {
	f := func(seed uint32, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		r := rng.New(uint64(seed))
		// Build a batch of insights with overlapping keys from two origins.
		var insights []*Insight
		for i, v := range raw {
			if i > 24 {
				break
			}
			key := fmt.Sprintf("d/obs/k%d", int(v)%6)
			src := netsim.SiteID("a")
			clock := VectorClock{"a": uint64(i + 1)}
			if v%2 == 0 {
				src = "b"
				clock = VectorClock{"b": uint64(i + 1)}
			}
			insights = append(insights, &Insight{
				Key: key, Kind: KindObservation, Domain: "d",
				Point: param.Point{"x": float64(v)}, Value: float64(v),
				Source: src, Clock: clock,
			})
		}

		mkBase := func() *Base {
			eng := sim.NewEngine()
			net := netsim.New(eng, rng.New(1))
			net.AddSite("z")
			fed := NewFederation(bus.NewFabric(net), []netsim.SiteID{"z"}, false)
			return fed.Base("z")
		}
		b1 := mkBase()
		b2 := mkBase()
		for _, ins := range insights {
			b1.merge(ins)
		}
		perm := r.Perm(len(insights))
		for _, i := range perm {
			b2.merge(insights[i])
		}
		if b1.Size() != b2.Size() {
			return false
		}
		for k, v := range b1.insights {
			w, ok := b2.insights[k]
			if !ok || w.Value != v.Value || w.Source != v.Source {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: vector-clock dominance is a strict partial order — irreflexive
// and antisymmetric.
func TestPropertyClockPartialOrder(t *testing.T) {
	f := func(a, b [3]uint8) bool {
		va := VectorClock{"x": uint64(a[0]), "y": uint64(a[1]), "z": uint64(a[2])}
		vb := VectorClock{"x": uint64(b[0]), "y": uint64(b[1]), "z": uint64(b[2])}
		if va.Dominates(va.Copy()) {
			return false // irreflexive
		}
		if va.Dominates(vb) && vb.Dominates(va) {
			return false // antisymmetric
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
