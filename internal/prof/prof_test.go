package prof

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// drive exercises a profiler with a fixed synthetic workload on a fake
// virtual clock. Everything it feeds the profiler is deterministic.
func drive(p *Profiler) {
	var now int64
	p.SetClock(func() int64 { return now })
	for i := 0; i < 100; i++ {
		now = int64(i) * int64(10*time.Second)
		ev := p.Enter(SiteSimEvent)
		d := p.Enter(SiteBusDispatch)
		p.Sample(SiteNetDeliver, time.Duration(i)*time.Millisecond, uint64(i+1))
		d.End()
		if i%3 == 0 {
			r := p.Enter(SiteSchedRoute)
			r.End()
		}
		ev.End()
	}
}

func TestSiteNames(t *testing.T) {
	if got := SiteNetDeliver.String(); got != "net.deliver" {
		t.Fatalf("site name = %q", got)
	}
	if got := SiteNetDeliver.Subsystem(); got != "net" {
		t.Fatalf("subsystem = %q", got)
	}
	seen := map[string]bool{}
	for s := Site(0); s < numSites; s++ {
		name := s.String()
		if name == "" || name == "invalid" || seen[name] {
			t.Fatalf("bad or duplicate site name %q", name)
		}
		seen[name] = true
	}
}

func TestDisabledProfilerIsFree(t *testing.T) {
	var p *Profiler // the disabled profiler
	allocs := testing.AllocsPerRun(200, func() {
		r := p.Enter(SiteSimEvent)
		p.Sample(SiteNetDeliver, time.Second, 42)
		r.End()
		p.SetClock(nil)
		_ = p.Counts()
		_ = p.Snapshot()
		_ = p.Measured()
		_ = p.TotalWallNs()
		_ = p.Overflow()
	})
	if allocs != 0 {
		t.Fatalf("disabled profiler allocated %.1f per op, want 0", allocs)
	}
}

func TestEnabledHotPathDoesNotAllocate(t *testing.T) {
	p := New(Options{Enabled: true, AllocSampleStride: -1})
	var now int64
	p.SetClock(func() int64 { return now })
	// Prime the path table so steady state is measured, not first-touch.
	drive(p)
	allocs := testing.AllocsPerRun(200, func() {
		now += int64(time.Second)
		ev := p.Enter(SiteSimEvent)
		d := p.Enter(SiteBusDispatch)
		p.Sample(SiteNetDeliver, 3*time.Millisecond, 7)
		d.End()
		ev.End()
	})
	if allocs != 0 {
		t.Fatalf("enabled hot path allocated %.1f per op, want 0", allocs)
	}
}

func TestAggregatesAndStacks(t *testing.T) {
	p := New(Options{Enabled: true, AllocSampleStride: -1})
	drive(p)
	snap := p.Snapshot()
	var ev, disp *SiteJSON
	for i := range snap.Sites {
		switch snap.Sites[i].Site {
		case "sim.event":
			ev = &snap.Sites[i]
		case "bus.dispatch":
			disp = &snap.Sites[i]
		}
	}
	if ev == nil || disp == nil {
		t.Fatalf("missing sites in snapshot: %+v", snap.Sites)
	}
	if ev.Count != 100 || disp.Count != 100 {
		t.Fatalf("counts = %d/%d, want 100/100", ev.Count, disp.Count)
	}
	wantStacks := []string{
		"sim.event",
		"sim.event;bus.dispatch",
		"sim.event;sched.route",
	}
	if len(snap.Stacks) != len(wantStacks) {
		t.Fatalf("stacks = %+v", snap.Stacks)
	}
	for i, w := range wantStacks {
		if snap.Stacks[i].Stack != w {
			t.Fatalf("stack[%d] = %q, want %q", i, snap.Stacks[i].Stack, w)
		}
	}
	// 100 samples, log2 buckets: the slowest sample (99ms) carries its
	// trace ID as the exemplar of the top bucket.
	var nd *SiteJSON
	for i := range snap.Sites {
		if snap.Sites[i].Site == "net.deliver" {
			nd = &snap.Sites[i]
		}
	}
	if nd == nil || nd.Samples != 100 {
		t.Fatalf("net.deliver = %+v", nd)
	}
	last := nd.Buckets[len(nd.Buckets)-1]
	if last.MaxNs != int64(99*time.Millisecond) || last.Exemplar != "0000000000000064" {
		t.Fatalf("top bucket = %+v", last)
	}
}

func TestDeterministicExports(t *testing.T) {
	render := func() (string, string, string) {
		p := New(Options{Enabled: true})
		drive(p)
		var j, fc, fv bytes.Buffer
		if err := p.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteFolded(&fc, WeightCount); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteFolded(&fv, WeightVirtual); err != nil {
			t.Fatal(err)
		}
		return j.String(), fc.String(), fv.String()
	}
	j1, c1, v1 := render()
	j2, c2, v2 := render()
	if j1 != j2 {
		t.Fatalf("JSON profile not byte-stable:\n%s\nvs\n%s", j1, j2)
	}
	if c1 != c2 || v1 != v2 {
		t.Fatalf("folded output not byte-stable")
	}
	if !strings.Contains(c1, "sim.event;bus.dispatch 100\n") {
		t.Fatalf("folded counts missing expected line:\n%s", c1)
	}
	// Wall time must never leak into the deterministic JSON.
	if strings.Contains(j1, "wall") {
		t.Fatalf("deterministic profile mentions wall time:\n%s", j1)
	}
}

func TestWindowsRoll(t *testing.T) {
	p := New(Options{Enabled: true, Window: time.Minute, Windows: 4, AllocSampleStride: -1})
	var now int64
	p.SetClock(func() int64 { return now })
	for i := 0; i < 10; i++ {
		now = int64(i) * int64(time.Minute)
		r := p.Enter(SiteSimEvent)
		r.End()
	}
	snap := p.Snapshot()
	if len(snap.Windows) != 4 {
		t.Fatalf("ring kept %d windows, want 4", len(snap.Windows))
	}
	for _, w := range snap.Windows {
		if len(w.Sites) != 1 || w.Sites[0].Site != "sim.event" || w.Sites[0].Count != 1 {
			t.Fatalf("window = %+v", w)
		}
	}
	// Idle gaps collapse instead of spinning the ring empty.
	now = int64(100 * time.Minute)
	r := p.Enter(SiteSimEvent)
	r.End()
	snap = p.Snapshot()
	empty := 0
	for _, w := range snap.Windows {
		if len(w.Sites) == 0 {
			empty++
		}
	}
	if empty > 1 {
		t.Fatalf("idle gap produced %d empty windows", empty)
	}
}

var allocSink []byte

func TestMeasuredOverlayAndCoverage(t *testing.T) {
	p := New(Options{Enabled: true, AllocSampleStride: 1})
	for i := 0; i < 50; i++ {
		ev := p.Enter(SiteSimEvent)
		d := p.Enter(SiteBusDispatch)
		allocSink = make([]byte, 1024)
		d.End()
		ev.End()
	}
	ms := p.Measured()
	bySite := map[string]SiteMeasured{}
	for _, m := range ms {
		bySite[m.Site] = m
	}
	ev := bySite["sim.event"]
	disp := bySite["bus.dispatch"]
	if ev.WallNs <= 0 || disp.WallNs <= 0 || ev.WallNs < disp.WallNs {
		t.Fatalf("wall attribution inverted: %+v", ms)
	}
	if ev.SelfWallNs > ev.WallNs {
		t.Fatalf("self wall exceeds total: %+v", ev)
	}
	// The runtime publishes alloc stats with some slack; the estimate only
	// has to land in the workload's ballpark (50 KiB allocated).
	if disp.AllocBytes < 1024*40 {
		t.Fatalf("alloc sampling missed the workload: %+v", disp)
	}
	if p.TotalWallNs() != ev.WallNs {
		t.Fatalf("TotalWallNs %d != top-level wall %d", p.TotalWallNs(), ev.WallNs)
	}
}

func TestRegionEndOutOfOrder(t *testing.T) {
	p := New(Options{Enabled: true, AllocSampleStride: -1})
	ev := p.Enter(SiteSimEvent)
	_ = p.Enter(SiteBusDispatch) // never explicitly ended
	ev.End()                     // closes both
	if p.depth != 0 {
		t.Fatalf("depth = %d after out-of-order End", p.depth)
	}
	snap := p.Snapshot()
	if len(snap.Stacks) != 2 {
		t.Fatalf("stacks = %+v", snap.Stacks)
	}
}
