package prof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ProfileSchema identifies the deterministic JSON profile format.
const ProfileSchema = "aisle/profile/v1"

// BucketJSON is one log2 duration bucket of a site's virtual histogram.
type BucketJSON struct {
	// FloorNs is the bucket's lower bound: durations in [FloorNs, 2*FloorNs).
	FloorNs int64  `json:"floor_ns"`
	Count   uint64 `json:"count"`
	SumNs   int64  `json:"sum_ns"`
	MaxNs   int64  `json:"max_ns"`
	// Exemplar is the trace ID of the slowest sample in the bucket (hex,
	// matching trace exports), or empty when the sample carried no trace.
	Exemplar string `json:"exemplar,omitempty"`
}

// SiteJSON is one call-site's deterministic profile.
type SiteJSON struct {
	Site      string       `json:"site"`
	Subsystem string       `json:"subsystem"`
	Count     uint64       `json:"count"`
	Samples   uint64       `json:"samples,omitempty"`
	VirtualNs int64        `json:"virtual_ns"`
	Buckets   []BucketJSON `json:"buckets,omitempty"`
}

// StackJSON is one region nesting path with deterministic weights.
type StackJSON struct {
	// Stack is the semicolon-joined site path, outermost first — the same
	// string the folded exporter emits.
	Stack     string `json:"stack"`
	Count     uint64 `json:"count"`
	VirtualNs int64  `json:"virtual_ns"`
}

// WindowJSON is one closed ring window.
type WindowJSON struct {
	StartNs int64       `json:"start_ns"`
	Sites   []SiteCount `json:"sites"`
}

// Profile is the deterministic snapshot: identical bytes for identical
// fixed-seed runs, with or without wall-clock noise. Wall time and
// allocation estimates are deliberately absent — see Measured.
type Profile struct {
	Schema   string       `json:"schema"`
	WindowNs int64        `json:"window_ns"`
	Sites    []SiteJSON   `json:"sites"`
	Stacks   []StackJSON  `json:"stacks,omitempty"`
	Windows  []WindowJSON `json:"windows,omitempty"`
	Overflow uint64       `json:"overflow,omitempty"`
}

// Snapshot captures the deterministic profile. Nil on the disabled
// profiler.
func (p *Profiler) Snapshot() *Profile {
	if p == nil {
		return nil
	}
	out := &Profile{Schema: ProfileSchema, WindowNs: p.windowW, Overflow: p.overflow}
	for s := Site(0); s < numSites; s++ {
		agg := &p.sites[s]
		if agg.count == 0 && agg.samples == 0 {
			continue
		}
		sj := SiteJSON{
			Site:      s.String(),
			Subsystem: s.Subsystem(),
			Count:     agg.count,
			Samples:   agg.samples,
			VirtualNs: agg.virtual,
		}
		for i := range agg.buckets {
			b := &agg.buckets[i]
			if b.count == 0 {
				continue
			}
			floor := int64(0)
			if i > 0 {
				floor = int64(1) << (i - 1)
			}
			bj := BucketJSON{FloorNs: floor, Count: b.count, SumNs: b.sumVirt, MaxNs: b.maxVirt}
			if b.exemplar != 0 {
				bj.Exemplar = fmt.Sprintf("%016x", b.exemplar)
			}
			sj.Buckets = append(sj.Buckets, bj)
		}
		out.Sites = append(out.Sites, sj)
	}
	out.Stacks = p.stacks()
	for i := 0; i < p.ringLen; i++ {
		w := &p.ring[(p.ringHead-p.ringLen+i+len(p.ring))%len(p.ring)]
		wj := WindowJSON{StartNs: w.start}
		for s := Site(0); s < numSites; s++ {
			if w.count[s] == 0 && w.virtual[s] == 0 {
				continue
			}
			wj.Sites = append(wj.Sites, SiteCount{
				Site: s.String(), Count: w.count[s], VirtualNs: w.virtual[s],
			})
		}
		out.Windows = append(out.Windows, wj)
	}
	return out
}

// stacks decodes the interned path table, sorted by path string for a
// stable order.
func (p *Profiler) stacks() []StackJSON {
	out := make([]StackJSON, 0, len(p.paths))
	for key, pa := range p.paths {
		out = append(out, StackJSON{Stack: decodePath(key), Count: pa.count, VirtualNs: pa.virtual})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stack < out[j].Stack })
	return out
}

// decodePath unpacks a path key (one site+1 byte per frame, outermost in
// the high bits) into "a;b;c".
func decodePath(key uint64) string {
	var sites [8]Site
	n := 0
	for key != 0 && n < len(sites) {
		sites[n] = Site(key&0xff - 1)
		key >>= 8
		n++
	}
	s := ""
	for i := n - 1; i >= 0; i-- {
		if s != "" {
			s += ";"
		}
		s += sites[i].String()
	}
	return s
}

// WriteJSON writes the deterministic profile as indented JSON. Byte-stable:
// two fixed-seed runs produce identical output.
func (p *Profiler) WriteJSON(w io.Writer) error {
	snap := p.Snapshot()
	if snap == nil {
		snap = &Profile{Schema: ProfileSchema}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Weight selects the folded-stack weight column.
type Weight int

// Folded weight modes. Count and virtual are deterministic; wall is the
// run's measured wall nanoseconds (the column flamegraph tooling usually
// wants, and the one the CI perf lane uploads).
const (
	WeightCount Weight = iota
	WeightVirtual
	WeightWall
)

// WriteFolded writes pprof-compatible folded stacks ("a;b;c <weight>", one
// line per region path). Deterministic for WeightCount and WeightVirtual.
func (p *Profiler) WriteFolded(w io.Writer, weight Weight) error {
	bw := bufio.NewWriter(w)
	if p != nil {
		type line struct {
			stack string
			val   uint64
		}
		lines := make([]line, 0, len(p.paths))
		for key, pa := range p.paths {
			var v uint64
			switch weight {
			case WeightVirtual:
				v = uint64(pa.virtual)
			case WeightWall:
				v = uint64(pa.wall)
			default:
				v = pa.count
			}
			lines = append(lines, line{stack: decodePath(key), val: v})
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i].stack < lines[j].stack })
		for _, l := range lines {
			if _, err := fmt.Fprintf(bw, "%s %d\n", l.stack, l.val); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SiteMeasured is the run-dependent overlay for one call-site: wall time
// and scaled allocation estimates. Never part of the deterministic profile.
type SiteMeasured struct {
	Site       string `json:"site"`
	Subsystem  string `json:"subsystem"`
	WallNs     int64  `json:"wall_ns"`
	SelfWallNs int64  `json:"self_wall_ns"`
	AllocObjs  uint64 `json:"alloc_objects_est,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes_est,omitempty"`
}

// Measured returns the wall/alloc overlay in site order, skipping sites
// that never fired. Nil on the disabled profiler.
func (p *Profiler) Measured() []SiteMeasured {
	if p == nil {
		return nil
	}
	out := make([]SiteMeasured, 0, numSites)
	for s := Site(0); s < numSites; s++ {
		if p.sites[s].count == 0 {
			continue
		}
		m := &p.measured[s]
		out = append(out, SiteMeasured{
			Site:       s.String(),
			Subsystem:  s.Subsystem(),
			WallNs:     m.wall,
			SelfWallNs: m.selfWall,
			AllocObjs:  m.allocObjs,
			AllocBytes: m.allocBytes,
		})
	}
	return out
}

// TotalWallNs is the wall time of all top-level regions — in the wired
// spine, the sim event loop — i.e. the profiler's coverage numerator.
func (p *Profiler) TotalWallNs() int64 {
	if p == nil {
		return 0
	}
	var total int64
	for key, pa := range p.paths {
		if key <= 0xff { // depth-1 paths only
			total += pa.wall
		}
	}
	return total
}
