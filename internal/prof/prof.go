// Package prof is a sim-clock-native continuous profiler for the federation
// spine. It attributes wall time, virtual time, and (sampled) allocations to
// a fixed set of instrumented call-sites threaded through the hot packages —
// the sim event loop, netsim delivery, bus dispatch, scheduler routing and
// stealing, telemetry recording, and knowledge merging.
//
// Design rules, in the spirit of internal/trace and internal/obs:
//
//   - A nil *Profiler is the disabled profiler. Every method short-circuits
//     on nil, and the disabled path allocates nothing (guard-tested).
//   - The profiler only observes. It never schedules events, draws
//     randomness, or mutates spine state, so a fixed-seed run's virtual
//     trajectory is bit-identical with profiling on or off.
//   - Everything keyed by the virtual clock — region counts, virtual-time
//     attributions, duration histograms, exemplars, and the windowed ring —
//     is deterministic for a fixed seed and exported as byte-stable JSON and
//     pprof-compatible folded stacks. Wall time and allocation estimates are
//     inherently run-dependent and live in a separate "measured" overlay
//     that the deterministic exports never touch.
//   - The spine runs on the single sim goroutine; the profiler is not
//     goroutine-safe and needs no atomics or locks on the hot path.
//
// Histogram buckets carry trace-ID exemplars: the slowest sample in each
// bucket remembers its causal trace (PR 3), so a slow bucket links straight
// to its span tree and any flight-recorder snapshot (PR 8) holding it.
package prof

import (
	"runtime/metrics"
	"time"
)

// Site identifies one instrumented region. The set is closed on purpose:
// fixed array indexing keeps region enter/exit allocation-free.
type Site uint8

// Instrumented call-sites, one per spine hot path.
const (
	// SiteSimEvent wraps every event callback in the sim loop. Its total
	// wall time is the denominator for subsystem attribution: everything
	// the federation does happens inside an event.
	SiteSimEvent Site = iota
	// SiteNetSend is netsim admission: metrics, serialization, hop setup.
	SiteNetSend
	// SiteNetDeliver is netsim arrival: drop bookkeeping and the deliver
	// hook. Virtual samples carry the modeled link delay.
	SiteNetDeliver
	// SiteBusDispatch is broker-side envelope dispatch (middleware, per-kind
	// routing, subscriber fan-in).
	SiteBusDispatch
	// SiteSchedRoute is cross-site candidate scoring in the scheduler.
	SiteSchedRoute
	// SiteSchedSteal is the work-stealing scan.
	SiteSchedSteal
	// SiteTelemetryRecord is histogram recording in internal/telemetry.
	SiteTelemetryRecord
	// SiteKnowledgeMerge is vector-clock insight merging. Virtual samples
	// carry the observed sync lag.
	SiteKnowledgeMerge
	// SiteCoreDecide is the campaign orchestration decision (planner + twin
	// verification + approval modeling), the optimizer-adjacent hot path.
	SiteCoreDecide
	numSites
)

var siteNames = [numSites]string{
	"sim.event",
	"net.send",
	"net.deliver",
	"bus.dispatch",
	"sched.route",
	"sched.steal",
	"telemetry.record",
	"knowledge.merge",
	"core.decide",
}

// String returns the dotted call-site name, e.g. "net.deliver".
func (s Site) String() string {
	if s >= numSites {
		return "invalid"
	}
	return siteNames[s]
}

// Subsystem returns the package-level owner, the part before the dot.
func (s Site) Subsystem() string {
	name := s.String()
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}

// NumSites is the number of instrumented call-sites.
func NumSites() int { return int(numSites) }

// Options configures a Profiler. The zero value disables profiling.
type Options struct {
	// Enabled turns the profiler on. When false, New returns nil — the
	// disabled profiler — and every instrumented region costs two nil
	// checks and nothing else.
	Enabled bool
	// Window is the virtual width of one ring window (default 5 minutes of
	// sim time). The ring gives -watch its recent-rate view and keeps the
	// "continuous" in continuous profiler bounded.
	Window time.Duration
	// Windows is the ring capacity (default 32).
	Windows int
	// AllocSampleStride measures heap-allocation deltas around every Nth
	// entry of each site via runtime/metrics, scaling the estimate back up.
	// 0 uses the default (64); negative disables allocation sampling.
	AllocSampleStride int
}

const (
	defaultWindow      = 5 * time.Minute
	defaultWindows     = 32
	defaultAllocStride = 64
	// maxDepth bounds the region stack. The spine nests regions about five
	// deep (sim.event > bus.dispatch > sched.route > telemetry.record);
	// overflow is counted and skipped rather than grown.
	maxDepth = 32
	// numBuckets covers log2 virtual durations from <1ns to >2^46ns (~20h).
	numBuckets = 48
)

// bucket is one deterministic log2 duration bucket with its exemplar.
type bucket struct {
	count    uint64
	sumVirt  int64
	maxVirt  int64
	exemplar uint64 // trace ID of the slowest sample in the bucket
}

// siteAgg accumulates one call-site. Deterministic fields only; the wall
// and alloc overlay lives in siteMeasured.
type siteAgg struct {
	count   uint64 // region entries
	virtual int64  // region virtual deltas plus explicit samples, ns
	samples uint64 // explicit Sample calls
	buckets [numBuckets]bucket
}

// siteMeasured is the run-dependent overlay for one call-site.
type siteMeasured struct {
	wall       int64 // total wall ns, children included
	selfWall   int64 // wall ns minus instrumented children
	allocProbe uint64
	allocObjs  uint64 // scaled estimate
	allocBytes uint64 // scaled estimate
}

// frame is one open region on the stack.
type frame struct {
	site      Site
	pathKey   uint64
	startWall int64
	childWall int64
	startVirt int64
	allocObjs uint64
	allocByts uint64
	sampled   bool
}

// pathAgg accumulates one region stack path for folded output.
type pathAgg struct {
	key     uint64
	count   uint64
	virtual int64
	wall    int64
}

// window is one closed ring window of per-site activity.
type window struct {
	start   int64 // virtual ns at window open
	count   [numSites]uint64
	virtual [numSites]int64
}

// Profiler accumulates instrumented-region activity. Obtain one from New;
// a nil Profiler is valid and free.
type Profiler struct {
	epoch time.Time
	clock func() int64 // virtual now in ns; nil until SetClock

	sites    [numSites]siteAgg
	measured [numSites]siteMeasured
	paths    map[uint64]*pathAgg
	stack    [maxDepth]frame
	depth    int
	overflow uint64 // regions skipped at maxDepth

	// Windowed ring, rolled lazily on the virtual clock.
	windowW   int64 // width, virtual ns
	windowEnd int64
	cur       window
	ring      []window
	ringLen   int
	ringHead  int

	// Allocation sampling.
	allocStride  uint64
	allocSamples []metrics.Sample
}

// New returns a profiler, or nil — the disabled profiler — when
// opts.Enabled is false.
func New(opts Options) *Profiler {
	if !opts.Enabled {
		return nil
	}
	if opts.Window <= 0 {
		opts.Window = defaultWindow
	}
	if opts.Windows <= 0 {
		opts.Windows = defaultWindows
	}
	stride := opts.AllocSampleStride
	if stride == 0 {
		stride = defaultAllocStride
	}
	p := &Profiler{
		epoch:     time.Now(),
		paths:     make(map[uint64]*pathAgg, 16),
		windowW:   int64(opts.Window),
		windowEnd: int64(opts.Window),
		ring:      make([]window, opts.Windows),
	}
	if stride > 0 {
		p.allocStride = uint64(stride)
		p.allocSamples = []metrics.Sample{
			{Name: "/gc/heap/allocs:objects"},
			{Name: "/gc/heap/allocs:bytes"},
		}
		metrics.Read(p.allocSamples) // warm the path so later reads stay cheap
	}
	return p
}

// SetClock wires the virtual clock (the sim engine's Now). Without a clock
// virtual deltas and the window ring stay at zero; explicit Sample calls
// still record.
func (p *Profiler) SetClock(fn func() int64) {
	if p == nil {
		return
	}
	p.clock = fn
}

// Region is an open instrumented region returned by Enter. The zero Region
// (from the disabled profiler) is valid and End on it is free.
type Region struct {
	p   *Profiler
	idx int32
}

// Enter opens a region at site. Pair with End:
//
//	r := p.Enter(prof.SiteBusDispatch)
//	defer r.End() // or call explicitly on straight-line paths
func (p *Profiler) Enter(site Site) Region {
	if p == nil {
		return Region{}
	}
	if p.depth >= maxDepth {
		p.overflow++
		return Region{}
	}
	virt := int64(0)
	if p.clock != nil {
		virt = p.clock()
		if virt >= p.windowEnd {
			p.roll(virt)
		}
	}
	f := &p.stack[p.depth]
	f.site = site
	f.startWall = int64(time.Since(p.epoch))
	f.childWall = 0
	f.startVirt = virt
	parentKey := uint64(0)
	if p.depth > 0 {
		parentKey = p.stack[p.depth-1].pathKey
	}
	f.pathKey = parentKey<<8 | uint64(site) + 1
	f.sampled = false
	agg := &p.sites[site]
	agg.count++
	p.cur.count[site]++
	if p.allocStride > 0 {
		m := &p.measured[site]
		m.allocProbe++
		if m.allocProbe%p.allocStride == 1 || p.allocStride == 1 {
			metrics.Read(p.allocSamples)
			f.allocObjs = p.allocSamples[0].Value.Uint64()
			f.allocByts = p.allocSamples[1].Value.Uint64()
			f.sampled = true
		}
	}
	p.depth++
	return Region{p: p, idx: int32(p.depth - 1)}
}

// End closes the region, attributing wall and virtual deltas to its site
// and path. Ends arriving out of order close every deeper region first.
func (r Region) End() {
	p := r.p
	if p == nil {
		return
	}
	for p.depth > int(r.idx) {
		p.exitTop()
	}
}

func (p *Profiler) exitTop() {
	p.depth--
	f := &p.stack[p.depth]
	wall := int64(time.Since(p.epoch)) - f.startWall
	if wall < 0 {
		wall = 0
	}
	var virtDelta int64
	if p.clock != nil {
		virtDelta = p.clock() - f.startVirt
		if virtDelta < 0 {
			virtDelta = 0
		}
	}
	agg := &p.sites[f.site]
	agg.virtual += virtDelta
	p.cur.virtual[f.site] += virtDelta
	m := &p.measured[f.site]
	m.wall += wall
	m.selfWall += wall - f.childWall
	if f.sampled {
		metrics.Read(p.allocSamples)
		m.allocObjs += (p.allocSamples[0].Value.Uint64() - f.allocObjs) * p.allocStride
		m.allocBytes += (p.allocSamples[1].Value.Uint64() - f.allocByts) * p.allocStride
	}
	pa := p.paths[f.pathKey]
	if pa == nil {
		pa = &pathAgg{key: f.pathKey}
		p.paths[f.pathKey] = pa
	}
	pa.count++
	pa.virtual += virtDelta
	pa.wall += wall
	if p.depth > 0 {
		p.stack[p.depth-1].childWall += wall
	}
}

// Sample records one explicit virtual-duration observation at site — a
// modeled link delay, a queue wait, a sync lag — with an optional trace-ID
// exemplar linking the sample to its causal span. Deterministic for a
// fixed seed: buckets are log2 of the virtual duration, and each bucket's
// exemplar is the trace of its slowest sample (first-wins on ties).
func (p *Profiler) Sample(site Site, virtual time.Duration, traceID uint64) {
	if p == nil {
		return
	}
	d := int64(virtual)
	if d < 0 {
		d = 0
	}
	if p.clock != nil {
		if now := p.clock(); now >= p.windowEnd {
			p.roll(now)
		}
	}
	agg := &p.sites[site]
	agg.samples++
	agg.virtual += d
	p.cur.virtual[site] += d
	b := &agg.buckets[bucketOf(d)]
	b.count++
	b.sumVirt += d
	if d > b.maxVirt || b.count == 1 {
		b.maxVirt = d
		if traceID != 0 {
			b.exemplar = traceID
		}
	}
}

// bucketOf maps a non-negative duration to its log2 bucket.
func bucketOf(d int64) int {
	b := 0
	for v := uint64(d); v > 0; v >>= 1 {
		b++
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// roll closes the current window into the ring and opens the one holding
// virtual time now. Quiet windows (no activity) collapse: the ring holds
// at most one closed window per roll, keeping long idle stretches cheap.
func (p *Profiler) roll(now int64) {
	p.cur.start = p.windowEnd - p.windowW
	p.ring[p.ringHead] = p.cur
	p.ringHead = (p.ringHead + 1) % len(p.ring)
	if p.ringLen < len(p.ring) {
		p.ringLen++
	}
	p.cur = window{}
	// Jump the window end past now in whole widths so idle gaps don't
	// spin the ring one empty window at a time.
	steps := (now-p.windowEnd)/p.windowW + 1
	p.windowEnd += steps * p.windowW
}

// Overflow reports regions skipped because the stack was full.
func (p *Profiler) Overflow() uint64 {
	if p == nil {
		return 0
	}
	return p.overflow
}

// SiteCount is one call-site's live counters, for SpineProfile and -watch.
type SiteCount struct {
	Site      string `json:"site"`
	Count     uint64 `json:"count"`
	Samples   uint64 `json:"samples,omitempty"`
	VirtualNs int64  `json:"virtual_ns"`
}

// Counts returns per-site cumulative counters in site order, skipping
// sites that never fired. Nil (and free) on the disabled profiler.
func (p *Profiler) Counts() []SiteCount {
	if p == nil {
		return nil
	}
	out := make([]SiteCount, 0, numSites)
	for s := Site(0); s < numSites; s++ {
		agg := &p.sites[s]
		if agg.count == 0 && agg.samples == 0 {
			continue
		}
		out = append(out, SiteCount{
			Site:      s.String(),
			Count:     agg.count,
			Samples:   agg.samples,
			VirtualNs: agg.virtual,
		})
	}
	return out
}
