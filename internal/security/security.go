// Package security implements AISLE's zero-trust communication layer
// (milestone M11): per-site identity providers issuing short-lived HMAC
// tokens, a federation trust map, attribute-based access control, continuous
// re-authentication through automatic token renewal, and an audit log of
// every authorization decision.
//
// The layer plugs into the bus as delivery middleware, so every inbound
// envelope — RPC, event, or queue delivery — is authenticated and authorized
// at its destination, exactly the "never trust, always verify" posture the
// paper prescribes for multi-institutional networks.
package security

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

// Errors returned by verification and authorization.
var (
	ErrUntrustedIssuer = errors.New("security: issuer not trusted")
	ErrBadSignature    = errors.New("security: bad token signature")
	ErrExpired         = errors.New("security: token expired")
	ErrWrongAudience   = errors.New("security: token audience mismatch")
	ErrDenied          = errors.New("security: denied by policy")
	ErrNoToken         = errors.New("security: missing token")
)

// Principal is an authenticated identity: a human operator, an agent, or an
// instrument controller.
type Principal struct {
	ID         string
	Site       netsim.SiteID
	Attributes map[string]string // e.g. role=orchestrator, clearance=standard
}

// Token is a signed, short-lived credential binding a principal to an
// audience site. Tokens are bearer credentials carried on bus envelopes.
type Token struct {
	Subject    string
	Issuer     netsim.SiteID
	Audience   netsim.SiteID
	Attributes map[string]string
	IssuedAt   sim.Time
	ExpiresAt  sim.Time
	Sig        []byte
}

// canonical returns the deterministic byte string that is signed.
func (t *Token) canonical() []byte {
	keys := make([]string, 0, len(t.Attributes))
	for k := range t.Attributes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "sub=%s|iss=%s|aud=%s|iat=%d|exp=%d",
		t.Subject, t.Issuer, t.Audience, t.IssuedAt, t.ExpiresAt)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, t.Attributes[k])
	}
	return []byte(b.String())
}

// IdentityProvider issues tokens for one site's principals.
type IdentityProvider struct {
	site netsim.SiteID
	key  []byte
	eng  *sim.Engine

	// TokenTTL bounds credential lifetime; short TTLs are what make the
	// authentication "continuous". Default 30s.
	TokenTTL sim.Time
}

// NewIdentityProvider creates an IdP for site with the given signing key.
func NewIdentityProvider(eng *sim.Engine, site netsim.SiteID, key []byte) *IdentityProvider {
	return &IdentityProvider{site: site, key: key, eng: eng, TokenTTL: 30 * sim.Second}
}

// Site reports the site this IdP serves.
func (p *IdentityProvider) Site() netsim.SiteID { return p.site }

// Issue mints a token for principal addressed to audience.
func (p *IdentityProvider) Issue(principal Principal, audience netsim.SiteID) *Token {
	t := &Token{
		Subject:    principal.ID,
		Issuer:     p.site,
		Audience:   audience,
		Attributes: principal.Attributes,
		IssuedAt:   p.eng.Now(),
		ExpiresAt:  p.eng.Now() + p.TokenTTL,
	}
	mac := hmac.New(sha256.New, p.key)
	mac.Write(t.canonical())
	t.Sig = mac.Sum(nil)
	return t
}

// Federation is the trust fabric: which issuer keys each site accepts.
type Federation struct {
	eng     *sim.Engine
	keys    map[netsim.SiteID][]byte
	trusts  map[netsim.SiteID]map[netsim.SiteID]bool
	metrics *telemetry.Registry
	audit   []AuditEntry

	// MaxAuditEntries bounds memory; oldest entries are dropped. Default 100000.
	MaxAuditEntries int
}

// NewFederation returns an empty trust fabric.
func NewFederation(eng *sim.Engine) *Federation {
	return &Federation{
		eng:             eng,
		keys:            make(map[netsim.SiteID][]byte),
		trusts:          make(map[netsim.SiteID]map[netsim.SiteID]bool),
		metrics:         telemetry.NewRegistry(),
		MaxAuditEntries: 100000,
	}
}

// Metrics exposes security telemetry.
func (f *Federation) Metrics() *telemetry.Registry { return f.metrics }

// RegisterIdP records a site's signing key so members can verify its tokens.
func (f *Federation) RegisterIdP(p *IdentityProvider) {
	f.keys[p.site] = p.key
}

// Trust declares that verifier accepts tokens issued by issuer. Trust is
// directional, mirroring real federated-identity agreements.
func (f *Federation) Trust(verifier, issuer netsim.SiteID) {
	m, ok := f.trusts[verifier]
	if !ok {
		m = make(map[netsim.SiteID]bool)
		f.trusts[verifier] = m
	}
	m[issuer] = true
}

// TrustAll establishes full mutual trust among sites (common testbed setup).
func (f *Federation) TrustAll(sites []netsim.SiteID) {
	for _, a := range sites {
		for _, b := range sites {
			if a != b {
				f.Trust(a, b)
			}
		}
	}
	for _, a := range sites {
		f.Trust(a, a)
	}
}

// Verify authenticates a token presented at site. It checks trust,
// signature, expiry, and audience.
func (f *Federation) Verify(at netsim.SiteID, t *Token) error {
	if t == nil {
		return ErrNoToken
	}
	if !f.trusts[at][t.Issuer] {
		return fmt.Errorf("%w: %s does not trust %s", ErrUntrustedIssuer, at, t.Issuer)
	}
	key, ok := f.keys[t.Issuer]
	if !ok {
		return fmt.Errorf("%w: no key for %s", ErrUntrustedIssuer, t.Issuer)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(t.canonical())
	if !hmac.Equal(mac.Sum(nil), t.Sig) {
		return ErrBadSignature
	}
	if f.eng.Now() >= t.ExpiresAt {
		return fmt.Errorf("%w at %v (exp %v)", ErrExpired, f.eng.Now(), t.ExpiresAt)
	}
	if t.Audience != "" && t.Audience != at {
		return fmt.Errorf("%w: token for %s presented at %s", ErrWrongAudience, t.Audience, at)
	}
	return nil
}

// Op is a comparison operator in a policy condition.
type Op int

// Condition operators.
const (
	OpEquals Op = iota
	OpNotEquals
	OpIn // value is a comma-separated set
)

// Condition constrains one token attribute.
type Condition struct {
	Attr  string
	Op    Op
	Value string
}

func (c Condition) match(attrs map[string]string) bool {
	v, ok := attrs[c.Attr]
	switch c.Op {
	case OpEquals:
		return ok && v == c.Value
	case OpNotEquals:
		return !ok || v != c.Value
	case OpIn:
		if !ok {
			return false
		}
		for _, opt := range strings.Split(c.Value, ",") {
			if strings.TrimSpace(opt) == v {
				return true
			}
		}
		return false
	}
	return false
}

// Policy is an attribute-based access rule: a subject whose attributes meet
// all Conditions may perform Action on resources matching Resource.
// Resource supports a trailing "*" wildcard.
type Policy struct {
	Name       string
	Resource   string
	Action     string
	Conditions []Condition
}

func (p Policy) matchResource(res string) bool {
	if strings.HasSuffix(p.Resource, "*") {
		return strings.HasPrefix(res, strings.TrimSuffix(p.Resource, "*"))
	}
	return p.Resource == res
}

// PDP is a policy decision point: default deny, allow when any policy
// matches.
type PDP struct {
	policies []Policy
}

// AddPolicy appends an allow rule.
func (p *PDP) AddPolicy(pol Policy) { p.policies = append(p.policies, pol) }

// Authorize reports whether attrs may perform action on resource, and the
// name of the policy that allowed it.
func (p *PDP) Authorize(attrs map[string]string, action, resource string) (bool, string) {
	for _, pol := range p.policies {
		if pol.Action != action && pol.Action != "*" {
			continue
		}
		if !pol.matchResource(resource) {
			continue
		}
		allowed := true
		for _, c := range pol.Conditions {
			if !c.match(attrs) {
				allowed = false
				break
			}
		}
		if allowed {
			return true, pol.Name
		}
	}
	return false, ""
}

// AuditEntry records one authorization decision.
type AuditEntry struct {
	At       sim.Time
	Site     netsim.SiteID
	Subject  string
	Action   string
	Resource string
	Allowed  bool
	Reason   string
}

// Audit returns the audit log (most recent last).
func (f *Federation) Audit() []AuditEntry { return f.audit }

func (f *Federation) record(e AuditEntry) {
	if len(f.audit) >= f.MaxAuditEntries {
		f.audit = f.audit[1:]
	}
	f.audit = append(f.audit, e)
}

// Guard couples the federation with a PDP to make per-message decisions.
type Guard struct {
	Fed *Federation
	PDP *PDP
}

// Check authenticates the token and authorizes (action, resource) at site.
func (g *Guard) Check(at netsim.SiteID, t *Token, action, resource string) error {
	m := g.Fed.metrics
	m.Counter("security.checks").Inc()
	if err := g.Fed.Verify(at, t); err != nil {
		m.Counter("security.authn_failures").Inc()
		sub := ""
		if t != nil {
			sub = t.Subject
		}
		g.Fed.record(AuditEntry{At: g.Fed.eng.Now(), Site: at, Subject: sub,
			Action: action, Resource: resource, Allowed: false, Reason: err.Error()})
		return err
	}
	ok, why := g.PDP.Authorize(t.Attributes, action, resource)
	g.Fed.record(AuditEntry{At: g.Fed.eng.Now(), Site: at, Subject: t.Subject,
		Action: action, Resource: resource, Allowed: ok, Reason: why})
	if !ok {
		m.Counter("security.authz_denials").Inc()
		return fmt.Errorf("%w: %s on %s by %s", ErrDenied, action, resource, t.Subject)
	}
	m.Counter("security.allowed").Inc()
	return nil
}

// BusMiddleware returns a bus middleware enforcing zero trust on every
// envelope kind that carries intent (requests, events, queue messages).
// Replies and acks ride the correlation state of already-authorized calls.
func BusMiddleware(g *Guard) bus.Middleware {
	return func(env *bus.Envelope) error {
		switch env.Kind {
		case bus.KindRequest, bus.KindEvent, bus.KindQueueMsg:
			t, _ := env.Token.(*Token)
			action := "call"
			resource := env.To.Name
			if env.Kind != bus.KindRequest {
				action = "publish"
				resource = env.Topic
			}
			return g.Check(env.To.Site, t, action, resource)
		default:
			return nil
		}
	}
}

// TokenManager keeps a principal's token fresh: it renews at a fraction of
// TTL, implementing continuous authentication without manual re-issue.
type TokenManager struct {
	idp       *IdentityProvider
	principal Principal
	audience  netsim.SiteID
	current   *Token
	stop      func()
	renewals  int
}

// NewTokenManager issues the first token and schedules renewals at 50% TTL.
func NewTokenManager(idp *IdentityProvider, principal Principal, audience netsim.SiteID) *TokenManager {
	tm := &TokenManager{idp: idp, principal: principal, audience: audience}
	tm.current = idp.Issue(principal, audience)
	tm.stop = idp.eng.Ticker(idp.TokenTTL/2, func(int) {
		tm.current = idp.Issue(principal, audience)
		tm.renewals++
	})
	return tm
}

// Token returns the current (always fresh) token.
func (tm *TokenManager) Token() *Token { return tm.current }

// Renewals reports how many automatic renewals have occurred.
func (tm *TokenManager) Renewals() int { return tm.renewals }

// Stop cancels renewal.
func (tm *TokenManager) Stop() { tm.stop() }
