package security

import (
	"errors"
	"testing"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
)

func fixture(t *testing.T) (*sim.Engine, *Federation, *IdentityProvider, *IdentityProvider) {
	t.Helper()
	eng := sim.NewEngine()
	fed := NewFederation(eng)
	ornl := NewIdentityProvider(eng, "ornl", []byte("ornl-key"))
	anl := NewIdentityProvider(eng, "anl", []byte("anl-key"))
	fed.RegisterIdP(ornl)
	fed.RegisterIdP(anl)
	fed.TrustAll([]netsim.SiteID{"ornl", "anl"})
	return eng, fed, ornl, anl
}

func TestTokenVerifyHappyPath(t *testing.T) {
	_, fed, ornl, _ := fixture(t)
	tok := ornl.Issue(Principal{ID: "agent-1", Site: "ornl",
		Attributes: map[string]string{"role": "orchestrator"}}, "anl")
	if err := fed.Verify("anl", tok); err != nil {
		t.Fatalf("valid token rejected: %v", err)
	}
}

func TestTokenExpiry(t *testing.T) {
	eng, fed, ornl, _ := fixture(t)
	ornl.TokenTTL = 10 * sim.Second
	tok := ornl.Issue(Principal{ID: "a"}, "anl")
	if err := eng.RunUntil(11 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := fed.Verify("anl", tok); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestTokenTamperDetected(t *testing.T) {
	_, fed, ornl, _ := fixture(t)
	tok := ornl.Issue(Principal{ID: "a", Attributes: map[string]string{"role": "viewer"}}, "anl")
	tok.Attributes = map[string]string{"role": "admin"} // privilege escalation
	if err := fed.Verify("anl", tok); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestWrongAudience(t *testing.T) {
	_, fed, ornl, _ := fixture(t)
	tok := ornl.Issue(Principal{ID: "a"}, "anl")
	if err := fed.Verify("ornl", tok); !errors.Is(err, ErrWrongAudience) {
		t.Fatalf("err = %v, want ErrWrongAudience", err)
	}
}

func TestUntrustedIssuer(t *testing.T) {
	eng := sim.NewEngine()
	fed := NewFederation(eng)
	rogue := NewIdentityProvider(eng, "rogue", []byte("rogue-key"))
	fed.RegisterIdP(rogue)
	// No Trust() declarations: default deny.
	tok := rogue.Issue(Principal{ID: "a"}, "anl")
	if err := fed.Verify("anl", tok); !errors.Is(err, ErrUntrustedIssuer) {
		t.Fatalf("err = %v, want ErrUntrustedIssuer", err)
	}
}

func TestNilToken(t *testing.T) {
	_, fed, _, _ := fixture(t)
	if err := fed.Verify("anl", nil); !errors.Is(err, ErrNoToken) {
		t.Fatalf("err = %v, want ErrNoToken", err)
	}
}

func TestPDPDefaultDeny(t *testing.T) {
	pdp := &PDP{}
	if ok, _ := pdp.Authorize(map[string]string{"role": "admin"}, "call", "anything"); ok {
		t.Fatal("empty PDP must deny")
	}
}

func TestPDPPolicyMatching(t *testing.T) {
	pdp := &PDP{}
	pdp.AddPolicy(Policy{
		Name: "orchestrators-run", Resource: "instrument/*", Action: "call",
		Conditions: []Condition{{Attr: "role", Op: OpEquals, Value: "orchestrator"}},
	})
	cases := []struct {
		attrs    map[string]string
		action   string
		resource string
		want     bool
	}{
		{map[string]string{"role": "orchestrator"}, "call", "instrument/xrd-1", true},
		{map[string]string{"role": "orchestrator"}, "call", "datasets/d1", false},
		{map[string]string{"role": "viewer"}, "call", "instrument/xrd-1", false},
		{map[string]string{"role": "orchestrator"}, "delete", "instrument/xrd-1", false},
		{map[string]string{}, "call", "instrument/xrd-1", false},
	}
	for i, c := range cases {
		got, _ := pdp.Authorize(c.attrs, c.action, c.resource)
		if got != c.want {
			t.Errorf("case %d: Authorize = %v, want %v", i, got, c.want)
		}
	}
}

func TestPDPConditionOps(t *testing.T) {
	if !(Condition{Attr: "x", Op: OpIn, Value: "a, b ,c"}).match(map[string]string{"x": "b"}) {
		t.Fatal("OpIn failed")
	}
	if (Condition{Attr: "x", Op: OpIn, Value: "a,b"}).match(map[string]string{"x": "z"}) {
		t.Fatal("OpIn matched non-member")
	}
	if !(Condition{Attr: "x", Op: OpNotEquals, Value: "a"}).match(map[string]string{}) {
		t.Fatal("OpNotEquals should match missing attr")
	}
	if (Condition{Attr: "x", Op: OpIn, Value: "a"}).match(map[string]string{}) {
		t.Fatal("OpIn matched missing attr")
	}
}

func TestPDPWildcardAction(t *testing.T) {
	pdp := &PDP{}
	pdp.AddPolicy(Policy{Name: "admin-all", Resource: "*", Action: "*",
		Conditions: []Condition{{Attr: "role", Op: OpEquals, Value: "admin"}}})
	if ok, _ := pdp.Authorize(map[string]string{"role": "admin"}, "anything", "res"); !ok {
		t.Fatal("wildcard policy failed")
	}
}

func TestGuardAuditTrail(t *testing.T) {
	_, fed, ornl, _ := fixture(t)
	pdp := &PDP{}
	pdp.AddPolicy(Policy{Name: "p", Resource: "r", Action: "call",
		Conditions: []Condition{{Attr: "role", Op: OpEquals, Value: "agent"}}})
	g := &Guard{Fed: fed, PDP: pdp}

	good := ornl.Issue(Principal{ID: "ok", Attributes: map[string]string{"role": "agent"}}, "anl")
	bad := ornl.Issue(Principal{ID: "nope", Attributes: map[string]string{"role": "intern"}}, "anl")

	if err := g.Check("anl", good, "call", "r"); err != nil {
		t.Fatalf("authorized check failed: %v", err)
	}
	if err := g.Check("anl", bad, "call", "r"); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	audit := fed.Audit()
	if len(audit) != 2 {
		t.Fatalf("audit entries = %d, want 2", len(audit))
	}
	if !audit[0].Allowed || audit[1].Allowed {
		t.Fatalf("audit decisions wrong: %+v", audit)
	}
	if audit[1].Subject != "nope" {
		t.Fatalf("audit subject = %q", audit[1].Subject)
	}
}

func TestTokenManagerContinuousRenewal(t *testing.T) {
	eng, fed, ornl, _ := fixture(t)
	ornl.TokenTTL = 10 * sim.Second
	tm := NewTokenManager(ornl, Principal{ID: "agent", Attributes: map[string]string{"role": "agent"}}, "anl")
	defer tm.Stop()

	// Sample the token at 4s intervals out to 60s: it must always verify,
	// which is only possible if renewal is happening.
	failures := 0
	for i := 1; i <= 15; i++ {
		eng.Schedule(sim.Time(i)*4*sim.Second, func() {
			if err := fed.Verify("anl", tm.Token()); err != nil {
				failures++
			}
		})
	}
	if err := eng.RunUntil(61 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if failures > 0 {
		t.Fatalf("%d verification failures despite continuous renewal", failures)
	}
	if tm.Renewals() < 10 {
		t.Fatalf("renewals = %d, want >= 10 over 60s at 5s cadence", tm.Renewals())
	}
}

// End-to-end: zero-trust middleware on the bus rejects unauthenticated and
// unauthorized calls but passes legitimate traffic.
func TestBusMiddlewareEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(9))
	for _, s := range []netsim.SiteID{"ornl", "anl"} {
		net.AddSite(s).Firewall.AllowAll()
	}
	net.Connect("ornl", "anl", netsim.Link{Latency: 5 * sim.Millisecond})
	fabric := bus.NewFabric(net)

	fed := NewFederation(eng)
	ornl := NewIdentityProvider(eng, "ornl", []byte("k1"))
	fed.RegisterIdP(ornl)
	fed.TrustAll([]netsim.SiteID{"ornl", "anl"})
	pdp := &PDP{}
	pdp.AddPolicy(Policy{Name: "agents-call", Resource: "*", Action: "call",
		Conditions: []Condition{{Attr: "role", Op: OpEquals, Value: "agent"}}})
	fabric.Use(BusMiddleware(&Guard{Fed: fed, PDP: pdp}))

	fabric.Broker("anl").RegisterFunc("svc", 0, func(*bus.Envelope) (any, error) { return "ok", nil })

	tok := ornl.Issue(Principal{ID: "a1", Attributes: map[string]string{"role": "agent"}}, "anl")
	var okErr, noTokErr error
	fabric.Call(bus.CallOpts{
		From: bus.Address{Site: "ornl", Name: "c"}, To: bus.Address{Site: "anl", Name: "svc"},
		Method: "svc", Token: tok,
	}, func(_ any, err error) { okErr = err })
	fabric.Call(bus.CallOpts{
		From: bus.Address{Site: "ornl", Name: "c"}, To: bus.Address{Site: "anl", Name: "svc"},
		Method: "svc", // no token
	}, func(_ any, err error) { noTokErr = err })

	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if okErr != nil {
		t.Fatalf("authenticated call failed: %v", okErr)
	}
	if noTokErr == nil {
		t.Fatal("unauthenticated call succeeded through zero-trust middleware")
	}
	if fed.Metrics().Counter("security.authn_failures").Value() != 1 {
		t.Fatal("authn failure not counted")
	}
}

func TestAuditBounded(t *testing.T) {
	_, fed, ornl, _ := fixture(t)
	fed.MaxAuditEntries = 10
	g := &Guard{Fed: fed, PDP: &PDP{}}
	tok := ornl.Issue(Principal{ID: "x"}, "anl")
	for i := 0; i < 25; i++ {
		_ = g.Check("anl", tok, "call", "r")
	}
	if len(fed.Audit()) != 10 {
		t.Fatalf("audit length = %d, want bounded at 10", len(fed.Audit()))
	}
}
