// Hierarchical timer wheel — the pending-event store behind Engine.
//
// Each shard keeps a near heap (a hand-rolled binary min-heap ordered by
// exact (time, sequence), no interface boxing) holding every event whose
// tick has been reached by the wheel cursor, plus numLevels overflow
// levels of wheelSlots slots each. Level k slots are 2^(tickBits+k*slotBits)
// ns wide; together the levels cover the full int64 time range, so there is
// no unbounded "far list". Slots are intrusive doubly-linked lists with an
// occupancy bitmap per level, so advancing across idle gaps is a bitmap
// scan rather than a tick-by-tick crawl, and cascade work is O(levels) per
// event amortized.
//
// Ordering invariant: every queued event with tick(at) <= cur sits in the
// near heap; slots only ever hold events with tick(at) > cur. The heap
// compares exact (at, seq), so the wheel reproduces the reference heap's
// total order bit for bit — the property test in wheel_test.go holds the
// two implementations against each other under randomized schedules.
package sim

import "math/bits"

const (
	tickBits   = 16 // 65.536µs per tick: LAN latencies span a few ticks
	slotBits   = 8
	wheelSlots = 1 << slotBits
	slotMask   = wheelSlots - 1
	numLevels  = 6 // 16 + 6*8 = 64 bits: covers all of Time
	bitmapLen  = wheelSlots / 64
)

const (
	whereFree uint8 = iota
	whereNear
	whereSlot
)

// node is a pooled scheduled event. Nodes live in exactly one place at a
// time (freelist, near heap, or a wheel slot), tracked by where. The
// generation counter invalidates stale Event handles on recycle.
type node struct {
	at    Time
	seq   uint64
	fn    func()
	fnA   func(any)
	arg   any
	label string

	gen     uint32
	shard   int32
	where   uint8
	level   uint8
	slot    uint16
	heapIdx int32
	prev    *node
	next    *node // also the freelist link
}

func (n *node) tick() uint64 { return uint64(n.at) >> tickBits }

// list is an intrusive doubly-linked slot list.
type list struct {
	head, tail *node
}

func (l *list) push(n *node) {
	n.prev = l.tail
	n.next = nil
	if l.tail != nil {
		l.tail.next = n
	} else {
		l.head = n
	}
	l.tail = n
}

func (l *list) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// shard is one timer wheel plus its near heap.
type shard struct {
	near []*node // binary min-heap by (at, seq)

	levels [numLevels][wheelSlots]list
	bitmap [numLevels][bitmapLen]uint64
	wheelN int    // events currently in slots (not in near)
	cur    uint64 // wheel cursor in ticks; see ordering invariant above

	count     int // total pending on this shard
	processed uint64

	// Cached head key, maintained so the executive's shard merge is a
	// handful of integer compares instead of a wheel scan per step.
	headOK  bool
	headAt  Time
	headSeq uint64
}

func newShard() *shard {
	return &shard{near: make([]*node, 0, 64)}
}

// levelFor places a delta (in ticks, >= 1) on its wheel level.
func levelFor(delta uint64) int {
	lvl := (bits.Len64(delta) - 1) / slotBits
	if lvl >= numLevels {
		lvl = numLevels - 1
	}
	return lvl
}

func (s *shard) insert(n *node) {
	s.count++
	tick := n.tick()
	if tick <= s.cur {
		s.heapPush(n)
		if s.headOK && (n.at < s.headAt || (n.at == s.headAt && n.seq < s.headSeq)) {
			s.headAt, s.headSeq = n.at, n.seq
		}
		return
	}
	s.toSlot(n, tick)
}

func (s *shard) toSlot(n *node, tick uint64) {
	lvl := levelFor(tick - s.cur)
	// A delta near the top of its level's range can alias the cursor's
	// own slot (unit difference of exactly wheelSlots — one full wrap),
	// which would make cascade a no-op. One level up the same entry is a
	// clean one-unit offset. The top level never wraps: Time's 63 bits
	// leave at most 2^47 ticks, half of level 5's span.
	shift := uint(lvl) * slotBits
	if (tick>>shift)-(s.cur>>shift) >= wheelSlots {
		lvl++
		shift += slotBits
	}
	idx := uint16((tick >> shift) & slotMask)
	n.where = whereSlot
	n.level = uint8(lvl)
	n.slot = idx
	s.levels[lvl][idx].push(n)
	s.bitmap[lvl][idx>>6] |= 1 << (idx & 63)
	s.wheelN++
}

func (s *shard) remove(n *node) {
	s.count--
	switch n.where {
	case whereNear:
		s.heapRemove(int(n.heapIdx))
		if s.headOK && n.at == s.headAt && n.seq == s.headSeq {
			s.headOK = false
		}
	case whereSlot:
		lvl, idx := int(n.level), n.slot
		l := &s.levels[lvl][idx]
		l.unlink(n)
		if l.head == nil {
			s.bitmap[lvl][idx>>6] &^= 1 << (idx & 63)
		}
		s.wheelN--
	}
	n.where = whereFree
}

// peek ensures the cached head key is valid, refilling the near heap from
// the wheel as needed. It reports false when the shard is empty.
func (s *shard) peek() bool {
	if s.headOK {
		return true
	}
	if s.count == 0 {
		return false
	}
	s.refill()
	if len(s.near) == 0 {
		return false
	}
	h := s.near[0]
	s.headAt, s.headSeq, s.headOK = h.at, h.seq, true
	return true
}

// popHead removes and returns the earliest event. peek must have returned
// true immediately before.
func (s *shard) popHead() *node {
	n := s.heapPop()
	s.count--
	n.where = whereFree
	// After a completed refill every slot-resident event is strictly
	// later than the wheel cursor, so the remaining heap minimum is still
	// the shard minimum; only an empty heap forces another wheel scan.
	if len(s.near) > 0 {
		h := s.near[0]
		s.headAt, s.headSeq, s.headOK = h.at, h.seq, true
	} else {
		s.headOK = false
	}
	return n
}

// refill advances the wheel cursor until the near heap provably holds the
// shard minimum: it repeatedly locates the earliest occupied slot across
// all levels (bitmap scan), cascades overflow slots downward, and drains
// level-0 slots into the heap, stopping once every remaining slot is
// strictly beyond the cursor.
func (s *shard) refill() {
	for s.wheelN > 0 {
		bestTick, bestLvl := s.findEarliest()
		if bestLvl < 0 {
			return
		}
		if len(s.near) > 0 && bestTick > s.cur {
			// Heap holds ticks <= cur; every slot is later. Done.
			return
		}
		if bestTick > s.cur {
			s.cur = bestTick
		}
		s.drain(bestLvl, uint16((bestTick>>(uint(bestLvl)*slotBits))&slotMask))
	}
}

// findEarliest returns the earliest candidate tick over all levels and the
// level it lives on (ties go to the finest level). For level k the
// candidate is the start tick of the next occupied slot's span, clamped to
// the cursor — an upper-level slot can begin before cur while holding only
// later events, and draining it re-sorts those events onto lower levels.
func (s *shard) findEarliest() (uint64, int) {
	var bestTick uint64
	bestLvl := -1
	for lvl := 0; lvl < numLevels; lvl++ {
		shift := uint(lvl) * slotBits
		pos := (s.cur >> shift) & slotMask
		off, ok := s.nextOccupied(lvl, pos)
		if !ok {
			continue
		}
		unit := (s.cur >> shift) + off
		cand := unit << shift
		if cand < s.cur {
			cand = s.cur
		}
		if bestLvl < 0 || cand < bestTick {
			bestTick, bestLvl = cand, lvl
		}
	}
	return bestTick, bestLvl
}

// nextOccupied scans level lvl's bitmap circularly from slot pos
// (inclusive) and returns the offset (0..wheelSlots-1) to the first
// occupied slot.
func (s *shard) nextOccupied(lvl int, pos uint64) (uint64, bool) {
	bm := &s.bitmap[lvl]
	if bm[0]|bm[1]|bm[2]|bm[3] == 0 {
		return 0, false
	}
	word := int(pos >> 6)
	bit := pos & 63
	if w := bm[word] >> bit; w != 0 {
		return uint64(bits.TrailingZeros64(w)), true
	}
	for i := 1; i <= bitmapLen; i++ {
		w := bm[(word+i)%bitmapLen]
		if w != 0 {
			return uint64(i*64) - bit + uint64(bits.TrailingZeros64(w)), true
		}
	}
	return 0, false
}

// drain empties one slot: level-0 events go straight to the near heap
// (their tick equals the cursor now), upper-level events cascade through
// insert, landing on a finer level or the heap.
func (s *shard) drain(lvl int, idx uint16) {
	l := &s.levels[lvl][idx]
	n := l.head
	l.head, l.tail = nil, nil
	s.bitmap[lvl][idx>>6] &^= 1 << (idx & 63)
	for n != nil {
		next := n.next
		n.prev, n.next = nil, nil
		s.wheelN--
		if tick := n.tick(); tick <= s.cur {
			s.heapPush(n)
		} else {
			s.toSlot(n, tick)
		}
		n = next
	}
}

// --- near heap: hand-rolled binary min-heap over (at, seq), no interface
// boxing, index-tracked for O(log n) removal on Cancel. ---

func nodeLess(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *shard) heapPush(n *node) {
	n.where = whereNear
	n.heapIdx = int32(len(s.near))
	s.near = append(s.near, n)
	s.siftUp(len(s.near) - 1)
}

func (s *shard) heapPop() *node {
	h := s.near
	n := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[0].heapIdx = 0
	h[last] = nil
	s.near = h[:last]
	if last > 0 {
		s.siftDown(0)
	}
	return n
}

func (s *shard) heapRemove(i int) {
	h := s.near
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		h[i].heapIdx = int32(i)
	}
	h[last] = nil
	s.near = h[:last]
	if i != last {
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
}

func (s *shard) siftUp(i int) {
	h := s.near
	n := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !nodeLess(n, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].heapIdx = int32(i)
		i = parent
	}
	h[i] = n
	n.heapIdx = int32(i)
}

// siftDown reports whether the node moved.
func (s *shard) siftDown(i int) bool {
	h := s.near
	n := h[i]
	start := i
	size := len(h)
	for {
		child := 2*i + 1
		if child >= size {
			break
		}
		if r := child + 1; r < size && nodeLess(h[r], h[child]) {
			child = r
		}
		if !nodeLess(h[child], n) {
			break
		}
		h[i] = h[child]
		h[i].heapIdx = int32(i)
		i = child
	}
	h[i] = n
	n.heapIdx = int32(i)
	return i > start
}
