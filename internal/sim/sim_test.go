package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*Second, func() { order = append(order, 3) })
	e.Schedule(1*Second, func() { order = append(order, 1) })
	e.Schedule(2*Second, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(Second, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("second Cancel should be a no-op")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ev.Pending() {
		t.Fatal("event still pending after cancel")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(0, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Cancel(ev) {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(Second, func() {
		times = append(times, e.Now())
		e.Schedule(Second, func() {
			times = append(times, e.Now())
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != Second || times[1] != 2*Second {
		t.Fatalf("times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for i := 1; i <= 5; i++ {
		d := Time(i) * Second
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	if err := e.RunUntil(3 * Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	if err := e.RunUntil(10 * Second); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10*Second {
		t.Fatalf("Now() = %v, want 10s", e.Now())
	}
}

func TestHorizon(t *testing.T) {
	e := NewEngine()
	e.Horizon = 100
	var tick func()
	tick = func() { e.Schedule(Second, tick) }
	e.Schedule(Second, tick)
	if err := e.Run(); err != ErrHorizon {
		t.Fatalf("Run() = %v, want ErrHorizon", err)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []int
	stop := e.Ticker(Second, func(i int) {
		ticks = append(ticks, i)
		if i == 4 {
			// stop from within the callback
		}
	})
	e.Schedule(4*Second+Millisecond, func() { stop() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 4 {
		t.Fatalf("ticks = %v, want 4 ticks", ticks)
	}
}

func TestTickerStopImmediately(t *testing.T) {
	e := NewEngine()
	n := 0
	stop := e.Ticker(Second, func(int) { n++ })
	stop()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("ticker fired %d times after immediate stop", n)
	}
}

func TestReschedule(t *testing.T) {
	e := NewEngine()
	n := 0
	ev := e.Schedule(Second, func() { n++ })
	e.Schedule(500*Millisecond, func() {
		ev = e.Reschedule(ev, 2*Second) // now fires at 2.5s
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("event fired %d times, want exactly 1", n)
	}
	if e.Now() != 2500*Millisecond {
		t.Fatalf("Now() = %v, want 2.5s", e.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-5*Second, func() { fired = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || e.Now() != 0 {
		t.Fatalf("negative delay not clamped: fired=%v now=%v", fired, e.Now())
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(time.Second) != Second {
		t.Fatal("Duration(time.Second) != Second")
	}
	if (90 * Minute).Std() != 90*time.Minute {
		t.Fatal("Std round-trip failed")
	}
	if Second.Seconds() != 1.0 {
		t.Fatal("Seconds() wrong")
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i)*Second, func() {})
	}
	ev := e.Schedule(10*Second, func() {})
	e.Cancel(ev)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7 (cancelled events don't count)", e.Processed())
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the clock ends at the max delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		var maxT Time
		for _, d := range delays {
			dt := Time(d) * Millisecond
			if dt > maxT {
				maxT = dt
			}
			e.Schedule(dt, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAtClampsPast(t *testing.T) {
	e := NewEngine()
	e.Schedule(5*Second, func() {
		ev := e.At(Second, func() {}) // in the past
		if ev.At() != 5*Second {
			t.Errorf("past instant not clamped: %v", ev.At())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
