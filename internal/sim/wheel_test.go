package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap reimplement the pre-wheel container/heap event queue:
// the reference ordering the timer wheel must reproduce exactly.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// TestWheelMatchesHeapOrdering drives the wheel engine and the reference
// heap with identical randomized schedules — same-instant events,
// cancellations, negative-delay clamps, nested schedules spanning every
// wheel level — and requires the exact same fire order.
func TestWheelMatchesHeapOrdering(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		ref := &refHeap{}
		var refSeq uint64
		var gotOrder, wantOrder []int

		// Delay distribution spans all wheel levels: sub-tick, a few
		// ticks, and far-future (days).
		delay := func() Time {
			switch r.Intn(5) {
			case 0:
				return Time(r.Int63n(int64(Microsecond)))
			case 1:
				return Time(r.Int63n(int64(10 * Millisecond)))
			case 2:
				return Time(r.Int63n(int64(2 * Minute)))
			case 3:
				return Time(r.Int63n(int64(3 * Day)))
			default:
				return -Time(r.Int63n(int64(Second))) // clamped to "now"
			}
		}

		type sched struct {
			ev Event
			re *refEvent
		}
		var live []sched
		id := 0

		schedule := func(d Time) {
			myID := id
			id++
			ev := e.Schedule(d, func() { gotOrder = append(gotOrder, myID) })
			at := d
			if at < 0 {
				at = 0
			}
			re := &refEvent{at: e.Now() + at, seq: refSeq, id: myID}
			// Mirror the engine's clamp: Schedule(d) with negative d
			// fires at the current instant.
			re.at = ev.At()
			refSeq++
			heap.Push(ref, re)
			live = append(live, sched{ev, re})
		}

		for i := 0; i < 400; i++ {
			schedule(delay())
			// Duplicate some instants exactly to stress FIFO ties.
			if r.Intn(4) == 0 && len(live) > 0 {
				prev := live[r.Intn(len(live))]
				e.At(prev.re.at, func() {})
				// keep mirrors aligned: schedule the same no-op in ref
				at := prev.re.at
				if at < 0 {
					at = 0
				}
				heap.Push(ref, &refEvent{at: at, seq: refSeq, id: -1})
				refSeq++
			}
		}
		// Cancel a random subset before running.
		for _, sc := range live {
			if r.Intn(5) == 0 {
				if e.Cancel(sc.ev) {
					sc.re.id = -2 // tombstone in the reference
				}
			}
		}

		if err := e.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for ref.Len() > 0 {
			re := heap.Pop(ref).(*refEvent)
			if re.id >= 0 {
				wantOrder = append(wantOrder, re.id)
			}
		}
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("seed %d: order diverges at %d: wheel=%d ref=%d", seed, i, gotOrder[i], wantOrder[i])
			}
		}
	}
}

// TestWheelNestedRandom drives nested scheduling (events scheduling more
// events) against the reference, exercising cursor advancement with the
// clock in motion.
func TestWheelNestedRandom(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []Time
		var n int
		var spawn func()
		spawn = func() {
			fired = append(fired, e.Now())
			if n >= 2000 {
				return
			}
			for k := r.Intn(3); k > 0; k-- {
				n++
				e.Schedule(Time(r.Int63n(int64(Hour))), spawn)
			}
		}
		for i := 0; i < 50; i++ {
			n++
			e.Schedule(Time(r.Int63n(int64(Day))), spawn)
		}
		if err := e.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("seed %d: time went backwards at %d: %v -> %v", seed, i, fired[i-1], fired[i])
			}
		}
	}
}

// TestShardMergeMatchesSequential runs an identical nested workload on a
// single-shard engine and on a sharded engine (events pinned round-robin
// across shards) and requires the identical fire sequence — the
// deterministic-merge guarantee the PDES mode rests on.
func TestShardMergeMatchesSequential(t *testing.T) {
	run := func(shards int) []int64 {
		e := NewEngine()
		idx := make([]int, 0, shards)
		idx = append(idx, 0)
		for i := 1; i < shards; i++ {
			idx = append(idx, e.AddShard())
		}
		r := rand.New(rand.NewSource(7))
		var log []int64
		var n int
		// Shard targets derive from the deterministic spawn counter, not
		// from r, so the random-draw sequence is identical whatever the
		// shard count — only placement differs.
		var spawn func()
		spawn = func() {
			log = append(log, int64(e.Now()))
			if n >= 3000 {
				return
			}
			n++
			d := Time(r.Int63n(int64(Minute)))
			e.ScheduleShard(idx[n%len(idx)], d, spawn)
		}
		for i := 0; i < 64; i++ {
			n++
			d := Time(r.Int63n(int64(Hour)))
			e.ScheduleShard(idx[i%len(idx)], d, spawn)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	seq := run(1)
	for _, shards := range []int{2, 5, 16} {
		got := run(shards)
		if len(got) != len(seq) {
			t.Fatalf("%d shards: %d events vs %d sequential", shards, len(got), len(seq))
		}
		for i := range got {
			if got[i] != seq[i] {
				t.Fatalf("%d shards: trajectory diverges at event %d: %d vs %d", shards, i, got[i], seq[i])
			}
		}
	}
}

// TestScheduleFireZeroAlloc is the pooled-kernel guard: after warmup,
// a Schedule→fire→reuse cycle must not allocate (mirroring the
// nil-profiler zero-alloc guard in internal/prof).
func TestScheduleFireZeroAlloc(t *testing.T) {
	e := NewEngine()
	sink := 0
	fn := func(any) { sink++ }
	// Warm the pool and the near-heap backing array.
	for i := 0; i < 64; i++ {
		e.ScheduleArg(Time(i)*Millisecond, fn, nil)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.ScheduleArg(Millisecond, fn, nil)
		e.ScheduleArg(Millisecond, fn, nil)
		e.ScheduleArg(2*Millisecond, fn, nil)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Schedule→fire→reuse allocated %.1f per cycle, want 0", allocs)
	}
}

// TestCancelZeroAlloc guards the cancel path the same way.
func TestCancelZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func(any) {}
	for i := 0; i < 8; i++ {
		ev := e.ScheduleArg(Second, fn, nil)
		e.Cancel(ev)
	}
	allocs := testing.AllocsPerRun(200, func() {
		ev := e.ScheduleArg(Hour, fn, nil)
		if !e.Cancel(ev) {
			t.Fatal("cancel failed")
		}
		if e.Cancel(ev) {
			t.Fatal("stale handle cancelled twice")
		}
	})
	if allocs != 0 {
		t.Fatalf("Schedule→cancel allocated %.1f per cycle, want 0", allocs)
	}
}

// TestStaleHandleSafety exercises the generation counter: a handle kept
// past its event's completion must be inert even after the node is
// recycled into a new event.
func TestStaleHandleSafety(t *testing.T) {
	e := NewEngine()
	ev1 := e.Schedule(Millisecond, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// ev1's node is now free; this schedule reuses it.
	fired := false
	ev2 := e.Schedule(Millisecond, func() { fired = true })
	if ev1.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if e.Cancel(ev1) {
		t.Fatal("stale handle cancelled the recycled node's new event")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("recycled event did not fire")
	}
	_ = ev2
}
