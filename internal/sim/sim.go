// Package sim provides the deterministic discrete-event simulation kernel
// that underpins every AISLE substrate: networks, instruments, agents, and
// campaigns all advance on the same virtual clock.
//
// The kernel executes events in a total order defined by (time, sequence
// number), which makes every simulation run bit-reproducible for a given
// seed regardless of host parallelism. Internally the pending set is held
// in per-shard hierarchical timer wheels (see wheel.go) with pooled event
// nodes, so Schedule/fire/Cancel allocate nothing in steady state; the
// shards are merged deterministically by exact (time, sequence) order, so
// shard count never changes a trajectory — sequential single-shard mode is
// the reference and sharded mode is proven byte-identical against it.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/aisle-sim/aisle/internal/prof"
)

// Time is virtual simulation time in nanoseconds since the start of the run.
// It deliberately mirrors time.Duration semantics so durations and instants
// compose with ordinary arithmetic.
type Time int64

// Common virtual time unit anchors, mirroring the time package.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
	Day              = 24 * Hour
)

// MaxTime is the largest representable virtual instant.
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns t expressed in floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts virtual time back to a time.Duration for formatting.
func (t Time) Std() time.Duration { return time.Duration(t) }

// String formats the instant using duration notation (e.g. "1h3m0.25s").
func (t Time) String() string { return time.Duration(t).String() }

// Event is a handle to a scheduled callback. Events are single-shot: after
// firing or cancellation the underlying node returns to the engine's pool
// and the handle goes stale. Handles are generation-checked values, so
// holding (or cancelling) a stale handle is always safe — it is simply a
// no-op. The zero Event is a valid "no event" handle.
type Event struct {
	n   *node
	gen uint32
	at  Time
}

// At reports the virtual instant the event was scheduled for. It remains
// valid after the event fires or is cancelled.
func (e Event) At() Time { return e.at }

// Valid reports whether the handle refers to an event at all (as opposed to
// the zero Event).
func (e Event) Valid() bool { return e.n != nil }

// Pending reports whether the event is still queued: it has neither fired
// nor been cancelled.
func (e Event) Pending() bool { return e.n != nil && e.n.gen == e.gen }

// Label returns the diagnostic label attached at scheduling time, or ""
// once the event has completed and its node been recycled.
func (e Event) Label() string {
	if e.n != nil && e.n.gen == e.gen {
		return e.n.label
	}
	return ""
}

// ErrHorizon is returned by Run when the configured event horizon is reached
// before the event queue drains, usually indicating a runaway feedback loop.
var ErrHorizon = errors.New("sim: event horizon reached")

// Engine is a discrete-event simulation executive. The zero value is ready
// to use; NewEngine is provided for symmetry and future options.
//
// An Engine always has at least one event shard (shard 0). AddShard
// registers additional shards — typically one per simulated site — each
// with its own timer wheel. The executive merges shard heads by exact
// (time, sequence) order, so the trajectory is identical whatever the
// shard count; shards exist so the pending set scales (each wheel stays
// small and cache-resident) and to carve the conservative-lookahead
// boundaries for parallel execution (see Lookahead).
type Engine struct {
	now    Time
	seq    uint64
	shards []*shard
	free   *node // node freelist, linked through next

	curShard int // shard of the currently executing event
	pending  int
	running  bool

	// Horizon bounds the number of events processed in a single Run call.
	// Zero means no bound.
	Horizon uint64

	// Prof, when non-nil, wraps every event callback in a sim.event
	// profiler region. The nil default costs one pointer test per event.
	Prof *prof.Profiler

	processed uint64
	lookahead Time
}

// NewEngine returns an Engine positioned at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

func (e *Engine) ensure() {
	if len(e.shards) == 0 {
		e.shards = append(e.shards, newShard())
	}
}

// AddShard registers a new event shard and returns its index. Shard 0
// always exists and is the default for events scheduled outside any
// sharded context. Events scheduled from within an executing event inherit
// that event's shard unless placed explicitly with the *Shard variants.
func (e *Engine) AddShard() int {
	e.ensure()
	e.shards = append(e.shards, newShard())
	return len(e.shards) - 1
}

// Shards reports the number of event shards (always >= 1 once the engine
// has been used).
func (e *Engine) Shards() int {
	e.ensure()
	return len(e.shards)
}

// SetLookahead records the conservative lookahead: the minimum cross-shard
// propagation latency (in netsim terms, the fastest link between sites).
// No event scheduled by shard A into shard B can land earlier than B's
// horizon + lookahead, which is the classic PDES safe window. The current
// executive merges shards exactly, so lookahead is advisory — it sizes the
// safe window reported by ShardStats and bounds future parallel execution.
func (e *Engine) SetLookahead(d Time) {
	if d < 0 {
		d = 0
	}
	e.lookahead = d
}

// Lookahead reports the conservative cross-shard lookahead window.
func (e *Engine) Lookahead() Time { return e.lookahead }

// ShardStat describes one shard's progress for observability.
type ShardStat struct {
	Pending   int    // events currently queued on this shard
	Processed uint64 // events fired from this shard
}

// ShardStats returns per-shard queue depth and fire counts.
func (e *Engine) ShardStats() []ShardStat {
	e.ensure()
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		out[i] = ShardStat{Pending: s.count, Processed: s.processed}
	}
	return out
}

// Now reports current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports the number of live events currently queued. Cancelled
// events leave the queue immediately and are not counted.
func (e *Engine) Pending() int { return e.pending }

// acquire pops a node from the freelist or allocates one.
func (e *Engine) acquire() *node {
	n := e.free
	if n == nil {
		return &node{}
	}
	e.free = n.next
	n.next = nil
	return n
}

// release recycles a completed node. Bumping the generation invalidates
// every outstanding handle before the node is reused.
func (e *Engine) release(n *node) {
	n.gen++
	n.fn = nil
	n.fnA = nil
	n.arg = nil
	n.label = ""
	n.prev = nil
	n.where = whereFree
	n.next = e.free
	e.free = n
}

// Schedule arranges for fn to run after delay d. Negative delays are
// clamped to zero, which schedules fn for the current instant after all
// already-queued events at that instant.
func (e *Engine) Schedule(d Time, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// ScheduleArg is Schedule without the closure: fn is invoked with arg at
// fire time. Hot paths use it with a prebound method value and a pooled
// argument so scheduling allocates nothing.
func (e *Engine) ScheduleArg(d Time, fn func(any), arg any) Event {
	if d < 0 {
		d = 0
	}
	if fn == nil {
		panic("sim: ScheduleArg called with nil function")
	}
	return e.at(e.now+d, nil, fn, arg, e.curShard)
}

// ScheduleShard is Schedule targeting an explicit event shard, used by the
// network layer to place deliveries on the destination site's shard.
func (e *Engine) ScheduleShard(shardIdx int, d Time, fn func()) Event {
	if d < 0 {
		d = 0
	}
	if fn == nil {
		panic("sim: ScheduleShard called with nil function")
	}
	return e.at(e.now+d, fn, nil, nil, shardIdx)
}

// ScheduleArgShard combines ScheduleArg and ScheduleShard.
func (e *Engine) ScheduleArgShard(shardIdx int, d Time, fn func(any), arg any) Event {
	if d < 0 {
		d = 0
	}
	if fn == nil {
		panic("sim: ScheduleArgShard called with nil function")
	}
	return e.at(e.now+d, nil, fn, arg, shardIdx)
}

// ScheduleLabeled is Schedule with a diagnostic label used in traces.
func (e *Engine) ScheduleLabeled(d Time, label string, fn func()) Event {
	ev := e.Schedule(d, fn)
	ev.n.label = label
	return ev
}

// At arranges for fn to run at absolute virtual instant t. Instants in the
// past are clamped to the current time.
func (e *Engine) At(t Time, fn func()) Event {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	return e.at(t, fn, nil, nil, e.curShard)
}

func (e *Engine) at(t Time, fn func(), fnA func(any), arg any, shardIdx int) Event {
	e.ensure()
	if t < e.now {
		t = e.now
	}
	if shardIdx < 0 || shardIdx >= len(e.shards) {
		panic(fmt.Sprintf("sim: schedule on unknown shard %d (have %d)", shardIdx, len(e.shards)))
	}
	n := e.acquire()
	n.at = t
	n.seq = e.seq
	n.fn = fn
	n.fnA = fnA
	n.arg = arg
	n.shard = int32(shardIdx)
	e.seq++
	e.pending++
	e.shards[shardIdx].insert(n)
	return Event{n: n, gen: n.gen, at: t}
}

// Cancel removes ev from the queue if it has not yet fired. Cancelling a
// fired, already-cancelled, or zero event is a no-op. It reports whether
// the event was actually cancelled by this call.
func (e *Engine) Cancel(ev Event) bool {
	n := ev.n
	if n == nil || n.gen != ev.gen {
		return false
	}
	e.shards[n.shard].remove(n)
	e.pending--
	e.release(n)
	return true
}

// Reschedule cancels ev and schedules its callback anew after delay d,
// returning the new event. It is a convenience for timer-refresh patterns
// (heartbeats, token renewal, lease refresh). Rescheduling a completed or
// zero event returns the zero Event.
func (e *Engine) Reschedule(ev Event, d Time) Event {
	n := ev.n
	if n == nil || n.gen != ev.gen {
		return Event{}
	}
	fn, fnA, arg, label := n.fn, n.fnA, n.arg, n.label
	shardIdx := int(n.shard)
	e.Cancel(ev)
	if d < 0 {
		d = 0
	}
	nev := e.at(e.now+d, fn, fnA, arg, shardIdx)
	nev.n.label = label
	return nev
}

// minShard returns the shard holding the globally earliest (time, seq)
// event, or nil when every shard is drained. This is the deterministic
// merge point: because the comparison is the exact total order, the merged
// trajectory is identical to the single-shard reference bit for bit.
func (e *Engine) minShard() *shard {
	var best *shard
	for _, s := range e.shards {
		if !s.peek() {
			continue
		}
		if best == nil || s.headAt < best.headAt ||
			(s.headAt == best.headAt && s.headSeq < best.headSeq) {
			best = s
		}
	}
	return best
}

// step executes the next event. It reports false when the queue is empty.
func (e *Engine) step() bool {
	s := e.minShard()
	if s == nil {
		return false
	}
	e.fire(s)
	return true
}

// fire pops and executes the head event of shard s, which the caller has
// established holds the global minimum.
func (e *Engine) fire(s *shard) {
	n := s.popHead()
	if n.at < e.now {
		panic(fmt.Sprintf("sim: time went backwards: %v -> %v", e.now, n.at))
	}
	e.now = n.at
	e.curShard = int(n.shard)
	e.pending--
	e.processed++
	s.processed++
	fn, fnA, arg := n.fn, n.fnA, n.arg
	e.release(n)
	r := e.Prof.Enter(prof.SiteSimEvent)
	if fnA != nil {
		fnA(arg)
	} else {
		fn()
	}
	r.End()
	e.curShard = 0
}

// Run executes events until the queue drains. It returns ErrHorizon if the
// configured horizon is exceeded.
func (e *Engine) Run() error {
	return e.RunUntil(MaxTime)
}

// RunUntil executes events with timestamps <= limit, leaving later events
// queued and the clock advanced to min(limit, time of last event). It
// returns ErrHorizon if the horizon is exceeded.
func (e *Engine) RunUntil(limit Time) error {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.ensure()
	e.running = true
	defer func() { e.running = false }()
	var n uint64
	for {
		s := e.minShard()
		if s == nil || s.headAt > limit {
			break
		}
		e.fire(s)
		n++
		if e.Horizon > 0 && n >= e.Horizon {
			return ErrHorizon
		}
	}
	if e.now < limit && limit != MaxTime {
		e.now = limit
	}
	return nil
}

// Ticker invokes fn every period until the returned stop function is called.
// The first invocation happens one period from now. fn receives the tick
// index starting at 0.
func (e *Engine) Ticker(period Time, fn func(i int)) (stop func()) {
	if period <= 0 {
		panic("sim: Ticker with non-positive period")
	}
	stopped := false
	var tick func()
	i := 0
	var pending Event
	tick = func() {
		if stopped {
			return
		}
		fn(i)
		i++
		if !stopped {
			pending = e.Schedule(period, tick)
		}
	}
	pending = e.Schedule(period, tick)
	return func() {
		stopped = true
		e.Cancel(pending)
	}
}

// After is a readability helper equivalent to Schedule.
func (e *Engine) After(d Time, fn func()) Event { return e.Schedule(d, fn) }
