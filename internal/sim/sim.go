// Package sim provides the deterministic discrete-event simulation kernel
// that underpins every AISLE substrate: networks, instruments, agents, and
// campaigns all advance on the same virtual clock.
//
// The kernel is intentionally sequential. Events execute in a total order
// defined by (time, sequence number), which makes every simulation run
// bit-reproducible for a given seed regardless of host parallelism.
// Parallelism in AISLE lives one level up: experiment harnesses run many
// independent simulations concurrently, each with its own Engine.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/aisle-sim/aisle/internal/prof"
)

// Time is virtual simulation time in nanoseconds since the start of the run.
// It deliberately mirrors time.Duration semantics so durations and instants
// compose with ordinary arithmetic.
type Time int64

// Common virtual time unit anchors, mirroring the time package.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
	Day              = 24 * Hour
)

// MaxTime is the largest representable virtual instant.
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns t expressed in floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts virtual time back to a time.Duration for formatting.
func (t Time) Std() time.Duration { return time.Duration(t) }

// String formats the instant using duration notation (e.g. "1h3m0.25s").
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Events are single-shot: after firing or
// cancellation they are inert. The zero value is not usable; events are
// created by Engine scheduling methods.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	fired    bool
	index    int // heap index, -1 when not queued
	label    string
}

// At reports the virtual instant the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled }

// Fired reports whether the event callback has run.
func (e *Event) Fired() bool { return e.fired }

// Label returns the diagnostic label attached at scheduling time.
func (e *Event) Label() string { return e.label }

// eventHeap orders events by (time, sequence) so simultaneous events fire in
// scheduling order — the property that makes runs reproducible.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// ErrHorizon is returned by Run when the configured event horizon is reached
// before the event queue drains, usually indicating a runaway feedback loop.
var ErrHorizon = errors.New("sim: event horizon reached")

// Engine is a discrete-event simulation executive. The zero value is ready
// to use; NewEngine is provided for symmetry and future options.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	running bool

	// Horizon bounds the number of events processed in a single Run call.
	// Zero means no bound.
	Horizon uint64

	// Prof, when non-nil, wraps every event callback in a sim.event
	// profiler region. The nil default costs one pointer test per event.
	Prof *prof.Profiler

	processed uint64
}

// NewEngine returns an Engine positioned at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports the number of events currently queued (including events
// that were cancelled but not yet popped).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule arranges for fn to run after delay d. Negative delays are
// clamped to zero, which schedules fn for the current instant after all
// already-queued events at that instant.
func (e *Engine) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// ScheduleLabeled is Schedule with a diagnostic label used in traces.
func (e *Engine) ScheduleLabeled(d Time, label string, fn func()) *Event {
	ev := e.Schedule(d, fn)
	ev.label = label
	return ev
}

// At arranges for fn to run at absolute virtual instant t. Instants in the
// past are clamped to the current time.
func (e *Engine) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes ev from the queue if it has not yet fired. Cancelling a
// fired or already-cancelled event is a no-op. It reports whether the event
// was actually cancelled by this call.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.fired || ev.canceled {
		return false
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
	return true
}

// Reschedule cancels ev and schedules fn-preserving copy after delay d,
// returning the new event. It is a convenience for timer-refresh patterns
// (heartbeats, token renewal, lease refresh).
func (e *Engine) Reschedule(ev *Event, d Time) *Event {
	if ev == nil {
		return nil
	}
	fn := ev.fn
	e.Cancel(ev)
	n := e.Schedule(d, fn)
	n.label = ev.label
	return n
}

// step executes the next event. It reports false when the queue is empty.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", e.now, ev.at))
		}
		e.now = ev.at
		ev.fired = true
		e.processed++
		r := e.Prof.Enter(prof.SiteSimEvent)
		ev.fn()
		r.End()
		return true
	}
	return false
}

// Run executes events until the queue drains. It returns ErrHorizon if the
// configured horizon is exceeded.
func (e *Engine) Run() error {
	return e.RunUntil(MaxTime)
}

// RunUntil executes events with timestamps <= limit, leaving later events
// queued and the clock advanced to min(limit, time of last event). It
// returns ErrHorizon if the horizon is exceeded.
func (e *Engine) RunUntil(limit Time) error {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	var n uint64
	for len(e.queue) > 0 {
		// Peek: the heap root is the earliest event.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > limit {
			break
		}
		if !e.step() {
			break
		}
		n++
		if e.Horizon > 0 && n >= e.Horizon {
			return ErrHorizon
		}
	}
	if e.now < limit && limit != MaxTime {
		e.now = limit
	}
	return nil
}

// Ticker invokes fn every period until the returned stop function is called.
// The first invocation happens one period from now. fn receives the tick
// index starting at 0.
func (e *Engine) Ticker(period Time, fn func(i int)) (stop func()) {
	if period <= 0 {
		panic("sim: Ticker with non-positive period")
	}
	stopped := false
	var tick func()
	i := 0
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn(i)
		i++
		if !stopped {
			pending = e.Schedule(period, tick)
		}
	}
	pending = e.Schedule(period, tick)
	return func() {
		stopped = true
		e.Cancel(pending)
	}
}

// After is a readability helper equivalent to Schedule.
func (e *Engine) After(d Time, fn func()) *Event { return e.Schedule(d, fn) }
