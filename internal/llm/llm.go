// Package llm models the LLM-based orchestration agents of the paper's
// dimension 3. The paper's architecture treats LLM agents as probabilistic,
// higher-latency orchestrators that coordinate deterministic tools
// (optimizers, twins, instruments) and must be wrapped in verification
// infrastructure to be trustworthy (milestone M8).
//
// Rather than wrapping a real language model, the package implements a
// stochastic cognitive model with exactly the failure modes the paper
// worries about: plan steps acquire defects (unit slips, out-of-range
// setpoints, parameter transpositions, stale values) at a configurable
// rate, some defects violate physics (catchable by a digital-twin
// verifier) while others are subtle (in-range but wrong), and verification
// repairs cost latency. A parameterized human orchestrator — slower,
// nearly defect-free, constrained to working hours — provides the manual
// baseline the paper's 3x speedup claim compares against.
package llm

import (
	"fmt"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/twin"
)

// DefectKind classifies injected plan defects.
type DefectKind string

// Defect kinds. UnitSlip and RangeError usually violate physics bounds
// (catchable); Transpose and StaleValue are subtle — physically plausible
// but wrong.
const (
	DefectNone       DefectKind = ""
	DefectUnitSlip   DefectKind = "unit-slip"
	DefectRangeError DefectKind = "range-error"
	DefectTranspose  DefectKind = "transpose"
	DefectStaleValue DefectKind = "stale-value"
)

// Proposal is one orchestration decision: the parameters the agent intends
// to run next, possibly corrupted in transcription.
type Proposal struct {
	Intended param.Point // what the planner meant
	Emitted  param.Point // what it actually wrote
	Defect   DefectKind
	// Repaired marks proposals fixed by the verification loop.
	Repaired bool
	// Latency is the total decision latency including repairs.
	Latency sim.Time
	// Trace is the reasoning trace for scientist review.
	Trace Trace
}

// Correct reports whether the emitted command matches intent.
func (p *Proposal) Correct() bool {
	if len(p.Intended) != len(p.Emitted) {
		return false
	}
	for k, v := range p.Intended {
		ev, ok := p.Emitted[k]
		if !ok {
			return false
		}
		d := ev - v
		if d < 0 {
			d = -d
		}
		tol := 1e-9 * (1 + abs(v))
		if d > tol {
			return false
		}
	}
	return true
}

// Trace is a reasoning trace: the grounded rationale a scientist reviews
// (milestone M9 requires >90% approval of traces).
type Trace struct {
	Goal      string
	Steps     []string
	Citations int  // references to knowledge-base entries or prior data
	Grounded  bool // claims tied to tool outputs rather than free assertion
}

// VerifyMode selects the verification depth (the E2 ablation axis).
type VerifyMode int

// Verification depths.
const (
	// VerifyOff executes proposals unchecked.
	VerifyOff VerifyMode = iota
	// VerifyBounds checks physics constraints and parameter bounds only.
	VerifyBounds
	// VerifyFull adds the digital-twin prediction cross-check: the twin's
	// predicted objective for the emitted command must match the prediction
	// recorded for the planner's intent (milestone M3's in-silico dry run).
	VerifyFull
)

// Orchestrator is the simulated LLM agent.
type Orchestrator struct {
	rnd *rng.Stream

	// DefectRate is the per-proposal probability of a transcription defect.
	// Published agent-reliability studies and the paper's own framing put
	// unverified agent error rates well above the 5% that M8's ">95%
	// correctness" target implies; default 0.25.
	DefectRate float64
	// SubtleFraction is the share of defects that stay physically plausible
	// (in-range) and therefore evade constraint checking. Default 0.2.
	SubtleFraction float64
	// DecisionLatency is the base thinking latency per proposal.
	// Default 30s.
	DecisionLatency sim.Time
	// RepairLatency is the extra cost of one verification repair round.
	// Default 15s.
	RepairLatency sim.Time
	// Verifier, when set, preflights every proposal against the digital
	// twin and repairs violations (up to MaxRepairs rounds).
	Verifier *twin.Twin
	// Mode selects verification depth; ignored when Verifier is nil.
	Mode VerifyMode
	// PredictionTol is the relative objective-prediction mismatch that
	// VerifyFull flags. Default 0.02.
	PredictionTol float64
	// MaxRepairs bounds verification repair rounds. Default 3.
	MaxRepairs int

	proposals int
	defects   int
	repairs   int
	caught    int
}

// NewOrchestrator builds an agent with the given defect profile. A non-nil
// verifier enables VerifyFull by default.
func NewOrchestrator(r *rng.Stream, verifier *twin.Twin) *Orchestrator {
	o := &Orchestrator{
		rnd:             r.Fork("llm"),
		DefectRate:      0.25,
		SubtleFraction:  0.2,
		DecisionLatency: 30 * sim.Second,
		RepairLatency:   15 * sim.Second,
		Verifier:        verifier,
		PredictionTol:   0.02,
		MaxRepairs:      3,
	}
	if verifier != nil {
		o.Mode = VerifyFull
	}
	return o
}

// Stats reports lifetime counters: proposals, injected defects, repair
// rounds, and defects caught by verification.
func (o *Orchestrator) Stats() (proposals, defects, repairs, caught int) {
	return o.proposals, o.defects, o.repairs, o.caught
}

// Propose turns an intended parameter point (from an optimizer or planner)
// into an executed command, modelling transcription defects and the
// verification loop. The space is needed to synthesize realistic defects.
func (o *Orchestrator) Propose(intended param.Point, space param.Space, goal string) Proposal {
	o.proposals++
	p := Proposal{
		Intended: intended.Clone(),
		Emitted:  intended.Clone(),
		Latency:  o.DecisionLatency,
		Trace: Trace{
			Goal: goal,
			Steps: []string{
				"selected candidate via surrogate acquisition",
				fmt.Sprintf("emitting %d parameters to instrument", len(intended)),
			},
			Citations: 1,
			Grounded:  true,
		},
	}

	if o.rnd.Bool(o.DefectRate) {
		o.defects++
		p.Defect = o.injectDefect(p.Emitted, space)
		p.Trace.Grounded = false // defective steps lack tool grounding
	}

	if o.Verifier == nil || o.Mode == VerifyOff {
		return p
	}

	// Verification loop: preflight, repair on violation.
	for round := 0; round < o.MaxRepairs; round++ {
		violation := o.check(&p)
		if violation == "" {
			break
		}
		o.caught++
		o.repairs++
		p.Latency += o.RepairLatency
		p.Trace.Steps = append(p.Trace.Steps,
			fmt.Sprintf("verifier flagged %s; regenerating command", violation))
		// Repair: re-emit from intent (the defect was in transcription).
		p.Emitted = p.Intended.Clone()
		p.Repaired = true
		p.Trace.Grounded = true
		p.Trace.Citations++
		// A repeated defect on the repair round is possible but rarer.
		if o.rnd.Bool(o.DefectRate / 4) {
			o.defects++
			p.Defect = o.injectDefect(p.Emitted, space)
		} else {
			p.Defect = DefectNone
			break
		}
	}
	return p
}

// check returns the first violation found at the configured verification
// depth, or "" when the proposal passes.
func (o *Orchestrator) check(p *Proposal) string {
	predicted, violations := o.Verifier.Preflight(p.Emitted)
	if len(violations) > 0 {
		return violations[0].Rule
	}
	if o.Mode != VerifyFull {
		return ""
	}
	// Twin prediction cross-check: the prediction for the emitted command
	// must match the prediction recorded at planning time for the intent.
	expected, intentViol := o.Verifier.Preflight(p.Intended)
	if len(intentViol) > 0 {
		// The plan itself is infeasible; bounds repair can't help, and the
		// optimizer layer is responsible. Treat as passing here.
		return ""
	}
	obj := o.Verifier.Model.Objective()
	want := expected[obj]
	got := predicted[obj]
	denom := abs(want)
	if denom < 1e-9 {
		denom = 1e-9
	}
	if abs(got-want)/denom > o.PredictionTol {
		return "twin-prediction-mismatch"
	}
	return ""
}

// injectDefect corrupts one dimension of p and returns the defect kind.
func (o *Orchestrator) injectDefect(p param.Point, space param.Space) DefectKind {
	if len(space) == 0 {
		return DefectNone
	}
	d := space[o.rnd.Intn(len(space))]
	subtle := o.rnd.Bool(o.SubtleFraction)
	if subtle {
		if o.rnd.Bool(0.5) && len(space) >= 2 {
			// Transpose two parameter values, then clamp into range so the
			// command stays plausible.
			e := space[o.rnd.Intn(len(space))]
			for e.Name == d.Name {
				e = space[o.rnd.Intn(len(space))]
			}
			p[d.Name], p[e.Name] = e.Snap(p[e.Name]), d.Snap(p[d.Name])
			// Note the snap above intentionally keeps both in range.
			p[d.Name] = d.Snap(p[d.Name])
			p[e.Name] = e.Snap(p[e.Name])
			return DefectTranspose
		}
		// Stale value: reuse a plausible but wrong value (mid-range).
		p[d.Name] = d.Snap(d.Lo + 0.5*(d.Hi-d.Lo) + o.rnd.Normal(0, 0.05*(d.Hi-d.Lo)))
		return DefectStaleValue
	}
	if o.rnd.Bool(0.5) {
		// Unit slip: factor-of-60 or factor-of-1000 scaling, usually lands
		// far outside the feasible window.
		factor := 60.0
		if o.rnd.Bool(0.5) {
			factor = 1000
		}
		if o.rnd.Bool(0.5) {
			p[d.Name] *= factor
		} else {
			p[d.Name] /= factor
		}
		return DefectUnitSlip
	}
	// Range error: setpoint beyond the physical envelope.
	p[d.Name] = d.Hi + (d.Hi-d.Lo)*o.rnd.Range(0.1, 0.5)
	return DefectRangeError
}

// ApprovalModel scores reasoning traces the way the paper's M9 milestone is
// assessed: a scientist approves a trace when it is grounded in tool
// outputs and cites prior knowledge; ungrounded or citation-free traces are
// usually rejected.
type ApprovalModel struct {
	rnd *rng.Stream
}

// NewApprovalModel seeds a reviewer.
func NewApprovalModel(r *rng.Stream) *ApprovalModel {
	return &ApprovalModel{rnd: r.Fork("approval")}
}

// Approves returns the reviewer's verdict on one trace.
func (m *ApprovalModel) Approves(t Trace) bool {
	p := 0.35 // base rate for an unexceptional trace
	if t.Grounded {
		p += 0.45
	}
	if t.Citations >= 1 {
		p += 0.15
	}
	if t.Citations >= 3 {
		p += 0.05
	}
	if len(t.Steps) >= 2 {
		p += 0.05
	}
	if p > 0.99 {
		p = 0.99
	}
	return m.rnd.Bool(p)
}

// Human is the manual-orchestration baseline: near-perfect decisions but
// slow, and only during working hours. The decades-to-months framing of the
// paper is largely this model: instruments idle while humans sleep,
// deliberate, and coordinate across institutions.
type Human struct {
	rnd *rng.Stream

	// DecisionMin/Mode/Max parameterize the triangular decision-latency
	// distribution. Defaults 20/45/120 minutes.
	DecisionMin, DecisionMode, DecisionMax sim.Time
	// WorkdayStart/End bound when decisions complete (hours, 0-24).
	// Defaults 9 and 17.
	WorkdayStart, WorkdayEnd int
	// Weekends: when true (default), no decisions on days 6 and 7.
	Weekends bool
	// DefectRate is small but non-zero; humans transcribe wrong too.
	// Default 0.02.
	DefectRate float64
}

// NewHuman builds the baseline human orchestrator.
func NewHuman(r *rng.Stream) *Human {
	return &Human{
		rnd:          r.Fork("human"),
		DecisionMin:  20 * sim.Minute,
		DecisionMode: 45 * sim.Minute,
		DecisionMax:  120 * sim.Minute,
		WorkdayStart: 9,
		WorkdayEnd:   17,
		Weekends:     true,
		DefectRate:   0.02,
	}
}

// DecisionLatency returns how long a decision takes if it starts at the
// virtual instant now: the raw deliberation time plus any wait until the
// scientist is at work.
func (h *Human) DecisionLatency(now sim.Time) sim.Time {
	think := sim.Time(h.rnd.Triangular(float64(h.DecisionMin), float64(h.DecisionMode), float64(h.DecisionMax)))
	ready := now + think
	return h.nextWorkingInstant(ready) - now
}

// nextWorkingInstant rolls an instant forward to the next moment within
// working hours.
func (h *Human) nextWorkingInstant(t sim.Time) sim.Time {
	for {
		dayIndex := int(t / sim.Day)
		hour := int((t % sim.Day) / sim.Hour)
		weekday := dayIndex % 7 // day 0 is a Monday
		if h.Weekends && weekday >= 5 {
			// Jump to next Monday at WorkdayStart.
			daysAhead := 7 - weekday
			t = sim.Time(dayIndex+daysAhead)*sim.Day + sim.Time(h.WorkdayStart)*sim.Hour
			continue
		}
		if hour < h.WorkdayStart {
			t = sim.Time(dayIndex)*sim.Day + sim.Time(h.WorkdayStart)*sim.Hour
			continue
		}
		if hour >= h.WorkdayEnd {
			t = sim.Time(dayIndex+1)*sim.Day + sim.Time(h.WorkdayStart)*sim.Hour
			continue
		}
		return t
	}
}

// Propose is the human version of the orchestration decision: slow and
// almost always correct.
func (h *Human) Propose(intended param.Point, space param.Space, now sim.Time, goal string) Proposal {
	p := Proposal{
		Intended: intended.Clone(),
		Emitted:  intended.Clone(),
		Latency:  h.DecisionLatency(now),
		Trace: Trace{
			Goal:      goal,
			Steps:     []string{"manual review of candidates", "command entered by hand"},
			Citations: 1,
			Grounded:  true,
		},
	}
	if h.rnd.Bool(h.DefectRate) {
		d := space[h.rnd.Intn(len(space))]
		p.Emitted[d.Name] = d.Snap(p.Emitted[d.Name] * 1.1) // small slip
		p.Defect = DefectStaleValue
	}
	return p
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
