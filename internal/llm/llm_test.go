package llm

import (
	"testing"

	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/twin"
)

func intended() param.Point {
	return param.Point{"temperature": 150, "halide_ratio": 0.5, "residence_s": 60, "ligand_mM": 15}
}

func TestProposeNoDefectIsExact(t *testing.T) {
	o := NewOrchestrator(rng.New(1), nil)
	o.DefectRate = 0
	p := o.Propose(intended(), twin.Perovskite{}.Space(), "maximize plqy")
	if !p.Correct() {
		t.Fatalf("defect-free proposal incorrect: %+v", p)
	}
	if p.Latency != o.DecisionLatency {
		t.Fatalf("latency = %v", p.Latency)
	}
	if p.Defect != DefectNone {
		t.Fatalf("defect = %v", p.Defect)
	}
}

func TestDefectRateWithoutVerifier(t *testing.T) {
	o := NewOrchestrator(rng.New(2), nil)
	o.DefectRate = 0.25
	wrong := 0
	const n = 4000
	for i := 0; i < n; i++ {
		p := o.Propose(intended(), twin.Perovskite{}.Space(), "g")
		if !p.Correct() {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate < 0.21 || rate > 0.29 {
		t.Fatalf("unverified error rate = %v, want ~0.25", rate)
	}
}

func TestVerifierRestoresCorrectness(t *testing.T) {
	tw := twin.NewTwin(twin.Perovskite{}, twin.Noise{})
	o := NewOrchestrator(rng.New(3), tw)
	o.DefectRate = 0.25
	wrong := 0
	const n = 4000
	for i := 0; i < n; i++ {
		p := o.Propose(intended(), twin.Perovskite{}.Space(), "g")
		if !p.Correct() {
			wrong++
		}
	}
	rate := 1 - float64(wrong)/n
	// M8 target: >95% correctness with verification.
	if rate < 0.95 {
		t.Fatalf("verified correctness = %v, want > 0.95", rate)
	}
	_, defects, _, caught := o.Stats()
	if caught == 0 || defects == 0 {
		t.Fatal("verifier never engaged")
	}
}

func TestRepairCostsLatency(t *testing.T) {
	tw := twin.NewTwin(twin.Perovskite{}, twin.Noise{})
	o := NewOrchestrator(rng.New(4), tw)
	o.DefectRate = 1.0     // always defective
	o.SubtleFraction = 0.0 // always catchable
	p := o.Propose(intended(), twin.Perovskite{}.Space(), "g")
	if !p.Repaired {
		t.Fatal("proposal not repaired")
	}
	if p.Latency <= o.DecisionLatency {
		t.Fatalf("repair latency not charged: %v", p.Latency)
	}
}

func TestSubtleDefectsEvadeBoundsVerifier(t *testing.T) {
	tw := twin.NewTwin(twin.Perovskite{}, twin.Noise{})
	o := NewOrchestrator(rng.New(5), tw)
	o.Mode = VerifyBounds
	o.DefectRate = 1.0
	o.SubtleFraction = 1.0 // all defects in-range
	evaded := 0
	const n = 500
	for i := 0; i < n; i++ {
		p := o.Propose(intended(), twin.Perovskite{}.Space(), "g")
		if !p.Correct() {
			evaded++
		}
	}
	if evaded < n/2 {
		t.Fatalf("only %d/%d subtle defects evaded the bounds verifier; they should mostly pass", evaded, n)
	}
}

func TestFullVerificationCatchesSubtleDefects(t *testing.T) {
	tw := twin.NewTwin(twin.Perovskite{}, twin.Noise{})
	o := NewOrchestrator(rng.New(5), tw) // VerifyFull by default
	o.DefectRate = 1.0
	o.SubtleFraction = 1.0
	wrong := 0
	const n = 500
	for i := 0; i < n; i++ {
		p := o.Propose(intended(), twin.Perovskite{}.Space(), "g")
		if !p.Correct() {
			wrong++
		}
	}
	// The twin-prediction cross-check should catch the vast majority of
	// in-range defects (those with a material effect on the objective).
	if wrong > n/5 {
		t.Fatalf("%d/%d subtle defects survived full verification", wrong, n)
	}
}

func TestTraceGrounding(t *testing.T) {
	o := NewOrchestrator(rng.New(6), nil)
	o.DefectRate = 0
	p := o.Propose(intended(), twin.Perovskite{}.Space(), "maximize plqy")
	if !p.Trace.Grounded || p.Trace.Citations < 1 {
		t.Fatalf("clean trace should be grounded with citations: %+v", p.Trace)
	}
	o.DefectRate = 1
	o.SubtleFraction = 1
	p2 := o.Propose(intended(), twin.Perovskite{}.Space(), "g")
	if p2.Trace.Grounded {
		t.Fatal("defective unverified trace should be ungrounded")
	}
}

func TestApprovalModelPrefersGroundedTraces(t *testing.T) {
	m := NewApprovalModel(rng.New(7))
	good := Trace{Goal: "g", Steps: []string{"a", "b"}, Citations: 3, Grounded: true}
	bad := Trace{Goal: "g", Steps: []string{"a"}, Citations: 0, Grounded: false}
	goodApprovals, badApprovals := 0, 0
	const n = 2000
	for i := 0; i < n; i++ {
		if m.Approves(good) {
			goodApprovals++
		}
		if m.Approves(bad) {
			badApprovals++
		}
	}
	goodRate := float64(goodApprovals) / n
	badRate := float64(badApprovals) / n
	if goodRate < 0.9 {
		t.Fatalf("grounded trace approval = %v, want > 0.9 (M9)", goodRate)
	}
	if badRate > 0.5 {
		t.Fatalf("ungrounded trace approval = %v, should be low", badRate)
	}
}

func TestHumanDecisionLatencyWorkingHours(t *testing.T) {
	h := NewHuman(rng.New(8))
	// Day 0 (Monday) 10:00: decision completes same day or later, but the
	// completion instant must fall within working hours.
	for i := 0; i < 500; i++ {
		start := sim.Time(i%5)*sim.Day + 10*sim.Hour
		lat := h.DecisionLatency(start)
		if lat < 20*sim.Minute {
			t.Fatalf("decision faster than the minimum: %v", lat)
		}
		done := start + lat
		hour := int((done % sim.Day) / sim.Hour)
		weekday := int(done/sim.Day) % 7
		if hour < h.WorkdayStart || hour >= h.WorkdayEnd {
			t.Fatalf("decision completed at hour %d, outside working hours", hour)
		}
		if h.Weekends && weekday >= 5 {
			t.Fatalf("decision completed on weekend day %d", weekday)
		}
	}
}

func TestHumanNightDecisionRollsToMorning(t *testing.T) {
	h := NewHuman(rng.New(9))
	// Friday 16:55: a >5 minute decision must roll to Monday morning.
	start := 4*sim.Day + 16*sim.Hour + 55*sim.Minute
	lat := h.DecisionLatency(start)
	done := start + lat
	if done < 7*sim.Day+9*sim.Hour {
		t.Fatalf("Friday-evening decision completed at %v, want Monday morning", done)
	}
}

func TestHumanIsMuchSlowerThanAgent(t *testing.T) {
	h := NewHuman(rng.New(10))
	o := NewOrchestrator(rng.New(10), nil)
	var humanTotal, agentTotal sim.Time
	now := 9 * sim.Hour // Monday 9am
	for i := 0; i < 100; i++ {
		humanTotal += h.DecisionLatency(now + sim.Time(i)*sim.Hour%8*sim.Hour)
		agentTotal += o.Propose(intended(), twin.Perovskite{}.Space(), "g").Latency
	}
	if humanTotal < 20*agentTotal {
		t.Fatalf("human/agent latency ratio = %v, expected >> 20", float64(humanTotal)/float64(agentTotal))
	}
}

func TestHumanProposeMostlyCorrect(t *testing.T) {
	h := NewHuman(rng.New(11))
	wrong := 0
	const n = 2000
	for i := 0; i < n; i++ {
		p := h.Propose(intended(), twin.Perovskite{}.Space(), 10*sim.Hour, "g")
		if !p.Correct() {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate > 0.04 {
		t.Fatalf("human error rate = %v, want ~0.02", rate)
	}
}

func TestProposalCorrectDetectsMismatch(t *testing.T) {
	p := Proposal{
		Intended: param.Point{"x": 1},
		Emitted:  param.Point{"x": 1.5},
	}
	if p.Correct() {
		t.Fatal("mismatch not detected")
	}
	p2 := Proposal{Intended: param.Point{"x": 1}, Emitted: param.Point{}}
	if p2.Correct() {
		t.Fatal("missing key not detected")
	}
}
