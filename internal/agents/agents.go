// Package agents provides AISLE's agent runtime: stateful agents addressed
// through the bus, heartbeat-based failure detection, supervision with
// automatic restart, hierarchical topologies (orchestrator / planner /
// executor / evaluator), and the contract-net protocol for task allocation
// across facilities — the "adaptive, fault-tolerant agent coordination
// mechanisms" of the paper's challenge list.
package agents

import (
	"errors"
	"fmt"
	"sort"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

// Errors surfaced by the runtime.
var (
	ErrNoAgent = errors.New("agents: no such agent")
	ErrNoBids  = errors.New("agents: no bids received")
)

// Role labels an agent's position in the hierarchy.
type Role string

// Standard roles.
const (
	RoleOrchestrator Role = "orchestrator"
	RolePlanner      Role = "planner"
	RoleExecutor     Role = "executor"
	RoleEvaluator    Role = "evaluator"
	RoleCurator      Role = "curator"
)

// HandlerFunc processes one method invocation on an agent.
type HandlerFunc func(payload any) (any, error)

// Agent is a stateful actor bound to a site. Its mailbox is a bus endpoint
// named after it; handlers are registered per method.
type Agent struct {
	name  string
	site  netsim.SiteID
	role  Role
	rt    *Runtime
	setup func(*Agent)

	handlers map[string]HandlerFunc
	state    map[string]any

	alive     bool
	restarts  int
	beatStop  func()
	processed int
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// Site returns the agent's home site.
func (a *Agent) Site() netsim.SiteID { return a.site }

// Role returns the agent's role.
func (a *Agent) Role() Role { return a.role }

// Alive reports liveness.
func (a *Agent) Alive() bool { return a.alive }

// Restarts reports how many times the supervisor has restarted this agent.
func (a *Agent) Restarts() int { return a.restarts }

// Addr returns the agent's bus address.
func (a *Agent) Addr() bus.Address { return bus.Address{Site: a.site, Name: a.name} }

// On registers a method handler. Handlers run at message-delivery time.
func (a *Agent) On(method string, fn HandlerFunc) {
	a.handlers[method] = fn
}

// Set stores agent-local state (survives messages, lost on restart).
func (a *Agent) Set(key string, v any) { a.state[key] = v }

// Get fetches agent-local state.
func (a *Agent) Get(key string) (any, bool) {
	v, ok := a.state[key]
	return v, ok
}

// Call invokes a method on another agent asynchronously.
func (a *Agent) Call(to bus.Address, method string, payload any, timeout sim.Time, cb func(any, error)) {
	a.rt.fabric.Call(bus.CallOpts{
		From: a.Addr(), To: to, Method: method, Payload: payload, Timeout: timeout,
	}, cb)
}

// Runtime manages the agents of a federation.
type Runtime struct {
	fabric  *bus.Fabric
	eng     *sim.Engine
	metrics *telemetry.Registry
	agents  map[string]*Agent

	// HeartbeatEvery is the liveness cadence. Default 5s.
	HeartbeatEvery sim.Time
	// MissedBeatsForDead marks an agent dead after this many missed beats.
	// Default 3.
	MissedBeatsForDead int
}

// NewRuntime builds an agent runtime over the bus.
func NewRuntime(fabric *bus.Fabric) *Runtime {
	return &Runtime{
		fabric:             fabric,
		eng:                fabric.Engine(),
		metrics:            telemetry.NewRegistry(),
		agents:             make(map[string]*Agent),
		HeartbeatEvery:     5 * sim.Second,
		MissedBeatsForDead: 3,
	}
}

// Metrics exposes runtime telemetry.
func (rt *Runtime) Metrics() *telemetry.Registry { return rt.metrics }

// Agent fetches a live or dead agent by name.
func (rt *Runtime) Agent(name string) (*Agent, bool) {
	a, ok := rt.agents[name]
	return a, ok
}

// Agents lists agent names, sorted.
func (rt *Runtime) Agents() []string {
	out := make([]string, 0, len(rt.agents))
	for n := range rt.agents {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Spawn creates and starts an agent. setup registers handlers and initial
// state; it runs again on supervisor restarts (fresh state).
func (rt *Runtime) Spawn(site netsim.SiteID, name string, role Role, setup func(*Agent)) *Agent {
	a := &Agent{
		name: name, site: site, role: role, rt: rt, setup: setup,
		handlers: make(map[string]HandlerFunc),
		state:    make(map[string]any),
		alive:    true,
	}
	rt.agents[name] = a
	rt.metrics.Counter("agents.spawned").Inc()
	rt.bind(a)
	if setup != nil {
		setup(a)
	}
	return a
}

// bind installs the agent's bus endpoint dispatching to its handlers.
func (rt *Runtime) bind(a *Agent) {
	rt.fabric.Broker(a.site).Register(a.name, func(env *bus.Envelope, respond func(any, error)) {
		if !a.alive {
			respond(nil, fmt.Errorf("%w: %s is dead", ErrNoAgent, a.name))
			return
		}
		h, ok := a.handlers[env.Method]
		if !ok {
			respond(nil, fmt.Errorf("agents: %s has no handler for %q", a.name, env.Method))
			return
		}
		a.processed++
		rt.metrics.Counter("agents.messages").Inc()
		respond(h(env.Payload))
	})
}

// Kill simulates an agent crash: the endpoint stays but refuses calls, and
// heartbeats stop.
func (rt *Runtime) Kill(name string) {
	a, ok := rt.agents[name]
	if !ok {
		return
	}
	a.alive = false
	rt.metrics.Counter("agents.killed").Inc()
}

// restart revives a crashed agent with fresh state via its setup function.
func (rt *Runtime) restart(a *Agent) {
	a.alive = true
	a.restarts++
	a.handlers = make(map[string]HandlerFunc)
	a.state = make(map[string]any)
	rt.metrics.Counter("agents.restarts").Inc()
	if a.setup != nil {
		a.setup(a)
	}
}

// Supervisor watches a set of agents and restarts any that die. It detects
// death by direct liveness probes on the runtime (heartbeat RPCs would
// traverse the network; the supervisor lives at the same site as its
// children in this topology, so probes are local).
type Supervisor struct {
	rt       *Runtime
	children []string
	stop     func()

	// ProbeEvery is the liveness check cadence. Default 5s.
	ProbeEvery sim.Time
	// RestartDelay models the respawn cost. Default 2s.
	RestartDelay sim.Time
}

// NewSupervisor builds (but does not start) a supervisor for the agents.
func NewSupervisor(rt *Runtime, children ...string) *Supervisor {
	return &Supervisor{rt: rt, children: children, ProbeEvery: 5 * sim.Second, RestartDelay: 2 * sim.Second}
}

// Start begins supervision.
func (s *Supervisor) Start() {
	s.stop = s.rt.eng.Ticker(s.ProbeEvery, func(int) {
		for _, name := range s.children {
			a, ok := s.rt.agents[name]
			if !ok || a.alive {
				continue
			}
			s.rt.eng.Schedule(s.RestartDelay, func() {
				if !a.alive {
					s.rt.restart(a)
				}
			})
		}
	})
}

// Stop ends supervision.
func (s *Supervisor) Stop() {
	if s.stop != nil {
		s.stop()
	}
}

// Task is a unit of work announced through the contract net.
type Task struct {
	ID      string
	Kind    string
	Payload any
}

// Bid is an agent's response to a call-for-proposals. Higher Value wins.
type Bid struct {
	Agent string
	Value float64
}

// ContractNet runs one round of the contract-net protocol: announce the
// task to candidates (method "cnp.bid" returning a Bid), collect bids until
// the deadline, award to the best bidder (method "cnp.award"), and deliver
// the award result to cb. Candidates that fail to respond simply don't bid.
func ContractNet(rt *Runtime, from bus.Address, task Task, candidates []bus.Address,
	deadline sim.Time, cb func(winner string, result any, err error)) {

	var bids []Bid
	outstanding := len(candidates)
	if outstanding == 0 {
		cb("", nil, ErrNoBids)
		return
	}
	decided := false

	decide := func() {
		if decided {
			return
		}
		decided = true
		if len(bids) == 0 {
			cb("", nil, ErrNoBids)
			return
		}
		sort.Slice(bids, func(i, j int) bool {
			if bids[i].Value != bids[j].Value {
				return bids[i].Value > bids[j].Value
			}
			return bids[i].Agent < bids[j].Agent
		})
		winner := bids[0]
		rt.metrics.Counter("agents.cnp_awards").Inc()
		wa, ok := rt.agents[winner.Agent]
		if !ok {
			cb("", nil, fmt.Errorf("%w: winner %s vanished", ErrNoAgent, winner.Agent))
			return
		}
		rt.fabric.Call(bus.CallOpts{
			From: from, To: wa.Addr(), Method: "cnp.award", Payload: task, Timeout: deadline,
		}, func(result any, err error) {
			cb(winner.Agent, result, err)
		})
	}

	for _, c := range candidates {
		rt.fabric.Call(bus.CallOpts{
			From: from, To: c, Method: "cnp.bid", Payload: task, Timeout: deadline,
		}, func(result any, err error) {
			outstanding--
			if err == nil {
				if b, ok := result.(Bid); ok {
					bids = append(bids, b)
				}
			}
			if outstanding == 0 {
				decide()
			}
		})
	}
	// Deadline backstop in case some candidates never answer.
	rt.eng.Schedule(deadline+sim.Millisecond, decide)
}
