package agents

import (
	"errors"
	"testing"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
)

func testRuntime(t *testing.T) (*sim.Engine, *Runtime) {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(4))
	for _, s := range []netsim.SiteID{"ornl", "anl"} {
		net.AddSite(s).Firewall.AllowAll()
	}
	net.Connect("ornl", "anl", netsim.Link{Latency: 5 * sim.Millisecond})
	return eng, NewRuntime(bus.NewFabric(net))
}

func TestSpawnAndCall(t *testing.T) {
	eng, rt := testRuntime(t)
	rt.Spawn("anl", "calc", RoleExecutor, func(a *Agent) {
		a.On("square", func(p any) (any, error) {
			n := p.(int)
			return n * n, nil
		})
	})
	caller := rt.Spawn("ornl", "boss", RoleOrchestrator, nil)
	var got any
	caller.Call(bus.Address{Site: "anl", Name: "calc"}, "square", 7, sim.Second,
		func(r any, err error) {
			if err != nil {
				t.Errorf("call failed: %v", err)
			}
			got = r
		})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 49 {
		t.Fatalf("got %v", got)
	}
}

func TestUnknownMethod(t *testing.T) {
	eng, rt := testRuntime(t)
	rt.Spawn("anl", "a", RoleExecutor, nil)
	c := rt.Spawn("ornl", "c", RoleOrchestrator, nil)
	var gotErr error
	c.Call(bus.Address{Site: "anl", Name: "a"}, "nope", nil, sim.Second,
		func(_ any, err error) { gotErr = err })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("unknown method should fail")
	}
}

func TestAgentState(t *testing.T) {
	_, rt := testRuntime(t)
	a := rt.Spawn("ornl", "stateful", RolePlanner, func(a *Agent) {
		a.Set("counter", 0)
	})
	if v, ok := a.Get("counter"); !ok || v != 0 {
		t.Fatal("initial state missing")
	}
	a.Set("counter", 5)
	if v, _ := a.Get("counter"); v != 5 {
		t.Fatal("state update lost")
	}
}

func TestKillAndSuperviseRestart(t *testing.T) {
	eng, rt := testRuntime(t)
	spawns := 0
	rt.Spawn("ornl", "worker", RoleExecutor, func(a *Agent) {
		spawns++
		a.On("ping", func(any) (any, error) { return "pong", nil })
	})
	sup := NewSupervisor(rt, "worker")
	sup.Start()
	defer sup.Stop()

	rt.Kill("worker")
	a, _ := rt.Agent("worker")
	if a.Alive() {
		t.Fatal("agent alive after kill")
	}

	// Calls to a dead agent fail.
	c := rt.Spawn("anl", "probe", RoleOrchestrator, nil)
	var deadErr error
	c.Call(bus.Address{Site: "ornl", Name: "worker"}, "ping", nil, sim.Second,
		func(_ any, err error) { deadErr = err })

	if err := eng.RunUntil(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if deadErr == nil {
		t.Fatal("call to dead agent succeeded")
	}
	if !a.Alive() {
		t.Fatal("supervisor did not restart the agent")
	}
	if a.Restarts() != 1 {
		t.Fatalf("restarts = %d", a.Restarts())
	}
	if spawns != 2 {
		t.Fatalf("setup ran %d times, want 2", spawns)
	}

	// Restarted agent serves again. Stop supervision first so the event
	// queue can drain (the ticker otherwise runs forever in virtual time).
	sup.Stop()
	var pong any
	c.Call(bus.Address{Site: "ornl", Name: "worker"}, "ping", nil, sim.Second,
		func(r any, err error) {
			if err != nil {
				t.Errorf("post-restart call: %v", err)
			}
			pong = r
		})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if pong != "pong" {
		t.Fatal("restarted agent unresponsive")
	}
}

func TestContractNetAwardsBestBid(t *testing.T) {
	eng, rt := testRuntime(t)
	mkBidder := func(name string, value float64) bus.Address {
		a := rt.Spawn("anl", name, RoleExecutor, func(a *Agent) {
			a.On("cnp.bid", func(p any) (any, error) {
				return Bid{Agent: name, Value: value}, nil
			})
			a.On("cnp.award", func(p any) (any, error) {
				return "done-by-" + name, nil
			})
		})
		return a.Addr()
	}
	candidates := []bus.Address{
		mkBidder("slow", 1.0),
		mkBidder("fast", 9.0),
		mkBidder("mid", 5.0),
	}
	boss := rt.Spawn("ornl", "boss", RoleOrchestrator, nil)

	var winner string
	var result any
	ContractNet(rt, boss.Addr(), Task{ID: "t1", Kind: "synthesize"}, candidates, sim.Second,
		func(w string, r any, err error) {
			if err != nil {
				t.Errorf("cnp failed: %v", err)
			}
			winner, result = w, r
		})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if winner != "fast" {
		t.Fatalf("winner = %s, want fast", winner)
	}
	if result != "done-by-fast" {
		t.Fatalf("result = %v", result)
	}
}

func TestContractNetNoBids(t *testing.T) {
	eng, rt := testRuntime(t)
	boss := rt.Spawn("ornl", "boss", RoleOrchestrator, nil)
	var gotErr error
	ContractNet(rt, boss.Addr(), Task{ID: "t"}, nil, sim.Second,
		func(_ string, _ any, err error) { gotErr = err })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrNoBids) {
		t.Fatalf("err = %v, want ErrNoBids", gotErr)
	}
}

func TestContractNetSurvivesDeadBidder(t *testing.T) {
	eng, rt := testRuntime(t)
	live := rt.Spawn("anl", "live", RoleExecutor, func(a *Agent) {
		a.On("cnp.bid", func(any) (any, error) { return Bid{Agent: "live", Value: 2}, nil })
		a.On("cnp.award", func(any) (any, error) { return "ok", nil })
	})
	dead := rt.Spawn("anl", "dead", RoleExecutor, func(a *Agent) {
		a.On("cnp.bid", func(any) (any, error) { return Bid{Agent: "dead", Value: 99}, nil })
	})
	rt.Kill("dead")
	boss := rt.Spawn("ornl", "boss", RoleOrchestrator, nil)

	var winner string
	ContractNet(rt, boss.Addr(), Task{ID: "t"}, []bus.Address{live.Addr(), dead.Addr()},
		sim.Second, func(w string, _ any, err error) {
			if err != nil {
				t.Errorf("cnp: %v", err)
			}
			winner = w
		})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if winner != "live" {
		t.Fatalf("winner = %q, want live (dead bidder excluded)", winner)
	}
}

func TestAgentsListing(t *testing.T) {
	_, rt := testRuntime(t)
	rt.Spawn("ornl", "zeta", RoleExecutor, nil)
	rt.Spawn("ornl", "alpha", RolePlanner, nil)
	names := rt.Agents()
	if len(names) != 2 || names[0] != "alpha" {
		t.Fatalf("Agents = %v", names)
	}
	if _, ok := rt.Agent("ghost"); ok {
		t.Fatal("ghost agent found")
	}
}
