package rl

import (
	"testing"

	"github.com/aisle-sim/aisle/internal/rng"
)

func TestBanditTriesAllArmsFirst(t *testing.T) {
	b := NewBandit(4)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		arm := b.Select()
		if seen[arm] {
			t.Fatalf("arm %d selected twice before all tried", arm)
		}
		seen[arm] = true
		b.Update(arm, 0)
	}
}

func TestBanditConvergesToBestArm(t *testing.T) {
	r := rng.New(1)
	b := NewBandit(3)
	means := []float64{0.2, 0.8, 0.5}
	picks := make([]int, 3)
	for i := 0; i < 3000; i++ {
		arm := b.Select()
		picks[arm]++
		reward := 0.0
		if r.Bool(means[arm]) {
			reward = 1
		}
		b.Update(arm, reward)
	}
	if picks[1] < picks[0] || picks[1] < picks[2] {
		t.Fatalf("best arm underplayed: %v", picks)
	}
	if float64(picks[1])/3000 < 0.6 {
		t.Fatalf("best arm only %d/3000 plays", picks[1])
	}
	if b.Mean(1) < 0.7 || b.Mean(1) > 0.9 {
		t.Fatalf("arm-1 mean estimate %v", b.Mean(1))
	}
}

func TestBanditMeanEmpty(t *testing.T) {
	b := NewBandit(2)
	if b.Mean(0) != 0 {
		t.Fatal("empty arm mean should be 0")
	}
	if b.Arms() != 2 {
		t.Fatal("Arms wrong")
	}
}

// Grid world: states 0..4 in a line, action 0 = left, 1 = right.
// Reward 1 at state 4 (terminal). Q-learning should learn to go right.
func TestQLearnerGridLine(t *testing.T) {
	l := NewQLearner(5, 2, rng.New(2))
	l.Epsilon = 0.2
	for ep := 0; ep < 2000; ep++ {
		s := 0
		for steps := 0; steps < 50; steps++ {
			a := l.Select(s)
			next := s
			if a == 1 {
				next = s + 1
			} else if s > 0 {
				next = s - 1
			}
			if next == 4 {
				l.LearnTerminal(s, a, 1)
				break
			}
			l.Learn(s, a, -0.01, next)
			s = next
		}
	}
	for s := 0; s < 4; s++ {
		if l.Greedy(s) != 1 {
			t.Fatalf("state %d: greedy action %d, want right", s, l.Greedy(s))
		}
	}
	if l.Q(3, 1) <= l.Q(3, 0) {
		t.Fatalf("Q(3,right)=%v should exceed Q(3,left)=%v", l.Q(3, 1), l.Q(3, 0))
	}
}

func TestQLearnerDiscounting(t *testing.T) {
	l := NewQLearner(3, 1, rng.New(3))
	l.Alpha = 1.0
	l.Gamma = 0.5
	// Terminal reward 1 at state 2; state 1 backs up 0.5 of it.
	l.LearnTerminal(2, 0, 1)
	l.Learn(1, 0, 0, 2)
	if got := l.Q(1, 0); got != 0.5 {
		t.Fatalf("Q(1,0) = %v, want 0.5 (discounted)", got)
	}
}

func TestQLearnerEpsilonExploration(t *testing.T) {
	l := NewQLearner(1, 4, rng.New(4))
	l.Epsilon = 1.0 // always explore
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[l.Select(0)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("full exploration visited %d/4 actions", len(seen))
	}
}
