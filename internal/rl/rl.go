// Package rl provides the reinforcement-learning schedulers the paper lists
// among the specialized techniques LLM agents orchestrate: a UCB1 bandit
// for instrument routing and a tabular Q-learner for dynamic experimental
// scheduling under changing resource conditions.
package rl

import (
	"math"

	"github.com/aisle-sim/aisle/internal/rng"
)

// Bandit is a UCB1 multi-armed bandit. Arms are instrument/queue choices;
// rewards are negated waiting times or measured throughputs.
type Bandit struct {
	counts []int
	sums   []float64
	total  int

	// C scales the exploration bonus. Default sqrt(2).
	C float64
}

// NewBandit creates a bandit with n arms.
func NewBandit(n int) *Bandit {
	return &Bandit{counts: make([]int, n), sums: make([]float64, n), C: math.Sqrt2}
}

// Arms reports the number of arms.
func (b *Bandit) Arms() int { return len(b.counts) }

// Select returns the UCB1-optimal arm. Unplayed arms are tried first in
// index order.
func (b *Bandit) Select() int {
	for i, c := range b.counts {
		if c == 0 {
			return i
		}
	}
	best, bestV := 0, math.Inf(-1)
	for i := range b.counts {
		mean := b.sums[i] / float64(b.counts[i])
		bonus := b.C * math.Sqrt(math.Log(float64(b.total))/float64(b.counts[i]))
		if v := mean + bonus; v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Update records a reward for an arm.
func (b *Bandit) Update(arm int, reward float64) {
	b.counts[arm]++
	b.sums[arm] += reward
	b.total++
}

// Mean reports an arm's empirical mean reward.
func (b *Bandit) Mean(arm int) float64 {
	if b.counts[arm] == 0 {
		return 0
	}
	return b.sums[arm] / float64(b.counts[arm])
}

// QLearner is a tabular epsilon-greedy Q-learning agent over discrete
// states and actions.
type QLearner struct {
	states  int
	actions int
	q       [][]float64
	rnd     *rng.Stream

	// Alpha is the learning rate. Default 0.2.
	Alpha float64
	// Gamma is the discount factor. Default 0.9.
	Gamma float64
	// Epsilon is the exploration probability. Default 0.1.
	Epsilon float64
}

// NewQLearner creates a zero-initialized learner.
func NewQLearner(states, actions int, r *rng.Stream) *QLearner {
	q := make([][]float64, states)
	for i := range q {
		q[i] = make([]float64, actions)
	}
	return &QLearner{
		states: states, actions: actions, q: q, rnd: r.Fork("qlearn"),
		Alpha: 0.2, Gamma: 0.9, Epsilon: 0.1,
	}
}

// Q returns the current action-value estimate.
func (l *QLearner) Q(state, action int) float64 { return l.q[state][action] }

// Select picks an action epsilon-greedily.
func (l *QLearner) Select(state int) int {
	if l.rnd.Bool(l.Epsilon) {
		return l.rnd.Intn(l.actions)
	}
	return l.Greedy(state)
}

// Greedy picks the best-known action (ties break to the lowest index).
func (l *QLearner) Greedy(state int) int {
	best, bestV := 0, math.Inf(-1)
	for a := 0; a < l.actions; a++ {
		if v := l.q[state][a]; v > bestV {
			best, bestV = a, v
		}
	}
	return best
}

// Learn applies one Q-learning backup for (s, a, reward, s').
func (l *QLearner) Learn(state, action int, reward float64, next int) {
	bestNext := math.Inf(-1)
	for a := 0; a < l.actions; a++ {
		if v := l.q[next][a]; v > bestNext {
			bestNext = v
		}
	}
	target := reward + l.Gamma*bestNext
	l.q[state][action] += l.Alpha * (target - l.q[state][action])
}

// LearnTerminal applies a backup for a terminal transition (no successor).
func (l *QLearner) LearnTerminal(state, action int, reward float64) {
	l.q[state][action] += l.Alpha * (reward - l.q[state][action])
}
