package discovery

import (
	"testing"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/rng"
	"github.com/aisle-sim/aisle/internal/sim"
)

var sites = []netsim.SiteID{"ornl", "anl", "slac"}

func testDirectory(t *testing.T) (*sim.Engine, *netsim.Network, *Directory) {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.New(eng, rng.New(5))
	for _, s := range sites {
		net.AddSite(s).Firewall.AllowAll()
	}
	net.FullMesh(sites, netsim.Link{Latency: 15 * sim.Millisecond})
	f := bus.NewFabric(net)
	d := NewDirectory(f, sites)
	return eng, net, d
}

func xrdRecord(inst string, resolution float64) Record {
	return Record{
		Instance:     inst,
		Type:         "_xrd._aisle",
		Addr:         bus.Address{Site: "ornl", Name: inst},
		Capabilities: map[string]float64{"resolution": resolution, "throughput": 10},
		Text:         map[string]string{"vendor": "SimCo"},
	}
}

func TestLocalRegisterAndBrowse(t *testing.T) {
	_, _, d := testDirectory(t)
	reg := d.Registry("ornl")
	reg.Register(xrdRecord("ornl/xrd-1", 0.1))
	reg.Register(xrdRecord("ornl/xrd-2", 0.05))
	got := reg.Browse("_xrd._aisle")
	if len(got) != 2 {
		t.Fatalf("browse returned %d records", len(got))
	}
	if got[0].Instance != "ornl/xrd-1" || got[1].Instance != "ornl/xrd-2" {
		t.Fatalf("browse not sorted: %v", got)
	}
	if _, ok := reg.Resolve("ornl/xrd-1"); !ok {
		t.Fatal("resolve failed")
	}
}

func TestGossipPropagation(t *testing.T) {
	eng, _, d := testDirectory(t)
	d.Start()
	defer d.Stop()
	d.Registry("ornl").Register(xrdRecord("ornl/xrd-1", 0.1))

	if err := eng.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if _, ok := d.Registry(s).Resolve("ornl/xrd-1"); !ok {
			t.Fatalf("record not visible at %s after gossip", s)
		}
	}
	if !d.Converged() {
		t.Fatal("directory should be converged")
	}
}

func TestTombstonePropagation(t *testing.T) {
	eng, _, d := testDirectory(t)
	d.Start()
	defer d.Stop()
	reg := d.Registry("ornl")
	reg.Register(xrdRecord("ornl/xrd-1", 0.1))
	if err := eng.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !reg.Deregister("ornl/xrd-1") {
		t.Fatal("deregister failed")
	}
	if err := eng.RunUntil(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if _, ok := d.Registry(s).Resolve("ornl/xrd-1"); ok {
			t.Fatalf("tombstoned record still visible at %s", s)
		}
	}
}

func TestDeregisterForeignRecordFails(t *testing.T) {
	eng, _, d := testDirectory(t)
	d.Start()
	defer d.Stop()
	d.Registry("ornl").Register(xrdRecord("ornl/xrd-1", 0.1))
	if err := eng.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if d.Registry("anl").Deregister("ornl/xrd-1") {
		t.Fatal("foreign registry must not deregister another site's record")
	}
}

func TestLeaseExpiryWithoutRenewal(t *testing.T) {
	eng, _, d := testDirectory(t)
	d.DefaultTTL = 6 * sim.Second
	d.Start()
	defer d.Stop()
	reg := d.Registry("ornl")
	reg.Register(xrdRecord("ornl/xrd-1", 0.1))

	// Propagate, then stop renewing: remote copies must expire. The origin
	// keeps its own live record (owner records don't self-expire).
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Registry("anl").Resolve("ornl/xrd-1"); !ok {
		t.Fatal("record did not propagate")
	}
	// Kill the origin's gossip by partitioning it away; without renewal
	// traffic, anl's lease lapses.
	d.Stop()
	if err := eng.RunUntil(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Registry("anl").Resolve("ornl/xrd-1"); ok {
		t.Fatal("foreign record survived past TTL without renewal")
	}
	if _, ok := reg.Resolve("ornl/xrd-1"); !ok {
		t.Fatal("owner's live record must not self-expire")
	}
}

func TestRenewKeepsRecordAlive(t *testing.T) {
	eng, _, d := testDirectory(t)
	d.DefaultTTL = 6 * sim.Second
	d.Start()
	defer d.Stop()
	reg := d.Registry("ornl")
	reg.Register(xrdRecord("ornl/xrd-1", 0.1))
	stopRenew := eng.Ticker(2*sim.Second, func(int) { reg.Renew("ornl/xrd-1") })
	defer stopRenew()

	if err := eng.RunUntil(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Registry("slac").Resolve("ornl/xrd-1"); !ok {
		t.Fatal("renewed record expired remotely")
	}
}

func TestPartitionStallsThenHeals(t *testing.T) {
	eng, net, d := testDirectory(t)
	d.Start()
	defer d.Stop()
	// Partition slac away before registering.
	net.Partition([]netsim.SiteID{"ornl", "anl"}, []netsim.SiteID{"slac"})
	d.Registry("ornl").Register(xrdRecord("ornl/xrd-1", 0.1))

	if err := eng.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Registry("anl").Resolve("ornl/xrd-1"); !ok {
		t.Fatal("same-side peer should converge during partition")
	}
	if _, ok := d.Registry("slac").Resolve("ornl/xrd-1"); ok {
		t.Fatal("record crossed a partition")
	}

	net.Heal([]netsim.SiteID{"ornl", "anl"}, []netsim.SiteID{"slac"})
	if err := eng.RunUntil(25 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Registry("slac").Resolve("ornl/xrd-1"); !ok {
		t.Fatal("record did not propagate after heal")
	}
}

func TestUpdateWinsByVersion(t *testing.T) {
	eng, _, d := testDirectory(t)
	d.Start()
	defer d.Stop()
	reg := d.Registry("ornl")
	reg.Register(xrdRecord("ornl/xrd-1", 0.1))
	if err := eng.RunUntil(8 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Re-register with improved capability; version bumps.
	reg.Register(xrdRecord("ornl/xrd-1", 0.01))
	if err := eng.RunUntil(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Registry("slac").Resolve("ornl/xrd-1")
	if !ok {
		t.Fatal("record missing")
	}
	if got.Capabilities["resolution"] != 0.01 {
		t.Fatalf("stale version visible remotely: %v", got.Capabilities)
	}
}

func TestNegotiate(t *testing.T) {
	_, _, d := testDirectory(t)
	reg := d.Registry("ornl")
	reg.Register(Record{Instance: "a", Type: "_synth._aisle",
		Capabilities: map[string]float64{"temp_max": 400, "throughput": 5}})
	reg.Register(Record{Instance: "b", Type: "_synth._aisle",
		Capabilities: map[string]float64{"temp_max": 800, "throughput": 2}})
	reg.Register(Record{Instance: "c", Type: "_synth._aisle",
		Capabilities: map[string]float64{"temp_max": 900, "throughput": 9}})

	got, ok := reg.Negotiate(Requirement{
		Type:    "_synth._aisle",
		MinCaps: map[string]float64{"temp_max": 500},
		Prefer:  "throughput",
	})
	if !ok {
		t.Fatal("negotiation failed")
	}
	if got.Instance != "c" {
		t.Fatalf("negotiated %s, want c (highest throughput above floor)", got.Instance)
	}

	if _, ok := reg.Negotiate(Requirement{Type: "_synth._aisle",
		MinCaps: map[string]float64{"temp_max": 5000}}); ok {
		t.Fatal("impossible requirement satisfied")
	}
	if _, ok := reg.Negotiate(Requirement{Type: "_ghost._aisle"}); ok {
		t.Fatal("unknown type negotiated")
	}
}

func TestConvergedDetectsDivergence(t *testing.T) {
	_, _, d := testDirectory(t)
	if !d.Converged() {
		t.Fatal("empty directory should be converged")
	}
	d.Registry("ornl").Register(xrdRecord("ornl/xrd-1", 0.1))
	if d.Converged() {
		t.Fatal("directory with unpropagated record reported converged")
	}
}

func TestRecordCloneIsolation(t *testing.T) {
	_, _, d := testDirectory(t)
	reg := d.Registry("ornl")
	rec := xrdRecord("ornl/xrd-1", 0.1)
	reg.Register(rec)
	rec.Capabilities["resolution"] = 999 // mutate caller's copy
	got, _ := reg.Resolve("ornl/xrd-1")
	if got.Capabilities["resolution"] != 0.1 {
		t.Fatal("registry shares memory with caller")
	}
	got.Capabilities["resolution"] = 777 // mutate resolved copy
	again, _ := reg.Resolve("ornl/xrd-1")
	if again.Capabilities["resolution"] != 0.1 {
		t.Fatal("resolve leaks internal state")
	}
}

func TestLiveCount(t *testing.T) {
	_, _, d := testDirectory(t)
	reg := d.Registry("ornl")
	reg.Register(xrdRecord("a", 1))
	reg.Register(xrdRecord("b", 1))
	reg.Deregister("a")
	if n := reg.Live(); n != 1 {
		t.Fatalf("Live() = %d, want 1", n)
	}
}
