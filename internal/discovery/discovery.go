// Package discovery implements AISLE's self-discovering agent network
// (milestone M12): a DNS-SD-style federated service registry in which every
// site runs a registry, services register records with TTL-bounded leases,
// and registries converge through periodic anti-entropy gossip over the bus.
// Capability descriptors on each record support the negotiation step the
// paper calls for — agents pick instruments by required capability rather
// than by hard-coded address.
//
// The design tolerates the failures the roadmap worries about: a partition
// stalls convergence only for the separated groups, leases expire when an
// owner dies, and the directory re-converges after topology changes without
// central coordination.
//
// Records are copy-on-write: once stored, a *Record's content never
// mutates, so gossip snapshots and merges share pointers instead of deep
// cloning (the pre-rewrite clone-per-record-per-round dominated the whole
// simulation's allocation profile). Mutable lease state (expiry, last
// update) lives in a per-registry entry alongside the shared record;
// version bumps (Renew, Deregister) replace the record pointer.
package discovery

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/aisle-sim/aisle/internal/bus"
	"github.com/aisle-sim/aisle/internal/netsim"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/telemetry"
)

// Record is one advertised service instance. Instance names are globally
// unique ("ornl/xrd-1"); Type groups interchangeable services
// ("_xrd._aisle"). Capabilities hold numeric capability levels used in
// negotiation; Text holds descriptive metadata (vendor, model, units).
//
// Stored records are immutable and shared across registries; UpdatedAt and
// ExpiresAt are filled in on copy-out from the owning registry's lease
// entry.
type Record struct {
	Instance     string
	Type         string
	Addr         bus.Address
	Capabilities map[string]float64
	Text         map[string]string

	// Lease management.
	TTL       sim.Time
	Version   uint64
	Deleted   bool
	Origin    netsim.SiteID
	UpdatedAt sim.Time // local registry clock when last merged
	ExpiresAt sim.Time
}

func (r *Record) clone() *Record {
	c := *r
	c.Capabilities = make(map[string]float64, len(r.Capabilities))
	for k, v := range r.Capabilities {
		c.Capabilities[k] = v
	}
	c.Text = make(map[string]string, len(r.Text))
	for k, v := range r.Text {
		c.Text[k] = v
	}
	return &c
}

// entry pairs a shared immutable record with this registry's lease state.
type entry struct {
	rec       *Record
	updatedAt sim.Time
	expiresAt sim.Time
}

// copyOut materializes a caller-owned Record with the local lease view.
func (e *entry) copyOut() Record {
	c := *e.rec.clone()
	c.UpdatedAt = e.updatedAt
	c.ExpiresAt = e.expiresAt
	return c
}

// Registry is one site's view of the federated directory.
type Registry struct {
	site    netsim.SiteID
	dir     *Directory
	records map[string]*entry

	// Read-path acceleration: routing browses the directory on every
	// scheduler dispatch attempt, so lookups must not rescan and re-sort
	// the record map. typeIdx caches a sorted per-type record index,
	// rebuilt lazily when gen (bumped on any membership or type change)
	// moves past the cached generation; nextExpiry is a conservative
	// lower bound on the earliest lease expiry so expire is O(1) until a
	// lease can actually lapse.
	gen        uint64
	typeIdx    map[string]*typeIndex
	nextExpiry sim.Time
}

// typeIndex is the cached Browse result set for one service type.
type typeIndex struct {
	gen  uint64
	recs []*Record // sorted by instance name; includes tombstones
}

// noExpiry marks an empty registry's expiry bound.
const noExpiry = sim.Time(math.MaxInt64)

// touch invalidates the read caches after a membership or type change and
// folds a record's lease into the expiry bound.
func (r *Registry) touch(expires sim.Time) {
	r.gen++
	if expires < r.nextExpiry {
		r.nextExpiry = expires
	}
}

// Directory wires the per-site registries together with gossip.
type Directory struct {
	fabric     *bus.Fabric
	eng        *sim.Engine
	metrics    *telemetry.Registry
	registries map[netsim.SiteID]*Registry
	sites      []netsim.SiteID

	// GossipInterval controls anti-entropy frequency. Default 2s.
	GossipInterval sim.Time
	// DefaultTTL applies to records registered without one. Default 30s.
	DefaultTTL sim.Time

	stops []func()
}

// NewDirectory creates registries for the given sites and starts gossip.
func NewDirectory(fabric *bus.Fabric, sites []netsim.SiteID) *Directory {
	d := &Directory{
		fabric:         fabric,
		eng:            fabric.Engine(),
		metrics:        telemetry.NewRegistry(),
		registries:     make(map[netsim.SiteID]*Registry),
		sites:          append([]netsim.SiteID(nil), sites...),
		GossipInterval: 2 * sim.Second,
		DefaultTTL:     30 * sim.Second,
	}
	for _, s := range sites {
		d.registries[s] = &Registry{site: s, dir: d, records: make(map[string]*entry)}
	}
	for _, s := range sites {
		s := s
		fabric.Broker(s).RegisterFunc("discovery.sync", 0, func(env *bus.Envelope) (any, error) {
			return d.registries[s].handleSync(env.Payload.([]*Record)), nil
		})
	}
	return d
}

// Metrics exposes discovery telemetry.
func (d *Directory) Metrics() *telemetry.Registry { return d.metrics }

// Registry returns the registry hosted at site.
func (d *Directory) Registry(site netsim.SiteID) *Registry { return d.registries[site] }

// Start launches the gossip tickers. Call once after topology is built.
func (d *Directory) Start() {
	for _, s := range d.sites {
		reg := d.registries[s]
		stop := d.eng.Ticker(d.GossipInterval, func(int) { reg.gossipRound() })
		d.stops = append(d.stops, stop)
	}
}

// Stop cancels gossip (ends the simulation cleanly).
func (d *Directory) Stop() {
	for _, s := range d.stops {
		s()
	}
	d.stops = nil
}

// Register advertises a record at its origin site's registry. The caller's
// record is copied; subsequent mutations have no effect. Registration bumps
// the version so gossip propagates the update.
func (r *Registry) Register(rec Record) {
	if rec.TTL <= 0 {
		rec.TTL = r.dir.DefaultTTL
	}
	rec.Origin = r.site
	existing := r.records[rec.Instance]
	if existing != nil {
		rec.Version = existing.rec.Version + 1
	} else {
		rec.Version = 1
	}
	now := r.dir.eng.Now()
	rec.UpdatedAt = now
	rec.ExpiresAt = now + rec.TTL
	r.records[rec.Instance] = &entry{
		rec:       rec.clone(), // detach from the caller's maps
		updatedAt: now,
		expiresAt: now + rec.TTL,
	}
	r.gen++
	r.dir.metrics.Counter("discovery.registrations").Inc()
}

// Renew extends the lease on an instance owned by this registry, bumping
// its version so remote registries learn the new expiry. It reports whether
// the instance was found and owned here.
func (r *Registry) Renew(instance string) bool {
	e, ok := r.records[instance]
	if !ok || e.rec.Origin != r.site || e.rec.Deleted {
		return false
	}
	// Copy-on-write: snapshots in flight share the old record.
	next := *e.rec
	next.Version++
	e.rec = &next
	e.updatedAt = r.dir.eng.Now()
	e.expiresAt = e.updatedAt + next.TTL
	return true
}

// Deregister tombstones an instance owned by this registry.
func (r *Registry) Deregister(instance string) bool {
	e, ok := r.records[instance]
	if !ok || e.rec.Origin != r.site {
		return false
	}
	next := *e.rec
	next.Deleted = true
	next.Version++
	e.rec = &next
	e.updatedAt = r.dir.eng.Now()
	// Tombstones linger one TTL so gossip can spread them.
	e.expiresAt = e.updatedAt + next.TTL
	r.touch(e.expiresAt)
	return true
}

// expire drops records whose lease lapsed. Tombstones and foreign records
// both expire; owners keep their live records fresh via Renew. The scan is
// skipped entirely while the clock sits below the earliest possible expiry,
// so steady-state reads pay one comparison.
func (r *Registry) expire() {
	now := r.dir.eng.Now()
	if now < r.nextExpiry {
		return
	}
	next := noExpiry
	removed := 0
	for name, e := range r.records {
		if now >= e.expiresAt && !(e.rec.Origin == r.site && !e.rec.Deleted) {
			delete(r.records, name)
			removed++
			r.dir.metrics.Counter("discovery.expirations").Inc()
			continue
		}
		if e.expiresAt < next && !(e.rec.Origin == r.site && !e.rec.Deleted) {
			next = e.expiresAt
		}
	}
	r.nextExpiry = next
	if removed > 0 {
		r.gen++
	}
}

// typeIndexFor returns the cached sorted record set for a type, rebuilding
// it when the registry changed since it was cached.
func (r *Registry) typeIndexFor(serviceType string) *typeIndex {
	if r.typeIdx == nil {
		r.typeIdx = make(map[string]*typeIndex)
	}
	idx := r.typeIdx[serviceType]
	if idx != nil && idx.gen == r.gen {
		return idx
	}
	if idx == nil {
		idx = &typeIndex{}
		r.typeIdx[serviceType] = idx
	}
	idx.recs = idx.recs[:0]
	for _, e := range r.records {
		if e.rec.Type == serviceType {
			idx.recs = append(idx.recs, e.rec)
		}
	}
	sort.Slice(idx.recs, func(i, j int) bool { return idx.recs[i].Instance < idx.recs[j].Instance })
	idx.gen = r.gen
	return idx
}

// BrowseFunc visits the live records of the given type in instance-name
// order, without copying, until fn returns false. The records belong to
// the registry: callers must not mutate or retain them across simulation
// events. This is the allocation-free read path the federation scheduler
// routes through on every dispatch attempt; Browse is the copying
// convenience wrapper.
func (r *Registry) BrowseFunc(serviceType string, fn func(*Record) bool) {
	r.expire()
	for _, rec := range r.typeIndexFor(serviceType).recs {
		if rec.Deleted {
			continue
		}
		if !fn(rec) {
			return
		}
	}
}

// HasType reports whether any live record of the type is visible, without
// allocating.
func (r *Registry) HasType(serviceType string) bool {
	found := false
	r.BrowseFunc(serviceType, func(*Record) bool {
		found = true
		return false
	})
	return found
}

// Browse lists live records of the given type, sorted by instance name.
func (r *Registry) Browse(serviceType string) []Record {
	r.expire()
	var out []Record
	for _, rec := range r.typeIndexFor(serviceType).recs {
		if rec.Deleted {
			continue
		}
		if e := r.records[rec.Instance]; e != nil {
			out = append(out, e.copyOut())
		}
	}
	return out
}

// Resolve fetches a single instance by name.
func (r *Registry) Resolve(instance string) (Record, bool) {
	r.expire()
	e, ok := r.records[instance]
	if !ok || e.rec.Deleted {
		return Record{}, false
	}
	return e.copyOut(), true
}

// Live reports the number of live (non-tombstone) records.
func (r *Registry) Live() int {
	r.expire()
	n := 0
	for _, e := range r.records {
		if !e.rec.Deleted {
			n++
		}
	}
	return n
}

// snapshot exports all records (including tombstones) for gossip. The
// returned slice shares the registry's immutable record pointers — the
// whole export is one slice allocation. The slice itself is freshly
// allocated per call because it rides the bus as a message payload with an
// unbounded delivery horizon (retries, slow links).
func (r *Registry) snapshot() []*Record {
	out := make([]*Record, 0, len(r.records))
	for _, e := range r.records {
		out = append(out, e.rec)
	}
	return out
}

// merge folds remote records in, keeping the higher (origin, version) wins.
// Hearing an unchanged record again refreshes its lease, so steady gossip
// keeps live records alive without explicit renewal traffic. Accepted
// records are stored by pointer — content is immutable federation-wide, so
// no copy is needed; only the local lease entry is new.
func (r *Registry) merge(in []*Record) int {
	changed := 0
	now := r.dir.eng.Now()
	for _, rec := range in {
		cur, ok := r.records[rec.Instance]
		if ok && cur.rec.Version > rec.Version {
			continue
		}
		if ok && cur.rec.Version == rec.Version && !rec.Deleted {
			// Foreign lease clock restarts on every fresh sighting.
			cur.expiresAt = now + cur.rec.TTL
			continue
		}
		expires := now + rec.TTL
		r.records[rec.Instance] = &entry{rec: rec, updatedAt: now, expiresAt: expires}
		r.touch(expires)
		changed++
	}
	if changed > 0 {
		r.dir.metrics.Counter("discovery.merged_records").Add(int64(changed))
	}
	return changed
}

// handleSync is the pull-push RPC body: merge the caller's snapshot and
// return ours.
func (r *Registry) handleSync(in []*Record) []*Record {
	r.expire()
	r.merge(in)
	return r.snapshot()
}

// gossipRound pushes this registry's snapshot to every peer and merges each
// reply (push-pull anti-entropy). Unreachable peers are skipped silently;
// convergence resumes when links heal.
func (r *Registry) gossipRound() {
	r.expire()
	snap := r.snapshot()
	for _, peer := range r.dir.sites {
		if peer == r.site {
			continue
		}
		peer := peer
		r.dir.metrics.Counter("discovery.gossip_rounds").Inc()
		r.dir.fabric.Call(bus.CallOpts{
			From:    bus.Address{Site: r.site, Name: "discovery"},
			To:      bus.Address{Site: peer, Name: "discovery.sync"},
			Method:  "discovery.sync",
			Payload: snap,
			Timeout: r.dir.GossipInterval,
		}, func(result any, err error) {
			if err != nil {
				r.dir.metrics.Counter("discovery.gossip_failures").Inc()
				return
			}
			r.merge(result.([]*Record))
		})
	}
}

// Converged reports whether every registry holds an identical set of live
// records (instance -> version).
func (d *Directory) Converged() bool {
	var ref map[string]uint64
	for _, s := range d.sites {
		reg := d.registries[s]
		reg.expire()
		view := make(map[string]uint64)
		for name, e := range reg.records {
			if !e.rec.Deleted {
				view[name] = e.rec.Version
			}
		}
		if ref == nil {
			ref = view
			continue
		}
		if len(ref) != len(view) {
			return false
		}
		for k, v := range ref {
			if view[k] != v {
				return false
			}
		}
	}
	return true
}

// Requirement describes what a consumer needs from a service during
// capability negotiation.
type Requirement struct {
	Type    string
	MinCaps map[string]float64 // each capability must be >= the floor
	Prefer  string             // capability to maximize among qualifiers
}

// Negotiate selects the best qualifying instance visible from this
// registry. It reports false when nothing qualifies. Only the winning
// record is copied, so negotiation on the campaign hot path stays cheap.
func (r *Registry) Negotiate(req Requirement) (Record, bool) {
	var best *Record
	bestScore := 0.0
	r.BrowseFunc(req.Type, func(c *Record) bool {
		for cap, floor := range req.MinCaps {
			if c.Capabilities[cap] < floor {
				return true
			}
		}
		score := 1.0
		if req.Prefer != "" {
			score = c.Capabilities[req.Prefer]
		}
		if best == nil || score > bestScore {
			best, bestScore = c, score
		}
		return true
	})
	if best == nil {
		return Record{}, false
	}
	r.dir.metrics.Counter("discovery.negotiations").Inc()
	if e := r.records[best.Instance]; e != nil {
		return e.copyOut(), true
	}
	return *best.clone(), true
}

// String renders a record compactly for logs.
func (r Record) String() string {
	var caps []string
	for k, v := range r.Capabilities {
		caps = append(caps, fmt.Sprintf("%s=%g", k, v))
	}
	sort.Strings(caps)
	return fmt.Sprintf("%s (%s) @%s [%s]", r.Instance, r.Type, r.Addr, strings.Join(caps, " "))
}
