package param

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/aisle-sim/aisle/internal/rng"
)

func testSpace() Space {
	return Space{
		{Name: "temp", Lo: 50, Hi: 250, Unit: "C"},
		{Name: "ratio", Lo: 0, Hi: 1},
		{Name: "steps", Lo: 0, Hi: 10, Step: 2},
	}
}

func TestDimLevels(t *testing.T) {
	d := Dim{Lo: 0, Hi: 10, Step: 2}
	if d.Levels() != 6 {
		t.Fatalf("Levels = %d, want 6 (0,2,4,6,8,10)", d.Levels())
	}
	if (Dim{Lo: 0, Hi: 1}).Levels() != 0 {
		t.Fatal("continuous dim should report 0 levels")
	}
}

func TestDimSnap(t *testing.T) {
	d := Dim{Lo: 0, Hi: 10, Step: 2}
	cases := map[float64]float64{3: 4, 2.9: 2, -5: 0, 15: 10, 7: 8, 6.99: 6}
	for in, want := range cases {
		if got := d.Snap(in); math.Abs(got-want) > 1e-9 {
			t.Errorf("Snap(%v) = %v, want %v", in, got, want)
		}
	}
	c := Dim{Lo: 1, Hi: 9}
	if c.Snap(3.14159) != 3.14159 {
		t.Fatal("continuous snap should be identity inside bounds")
	}
	if c.Snap(100) != 9 {
		t.Fatal("continuous snap should clip")
	}
}

func TestValidate(t *testing.T) {
	s := testSpace()
	good := Point{"temp": 100, "ratio": 0.5, "steps": 4}
	if err := s.Validate(good); err != nil {
		t.Fatalf("valid point rejected: %v", err)
	}
	if err := s.Validate(Point{"temp": 100, "ratio": 0.5}); err == nil {
		t.Fatal("missing dimension accepted")
	}
	if err := s.Validate(Point{"temp": 500, "ratio": 0.5, "steps": 4}); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestSampleInBounds(t *testing.T) {
	s := testSpace()
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		p := s.Sample(r)
		if err := s.Validate(p); err != nil {
			t.Fatalf("sample invalid: %v", err)
		}
		// Discrete dim must land on lattice.
		k := p["steps"] / 2
		if k != math.Trunc(k) {
			t.Fatalf("steps=%v off lattice", p["steps"])
		}
	}
}

func TestCardinality(t *testing.T) {
	s := Space{
		{Name: "a", Lo: 0, Hi: 10, Step: 1},  // 11
		{Name: "b", Lo: 0, Hi: 1, Step: 0.5}, // 3
	}
	if got := s.Cardinality(); got != 33 {
		t.Fatalf("Cardinality = %v, want 33", got)
	}
	if !math.IsInf(testSpace().Cardinality(), 1) {
		t.Fatal("space with continuous dim should have infinite cardinality")
	}
}

func TestUnitRoundTrip(t *testing.T) {
	s := Space{
		{Name: "x", Lo: -5, Hi: 5},
		{Name: "y", Lo: 100, Hi: 200},
	}
	f := func(a, b uint8) bool {
		u := []float64{float64(a) / 255, float64(b) / 255}
		p := s.FromUnit(u)
		u2 := s.ToUnit(p)
		return math.Abs(u[0]-u2[0]) < 1e-9 && math.Abs(u[1]-u2[1]) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLHSRespectsLattice(t *testing.T) {
	s := Space{{Name: "k", Lo: 0, Hi: 100, Step: 10}}
	pts := s.SampleLHS(rng.New(3), 8)
	if len(pts) != 8 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		k := p["k"] / 10
		if k != math.Trunc(k) {
			t.Fatalf("LHS point %v off lattice", p["k"])
		}
	}
}

func TestPointKeyCanonical(t *testing.T) {
	a := Point{"x": 1, "y": 2}
	b := Point{"y": 2, "x": 1}
	if a.Key() != b.Key() {
		t.Fatal("Key not canonical across map order")
	}
	if !strings.Contains(a.Key(), "x=1") {
		t.Fatalf("Key = %q", a.Key())
	}
	if a.Key() == (Point{"x": 1, "y": 3}).Key() {
		t.Fatal("distinct points share a key")
	}
}

func TestClone(t *testing.T) {
	p := Point{"x": 1}
	c := p.Clone()
	c["x"] = 2
	if p["x"] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestSnapSpace(t *testing.T) {
	s := testSpace()
	p := s.Snap(Point{"temp": 1000, "ratio": -3, "steps": 3.7})
	if p["temp"] != 250 || p["ratio"] != 0 || p["steps"] != 4 {
		t.Fatalf("Snap = %v", p)
	}
}

func TestDimLookup(t *testing.T) {
	s := testSpace()
	d, ok := s.Dim("ratio")
	if !ok || d.Hi != 1 {
		t.Fatal("Dim lookup failed")
	}
	if _, ok := s.Dim("ghost"); ok {
		t.Fatal("ghost dimension found")
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "temp" {
		t.Fatalf("Names = %v", names)
	}
}
