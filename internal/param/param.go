// Package param defines the parameter-space vocabulary shared by digital
// twins, instruments, and optimizers: named dimensions with bounds, optional
// discretization, unit-cube mapping for Gaussian-process models, and
// cardinality accounting (how the paper's "10^13 possible synthesis
// conditions" is counted).
package param

import (
	"fmt"
	"math"
	"sort"

	"github.com/aisle-sim/aisle/internal/rng"
)

// Dim is one parameter dimension. Step == 0 means continuous; Step > 0
// discretizes [Lo, Hi] into a lattice anchored at Lo.
type Dim struct {
	Name string
	Lo   float64
	Hi   float64
	Step float64
	Unit string
}

// Levels reports the number of lattice points for a discrete dimension,
// or 0 for a continuous one.
func (d Dim) Levels() int {
	if d.Step <= 0 {
		return 0
	}
	return int(math.Floor((d.Hi-d.Lo)/d.Step+1e-9)) + 1
}

// Snap rounds v onto the dimension's lattice (identity when continuous) and
// clips to bounds.
func (d Dim) Snap(v float64) float64 {
	if v < d.Lo {
		v = d.Lo
	}
	if v > d.Hi {
		v = d.Hi
	}
	if d.Step > 0 {
		k := math.Round((v - d.Lo) / d.Step)
		v = d.Lo + k*d.Step
		if v > d.Hi {
			v -= d.Step
		}
	}
	return v
}

// Point is an assignment of values to dimension names.
type Point map[string]float64

// Clone copies the point.
func (p Point) Clone() Point {
	c := make(Point, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// Space is an ordered list of dimensions.
type Space []Dim

// Names returns dimension names in order.
func (s Space) Names() []string {
	out := make([]string, len(s))
	for i, d := range s {
		out[i] = d.Name
	}
	return out
}

// Dim returns the named dimension and whether it exists.
func (s Space) Dim(name string) (Dim, bool) {
	for _, d := range s {
		if d.Name == name {
			return d, true
		}
	}
	return Dim{}, false
}

// Validate checks that p assigns an in-range value to every dimension.
func (s Space) Validate(p Point) error {
	for _, d := range s {
		v, ok := p[d.Name]
		if !ok {
			return fmt.Errorf("param: missing dimension %q", d.Name)
		}
		if v < d.Lo-1e-12 || v > d.Hi+1e-12 {
			return fmt.Errorf("param: %s=%g outside [%g,%g]", d.Name, v, d.Lo, d.Hi)
		}
	}
	return nil
}

// Snap projects p onto the space: clipped to bounds and rounded to lattices.
func (s Space) Snap(p Point) Point {
	out := make(Point, len(s))
	for _, d := range s {
		out[d.Name] = d.Snap(p[d.Name])
	}
	return out
}

// Sample draws a uniform random point (lattice-respecting).
func (s Space) Sample(r *rng.Stream) Point {
	p := make(Point, len(s))
	s.SampleInto(r, p)
	return p
}

// SampleInto draws a uniform random point into p, reusing its storage.
// The random draws are identical to Sample's, so the two are
// interchangeable on a shared stream; hot loops (candidate pools) use
// SampleInto to avoid a map allocation per draw.
func (s Space) SampleInto(r *rng.Stream, p Point) {
	for _, d := range s {
		if n := d.Levels(); n > 0 {
			p[d.Name] = d.Lo + float64(r.Intn(n))*d.Step
		} else {
			p[d.Name] = r.Range(d.Lo, d.Hi)
		}
	}
}

// SampleLHS draws n stratified points via Latin hypercube sampling.
func (s Space) SampleLHS(r *rng.Stream, n int) []Point {
	unit := r.LatinHypercube(n, len(s))
	out := make([]Point, n)
	for i := range out {
		out[i] = s.FromUnit(unit[i])
	}
	return out
}

// Cardinality reports the number of distinct lattice points, or +Inf if any
// dimension is continuous. This is the quantity behind the paper's "10^13
// possible synthesis conditions".
func (s Space) Cardinality() float64 {
	total := 1.0
	for _, d := range s {
		n := d.Levels()
		if n == 0 {
			return math.Inf(1)
		}
		total *= float64(n)
	}
	return total
}

// ToUnit maps p into [0,1]^d in dimension order.
func (s Space) ToUnit(p Point) []float64 {
	u := make([]float64, len(s))
	s.ToUnitInto(p, u)
	return u
}

// ToUnitInto maps p into [0,1]^d writing into u (len(u) >= len(s)),
// the allocation-free form batch scoring loops use.
func (s Space) ToUnitInto(p Point, u []float64) {
	for i, d := range s {
		if d.Hi == d.Lo {
			u[i] = 0
			continue
		}
		u[i] = (p[d.Name] - d.Lo) / (d.Hi - d.Lo)
	}
}

// FromUnit maps a unit-cube vector back to a (snapped) point.
func (s Space) FromUnit(u []float64) Point {
	p := make(Point, len(s))
	for i, d := range s {
		v := d.Lo + u[i]*(d.Hi-d.Lo)
		p[d.Name] = d.Snap(v)
	}
	return p
}

// Key renders a canonical string identity for a point (sorted names),
// suitable for dedup caches and knowledge-base keys.
func (p Point) Key() string {
	names := make([]string, 0, len(p))
	for k := range p {
		names = append(names, k)
	}
	sort.Strings(names)
	out := ""
	for i, k := range names {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%.6g", k, p[k])
	}
	return out
}
