// Benchmarks regenerating every experiment in the suite (DESIGN.md §3):
// one benchmark per table/figure-equivalent claim. Each iteration runs the
// experiment end to end in Quick mode — go test -bench reports wall time
// per full regeneration, and -benchmem the allocation footprint of the
// simulation stack.
package aisle

import (
	"testing"

	"github.com/aisle-sim/aisle/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, experiments.Options{
			Seed: uint64(42 + i), Quick: true, Replicas: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkE1Orchestration regenerates M8's manual-vs-agent speedup table.
func BenchmarkE1Orchestration(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Verification regenerates M8's correctness-with-verification table.
func BenchmarkE2Verification(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE2aVerifyDepth regenerates the verification-depth ablation.
func BenchmarkE2aVerifyDepth(b *testing.B) { benchExperiment(b, "E2a") }

// BenchmarkE3Knowledge regenerates M9's federated-knowledge reduction table.
func BenchmarkE3Knowledge(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE3aFederationSize regenerates the federation-size ablation.
func BenchmarkE3aFederationSize(b *testing.B) { benchExperiment(b, "E3a") }

// BenchmarkE4Fluidic regenerates the fluidic-vs-batch efficiency table.
func BenchmarkE4Fluidic(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Acceleration regenerates the isolated-vs-interconnected table.
func BenchmarkE5Acceleration(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6ZeroTrust regenerates M11's zero-trust latency/failover table.
func BenchmarkE6ZeroTrust(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7Protocols regenerates the M10 protocol-comparison table.
func BenchmarkE7Protocols(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Metadata regenerates M5's annotation-accuracy table.
func BenchmarkE8Metadata(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9DataMesh regenerates M6's mesh discovery + FAIR table.
func BenchmarkE9DataMesh(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE9aProxy regenerates the proxy-vs-value ablation.
func BenchmarkE9aProxy(b *testing.B) { benchExperiment(b, "E9a") }

// BenchmarkE10Streams regenerates M7's stream quality-assessment table.
func BenchmarkE10Streams(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Discovery regenerates M12's self-discovery convergence table.
func BenchmarkE11Discovery(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12SearchSpace regenerates the Smart Dope 1e13-space table.
func BenchmarkE12SearchSpace(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13FaultTolerance regenerates the M2/M3 fault-tolerance table.
func BenchmarkE13FaultTolerance(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE13aRetryBudget regenerates the retry-budget ablation.
func BenchmarkE13aRetryBudget(b *testing.B) { benchExperiment(b, "E13a") }

// BenchmarkE14Education regenerates the M13/M14 curriculum-outcomes table.
func BenchmarkE14Education(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15SchedSaturation regenerates the scheduler-saturation table.
func BenchmarkE15SchedSaturation(b *testing.B) { benchExperiment(b, "E15") }

// benchConcurrentCampaigns drives 200 concurrent campaigns across a 4-site
// federation through the scheduler at the given per-campaign parallelism,
// reporting wall time per full saturation run and virtual campaign
// throughput. This is the heavy-multi-tenant-traffic scenario from the
// roadmap's north star; the workload itself lives in
// experiments.RunSaturation so aisle-bench's BENCH_optimize.json recorder
// measures exactly the same thing.
func benchConcurrentCampaigns(b *testing.B, parallelism int, tr TraceOptions) {
	b.Helper()
	const nCamps = 200
	var camphSum float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSaturation(experiments.SaturationSpec{
			Seed:        uint64(42 + i),
			Campaigns:   nCamps,
			Budget:      6,
			Parallelism: parallelism,
			Trace:       tr,
		})
		if err != nil {
			b.Fatal(err)
		}
		camphSum += float64(nCamps) / ((res.Finish - res.Start).Seconds() / 3600)
	}
	b.ReportMetric(camphSum/float64(b.N), "vcampaigns/hr")
}

// BenchmarkSchedCampaignsP1 is the serial-loop baseline: 200 concurrent
// campaigns, each with one experiment in flight.
func BenchmarkSchedCampaignsP1(b *testing.B) { benchConcurrentCampaigns(b, 1, TraceOptions{}) }

// BenchmarkSchedCampaignsP4 keeps 4 experiments per campaign in flight.
// Tracing stays on its zero-value disabled path, so comparing this against
// the recorded pre-instrumentation numbers (BENCH_optimize.json baseline)
// guards the tracing layer's disabled-mode zero-allocation contract at
// macro scale.
func BenchmarkSchedCampaignsP4(b *testing.B) { benchConcurrentCampaigns(b, 4, TraceOptions{}) }

// BenchmarkSchedCampaignsP4Traced is the same workload fully sampled: the
// delta against BenchmarkSchedCampaignsP4 is the whole cost of causal
// tracing (aisle-bench -tracebench records the same pair in
// BENCH_trace.json).
func BenchmarkSchedCampaignsP4Traced(b *testing.B) {
	benchConcurrentCampaigns(b, 4, TraceOptions{Enabled: true})
}

// BenchmarkSchedCampaignsP16 keeps 16 experiments per campaign in flight
// (far past fleet capacity, exercising the fair-share queues under
// saturation).
func BenchmarkSchedCampaignsP16(b *testing.B) { benchConcurrentCampaigns(b, 16, TraceOptions{}) }
