// Benchmarks regenerating every experiment in the suite (DESIGN.md §3):
// one benchmark per table/figure-equivalent claim. Each iteration runs the
// experiment end to end in Quick mode — go test -bench reports wall time
// per full regeneration, and -benchmem the allocation footprint of the
// simulation stack.
package aisle

import (
	"fmt"
	"testing"

	"github.com/aisle-sim/aisle/internal/core"
	"github.com/aisle-sim/aisle/internal/experiments"
	"github.com/aisle-sim/aisle/internal/instrument"
	"github.com/aisle-sim/aisle/internal/sim"
	"github.com/aisle-sim/aisle/internal/twin"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, experiments.Options{
			Seed: uint64(42 + i), Quick: true, Replicas: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkE1Orchestration regenerates M8's manual-vs-agent speedup table.
func BenchmarkE1Orchestration(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Verification regenerates M8's correctness-with-verification table.
func BenchmarkE2Verification(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE2aVerifyDepth regenerates the verification-depth ablation.
func BenchmarkE2aVerifyDepth(b *testing.B) { benchExperiment(b, "E2a") }

// BenchmarkE3Knowledge regenerates M9's federated-knowledge reduction table.
func BenchmarkE3Knowledge(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE3aFederationSize regenerates the federation-size ablation.
func BenchmarkE3aFederationSize(b *testing.B) { benchExperiment(b, "E3a") }

// BenchmarkE4Fluidic regenerates the fluidic-vs-batch efficiency table.
func BenchmarkE4Fluidic(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Acceleration regenerates the isolated-vs-interconnected table.
func BenchmarkE5Acceleration(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6ZeroTrust regenerates M11's zero-trust latency/failover table.
func BenchmarkE6ZeroTrust(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7Protocols regenerates the M10 protocol-comparison table.
func BenchmarkE7Protocols(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Metadata regenerates M5's annotation-accuracy table.
func BenchmarkE8Metadata(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9DataMesh regenerates M6's mesh discovery + FAIR table.
func BenchmarkE9DataMesh(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE9aProxy regenerates the proxy-vs-value ablation.
func BenchmarkE9aProxy(b *testing.B) { benchExperiment(b, "E9a") }

// BenchmarkE10Streams regenerates M7's stream quality-assessment table.
func BenchmarkE10Streams(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Discovery regenerates M12's self-discovery convergence table.
func BenchmarkE11Discovery(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12SearchSpace regenerates the Smart Dope 1e13-space table.
func BenchmarkE12SearchSpace(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13FaultTolerance regenerates the M2/M3 fault-tolerance table.
func BenchmarkE13FaultTolerance(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE13aRetryBudget regenerates the retry-budget ablation.
func BenchmarkE13aRetryBudget(b *testing.B) { benchExperiment(b, "E13a") }

// BenchmarkE14Education regenerates the M13/M14 curriculum-outcomes table.
func BenchmarkE14Education(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15SchedSaturation regenerates the scheduler-saturation table.
func BenchmarkE15SchedSaturation(b *testing.B) { benchExperiment(b, "E15") }

// benchConcurrentCampaigns drives 200 concurrent campaigns across a 4-site
// federation through the scheduler at the given per-campaign parallelism,
// reporting wall time per full saturation run and virtual campaign
// throughput. This is the heavy-multi-tenant-traffic scenario from the
// roadmap's north star.
func benchConcurrentCampaigns(b *testing.B, parallelism int) {
	b.Helper()
	const (
		nSites  = 4
		nCamps  = 200
		nBudget = 6
	)
	var camphSum float64
	for i := 0; i < b.N; i++ {
		sites := []SiteID{"ornl", "anl", "slac", "pnnl"}
		n := core.New(core.Config{Seed: uint64(42 + i), Sites: sites, Link: core.DefaultLink()})
		for _, id := range sites {
			s := n.Site(id)
			for k := 0; k < 2; k++ {
				s.AddInstrument(instrument.NewFluidicReactor(
					n.Eng, n.Rnd, fmt.Sprintf("flow-%d-%s", k, id), string(id), twin.Perovskite{}))
			}
		}
		if err := n.RunFor(3 * sim.Minute); err != nil {
			b.Fatal(err)
		}
		start := n.Eng.Now()
		finish := start
		done := 0
		for c := 0; c < nCamps; c++ {
			n.RunCampaign(core.CampaignConfig{
				Name:        fmt.Sprintf("bench-%03d", c),
				Site:        sites[c%len(sites)],
				Model:       twin.Perovskite{},
				Budget:      nBudget,
				Mode:        core.OrchAgentVerified,
				SynthKind:   instrument.KindFlowReactor,
				Parallelism: parallelism,
			}, func(r *core.CampaignReport) {
				done++
				if r.Err != nil {
					b.Error(r.Err)
				}
				if r.Finished > finish {
					finish = r.Finished
				}
			})
		}
		deadline := n.Eng.Now() + 60*sim.Day
		for done < nCamps && n.Eng.Now() < deadline {
			if err := n.RunFor(sim.Hour); err != nil {
				b.Fatal(err)
			}
		}
		n.Stop()
		if done != nCamps {
			b.Fatalf("only %d/%d campaigns completed", done, nCamps)
		}
		camphSum += float64(nCamps) / ((finish - start).Seconds() / 3600)
	}
	b.ReportMetric(camphSum/float64(b.N), "vcampaigns/hr")
}

// BenchmarkSchedCampaignsP1 is the serial-loop baseline: 200 concurrent
// campaigns, each with one experiment in flight.
func BenchmarkSchedCampaignsP1(b *testing.B) { benchConcurrentCampaigns(b, 1) }

// BenchmarkSchedCampaignsP4 keeps 4 experiments per campaign in flight.
func BenchmarkSchedCampaignsP4(b *testing.B) { benchConcurrentCampaigns(b, 4) }

// BenchmarkSchedCampaignsP16 keeps 16 experiments per campaign in flight
// (far past fleet capacity, exercising the fair-share queues under
// saturation).
func BenchmarkSchedCampaignsP16(b *testing.B) { benchConcurrentCampaigns(b, 16) }
