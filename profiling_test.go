// Profiling acceptance tests: the continuous spine profiler must observe
// the federation without perturbing it (bit-identical virtual trajectory
// with the profiler on or off), its deterministic exports must reproduce
// byte-identically across fixed-seed runs, and the disabled path must not
// allocate — the contract that lets the profiler stay on in production.
package aisle

import (
	"bytes"
	"testing"

	"github.com/aisle-sim/aisle/internal/prof"
)

// runProfiledCampaign is runTracedCampaign with the spine profiler on
// (tracing stays on so histogram exemplars carry real trace IDs).
func runProfiledCampaign(t testing.TB) (*Network, *CampaignReport) {
	t.Helper()
	n := New(Config{
		Seed:            7,
		Sites:           []SiteID{"ornl", "anl"},
		Link:            DefaultLink(),
		SharedKnowledge: true,
		Trace:           TraceOptions{Enabled: true},
		Prof:            ProfOptions{Enabled: true},
	})
	t.Cleanup(n.Stop)
	n.Site("ornl").AddInstrument(NewFluidicReactor(n.Eng, n.Rnd, "flow-1", "ornl", Perovskite{}))
	n.Site("anl").AddInstrument(NewFluidicReactor(n.Eng, n.Rnd, "flow-2", "anl", Perovskite{}))
	if err := n.RunFor(3 * Minute); err != nil {
		t.Fatal(err)
	}
	var rep *CampaignReport
	n.RunCampaign(CampaignConfig{
		Name:         "golden",
		Site:         "ornl",
		Model:        Perovskite{},
		Budget:       8,
		Mode:         OrchAgentVerified,
		SynthKind:    KindFlowReactor,
		Parallelism:  2,
		UseKnowledge: true,
	}, func(r *CampaignReport) { rep = r })
	for rep == nil {
		if err := n.RunFor(Hour); err != nil {
			t.Fatal(err)
		}
	}
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	return n, rep
}

// TestProfileDeterministic replays the fixed-seed campaign twice with the
// profiler on and requires byte-identical JSON profiles and folded stacks
// (count and virtual weights): every deterministic export is a pure
// function of the virtual trajectory.
func TestProfileDeterministic(t *testing.T) {
	var jsons, counts, virts [2]bytes.Buffer
	for i := range jsons {
		n, _ := runProfiledCampaign(t)
		if err := n.Prof.WriteJSON(&jsons[i]); err != nil {
			t.Fatal(err)
		}
		if err := n.Prof.WriteFolded(&counts[i], prof.WeightCount); err != nil {
			t.Fatal(err)
		}
		if err := n.Prof.WriteFolded(&virts[i], prof.WeightVirtual); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(jsons[0].Bytes(), jsons[1].Bytes()) {
		t.Error("two fixed-seed runs produced different JSON profiles")
	}
	if !bytes.Equal(counts[0].Bytes(), counts[1].Bytes()) {
		t.Error("two fixed-seed runs produced different count-weighted folded stacks")
	}
	if !bytes.Equal(virts[0].Bytes(), virts[1].Bytes()) {
		t.Error("two fixed-seed runs produced different virtual-weighted folded stacks")
	}
	if jsons[0].Len() == 0 || counts[0].Len() == 0 {
		t.Fatal("profiler exports are empty on a profiled run")
	}
}

// TestProfilerPreservesTrajectory runs the same campaign bare and
// profiled and requires the virtual outcome to match bit-exactly: the
// profiler reads the clock, it never schedules, mutates, or draws
// randomness.
func TestProfilerPreservesTrajectory(t *testing.T) {
	nBare, repBare := runTracedCampaign(t)
	nProf, repProf := runProfiledCampaign(t)
	if repBare.BestValue != repProf.BestValue {
		t.Errorf("best value diverged: %v bare vs %v profiled", repBare.BestValue, repProf.BestValue)
	}
	if repBare.Makespan() != repProf.Makespan() {
		t.Errorf("makespan diverged: %v bare vs %v profiled", repBare.Makespan(), repProf.Makespan())
	}
	if repBare.Executed != repProf.Executed {
		t.Errorf("executed diverged: %d bare vs %d profiled", repBare.Executed, repProf.Executed)
	}
	// The traced span streams must also be identical — the profiler adds
	// no spans and reorders none.
	var a, b bytes.Buffer
	if err := nBare.Tracer.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := nProf.Tracer.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("profiling changed the recorded trace")
	}
}

// TestDisabledProfilerStaysNilAndFree: a federation without Config.Prof
// keeps Network.Prof nil, and every method on the nil profiler is
// allocation-free — the production cost of the instrumented spine is one
// pointer test per region.
func TestDisabledProfilerStaysNilAndFree(t *testing.T) {
	n := New(Config{Seed: 1, Sites: []SiteID{"ornl"}, Link: DefaultLink()})
	t.Cleanup(n.Stop)
	if n.Prof != nil {
		t.Fatal("Network.Prof non-nil without Config.Prof.Enabled")
	}
	p := n.Prof
	if allocs := testing.AllocsPerRun(1000, func() {
		r := p.Enter(ProfSite(0))
		p.Sample(ProfSite(1), Second.Std(), 42)
		r.End()
		_ = p.Counts()
		_ = p.Snapshot()
	}); allocs != 0 {
		t.Fatalf("nil profiler allocated %.1f times per op", allocs)
	}
}
