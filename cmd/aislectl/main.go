// Command aislectl inspects a live AISLE federation testbed: it assembles
// the standard three-site network, lets discovery converge, and answers
// operational queries.
//
// Usage:
//
//	aislectl sites        # list sites and their stacks
//	aislectl instruments  # list every advertised instrument record
//	aislectl browse KIND  # browse a service kind (e.g. _flow._aisle)
//	aislectl smoke        # run a 10-experiment smoke campaign
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/aisle-sim/aisle"
	"github.com/aisle-sim/aisle/internal/instrument"
)

func buildTestbed() *aisle.Network {
	n := aisle.New(aisle.Config{
		Seed:            1,
		Sites:           []aisle.SiteID{"ornl", "anl", "slac"},
		Link:            aisle.DefaultLink(),
		ZeroTrust:       true,
		SharedKnowledge: true,
	})
	for _, id := range n.Sites() {
		s := n.Site(id)
		s.AddInstrument(aisle.NewFluidicReactor(n.Eng, n.Rnd, "flow-"+string(id), string(id), aisle.Perovskite{}))
		s.AddInstrument(aisle.NewSpectrometer(n.Eng, n.Rnd, "spec-"+string(id), string(id)))
	}
	if err := n.RunFor(3 * aisle.Minute); err != nil {
		log.Fatal(err)
	}
	return n
}

func main() {
	cmd := "sites"
	if len(os.Args) > 1 {
		cmd = os.Args[1]
	}
	n := buildTestbed()
	defer n.Stop()

	switch cmd {
	case "sites":
		for _, id := range n.Sites() {
			s := n.Site(id)
			fmt.Printf("%-6s instruments=%v broker-endpoints=%v knowledge=%d\n",
				id, s.Fleet.IDs(), s.Broker.Endpoints(), s.Knowledge.Size())
		}
	case "instruments":
		reg := n.Site(n.Sites()[0]).Registry
		for _, kind := range []string{
			instrument.KindFlowReactor, instrument.KindSpectrometer,
			instrument.KindSynthesis, instrument.KindXRD,
		} {
			for _, rec := range reg.Browse(kind) {
				fmt.Println(rec)
			}
		}
	case "browse":
		if len(os.Args) < 3 {
			log.Fatal("aislectl browse KIND")
		}
		for _, rec := range n.Site(n.Sites()[0]).Registry.Browse(os.Args[2]) {
			fmt.Println(rec)
		}
	case "smoke":
		var rep *aisle.CampaignReport
		n.RunCampaign(aisle.CampaignConfig{
			Name: "smoke", Site: "ornl", Model: aisle.Perovskite{},
			Budget: 10, Mode: aisle.OrchAgentVerified,
			SynthKind: aisle.KindFlowReactor, UseKnowledge: true,
		}, func(r *aisle.CampaignReport) { rep = r })
		for rep == nil {
			if err := n.RunFor(aisle.Hour); err != nil {
				log.Fatal(err)
			}
		}
		if rep.Err != nil {
			log.Fatal(rep.Err)
		}
		fmt.Printf("smoke: %d experiments, best %.3f, makespan %v, correctness %.0f%%\n",
			rep.Executed, rep.BestValue, rep.Makespan(), rep.Correctness()*100)
	default:
		log.Fatalf("aislectl: unknown command %q (sites|instruments|browse|smoke)", cmd)
	}
}
