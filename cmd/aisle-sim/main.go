// Command aisle-sim runs a configurable AISLE federation scenario from a
// JSON file and reports the campaign outcome.
//
// Usage:
//
//	aisle-sim -config scenario.json
//	aisle-sim -example              # print a template scenario and exit
//	aisle-sim -trace trace.json     # also record a Chrome/Perfetto trace
//	aisle-sim -watch                # health engine + periodic SLO table
//	aisle-sim -profile profile.json # continuous spine profiler
//
// The scenario schema (see -example) declares sites, per-site instruments,
// and one campaign. With -trace the run records every span (sampling 1.0)
// and writes a chrome://tracing-loadable JSON file plus a critical-path
// breakdown on stderr; -metrics writes the labeled telemetry snapshot.
// With -watch the run assembles the federation health engine and renders
// its SLO burn-rate table to stderr every six virtual hours — alongside
// the live spine counters, and the profiler's per-call-site region counts
// when -profile is also on — plus any alerts that fired, when the run
// completes. With -profile the run attributes virtual time per hot
// call-site and writes the deterministic profile JSON at the given path
// and flamegraph-ready folded stacks (virtual-time weights) next to it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/aisle-sim/aisle"
	"github.com/aisle-sim/aisle/internal/prof"
	"github.com/aisle-sim/aisle/internal/twin"
)

// Scenario is the JSON configuration schema.
type Scenario struct {
	Seed            uint64   `json:"seed"`
	Sites           []string `json:"sites"`
	ZeroTrust       bool     `json:"zero_trust"`
	SharedKnowledge bool     `json:"shared_knowledge"`
	Instruments     []struct {
		Site string `json:"site"`
		Kind string `json:"kind"` // fluidic | batch | spectrometer | xrd | hpc
		ID   string `json:"id"`
	} `json:"instruments"`
	Campaign struct {
		Site         string  `json:"site"`
		Model        string  `json:"model"` // perovskite | quantum-dot | alloy | reaction
		Budget       int     `json:"budget"`
		Target       float64 `json:"target"`
		Mode         string  `json:"mode"` // manual | agent | verified
		SynthKind    string  `json:"synth_kind"`
		UseKnowledge bool    `json:"use_knowledge"`
	} `json:"campaign"`
}

const exampleScenario = `{
  "seed": 1,
  "sites": ["ornl", "anl"],
  "zero_trust": true,
  "shared_knowledge": true,
  "instruments": [
    {"site": "ornl", "kind": "fluidic", "id": "flow-1"},
    {"site": "anl", "kind": "spectrometer", "id": "spec-1"}
  ],
  "campaign": {
    "site": "ornl",
    "model": "perovskite",
    "budget": 30,
    "target": 0,
    "mode": "verified",
    "synth_kind": "_flow._aisle",
    "use_knowledge": true
  }
}`

func main() {
	configPath := flag.String("config", "", "scenario JSON path")
	example := flag.Bool("example", false, "print a template scenario and exit")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the run")
	metricsPath := flag.String("metrics", "", "write a labeled telemetry snapshot JSON file")
	watch := flag.Bool("watch", false, "enable the health engine and print a periodic SLO table")
	profilePath := flag.String("profile", "", "enable the spine profiler and write its deterministic profile JSON file")
	flag.Parse()

	if *example {
		fmt.Println(exampleScenario)
		return
	}

	var raw []byte
	var err error
	if *configPath == "" {
		raw = []byte(exampleScenario)
		fmt.Fprintln(os.Stderr, "aisle-sim: no -config given, running the template scenario")
	} else {
		raw, err = os.ReadFile(*configPath)
		if err != nil {
			log.Fatal(err)
		}
	}
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		log.Fatalf("aisle-sim: bad scenario: %v", err)
	}

	sites := make([]aisle.SiteID, len(sc.Sites))
	for i, s := range sc.Sites {
		sites[i] = aisle.SiteID(s)
	}
	n := aisle.New(aisle.Config{
		Seed:            sc.Seed,
		Sites:           sites,
		Link:            aisle.DefaultLink(),
		ZeroTrust:       sc.ZeroTrust,
		SharedKnowledge: sc.SharedKnowledge,
		Trace:           aisle.TraceOptions{Enabled: *tracePath != ""},
		Health:          aisle.HealthOptions{Enabled: *watch},
		Prof:            aisle.ProfOptions{Enabled: *profilePath != ""},
	})
	defer n.Stop()

	models := twin.Registry()
	model, ok := models[sc.Campaign.Model]
	if !ok {
		log.Fatalf("aisle-sim: unknown model %q", sc.Campaign.Model)
	}

	for _, inst := range sc.Instruments {
		site := n.Site(aisle.SiteID(inst.Site))
		if site == nil {
			log.Fatalf("aisle-sim: instrument at unknown site %q", inst.Site)
		}
		switch inst.Kind {
		case "fluidic":
			site.AddInstrument(aisle.NewFluidicReactor(n.Eng, n.Rnd, inst.ID, inst.Site, model))
		case "batch":
			site.AddInstrument(aisle.NewBatchReactor(n.Eng, n.Rnd, inst.ID, inst.Site, model))
		case "spectrometer":
			site.AddInstrument(aisle.NewSpectrometer(n.Eng, n.Rnd, inst.ID, inst.Site))
		case "xrd":
			site.AddInstrument(aisle.NewXRD(n.Eng, n.Rnd, inst.ID, inst.Site))
		case "hpc":
			site.AddInstrument(aisle.NewHPC(n.Eng, n.Rnd, inst.ID, inst.Site, 64))
		default:
			log.Fatalf("aisle-sim: unknown instrument kind %q", inst.Kind)
		}
	}
	if err := n.RunFor(3 * aisle.Minute); err != nil {
		log.Fatal(err)
	}

	mode := aisle.OrchAgentVerified
	switch sc.Campaign.Mode {
	case "manual":
		mode = aisle.OrchManual
	case "agent":
		mode = aisle.OrchAgent
	}

	var rep *aisle.CampaignReport
	n.RunCampaign(aisle.CampaignConfig{
		Name:         "scenario",
		Site:         aisle.SiteID(sc.Campaign.Site),
		Model:        model,
		Budget:       sc.Campaign.Budget,
		Target:       sc.Campaign.Target,
		Mode:         mode,
		SynthKind:    sc.Campaign.SynthKind,
		UseKnowledge: sc.Campaign.UseKnowledge,
	}, func(r *aisle.CampaignReport) { rep = r })
	for rep == nil {
		if err := n.RunFor(6 * aisle.Hour); err != nil {
			log.Fatal(err)
		}
		if *watch {
			fmt.Fprintf(os.Stderr, "aisle-sim: health at t=%s\n%s%s",
				n.Eng.Now(), n.Health.Table().Render(), spineLines(n))
		}
	}
	if rep.Err != nil {
		log.Fatal(rep.Err)
	}
	if *watch {
		fmt.Fprintf(os.Stderr, "aisle-sim: final health at t=%s\n%s%s",
			n.Eng.Now(), n.Health.Table().Render(), spineLines(n))
		for _, a := range n.Health.Alerts() {
			fmt.Fprintf(os.Stderr, "aisle-sim: alert %s at t=%s: %s\n", a.SLO, a.At, a.Detail)
		}
	}

	if *tracePath != "" {
		if err := n.Tracer.WriteChromeTraceFile(*tracePath); err != nil {
			log.Fatalf("aisle-sim: writing trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "aisle-sim: wrote %d spans to %s (dropped %d)\n",
			n.Tracer.Len(), *tracePath, n.Tracer.Dropped())
		for _, pr := range aisle.CriticalPaths(n.Tracer.Spans()) {
			fmt.Fprintln(os.Stderr, pr.Render())
		}
	}
	if *profilePath != "" {
		writeProfile(n, *profilePath)
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			log.Fatalf("aisle-sim: writing metrics: %v", err)
		}
		if err := n.Metrics.WriteJSON(f); err != nil {
			log.Fatalf("aisle-sim: writing metrics: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("aisle-sim: writing metrics: %v", err)
		}
		fmt.Fprintf(os.Stderr, "aisle-sim: wrote metrics snapshot to %s\n", *metricsPath)
	}

	printReport(rep)
}

// printReport emits the campaign outcome JSON on stdout.
func printReport(rep *aisle.CampaignReport) {
	out, _ := json.MarshalIndent(map[string]any{
		"executed":        rep.Executed,
		"reused":          rep.Reused,
		"failures":        rep.Failures,
		"best_value":      rep.BestValue,
		"best_point":      rep.BestPoint,
		"makespan":        rep.Makespan().String(),
		"decision_time":   rep.DecisionTime.String(),
		"instrument_time": rep.InstrumentTime.String(),
		"correctness":     rep.Correctness(),
		"trace_approval":  rep.ApprovalRate(),
	}, "", "  ")
	fmt.Println(string(out))
}

// spineLines renders the live spine counters for the -watch loop: the
// health engine's subsystem totals, plus the profiler's per-call-site
// region and sample counts when -profile wired one in.
func spineLines(n *aisle.Network) string {
	var b strings.Builder
	p := n.Health.Profile()
	fmt.Fprintf(&b, "spine: sim=%d net=%d/%d bus=%d sched=%d merged=%d spans=%d(-%d)\n",
		p.SimEvents, p.NetSent, p.NetDelivered, p.BusDelivered,
		p.SchedDispatched, p.KnowledgeMerged, p.SpansHeld, p.SpansDropped)
	for _, s := range p.Sites {
		fmt.Fprintf(&b, "  prof %-16s count=%-8d samples=%-7d virtual=%s\n",
			s.Site, s.Count, s.Samples, time.Duration(s.VirtualNs))
	}
	return b.String()
}

// writeProfile dumps the profiler's deterministic snapshot and folded
// stacks (virtual-time weights, so both artifacts reproduce bit-exactly
// at a fixed seed).
func writeProfile(n *aisle.Network, path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("aisle-sim: writing profile: %v", err)
	}
	if err := n.Prof.WriteJSON(f); err != nil {
		log.Fatalf("aisle-sim: writing profile: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("aisle-sim: writing profile: %v", err)
	}
	foldedPath := strings.TrimSuffix(path, ".json") + ".folded"
	ff, err := os.Create(foldedPath)
	if err != nil {
		log.Fatalf("aisle-sim: writing folded stacks: %v", err)
	}
	if err := n.Prof.WriteFolded(ff, prof.WeightVirtual); err != nil {
		log.Fatalf("aisle-sim: writing folded stacks: %v", err)
	}
	if err := ff.Close(); err != nil {
		log.Fatalf("aisle-sim: writing folded stacks: %v", err)
	}
	fmt.Fprintf(os.Stderr, "aisle-sim: wrote profile to %s and folded stacks to %s\n", path, foldedPath)
}
