package main

import (
	"fmt"
	"sort"
	"testing"

	"github.com/aisle-sim/aisle/internal/experiments"
	"github.com/aisle-sim/aisle/internal/optimize"
	"github.com/aisle-sim/aisle/internal/param"
	"github.com/aisle-sim/aisle/internal/rng"
)

// benchResult is one benchmark measurement in BENCH_optimize.json.
type benchResult struct {
	NsPerOp     int64
	BytesPerOp  int64
	AllocsPerOp int64
}

// gpWorkload pins the micro-benchmark shape so before/after numbers stay
// comparable: a MaxFit-sized training set, the default candidate pool, and
// a saturated-campaign refill batch.
const (
	gpObs       = 256
	gpCands     = 576
	gpBatch     = 8
	gpInflight  = 4
	gpDims      = 4
	macroCamps  = 200
	macroBudget = 6
)

func gpSpace() param.Space {
	return param.Space{
		{Name: "a", Lo: 0, Hi: 1},
		{Name: "b", Lo: 0, Hi: 1},
		{Name: "c", Lo: 0, Hi: 1},
		{Name: "d", Lo: 0, Hi: 1},
	}
}

func gpData(n int) ([][]float64, []float64) {
	r := rng.New(7)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, gpDims)
		for j := range xs[i] {
			xs[i][j] = r.Float64()
		}
		ys[i] = r.Normal(0, 1)
	}
	return xs, ys
}

// runGPBench measures the GP/BO engine micro benchmarks (and optionally
// the 200-campaign scheduler macro benchmarks) and merges the results into
// the "current" section of the JSON report at outPath, preserving any
// recorded "baseline" section.
func runGPBench(outPath string, includeMacro bool) error {
	results := map[string]benchResult{}

	xs, ys := gpData(gpObs)
	kernel := optimize.Matern52{LengthScale: 0.35 * 1.4142135623730951, Variance: 1}

	results["GPFit"] = record(func(b *testing.B) {
		g := optimize.NewGP(kernel, 1e-4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.Fit(xs, ys); err != nil {
				b.Fatal(err)
			}
		}
	})

	results["GPPredictBatch"] = record(func(b *testing.B) {
		g := optimize.NewGP(kernel, 1e-4)
		if err := g.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
		cands, _ := gpData(gpCands)
		mu := make([]float64, gpCands)
		va := make([]float64, gpCands)
		var scratch optimize.PredictScratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.PredictBatch(cands, mu, va, &scratch)
		}
	})

	results["AskBatch"] = record(func(b *testing.B) {
		space := gpSpace()
		bo := optimize.NewBayes(space, rng.New(11), optimize.BayesOpts{})
		r := rng.New(13)
		for i := 0; i < gpObs; i++ {
			p := space.Sample(r)
			bo.Tell(p, r.Normal(0, 1))
		}
		var inflight []param.Point
		for i := 0; i < gpInflight; i++ {
			inflight = append(inflight, space.Sample(r))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := bo.AskBatch(gpBatch, inflight); len(got) != gpBatch {
				b.Fatalf("AskBatch returned %d points", len(got))
			}
		}
	})

	if includeMacro {
		for _, par := range []int{1, 4, 16} {
			par := par
			results[fmt.Sprintf("SchedCampaignsP%d", par)] = record(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.RunSaturation(experiments.SaturationSpec{
						Seed:        uint64(42 + i),
						Campaigns:   macroCamps,
						Budget:      macroBudget,
						Parallelism: par,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	report := newReport("optimize", map[string]float64{
		"observations": gpObs, "candidates": gpCands,
		"batch": gpBatch, "inflight": gpInflight,
		"macro_campaigns": macroCamps, "macro_budget": macroBudget,
	})
	// The pre-incremental engine's numbers are frozen history (measured
	// at commit 2890663 with the full-refit engine); they ride every
	// regenerated artifact so the incremental speedup stays visible.
	for name, r := range gpBaseline() {
		report.AddGroup("baseline/"+name, "full-refit engine, commit 2890663").
			Add(nsMetric(r.NsPerOp)).
			Add(infoMetric("bytes_per_op", "B", float64(r.BytesPerOp))).
			Add(infoMetric("allocs_per_op", "", float64(r.AllocsPerOp)))
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := results[name]
		report.AddGroup("current/"+name, "incremental-cholesky engine").
			Add(nsMetric(r.NsPerOp)).
			Add(bytesMetric(r.BytesPerOp)).
			Add(allocsMetric(r.AllocsPerOp))
	}
	if err := writeReport(report, outPath); err != nil {
		return err
	}
	for _, name := range names {
		r := results[name]
		fmt.Printf("  %-18s %12d ns/op %10d B/op %8d allocs/op\n",
			name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	return nil
}

// gpBaseline is the frozen full-refit measurement set the incremental
// engine is compared against in EXPERIMENTS.md. The macro rows only
// exist when -macro recorded them, so only the micro rows are pinned
// here plus the macro rows the original artifact captured.
func gpBaseline() map[string]benchResult {
	return map[string]benchResult{
		"GPFit":            {NsPerOp: 3946232, BytesPerOp: 821745, AllocsPerOp: 517},
		"GPPredictBatch":   {NsPerOp: 19046736, BytesPerOp: 2359296, AllocsPerOp: 1152},
		"AskBatch":         {NsPerOp: 180805934, BytesPerOp: 26500885, AllocsPerOp: 28817},
		"SchedCampaignsP1": {NsPerOp: 608875488},
		"SchedCampaignsP4": {NsPerOp: 1579129425},
		// The baseline engine slowed down with parallelism: every refill
		// refit the surrogate from scratch.
		"SchedCampaignsP16": {NsPerOp: 739804627},
	}
}

func record(fn func(*testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
