package main

import (
	"fmt"
	"time"

	"github.com/aisle-sim/aisle/internal/bench"
	"github.com/aisle-sim/aisle/internal/experiments"
	"github.com/aisle-sim/aisle/internal/sim"
)

// chaosCellResult is one chaos-matrix cell in BENCH_chaos.json.
type chaosCellResult struct {
	Intensity      float64
	Recovery       string
	Submitted      int
	Completed      int
	Failed         int
	CompletionRate float64
	P99LatencyS    float64
	RecoveryS      float64
	Injections     int
	Quarantined    int
	Violations     []string
	WallS          float64
}

// Chaos benchmark workload: the same proven configuration as the
// recovery-vs-baseline property test, so the checked-in numbers and the CI
// assertion describe one scenario.
const (
	chaosBenchSeed    = 2
	chaosBenchJobs    = 300
	chaosBenchHorizon = 3 * sim.Hour
)

// runChaosBench sweeps fault intensity with the self-healing policy on,
// plus a no-recovery baseline at 15% intensity, and writes BENCH_chaos.json.
// It fails if any invariant is violated, if the healed 15% cell completes
// under 95%, or if recovery does not beat the baseline.
func runChaosBench(outPath string) error {
	type cellSpec struct {
		intensity float64
		recovery  bool
	}
	cells := []cellSpec{
		{0, true}, {0.05, true}, {0.15, true}, {0.30, true},
		{0.15, false}, // the degradation baseline the headline compares against
	}
	results := make([]chaosCellResult, 0, len(cells))
	for _, c := range cells {
		start := time.Now()
		r, err := experiments.RunChaos(experiments.ChaosSpec{
			Seed:      chaosBenchSeed,
			Jobs:      chaosBenchJobs,
			Horizon:   chaosBenchHorizon,
			Intensity: c.intensity,
			Recovery:  c.recovery,
		})
		if err != nil {
			return fmt.Errorf("intensity %.0f%% recovery=%v: %w", c.intensity*100, c.recovery, err)
		}
		policy := "none"
		if c.recovery {
			policy = "retry+reroute"
		}
		results = append(results, chaosCellResult{
			Intensity:      c.intensity,
			Recovery:       policy,
			Submitted:      r.Submitted,
			Completed:      r.Completed,
			Failed:         r.Failed,
			CompletionRate: r.CompletionRate,
			P99LatencyS:    r.P99LatencyS,
			RecoveryS:      r.RecoveryS,
			Injections:     r.Injections,
			Quarantined:    r.Quarantined,
			Violations:     r.Violations,
			WallS:          time.Since(start).Seconds(),
		})
	}

	var healed15, base15 chaosCellResult
	for _, r := range results {
		if len(r.Violations) > 0 {
			return fmt.Errorf("intensity %.0f%% %s: %d invariant violations (first: %s)",
				r.Intensity*100, r.Recovery, len(r.Violations), r.Violations[0])
		}
		if r.Intensity == 0.15 {
			if r.Recovery == "none" {
				base15 = r
			} else {
				healed15 = r
			}
		}
	}
	if healed15.CompletionRate < 0.95 {
		return fmt.Errorf("healed 15%% cell completed %.1f%% < 95%%", healed15.CompletionRate*100)
	}
	if healed15.CompletionRate <= base15.CompletionRate {
		return fmt.Errorf("recovery (%.1f%%) did not beat the no-recovery baseline (%.1f%%) at 15%%",
			healed15.CompletionRate*100, base15.CompletionRate*100)
	}

	report := newReport("chaos", map[string]float64{
		"seed": chaosBenchSeed, "jobs": chaosBenchJobs,
		"horizon_s": chaosBenchHorizon.Seconds(), "sites": 5,
	})
	for _, r := range results {
		policy := "heal"
		if r.Recovery == "none" {
			policy = "none"
		}
		// The chaos matrix is seeded and deterministic, so the virtual-
		// time outcomes gate exactly; only wall time floats.
		report.AddGroup(fmt.Sprintf("cell/%02.0fpct-%s", r.Intensity*100, policy),
			fmt.Sprintf("intensity %.0f%%, recovery %s", r.Intensity*100, r.Recovery)).
			Add(exactMetric("submitted", float64(r.Submitted))).
			Add(exactMetric("completed", float64(r.Completed))).
			Add(exactMetric("failed", float64(r.Failed))).
			Add(bench.Metric{Name: "completion_rate", Value: r.CompletionRate,
				Better: bench.Higher, AbsNoise: 0.02}).
			Add(exactMetric("p99_latency_s", r.P99LatencyS)).
			Add(exactMetric("recovery_s", r.RecoveryS)).
			Add(exactMetric("injections", float64(r.Injections))).
			Add(exactMetric("quarantined", float64(r.Quarantined))).
			Add(exactMetric("violations", float64(len(r.Violations)))).
			Add(infoMetric("wall_s", "s", r.WallS))
	}
	report.AddGroup("headline", "the paper-facing completion-rate claim").
		Add(bench.Metric{Name: "completion_rate_healed_15pct",
			Value: healed15.CompletionRate, Better: bench.Higher, AbsNoise: 0.02}).
		Add(infoMetric("completion_rate_baseline_15pct", "",
			base15.CompletionRate))
	if err := writeReport(report, outPath); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("  %3.0f%% %-13s completion %5.1f%%  p99 %6.0fs  recovery %5.0fs  injections %2d  quarantined %2d  [%.1fs wall]\n",
			r.Intensity*100, r.Recovery, r.CompletionRate*100,
			r.P99LatencyS, r.RecoveryS, r.Injections, r.Quarantined, r.WallS)
	}
	return nil
}
