package main

import (
	"fmt"
	"runtime"
	"time"

	"github.com/aisle-sim/aisle/internal/experiments"
	"github.com/aisle-sim/aisle/internal/trace"
)

// traceModeResult is one tracing mode's measurement in BENCH_trace.json.
type traceModeResult struct {
	NsPerOp          int64
	BytesPerOp       int64
	AllocsPerOp      int64
	VirtualMakespanS float64
	Spans            int
	Dropped          uint64
}

// traceBenchIters runs each mode over the same seed sequence so the
// virtual-time columns are directly comparable (and must match exactly:
// tracing observes the simulation, it never perturbs it).
const traceBenchIters = 5

// runTraceBench measures the tracing layer's overhead on the same
// 200-campaign parallelism-4 scheduler macro as SchedCampaignsP4, once
// with the zero trace.Options (the production fast path) and once fully
// sampled, and writes BENCH_trace.json.
func runTraceBench(outPath string) error {
	modes := []struct {
		name string
		opts trace.Options
	}{
		{"disabled", trace.Options{}},
		{"enabled", trace.Options{Enabled: true}},
	}
	results := map[string]traceModeResult{}
	for _, m := range modes {
		r, err := measureTraceMode(m.opts)
		if err != nil {
			return fmt.Errorf("%s: %w", m.name, err)
		}
		results[m.name] = r
	}

	dis, en := results["disabled"], results["enabled"]
	if en.VirtualMakespanS != dis.VirtualMakespanS {
		return fmt.Errorf("tracing perturbed the simulation: makespan %.3fs traced vs %.3fs untraced",
			en.VirtualMakespanS, dis.VirtualMakespanS)
	}
	overhead := map[string]float64{
		"wall_pct":             pctDelta(en.NsPerOp, dis.NsPerOp),
		"allocs_pct":           pctDelta(en.AllocsPerOp, dis.AllocsPerOp),
		"virtual_makespan_pct": 0, // enforced equal above
	}

	report := newReport("trace", map[string]float64{
		"campaigns": macroCamps, "budget": macroBudget,
		"parallelism": 4, "iters": traceBenchIters,
	})
	for _, m := range modes {
		r := results[m.name]
		g := report.AddGroup(m.name, "").
			Add(nsMetric(r.NsPerOp)).
			Add(bytesMetric(r.BytesPerOp)).
			Add(allocsMetric(r.AllocsPerOp)).
			Add(makespanMetric(r.VirtualMakespanS))
		if m.opts.Enabled {
			g.Add(exactMetric("spans", float64(r.Spans))).
				Add(exactMetric("spans_dropped", float64(r.Dropped)))
		}
	}
	report.AddGroup("overhead", "enabled vs disabled").
		Add(infoMetric("wall_pct", "%", overhead["wall_pct"])).
		Add(infoMetric("allocs_pct", "%", overhead["allocs_pct"]))
	if err := writeReport(report, outPath); err != nil {
		return err
	}
	for _, m := range modes {
		r := results[m.name]
		fmt.Printf("  %-9s %12d ns/op %12d B/op %10d allocs/op  makespan %.0fs  spans %d\n",
			m.name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.VirtualMakespanS, r.Spans)
	}
	fmt.Printf("  overhead  wall %+.2f%%  allocs %+.2f%%  virtual makespan +0%% (bit-exact)\n",
		overhead["wall_pct"], overhead["allocs_pct"])
	return nil
}

// measureTraceMode runs the macro traceBenchIters times (seeds 42, 43, ...)
// and averages wall time and allocations; the reported makespan is the
// seed-42 run's, so the two modes' virtual columns compare like for like.
func measureTraceMode(opts trace.Options) (traceModeResult, error) {
	var out traceModeResult
	// One untimed warmup so neither mode pays first-run cache effects.
	if _, err := runMacroOnce(41, opts); err != nil {
		return out, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < traceBenchIters; i++ {
		res, err := runMacroOnce(uint64(42+i), opts)
		if err != nil {
			return out, err
		}
		if i == 0 {
			out.VirtualMakespanS = (res.Finish - res.Start).Seconds()
			if res.Tracer != nil {
				out.Spans = res.Tracer.Len()
				out.Dropped = res.Tracer.Dropped()
			}
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	out.NsPerOp = wall.Nanoseconds() / traceBenchIters
	out.BytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / traceBenchIters
	out.AllocsPerOp = int64(after.Mallocs-before.Mallocs) / traceBenchIters
	return out, nil
}

func runMacroOnce(seed uint64, opts trace.Options) (experiments.SaturationResult, error) {
	return experiments.RunSaturation(experiments.SaturationSpec{
		Seed:        seed,
		Campaigns:   macroCamps,
		Budget:      macroBudget,
		Parallelism: 4,
		Trace:       opts,
	})
}

func pctDelta(after, before int64) float64 {
	if before == 0 {
		return 0
	}
	return 100 * (float64(after) - float64(before)) / float64(before)
}
